(* evolvenet: command-line front end for the scenarios and experiments.

   `evolvenet fig 1`     — replay a paper figure
   `evolvenet exp e3`    — run one experiment table
   `evolvenet all`       — run everything (what bench/main.exe also does)
   `evolvenet demo`      — narrated end-to-end quickstart *)

open Cmdliner

(* a bad operand is a usage error: say so on stderr and exit 2, like
   the malformed-flag path (cmdliner's cli_error, remapped in main) *)
let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "evolvenet: %s\n" msg;
      exit 2)
    fmt

let run_fig n =
  match n with
  | 1 -> Format.printf "%a" Evolve.Scenario.pp_fig1 (Evolve.Scenario.fig1 ())
  | 2 -> Format.printf "%a" Evolve.Scenario.pp_fig2 (Evolve.Scenario.fig2 ())
  | 3 -> Format.printf "%a" Evolve.Scenario.pp_fig3 (Evolve.Scenario.fig3 ())
  | 4 -> Format.printf "%a" Evolve.Scenario.pp_fig4 (Evolve.Scenario.fig4 ())
  | _ -> usage_error "no such figure: %d\nusage: evolvenet fig <1-4>" n

let params_of ~seed ~transit ~stubs =
  let base = Topology.Internet.default_params in
  {
    base with
    Topology.Internet.seed = Int64.of_int seed;
    transit_domains = transit;
    stubs_per_transit = stubs;
  }

(* one line per experiment, for `evolvenet exp list` *)
let experiment_index =
  [
    ("e1", "anycast stretch vs deployment fraction (Option 1)");
    ("e2", "default-route option: advertisers vs stretch and load");
    ("e3", "egress strategies compared end to end");
    ("e4", "egress comparison at sparse deployment");
    ("e5", "routing-state scaling per domain class");
    ("e6", "adoption dynamics of successive IP generations");
    ("e7", "vN-Bone partition robustness (anchoring ablation)");
    ("e8", "IGP convergence cost after membership changes");
    ("e9", "host-advertised exit routes vs table growth");
    ("e10", "member-discovery ablation (LSDB vs anycast walk)");
    ("e11", "vN-Bone congruence with the physical topology");
    ("e12", "GIA search-radius sweep");
    ("e13", "claim stability across topology seeds");
    ("e14", "proxy-advertising alpha sweep");
    ("e15", "deployment viability across provider price gaps");
    ("e16", "revenue gravity of early adopters");
    ("e17", "BGPvN table scaling with membership");
    ("e18", "link-state flooding cost and latency");
    ("e19", "BGP MRAI sweep: churn vs convergence time");
    ("e20", "anycast resilience to member failures");
    ("e21", "claim scaling with internet size");
    ("e22", "FIB size scaling per router class");
    ("e23", "claims on a preferential-attachment topology");
    ("e24", "flow stability under deployment churn");
    ("e25", "coalition strategies for staged deployment");
    ("e26", "encapsulation byte overhead on the wire");
    ("e27", "mixed link-state/distance-vector IGPs");
    ("e28", "BGP path hunting on withdrawal");
    ("e29", "data-plane cost of the pump vs the oracle");
    ("e30", "traffic through a control-plane convergence window");
    ("e31", "protocol convergence under loss and crashes");
    ("e32", "traffic delivery while links flap, recovery off/on");
    ("e33", "shard-count invariance of the multicore data plane");
    ("e34", "incident-drill catalog sweep (recovery SLOs)");
    ("e35", "hijack containment vs deployment level");
    ("e36", "overload response: goodput/delay/loss vs offered load");
    ("e37", "shard crash recovery: zero verdict divergence");
  ]

let print_experiment_index () =
  List.iter
    (fun (id, doc) -> Printf.printf "%-5s %s\n" id doc)
    experiment_index

let run_exp name seed transit stubs =
  let module E = Evolve.Experiments in
  let params = params_of ~seed ~transit ~stubs in
  match String.lowercase_ascii name with
  | "list" -> print_experiment_index ()
  | "e1" -> E.print_e1 (E.e1_deployment_sweep ~params ())
  | "e2" -> E.print_e2 (E.e2_default_route_sweep ~params ())
  | "e3" -> E.print_e3 (E.e3_egress_comparison ~params ())
  | "e4" ->
      E.print_e4 (E.e3_egress_comparison ~params ~deploy_fraction:0.15 ~pairs:80 ())
  | "e5" -> E.print_e5 (E.e5_state_scaling ~params ())
  | "e6" -> E.print_e6 (E.e6_adoption ())
  | "e7" -> E.print_e7 (E.e7_robustness ~params ())
  | "e8" -> E.print_e8 (E.e8_convergence ~seed:(Int64.of_int seed) ())
  | "e9" -> E.print_e9 (E.e9_host_advertised ~params ())
  | "e10" -> E.print_e10 (E.e10_discovery_ablation ~params ())
  | "e11" -> E.print_e11 (E.e11_congruence ~params ())
  | "e12" -> E.print_e12 (E.e12_gia_sweep ~params ())
  | "e13" -> E.print_e13 (E.e13_seed_stability ())
  | "e14" -> E.print_e14 (E.e14_proxy_alpha ~params ())
  | "e15" -> E.print_e15 (E.e15_viability_sweep ())
  | "e16" -> E.print_e16 (E.e16_revenue_gravity ~params ())
  | "e17" -> E.print_e17 (E.e17_bgpvn_scaling ~params ())
  | "e18" -> E.print_e18 (E.e18_flooding_cost ~seed:(Int64.of_int seed) ())
  | "e19" -> E.print_e19 (E.e19_mrai_sweep ~params ())
  | "e20" -> E.print_e20 (E.e20_anycast_resilience ~params ())
  | "e21" -> E.print_e21 (E.e21_size_scaling ())
  | "e22" -> E.print_e22 (E.e22_fib_scaling ~params ())
  | "e23" -> E.print_e23 (E.e23_topology_robustness ())
  | "e24" -> E.print_e24 (E.e24_flow_stability ~params ())
  | "e25" -> E.print_e25 (E.e25_coalition_sweep ())
  | "e26" -> E.print_e26 (E.e26_encapsulation_overhead ~params ())
  | "e27" -> E.print_e27 (E.e27_mixed_igp ~params ())
  | "e28" -> E.print_e28 (E.e28_path_hunting ~params ())
  | "e29" -> E.print_e29 (E.e29_dataplane_cost ~params ())
  | "e30" -> E.print_e30 (E.e30_churn_traffic ~params ())
  | "e31" -> E.print_e31 (E.e31_fault_convergence ~params ())
  | "e32" -> E.print_e32 (E.e32_flap_traffic ~params ())
  | "e33" -> E.print_e33 (E.e33_shard_invariance ~params ())
  | "e34" -> E.print_e34 (E.e34_drill_catalog ~params ())
  | "e35" -> E.print_e35 (E.e35_hijack_containment ~params ())
  | "e36" -> E.print_e36 (E.e36_overload_response ~params ())
  | "e37" -> E.print_e37 (E.e37_crash_recovery ~params ())
  | other ->
      usage_error
        "no such experiment: %s\nusage: evolvenet exp <e1-e37>; run `evolvenet \
         exp list` for one-line descriptions"
        other

let default_seed = Int64.to_int Topology.Internet.default_params.Topology.Internet.seed
let default_transit = Topology.Internet.default_params.Topology.Internet.transit_domains
let default_stubs = Topology.Internet.default_params.Topology.Internet.stubs_per_transit

let run_all () =
  List.iter run_fig [ 1; 2; 3; 4 ];
  List.iter
    (fun e -> run_exp e default_seed default_transit default_stubs)
    (List.map fst experiment_index)

let run_demo () =
  let module Setup = Evolve.Setup in
  let module Service = Anycast.Service in
  let module Transport = Vnbone.Transport in
  print_endline "Building a random transit-stub internet...";
  let setup =
    Setup.create ~version:8 ~strategy:Anycast.Service.Option1 ()
  in
  let inet = Setup.internet setup in
  Printf.printf "  %d domains, %d routers, %d endhosts\n"
    (Topology.Internet.num_domains inet)
    (Topology.Internet.num_routers inet)
    (Array.length inet.Topology.Internet.endhosts);
  print_endline "Deploying IPv8 in two stub domains...";
  Setup.deploy setup ~domain:5;
  Setup.deploy setup ~domain:9;
  let service = Setup.service setup in
  Printf.printf "  participants: %s; %d IPv8 routers\n"
    (String.concat ", "
       (List.map string_of_int (Service.participants service)))
    (List.length (Service.members service));
  print_endline "Sending an IPv8 packet between endhosts 0 and 50...";
  let j = Setup.send setup ~strategy:Vnbone.Router.Bgp_aware ~src:0 ~dst:50 () in
  Printf.printf "  delivered: %b; hops: %d (of which %d on the vN-Bone)\n"
    (Transport.delivered j) (Transport.total_hops j) (Transport.vn_hops j)

let run_dot what =
  let setup =
    Evolve.Setup.create ~version:8 ~strategy:Anycast.Service.Option1 ()
  in
  List.iter (fun d -> Evolve.Setup.deploy setup ~domain:d) [ 5; 9; 14 ];
  match String.lowercase_ascii what with
  | "domains" -> print_string (Evolve.Dot.domain_graph (Evolve.Setup.internet setup))
  | "routers" -> print_string (Evolve.Dot.router_graph (Evolve.Setup.internet setup))
  | "fabric" -> print_string (Evolve.Dot.fabric (Evolve.Setup.fabric setup))
  | other ->
      usage_error "no such graph: %s\nusage: evolvenet dot <domains|routers|fabric>"
        other

let parse_strategy s =
  match String.lowercase_ascii s with
  | "option1" -> Ok Anycast.Service.Option1
  | "option2" -> Ok (Anycast.Service.Option2 { default_domain = 0 })
  | s when String.length s > 4 && String.sub s 0 4 = "gia:" -> (
      match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
      | Some r when r >= 0 ->
          Ok (Anycast.Service.Gia { home_domain = 0; radius = r })
      | _ -> Error "GIA radius must be a non-negative integer")
  | _ -> Error "strategy must be option1, option2 or gia:<radius>"

let parse_egress s =
  match String.lowercase_ascii s with
  | "early" -> Ok Vnbone.Router.Exit_early
  | "aware" -> Ok Vnbone.Router.Bgp_aware
  | "proxy" -> Ok Vnbone.Router.Proxy
  | "host" -> Ok Vnbone.Router.Host_advertised
  | _ -> Error "egress must be early, aware, proxy or host"

let run_sim strategy_s deploy_s src dst egress_s seed verbose =
  match (parse_strategy strategy_s, parse_egress egress_s) with
  | Error e, _ | _, Error e -> usage_error "%s" e
  | Ok strategy, Ok egress -> (
      let params =
        { Topology.Internet.default_params with
          Topology.Internet.seed = Int64.of_int seed }
      in
      let setup = Evolve.Setup.create ~params ~version:8 ~strategy () in
      let inet = Evolve.Setup.internet setup in
      let domains =
        String.split_on_char ',' deploy_s
        |> List.filter_map int_of_string_opt
        |> List.filter (fun d -> d >= 0 && d < Topology.Internet.num_domains inet)
      in
      (match domains with
      | [] -> usage_error "no valid domains to deploy"
      | _ -> List.iter (fun d -> Evolve.Setup.deploy setup ~domain:d) domains);
      let hn = Array.length inet.Topology.Internet.endhosts in
      if src < 0 || src >= hn || dst < 0 || dst >= hn || src = dst then
        usage_error "endhosts must be distinct ids in [0, %d)" hn
      else begin
        (* register the destination when the host-advertised strategy
           is requested, as the paper's scheme requires *)
        (if egress = Vnbone.Router.Host_advertised then
           ignore
             (Vnbone.Router.register_endhost (Evolve.Setup.router setup)
                ~endhost:dst));
        let j = Evolve.Setup.send setup ~strategy:egress ~src ~dst () in
        let module T = Vnbone.Transport in
        Printf.printf "strategy %s, deployed domains %s\n" strategy_s deploy_s;
        Printf.printf "endhost %d (domain %d) -> endhost %d (domain %d)\n" src
          (Topology.Internet.endhost inet src).Topology.Internet.hdomain dst
          (Topology.Internet.endhost inet dst).Topology.Internet.hdomain;
        Printf.printf "delivered: %b\n" (T.delivered j);
        (match (j.T.ingress, j.T.egress) with
        | Some i, Some e ->
            Printf.printf "ingress router %d (domain %d); egress router %d (domain %d)\n"
              i (Topology.Internet.router inet i).Topology.Internet.rdomain
              e (Topology.Internet.router inet e).Topology.Internet.rdomain
        | _ -> ());
        Printf.printf "hops: %d total = %d access + %d vN-Bone + %d exit\n"
          (T.total_hops j) (T.access_hops j) (T.vn_hops j) (T.exit_hops j);
        if verbose then Format.printf "%a" (T.pp_journey inet) j
      end)

(* --- incident drills and the looking glass ------------------------- *)

let load_book name file =
  match (name, file) with
  | Some _, Some _ -> usage_error "give --name or --file, not both"
  | Some n, None -> (
      match Ops.Drillbook.find n with
      | Some b -> b
      | None ->
          usage_error "no such drill: %s (catalog: %s)" n
            (String.concat ", "
               (List.map
                  (fun b -> b.Ops.Drillbook.name)
                  Ops.Drillbook.catalog)))
  | None, Some f -> (
      match Ops.Drillbook.load f with
      | Ok b -> b
      | Error e -> usage_error "%s" e)
  | None, None ->
      usage_error
        "give --name <drill> or --file <file>; --list shows the catalog"

let run_drill list_flag report name file =
  if list_flag then
    List.iter
      (fun b ->
        Printf.printf "%-20s %-13s %s\n" b.Ops.Drillbook.name
          (Ops.Drillbook.kind_label b.Ops.Drillbook.kind)
          (Printf.sprintf "%d ticks, fault [%g, %g]" b.Ops.Drillbook.ticks
             b.Ops.Drillbook.fault_at b.Ops.Drillbook.fault_until))
      Ops.Drillbook.catalog
  else begin
    let book = load_book name file in
    let r = Ops.Drill.complete book in
    print_string (Ops.Drill.transcript r);
    if report then begin
      (* where every lost packet went: droptail at a full queue,
         deliberate per-class shedding, or the fault fabrics *)
      let d = Ops.Drill.drop_reasons r in
      print_string "drop reasons:\n";
      Printf.printf "  queue-full     %d\n" d.Ops.Drill.queue_full;
      Printf.printf "  shed (native)  %d\n" d.Ops.Drill.shed_native;
      Printf.printf "  shed (encap)   %d\n" d.Ops.Drill.shed_encap;
      Printf.printf "  shed (control) %d\n" d.Ops.Drill.shed_control;
      Printf.printf "  fault-fabric   %d\n" d.Ops.Drill.fabric
    end;
    let v = Ops.Slo.evaluate r in
    print_string (Ops.Slo.render book v);
    Ops.Drill.close r;
    (* the exit status is the verdict, so CI can run a drill file
       end-to-end and assert its SLOs in one line *)
    if not v.Ops.Slo.pass then exit 1
  end

let drill_name =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "name" ] ~docv:"DRILL" ~doc:"Run the catalog drill $(docv).")

let drill_file =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "file" ] ~docv:"FILE"
        ~doc:"Run the drill described by the s-expression file $(docv).")

let drill_cmd =
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List the built-in drill catalog.")
  in
  let report_flag =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:
            "Append the drop-reason breakdown (queue-full vs per-class sheds \
             vs fault-fabric losses).")
  in
  Cmd.v
    (Cmd.info "drill"
       ~doc:
         "Replay an incident drill and grade its recovery SLOs (exit 1 on a \
          missed SLO)")
    Term.(const run_drill $ list_flag $ report_flag $ drill_name $ drill_file)

let run_glass name file at query_words =
  let book = load_book name file in
  match Ops.Glass.parse query_words with
  | Error e -> usage_error "%s" e
  | Ok q ->
      let r = Ops.Drill.prepare book in
      let time =
        match at with
        | Some t -> t
        | None -> float_of_int book.Ops.Drillbook.ticks +. 1.0
      in
      Ops.Drill.run_until r ~time;
      print_endline (Ops.Glass.render r q)

let glass_cmd =
  let at =
    Arg.(
      value
      & opt (some float) None
      & info [ "at" ] ~docv:"T"
          ~doc:
            "Advance the drill to engine time $(docv) before answering (default: \
             the end of the drill).")
  in
  let query_words =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"QUERY")
  in
  Cmd.v
    (Cmd.info "glass"
       ~doc:
         "Looking glass: query a drill's live protocol state (route, rib, \
          fib, tunnels, sessions, health)")
    Term.(const run_glass $ drill_name $ drill_file $ at $ query_words)

let sim_cmd =
  let strategy =
    Arg.(value & opt string "option1" & info [ "strategy" ] ~docv:"S"
           ~doc:"Anycast strategy: option1, option2 or gia:<radius>.")
  in
  let deploy =
    Arg.(value & opt string "5,9,14" & info [ "deploy" ] ~docv:"D,D,..."
           ~doc:"Comma-separated domains that deploy IPv8.")
  in
  let src = Arg.(value & opt int 0 & info [ "src" ] ~docv:"H") in
  let dst = Arg.(value & opt int 50 & info [ "dst" ] ~docv:"H") in
  let egress =
    Arg.(value & opt string "aware" & info [ "egress" ] ~docv:"E"
           ~doc:"Egress strategy: early, aware, proxy or host.")
  in
  let seed = Arg.(value & opt int default_seed & info [ "seed" ] ~docv:"SEED") in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the leg-by-leg trace.")
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Send one IPv8 journey through a custom deployment")
    Term.(const run_sim $ strategy $ deploy $ src $ dst $ egress $ seed $ verbose)

let fig_cmd =
  let n = Arg.(required & pos 0 (some int) None & info [] ~docv:"N") in
  Cmd.v (Cmd.info "fig" ~doc:"Replay paper figure N (1-4)")
    Term.(const run_fig $ n)

let exp_cmd =
  let exp_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXP")
  in
  let seed =
    Arg.(value & opt int default_seed & info [ "seed" ] ~docv:"SEED"
           ~doc:"Topology seed for experiments built on a random internet.")
  in
  let transit =
    Arg.(value & opt int default_transit & info [ "transit" ] ~docv:"N"
           ~doc:"Number of transit (tier-1) domains.")
  in
  let stubs =
    Arg.(value & opt int default_stubs & info [ "stubs" ] ~docv:"N"
           ~doc:"Stub domains per transit.")
  in
  Cmd.v (Cmd.info "exp" ~doc:"Run experiment EXP (e1-e37, or `list`)")
    Term.(const run_exp $ exp_name $ seed $ transit $ stubs)

let run_report path =
  Evolve.Report.write ~path;
  Printf.printf "wrote %s\n" path

let report_cmd =
  let path =
    Arg.(value & opt string "RESULTS.md" & info [ "o"; "output" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run every figure and experiment and write a markdown report")
    Term.(const run_report $ path)

let dot_cmd =
  let what =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAPH")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Emit a GraphViz graph (domains, routers, or fabric) on stdout")
    Term.(const run_dot $ what)

let all_cmd =
  Cmd.v (Cmd.info "all" ~doc:"Run every figure and experiment")
    Term.(const run_all $ const ())

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Narrated end-to-end quickstart")
    Term.(const run_demo $ const ())

let () =
  let info =
    Cmd.info "evolvenet" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Towards an Evolvable Internet Architecture' \
         (SIGCOMM 2005)"
  in
  let code =
    Cmd.eval
      (Cmd.group info
         [
           fig_cmd;
           exp_cmd;
           all_cmd;
           demo_cmd;
           dot_cmd;
           report_cmd;
           sim_cmd;
           drill_cmd;
           glass_cmd;
         ])
  in
  (* malformed flags and unknown subcommands (cmdliner prints the usage
     to stderr) exit 2 like our own operand errors, not 124 *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
