(* Tests for the event engine and the IPv4 forwarding plane. *)

module Engine = Simcore.Engine
module Forward = Simcore.Forward
module Internet = Topology.Internet
module Relationship = Topology.Relationship
module Packet = Netcore.Packet
module Ipv4 = Netcore.Ipv4
module Addressing = Netcore.Addressing
module Linkstate = Routing.Linkstate

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3.0 (fun _ -> log := 3 :: !log);
  Engine.schedule e ~delay:1.0 (fun _ -> log := 1 :: !log);
  Engine.schedule e ~delay:2.0 (fun _ -> log := 2 :: !log);
  let n = Engine.run e in
  check Alcotest.int "all ran" 3 n;
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun _ -> log := i :: !log)
  done;
  ignore (Engine.run e);
  check Alcotest.(list int) "scheduling order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun e ->
      log := "a" :: !log;
      Engine.schedule e ~delay:1.0 (fun _ -> log := "c" :: !log);
      Engine.schedule e ~delay:0.5 (fun _ -> log := "b" :: !log));
  ignore (Engine.run e);
  check Alcotest.(list string) "nested order" [ "a"; "b"; "c" ] (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun _ -> incr count)
  done;
  let ran = Engine.run ~until:5.5 e in
  check Alcotest.int "stopped at limit" 5 ran;
  check Alcotest.int "remaining queued" 5 (Engine.pending e);
  ignore (Engine.run e);
  check Alcotest.int "rest ran" 10 !count

let test_engine_rejects () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) (fun _ -> ()));
  Engine.schedule e ~delay:5.0 (fun _ -> ());
  ignore (Engine.run e);
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      Engine.schedule_at e ~time:1.0 (fun _ -> ()))

let test_engine_schedule_at_now () =
  (* ~time:(now t) is the boundary case of "not before now": legal, and
     the callback fires without advancing the clock. *)
  let e = Engine.create () in
  Engine.schedule e ~delay:2.0 (fun _ -> ());
  ignore (Engine.run e);
  let fired_at = ref nan in
  Engine.schedule_at e ~time:(Engine.now e) (fun e -> fired_at := Engine.now e);
  check Alcotest.int "one event ran" 1 (Engine.run e);
  check (Alcotest.float 1e-9) "fired at the current instant" 2.0 !fired_at;
  check (Alcotest.float 1e-9) "clock did not advance" 2.0 (Engine.now e)

let test_engine_fifo_across_until () =
  (* Equal-time FIFO must survive a partial drain: events co-scheduled
     at t=2 but split by run ~until:1 still fire in scheduling order. *)
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun _ -> log := "first" :: !log);
  Engine.schedule e ~delay:1.0 (fun _ -> log := "early" :: !log);
  Engine.schedule e ~delay:2.0 (fun _ -> log := "second" :: !log);
  check Alcotest.int "partial drain stops at until" 1 (Engine.run ~until:1.0 e);
  Engine.schedule e ~delay:1.0 (fun _ -> log := "third" :: !log);
  ignore (Engine.run e);
  check
    (Alcotest.list Alcotest.string)
    "FIFO order preserved across the drain boundary"
    [ "early"; "first"; "second"; "third" ]
    (List.rev !log)

let test_engine_pending_after_partial_drain () =
  let e = Engine.create () in
  for i = 1 to 6 do
    Engine.schedule e ~delay:(float_of_int i) (fun _ -> ())
  done;
  check Alcotest.int "all queued" 6 (Engine.pending e);
  ignore (Engine.run ~until:3.0 e);
  check Alcotest.int "later events remain" 3 (Engine.pending e);
  check (Alcotest.float 1e-9) "clock at last executed event" 3.0 (Engine.now e);
  ignore (Engine.run ~until:3.5 e);
  check Alcotest.int "nothing in (3, 3.5]" 3 (Engine.pending e);
  ignore (Engine.run e);
  check Alcotest.int "drained" 0 (Engine.pending e)

let prop_engine_time_order =
  QCheck.Test.make ~name:"random schedules execute in time order" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_bound 1000))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun d ->
          Engine.schedule e ~delay:(float_of_int d) (fun e ->
              fired := Engine.now e :: !fired))
        delays;
      ignore (Engine.run e);
      let times = List.rev !fired in
      List.length times = List.length delays
      && List.for_all2
           (fun a b -> a <= b)
           (List.filteri (fun i _ -> i < List.length times - 1) times)
           (List.tl times))

(* ------------------------------------------------------------------ *)
(* Forward                                                             *)

let env_fixture =
  lazy (Forward.make_env (Internet.build Internet.default_params))

let test_forward_router_to_router () =
  let env = Lazy.force env_fixture in
  let inet = env.Forward.inet in
  (* every router can reach every other router's address *)
  let n = Internet.num_routers inet in
  let rng = Topology.Rng.create 17L in
  for _ = 1 to 200 do
    let a = Topology.Rng.int rng n and b = Topology.Rng.int rng n in
    let dst = (Internet.router inet b).Internet.raddr in
    let p = Packet.make_data ~src:Ipv4.any ~dst "x" in
    let trace = Forward.forward env p ~entry:a in
    match trace.Forward.outcome with
    | Forward.Router_accepted r -> check Alcotest.int "right router" b r
    | _ -> Alcotest.fail (Printf.sprintf "router %d -> %d undelivered" a b)
  done

let test_forward_endhost_delivery () =
  let env = Lazy.force env_fixture in
  let inet = env.Forward.inet in
  let hn = Array.length inet.Internet.endhosts in
  let rng = Topology.Rng.create 18L in
  for _ = 1 to 200 do
    let src = Topology.Rng.int rng hn and dst = Topology.Rng.int rng hn in
    let dsta = (Internet.endhost inet dst).Internet.haddr in
    let p = Packet.make_data ~src:(Internet.endhost inet src).Internet.haddr ~dst:dsta "x" in
    let trace = Forward.send_from_endhost env p ~endhost:src in
    match trace.Forward.outcome with
    | Forward.Endhost_accepted h -> check Alcotest.int "right endhost" dst h
    | _ -> Alcotest.fail "endhost pair undelivered"
  done

let test_forward_trace_walks_edges () =
  let env = Lazy.force env_fixture in
  let inet = env.Forward.inet in
  let dst = (Internet.router inet (Internet.num_routers inet - 1)).Internet.raddr in
  let p = Packet.make_data ~src:Ipv4.any ~dst "x" in
  let trace = Forward.forward env p ~entry:0 in
  let rec consecutive = function
    | a :: (b :: _ as rest) ->
        Topology.Graph.has_edge inet.Internet.graph a b && consecutive rest
    | _ -> true
  in
  check Alcotest.bool "hops are real edges" true (consecutive trace.Forward.hops);
  check Alcotest.bool "metric positive" true (Forward.path_metric env trace > 0.0);
  check Alcotest.int "hop count" (List.length trace.Forward.hops - 1)
    (Forward.hop_count trace)

let test_forward_ttl_expiry () =
  let env = Lazy.force env_fixture in
  let inet = env.Forward.inet in
  let dst = (Internet.router inet (Internet.num_routers inet - 1)).Internet.raddr in
  let p = { (Packet.make_data ~src:Ipv4.any ~dst "x") with Packet.ttl = 2 } in
  let trace = Forward.forward env p ~entry:0 in
  (match trace.Forward.outcome with
  | Forward.Dropped Forward.Ttl_expired -> ()
  | Forward.Router_accepted _ ->
      (* entry may be adjacent; retry with ttl 1 and a far target *)
      Alcotest.fail "expected ttl expiry for distant destination"
  | _ -> Alcotest.fail "unexpected outcome");
  check Alcotest.bool "trace cut short" true (List.length trace.Forward.hops <= 2)

let test_forward_no_route () =
  let env = Lazy.force env_fixture in
  (* an address in an unallocated domain block *)
  let dst = Ipv4.of_string "9.9.9.9" in
  let p = Packet.make_data ~src:Ipv4.any ~dst "x" in
  let trace = Forward.forward env p ~entry:0 in
  match trace.Forward.outcome with
  | Forward.Dropped Forward.No_route -> ()
  | _ -> Alcotest.fail "expected no-route drop"

let test_forward_anycast_intra () =
  (* fresh env to avoid polluting the shared fixture's IGPs *)
  let env = Forward.make_env (Internet.build Internet.default_params) in
  let inet = env.Forward.inet in
  let group = Addressing.anycast_global ~group:8 in
  let dom = Internet.domain inet 0 in
  let member = dom.Internet.router_ids.(0) in
  Routing.Igp.advertise_anycast env.Forward.igps.(0) ~group ~member;
  Interdomain.Bgp.originate env.Forward.bgp ~domain:0 group;
  ignore (Forward.reconverge env);
  let dst = Addressing.anycast_address group in
  (* from inside the domain *)
  let local = dom.Internet.router_ids.(Array.length dom.Internet.router_ids - 1) in
  check Alcotest.(option int) "local redirection" (Some member)
    (Forward.anycast_member_reached env ~dst ~entry:local);
  (* from a remote domain: crosses BGP then lands at the member *)
  let remote = (Internet.domain inet 7).Internet.router_ids.(0) in
  check Alcotest.(option int) "remote redirection" (Some member)
    (Forward.anycast_member_reached env ~dst ~entry:remote)

let prop_forward_trace_shape =
  QCheck.Test.make ~name:"traces start at the entry and never self-loop"
    ~count:80
    QCheck.(pair (int_bound 10000) (int_bound 10000))
    (fun (a, b) ->
      let env = Lazy.force env_fixture in
      let inet = env.Forward.inet in
      let entry = a mod Internet.num_routers inet in
      let dst =
        (Internet.endhost inet (b mod Array.length inet.Internet.endhosts))
          .Internet.haddr
      in
      let p = Packet.make_data ~src:Ipv4.any ~dst "x" in
      let trace = Forward.forward env p ~entry in
      let rec no_self_loop = function
        | x :: (y :: _ as rest) -> x <> y && no_self_loop rest
        | _ -> true
      in
      (match trace.Forward.hops with
      | first :: _ -> first = entry
      | [] -> false)
      && no_self_loop trace.Forward.hops)

let prop_forward_universal_reachability =
  QCheck.Test.make ~name:"all endhost pairs deliver on random internets"
    ~count:5
    QCheck.(int_bound 10000)
    (fun seed ->
      let params =
        { Internet.default_params with Internet.seed = Int64.of_int seed }
      in
      let env = Forward.make_env (Internet.build params) in
      let inet = env.Forward.inet in
      let hn = Array.length inet.Internet.endhosts in
      let rng = Topology.Rng.create (Int64.of_int (seed + 1)) in
      List.for_all
        (fun _ ->
          let src = Topology.Rng.int rng hn and dst = Topology.Rng.int rng hn in
          let dsta = (Internet.endhost inet dst).Internet.haddr in
          let p = Packet.make_data ~src:Ipv4.any ~dst:dsta "x" in
          Forward.delivered (Forward.send_from_endhost env p ~endhost:src))
        (List.init 40 Fun.id))

(* ------------------------------------------------------------------ *)
(* Mixed IGP flavors                                                   *)

let mixed_env =
  lazy
    (Forward.make_env
       ~flavor_of:(fun d ->
         if d mod 2 = 0 then Routing.Igp.Linkstate_igp else Routing.Igp.Distvec_igp)
       (Internet.build Internet.default_params))

let test_mixed_igp_universal_reachability () =
  let env = Lazy.force mixed_env in
  let inet = env.Forward.inet in
  let hn = Array.length inet.Internet.endhosts in
  let rng = Topology.Rng.create 31L in
  for _ = 1 to 150 do
    let src = Topology.Rng.int rng hn and dst = Topology.Rng.int rng hn in
    let dsta = (Internet.endhost inet dst).Internet.haddr in
    let p = Packet.make_data ~src:Ipv4.any ~dst:dsta "x" in
    let trace = Forward.send_from_endhost env p ~endhost:src in
    match trace.Forward.outcome with
    | Forward.Endhost_accepted h -> check Alcotest.int "delivered" dst h
    | _ -> Alcotest.fail "mixed-IGP delivery failed"
  done

let test_mixed_igp_anycast_in_dv_domain () =
  let env = Lazy.force mixed_env in
  let inet = env.Forward.inet in
  (* domain 5 runs distance-vector under the mixed flavoring *)
  check Alcotest.bool "fixture sanity: domain 5 is DV" true
    (Routing.Igp.flavor env.Forward.igps.(5) = Routing.Igp.Distvec_igp);
  let group = Addressing.anycast_global ~group:8 in
  let member = (Internet.domain inet 5).Internet.router_ids.(0) in
  Routing.Igp.advertise_anycast env.Forward.igps.(5) ~group ~member;
  Interdomain.Bgp.originate env.Forward.bgp ~domain:5 group;
  ignore (Forward.reconverge env);
  let dst = Addressing.anycast_address group in
  (* local and remote clients all reach the DV-domain member *)
  check Alcotest.(option int) "local" (Some member)
    (Forward.anycast_member_reached env ~dst
       ~entry:(Internet.domain inet 5).Internet.router_ids.(3));
  check Alcotest.(option int) "remote" (Some member)
    (Forward.anycast_member_reached env ~dst
       ~entry:(Internet.domain inet 8).Internet.router_ids.(0));
  (* DV reveals no member identity to the control plane *)
  check Alcotest.bool "DV hides the member set" true
    (Routing.Igp.anycast_members env.Forward.igps.(5) ~group = None)

(* ------------------------------------------------------------------ *)
(* Lsproto                                                             *)

module Lsproto = Simcore.Lsproto

let ls_fixture ?(n = 10) ?(seed = 3L) () =
  let inet =
    Internet.build_custom ~seed
      [| { Internet.routers = n; endhosts = 1; transit = true } |]
      []
  in
  let proto = Lsproto.create inet ~domain:0 in
  let engine = Engine.create () in
  Lsproto.start proto engine;
  ignore (Engine.run engine);
  (inet, proto, engine)

let test_lsproto_synchronizes () =
  let _, proto, _ = ls_fixture () in
  check Alcotest.bool "all LSDBs identical" true (Lsproto.lsdb_synchronized proto)

let test_lsproto_views_match_linkstate () =
  let inet, proto, _ = ls_fixture () in
  let ls = Linkstate.compute inet ~domain:0 in
  let routers = Linkstate.routers ls in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check (Alcotest.float 1e-9)
            (Printf.sprintf "view %d->%d" a b)
            (Linkstate.distance ls ~src:a ~dst:b)
            (Lsproto.distance_view proto ~router:a ~dst:b))
        routers)
    routers

let test_lsproto_flood_cost_bounded () =
  let inet, proto, _ = ls_fixture () in
  let intra_edges = Topology.Graph.edge_count inet.Internet.graph in
  let n = Array.length (Internet.domain inet 0).Internet.router_ids in
  let s = Lsproto.stats proto in
  check Alcotest.int "one origination per router" n s.Lsproto.originations;
  (* each LSA crosses each link at most twice (once per direction) *)
  check Alcotest.bool "message bound" true
    (s.Lsproto.messages <= n * 2 * intra_edges);
  check Alcotest.bool "messages were sent" true (s.Lsproto.messages > 0)

let test_lsproto_anycast_propagates () =
  let inet, proto, engine = ls_fixture () in
  let group = Addressing.anycast_global ~group:8 in
  let member = (Internet.domain inet 0).Internet.router_ids.(3) in
  Lsproto.advertise_anycast proto engine ~router:member group;
  (* before the flood runs, a remote router may not know yet *)
  let far =
    (Internet.domain inet 0).Internet.router_ids.(7)
  in
  ignore (Engine.run engine);
  check Alcotest.(list int) "everyone sees the member" [ member ]
    (Lsproto.members_view proto ~router:far group);
  check Alcotest.bool "synchronized after flood" true
    (Lsproto.lsdb_synchronized proto);
  (* withdrawal also floods *)
  Lsproto.withdraw_anycast proto engine ~router:member group;
  ignore (Engine.run engine);
  check Alcotest.(list int) "member gone from views" []
    (Lsproto.members_view proto ~router:far group)

let test_lsproto_convergence_latency () =
  (* with unit link delay, an update reaches everyone within the
     origin's eccentricity *)
  let inet, proto, engine = ls_fixture ~n:16 () in
  let group = Addressing.anycast_global ~group:9 in
  let member = (Internet.domain inet 0).Internet.router_ids.(0) in
  let t0 = Engine.now engine in
  Lsproto.advertise_anycast proto engine ~router:member group;
  ignore (Engine.run engine);
  let ecc =
    Routing.Spt.eccentricity inet.Internet.graph ~src:member ~allow:(fun _ -> true)
  in
  let s = Lsproto.stats proto in
  check Alcotest.bool "flood finishes within eccentricity" true
    (s.Lsproto.last_change -. t0 <= float_of_int ecc +. 1e-9)

let test_lsproto_link_failure_reconverges () =
  let inet, proto, engine = ls_fixture ~n:10 ~seed:6L () in
  (* remove a cycle edge so the domain stays connected *)
  let g = inet.Internet.graph in
  let edge =
    List.find_opt
      (fun (a, b, _) ->
        Topology.Graph.remove_edge g a b;
        let still = Topology.Graph.is_connected g in
        if not still then Topology.Graph.add_edge g a b 1.0;
        still)
      (Topology.Graph.edges g)
  in
  match edge with
  | None -> Alcotest.fail "no removable edge"
  | Some (a, b, _) ->
      Lsproto.link_failed proto engine a b;
      ignore (Engine.run engine);
      check Alcotest.bool "synchronized after failure" true
        (Lsproto.lsdb_synchronized proto);
      (* every router's view equals routing recomputed on the mutated
         graph *)
      let ls = Linkstate.compute inet ~domain:0 in
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              check (Alcotest.float 1e-9)
                (Printf.sprintf "post-failure view %d->%d" src dst)
                (Linkstate.distance ls ~src ~dst)
                (Lsproto.distance_view proto ~router:src ~dst))
            (Linkstate.routers ls))
        (Linkstate.routers ls)

(* ------------------------------------------------------------------ *)
(* Fib                                                                 *)

module Fib = Simcore.Fib

let fib_env =
  lazy
    (let env = Forward.make_env (Internet.build Internet.default_params) in
     (* some anycast state so group entries are exercised too *)
     let group = Addressing.anycast_global ~group:8 in
     let dom = Internet.domain env.Forward.inet 5 in
     Array.iter
       (fun m -> Routing.Igp.advertise_anycast env.Forward.igps.(5) ~group ~member:m)
       dom.Internet.router_ids;
     Interdomain.Bgp.originate env.Forward.bgp ~domain:5 group;
     ignore (Forward.reconverge env);
     (env, Fib.compile env))

let test_fib_agrees_with_decide () =
  let env, fib = Lazy.force fib_env in
  let inet = env.Forward.inet in
  let rng = Topology.Rng.create 21L in
  let samples =
    List.init 300 (fun _ ->
        let entry = Topology.Rng.int rng (Internet.num_routers inet) in
        let dst =
          match Topology.Rng.int rng 4 with
          | 0 ->
              (Internet.router inet (Topology.Rng.int rng (Internet.num_routers inet)))
                .Internet.raddr
          | 1 ->
              (Internet.endhost inet
                 (Topology.Rng.int rng (Array.length inet.Internet.endhosts)))
                .Internet.haddr
          | 2 -> Addressing.anycast_address (Addressing.anycast_global ~group:8)
          | _ -> Ipv4.of_string "9.9.9.9" (* unrouted *)
        in
        (entry, dst))
  in
  match Fib.agrees_with_decide fib env ~samples with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_fib_sizes_sane () =
  let env, fib = Lazy.force fib_env in
  let inet = env.Forward.inet in
  for r = 0 to Internet.num_routers inet - 1 do
    let d = (Internet.router inet r).Internet.rdomain in
    let dom = Internet.domain inet d in
    (* at least: every in-domain router and endhost, plus the external
       prefixes the domain's RIB carries *)
    let minimum =
      Array.length dom.Internet.router_ids
      + Array.length dom.Internet.endhost_ids
    in
    check Alcotest.bool "enough entries" true (Fib.size fib ~router:r >= minimum)
  done;
  check Alcotest.bool "total is the per-router sum" true
    (Fib.total_entries fib
    = List.fold_left ( + ) 0
        (List.init (Internet.num_routers inet) (fun r -> Fib.size fib ~router:r)))

let test_fib_forward_delivers () =
  let env, fib = Lazy.force fib_env in
  let inet = env.Forward.inet in
  let dst = (Internet.endhost inet 40).Internet.haddr in
  let p = Netcore.Packet.make_data ~src:Ipv4.any ~dst "x" in
  let trace = Fib.forward fib env p ~entry:0 in
  match trace.Forward.outcome with
  | Forward.Endhost_accepted 40 -> ()
  | _ -> Alcotest.fail "fib forwarding failed to deliver"

(* ------------------------------------------------------------------ *)
(* Bgpdyn                                                              *)

module Bgpdyn = Simcore.Bgpdyn

let test_bgpdyn_matches_synchronous () =
  let inet = Internet.build Internet.default_params in
  let dyn = Bgpdyn.create inet in
  let engine = Engine.create () in
  Bgpdyn.originate_all_domain_prefixes dyn engine;
  ignore (Engine.run engine);
  (match Bgpdyn.agrees_with_synchronous dyn with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let s = Bgpdyn.stats dyn in
  check Alcotest.bool "updates flowed" true (s.Bgpdyn.updates > 0);
  check Alcotest.bool "every domain changed at least once" true
    (s.Bgpdyn.best_changes >= Internet.num_domains inet)

let test_bgpdyn_matches_synchronous_random_seeds () =
  List.iter
    (fun seed ->
      let params = { Internet.default_params with Internet.seed } in
      let inet = Internet.build params in
      let dyn = Bgpdyn.create ~mrai:1.0 inet in
      let engine = Engine.create () in
      Bgpdyn.originate_all_domain_prefixes dyn engine;
      ignore (Engine.run engine);
      match Bgpdyn.agrees_with_synchronous dyn with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    [ 7L; 1234L; 777L ]

let test_bgpdyn_incremental_origination () =
  let inet = Internet.build Internet.default_params in
  let dyn = Bgpdyn.create inet in
  let engine = Engine.create () in
  Bgpdyn.originate_all_domain_prefixes dyn engine;
  ignore (Engine.run engine);
  (* a new anycast prefix appears later and still reaches everyone *)
  let g = Addressing.anycast_global ~group:8 in
  Bgpdyn.originate dyn engine ~domain:5 g;
  ignore (Engine.run engine);
  for d = 0 to Internet.num_domains inet - 1 do
    match Bgpdyn.best_path dyn ~domain:d g with
    | Some path ->
        check Alcotest.bool "terminates at the origin" true
          (List.nth path (List.length path - 1) = 5)
    | None -> Alcotest.fail (Printf.sprintf "domain %d missing anycast route" d)
  done;
  match Bgpdyn.agrees_with_synchronous dyn with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_bgpdyn_mrai_tradeoff () =
  (* larger MRAI coalesces updates: fewer messages, later quiescence *)
  let run mrai =
    let inet = Internet.build Internet.default_params in
    let dyn = Bgpdyn.create ~mrai inet in
    let engine = Engine.create () in
    Bgpdyn.originate_all_domain_prefixes dyn engine;
    ignore (Engine.run engine);
    Bgpdyn.stats dyn
  in
  let fast = run 0.01 and slow = run 5.0 in
  check Alcotest.bool "mrai reduces update count" true
    (slow.Bgpdyn.updates <= fast.Bgpdyn.updates);
  check Alcotest.bool "mrai delays quiescence" true
    (slow.Bgpdyn.last_change >= fast.Bgpdyn.last_change)

let () =
  Alcotest.run "simcore"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "fifo at equal time" `Quick test_engine_fifo_at_same_time;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "rejects bad input" `Quick test_engine_rejects;
          Alcotest.test_case "schedule_at now" `Quick test_engine_schedule_at_now;
          Alcotest.test_case "fifo across until" `Quick
            test_engine_fifo_across_until;
          Alcotest.test_case "pending after partial drain" `Quick
            test_engine_pending_after_partial_drain;
          qcheck prop_engine_time_order;
        ] );
      ( "forward",
        [
          Alcotest.test_case "router to router" `Quick test_forward_router_to_router;
          Alcotest.test_case "endhost delivery" `Quick test_forward_endhost_delivery;
          Alcotest.test_case "trace walks real edges" `Quick
            test_forward_trace_walks_edges;
          Alcotest.test_case "ttl expiry" `Quick test_forward_ttl_expiry;
          Alcotest.test_case "no route" `Quick test_forward_no_route;
          Alcotest.test_case "intra+inter anycast" `Quick test_forward_anycast_intra;
          qcheck prop_forward_trace_shape;
          qcheck prop_forward_universal_reachability;
        ] );
      ( "mixed-igp",
        [
          Alcotest.test_case "universal reachability" `Quick
            test_mixed_igp_universal_reachability;
          Alcotest.test_case "anycast in a DV domain" `Quick
            test_mixed_igp_anycast_in_dv_domain;
        ] );
      ( "lsproto",
        [
          Alcotest.test_case "LSDBs synchronize" `Quick test_lsproto_synchronizes;
          Alcotest.test_case "views match linkstate" `Quick
            test_lsproto_views_match_linkstate;
          Alcotest.test_case "flood cost bounded" `Quick test_lsproto_flood_cost_bounded;
          Alcotest.test_case "anycast propagates" `Quick test_lsproto_anycast_propagates;
          Alcotest.test_case "convergence latency" `Quick
            test_lsproto_convergence_latency;
          Alcotest.test_case "link failure re-converges" `Quick
            test_lsproto_link_failure_reconverges;
        ] );
      ( "fib",
        [
          Alcotest.test_case "agrees with decide" `Quick test_fib_agrees_with_decide;
          Alcotest.test_case "sizes sane" `Quick test_fib_sizes_sane;
          Alcotest.test_case "forwarding delivers" `Quick test_fib_forward_delivers;
        ] );
      ( "bgpdyn",
        [
          Alcotest.test_case "matches synchronous engine" `Quick
            test_bgpdyn_matches_synchronous;
          Alcotest.test_case "matches across seeds" `Quick
            test_bgpdyn_matches_synchronous_random_seeds;
          Alcotest.test_case "incremental origination" `Quick
            test_bgpdyn_incremental_origination;
          Alcotest.test_case "MRAI trade-off" `Quick test_bgpdyn_mrai_tradeoff;
        ] );
    ]
