(* Tests for the event engine and the IPv4 forwarding plane. *)

module Engine = Simcore.Engine
module Forward = Simcore.Forward
module Internet = Topology.Internet
module Relationship = Topology.Relationship
module Packet = Netcore.Packet
module Ipv4 = Netcore.Ipv4
module Addressing = Netcore.Addressing
module Linkstate = Routing.Linkstate

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3.0 (fun _ -> log := 3 :: !log);
  Engine.schedule e ~delay:1.0 (fun _ -> log := 1 :: !log);
  Engine.schedule e ~delay:2.0 (fun _ -> log := 2 :: !log);
  let n = Engine.run e in
  check Alcotest.int "all ran" 3 n;
  check Alcotest.(list int) "time order" [ 1; 2; 3 ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 3.0 (Engine.now e)

let test_engine_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun _ -> log := i :: !log)
  done;
  ignore (Engine.run e);
  check Alcotest.(list int) "scheduling order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun e ->
      log := "a" :: !log;
      Engine.schedule e ~delay:1.0 (fun _ -> log := "c" :: !log);
      Engine.schedule e ~delay:0.5 (fun _ -> log := "b" :: !log));
  ignore (Engine.run e);
  check Alcotest.(list string) "nested order" [ "a"; "b"; "c" ] (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun _ -> incr count)
  done;
  let ran = Engine.run ~until:5.5 e in
  check Alcotest.int "stopped at limit" 5 ran;
  check Alcotest.int "remaining queued" 5 (Engine.pending e);
  ignore (Engine.run e);
  check Alcotest.int "rest ran" 10 !count

let test_engine_rejects () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) (fun _ -> ()));
  Engine.schedule e ~delay:5.0 (fun _ -> ());
  ignore (Engine.run e);
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      Engine.schedule_at e ~time:1.0 (fun _ -> ()))

let test_engine_schedule_at_now () =
  (* ~time:(now t) is the boundary case of "not before now": legal, and
     the callback fires without advancing the clock. *)
  let e = Engine.create () in
  Engine.schedule e ~delay:2.0 (fun _ -> ());
  ignore (Engine.run e);
  let fired_at = ref nan in
  Engine.schedule_at e ~time:(Engine.now e) (fun e -> fired_at := Engine.now e);
  check Alcotest.int "one event ran" 1 (Engine.run e);
  check (Alcotest.float 1e-9) "fired at the current instant" 2.0 !fired_at;
  check (Alcotest.float 1e-9) "clock did not advance" 2.0 (Engine.now e)

let test_engine_fifo_across_until () =
  (* Equal-time FIFO must survive a partial drain: events co-scheduled
     at t=2 but split by run ~until:1 still fire in scheduling order. *)
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun _ -> log := "first" :: !log);
  Engine.schedule e ~delay:1.0 (fun _ -> log := "early" :: !log);
  Engine.schedule e ~delay:2.0 (fun _ -> log := "second" :: !log);
  check Alcotest.int "partial drain stops at until" 1 (Engine.run ~until:1.0 e);
  Engine.schedule e ~delay:1.0 (fun _ -> log := "third" :: !log);
  ignore (Engine.run e);
  check
    (Alcotest.list Alcotest.string)
    "FIFO order preserved across the drain boundary"
    [ "early"; "first"; "second"; "third" ]
    (List.rev !log)

let test_engine_pending_after_partial_drain () =
  let e = Engine.create () in
  for i = 1 to 6 do
    Engine.schedule e ~delay:(float_of_int i) (fun _ -> ())
  done;
  check Alcotest.int "all queued" 6 (Engine.pending e);
  ignore (Engine.run ~until:3.0 e);
  check Alcotest.int "later events remain" 3 (Engine.pending e);
  check (Alcotest.float 1e-9) "clock at last executed event" 3.0 (Engine.now e);
  ignore (Engine.run ~until:3.5 e);
  check Alcotest.int "nothing in (3, 3.5]" 3 (Engine.pending e);
  ignore (Engine.run e);
  check Alcotest.int "drained" 0 (Engine.pending e)

let prop_engine_time_order =
  QCheck.Test.make ~name:"random schedules execute in time order" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_bound 1000))
    (fun delays ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun d ->
          Engine.schedule e ~delay:(float_of_int d) (fun e ->
              fired := Engine.now e :: !fired))
        delays;
      ignore (Engine.run e);
      let times = List.rev !fired in
      List.length times = List.length delays
      && List.for_all2
           (fun a b -> a <= b)
           (List.filteri (fun i _ -> i < List.length times - 1) times)
           (List.tl times))

(* ------------------------------------------------------------------ *)
(* Forward                                                             *)

let env_fixture =
  lazy (Forward.make_env (Internet.build Internet.default_params))

let test_forward_router_to_router () =
  let env = Lazy.force env_fixture in
  let inet = env.Forward.inet in
  (* every router can reach every other router's address *)
  let n = Internet.num_routers inet in
  let rng = Topology.Rng.create 17L in
  for _ = 1 to 200 do
    let a = Topology.Rng.int rng n and b = Topology.Rng.int rng n in
    let dst = (Internet.router inet b).Internet.raddr in
    let p = Packet.make_data ~src:Ipv4.any ~dst "x" in
    let trace = Forward.forward env p ~entry:a in
    match trace.Forward.outcome with
    | Forward.Router_accepted r -> check Alcotest.int "right router" b r
    | _ -> Alcotest.fail (Printf.sprintf "router %d -> %d undelivered" a b)
  done

let test_forward_endhost_delivery () =
  let env = Lazy.force env_fixture in
  let inet = env.Forward.inet in
  let hn = Array.length inet.Internet.endhosts in
  let rng = Topology.Rng.create 18L in
  for _ = 1 to 200 do
    let src = Topology.Rng.int rng hn and dst = Topology.Rng.int rng hn in
    let dsta = (Internet.endhost inet dst).Internet.haddr in
    let p = Packet.make_data ~src:(Internet.endhost inet src).Internet.haddr ~dst:dsta "x" in
    let trace = Forward.send_from_endhost env p ~endhost:src in
    match trace.Forward.outcome with
    | Forward.Endhost_accepted h -> check Alcotest.int "right endhost" dst h
    | _ -> Alcotest.fail "endhost pair undelivered"
  done

let test_forward_trace_walks_edges () =
  let env = Lazy.force env_fixture in
  let inet = env.Forward.inet in
  let dst = (Internet.router inet (Internet.num_routers inet - 1)).Internet.raddr in
  let p = Packet.make_data ~src:Ipv4.any ~dst "x" in
  let trace = Forward.forward env p ~entry:0 in
  let rec consecutive = function
    | a :: (b :: _ as rest) ->
        Topology.Graph.has_edge inet.Internet.graph a b && consecutive rest
    | _ -> true
  in
  check Alcotest.bool "hops are real edges" true (consecutive trace.Forward.hops);
  check Alcotest.bool "metric positive" true (Forward.path_metric env trace > 0.0);
  check Alcotest.int "hop count" (List.length trace.Forward.hops - 1)
    (Forward.hop_count trace)

let test_forward_ttl_expiry () =
  let env = Lazy.force env_fixture in
  let inet = env.Forward.inet in
  let dst = (Internet.router inet (Internet.num_routers inet - 1)).Internet.raddr in
  let p = { (Packet.make_data ~src:Ipv4.any ~dst "x") with Packet.ttl = 2 } in
  let trace = Forward.forward env p ~entry:0 in
  (match trace.Forward.outcome with
  | Forward.Dropped Forward.Ttl_expired -> ()
  | Forward.Router_accepted _ ->
      (* entry may be adjacent; retry with ttl 1 and a far target *)
      Alcotest.fail "expected ttl expiry for distant destination"
  | _ -> Alcotest.fail "unexpected outcome");
  check Alcotest.bool "trace cut short" true (List.length trace.Forward.hops <= 2)

let test_forward_no_route () =
  let env = Lazy.force env_fixture in
  (* an address in an unallocated domain block *)
  let dst = Ipv4.of_string "9.9.9.9" in
  let p = Packet.make_data ~src:Ipv4.any ~dst "x" in
  let trace = Forward.forward env p ~entry:0 in
  match trace.Forward.outcome with
  | Forward.Dropped Forward.No_route -> ()
  | _ -> Alcotest.fail "expected no-route drop"

let test_forward_anycast_intra () =
  (* fresh env to avoid polluting the shared fixture's IGPs *)
  let env = Forward.make_env (Internet.build Internet.default_params) in
  let inet = env.Forward.inet in
  let group = Addressing.anycast_global ~group:8 in
  let dom = Internet.domain inet 0 in
  let member = dom.Internet.router_ids.(0) in
  Routing.Igp.advertise_anycast env.Forward.igps.(0) ~group ~member;
  Interdomain.Bgp.originate env.Forward.bgp ~domain:0 group;
  ignore (Forward.reconverge env);
  let dst = Addressing.anycast_address group in
  (* from inside the domain *)
  let local = dom.Internet.router_ids.(Array.length dom.Internet.router_ids - 1) in
  check Alcotest.(option int) "local redirection" (Some member)
    (Forward.anycast_member_reached env ~dst ~entry:local);
  (* from a remote domain: crosses BGP then lands at the member *)
  let remote = (Internet.domain inet 7).Internet.router_ids.(0) in
  check Alcotest.(option int) "remote redirection" (Some member)
    (Forward.anycast_member_reached env ~dst ~entry:remote)

let prop_forward_trace_shape =
  QCheck.Test.make ~name:"traces start at the entry and never self-loop"
    ~count:80
    QCheck.(pair (int_bound 10000) (int_bound 10000))
    (fun (a, b) ->
      let env = Lazy.force env_fixture in
      let inet = env.Forward.inet in
      let entry = a mod Internet.num_routers inet in
      let dst =
        (Internet.endhost inet (b mod Array.length inet.Internet.endhosts))
          .Internet.haddr
      in
      let p = Packet.make_data ~src:Ipv4.any ~dst "x" in
      let trace = Forward.forward env p ~entry in
      let rec no_self_loop = function
        | x :: (y :: _ as rest) -> x <> y && no_self_loop rest
        | _ -> true
      in
      (match trace.Forward.hops with
      | first :: _ -> first = entry
      | [] -> false)
      && no_self_loop trace.Forward.hops)

let prop_forward_universal_reachability =
  QCheck.Test.make ~name:"all endhost pairs deliver on random internets"
    ~count:5
    QCheck.(int_bound 10000)
    (fun seed ->
      let params =
        { Internet.default_params with Internet.seed = Int64.of_int seed }
      in
      let env = Forward.make_env (Internet.build params) in
      let inet = env.Forward.inet in
      let hn = Array.length inet.Internet.endhosts in
      let rng = Topology.Rng.create (Int64.of_int (seed + 1)) in
      List.for_all
        (fun _ ->
          let src = Topology.Rng.int rng hn and dst = Topology.Rng.int rng hn in
          let dsta = (Internet.endhost inet dst).Internet.haddr in
          let p = Packet.make_data ~src:Ipv4.any ~dst:dsta "x" in
          Forward.delivered (Forward.send_from_endhost env p ~endhost:src))
        (List.init 40 Fun.id))

(* ------------------------------------------------------------------ *)
(* Mixed IGP flavors                                                   *)

let mixed_env =
  lazy
    (Forward.make_env
       ~flavor_of:(fun d ->
         if d mod 2 = 0 then Routing.Igp.Linkstate_igp else Routing.Igp.Distvec_igp)
       (Internet.build Internet.default_params))

let test_mixed_igp_universal_reachability () =
  let env = Lazy.force mixed_env in
  let inet = env.Forward.inet in
  let hn = Array.length inet.Internet.endhosts in
  let rng = Topology.Rng.create 31L in
  for _ = 1 to 150 do
    let src = Topology.Rng.int rng hn and dst = Topology.Rng.int rng hn in
    let dsta = (Internet.endhost inet dst).Internet.haddr in
    let p = Packet.make_data ~src:Ipv4.any ~dst:dsta "x" in
    let trace = Forward.send_from_endhost env p ~endhost:src in
    match trace.Forward.outcome with
    | Forward.Endhost_accepted h -> check Alcotest.int "delivered" dst h
    | _ -> Alcotest.fail "mixed-IGP delivery failed"
  done

let test_mixed_igp_anycast_in_dv_domain () =
  let env = Lazy.force mixed_env in
  let inet = env.Forward.inet in
  (* domain 5 runs distance-vector under the mixed flavoring *)
  check Alcotest.bool "fixture sanity: domain 5 is DV" true
    (Routing.Igp.flavor env.Forward.igps.(5) = Routing.Igp.Distvec_igp);
  let group = Addressing.anycast_global ~group:8 in
  let member = (Internet.domain inet 5).Internet.router_ids.(0) in
  Routing.Igp.advertise_anycast env.Forward.igps.(5) ~group ~member;
  Interdomain.Bgp.originate env.Forward.bgp ~domain:5 group;
  ignore (Forward.reconverge env);
  let dst = Addressing.anycast_address group in
  (* local and remote clients all reach the DV-domain member *)
  check Alcotest.(option int) "local" (Some member)
    (Forward.anycast_member_reached env ~dst
       ~entry:(Internet.domain inet 5).Internet.router_ids.(3));
  check Alcotest.(option int) "remote" (Some member)
    (Forward.anycast_member_reached env ~dst
       ~entry:(Internet.domain inet 8).Internet.router_ids.(0));
  (* DV reveals no member identity to the control plane *)
  check Alcotest.bool "DV hides the member set" true
    (Routing.Igp.anycast_members env.Forward.igps.(5) ~group = None)

(* ------------------------------------------------------------------ *)
(* Lsproto                                                             *)

module Lsproto = Simcore.Lsproto

let ls_fixture ?(n = 10) ?(seed = 3L) () =
  let inet =
    Internet.build_custom ~seed
      [| { Internet.routers = n; endhosts = 1; transit = true } |]
      []
  in
  let proto = Lsproto.create inet ~domain:0 in
  let engine = Engine.create () in
  Lsproto.start proto engine;
  ignore (Engine.run engine);
  (inet, proto, engine)

let test_lsproto_synchronizes () =
  let _, proto, _ = ls_fixture () in
  check Alcotest.bool "all LSDBs identical" true (Lsproto.lsdb_synchronized proto)

let test_lsproto_views_match_linkstate () =
  let inet, proto, _ = ls_fixture () in
  let ls = Linkstate.compute inet ~domain:0 in
  let routers = Linkstate.routers ls in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check (Alcotest.float 1e-9)
            (Printf.sprintf "view %d->%d" a b)
            (Linkstate.distance ls ~src:a ~dst:b)
            (Lsproto.distance_view proto ~router:a ~dst:b))
        routers)
    routers

let test_lsproto_flood_cost_bounded () =
  let inet, proto, _ = ls_fixture () in
  let intra_edges = Topology.Graph.edge_count inet.Internet.graph in
  let n = Array.length (Internet.domain inet 0).Internet.router_ids in
  let s = Lsproto.stats proto in
  check Alcotest.int "one origination per router" n s.Lsproto.originations;
  (* each LSA crosses each link at most twice (once per direction) *)
  check Alcotest.bool "message bound" true
    (s.Lsproto.messages <= n * 2 * intra_edges);
  check Alcotest.bool "messages were sent" true (s.Lsproto.messages > 0)

let test_lsproto_anycast_propagates () =
  let inet, proto, engine = ls_fixture () in
  let group = Addressing.anycast_global ~group:8 in
  let member = (Internet.domain inet 0).Internet.router_ids.(3) in
  Lsproto.advertise_anycast proto engine ~router:member group;
  (* before the flood runs, a remote router may not know yet *)
  let far =
    (Internet.domain inet 0).Internet.router_ids.(7)
  in
  ignore (Engine.run engine);
  check Alcotest.(list int) "everyone sees the member" [ member ]
    (Lsproto.members_view proto ~router:far group);
  check Alcotest.bool "synchronized after flood" true
    (Lsproto.lsdb_synchronized proto);
  (* withdrawal also floods *)
  Lsproto.withdraw_anycast proto engine ~router:member group;
  ignore (Engine.run engine);
  check Alcotest.(list int) "member gone from views" []
    (Lsproto.members_view proto ~router:far group)

let test_lsproto_convergence_latency () =
  (* with unit link delay, an update reaches everyone within the
     origin's eccentricity *)
  let inet, proto, engine = ls_fixture ~n:16 () in
  let group = Addressing.anycast_global ~group:9 in
  let member = (Internet.domain inet 0).Internet.router_ids.(0) in
  let t0 = Engine.now engine in
  Lsproto.advertise_anycast proto engine ~router:member group;
  ignore (Engine.run engine);
  let ecc =
    Routing.Spt.eccentricity inet.Internet.graph ~src:member ~allow:(fun _ -> true)
  in
  let s = Lsproto.stats proto in
  check Alcotest.bool "flood finishes within eccentricity" true
    (s.Lsproto.last_change -. t0 <= float_of_int ecc +. 1e-9)

let test_lsproto_link_failure_reconverges () =
  let inet, proto, engine = ls_fixture ~n:10 ~seed:6L () in
  (* remove a cycle edge so the domain stays connected *)
  let g = inet.Internet.graph in
  let edge =
    List.find_opt
      (fun (a, b, _) ->
        Topology.Graph.remove_edge g a b;
        let still = Topology.Graph.is_connected g in
        if not still then Topology.Graph.add_edge g a b 1.0;
        still)
      (Topology.Graph.edges g)
  in
  match edge with
  | None -> Alcotest.fail "no removable edge"
  | Some (a, b, _) ->
      Lsproto.link_failed proto engine a b;
      ignore (Engine.run engine);
      check Alcotest.bool "synchronized after failure" true
        (Lsproto.lsdb_synchronized proto);
      (* every router's view equals routing recomputed on the mutated
         graph *)
      let ls = Linkstate.compute inet ~domain:0 in
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              check (Alcotest.float 1e-9)
                (Printf.sprintf "post-failure view %d->%d" src dst)
                (Linkstate.distance ls ~src ~dst)
                (Lsproto.distance_view proto ~router:src ~dst))
            (Linkstate.routers ls))
        (Linkstate.routers ls)

(* ------------------------------------------------------------------ *)
(* Fib                                                                 *)

module Fib = Simcore.Fib

let fib_env =
  lazy
    (let env = Forward.make_env (Internet.build Internet.default_params) in
     (* some anycast state so group entries are exercised too *)
     let group = Addressing.anycast_global ~group:8 in
     let dom = Internet.domain env.Forward.inet 5 in
     Array.iter
       (fun m -> Routing.Igp.advertise_anycast env.Forward.igps.(5) ~group ~member:m)
       dom.Internet.router_ids;
     Interdomain.Bgp.originate env.Forward.bgp ~domain:5 group;
     ignore (Forward.reconverge env);
     (env, Fib.compile env))

let test_fib_agrees_with_decide () =
  let env, fib = Lazy.force fib_env in
  let inet = env.Forward.inet in
  let rng = Topology.Rng.create 21L in
  let samples =
    List.init 300 (fun _ ->
        let entry = Topology.Rng.int rng (Internet.num_routers inet) in
        let dst =
          match Topology.Rng.int rng 4 with
          | 0 ->
              (Internet.router inet (Topology.Rng.int rng (Internet.num_routers inet)))
                .Internet.raddr
          | 1 ->
              (Internet.endhost inet
                 (Topology.Rng.int rng (Array.length inet.Internet.endhosts)))
                .Internet.haddr
          | 2 -> Addressing.anycast_address (Addressing.anycast_global ~group:8)
          | _ -> Ipv4.of_string "9.9.9.9" (* unrouted *)
        in
        (entry, dst))
  in
  match Fib.agrees_with_decide fib env ~samples with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_fib_sizes_sane () =
  let env, fib = Lazy.force fib_env in
  let inet = env.Forward.inet in
  for r = 0 to Internet.num_routers inet - 1 do
    let d = (Internet.router inet r).Internet.rdomain in
    let dom = Internet.domain inet d in
    (* at least: every in-domain router and endhost, plus the external
       prefixes the domain's RIB carries *)
    let minimum =
      Array.length dom.Internet.router_ids
      + Array.length dom.Internet.endhost_ids
    in
    check Alcotest.bool "enough entries" true (Fib.size fib ~router:r >= minimum)
  done;
  check Alcotest.bool "total is the per-router sum" true
    (Fib.total_entries fib
    = List.fold_left ( + ) 0
        (List.init (Internet.num_routers inet) (fun r -> Fib.size fib ~router:r)))

let test_fib_forward_delivers () =
  let env, fib = Lazy.force fib_env in
  let inet = env.Forward.inet in
  let dst = (Internet.endhost inet 40).Internet.haddr in
  let p = Netcore.Packet.make_data ~src:Ipv4.any ~dst "x" in
  let trace = Fib.forward fib env p ~entry:0 in
  match trace.Forward.outcome with
  | Forward.Endhost_accepted 40 -> ()
  | _ -> Alcotest.fail "fib forwarding failed to deliver"

(* ------------------------------------------------------------------ *)
(* Bgpdyn                                                              *)

module Bgpdyn = Simcore.Bgpdyn

let test_bgpdyn_matches_synchronous () =
  let inet = Internet.build Internet.default_params in
  let dyn = Bgpdyn.create inet in
  let engine = Engine.create () in
  Bgpdyn.originate_all_domain_prefixes dyn engine;
  ignore (Engine.run engine);
  (match Bgpdyn.agrees_with_synchronous dyn with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let s = Bgpdyn.stats dyn in
  check Alcotest.bool "updates flowed" true (s.Bgpdyn.updates > 0);
  check Alcotest.bool "every domain changed at least once" true
    (s.Bgpdyn.best_changes >= Internet.num_domains inet)

let test_bgpdyn_matches_synchronous_random_seeds () =
  List.iter
    (fun seed ->
      let params = { Internet.default_params with Internet.seed } in
      let inet = Internet.build params in
      let dyn = Bgpdyn.create ~mrai:1.0 inet in
      let engine = Engine.create () in
      Bgpdyn.originate_all_domain_prefixes dyn engine;
      ignore (Engine.run engine);
      match Bgpdyn.agrees_with_synchronous dyn with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    [ 7L; 1234L; 777L ]

let test_bgpdyn_incremental_origination () =
  let inet = Internet.build Internet.default_params in
  let dyn = Bgpdyn.create inet in
  let engine = Engine.create () in
  Bgpdyn.originate_all_domain_prefixes dyn engine;
  ignore (Engine.run engine);
  (* a new anycast prefix appears later and still reaches everyone *)
  let g = Addressing.anycast_global ~group:8 in
  Bgpdyn.originate dyn engine ~domain:5 g;
  ignore (Engine.run engine);
  for d = 0 to Internet.num_domains inet - 1 do
    match Bgpdyn.best_path dyn ~domain:d g with
    | Some path ->
        check Alcotest.bool "terminates at the origin" true
          (List.nth path (List.length path - 1) = 5)
    | None -> Alcotest.fail (Printf.sprintf "domain %d missing anycast route" d)
  done;
  match Bgpdyn.agrees_with_synchronous dyn with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_bgpdyn_mrai_tradeoff () =
  (* larger MRAI coalesces updates: fewer messages, later quiescence *)
  let run mrai =
    let inet = Internet.build Internet.default_params in
    let dyn = Bgpdyn.create ~mrai inet in
    let engine = Engine.create () in
    Bgpdyn.originate_all_domain_prefixes dyn engine;
    ignore (Engine.run engine);
    Bgpdyn.stats dyn
  in
  let fast = run 0.01 and slow = run 5.0 in
  check Alcotest.bool "mrai reduces update count" true
    (slow.Bgpdyn.updates <= fast.Bgpdyn.updates);
  check Alcotest.bool "mrai delays quiescence" true
    (slow.Bgpdyn.last_change >= fast.Bgpdyn.last_change)

(* ------------------------------------------------------------------ *)
(* Engine timer handles                                                *)

let test_engine_timer_cancel () =
  let e = Engine.create () in
  let fired = ref [] in
  let h1 = Engine.timer e ~delay:1.0 (fun _ -> fired := 1 :: !fired) in
  let h2 = Engine.timer e ~delay:2.0 (fun _ -> fired := 2 :: !fired) in
  let h3 = Engine.timer e ~delay:3.0 (fun _ -> fired := 3 :: !fired) in
  check Alcotest.int "three pending" 3 (Engine.pending e);
  Engine.cancel e h2;
  check Alcotest.bool "cancelled handle not live" false (Engine.live h2);
  check Alcotest.bool "other handles live" true
    (Engine.live h1 && Engine.live h3);
  check Alcotest.int "pending excludes the cancelled event" 2 (Engine.pending e);
  check Alcotest.int "only live events run" 2 (Engine.run e);
  check Alcotest.(list int) "cancelled event never fires" [ 1; 3 ]
    (List.rev !fired);
  check Alcotest.bool "fired handle no longer live" false (Engine.live h1);
  (* double cancel and cancel-after-fire are no-ops *)
  Engine.cancel e h2;
  Engine.cancel e h1;
  check Alcotest.int "queue drained" 0 (Engine.pending e)

let test_engine_cancel_from_action () =
  (* a handler disarming a peer co-scheduled at the same instant — the
     keepalive pattern: the message arrives, the hold timer must die *)
  let e = Engine.create () in
  let fired = ref 0 in
  let peer = ref None in
  let _ =
    Engine.timer e ~delay:1.0 (fun e ->
        incr fired;
        match !peer with Some h -> Engine.cancel e h | None -> ())
  in
  peer := Some (Engine.timer e ~delay:1.0 (fun _ -> incr fired));
  ignore (Engine.run e);
  check Alcotest.int "peer cancelled before its turn" 1 !fired;
  check Alcotest.int "nothing left queued" 0 (Engine.pending e)

let test_engine_timer_rearm () =
  (* cancel + re-arm in a loop, the hold-timer life cycle *)
  let e = Engine.create () in
  let expired = ref 0 in
  let hold = ref None in
  let arm e = hold := Some (Engine.timer e ~delay:3.0 (fun _ -> incr expired)) in
  let rec hello n e =
    (match !hold with Some h -> Engine.cancel e h | None -> ());
    arm e;
    if n > 0 then Engine.schedule e ~delay:1.0 (hello (n - 1))
  in
  hello 5 e;
  ignore (Engine.run e);
  check Alcotest.int "only the last armed timer expires" 1 !expired

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)

module Faults = Simcore.Faults

let flaky ?(dup = 0.0) ?(jitter = 0.0) loss ~src:_ ~dst:_ =
  Faults.lossy ~dup ~jitter loss

let test_faults_deterministic () =
  (* same seed, same sends: identical outcomes, deliveries and stats *)
  let trial () =
    let f = Faults.create ~policy:(flaky ~dup:0.2 ~jitter:1.0 0.3) 99L in
    let e = Engine.create () in
    let log = ref [] in
    for i = 1 to 50 do
      let o =
        Faults.send f e ~src:(i mod 4)
          ~dst:((i + 1) mod 4)
          ~delay:1.0
          (fun e -> log := (i, Engine.now e) :: !log)
      in
      ignore o
    done;
    ignore (Engine.run e);
    (List.rev !log, Faults.stats f)
  in
  let log1, s1 = trial () and log2, s2 = trial () in
  check Alcotest.int "same delivery count" (List.length log1)
    (List.length log2);
  List.iter2
    (fun (i1, t1) (i2, t2) ->
      check Alcotest.int "same delivery order" i1 i2;
      check (Alcotest.float 1e-12) "same delivery time" t1 t2)
    log1 log2;
  check Alcotest.int "same losses" s1.Faults.lost s2.Faults.lost;
  check Alcotest.int "same duplicates" s1.Faults.duplicated
    s2.Faults.duplicated;
  check Alcotest.bool "losses actually happened" true (s1.Faults.lost > 0);
  check Alcotest.bool "duplicates actually happened" true
    (s1.Faults.duplicated > 0)

let test_faults_link_flap () =
  let f = Faults.create 1L in
  let e = Engine.create () in
  let got = ref 0 in
  check Alcotest.bool "links start up" true (Faults.link_up f 0 1);
  Faults.set_link_down f 0 1;
  check Alcotest.bool "down is undirected" false (Faults.link_up f 1 0);
  (match Faults.send f e ~src:0 ~dst:1 ~delay:1.0 (fun _ -> incr got) with
  | Faults.Cut -> ()
  | _ -> Alcotest.fail "send over a down link must report Cut");
  Faults.set_link_up f 0 1;
  (match Faults.send f e ~src:0 ~dst:1 ~delay:1.0 (fun _ -> incr got) with
  | Faults.Sent -> ()
  | _ -> Alcotest.fail "send over a restored link must report Sent");
  ignore (Engine.run e);
  check Alcotest.int "only the post-restore message arrives" 1 !got;
  (* scripted flap: sends inside the window are cut, after it sent *)
  Faults.flap_link f e ~a:2 ~b:3 ~down_at:(Engine.now e +. 1.0)
    ~up_at:(Engine.now e +. 2.0);
  let outcomes = ref [] in
  List.iter
    (fun dt ->
      Engine.schedule e ~delay:dt (fun e ->
          outcomes :=
            Faults.send f e ~src:2 ~dst:3 ~delay:0.1 (fun _ -> ())
            :: !outcomes))
    [ 0.5; 1.5; 2.5 ];
  ignore (Engine.run e);
  match List.rev !outcomes with
  | [ Faults.Sent; Faults.Cut; Faults.Sent ] -> ()
  | _ -> Alcotest.fail "flap window must cut exactly the middle send"

let test_faults_crash_restart () =
  let f = Faults.create 2L in
  let e = Engine.create () in
  let crashes = ref [] and restarts = ref [] in
  Faults.on_crash f (fun _ n -> crashes := n :: !crashes);
  Faults.on_restart f (fun _ n -> restarts := n :: !restarts);
  Faults.schedule_outage f e ~node:7 ~at:1.0 ~duration:2.0;
  let in_flight = ref 0 and late = ref 0 in
  (* sent before the crash, delivered while the receiver is down *)
  Engine.schedule e ~delay:0.5 (fun e ->
      ignore (Faults.send f e ~src:0 ~dst:7 ~delay:1.0 (fun _ -> incr in_flight)));
  (* sent while down: Dead at send time *)
  Engine.schedule e ~delay:2.0 (fun e ->
      match Faults.send f e ~src:0 ~dst:7 ~delay:0.1 (fun _ -> ()) with
      | Faults.Dead -> ()
      | _ -> Alcotest.fail "send to a crashed node must report Dead");
  (* sent after the restart: delivered *)
  Engine.schedule e ~delay:3.5 (fun e ->
      ignore (Faults.send f e ~src:0 ~dst:7 ~delay:0.1 (fun _ -> incr late)));
  ignore (Engine.run e);
  check Alcotest.(list int) "crash handler ran once" [ 7 ] !crashes;
  check Alcotest.(list int) "restart handler ran once" [ 7 ] !restarts;
  check Alcotest.int "in-flight message died with the receiver" 0 !in_flight;
  check Alcotest.int "post-restart message delivered" 1 !late;
  let s = Faults.stats f in
  check Alcotest.int "dead accounting" 2 (s.Faults.dead + s.Faults.cut)

let test_faults_fifo_channel () =
  (* with ~fifo, heavy jitter cannot reorder a directed channel *)
  let f = Faults.create ~policy:(flaky ~jitter:5.0 0.0) ~fifo:true 3L in
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 20 do
    ignore (Faults.send f e ~src:0 ~dst:1 ~delay:0.1 (fun _ -> log := i :: !log))
  done;
  ignore (Engine.run e);
  check Alcotest.(list int) "deliveries in send order"
    (List.init 20 (fun i -> i + 1))
    (List.rev !log)

let test_fifo_never_reorders_prop =
  (* the property behind the drill subsystem's session fabric: however
     the seed, the jitter draws and the send pattern fall, a [~fifo]
     directed channel delivers in send order and counts zero
     reorderings *)
  QCheck.Test.make ~name:"fifo channels never reorder under jitter" ~count:60
    QCheck.(
      pair (int_bound 10000)
        (list_of_size (Gen.int_range 2 50) (pair (int_bound 2) (int_bound 100))))
    (fun (seed, sends) ->
      let f =
        Faults.create
          ~policy:(flaky ~jitter:5.0 0.0)
          ~fifo:true
          (Int64.of_int (seed + 1))
      in
      let e = Engine.create () in
      let log = ref [] in
      List.iteri
        (fun i (src, d) ->
          let delay = 0.01 +. (float_of_int d /. 50.0) in
          ignore
            (Faults.send f e ~src ~dst:9 ~delay (fun _ ->
                 log := (src, i) :: !log)))
        sends;
      ignore (Engine.run e);
      (* per directed channel, send sequence numbers must ascend *)
      let last_seen = Hashtbl.create 4 in
      let in_order =
        List.for_all
          (fun (src, i) ->
            let prev =
              Option.value (Hashtbl.find_opt last_seen src) ~default:(-1)
            in
            Hashtbl.replace last_seen src i;
            prev < i)
          (List.rev !log)
      in
      in_order && (Faults.stats f).Faults.reordered = 0)

let test_faults_reordered_counter () =
  (* the same jitter on a datagram channel must overtake, and the
     fabric must count each overtaking it schedules *)
  let f = Faults.create ~policy:(flaky ~jitter:5.0 0.0) 7L in
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 40 do
    ignore
      (Faults.send f e ~src:0 ~dst:1 ~delay:0.01 (fun _ -> log := i :: !log))
  done;
  ignore (Engine.run e);
  let s = Faults.stats f in
  check Alcotest.bool "jitter reorders without fifo" true (s.Faults.reordered > 0);
  check Alcotest.bool "the log shows the overtakings" false
    (List.equal Int.equal (List.init 40 (fun i -> i + 1)) (List.rev !log));
  check Alcotest.int "every send still lands" 40 s.Faults.delivered

let test_faults_crash_at_delivery_instant () =
  (* verdicts are decided at send time: a message dispatched to a live
     receiver reports Sent even when the receiver crashes at exactly
     the scheduled delivery instant — the crash event, scheduled
     first, wins the tie and the handoff lands dead, not delivered *)
  let f = Faults.create 31L in
  let e = Engine.create () in
  Faults.schedule_outage f e ~node:5 ~at:2.0 ~duration:1.0;
  let got = ref 0 in
  let verdict = ref Faults.Lost in
  Engine.schedule_at e ~time:1.0 (fun e ->
      verdict := Faults.send f e ~src:0 ~dst:5 ~delay:1.0 (fun _ -> incr got));
  (* and one sent after the restart, which must go through *)
  Engine.schedule_at e ~time:3.5 (fun e ->
      ignore (Faults.send f e ~src:0 ~dst:5 ~delay:0.1 (fun _ -> incr got)));
  ignore (Engine.run e);
  (match !verdict with
  | Faults.Sent -> ()
  | _ -> Alcotest.fail "send to a live receiver is verdict Sent");
  let s = Faults.stats f in
  check Alcotest.int "crashed receiver processes nothing at the instant" 1 !got;
  check Alcotest.int "the in-flight handoff lands dead" 1 s.Faults.dead;
  check Alcotest.int "only the post-restart send delivers" 1 s.Faults.delivered

let outcome_str = function
  | Faults.Sent -> "sent"
  | Faults.Lost -> "lost"
  | Faults.Cut -> "cut"
  | Faults.Dead -> "dead"
  | Faults.Shed -> "shed"

let test_faults_flap_train () =
  (* one call scripts the whole train: down at start + i*period, up
     down_for later — what E32 and the flapping-provider drill ride *)
  let f = Faults.create 17L in
  let e = Engine.create () in
  Faults.schedule_flap_train f e ~a:2 ~b:3 ~start:1.0 ~cycles:3 ~period:2.0
    ~down_for:1.0;
  let verdicts = ref [] in
  List.iter
    (fun t ->
      Engine.schedule_at e ~time:t (fun e ->
          let v = Faults.send f e ~src:2 ~dst:3 ~delay:0.01 (fun _ -> ()) in
          verdicts := outcome_str v :: !verdicts))
    [ 0.5; 1.5; 2.5; 3.5; 4.5; 5.5; 6.5 ];
  ignore (Engine.run e);
  check
    Alcotest.(list string)
    "probes alternate with the train"
    [ "sent"; "cut"; "sent"; "cut"; "sent"; "cut"; "sent" ]
    (List.rev !verdicts);
  let invalid g =
    match g () with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () ->
      Faults.schedule_flap_train f e ~a:0 ~b:1 ~start:0.0 ~cycles:0 ~period:1.0
        ~down_for:0.5);
  invalid (fun () ->
      Faults.schedule_flap_train f e ~a:0 ~b:1 ~start:0.0 ~cycles:1 ~period:1.0
        ~down_for:1.5);
  invalid (fun () ->
      Faults.schedule_flap_train f e ~a:0 ~b:1 ~start:0.0 ~cycles:1 ~period:1.0
        ~down_for:0.0)

let test_faults_capacity_shed () =
  (* the pure-overload fabric (DESIGN.md §13): a per-pair budget of 2
     per unit-time window, with keepalives allowed twice that — bulk
     sheds first, keepalives ride until the doubled budget is spent,
     and a fresh window restores everything *)
  let f = Faults.create ~policy:(fun ~src:_ ~dst:_ -> Faults.limited 2) 5L in
  let e = Engine.create () in
  let send ?prio () =
    outcome_str (Faults.send ?prio f e ~src:0 ~dst:1 ~delay:0.01 (fun _ -> ()))
  in
  check Alcotest.string "first bulk admitted" "sent" (send ());
  check Alcotest.string "second bulk admitted" "sent" (send ());
  check Alcotest.string "third bulk shed" "shed" (send ());
  check Alcotest.string "keepalive rides the doubled budget" "sent"
    (send ~prio:Faults.Keepalive ());
  check Alcotest.string "second keepalive too" "sent"
    (send ~prio:Faults.Keepalive ());
  check Alcotest.string "doubled budget spent: keepalive shed" "shed"
    (send ~prio:Faults.Keepalive ());
  (* the reverse direction and other pairs have their own budgets *)
  check Alcotest.string "reverse direction unaffected" "sent"
    (outcome_str (Faults.send f e ~src:1 ~dst:0 ~delay:0.01 (fun _ -> ())));
  (* a later window starts a fresh budget *)
  Engine.schedule_at e ~time:1.5 (fun _ ->
      check Alcotest.string "fresh window, fresh budget" "sent" (send ()));
  ignore (Engine.run e);
  let s = Faults.stats f in
  check Alcotest.int "sheds counted" 2 s.Faults.shed;
  check Alcotest.int "sheds not counted as sent" 6 s.Faults.sent;
  match Faults.limited 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "limited 0 must be refused"

(* ------------------------------------------------------------------ *)
(* Bgpdyn under faults                                                 *)

let test_bgpdyn_converges_under_loss () =
  (* loss up to 0.5 with TCP-reset resync (no timers): the final state
     must still equal the synchronous oracle *)
  List.iter
    (fun loss ->
      let inet = Internet.build Internet.default_params in
      let faults = Faults.create ~policy:(flaky loss) ~fifo:true 11L in
      let dyn = Bgpdyn.create ~faults inet in
      let engine = Engine.create () in
      Bgpdyn.originate_all_domain_prefixes dyn engine;
      Engine.schedule_at engine ~time:60.0 (fun _ ->
          Faults.set_policy faults (fun ~src:_ ~dst:_ -> Faults.reliable));
      ignore (Engine.run engine);
      (match Bgpdyn.agrees_with_synchronous dyn with
      | Ok () -> ()
      | Error msg ->
          Alcotest.fail (Printf.sprintf "loss %.1f: %s" loss msg));
      if loss > 0.0 then
        check Alcotest.bool "losses forced session resets" true
          ((Bgpdyn.stats dyn).Bgpdyn.resets > 0))
    [ 0.2; 0.5 ]

let test_bgpdyn_crash_restart_converges () =
  (* ~20% of domains crash and restart under 20% loss, with the full
     keepalive/hold machinery running; after faults cease the state
     must equal the synchronous oracle *)
  let inet = Internet.build Internet.default_params in
  let n = Internet.num_domains inet in
  let faults = Faults.create ~policy:(flaky ~jitter:0.05 0.2) ~fifo:true 13L in
  let dyn = Bgpdyn.create ~jitter:1.0 ~faults inet in
  let engine = Engine.create () in
  Bgpdyn.enable_timers dyn engine ~keepalive:1.0 ~hold:3.5 ~until:40.0;
  Bgpdyn.originate_all_domain_prefixes dyn engine;
  let rng = Topology.Rng.create 14L in
  let victims = Topology.Rng.sample rng (n / 5) (List.init n Fun.id) in
  check Alcotest.bool "a fifth of the domains crash" true
    (List.length victims >= 5);
  List.iteri
    (fun i d ->
      Faults.schedule_outage faults engine ~node:d
        ~at:(8.0 +. float_of_int i)
        ~duration:4.0)
    victims;
  Engine.schedule_at engine ~time:25.0 (fun _ ->
      Faults.set_policy faults (fun ~src:_ ~dst:_ -> Faults.reliable));
  ignore (Engine.run engine);
  (match Bgpdyn.agrees_with_synchronous dyn with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let s = Bgpdyn.stats dyn in
  check Alcotest.bool "keepalives flowed" true (s.Bgpdyn.keepalives > 0);
  check Alcotest.bool "crashes tore sessions down" true (s.Bgpdyn.resets > 0)

let test_bgpdyn_survives_overload () =
  (* a capacity-limited fabric sheds update bursts; shed is overload,
     not failure, so sessions answer with retry/backoff instead of
     resets and the protocol still reaches the synchronous oracle
     once the load clears (DESIGN.md §13) *)
  let inet = Internet.build Internet.default_params in
  let faults =
    Faults.create ~fifo:true
      ~policy:(fun ~src:_ ~dst:_ -> Faults.limited 3)
      19L
  in
  let dyn = Bgpdyn.create ~faults inet in
  let engine = Engine.create () in
  Bgpdyn.originate_all_domain_prefixes dyn engine;
  Engine.schedule_at engine ~time:120.0 (fun _ ->
      Faults.set_policy faults (fun ~src:_ ~dst:_ -> Faults.reliable));
  ignore (Engine.run engine);
  (match Bgpdyn.agrees_with_synchronous dyn with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  let s = Bgpdyn.stats dyn in
  let f = Faults.stats faults in
  check Alcotest.bool "the fabric shed update traffic" true (f.Faults.shed > 0);
  check Alcotest.bool "sheds were answered with retries" true
    (s.Bgpdyn.shed_retries > 0);
  check Alcotest.int "overload alone resets no session" 0 s.Bgpdyn.resets

(* ------------------------------------------------------------------ *)
(* Lsproto under faults                                                *)

let test_lsproto_crash_restart_reconverges () =
  (* 20% of routers crash and restart while 30% of LSAs drop; the acked
     flooding and database re-exchange must still reach the oracle *)
  let inet =
    Internet.build_custom ~seed:21L
      [| { Internet.routers = 24; endhosts = 1; transit = true } |]
      []
  in
  let faults = Faults.create ~policy:(flaky ~jitter:0.2 0.3) 22L in
  let proto = Lsproto.create ~faults inet ~domain:0 in
  let engine = Engine.create () in
  Lsproto.start proto engine;
  let rids = (Internet.domain inet 0).Internet.router_ids in
  let rng = Topology.Rng.create 23L in
  let victims =
    Topology.Rng.sample rng (Array.length rids / 5) (Array.to_list rids)
  in
  List.iteri
    (fun i r ->
      Faults.schedule_outage faults engine ~node:r
        ~at:(20.0 +. (2.0 *. float_of_int i))
        ~duration:6.0)
    victims;
  Engine.schedule_at engine ~time:45.0 (fun _ ->
      Faults.set_policy faults (fun ~src:_ ~dst:_ -> Faults.reliable));
  ignore (Engine.run engine);
  check Alcotest.bool "LSDBs re-synchronize" true
    (Lsproto.lsdb_synchronized proto);
  let ls = Linkstate.compute inet ~domain:0 in
  let routers = Linkstate.routers ls in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check (Alcotest.float 1e-9)
            (Printf.sprintf "post-fault view %d->%d" a b)
            (Linkstate.distance ls ~src:a ~dst:b)
            (Lsproto.distance_view proto ~router:a ~dst:b))
        routers)
    routers;
  let s = Lsproto.stats proto in
  check Alcotest.bool "retransmits repaired the losses" true
    (s.Lsproto.retransmits > 0);
  check Alcotest.bool "every transmission is acked" true (s.Lsproto.acks > 0)

let prop_lsproto_eventual_consistency =
  QCheck.Test.make
    ~name:"lsproto views equal linkstate after faults cease (any seed, loss < 1)"
    ~count:8
    QCheck.(pair (int_bound 10_000) (int_bound 8))
    (fun (seed, loss_tenths) ->
      let loss = float_of_int loss_tenths /. 10.0 in
      let inet =
        Internet.build_custom
          ~seed:(Int64.of_int (seed + 1))
          [| { Internet.routers = 12; endhosts = 1; transit = true } |]
          []
      in
      let faults =
        Faults.create ~policy:(flaky ~jitter:0.5 loss) (Int64.of_int seed)
      in
      let proto = Lsproto.create ~faults inet ~domain:0 in
      let engine = Engine.create () in
      Lsproto.start proto engine;
      Engine.schedule_at engine ~time:40.0 (fun _ ->
          Faults.set_policy faults (fun ~src:_ ~dst:_ -> Faults.reliable));
      ignore (Engine.run engine);
      let ls = Linkstate.compute inet ~domain:0 in
      let routers = Linkstate.routers ls in
      Lsproto.lsdb_synchronized proto
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 Float.abs
                   (Lsproto.distance_view proto ~router:a ~dst:b
                   -. Linkstate.distance ls ~src:a ~dst:b)
                 <= 1e-9)
               routers)
           routers)

let () =
  Alcotest.run "simcore"
    [
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "fifo at equal time" `Quick test_engine_fifo_at_same_time;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "rejects bad input" `Quick test_engine_rejects;
          Alcotest.test_case "schedule_at now" `Quick test_engine_schedule_at_now;
          Alcotest.test_case "fifo across until" `Quick
            test_engine_fifo_across_until;
          Alcotest.test_case "pending after partial drain" `Quick
            test_engine_pending_after_partial_drain;
          Alcotest.test_case "timer cancel" `Quick test_engine_timer_cancel;
          Alcotest.test_case "cancel from a running action" `Quick
            test_engine_cancel_from_action;
          Alcotest.test_case "timer re-arm" `Quick test_engine_timer_rearm;
          qcheck prop_engine_time_order;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deterministic replay" `Quick
            test_faults_deterministic;
          Alcotest.test_case "link flaps" `Quick test_faults_link_flap;
          Alcotest.test_case "crash and restart" `Quick
            test_faults_crash_restart;
          Alcotest.test_case "fifo channels" `Quick test_faults_fifo_channel;
          qcheck test_fifo_never_reorders_prop;
          Alcotest.test_case "reordered counter" `Quick
            test_faults_reordered_counter;
          Alcotest.test_case "crash at the delivery instant" `Quick
            test_faults_crash_at_delivery_instant;
          Alcotest.test_case "flap train" `Quick test_faults_flap_train;
          Alcotest.test_case "capacity budget sheds" `Quick
            test_faults_capacity_shed;
        ] );
      ( "forward",
        [
          Alcotest.test_case "router to router" `Quick test_forward_router_to_router;
          Alcotest.test_case "endhost delivery" `Quick test_forward_endhost_delivery;
          Alcotest.test_case "trace walks real edges" `Quick
            test_forward_trace_walks_edges;
          Alcotest.test_case "ttl expiry" `Quick test_forward_ttl_expiry;
          Alcotest.test_case "no route" `Quick test_forward_no_route;
          Alcotest.test_case "intra+inter anycast" `Quick test_forward_anycast_intra;
          qcheck prop_forward_trace_shape;
          qcheck prop_forward_universal_reachability;
        ] );
      ( "mixed-igp",
        [
          Alcotest.test_case "universal reachability" `Quick
            test_mixed_igp_universal_reachability;
          Alcotest.test_case "anycast in a DV domain" `Quick
            test_mixed_igp_anycast_in_dv_domain;
        ] );
      ( "lsproto",
        [
          Alcotest.test_case "LSDBs synchronize" `Quick test_lsproto_synchronizes;
          Alcotest.test_case "views match linkstate" `Quick
            test_lsproto_views_match_linkstate;
          Alcotest.test_case "flood cost bounded" `Quick test_lsproto_flood_cost_bounded;
          Alcotest.test_case "anycast propagates" `Quick test_lsproto_anycast_propagates;
          Alcotest.test_case "convergence latency" `Quick
            test_lsproto_convergence_latency;
          Alcotest.test_case "link failure re-converges" `Quick
            test_lsproto_link_failure_reconverges;
          Alcotest.test_case "crash/restart under loss reconverges" `Quick
            test_lsproto_crash_restart_reconverges;
          qcheck prop_lsproto_eventual_consistency;
        ] );
      ( "fib",
        [
          Alcotest.test_case "agrees with decide" `Quick test_fib_agrees_with_decide;
          Alcotest.test_case "sizes sane" `Quick test_fib_sizes_sane;
          Alcotest.test_case "forwarding delivers" `Quick test_fib_forward_delivers;
        ] );
      ( "bgpdyn",
        [
          Alcotest.test_case "matches synchronous engine" `Quick
            test_bgpdyn_matches_synchronous;
          Alcotest.test_case "matches across seeds" `Quick
            test_bgpdyn_matches_synchronous_random_seeds;
          Alcotest.test_case "incremental origination" `Quick
            test_bgpdyn_incremental_origination;
          Alcotest.test_case "MRAI trade-off" `Quick test_bgpdyn_mrai_tradeoff;
          Alcotest.test_case "converges under loss" `Quick
            test_bgpdyn_converges_under_loss;
          Alcotest.test_case "crash/restart with timers converges" `Quick
            test_bgpdyn_crash_restart_converges;
          Alcotest.test_case "survives overload via shed retries" `Quick
            test_bgpdyn_survives_overload;
        ] );
    ]
