(* Integration tests: the experiment sweeps must show the shapes the
   paper's argument predicts (DESIGN.md section 3 / EXPERIMENTS.md). *)

module E = Evolve.Experiments
module Internet = Topology.Internet

let check = Alcotest.check

(* smaller internets than the bench defaults keep the suite fast *)
let small_params =
  {
    Internet.default_params with
    Internet.transit_domains = 3;
    stubs_per_transit = 4;
    routers_per_transit = 8;
    routers_per_stub = 4;
    endhosts_per_domain = 2;
  }

(* --- E1 ------------------------------------------------------------ *)

let e1 = lazy (E.e1_deployment_sweep ~params:small_params ())

let test_e1_universal_access () =
  List.iter
    (fun (r : E.e1_row) ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "full delivery at fraction %.2f" r.E.fraction)
        1.0 r.E.delivery_rate)
    (Lazy.force e1)

let test_e1_stretch_converges_to_one () =
  let rows = Lazy.force e1 in
  let last = List.nth rows (List.length rows - 1) in
  check (Alcotest.float 1e-9) "full deployment -> stretch 1" 1.0 last.E.mean_stretch;
  List.iter
    (fun (r : E.e1_row) ->
      check Alcotest.bool "stretch >= 1 always" true (r.E.mean_stretch >= 1.0 -. 1e-9))
    rows

let test_e1_deployment_grows () =
  let rec growing = function
    | (a : E.e1_row) :: (b :: _ as rest) ->
        a.E.deployed_domains <= b.E.deployed_domains && growing rest
    | _ -> true
  in
  check Alcotest.bool "nested deployment" true (growing (Lazy.force e1))

(* --- E2 ------------------------------------------------------------ *)

let e2 = lazy (E.e2_default_route_sweep ~params:small_params ())

let test_e2_default_dominates_without_advertisement () =
  let rows = Lazy.force e2 in
  let first = List.hd rows in
  check Alcotest.string "first row is option2" "option2" first.E.label;
  check Alcotest.int "no advertisers yet" 0 first.E.advertisers;
  (* with nobody advertising, the default provider takes the bulk of
     the terminations *)
  check Alcotest.bool "default soaks up traffic" true (first.E.default_share > 0.5)

let test_e2_advertising_sheds_default_load () =
  let rows =
    List.filter (fun (r : E.e2_row) -> r.E.label = "option2") (Lazy.force e2)
  in
  let first = List.hd rows in
  let last = List.nth rows (List.length rows - 1) in
  check Alcotest.bool "share decreases as participants advertise" true
    (last.E.default_share < first.E.default_share)

let test_e2_option1_reference_present () =
  let rows = Lazy.force e2 in
  check Alcotest.bool "reference row present" true
    (List.exists (fun (r : E.e2_row) -> r.E.label = "option1 (reference)") rows)

(* --- E3 / E4 -------------------------------------------------------- *)

let e3 = lazy (E.e3_egress_comparison ~params:small_params ~pairs:60 ())

let strategy_row name =
  match
    List.find_opt (fun (r : E.strategy_row) -> r.E.strategy_name = name)
      (Lazy.force e3)
  with
  | Some r -> r
  | None -> Alcotest.fail ("missing strategy " ^ name)

let test_e3_exit_early_never_uses_vnbone () =
  let r = strategy_row "exit-early" in
  check (Alcotest.float 1e-9) "zero vN fraction" 0.0 r.E.mean_vn_fraction

let test_e3_bgp_aware_uses_vnbone_more () =
  let early = strategy_row "exit-early" in
  let aware = strategy_row "bgpv(n-1)-aware" in
  check Alcotest.bool "vN fraction grows" true
    (aware.E.mean_vn_fraction > early.E.mean_vn_fraction);
  check Alcotest.bool "exposure shrinks" true
    (aware.E.mean_exposure_hops < early.E.mean_exposure_hops)

let test_e3_all_strategies_deliver () =
  List.iter
    (fun (r : E.strategy_row) ->
      check (Alcotest.float 1e-9) ("delivery " ^ r.E.strategy_name) 1.0
        r.E.journey_delivery)
    (Lazy.force e3)

(* E4 is the same sweep as E3 at 15% deployment (Fig 4 generalized) *)

let e4 =
  lazy (E.e3_egress_comparison ~params:small_params ~deploy_fraction:0.15 ~pairs:60 ())

let test_e4_all_strategies_deliver () =
  List.iter
    (fun (r : E.strategy_row) ->
      check (Alcotest.float 1e-9) ("delivery " ^ r.E.strategy_name) 1.0
        r.E.journey_delivery)
    (Lazy.force e4)

let test_e4_exit_early_never_uses_vnbone () =
  match
    List.find_opt
      (fun (r : E.strategy_row) -> r.E.strategy_name = "exit-early")
      (Lazy.force e4)
  with
  | None -> Alcotest.fail "missing strategy exit-early"
  | Some r ->
      check (Alcotest.float 1e-9) "zero vN fraction" 0.0 r.E.mean_vn_fraction

(* --- E5 ------------------------------------------------------------ *)

let e5 = lazy (E.e5_state_scaling ~params:small_params ())

let test_e5_option1_state_grows_linearly () =
  let rows = Lazy.force e5 in
  let first = List.hd rows in
  let last = List.nth rows (List.length rows - 1) in
  let gens = last.E.generations - first.E.generations in
  check Alcotest.bool "opt1 grows ~1 prefix per generation" true
    (last.E.opt1_max_rib - first.E.opt1_max_rib >= gens - 1);
  check Alcotest.bool "max rib grows monotonically" true
    (List.for_all2
       (fun (a : E.e5_row) (b : E.e5_row) -> a.E.opt1_max_rib <= b.E.opt1_max_rib)
       (List.filteri (fun i _ -> i < List.length rows - 1) rows)
       (List.tl rows))

let test_e5_option2_state_constant () =
  let rows = Lazy.force e5 in
  let first = List.hd rows in
  List.iter
    (fun (r : E.e5_row) ->
      check Alcotest.int "opt2 max rib flat" first.E.opt2_max_rib r.E.opt2_max_rib;
      check Alcotest.bool "opt2 bounded by baseline" true
        (r.E.opt2_max_rib <= r.E.baseline_rib))
    rows

(* --- E6 ------------------------------------------------------------ *)

let e6 = lazy (E.e6_adoption ~seeds:[ 1L; 2L; 3L ] ())

let test_e6_ua_vs_gated () =
  let rows = Lazy.force e6 in
  let ua = List.find (fun (r : E.e6_row) -> r.E.universal_access) rows in
  let gated = List.find (fun (r : E.e6_row) -> not r.E.universal_access) rows in
  check Alcotest.bool "UA reaches near-full adoption" true
    (ua.E.final_isp_fraction > 0.9);
  check Alcotest.bool "gated stalls" true (gated.E.final_isp_fraction < 0.2);
  check Alcotest.bool "UA tips, gated does not" true
    (ua.E.tip_step <> None && gated.E.tip_step = None)

(* --- E7 ------------------------------------------------------------ *)

let e7 =
  lazy
    (E.e7_robustness ~params:small_params ~deploy_domains:5 ~trials:10
       ~failure_fractions:[ 0.0; 0.2; 0.4 ] ())

let test_e7_no_failures_connected () =
  let first = List.hd (Lazy.force e7) in
  check (Alcotest.float 1e-9) "k=1 intact" 1.0 first.E.survive_k1;
  check (Alcotest.float 1e-9) "k=2 intact" 1.0 first.E.survive_k2;
  check (Alcotest.float 1e-9) "k=3 intact" 1.0 first.E.survive_k3;
  check (Alcotest.float 1e-9) "no repair needed" 0.0 first.E.mean_repair_tunnels

let test_e7_more_neighbors_more_robust () =
  List.iter
    (fun (r : E.e7_row) ->
      check Alcotest.bool "k=3 at least as robust as k=1" true
        (r.E.survive_k3 >= r.E.survive_k1 -. 1e-9))
    (Lazy.force e7)

let test_e7_repair_cost_grows () =
  let rows = Lazy.force e7 in
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  check Alcotest.bool "repair cost grows with failures" true
    (last.E.mean_repair_tunnels >= first.E.mean_repair_tunnels)

(* --- E8 ------------------------------------------------------------ *)

let e8 = lazy (E.e8_convergence ~sizes:[ 8; 24 ] ())

let test_e8_positive_rounds () =
  List.iter
    (fun (r : E.e8_row) ->
      check Alcotest.bool "ls flooding does work" true (r.E.ls_mean_rounds > 0.0);
      check Alcotest.bool "dv join does work" true (r.E.dv_join_rounds >= 0.0);
      check Alcotest.bool "dv leave does work" true (r.E.dv_leave_rounds > 0.0))
    (Lazy.force e8)

(* --- E9 ------------------------------------------------------------ *)

let e9 =
  lazy
    (E.e9_host_advertised ~params:small_params ~pairs:40
       ~failures:[ 0.0; 0.5 ] ())

let test_e9_host_advertised_optimal_when_fresh () =
  let fresh = List.hd (Lazy.force e9) in
  check (Alcotest.float 1e-9) "full delivery with fresh registrations" 1.0
    fresh.E.host_adv_delivery;
  check Alcotest.bool "host-advertised has the best exits" true
    (fresh.E.host_adv_exposure <= fresh.E.proxy_exposure +. 1e-9)

let test_e9_fate_sharing () =
  let rows = Lazy.force e9 in
  let damaged = List.nth rows (List.length rows - 1) in
  check Alcotest.bool "stale registrations black-hole" true
    (damaged.E.host_adv_delivery < 1.0);
  check (Alcotest.float 1e-9) "proxy unaffected" 1.0 damaged.E.proxy_delivery

(* --- E10 ----------------------------------------------------------- *)

let e10 = lazy (E.e10_discovery_ablation ~params:small_params ())

let e10_row name =
  match
    List.find_opt
      (fun (r : E.e10_row) -> r.E.discovery_name = name)
      (Lazy.force e10)
  with
  | Some r -> r
  | None -> Alcotest.fail ("missing discovery row " ^ name)

let test_e10_all_connected () =
  List.iter
    (fun (r : E.e10_row) ->
      check Alcotest.bool ("connected: " ^ r.E.discovery_name) true r.E.connected10)
    (Lazy.force e10)

let test_e10_lsdb_beats_walk () =
  let k2 = e10_row "LSDB k=2" and walk = e10_row "anycast walk (DV)" in
  check Alcotest.bool "LSDB k=2 stretch <= walk stretch" true
    (k2.E.vn_stretch <= walk.E.vn_stretch +. 1e-9)

let test_e10_more_neighbors_less_stretch () =
  let k1 = e10_row "LSDB k=1" and k3 = e10_row "LSDB k=3" in
  check Alcotest.bool "k=3 stretch <= k=1 stretch" true
    (k3.E.vn_stretch <= k1.E.vn_stretch +. 1e-9);
  check Alcotest.bool "k=3 has more tunnels" true
    (k3.E.intra_tunnels > k1.E.intra_tunnels)

(* --- E11 ----------------------------------------------------------- *)

let e11 = lazy (E.e11_congruence ~params:small_params ())

let test_e11_congruence_at_full_deployment () =
  let rows = Lazy.force e11 in
  let last = List.nth rows (List.length rows - 1) in
  check (Alcotest.float 0.05) "stretch -> 1 at full deployment" 1.0
    last.E.vn_stretch11;
  List.iter
    (fun (r : E.e11_row) ->
      check Alcotest.bool "stretch >= 1" true (r.E.vn_stretch11 >= 1.0 -. 1e-9))
    rows

let test_e11_tunnels_grow_with_deployment () =
  let rec growing = function
    | (a : E.e11_row) :: (b :: _ as rest) ->
        a.E.inter_tunnels11 <= b.E.inter_tunnels11 && growing rest
    | _ -> true
  in
  check Alcotest.bool "inter tunnels grow" true (growing (Lazy.force e11))

(* --- E12 ----------------------------------------------------------- *)

let e12 = lazy (E.e12_gia_sweep ~params:small_params ~radii:[ 0; 1; 2 ] ())

let test_e12_universal_delivery () =
  List.iter
    (fun (r : E.e12_row) ->
      check (Alcotest.float 1e-9) ("delivery: " ^ r.E.scheme12) 1.0 r.E.delivery12)
    (Lazy.force e12)

let test_e12_radius_sheds_home_load () =
  let gia =
    List.filter (fun (r : E.e12_row) -> r.E.gia_radius <> None) (Lazy.force e12)
  in
  let rec non_increasing = function
    | (a : E.e12_row) :: (b :: _ as rest) ->
        a.E.home_share >= b.E.home_share -. 1e-9 && non_increasing rest
    | _ -> true
  in
  check Alcotest.bool "home share non-increasing in radius" true
    (non_increasing gia)

let test_e12_state_between_options () =
  let rows = Lazy.force e12 in
  let find name =
    List.find (fun (r : E.e12_row) -> r.E.scheme12 = name) rows
  in
  let opt1 = find "option1 (global)" and opt2 = find "option2 (no adverts)" in
  List.iter
    (fun (r : E.e12_row) ->
      if r.E.gia_radius <> None then begin
        check Alcotest.bool "GIA state >= option2" true
          (r.E.mean_rib12 >= opt2.E.mean_rib12 -. 1e-9);
        check Alcotest.bool "GIA state <= option1" true
          (r.E.mean_rib12 <= opt1.E.mean_rib12 +. 1e-9)
      end)
    rows

(* --- E13 ----------------------------------------------------------- *)

let e13 = lazy (E.e13_seed_stability ~seeds:[ 101L; 202L ] ~pairs:20 ())

let test_e13_counts_seeds () =
  let rows = Lazy.force e13 in
  check Alcotest.bool "has strategy rows" true (rows <> []);
  List.iter
    (fun (r : E.e13_row) ->
      check Alcotest.int ("seeds: " ^ r.E.strategy13) 2 r.E.seeds13)
    rows

let test_e13_delivery_certain_across_seeds () =
  (* universal access holds on every seed, so the delivery CI collapses *)
  List.iter
    (fun (r : E.e13_row) ->
      check (Alcotest.float 1e-9)
        ("delivery mean: " ^ r.E.strategy13)
        1.0 r.E.delivery_ci.Evolve.Stats.mean;
      check (Alcotest.float 1e-9)
        ("delivery ci95: " ^ r.E.strategy13)
        0.0 r.E.delivery_ci.Evolve.Stats.ci95)
    (Lazy.force e13)

(* --- E14 ----------------------------------------------------------- *)

let e14 =
  lazy (E.e14_proxy_alpha ~params:small_params ~pairs:40 ~alphas:[ 0.0; 0.5; 1.5 ] ())

let test_e14_alpha_monotone () =
  let rec non_increasing = function
    | (a : E.e14_row) :: (b :: _ as rest) ->
        a.E.alpha_vn_fraction >= b.E.alpha_vn_fraction -. 1e-9
        && non_increasing rest
    | _ -> true
  in
  check Alcotest.bool "vN coverage falls as vN hops get pricier" true
    (non_increasing (Lazy.force e14))

let test_e14_large_alpha_cheapest_total () =
  let rows = Lazy.force e14 in
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  check Alcotest.bool "alpha >= 1 minimizes total hops" true
    (last.E.alpha_total_hops <= first.E.alpha_total_hops +. 1e-9)

(* --- E15 ----------------------------------------------------------- *)

let e15 =
  lazy (E.e15_viability_sweep ~seeds:[ 1L; 2L ] ~thresholds:[ 0.0; 0.3; 0.7 ] ())

let test_e15_ua_dominates_everywhere () =
  List.iter
    (fun (r : E.e15_row) ->
      check Alcotest.bool "UA >= gated" true (r.E.ua_final >= r.E.gated_final -. 1e-9);
      check Alcotest.bool "UA insensitive to the floor" true (r.E.ua_final > 0.9))
    (Lazy.force e15)

let test_e15_gated_collapses_above_share () =
  let rows = Lazy.force e15 in
  let high = List.nth rows (List.length rows - 1) in
  check Alcotest.bool "gated collapses at high floor" true (high.E.gated_final < 0.2)

(* --- E16 ----------------------------------------------------------- *)

let e16 = lazy (E.e16_revenue_gravity ~params:small_params ~deployers:2 ~flows:40 ())

let test_e16_both_pickers_present () =
  let rows = Lazy.force e16 in
  check Alcotest.int "two pickers" 2 (List.length rows);
  List.iter
    (fun (r : E.e16_row) ->
      check Alcotest.bool ("pop share sane: " ^ r.E.picker) true
        (r.E.pop_share > 0.0 && r.E.pop_share <= 1.0);
      check Alcotest.bool ("traffic share sane: " ^ r.E.picker) true
        (r.E.traffic_share >= 0.0 && r.E.traffic_share <= 1.0))
    rows

let test_e16_larger_deployers_attract_no_less () =
  match Lazy.force e16 with
  | [ largest; smallest ] ->
      check Alcotest.bool "largest stubs hold >= population share" true
        (largest.E.pop_share >= smallest.E.pop_share -. 1e-9)
  | _ -> Alcotest.fail "expected exactly the two picker rows"

(* --- E17 ----------------------------------------------------------- *)

let test_e17_table_is_one_aggregate_per_domain () =
  let rows =
    E.e17_bgpvn_scaling ~params:small_params ~domain_counts:[ 2; 5 ] ()
  in
  List.iter
    (fun (r : E.e17_row) ->
      check (Alcotest.float 1e-9) "one aggregate per participant domain"
        (float_of_int r.E.vn_domains) r.E.mean_table;
      check Alcotest.bool "rounds positive" true (r.E.bgpvn_rounds > 0))
    rows

(* --- E18 ----------------------------------------------------------- *)

let test_e18_latency_matches_eccentricity () =
  let rows = E.e18_flooding_cost ~sizes:[ 8; 16 ] () in
  List.iter
    (fun (r : E.e18_row) ->
      check (Alcotest.float 1e-9) "latency = eccentricity at unit delay"
        (float_of_int r.E.eccentricity)
        r.E.update_latency;
      check Alcotest.bool "sync dominates one update" true
        (r.E.sync_messages > r.E.update_messages))
    rows

(* --- E19 ----------------------------------------------------------- *)

let test_e19_mrai_coalesces () =
  let rows = E.e19_mrai_sweep ~params:small_params ~mrais:[ 0.01; 5.0 ] () in
  match rows with
  | [ fast; slow ] ->
      check Alcotest.bool "MRAI never increases update count" true
        (slow.E.boot_updates <= fast.E.boot_updates);
      check Alcotest.bool "MRAI delays quiescence" true
        (slow.E.boot_time >= fast.E.boot_time)
  | _ -> Alcotest.fail "expected two rows"

(* --- E20 / E21 ------------------------------------------------------ *)

let test_e20_anycast_survives () =
  let rows =
    E.e20_anycast_resilience ~params:small_params ~deploy_domains:4
      ~kill_steps:[ 0; 3 ] ()
  in
  List.iter
    (fun (r : E.e20_row) ->
      check (Alcotest.float 1e-9) "anycast survives" 1.0 r.E.anycast_delivery)
    rows;
  let last = List.nth rows (List.length rows - 1) in
  check Alcotest.bool "single server dies with its host" true
    (last.E.unicast_delivery < 1.0)

let test_e21_behaviour_stable_across_sizes () =
  let rows = E.e21_size_scaling ~transit_counts:[ 2; 4 ] () in
  List.iter
    (fun (r : E.e21_row) ->
      check (Alcotest.float 1e-9) "delivery" 1.0 r.E.delivery21;
      check Alcotest.bool "stretch sane" true
        (r.E.mean_stretch21 >= 1.0 -. 1e-9 && r.E.mean_stretch21 < 2.0);
      check Alcotest.bool "bgp rounds bounded" true (r.E.bgp_rounds < 20))
    rows

(* --- E22 ----------------------------------------------------------- *)

let e22 = lazy (E.e22_fib_scaling ~params:small_params ~max_generations:3 ())

let test_e22_option1_fib_grows () =
  let rows = Lazy.force e22 in
  check Alcotest.int "three generations" 3 (List.length rows);
  let rec nondecreasing = function
    | (a : E.e22_row) :: (b :: _ as rest) ->
        a.E.opt1_mean_fib <= b.E.opt1_mean_fib +. 1e-9 && nondecreasing rest
    | _ -> true
  in
  check Alcotest.bool "opt1 mean FIB grows with generations" true
    (nondecreasing rows)

let test_e22_max_bounds_mean () =
  List.iter
    (fun (r : E.e22_row) ->
      check Alcotest.bool "opt1 max >= mean" true
        (float_of_int r.E.opt1_max_fib >= r.E.opt1_mean_fib -. 1e-9);
      check Alcotest.bool "opt2 max >= mean" true
        (float_of_int r.E.opt2_max_fib >= r.E.opt2_mean_fib -. 1e-9))
    (Lazy.force e22)

(* --- E23 ----------------------------------------------------------- *)

let test_e23_claims_hold_on_both_models () =
  let rows = E.e23_topology_robustness ~pairs:40 () in
  check Alcotest.int "three models" 3 (List.length rows);
  List.iter
    (fun (r : E.e23_row) ->
      check (Alcotest.float 1e-9) ("delivery: " ^ r.E.model) 1.0 r.E.delivery23;
      check Alcotest.bool ("stretch sane: " ^ r.E.model) true
        (r.E.stretch23 >= 1.0 -. 1e-9 && r.E.stretch23 < 2.0);
      check Alcotest.bool ("exposure drops: " ^ r.E.model) true
        (r.E.exposure_drop > 0.0))
    rows

(* --- E24 ----------------------------------------------------------- *)

let test_e24_churn_decreases () =
  let rows = E.e24_flow_stability ~params:small_params ~stages:4 () in
  check Alcotest.bool "has rows" true (List.length rows >= 2);
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  check Alcotest.bool "stability only decreases" true
    (last.E.cumulative_stability <= first.E.cumulative_stability +. 1e-9);
  List.iter
    (fun (r : E.e24_row) ->
      check Alcotest.bool "fractions in range" true
        (r.E.ingress_changed >= 0.0 && r.E.ingress_changed <= 1.0
        && r.E.cumulative_stability >= 0.0 && r.E.cumulative_stability <= 1.0))
    rows

(* --- E25 ----------------------------------------------------------- *)

let test_e25_coalition_threshold () =
  let rows = E.e25_coalition_sweep ~seeds:[ 1L; 2L ] ~coalitions:[ 1; 3 ] () in
  (match rows with
  | [ lone; coalition ] ->
      check Alcotest.bool "a lone ISP stalls without UA" true
        (lone.E.gated_final25 < 0.2);
      check Alcotest.bool "a large-enough coalition tips even gated" true
        (coalition.E.gated_final25 > 0.9);
      check Alcotest.bool "UA needs no coalition" true (lone.E.ua_final25 > 0.9)
  | _ -> Alcotest.fail "expected two rows");
  List.iter
    (fun (r : E.e25_row) ->
      check Alcotest.bool "share grows with coalition" true
        (r.E.coalition_share > 0.0 && r.E.coalition_share < 1.0))
    rows

(* --- E26 ----------------------------------------------------------- *)

let test_e26_overhead_shrinks_with_payload () =
  let rows =
    E.e26_encapsulation_overhead ~params:small_params ~pairs:30
      ~payloads:[ 64; 1400 ] ()
  in
  match rows with
  | [ small; large ] ->
      check Alcotest.bool "evolution costs bytes" true (small.E.byte_overhead > 0.0);
      check Alcotest.bool "relative overhead shrinks with payload" true
        (large.E.byte_overhead < small.E.byte_overhead);
      check Alcotest.bool "header share shrinks with payload" true
        (large.E.header_share < small.E.header_share)
  | _ -> Alcotest.fail "expected two rows"

(* --- E27 ----------------------------------------------------------- *)

let test_e27_dv_costs_vn_stretch_not_delivery () =
  let rows =
    E.e27_mixed_igp ~params:small_params ~dv_fractions:[ 0.0; 1.0 ]
      ~deploy_domains:4 ()
  in
  match rows with
  | [ ls; dv ] ->
      check (Alcotest.float 1e-9) "LS delivery" 1.0 ls.E.delivery27;
      check (Alcotest.float 1e-9) "DV delivery" 1.0 dv.E.delivery27;
      check Alcotest.int "all-LS has no walk domains" 0 ls.E.walk_domains;
      check Alcotest.int "all-DV walks everywhere" 4 dv.E.walk_domains;
      check Alcotest.bool "DV pays vN stretch" true
        (dv.E.vn_stretch27 >= ls.E.vn_stretch27 -. 1e-9)
  | _ -> Alcotest.fail "expected two rows"

(* --- E28 ----------------------------------------------------------- *)

let test_e28_withdraw_churns_more () =
  let rows = E.e28_path_hunting ~params:small_params ~mrais:[ 0.01 ] () in
  match rows with
  | [ r ] ->
      check Alcotest.bool "hunting: withdraw churn >= announce churn" true
        (r.E.withdraw_churn >= r.E.announce_churn);
      check Alcotest.bool "hunt ratio >= 1" true (r.E.hunt_ratio >= 1.0 -. 1e-9);
      check Alcotest.bool "messages flowed both ways" true
        (r.E.announce_updates > 0 && r.E.withdraw_updates > 0)
  | _ -> Alcotest.fail "expected one row"

(* --- E29 ----------------------------------------------------------- *)

let test_e29_stretch_falls_with_deployment () =
  let rows =
    E.e29_dataplane_cost ~params:small_params ~fractions:[ 0.0; 0.3; 1.0 ]
      ~flows:25 ()
  in
  check Alcotest.int "two options x three fractions" 6 (List.length rows);
  let opt1 = List.filter (fun r -> r.E.option29 = "option1") rows in
  let opt2 = List.filter (fun r -> r.E.option29 = "option2") rows in
  match (opt1, opt2) with
  | [ z1; m1; f1 ], [ z2; m2; f2 ] ->
      check (Alcotest.float 1e-9) "no delivery before deployment" 0.0
        z1.E.delivery29;
      check (Alcotest.float 1e-9) "option2 zero likewise" 0.0 z2.E.delivery29;
      List.iter
        (fun r ->
          check (Alcotest.float 1e-9) "full delivery once deployed" 1.0
            r.E.delivery29)
        [ m1; f1; m2; f2 ];
      check (Alcotest.float 1e-6) "option1 native at full deployment" 1.0
        f1.E.mean_stretch29;
      check (Alcotest.float 1e-6) "option2 native at full deployment" 1.0
        f2.E.mean_stretch29;
      check Alcotest.bool "stretch falls as deployment grows (opt1)" true
        (f1.E.mean_stretch29 <= m1.E.mean_stretch29 +. 1e-9);
      check Alcotest.bool "option2 default routes cut mid-deploy stretch" true
        (m2.E.mean_stretch29 <= m1.E.mean_stretch29 +. 1e-9);
      check Alcotest.bool "encap costs bytes mid-deployment" true
        (m1.E.byte_overhead29 > 0.0);
      check Alcotest.bool "p99 bounds mean" true
        (m1.E.p99_stretch29 >= m1.E.mean_stretch29 -. 1e-9);
      check Alcotest.bool "flow cache sees repeats" true (f1.E.cache_hit29 > 0.0)
  | _ -> Alcotest.fail "expected three rows per option"

(* --- E30 ----------------------------------------------------------- *)

let test_e30_churn_disrupts_then_recovers () =
  let rows =
    E.e30_churn_traffic ~params:small_params ~probes:20 ~ticks:7 ~churn_tick:2
      ~window:3 ()
  in
  check Alcotest.int "one row per tick" 7 (List.length rows);
  let first = List.hd rows in
  let last = List.nth rows (List.length rows - 1) in
  check Alcotest.string "starts steady" "steady" first.E.phase30;
  check (Alcotest.float 1e-9) "steady state delivers" 1.0 first.E.ok30;
  check (Alcotest.float 1e-9) "steady FIBs all fresh" 1.0 first.E.fresh30;
  check Alcotest.string "ends recovered" "recovered" last.E.phase30;
  check (Alcotest.float 1e-9) "recovered FIBs all fresh" 1.0 last.E.fresh30;
  check (Alcotest.float 1e-9) "recovered delivery" 1.0 last.E.ok30;
  let converging = List.filter (fun r -> r.E.phase30 = "converging") rows in
  check Alcotest.bool "convergence window exists" true (converging <> []);
  List.iter
    (fun r ->
      check Alcotest.bool "partial refresh during convergence" true
        (r.E.fresh30 < 1.0);
      check (Alcotest.float 1e-9) "probe accounting sums to one" 1.0
        (r.E.ok30 +. r.E.stale30 +. r.E.lost30 +. r.E.looped30))
    converging;
  check Alcotest.bool "stale snapshots misdeliver or loop traffic" true
    (List.exists
       (fun r -> r.E.stale30 +. r.E.lost30 +. r.E.looped30 > 0.0)
       converging)

(* --- E31 ----------------------------------------------------------- *)

let e31_args = (small_params, [ 0.0; 0.3 ])

let e31 =
  lazy
    (let params, losses = e31_args in
     E.e31_fault_convergence ~params ~losses ())

let test_e31_converges_to_oracle () =
  let rows = Lazy.force e31 in
  let _, losses = e31_args in
  check Alcotest.int "loss sweep + crash row per protocol"
    (2 * (List.length losses + 1))
    (List.length rows);
  let bgp = List.filter (fun r -> String.equal r.E.proto31 "bgp") rows in
  let ls = List.filter (fun r -> String.equal r.E.proto31 "ls") rows in
  check Alcotest.int "both protocols swept" (List.length rows)
    (List.length bgp + List.length ls);
  List.iter
    (fun rows ->
      let crash = List.filter (fun r -> r.E.crashed31 > 0) rows in
      check Alcotest.int "exactly one crash row" 1 (List.length crash))
    [ bgp; ls ];
  List.iter
    (fun r ->
      check Alcotest.bool
        (Printf.sprintf "%s loss=%.1f crashed=%d agrees with oracle"
           r.E.proto31 r.E.loss31 r.E.crashed31)
        true r.E.agrees31;
      check Alcotest.bool "protocol exchanged messages" true (r.E.msgs31 > 0))
    rows;
  (* the robustness tax: acked flooding pays retransmissions under loss *)
  let ls_overhead loss =
    (List.find
       (fun r ->
         r.E.crashed31 = 0 && Float.abs (r.E.loss31 -. loss) < 1e-9)
       ls)
      .E.overhead31
  in
  check Alcotest.bool "loss costs retransmissions" true
    (ls_overhead 0.3 > ls_overhead 0.0)

(* --- E32 ----------------------------------------------------------- *)

let e32_row_str (r : E.e32_row) =
  Printf.sprintf "%d %b %s %.17g %.17g %.17g %.17g" r.E.tick32 r.E.recovery32
    r.E.phase32 r.E.ok32 r.E.stale32 r.E.lost32 r.E.looped32

let e32_args = (small_params, 3, 20, 10, 2)

let e32 =
  lazy
    (let params, deploy_domains, probes, ticks, flap_links = e32_args in
     E.e32_flap_traffic ~params ~deploy_domains ~probes ~ticks ~flap_links ())

let test_e32_recovery_beats_waiting () =
  let rows = Lazy.force e32 in
  let _, _, _, ticks, _ = e32_args in
  check Alcotest.int "two runs of one row per tick" (2 * ticks)
    (List.length rows);
  let off = List.filter (fun r -> not r.E.recovery32) rows in
  let on = List.filter (fun r -> r.E.recovery32) rows in
  check Alcotest.int "recovery-off run" ticks (List.length off);
  check Alcotest.int "recovery-on run" ticks (List.length on);
  List.iter
    (fun r ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "tick %d accounting sums to one" r.E.tick32)
        1.0
        (r.E.ok32 +. r.E.stale32 +. r.E.lost32 +. r.E.looped32))
    rows;
  List.iter
    (fun run ->
      let first = List.hd run and last = List.nth run (ticks - 1) in
      check Alcotest.string "starts steady" "steady" first.E.phase32;
      check (Alcotest.float 1e-9) "steady state delivers" 1.0 first.E.ok32;
      check Alcotest.string "ends recovered" "recovered" last.E.phase32;
      check (Alcotest.float 1e-9) "recovered delivery" 1.0 last.E.ok32)
    [ off; on ];
  (* while the links are down (ticks 3-6), rerouting must do no worse
     than riding out the outage — and the outage must actually bite *)
  let flap run =
    List.filter (fun r -> r.E.tick32 >= 3 && r.E.tick32 <= 6) run
  in
  let mean_ok run =
    List.fold_left (fun acc r -> acc +. r.E.ok32) 0.0 (flap run)
    /. float_of_int (List.length (flap run))
  in
  check Alcotest.bool "flaps disrupt the passive run" true
    (List.exists (fun r -> r.E.ok32 < 1.0) (flap off));
  check Alcotest.bool "recovery delivers at least as much" true
    (mean_ok on >= mean_ok off -. 1e-9)

let test_e31_e32_deterministic () =
  (* same seed, same rows, byte for byte — the fault fabric draws all
     randomness from Topology.Rng, so reruns must be identical *)
  let e31_run () =
    let params, losses = e31_args in
    List.map
      (fun (r : E.e31_row) ->
        Printf.sprintf "%s %.17g %d %d %d %.17g %b" r.E.proto31 r.E.loss31
          r.E.crashed31 r.E.msgs31 r.E.overhead31 r.E.settle31 r.E.agrees31)
      (E.e31_fault_convergence ~params ~losses ())
  in
  let e32_run () =
    let params, deploy_domains, probes, ticks, flap_links = e32_args in
    List.map e32_row_str
      (E.e32_flap_traffic ~params ~deploy_domains ~probes ~ticks ~flap_links
         ())
  in
  check
    Alcotest.(list string)
    "e31 rows identical across runs" (e31_run ()) (e31_run ());
  check
    Alcotest.(list string)
    "e32 rows identical across runs" (e32_run ()) (e32_run ())

let e33_args = (small_params, [ 1; 2; 4; 8 ], 256, 8)

let e33_row_str (r : E.e33_row) =
  Printf.sprintf "%d %d %d %d %d %d %d %d %b" r.E.shards33 r.E.packets33
    r.E.hops33 r.E.bytes33 r.E.delivered33 r.E.dropped33 r.E.ttl33
    r.E.crossings33 r.E.identical33

let e33 =
  lazy
    (let params, shard_counts, flows, packets_per_flow = e33_args in
     E.e33_shard_invariance ~params ~shard_counts ~flows ~packets_per_flow ())

let test_e33_shard_invariance () =
  let rows = Lazy.force e33 in
  let _, shard_counts, _, _ = e33_args in
  check Alcotest.int "one row per shard count" (List.length shard_counts)
    (List.length rows);
  List.iter
    (fun (r : E.e33_row) ->
      check Alcotest.bool
        (Printf.sprintf "verdict at %d shards matches one shard" r.E.shards33)
        true r.E.identical33;
      check Alcotest.int
        (Printf.sprintf "terminal verdicts account for every packet at %d"
           r.E.shards33)
        r.E.packets33
        (r.E.delivered33 + r.E.dropped33 + r.E.ttl33);
      check Alcotest.bool "packets forwarded" true (r.E.packets33 > 0);
      check Alcotest.bool "hops at least one per packet" true
        (r.E.hops33 >= r.E.packets33))
    rows;
  let base = List.hd rows in
  List.iter
    (fun (r : E.e33_row) ->
      check Alcotest.int "hops invariant" base.E.hops33 r.E.hops33;
      check Alcotest.int "bytes invariant" base.E.bytes33 r.E.bytes33;
      check Alcotest.int "delivered invariant" base.E.delivered33
        r.E.delivered33)
    rows;
  check Alcotest.int "one shard never crosses" 0 base.E.crossings33;
  List.iter
    (fun (r : E.e33_row) ->
      if r.E.shards33 > 1 then
        check Alcotest.bool
          (Printf.sprintf "%d shards hand packets across rings" r.E.shards33)
          true
          (r.E.crossings33 > 0))
    rows

let test_e33_deterministic () =
  let run () =
    let params, shard_counts, flows, packets_per_flow = e33_args in
    List.map e33_row_str
      (E.e33_shard_invariance ~params ~shard_counts ~flows ~packets_per_flow
         ())
  in
  check
    Alcotest.(list string)
    "e33 rows identical across runs" (run ()) (run ())

(* --- E34 ------------------------------------------------------------ *)

let e34 = lazy (E.e34_drill_catalog ~params:small_params ())

let test_e34_catalog_passes () =
  let rows = Lazy.force e34 in
  (* two intensities per catalog drill *)
  check Alcotest.int "one row per drill x intensity" 12 (List.length rows);
  List.iter
    (fun (r : E.e34_row) ->
      if r.E.intensity34 <= 1.0 +. 1e-9 then
        check Alcotest.bool
          (Printf.sprintf "%s passes its SLOs at intensity 1" r.E.drill34)
          true r.E.pass34;
      (match r.E.detection34 with
      | Some d ->
          check Alcotest.bool
            (Printf.sprintf "%s detection non-negative" r.E.drill34)
            true (d >= 0.0)
      | None ->
          Alcotest.failf "%s: no detection at intensity %.2f" r.E.drill34
            r.E.intensity34);
      check Alcotest.bool
        (Printf.sprintf "%s blackhole non-negative" r.E.drill34)
        true
        (r.E.blackhole34 >= 0.0))
    rows

let test_e34_deterministic () =
  let row_str (r : E.e34_row) =
    Printf.sprintf "%s %.2f %s %s %.4f %.4f %b" r.E.drill34 r.E.intensity34
      (match r.E.detection34 with None -> "n/a" | Some f -> Printf.sprintf "%.4f" f)
      (match r.E.reconverge34 with None -> "n/a" | Some f -> Printf.sprintf "%.4f" f)
      r.E.blackhole34 r.E.stale34 r.E.pass34
  in
  let run () =
    List.map row_str (E.e34_drill_catalog ~params:small_params ())
  in
  check
    Alcotest.(list string)
    "e34 rows identical across runs" (run ()) (run ())

(* --- E35 ------------------------------------------------------------ *)

let e35 = lazy (E.e35_hijack_containment ~params:small_params ())

let test_e35_containment_improves_with_deployment () =
  let rows = Lazy.force e35 in
  check Alcotest.int "one row per level" 4 (List.length rows);
  let rec non_increasing = function
    | (a : E.e35_row) :: (b :: _ as rest) ->
        a.E.hijacked_peak35 >= b.E.hijacked_peak35 -. 1e-9
        && non_increasing rest
    | _ -> true
  in
  check Alcotest.bool "hijacked peak non-increasing in deployment" true
    (non_increasing rows);
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  check Alcotest.bool "denser deployment contains the rogue" true
    (last.E.hijacked_peak35 <= first.E.hijacked_peak35);
  check Alcotest.bool "delivery during the fault improves" true
    (last.E.ok_fault35 >= first.E.ok_fault35);
  List.iter
    (fun (r : E.e35_row) ->
      check Alcotest.bool "fractions in range" true
        (r.E.hijacked_peak35 >= 0.0
        && r.E.hijacked_peak35 <= 1.0
        && r.E.hijacked_mean35 <= r.E.hijacked_peak35 +. 1e-9))
    rows

(* --- E36 ------------------------------------------------------------ *)

let e36 = lazy (E.e36_overload_response ~params:small_params ())

let test_e36_graceful_degradation () =
  let rows = Lazy.force e36 in
  check Alcotest.int "one row per load level" 7 (List.length rows);
  (* the delivered fraction degrades monotonically past saturation —
     a slope, not a cliff *)
  let rec non_increasing = function
    | (a : E.e36_row) :: (b :: _ as rest) ->
        b.E.goodput_frac36 <= a.E.goodput_frac36 +. 1e-9 && non_increasing rest
    | _ -> true
  in
  check Alcotest.bool "goodput fraction non-increasing in offered load" true
    (non_increasing rows);
  (* absolute goodput never collapses: more offered load never delivers
     less (the higher level replays the lower one's injections as a
     per-tick prefix) *)
  let rec goodput_monotone = function
    | (a : E.e36_row) :: (b :: _ as rest) ->
        b.E.goodput36 >= a.E.goodput36 && goodput_monotone rest
    | _ -> true
  in
  check Alcotest.bool "absolute goodput non-decreasing" true
    (goodput_monotone rows);
  List.iter
    (fun (r : E.e36_row) ->
      check Alcotest.bool
        (Printf.sprintf "load %d: queued bytes bounded by depth" r.E.load36)
        true r.E.bounded36;
      check (Alcotest.float 1e-9)
        (Printf.sprintf "load %d: control never shed before data" r.E.load36)
        1.0 r.E.ctrl_ok36;
      check Alcotest.bool
        (Printf.sprintf "load %d: some goodput survives" r.E.load36)
        true (r.E.goodput36 > 0))
    rows;
  (* the sweep actually reaches saturation: the top load is shed *)
  let last = List.nth rows (List.length rows - 1) in
  check Alcotest.bool "top load overloads the queues" true
    (last.E.shed36 + last.E.qdrop36 > 0);
  check Alcotest.bool "delay grows under overload" true
    (last.E.delay36 >= (List.hd rows).E.delay36)

let test_e36_deterministic () =
  let row_str (r : E.e36_row) =
    Printf.sprintf "%d %d %d %.6f %.6f %d %d %.6f %d %b" r.E.load36
      r.E.offered36 r.E.goodput36 r.E.goodput_frac36 r.E.ctrl_ok36 r.E.qdrop36
      r.E.shed36 r.E.delay36 r.E.queued_hw36 r.E.bounded36
  in
  let run () =
    List.map row_str (E.e36_overload_response ~params:small_params ())
  in
  check Alcotest.(list string) "e36 rows identical across runs" (run ())
    (run ())

(* --- E37 ------------------------------------------------------------ *)

let e37 = lazy (E.e37_crash_recovery ~params:small_params ())

let test_e37_zero_divergence () =
  let rows = Lazy.force e37 in
  check Alcotest.int "one row per shard count" 4 (List.length rows);
  List.iter
    (fun (r : E.e37_row) ->
      check Alcotest.bool
        (Printf.sprintf "%d shards: the crash fired and was supervised"
           r.E.shards37)
        true
        (r.E.restarts37 >= 1);
      check Alcotest.bool
        (Printf.sprintf "%d shards: verdicts identical after restart"
           r.E.shards37)
        true r.E.identical37;
      check Alcotest.int
        (Printf.sprintf "%d shards: nothing shed across the restart"
           r.E.shards37)
        0 r.E.shed37;
      check Alcotest.bool
        (Printf.sprintf "%d shards: traffic terminated" r.E.shards37)
        true
        (r.E.delivered37 + r.E.dropped37 + r.E.ttl37 > 0))
    rows;
  (* the verdict counts themselves are shard-count invariant, as E33
     demands of the uncrashed pool *)
  (match rows with
  | first :: rest ->
      List.iter
        (fun (r : E.e37_row) ->
          check Alcotest.int "delivered invariant across shard counts"
            first.E.delivered37 r.E.delivered37)
        rest
  | [] -> ())

let test_e37_deterministic () =
  let row_str (r : E.e37_row) =
    Printf.sprintf "%d %d %d %d %d %d %d %b" r.E.shards37 r.E.restarts37
      r.E.rounds37 r.E.delivered37 r.E.dropped37 r.E.ttl37 r.E.shed37
      r.E.identical37
  in
  let run () = List.map row_str (E.e37_crash_recovery ~params:small_params ()) in
  check Alcotest.(list string) "e37 rows identical across runs" (run ())
    (run ())

let () =
  Alcotest.run "experiments"
    [
      ( "e1",
        [
          Alcotest.test_case "universal access" `Quick test_e1_universal_access;
          Alcotest.test_case "stretch -> 1" `Quick test_e1_stretch_converges_to_one;
          Alcotest.test_case "nested deployment" `Quick test_e1_deployment_grows;
        ] );
      ( "e2",
        [
          Alcotest.test_case "default dominates initially" `Quick
            test_e2_default_dominates_without_advertisement;
          Alcotest.test_case "advertising sheds load" `Quick
            test_e2_advertising_sheds_default_load;
          Alcotest.test_case "option1 reference" `Quick test_e2_option1_reference_present;
        ] );
      ( "e3",
        [
          Alcotest.test_case "exit-early off the vN-Bone" `Quick
            test_e3_exit_early_never_uses_vnbone;
          Alcotest.test_case "bgp-aware rides the vN-Bone" `Quick
            test_e3_bgp_aware_uses_vnbone_more;
          Alcotest.test_case "delivery" `Quick test_e3_all_strategies_deliver;
        ] );
      ( "e4",
        [
          Alcotest.test_case "delivery at 15%" `Quick test_e4_all_strategies_deliver;
          Alcotest.test_case "exit-early off the vN-Bone" `Quick
            test_e4_exit_early_never_uses_vnbone;
        ] );
      ( "e5",
        [
          Alcotest.test_case "option1 grows" `Quick test_e5_option1_state_grows_linearly;
          Alcotest.test_case "option2 flat" `Quick test_e5_option2_state_constant;
        ] );
      ("e6", [ Alcotest.test_case "UA vs gated" `Quick test_e6_ua_vs_gated ]);
      ( "e7",
        [
          Alcotest.test_case "no failures: connected" `Quick test_e7_no_failures_connected;
          Alcotest.test_case "k monotone" `Quick test_e7_more_neighbors_more_robust;
          Alcotest.test_case "repair cost grows" `Quick test_e7_repair_cost_grows;
        ] );
      ("e8", [ Alcotest.test_case "positive rounds" `Quick test_e8_positive_rounds ]);
      ( "e9",
        [
          Alcotest.test_case "optimal when fresh" `Quick
            test_e9_host_advertised_optimal_when_fresh;
          Alcotest.test_case "fate sharing" `Quick test_e9_fate_sharing;
        ] );
      ( "e10",
        [
          Alcotest.test_case "all connected" `Quick test_e10_all_connected;
          Alcotest.test_case "lsdb beats walk" `Quick test_e10_lsdb_beats_walk;
          Alcotest.test_case "k monotone" `Quick test_e10_more_neighbors_less_stretch;
        ] );
      ( "e11",
        [
          Alcotest.test_case "congruent at full deployment" `Quick
            test_e11_congruence_at_full_deployment;
          Alcotest.test_case "tunnels grow" `Quick test_e11_tunnels_grow_with_deployment;
        ] );
      ( "e12",
        [
          Alcotest.test_case "universal delivery" `Quick test_e12_universal_delivery;
          Alcotest.test_case "radius sheds home load" `Quick
            test_e12_radius_sheds_home_load;
          Alcotest.test_case "state between options" `Quick
            test_e12_state_between_options;
        ] );
      ( "e13",
        [
          Alcotest.test_case "seed count recorded" `Quick test_e13_counts_seeds;
          Alcotest.test_case "delivery CI collapses" `Quick
            test_e13_delivery_certain_across_seeds;
        ] );
      ( "e14",
        [
          Alcotest.test_case "alpha monotone" `Quick test_e14_alpha_monotone;
          Alcotest.test_case "large alpha minimizes hops" `Quick
            test_e14_large_alpha_cheapest_total;
        ] );
      ( "e15",
        [
          Alcotest.test_case "UA dominates" `Quick test_e15_ua_dominates_everywhere;
          Alcotest.test_case "gated collapses" `Quick
            test_e15_gated_collapses_above_share;
        ] );
      ( "e16",
        [
          Alcotest.test_case "both pickers present" `Quick
            test_e16_both_pickers_present;
          Alcotest.test_case "largest >= smallest pop share" `Quick
            test_e16_larger_deployers_attract_no_less;
        ] );
      ( "e17",
        [
          Alcotest.test_case "table = one aggregate per domain" `Quick
            test_e17_table_is_one_aggregate_per_domain;
        ] );
      ( "e18",
        [
          Alcotest.test_case "latency = eccentricity" `Quick
            test_e18_latency_matches_eccentricity;
        ] );
      ( "e19",
        [ Alcotest.test_case "MRAI coalesces" `Quick test_e19_mrai_coalesces ]);
      ( "e20",
        [ Alcotest.test_case "anycast survives" `Quick test_e20_anycast_survives ]);
      ( "e21",
        [
          Alcotest.test_case "stable across sizes" `Quick
            test_e21_behaviour_stable_across_sizes;
        ] );
      ( "e22",
        [
          Alcotest.test_case "opt1 FIB grows" `Quick test_e22_option1_fib_grows;
          Alcotest.test_case "max bounds mean" `Quick test_e22_max_bounds_mean;
        ] );
      ( "e23",
        [
          Alcotest.test_case "claims hold on both models" `Quick
            test_e23_claims_hold_on_both_models;
        ] );
      ( "e24",
        [ Alcotest.test_case "stability decreases" `Quick test_e24_churn_decreases ]);
      ( "e25",
        [
          Alcotest.test_case "coalition threshold" `Quick test_e25_coalition_threshold;
        ] );
      ( "e26",
        [
          Alcotest.test_case "overhead shrinks with payload" `Quick
            test_e26_overhead_shrinks_with_payload;
        ] );
      ( "e27",
        [
          Alcotest.test_case "DV costs vN stretch, not delivery" `Quick
            test_e27_dv_costs_vn_stretch_not_delivery;
        ] );
      ( "e28",
        [
          Alcotest.test_case "withdraw churns more" `Quick
            test_e28_withdraw_churns_more;
        ] );
      ( "e29",
        [
          Alcotest.test_case "stretch falls with deployment" `Quick
            test_e29_stretch_falls_with_deployment;
        ] );
      ( "e30",
        [
          Alcotest.test_case "churn disrupts then recovers" `Quick
            test_e30_churn_disrupts_then_recovers;
        ] );
      ( "e31",
        [
          Alcotest.test_case "faulty runs converge to the oracle" `Quick
            test_e31_converges_to_oracle;
        ] );
      ( "e32",
        [
          Alcotest.test_case "recovery beats riding out the flap" `Quick
            test_e32_recovery_beats_waiting;
          Alcotest.test_case "same seed, same rows" `Quick
            test_e31_e32_deterministic;
        ] );
      ( "e33",
        [
          Alcotest.test_case "shard-count invariance" `Quick
            test_e33_shard_invariance;
          Alcotest.test_case "same seed, same rows" `Quick
            test_e33_deterministic;
        ] );
      ( "e34",
        [
          Alcotest.test_case "catalog passes at intensity 1" `Slow
            test_e34_catalog_passes;
          Alcotest.test_case "same seed, same rows" `Slow
            test_e34_deterministic;
        ] );
      ( "e35",
        [
          Alcotest.test_case "containment improves with deployment" `Slow
            test_e35_containment_improves_with_deployment;
        ] );
      ( "e36",
        [
          Alcotest.test_case "graceful degradation, not a cliff" `Slow
            test_e36_graceful_degradation;
          Alcotest.test_case "same seed, same rows" `Slow
            test_e36_deterministic;
        ] );
      ( "e37",
        [
          Alcotest.test_case "zero verdict divergence after restart" `Slow
            test_e37_zero_divergence;
          Alcotest.test_case "same seed, same rows" `Slow
            test_e37_deterministic;
        ] );
    ]
