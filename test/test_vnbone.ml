(* Tests for vN-Bone construction, routing and end-to-end transport. *)

module Internet = Topology.Internet
module Graph = Topology.Graph
module Rng = Topology.Rng
module Forward = Simcore.Forward
module Service = Anycast.Service
module Fabric = Vnbone.Fabric
module Router = Vnbone.Router
module Transport = Vnbone.Transport
module Ipvn = Netcore.Ipvn
module Ipv4 = Netcore.Ipv4

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let default_setup ?(deploy = [ 5; 9; 14 ]) () =
  let inet = Internet.build Internet.default_params in
  let env = Forward.make_env inet in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  List.iter
    (fun d ->
      Service.add_participant service ~domain:d
        ~routers:(Array.to_list (Internet.domain inet d).Internet.router_ids))
    deploy;
  (inet, env, service)

(* ------------------------------------------------------------------ *)
(* Fabric                                                              *)

let test_fabric_nodes_are_members () =
  let _, _, service = default_setup () in
  let fabric = Fabric.build service in
  let members = Fabric.members fabric in
  check Alcotest.int "one node per member"
    (List.length (Service.members service))
    (Array.length members);
  Array.iteri
    (fun i r ->
      check Alcotest.(option int) "index_of inverse" (Some i)
        (Fabric.index_of fabric r))
    members

let test_fabric_connected_and_anchored () =
  let _, _, service = default_setup () in
  let fabric = Fabric.build service in
  check Alcotest.bool "connected" true (Fabric.is_connected fabric);
  check Alcotest.(option int) "anchor is first participant" (Some 5)
    (Fabric.anchor_domain fabric)

let test_fabric_unanchored_disconnected () =
  (* three mutually unlinked stubs: without anchoring no inter tunnels *)
  let _, _, service = default_setup () in
  let fabric = Fabric.build ~anchored:false service in
  check Alcotest.bool "stub islands disconnect" false (Fabric.is_connected fabric)

let test_fabric_tunnel_endpoints_are_members () =
  let _, _, service = default_setup () in
  let fabric = Fabric.build service in
  let members = Service.members service in
  List.iter
    (fun tn ->
      check Alcotest.bool "from is member" true
        (List.mem tn.Fabric.from_router members);
      check Alcotest.bool "to is member" true (List.mem tn.Fabric.to_router members);
      check Alcotest.bool "metric finite and positive" true
        (tn.Fabric.underlay_metric >= 0.0 && tn.Fabric.underlay_metric < infinity))
    (Fabric.tunnels fabric)

let test_fabric_intra_edges_stay_in_domain () =
  let inet, _, service = default_setup () in
  let fabric = Fabric.build service in
  List.iter
    (fun tn ->
      let da = (Internet.router inet tn.Fabric.from_router).Internet.rdomain in
      let db = (Internet.router inet tn.Fabric.to_router).Internet.rdomain in
      match tn.Fabric.kind with
      | `Intra -> check Alcotest.int "intra stays inside" da db
      | `Inter_policy | `Inter_bootstrap ->
          check Alcotest.bool "inter crosses domains" true (da <> db)
      | `Manual -> Alcotest.fail "automatic build must not emit manual tunnels")
    (Fabric.tunnels fabric)

let test_fabric_vn_path_walks_edges () =
  let _, _, service = default_setup () in
  let fabric = Fabric.build service in
  let members = Array.to_list (Fabric.members fabric) in
  let a = List.hd members and b = List.nth members (List.length members - 1) in
  match Fabric.vn_path fabric a b with
  | None -> Alcotest.fail "no vn path on connected fabric"
  | Some nodes ->
      check Alcotest.bool "starts at a" true (List.hd nodes = a);
      check Alcotest.bool "ends at b" true (List.nth nodes (List.length nodes - 1) = b);
      let rec ok = function
        | x :: (y :: _ as rest) -> (
            match (Fabric.index_of fabric x, Fabric.index_of fabric y) with
            | Some ix, Some iy -> Graph.has_edge (Fabric.graph fabric) ix iy && ok rest
            | _ -> false)
        | _ -> true
      in
      check Alcotest.bool "walks vn edges" true (ok nodes);
      check Alcotest.bool "distance consistent" true
        (Fabric.vn_distance fabric a b < infinity)

let test_fabric_partial_domain_deployment () =
  (* only half the routers of a domain deploy: intra rule must still
     connect them *)
  let inet = Internet.build Internet.default_params in
  let env = Forward.make_env inet in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  let dom = Internet.domain inet 5 in
  let half =
    Array.to_list (Array.sub dom.Internet.router_ids 0
       (max 1 (Array.length dom.Internet.router_ids / 2)))
  in
  Service.add_participant service ~domain:5 ~routers:half;
  let fabric = Fabric.build service in
  check Alcotest.bool "partial domain still connected" true
    (Fabric.is_connected fabric)

let prop_fabric_anchored_always_connected =
  QCheck.Test.make ~name:"anchored fabric connected on random deployments"
    ~count:10
    QCheck.(pair (int_bound 10000) (int_bound 5))
    (fun (seed, extra) ->
      let params =
        { Internet.default_params with Internet.seed = Int64.of_int seed }
      in
      let inet = Internet.build params in
      let env = Forward.make_env inet in
      let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let doms =
        Rng.sample rng (2 + extra)
          (List.init (Internet.num_domains inet) Fun.id)
      in
      List.iter
        (fun d ->
          Service.add_participant service ~domain:d
            ~routers:
              (Array.to_list (Internet.domain inet d).Internet.router_ids))
        doms;
      Fabric.is_connected (Fabric.build service))

let test_fabric_anycast_walk_discovery () =
  (* footnote-2 fallback: joiners tunnel to the nearest already-joined
     member; the result is a tree per domain (n-1 intra edges) and the
     fabric is still connected *)
  let inet, _, service = default_setup () in
  let fabric = Fabric.build ~discovery:Fabric.Anycast_walk service in
  check Alcotest.bool "walk fabric connected" true (Fabric.is_connected fabric);
  List.iter
    (fun d ->
      let members = Service.members_in service ~domain:d in
      let intra_edges =
        List.filter
          (fun t ->
            t.Fabric.kind = `Intra
            && (Internet.router inet t.Fabric.from_router).Internet.rdomain = d)
          (Fabric.tunnels fabric)
      in
      check Alcotest.int
        (Printf.sprintf "domain %d join tree has n-1 edges" d)
        (List.length members - 1)
        (List.length intra_edges))
    [ 5; 9; 14 ]

let test_fabric_stretch_bounds () =
  let _, _, service = default_setup () in
  let lsdb = Fabric.build ~k:3 service in
  let walk = Fabric.build ~discovery:Fabric.Anycast_walk service in
  let s_lsdb = Fabric.mean_vn_stretch lsdb in
  let s_walk = Fabric.mean_vn_stretch walk in
  check Alcotest.bool "stretch >= 1" true (s_lsdb >= 1.0 -. 1e-9);
  check Alcotest.bool "richer topology, no worse stretch" true
    (s_lsdb <= s_walk +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Router                                                              *)

let test_router_exit_early_is_ingress () =
  let inet, _, service = default_setup () in
  let router = Router.create (Fabric.build service) in
  let ingress = List.hd (Service.members service) in
  let dest = (Internet.endhost inet 0).Internet.haddr in
  check Alcotest.(option int) "exit early = ingress" (Some ingress)
    (Router.egress_for router ~strategy:Router.Exit_early ~ingress ~dest)

let test_router_bgp_aware_minimizes_domain_path () =
  let inet, _, service = default_setup () in
  let router = Router.create (Fabric.build service) in
  let ingress = List.hd (Service.members service) in
  (* destination inside a participant's customer cone is closest to
     that participant *)
  let dest = (Internet.endhost inet 0).Internet.haddr in
  match Router.egress_for router ~strategy:Router.Bgp_aware ~ingress ~dest with
  | None -> Alcotest.fail "no egress"
  | Some egress ->
      let score m = Router.domain_path_length router ~member:m ~dest in
      let best =
        List.filter_map score (Service.members service)
        |> List.fold_left min max_int
      in
      check Alcotest.(option int) "egress achieves the min AS-path" (Some best)
        (score egress)

let test_router_egress_to_vn_domain () =
  let _, _, service = default_setup () in
  let router = Router.create (Fabric.build service) in
  let ingress = List.hd (Service.members service) in
  match Router.egress_to_vn_domain router ~ingress ~domain:9 with
  | Some egress ->
      let inet = (Service.env service).Forward.inet in
      check Alcotest.int "egress inside target domain" 9
        (Internet.router inet egress).Internet.rdomain
  | None -> Alcotest.fail "no egress into participant domain"

let test_router_host_advertised_lifecycle () =
  let inet, _, service = default_setup () in
  let router = Router.create (Fabric.build service) in
  (* a destination in a non-participant domain registers *)
  let dst = (Internet.domain inet 20).Internet.endhost_ids.(0) in
  check Alcotest.(option int) "unregistered" None
    (Router.registered_advertiser router ~endhost:dst);
  (match Router.register_endhost router ~endhost:dst with
  | None -> Alcotest.fail "registration failed"
  | Some advertiser ->
      check Alcotest.bool "advertiser is a member" true
        (List.mem advertiser (Service.members service));
      check Alcotest.(option int) "recorded" (Some advertiser)
        (Router.registered_advertiser router ~endhost:dst);
      check Alcotest.bool "fresh registration not stale" false
        (Router.registration_stale router ~endhost:dst);
      (* the advertiser becomes the journey's egress *)
      let src = (Internet.domain inet 1).Internet.endhost_ids.(0) in
      let j =
        Transport.send router ~strategy:Router.Host_advertised ~src ~dst
          ~payload:"x"
      in
      check Alcotest.bool "delivered via advertiser" true (Transport.delivered j);
      check Alcotest.(option int) "egress = advertiser" (Some advertiser)
        j.Transport.egress;
      (* fate-sharing: kill the advertiser, do not re-register *)
      Service.remove_member service ~router:advertiser;
      check Alcotest.bool "now stale" true
        (Router.registration_stale router ~endhost:dst);
      let j2 =
        Transport.send router ~strategy:Router.Host_advertised ~src ~dst
          ~payload:"x"
      in
      check Alcotest.bool "stale route black-holes" false (Transport.delivered j2);
      (* re-registration heals it *)
      (match Router.register_endhost router ~endhost:dst with
      | None -> Alcotest.fail "re-registration failed"
      | Some advertiser2 ->
          check Alcotest.bool "new advertiser" true (advertiser2 <> advertiser));
      let j3 =
        Transport.send router ~strategy:Router.Host_advertised ~src ~dst
          ~payload:"x"
      in
      check Alcotest.bool "healed" true (Transport.delivered j3);
      Router.deregister_endhost router ~endhost:dst;
      check Alcotest.(option int) "deregistered" None
        (Router.registered_advertiser router ~endhost:dst))

let test_router_host_advertised_fallback () =
  let inet, _, service = default_setup () in
  let router = Router.create (Fabric.build service) in
  (* with no registration, host-advertised behaves like exit-early *)
  let src = (Internet.domain inet 1).Internet.endhost_ids.(0) in
  let dst = (Internet.domain inet 20).Internet.endhost_ids.(0) in
  let j =
    Transport.send router ~strategy:Router.Host_advertised ~src ~dst ~payload:"x"
  in
  let j_early =
    Transport.send router ~strategy:Router.Exit_early ~src ~dst ~payload:"x"
  in
  check Alcotest.bool "delivered" true (Transport.delivered j);
  check Alcotest.(option int) "same egress as exit-early" j_early.Transport.egress
    j.Transport.egress

let test_fabric_manual_tunnel () =
  let _, _, service = default_setup () in
  let fabric = Fabric.build service in
  (* pick two members in different domains without a direct tunnel *)
  let members = Array.to_list (Fabric.members fabric) in
  let linked a b =
    match (Fabric.index_of fabric a, Fabric.index_of fabric b) with
    | Some ia, Some ib -> Graph.has_edge (Fabric.graph fabric) ia ib
    | _ -> true
  in
  let pair =
    List.find_opt
      (fun (a, b) -> a <> b && not (linked a b))
      (List.concat_map (fun a -> List.map (fun b -> (a, b)) members) members)
  in
  match pair with
  | None -> Alcotest.fail "fixture is a clique; enlarge it"
  | Some (a, b) ->
      let before = Fabric.vn_distance fabric a b in
      Fabric.add_manual_tunnel fabric a b;
      check Alcotest.bool "edge exists" true (linked a b);
      check Alcotest.bool "manual kind recorded" true
        (List.exists
           (fun t -> t.Fabric.kind = `Manual)
           (Fabric.tunnels fabric));
      check Alcotest.bool "distance improved or equal" true
        (Fabric.vn_distance fabric a b <= before);
      Alcotest.check_raises "non-member rejected"
        (Invalid_argument "Fabric.add_manual_tunnel: router is not a member")
        (fun () -> Fabric.add_manual_tunnel fabric a 999999)

(* ------------------------------------------------------------------ *)
(* Bgpvn: the distributed protocol vs the oracle                       *)

module Bgpvn = Vnbone.Bgpvn

let test_bgpvn_converges_with_aggregates () =
  let _, _, service = default_setup () in
  let fabric = Fabric.build service in
  let speaker = Bgpvn.create fabric in
  let rounds = Bgpvn.converge speaker in
  check Alcotest.bool "did some work" true (rounds > 0);
  (* every member ends up with a route to every participant domain *)
  Array.iter
    (fun m ->
      List.iter
        (fun d ->
          match Bgpvn.route speaker ~at:m (Bgpvn.Vn_domain d) with
          | Some r ->
              check Alcotest.bool "egress in target domain" true
                ((Internet.router
                    (Service.env service).Forward.inet r.Bgpvn.egress)
                   .Internet.rdomain = d)
          | None -> Alcotest.fail "missing aggregate route")
        (Service.participants service))
    (Fabric.members fabric)

let test_bgpvn_agrees_with_oracle_on_domains () =
  let _, _, service = default_setup () in
  let fabric = Fabric.build service in
  let oracle = Router.create ~mode:Router.Oracle fabric in
  let proto = Router.create ~mode:Router.Protocol fabric in
  Array.iter
    (fun ingress ->
      List.iter
        (fun d ->
          let a = Router.egress_to_vn_domain oracle ~ingress ~domain:d in
          let b = Router.egress_to_vn_domain proto ~ingress ~domain:d in
          check Alcotest.(option int)
            (Printf.sprintf "ingress %d -> domain %d" ingress d)
            a b)
        (Service.participants service))
    (Fabric.members fabric)

let test_bgpvn_agrees_with_oracle_on_proxy () =
  let inet, _, service = default_setup () in
  let fabric = Fabric.build service in
  let oracle = Router.create ~mode:Router.Oracle fabric in
  let proto = Router.create ~mode:Router.Protocol fabric in
  let dests =
    [ 0; 2; 8; 16; 25 ]
    |> List.map (fun d -> (Internet.domain inet d).Internet.endhost_ids.(0))
    |> List.map (fun h -> (Internet.endhost inet h).Internet.haddr)
  in
  Array.iter
    (fun ingress ->
      List.iter
        (fun dest ->
          let a = Router.egress_for oracle ~strategy:Router.Proxy ~ingress ~dest in
          let b = Router.egress_for proto ~strategy:Router.Proxy ~ingress ~dest in
          check Alcotest.(option int) "proxy egress agrees" a b)
        dests)
    (Fabric.members fabric)

let test_bgpvn_external_validation () =
  let _, _, service = default_setup () in
  let fabric = Fabric.build service in
  let speaker = Bgpvn.create fabric in
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Bgpvn.originate_external: negative cost") (fun () ->
      Bgpvn.originate_external speaker
        ~member:(Fabric.members fabric).(0)
        ~prefix:(Netcore.Prefix.of_string "10.0.0.0/16")
        ~exit_cost:(-1.0));
  Alcotest.check_raises "non-member"
    (Invalid_argument "Bgpvn: router is not a vN-Bone member") (fun () ->
      Bgpvn.originate_external speaker ~member:999999
        ~prefix:(Netcore.Prefix.of_string "10.0.0.0/16")
        ~exit_cost:1.0)

let test_bgpvn_survives_member_failures () =
  (* ~20% of the vN-Bone's member routers die: the fabric repairs its
     tunnel mesh (probe + re-anchor), BGPvN purges routes through the
     dead, and the re-converged costs must equal the centralized
     cheapest paths over the repaired fabric *)
  let inet, _, service = default_setup () in
  let fabric = Fabric.build service in
  let members = Array.to_list (Fabric.members fabric) in
  let rng = Rng.create 77L in
  let dead = Rng.sample rng (max 1 (List.length members / 5)) members in
  let alive r = not (List.mem r dead) in
  let removed = Fabric.probe_tunnels fabric ~alive in
  check Alcotest.bool "dead endpoints lose their tunnels" true (removed > 0);
  let added = Fabric.reanchor fabric ~alive in
  ignore added;
  (* every pair of live members must be reconnected by the repair *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if alive a && alive b then
            check Alcotest.bool
              (Printf.sprintf "live members %d and %d reconnected" a b)
              true
              (Float.is_finite (Fabric.vn_distance fabric a b)))
        members)
    members;
  let speaker = Bgpvn.create fabric in
  Bgpvn.fail_members speaker ~alive;
  ignore (Bgpvn.converge speaker);
  List.iter
    (fun d ->
      let live_in_d =
        List.filter
          (fun m -> alive m && (Internet.router inet m).Internet.rdomain = d)
          members
      in
      let expected at =
        List.fold_left
          (fun acc m -> Float.min acc (Fabric.vn_distance fabric at m))
          infinity live_in_d
      in
      List.iter
        (fun m ->
          if alive m then
            match Bgpvn.route speaker ~at:m (Bgpvn.Vn_domain d) with
            | Some r ->
                check (Alcotest.float 1e-9)
                  (Printf.sprintf "member %d -> domain %d cost" m d)
                  (expected m) r.Bgpvn.cost
            | None ->
                check Alcotest.bool
                  (Printf.sprintf "member %d -> domain %d only dark when no \
                                   live member" m d)
                  false
                  (Float.is_finite (expected m)))
        members)
    (Service.participants service);
  (* the dead speak no routes *)
  List.iter
    (fun m ->
      check Alcotest.int
        (Printf.sprintf "dead member %d holds no routes" m)
        0
        (Bgpvn.table_size speaker ~at:m))
    dead

let test_protocol_mode_journeys_deliver () =
  let inet, _, service = default_setup () in
  let router = Router.create ~mode:Router.Protocol (Fabric.build service) in
  let src = (Internet.domain inet 1).Internet.endhost_ids.(0) in
  List.iter
    (fun dst_domain ->
      let dst = (Internet.domain inet dst_domain).Internet.endhost_ids.(0) in
      List.iter
        (fun strategy ->
          let j = Transport.send router ~strategy ~src ~dst ~payload:"p" in
          check Alcotest.bool
            (Printf.sprintf "%s to domain %d"
               (Router.strategy_to_string strategy)
               dst_domain)
            true (Transport.delivered j))
        [ Router.Exit_early; Router.Bgp_aware; Router.Proxy ])
    [ 9 (* participant *); 20 (* non-participant *) ]

(* ------------------------------------------------------------------ *)
(* Vn_fib: hop-by-hop vN forwarding from compiled tables              *)

module Vn_fib = Vnbone.Vn_fib

let test_vn_fib_walk_reaches_egress () =
  let _, _, service = default_setup () in
  let fabric = Fabric.build service in
  let speaker = Bgpvn.create fabric in
  ignore (Bgpvn.converge speaker);
  let fib = Vn_fib.compile speaker in
  Array.iter
    (fun m ->
      List.iter
        (fun d ->
          let dest = Bgpvn.Vn_domain d in
          match (Vn_fib.walk fib ~from_:m dest, Bgpvn.route speaker ~at:m dest) with
          | Ok path, Some r ->
              check Alcotest.int "walk ends at the route's egress"
                r.Bgpvn.egress
                (List.nth path (List.length path - 1));
              check Alcotest.int "walk starts at the source" m (List.hd path)
          | Error e, _ -> Alcotest.fail ("walk failed: " ^ e)
          | Ok _, None -> Alcotest.fail "walk succeeded without a route")
        (Service.participants service))
    (Fabric.members fabric)

let test_vn_fib_sizes () =
  let _, _, service = default_setup () in
  let fabric = Fabric.build service in
  let speaker = Bgpvn.create fabric in
  ignore (Bgpvn.converge speaker);
  let fib = Vn_fib.compile speaker in
  Array.iter
    (fun m ->
      check Alcotest.int "one entry per aggregate"
        (List.length (Service.participants service))
        (Vn_fib.size fib ~at:m))
    (Fabric.members fabric);
  Alcotest.check_raises "non-member rejected"
    (Invalid_argument "Vn_fib: router is not a vN-Bone member") (fun () ->
      ignore (Vn_fib.size fib ~at:999999))

(* ------------------------------------------------------------------ *)
(* Transport                                                           *)

let test_vn_addresses () =
  let inet, _, service = default_setup () in
  (* endhost in participant domain 5 gets a provider address *)
  let h5 = (Internet.domain inet 5).Internet.endhost_ids.(0) in
  let a5 = Transport.vn_address_of_endhost service ~endhost:h5 in
  check Alcotest.bool "provider-addressed" false (Ipvn.is_self a5);
  check Alcotest.(option int) "right domain" (Some 5) (Ipvn.domain a5);
  (* endhost in a non-participant domain self-addresses, embedding v4 *)
  let h0 = (Internet.domain inet 0).Internet.endhost_ids.(0) in
  let a0 = Transport.vn_address_of_endhost service ~endhost:h0 in
  check Alcotest.bool "self-addressed" true (Ipvn.is_self a0);
  check Alcotest.(option string) "embeds v4"
    (Some (Ipv4.to_string (Internet.endhost inet h0).Internet.haddr))
    (Option.map Ipv4.to_string (Ipvn.embedded_ipv4 a0))

let journey_fixture strategy =
  let inet, _, service = default_setup () in
  let router = Router.create (Fabric.build service) in
  (* src in non-participant domain 1, dst in non-participant domain 20 *)
  let src = (Internet.domain inet 1).Internet.endhost_ids.(0) in
  let dst = (Internet.domain inet 20).Internet.endhost_ids.(0) in
  (inet, Transport.send router ~strategy ~src ~dst ~payload:"test")

let test_transport_delivers_all_strategies () =
  List.iter
    (fun strategy ->
      let _, j = journey_fixture strategy in
      check Alcotest.bool (Router.strategy_to_string strategy) true
        (Transport.delivered j))
    [ Router.Exit_early; Router.Bgp_aware; Router.Proxy ]

let test_transport_journey_structure () =
  let inet, j = journey_fixture Router.Bgp_aware in
  (* leg structure: access first, exit last, vn in between *)
  (match j.Transport.legs with
  | Transport.Access _ :: rest ->
      let rec middle = function
        | [ Transport.Exit _ ] -> true
        | Transport.Vn _ :: rest -> middle rest
        | _ -> false
      in
      check Alcotest.bool "access, vn*, exit" true (middle rest)
  | _ -> Alcotest.fail "journey must start with an access leg");
  (* ingress/egress are members in the right domains *)
  (match (j.Transport.ingress, j.Transport.egress) with
  | Some i, Some e ->
      check Alcotest.bool "ingress is vN router" true
        (List.mem (Internet.router inet i).Internet.rdomain [ 5; 9; 14 ]);
      check Alcotest.bool "egress is vN router" true
        (List.mem (Internet.router inet e).Internet.rdomain [ 5; 9; 14 ])
  | _ -> Alcotest.fail "missing ingress/egress");
  check Alcotest.int "hops add up"
    (Transport.total_hops j)
    (Transport.access_hops j + Transport.vn_hops j + Transport.exit_hops j);
  check Alcotest.bool "fraction in [0,1]" true
    (Transport.vn_fraction j >= 0.0 && Transport.vn_fraction j <= 1.0)

let test_transport_vn_legs_follow_vn_path () =
  let _, j = journey_fixture Router.Bgp_aware in
  (* consecutive vn legs are contiguous: each leg starts where the
     previous ended, and the first starts at the ingress *)
  let vn_endpoints =
    List.filter_map
      (function
        | Transport.Vn { from_router; to_router; _ } -> Some (from_router, to_router)
        | Transport.Access _ | Transport.Exit _ -> None)
      j.Transport.legs
  in
  let rec contiguous = function
    | (_, b) :: ((c, _) :: _ as rest) -> b = c && contiguous rest
    | _ -> true
  in
  check Alcotest.bool "vn legs contiguous" true (contiguous vn_endpoints);
  match (vn_endpoints, j.Transport.ingress) with
  | (first, _) :: _, Some i -> check Alcotest.int "starts at ingress" i first
  | [], _ -> () (* ingress = egress: no vn legs *)
  | _, None -> Alcotest.fail "delivered journey without ingress"

let test_transport_to_participant_domain () =
  let inet, _, service = default_setup () in
  let router = Router.create (Fabric.build service) in
  let src = (Internet.domain inet 1).Internet.endhost_ids.(0) in
  let dst = (Internet.domain inet 9).Internet.endhost_ids.(0) in
  let j = Transport.send router ~strategy:Router.Exit_early ~src ~dst ~payload:"x" in
  check Alcotest.bool "delivered" true (Transport.delivered j);
  (* the egress must be inside the destination's own (participant)
     domain regardless of strategy *)
  match j.Transport.egress with
  | Some e -> check Alcotest.int "egress in dst domain" 9
      (Internet.router inet e).Internet.rdomain
  | None -> Alcotest.fail "no egress"

let test_transport_no_members_fails_cleanly () =
  let inet = Internet.build Internet.default_params in
  let env = Forward.make_env inet in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  let router = Router.create (Fabric.build service) in
  let j = Transport.send router ~strategy:Router.Exit_early ~src:0 ~dst:5 ~payload:"x" in
  check Alcotest.bool "not delivered" false (Transport.delivered j);
  match j.Transport.result with
  | Error Transport.No_ingress -> ()
  | _ -> Alcotest.fail "expected No_ingress"

let test_transport_relabel_on_adoption () =
  (* §3.3.2: self-addresses "are very likely temporary and such
     endhosts will have to relabel if and when their access providers
     do adopt IPvN". The relabel must be transparent to traffic. *)
  let inet = Internet.build Internet.default_params in
  let env = Forward.make_env inet in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  Service.add_participant service ~domain:5
    ~routers:(Array.to_list (Internet.domain inet 5).Internet.router_ids);
  let dst = (Internet.domain inet 20).Internet.endhost_ids.(0) in
  let before = Transport.vn_address_of_endhost service ~endhost:dst in
  check Alcotest.bool "self-addressed before adoption" true (Ipvn.is_self before);
  let router = Router.create (Fabric.build service) in
  let j1 = Transport.send router ~strategy:Router.Bgp_aware ~src:0 ~dst ~payload:"x" in
  check Alcotest.bool "delivered before adoption" true (Transport.delivered j1);
  (* the destination's provider adopts: address relabels to
     provider-assigned, and traffic keeps flowing *)
  Service.add_participant service ~domain:20
    ~routers:(Array.to_list (Internet.domain inet 20).Internet.router_ids);
  let after = Transport.vn_address_of_endhost service ~endhost:dst in
  check Alcotest.bool "provider-addressed after adoption" false (Ipvn.is_self after);
  check Alcotest.(option int) "provider is the home domain" (Some 20)
    (Ipvn.domain after);
  let router2 = Router.create (Fabric.build service) in
  let j2 =
    Transport.send router2 ~strategy:Router.Bgp_aware ~src:0 ~dst ~payload:"x"
  in
  check Alcotest.bool "delivered after relabel" true (Transport.delivered j2);
  (* and now the packet terminates natively in the adopted domain *)
  match j2.Transport.egress with
  | Some e ->
      check Alcotest.int "native delivery" 20
        (Internet.router inet e).Internet.rdomain
  | None -> Alcotest.fail "no egress"

let test_transport_concurrent_generations () =
  (* two IP generations evolve side by side over the same substrate,
     each with its own anycast group and vN-Bone *)
  let inet = Internet.build Internet.default_params in
  let env = Forward.make_env inet in
  let v8 = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  let v9 = Service.deploy env ~version:9 ~strategy:Service.Option1 in
  Service.add_participant v8 ~domain:5
    ~routers:(Array.to_list (Internet.domain inet 5).Internet.router_ids);
  Service.add_participant v9 ~domain:9
    ~routers:(Array.to_list (Internet.domain inet 9).Internet.router_ids);
  check Alcotest.bool "distinct anycast groups" false
    (Netcore.Prefix.equal (Service.group v8) (Service.group v9));
  let r8 = Router.create (Fabric.build v8) in
  let r9 = Router.create (Fabric.build v9) in
  let j8 = Transport.send r8 ~strategy:Router.Bgp_aware ~src:0 ~dst:50 ~payload:"v8" in
  let j9 = Transport.send r9 ~strategy:Router.Bgp_aware ~src:0 ~dst:50 ~payload:"v9" in
  check Alcotest.bool "v8 delivered" true (Transport.delivered j8);
  check Alcotest.bool "v9 delivered" true (Transport.delivered j9);
  check Alcotest.int "v8 packet tagged 8" 8 j8.Transport.packet.Netcore.Packet.version;
  check Alcotest.int "v9 packet tagged 9" 9 j9.Transport.packet.Netcore.Packet.version;
  (* each generation rides its own deployment *)
  (match (j8.Transport.ingress, j9.Transport.ingress) with
  | Some i8, Some i9 ->
      check Alcotest.int "v8 ingress in its domain" 5
        (Internet.router inet i8).Internet.rdomain;
      check Alcotest.int "v9 ingress in its domain" 9
        (Internet.router inet i9).Internet.rdomain
  | _ -> Alcotest.fail "missing ingress")

let test_transport_vttl_expires_on_marathon_paths () =
  (* failure injection: a 70-domain provider chain, one router each,
     forces a vN-Bone path longer than the vTTL budget *)
  let n = 70 in
  let specs =
    Array.init n (fun _ -> { Internet.routers = 1; endhosts = 1; transit = false })
  in
  let links =
    List.init (n - 1) (fun i ->
        { Internet.a = i; b = i + 1; rel_of_b = Topology.Relationship.Provider })
  in
  let inet = Internet.build_custom ~seed:3L specs links in
  let env = Forward.make_env inet in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  Service.add_participants service
    (List.init n (fun d ->
         (d, Array.to_list (Internet.domain inet d).Internet.router_ids)));
  let router = Router.create (Fabric.build service) in
  let src = (Internet.domain inet 0).Internet.endhost_ids.(0) in
  let dst = (Internet.domain inet (n - 1)).Internet.endhost_ids.(0) in
  let j = Transport.send router ~strategy:Router.Exit_early ~src ~dst ~payload:"x" in
  (match j.Transport.result with
  | Error Transport.Vttl_expired -> ()
  | Ok () -> Alcotest.fail "expected vTTL expiry on a 69-tunnel path"
  | Error _ -> Alcotest.fail "wrong failure mode");
  (* a nearby destination still works fine on the same fabric *)
  let near = (Internet.domain inet 5).Internet.endhost_ids.(0) in
  let j2 = Transport.send router ~strategy:Router.Exit_early ~src ~dst:near ~payload:"x" in
  check Alcotest.bool "short journey unaffected" true (Transport.delivered j2)

let test_transport_pp_journey () =
  let inet, j = journey_fixture Router.Bgp_aware in
  let b = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer b in
  Transport.pp_journey inet fmt j;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents b in
  let has needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "shows the access leg" true (has "access (anycast)");
  check Alcotest.bool "shows the exit leg" true (has "exit (IPv(N-1))");
  check Alcotest.bool "reports delivery" true (has "delivered:")

let prop_transport_delivers_on_random_internets =
  QCheck.Test.make ~name:"journeys deliver across random deployments" ~count:8
    QCheck.(int_bound 10000)
    (fun seed ->
      let params =
        { Internet.default_params with Internet.seed = Int64.of_int seed }
      in
      let inet = Internet.build params in
      let env = Forward.make_env inet in
      let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
      let rng = Rng.create (Int64.of_int (seed + 2)) in
      let doms =
        Rng.sample rng 4 (List.init (Internet.num_domains inet) Fun.id)
      in
      List.iter
        (fun d ->
          Service.add_participant service ~domain:d
            ~routers:
              (Array.to_list (Internet.domain inet d).Internet.router_ids))
        doms;
      let router = Router.create (Fabric.build service) in
      let hn = Array.length inet.Internet.endhosts in
      List.for_all
        (fun strategy ->
          List.for_all
            (fun _ ->
              let src = Rng.int rng hn in
              let dst = (src + 1 + Rng.int rng (hn - 1)) mod hn in
              Transport.delivered
                (Transport.send router ~strategy ~src ~dst ~payload:"p"))
            (List.init 10 Fun.id))
        [ Router.Exit_early; Router.Bgp_aware; Router.Proxy ])

let () =
  Alcotest.run "vnbone"
    [
      ( "fabric",
        [
          Alcotest.test_case "nodes are members" `Quick test_fabric_nodes_are_members;
          Alcotest.test_case "connected and anchored" `Quick
            test_fabric_connected_and_anchored;
          Alcotest.test_case "unanchored disconnects" `Quick
            test_fabric_unanchored_disconnected;
          Alcotest.test_case "tunnel endpoints" `Quick
            test_fabric_tunnel_endpoints_are_members;
          Alcotest.test_case "intra edges stay in domain" `Quick
            test_fabric_intra_edges_stay_in_domain;
          Alcotest.test_case "vn path walks edges" `Quick test_fabric_vn_path_walks_edges;
          Alcotest.test_case "partial domain deployment" `Quick
            test_fabric_partial_domain_deployment;
          Alcotest.test_case "anycast-walk discovery" `Quick
            test_fabric_anycast_walk_discovery;
          Alcotest.test_case "stretch bounds" `Quick test_fabric_stretch_bounds;
          Alcotest.test_case "manual tunnels" `Quick test_fabric_manual_tunnel;
          qcheck prop_fabric_anchored_always_connected;
        ] );
      ( "router",
        [
          Alcotest.test_case "exit early is ingress" `Quick
            test_router_exit_early_is_ingress;
          Alcotest.test_case "host-advertised lifecycle" `Quick
            test_router_host_advertised_lifecycle;
          Alcotest.test_case "host-advertised fallback" `Quick
            test_router_host_advertised_fallback;
          Alcotest.test_case "bgp-aware minimizes AS path" `Quick
            test_router_bgp_aware_minimizes_domain_path;
          Alcotest.test_case "egress into vn domain" `Quick test_router_egress_to_vn_domain;
        ] );
      ( "bgpvn",
        [
          Alcotest.test_case "converges with aggregates" `Quick
            test_bgpvn_converges_with_aggregates;
          Alcotest.test_case "protocol = oracle (domains)" `Quick
            test_bgpvn_agrees_with_oracle_on_domains;
          Alcotest.test_case "protocol = oracle (proxy)" `Quick
            test_bgpvn_agrees_with_oracle_on_proxy;
          Alcotest.test_case "validation" `Quick test_bgpvn_external_validation;
          Alcotest.test_case "survives member failures" `Quick
            test_bgpvn_survives_member_failures;
          Alcotest.test_case "protocol-mode journeys" `Quick
            test_protocol_mode_journeys_deliver;
          Alcotest.test_case "vn-fib walk reaches egress" `Quick
            test_vn_fib_walk_reaches_egress;
          Alcotest.test_case "vn-fib sizes" `Quick test_vn_fib_sizes;
        ] );
      ( "transport",
        [
          Alcotest.test_case "vn addresses" `Quick test_vn_addresses;
          Alcotest.test_case "delivers (all strategies)" `Quick
            test_transport_delivers_all_strategies;
          Alcotest.test_case "journey structure" `Quick test_transport_journey_structure;
          Alcotest.test_case "vn legs contiguous" `Quick
            test_transport_vn_legs_follow_vn_path;
          Alcotest.test_case "to participant domain" `Quick
            test_transport_to_participant_domain;
          Alcotest.test_case "no members fails cleanly" `Quick
            test_transport_no_members_fails_cleanly;
          Alcotest.test_case "relabel on adoption" `Quick
            test_transport_relabel_on_adoption;
          Alcotest.test_case "concurrent generations" `Quick
            test_transport_concurrent_generations;
          Alcotest.test_case "vttl expiry (failure injection)" `Quick
            test_transport_vttl_expires_on_marathon_paths;
          Alcotest.test_case "journey pretty-printer" `Quick test_transport_pp_journey;
          qcheck prop_transport_delivers_on_random_internets;
        ] );
    ]
