(* The incident-drill subsystem (DESIGN.md section 12): drillbook
   validation and loader round-trips, deterministic drill replay, the
   recovery SLOs of every catalog drill, and the looking glass's
   output-stability contract. *)

module Drillbook = Ops.Drillbook
module Drill = Ops.Drill
module Slo = Ops.Slo
module Glass = Ops.Glass
module Internet = Topology.Internet

let check = Alcotest.check

(* same small internet the experiment suite uses, to keep replays fast *)
let small_params =
  {
    Internet.default_params with
    Internet.transit_domains = 3;
    stubs_per_transit = 4;
    routers_per_transit = 8;
    routers_per_stub = 4;
    endhosts_per_domain = 2;
  }

(* --- drillbook: builder validation --------------------------------- *)

let invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let test_slo_validation () =
  invalid (fun () ->
      ignore
        (Drillbook.slo ~detection:(-1.0) ~reconverge:8.0 ~blackhole:4.0
           ~stale:0.5 ~hijacked:0.0));
  invalid (fun () ->
      ignore
        (Drillbook.slo ~detection:1.0 ~reconverge:8.0 ~blackhole:4.0
           ~stale:1.5 ~hijacked:0.0))

let ok_slo =
  Drillbook.slo ~detection:1.0 ~reconverge:8.0 ~blackhole:4.0 ~stale:0.5
    ~hijacked:0.0

let test_make_validation () =
  invalid (fun () ->
      ignore
        (Drillbook.make ~name:"" ~slo:ok_slo
           (Drillbook.Blackout { links = 1; routers_down = 0 })));
  (* fault window must sit inside the drill *)
  invalid (fun () ->
      ignore
        (Drillbook.make ~name:"x" ~ticks:5 ~fault_at:3.0 ~fault_until:9.0
           ~slo:ok_slo
           (Drillbook.Blackout { links = 1; routers_down = 0 })));
  (* flap trains must spend a positive fraction of each period down *)
  invalid (fun () ->
      ignore
        (Drillbook.make ~name:"x" ~slo:ok_slo
           (Drillbook.Provider_flap
              { stub_rank = 0; cycles = 2; period = 2.0; down_for = 3.0 })))

let test_with_intensity () =
  let b = Drillbook.regional_blackout in
  check Alcotest.bool "intensity 1 is the identity" true
    (Drillbook.equal b (Drillbook.with_intensity b 1.0));
  let hot = Drillbook.with_intensity b 4.0 in
  (match hot.Drillbook.kind with
  | Drillbook.Blackout { links; _ } ->
      check Alcotest.int "link count scales" 12 links
  | _ -> Alcotest.fail "kind changed");
  check Alcotest.bool "loss scales" true (hot.Drillbook.loss > b.Drillbook.loss);
  let inferno = Drillbook.with_intensity b 1000.0 in
  check (Alcotest.float 1e-9) "loss capped below certainty" 0.9
    inferno.Drillbook.loss;
  invalid (fun () -> ignore (Drillbook.with_intensity b 0.0))

(* --- drillbook: s-expression loader -------------------------------- *)

let test_sexp_roundtrip () =
  List.iter
    (fun b ->
      match Drillbook.of_string (Drillbook.to_sexp b) with
      | Ok b' ->
          check Alcotest.bool
            (b.Drillbook.name ^ " round-trips")
            true (Drillbook.equal b b')
      | Error e -> Alcotest.failf "%s: %s" b.Drillbook.name e)
    Drillbook.catalog

let test_example_files_match_catalog () =
  (* the files under examples/drills/ are the catalog in file form;
     drifting apart would make the README quickstart lie *)
  List.iter
    (fun b ->
      (* resolve relative to this executable (in _build/default/test),
         so the test works from `dune runtest` and `dune exec` alike *)
      let path =
        Filename.concat
          (Filename.dirname Sys.executable_name)
          (Filename.concat ".."
             (Filename.concat "examples"
                (Filename.concat "drills" (b.Drillbook.name ^ ".drill"))))
      in
      match Drillbook.load path with
      | Ok b' ->
          check Alcotest.bool
            (b.Drillbook.name ^ ".drill matches the catalog")
            true (Drillbook.equal b b')
      | Error e -> Alcotest.failf "%s: %s" path e)
    Drillbook.catalog

let test_malformed_drill_files () =
  let expect_error s =
    match Drillbook.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parsed malformed input %S" s
  in
  expect_error "garbage";
  expect_error "(drill";
  expect_error "(drill (name x))";
  expect_error
    "(drill (name x) (seed 1) (kind (no-such-kind)) (slo (detection 1) \
     (reconverge 8) (blackhole 4) (stale 0.5) (hijacked 0)))";
  (* out-of-range field values fail the builder's validation, not
     silently produce a drill *)
  expect_error
    "(drill (name x) (seed 1) (ticks 5) (fault (at 3) (until 9)) (kind \
     (depeer (stub-rank 0))) (slo (detection 1) (reconverge 8) (blackhole 4) \
     (stale 0.5) (hijacked 0)))"

(* --- drill replay --------------------------------------------------- *)

let runs =
  List.map
    (fun b -> (b, lazy (Drill.complete ~params:small_params b)))
    Drillbook.catalog

let run_of name =
  match
    List.find_opt (fun (b, _) -> String.equal b.Drillbook.name name) runs
  with
  | Some (b, r) -> (b, Lazy.force r)
  | None -> Alcotest.failf "no catalog drill %s" name

let test_replay_is_deterministic () =
  (* the whole point of a drillbook: same book, same seed, same bytes *)
  List.iter
    (fun (b, r) ->
      let again = Drill.complete ~params:small_params b in
      check Alcotest.string
        (b.Drillbook.name ^ " transcript replays byte-identical")
        (Drill.transcript (Lazy.force r))
        (Drill.transcript again))
    runs

let test_rows_shape () =
  List.iter
    (fun (b, r) ->
      let rows = Drill.rows (Lazy.force r) in
      check Alcotest.int
        (b.Drillbook.name ^ " has one row per tick")
        b.Drillbook.ticks (List.length rows);
      List.iter
        (fun (row : Drill.tick_row) ->
          check (Alcotest.float 1e-9)
            (Printf.sprintf "%s tick %d fractions sum to 1"
               b.Drillbook.name row.Drill.tick)
            1.0
            (row.Drill.ok +. row.Drill.stale +. row.Drill.hijacked
           +. row.Drill.lost +. row.Drill.looped))
        rows)
    runs

let phase_rank = function
  | "steady" -> 0
  | "fault" -> 1
  | "healing" -> 2
  | "recovered" -> 3
  | p -> Alcotest.failf "unknown phase %S" p

let test_phases_monotone () =
  List.iter
    (fun (b, r) ->
      let rec mono = function
        | (a : Drill.tick_row) :: (b' :: _ as rest) ->
            phase_rank a.Drill.phase <= phase_rank b'.Drill.phase
            && mono rest
        | _ -> true
      in
      check Alcotest.bool
        (b.Drillbook.name ^ " phases never move backwards")
        true
        (mono (Drill.rows (Lazy.force r))))
    runs

let test_every_drill_detects () =
  List.iter
    (fun (b, r) ->
      match Drill.detected_at (Lazy.force r) with
      | Some t ->
          check Alcotest.bool
            (b.Drillbook.name ^ " detects after onset")
            true
            (t >= b.Drillbook.fault_at)
      | None -> Alcotest.failf "%s: never detected" b.Drillbook.name)
    runs

let test_catalog_slos_hold () =
  (* the headline robustness claim: every catalog drill recovers
     within its declared budgets *)
  List.iter
    (fun (b, r) ->
      let v = Slo.evaluate (Lazy.force r) in
      if not v.Slo.pass then
        Alcotest.failf "%s misses its SLOs:\n%s" b.Drillbook.name
          (String.concat "\n" v.Slo.failures))
    runs

let test_no_recovery_is_graded_worse_or_equal () =
  (* switching the playbook off can never improve the blackhole
     accounting — the operator's actions must matter non-negatively *)
  let b = Drillbook.provider_depeer in
  let hands_off = { b with Drillbook.recovery = false } in
  let with_pb = Slo.measure (snd (run_of b.Drillbook.name)) in
  let without = Slo.measure (Drill.complete ~params:small_params hands_off) in
  check Alcotest.bool "recovery does not add blackhole seconds" true
    (with_pb.Slo.blackhole_s <= without.Slo.blackhole_s +. 1e-9)

(* --- looking glass -------------------------------------------------- *)

let test_glass_parse () =
  let ok words =
    match Glass.parse words with
    | Ok q -> q
    | Error e -> Alcotest.failf "parse %s: %s" (String.concat " " words) e
  in
  (match ok [ "route"; "3"; "240.0.8.9" ] with
  | Glass.Route { domain = 3; _ } -> ()
  | _ -> Alcotest.fail "route query shape");
  (match ok [ "health" ] with
  | Glass.Health -> ()
  | _ -> Alcotest.fail "health query shape");
  let err words =
    match Glass.parse words with
    | Error e -> e
    | Ok _ -> Alcotest.failf "parsed %s" (String.concat " " words)
  in
  check Alcotest.bool "empty input points at the query list" true
    (String.length (err []) > 0);
  check Alcotest.bool "bad integer is named" true
    (String.length (err [ "rib"; "many" ]) > 0)

let glass_queries =
  [ "health"; "tunnels"; "rib 0"; "sessions 0"; "fib 0"; "route 0 240.0.8.9" ]

let test_glass_output_stable () =
  (* the stability contract (DESIGN.md section 12.3): fixed book,
     params and time means byte-identical answers — across repeated
     renders and across independently prepared runs *)
  let b = Drillbook.prefix_hijack in
  let mid r =
    Drill.run_until r ~time:5.5;
    List.map
      (fun q ->
        match Glass.parse (String.split_on_char ' ' q) with
        | Ok query -> Glass.render r query
        | Error e -> Alcotest.failf "parse %s: %s" q e)
      glass_queries
  in
  let first = mid (Drill.prepare ~params:small_params b) in
  let second = mid (Drill.prepare ~params:small_params b) in
  List.iter2
    (fun a b' -> check Alcotest.string "stable across runs" a b')
    first second

let test_glass_out_of_range () =
  let _, r = run_of "regional-blackout" in
  let out = Glass.render r (Glass.Rib { domain = 999 }) in
  check Alcotest.bool "out-of-range domain is a one-line error" true
    (String.length out > 0
    && not (String.contains out '\n')
    && String.length out >= 5);
  let out = Glass.render r (Glass.Fib_table { router = -1 }) in
  check Alcotest.bool "out-of-range router is a one-line error" true
    (not (String.contains out '\n'))

let () =
  Alcotest.run "ops"
    [
      ( "drillbook",
        [
          Alcotest.test_case "slo validation" `Quick test_slo_validation;
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "with_intensity" `Quick test_with_intensity;
          Alcotest.test_case "sexp round-trip" `Quick test_sexp_roundtrip;
          Alcotest.test_case "example files match catalog" `Quick
            test_example_files_match_catalog;
          Alcotest.test_case "malformed files rejected" `Quick
            test_malformed_drill_files;
        ] );
      ( "drill",
        [
          Alcotest.test_case "replay is deterministic" `Slow
            test_replay_is_deterministic;
          Alcotest.test_case "rows shape" `Slow test_rows_shape;
          Alcotest.test_case "phases monotone" `Slow test_phases_monotone;
          Alcotest.test_case "every drill detects" `Slow
            test_every_drill_detects;
          Alcotest.test_case "catalog SLOs hold" `Slow test_catalog_slos_hold;
          Alcotest.test_case "recovery never hurts" `Slow
            test_no_recovery_is_graded_worse_or_equal;
        ] );
      ( "glass",
        [
          Alcotest.test_case "parse" `Quick test_glass_parse;
          Alcotest.test_case "output stable" `Slow test_glass_output_stable;
          Alcotest.test_case "out of range" `Slow test_glass_out_of_range;
        ] );
    ]
