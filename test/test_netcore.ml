(* Unit and property tests for the addressing/packet substrate. *)

module Ipv4 = Netcore.Ipv4
module Prefix = Netcore.Prefix
module Lpm = Netcore.Lpm
module Ipvn = Netcore.Ipvn
module Packet = Netcore.Packet
module Addressing = Netcore.Addressing

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Ipv4                                                                *)

let test_ipv4_string_roundtrip () =
  List.iter
    (fun s -> check Alcotest.string "roundtrip" s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "10.0.3.1"; "255.255.255.255"; "192.168.1.254"; "1.2.3.4" ]

let test_ipv4_of_string_rejects () =
  List.iter
    (fun s ->
      check Alcotest.bool s true (Option.is_none (Ipv4.of_string_opt s)))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "-1.0.0.0"; "a.b.c.d"; "1..2.3" ]

let test_ipv4_octets () =
  check Alcotest.string "octets" "10.20.30.40"
    (Ipv4.to_string (Ipv4.of_octets 10 20 30 40));
  Alcotest.check_raises "octet range" (Invalid_argument "Ipv4.of_octets: octet out of range")
    (fun () -> ignore (Ipv4.of_octets 256 0 0 0))

let test_ipv4_bits () =
  let a = Ipv4.of_string "128.0.0.1" in
  check Alcotest.bool "msb" true (Ipv4.bit a 0);
  check Alcotest.bool "lsb" true (Ipv4.bit a 31);
  check Alcotest.bool "middle" false (Ipv4.bit a 15)

let test_ipv4_arith () =
  check Alcotest.string "succ" "0.0.1.0"
    (Ipv4.to_string (Ipv4.succ (Ipv4.of_string "0.0.0.255")));
  check Alcotest.string "wrap" "0.0.0.0" (Ipv4.to_string (Ipv4.succ Ipv4.broadcast));
  check Alcotest.string "add" "0.0.4.0"
    (Ipv4.to_string (Ipv4.add (Ipv4.of_string "0.0.0.0") 1024))

let prop_ipv4_int_roundtrip =
  QCheck.Test.make ~name:"ipv4 int roundtrip" ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun i -> Ipv4.to_int (Ipv4.of_int i) = i)

(* ------------------------------------------------------------------ *)
(* Prefix                                                              *)

let test_prefix_canonical () =
  let p = Prefix.make (Ipv4.of_string "10.1.2.3") 16 in
  check Alcotest.string "canonical" "10.1.0.0/16" (Prefix.to_string p)

let test_prefix_mem () =
  let p = Prefix.of_string "10.1.0.0/16" in
  check Alcotest.bool "inside" true (Prefix.mem (Ipv4.of_string "10.1.255.255") p);
  check Alcotest.bool "outside" false (Prefix.mem (Ipv4.of_string "10.2.0.0") p);
  check Alcotest.bool "zero-length matches all" true
    (Prefix.mem (Ipv4.of_string "200.1.2.3") (Prefix.of_string "0.0.0.0/0"))

let test_prefix_subsumes () =
  let outer = Prefix.of_string "10.0.0.0/8" in
  let inner = Prefix.of_string "10.1.0.0/16" in
  check Alcotest.bool "subsumes" true (Prefix.subsumes outer inner);
  check Alcotest.bool "not reverse" false (Prefix.subsumes inner outer);
  check Alcotest.bool "self" true (Prefix.subsumes outer outer)

let test_prefix_split () =
  let lo, hi = Prefix.split (Prefix.of_string "10.0.0.0/8") in
  check Alcotest.string "lo" "10.0.0.0/9" (Prefix.to_string lo);
  check Alcotest.string "hi" "10.128.0.0/9" (Prefix.to_string hi);
  Alcotest.check_raises "no split /32"
    (Invalid_argument "Prefix.split: /32 cannot be split") (fun () ->
      ignore (Prefix.split (Prefix.of_string "1.2.3.4/32")))

let test_prefix_host () =
  let p = Prefix.of_string "10.1.0.0/24" in
  check Alcotest.string "host 5" "10.1.0.5" (Ipv4.to_string (Prefix.host p 5));
  Alcotest.check_raises "host range"
    (Invalid_argument "Prefix.host: index out of range") (fun () ->
      ignore (Prefix.host p 256))

let test_prefix_routability () =
  check Alcotest.bool "/22 routable" true
    (Prefix.is_globally_routable (Prefix.of_string "10.0.0.0/22"));
  check Alcotest.bool "/24 not" false
    (Prefix.is_globally_routable (Prefix.of_string "10.0.0.0/24"))

let prop_prefix_split_partition =
  QCheck.Test.make ~name:"split partitions membership" ~count:300
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 30))
    (fun (v, len) ->
      let p = Prefix.make (Ipv4.of_int (v * 251)) len in
      let lo, hi = Prefix.split p in
      let probe = Prefix.host p (v mod Prefix.size p) in
      Prefix.mem probe p
      && Bool.not (Prefix.mem probe lo && Prefix.mem probe hi)
      && (Prefix.mem probe lo || Prefix.mem probe hi))

(* ------------------------------------------------------------------ *)
(* Lpm                                                                 *)

let naive_lookup addr table =
  (* reference: linear scan for the longest matching prefix *)
  List.fold_left
    (fun acc (p, v) ->
      if Prefix.mem addr p then
        match acc with
        | Some (bp, _) when Prefix.length bp >= Prefix.length p -> acc
        | _ -> Some (p, v)
      else acc)
    None table

let arbitrary_table =
  let gen =
    QCheck.Gen.(
      list_size (int_bound 40) (pair (int_bound 0xFFFF) (int_bound 32))
      >|= List.mapi (fun i (v, len) ->
              (Prefix.make (Ipv4.of_int (v * 65521)) len, i)))
  in
  QCheck.make gen

let prop_lpm_matches_naive =
  QCheck.Test.make ~name:"lpm lookup = naive scan" ~count:300
    QCheck.(pair arbitrary_table (int_bound 0xFFFFFF))
    (fun (table, probe) ->
      (* de-duplicate prefixes: Lpm.add replaces, the naive scan must
         see the same final binding per prefix *)
      let dedup =
        List.fold_left
          (fun acc (p, v) -> (p, v) :: List.remove_assoc p acc)
          [] table
      in
      let t = Lpm.of_list (List.rev dedup) in
      let addr = Ipv4.of_int (probe * 12347) in
      Lpm.lookup addr t = naive_lookup addr dedup)

let prop_lpm_remove =
  QCheck.Test.make ~name:"remove erases exactly one binding" ~count:200
    arbitrary_table (fun table ->
      match table with
      | [] -> true
      | (victim, _) :: _ ->
          let t = Lpm.of_list table in
          let t' = Lpm.remove victim t in
          Lpm.find_exact victim t' = None
          && List.for_all
               (fun (p, _) ->
                 Prefix.equal p victim
                 || Lpm.find_exact p t' = Lpm.find_exact p t)
               table)

(* Random interleaved add/remove/lookup sequences, checked op by op
   against a naive assoc-list model — exercises trie restructuring
   paths (branch collapse on remove, re-split on add) that the
   single-shot of_list properties above never reach. *)

type lpm_op = Op_add of Prefix.t * int | Op_remove of Prefix.t | Op_probe of Ipv4.t

let arbitrary_op_sequence =
  let gen_prefix =
    QCheck.Gen.(
      pair (int_bound 0xFFFF) (int_bound 32)
      >|= fun (v, len) -> Prefix.make (Ipv4.of_int (v * 65521)) len)
  in
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (3, map2 (fun p v -> Op_add (p, v)) gen_prefix (int_bound 1000));
          (1, map (fun p -> Op_remove p) gen_prefix);
          (2, map (fun n -> Op_probe (Ipv4.of_int (n * 12347))) (int_bound 0xFFFFFF));
        ])
  in
  QCheck.make QCheck.Gen.(list_size (int_bound 60) gen_op)

let prop_lpm_sequence =
  QCheck.Test.make ~name:"add/remove/lookup sequence = naive model" ~count:200
    arbitrary_op_sequence (fun ops ->
      let step (t, model, ok) op =
        if not ok then (t, model, false)
        else
          match op with
          | Op_add (p, v) -> (Lpm.add p v t, (p, v) :: List.remove_assoc p model, ok)
          | Op_remove p -> (Lpm.remove p t, List.remove_assoc p model, ok)
          | Op_probe addr -> (t, model, Lpm.lookup addr t = naive_lookup addr model)
      in
      let t, model, ok = List.fold_left step (Lpm.empty, [], true) ops in
      ok
      && Lpm.cardinal t = List.length model
      && List.for_all (fun (p, v) -> Lpm.find_exact p t = Some v) model)

let test_lpm_longest_wins () =
  let t =
    Lpm.of_list
      [
        (Prefix.of_string "10.0.0.0/8", "short");
        (Prefix.of_string "10.1.0.0/16", "mid");
        (Prefix.of_string "10.1.2.0/24", "long");
      ]
  in
  let lookup s = Option.map snd (Lpm.lookup (Ipv4.of_string s) t) in
  check Alcotest.(option string) "deep" (Some "long") (lookup "10.1.2.9");
  check Alcotest.(option string) "mid" (Some "mid") (lookup "10.1.9.9");
  check Alcotest.(option string) "short" (Some "short") (lookup "10.9.9.9");
  check Alcotest.(option string) "miss" None (lookup "11.0.0.1")

let test_lpm_cardinal_bindings () =
  let t =
    Lpm.of_list
      [
        (Prefix.of_string "10.0.0.0/8", 1);
        (Prefix.of_string "10.0.0.0/8", 2);
        (Prefix.of_string "20.0.0.0/8", 3);
      ]
  in
  check Alcotest.int "replace keeps cardinal" 2 (Lpm.cardinal t);
  check Alcotest.(option int) "replaced" (Some 2)
    (Lpm.find_exact (Prefix.of_string "10.0.0.0/8") t);
  check Alcotest.int "bindings sorted" 2 (List.length (Lpm.bindings t))

let test_lpm_union () =
  let a = Lpm.of_list [ (Prefix.of_string "10.0.0.0/8", 1) ] in
  let b =
    Lpm.of_list
      [ (Prefix.of_string "10.0.0.0/8", 10); (Prefix.of_string "30.0.0.0/8", 3) ]
  in
  let u = Lpm.union (fun _ x y -> x + y) a b in
  check Alcotest.(option int) "merged" (Some 11)
    (Lpm.find_exact (Prefix.of_string "10.0.0.0/8") u);
  check Alcotest.(option int) "kept" (Some 3)
    (Lpm.find_exact (Prefix.of_string "30.0.0.0/8") u)

let test_lpm_fold_reconstructs_prefixes () =
  let ps =
    [
      Prefix.of_string "128.0.0.0/1";
      Prefix.of_string "10.1.2.0/24";
      Prefix.of_string "0.0.0.0/0";
      Prefix.of_string "1.2.3.4/32";
    ]
  in
  let t = Lpm.of_list (List.map (fun p -> (p, ())) ps) in
  let got = List.map fst (Lpm.bindings t) in
  check Alcotest.int "all found" (List.length ps) (List.length got);
  List.iter
    (fun p ->
      check Alcotest.bool (Prefix.to_string p) true
        (List.exists (Prefix.equal p) got))
    ps

(* ------------------------------------------------------------------ *)
(* Ipvn                                                                *)

let test_ipvn_self_roundtrip () =
  let a = Ipv4.of_string "171.205.239.1" in
  let v = Ipvn.self_of_ipv4 ~version:8 a in
  check Alcotest.bool "is self" true (Ipvn.is_self v);
  check Alcotest.int "version" 8 (Ipvn.version v);
  check Alcotest.(option string) "embedded" (Some "171.205.239.1")
    (Option.map Ipv4.to_string (Ipvn.embedded_ipv4 v));
  check Alcotest.bool "no domain" true (Ipvn.domain v = None)

let test_ipvn_provider () =
  let v = Ipvn.provider ~version:9 ~domain:42 ~host:1234 in
  check Alcotest.bool "not self" false (Ipvn.is_self v);
  check Alcotest.(option int) "domain" (Some 42) (Ipvn.domain v);
  check Alcotest.(option int) "host" (Some 1234) (Ipvn.host v);
  check Alcotest.bool "no embedded v4" true (Ipvn.embedded_ipv4 v = None)

let test_ipvn_validation () =
  Alcotest.check_raises "version 0" (Invalid_argument "Ipvn: version out of range [1, 255]")
    (fun () -> ignore (Ipvn.self_of_ipv4 ~version:0 Ipv4.any));
  Alcotest.check_raises "domain range"
    (Invalid_argument "Ipvn.provider: domain out of range") (fun () ->
      ignore (Ipvn.provider ~version:8 ~domain:(1 lsl 20) ~host:0))

let prop_ipvn_self_injective =
  QCheck.Test.make ~name:"self-addresses injective" ~count:300
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 0xFFFFFF))
    (fun (a, b) ->
      let va = Ipvn.self_of_ipv4 ~version:8 (Ipv4.of_int a) in
      let vb = Ipvn.self_of_ipv4 ~version:8 (Ipv4.of_int b) in
      Ipvn.equal va vb = (a = b))

let prop_ipvn_provider_roundtrip =
  QCheck.Test.make ~name:"provider fields roundtrip" ~count:300
    QCheck.(pair (int_bound ((1 lsl 20) - 1)) (int_bound 1000000))
    (fun (d, h) ->
      let v = Ipvn.provider ~version:5 ~domain:d ~host:h in
      Ipvn.domain v = Some d && Ipvn.host v = Some h)

(* ------------------------------------------------------------------ *)
(* Packet                                                              *)

let sample_vn () =
  Packet.make_vn ~version:8
    ~vsrc:(Ipvn.self_of_ipv4 ~version:8 (Ipv4.of_string "1.2.3.4"))
    ~vdst:(Ipvn.provider ~version:8 ~domain:3 ~host:7)
    "payload"

let test_packet_encap_roundtrip () =
  let vn = sample_vn () in
  let p = Packet.encapsulate ~src:(Ipv4.of_string "5.6.7.8") ~dst:Ipv4.broadcast vn in
  match Packet.decapsulate p with
  | Some vn' ->
      check Alcotest.bool "same inner" true (vn' = vn);
      check Alcotest.bool "data has no inner" true
        (Packet.decapsulate (Packet.make_data ~src:Ipv4.any ~dst:Ipv4.any "x") = None)
  | None -> Alcotest.fail "decapsulate returned None"

let test_packet_version_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Packet.make_vn: source address version mismatch")
    (fun () ->
      ignore
        (Packet.make_vn ~version:9
           ~vsrc:(Ipvn.self_of_ipv4 ~version:8 Ipv4.any)
           ~vdst:(Ipvn.provider ~version:9 ~domain:0 ~host:0)
           "x"))

let test_packet_ttl () =
  let p = Packet.make_data ~src:Ipv4.any ~dst:Ipv4.any "x" in
  check Alcotest.int "default ttl" Packet.default_ttl p.Packet.ttl;
  let rec drain p n =
    match Packet.decrement_ttl p with Some p' -> drain p' (n + 1) | None -> n
  in
  check Alcotest.int "exhausts after ttl-1 hops" (Packet.default_ttl - 1) (drain p 0)

let test_packet_dest_ipv4 () =
  let vn = sample_vn () in
  (* destination is provider-addressed and no hint: unrecoverable *)
  check Alcotest.bool "no hint" true (Packet.dest_ipv4 vn = None);
  let hinted =
    Packet.make_vn ~version:8 ~vsrc:vn.Packet.vsrc ~vdst:vn.Packet.vdst
      ~dest_v4_hint:(Ipv4.of_string "9.9.9.9") "x"
  in
  check Alcotest.(option string) "hint wins" (Some "9.9.9.9")
    (Option.map Ipv4.to_string (Packet.dest_ipv4 hinted));
  let self_dst =
    Packet.make_vn ~version:8 ~vsrc:vn.Packet.vsrc
      ~vdst:(Ipvn.self_of_ipv4 ~version:8 (Ipv4.of_string "8.8.8.8"))
      "x"
  in
  check Alcotest.(option string) "embedded fallback" (Some "8.8.8.8")
    (Option.map Ipv4.to_string (Packet.dest_ipv4 self_dst))

(* ------------------------------------------------------------------ *)
(* Wire                                                                *)

module Wire = Netcore.Wire

let arbitrary_packet =
  let open QCheck.Gen in
  let addr = map Ipv4.of_int (int_bound 0xFFFFFF) in
  let ipvn version =
    oneof
      [
        map (fun a -> Ipvn.self_of_ipv4 ~version (Ipv4.of_int a)) (int_bound 0xFFFFFF);
        map2
          (fun d h -> Ipvn.provider ~version ~domain:d ~host:h)
          (int_bound ((1 lsl 20) - 1))
          (int_bound 1000000);
      ]
  in
  let gen =
    let* src = addr in
    let* dst = addr in
    let* ttl = int_range 1 255 in
    let* body = string_size ~gen:printable (int_bound 200) in
    let* is_encap = bool in
    if not is_encap then
      return { Packet.src; dst; ttl; payload = Packet.Data body }
    else
      let* version = int_range 1 255 in
      let* vttl = int_range 1 255 in
      let* vsrc = ipvn version in
      let* vdst = ipvn version in
      let* hint = opt addr in
      return
        {
          Packet.src;
          dst;
          ttl;
          payload =
            Packet.Encap
              { Packet.version; vsrc; vdst; vttl; dest_v4_hint = hint; body };
        }
  in
  QCheck.make gen

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire encode/decode roundtrip" ~count:500
    arbitrary_packet (fun p -> Wire.decode (Wire.encode p) = Ok p)

let prop_wire_length =
  QCheck.Test.make ~name:"wire_length = encoded length" ~count:300
    arbitrary_packet (fun p -> Wire.wire_length p = String.length (Wire.encode p))

let prop_wire_rejects_truncation =
  QCheck.Test.make ~name:"every strict prefix is rejected" ~count:60
    arbitrary_packet (fun p ->
      let s = Wire.encode p in
      List.for_all
        (fun n -> Result.is_error (Wire.decode (String.sub s 0 n)))
        (List.init (String.length s) Fun.id))

let prop_wire_decode_total =
  QCheck.Test.make ~name:"decode never raises on arbitrary bytes" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_bound 80))
    (fun s ->
      match Wire.decode s with Ok _ -> true | Error _ -> true)

let test_wire_malformed () =
  let sample =
    Wire.encode (Packet.make_data ~src:Ipv4.any ~dst:Ipv4.broadcast "hello")
  in
  (* unsupported version byte *)
  let bad_version = "\x07" ^ String.sub sample 1 (String.length sample - 1) in
  check Alcotest.bool "bad format version" true (Result.is_error (Wire.decode bad_version));
  (* unknown payload kind *)
  let bad_kind =
    String.sub sample 0 1 ^ "\x09" ^ String.sub sample 2 (String.length sample - 2)
  in
  check Alcotest.bool "bad payload kind" true (Result.is_error (Wire.decode bad_kind));
  (* trailing garbage *)
  check Alcotest.bool "trailing bytes" true (Result.is_error (Wire.decode (sample ^ "x")));
  check Alcotest.bool "empty input" true (Result.is_error (Wire.decode ""))

let test_wire_rejects_oversized_body () =
  let big = String.make 70000 'a' in
  Alcotest.check_raises "oversized body"
    (Invalid_argument "Wire.encode: body exceeds 65535 bytes") (fun () ->
      ignore (Wire.encode (Packet.make_data ~src:Ipv4.any ~dst:Ipv4.any big)))

(* ------------------------------------------------------------------ *)
(* Addressing                                                          *)

let test_addressing_plan () =
  let p = Addressing.domain_prefix 0 in
  check Alcotest.int "/16" 16 (Prefix.length p);
  let r = Addressing.router_address ~domain:3 ~index:0 in
  check Alcotest.(option int) "router owner" (Some 3) (Addressing.domain_of_address r);
  check Alcotest.bool "router range" true (Addressing.is_router_address r);
  check Alcotest.bool "not endhost" false (Addressing.is_endhost_address r);
  let h = Addressing.endhost_address ~domain:3 ~index:5 in
  check Alcotest.bool "endhost range" true (Addressing.is_endhost_address h);
  check Alcotest.(option int) "endhost owner" (Some 3) (Addressing.domain_of_address h)

let test_addressing_anycast_ranges () =
  let g = Addressing.anycast_global ~group:8 in
  check Alcotest.bool "option1 outside domains" true
    (Addressing.domain_of_address (Prefix.network g) = None);
  check Alcotest.bool "option1 non-routable" false (Prefix.is_globally_routable g);
  let d = Addressing.anycast_in_domain ~domain:7 ~group:8 in
  check Alcotest.bool "option2 inside its domain" true
    (Prefix.subsumes (Addressing.domain_prefix 7) d);
  check Alcotest.(option int) "option2 owner" (Some 7)
    (Addressing.domain_of_address (Addressing.anycast_address d));
  (* the anycast /24 must not collide with router or endhost space *)
  check Alcotest.bool "no router collision" false
    (Addressing.is_router_address (Addressing.anycast_address d));
  check Alcotest.bool "no endhost collision" false
    (Addressing.is_endhost_address (Addressing.anycast_address d))

let prop_addressing_no_collisions =
  QCheck.Test.make ~name:"router/endhost addresses never collide" ~count:300
    QCheck.(pair (pair (int_bound 100) (int_bound 1000)) (pair (int_bound 100) (int_bound 1000)))
    (fun ((d1, i1), (d2, i2)) ->
      let r = Addressing.router_address ~domain:d1 ~index:i1 in
      let h = Addressing.endhost_address ~domain:d2 ~index:i2 in
      not (Ipv4.equal r h))

let () =
  Alcotest.run "netcore"
    [
      ( "ipv4",
        [
          Alcotest.test_case "string roundtrip" `Quick test_ipv4_string_roundtrip;
          Alcotest.test_case "of_string rejects" `Quick test_ipv4_of_string_rejects;
          Alcotest.test_case "octets" `Quick test_ipv4_octets;
          Alcotest.test_case "bits" `Quick test_ipv4_bits;
          Alcotest.test_case "arithmetic" `Quick test_ipv4_arith;
          qcheck prop_ipv4_int_roundtrip;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "canonical form" `Quick test_prefix_canonical;
          Alcotest.test_case "membership" `Quick test_prefix_mem;
          Alcotest.test_case "subsumption" `Quick test_prefix_subsumes;
          Alcotest.test_case "split" `Quick test_prefix_split;
          Alcotest.test_case "host" `Quick test_prefix_host;
          Alcotest.test_case "routability limit" `Quick test_prefix_routability;
          qcheck prop_prefix_split_partition;
        ] );
      ( "lpm",
        [
          Alcotest.test_case "longest match wins" `Quick test_lpm_longest_wins;
          Alcotest.test_case "cardinal and replace" `Quick test_lpm_cardinal_bindings;
          Alcotest.test_case "union" `Quick test_lpm_union;
          Alcotest.test_case "fold reconstructs prefixes" `Quick
            test_lpm_fold_reconstructs_prefixes;
          qcheck prop_lpm_matches_naive;
          qcheck prop_lpm_remove;
          qcheck prop_lpm_sequence;
        ] );
      ( "ipvn",
        [
          Alcotest.test_case "self roundtrip" `Quick test_ipvn_self_roundtrip;
          Alcotest.test_case "provider fields" `Quick test_ipvn_provider;
          Alcotest.test_case "validation" `Quick test_ipvn_validation;
          qcheck prop_ipvn_self_injective;
          qcheck prop_ipvn_provider_roundtrip;
        ] );
      ( "packet",
        [
          Alcotest.test_case "encap roundtrip" `Quick test_packet_encap_roundtrip;
          Alcotest.test_case "version mismatch" `Quick test_packet_version_mismatch;
          Alcotest.test_case "ttl" `Quick test_packet_ttl;
          Alcotest.test_case "dest ipv4 recovery" `Quick test_packet_dest_ipv4;
        ] );
      ( "wire",
        [
          qcheck prop_wire_roundtrip;
          qcheck prop_wire_length;
          qcheck prop_wire_rejects_truncation;
          qcheck prop_wire_decode_total;
          Alcotest.test_case "malformed inputs" `Quick test_wire_malformed;
          Alcotest.test_case "oversized body" `Quick test_wire_rejects_oversized_body;
        ] );
      ( "addressing",
        [
          Alcotest.test_case "plan" `Quick test_addressing_plan;
          Alcotest.test_case "anycast ranges" `Quick test_addressing_anycast_ranges;
          qcheck prop_addressing_no_collisions;
        ] );
    ]
