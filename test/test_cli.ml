(* The CLI contract for bad input: unknown experiments / figures and
   malformed flags must exit 2 with a usage hint on stderr — never a
   backtrace, never a silent success. Runs the real binary (see
   test/dune for the dependency). *)

(* resolve relative to this test executable (both live in _build), so
   the test works from `dune runtest` and `dune exec` alike *)
let binary =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "evolvenet.exe"))

(* run the binary with [args], capturing (exit code, stderr) *)
let run args =
  let err = Filename.temp_file "evolvenet_cli" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s 2> %s" (Filename.quote binary) args
         (Filename.quote err))
  in
  let ic = open_in err in
  let msg = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove err;
  (code, msg)

(* run the binary with [args], capturing (exit code, stdout) *)
let run_out args =
  let out = Filename.temp_file "evolvenet_cli" ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s > %s 2> /dev/null" (Filename.quote binary) args
         (Filename.quote out))
  in
  let ic = open_in out in
  let msg = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, msg)

let contains haystack needle =
  let h = String.lowercase_ascii haystack
  and n = String.lowercase_ascii needle in
  let hl = String.length h and nl = String.length n in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub h i nl) n || go (i + 1))
  in
  go 0

let check = Alcotest.check

let test_unknown_experiment () =
  let code, msg = run "exp e999" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "names the experiment" true (contains msg "e999");
  check Alcotest.bool "points at usage" true (contains msg "usage");
  check Alcotest.bool "suggests the index" true (contains msg "exp list")

let test_exp_list () =
  (* `exp list` is the discoverable index: every experiment id with a
     one-line description, exit 0 *)
  let code, out = run_out "exp list" in
  check Alcotest.int "exit code" 0 code;
  List.iter
    (fun e ->
      check Alcotest.bool (e ^ " listed") true (contains out (e ^ " ")))
    [ "e1"; "e33"; "e34"; "e35" ];
  check Alcotest.bool "describes the drill sweep" true (contains out "drill")

let test_unknown_figure () =
  let code, msg = run "fig 99" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "points at usage" true (contains msg "usage")

let test_malformed_flag_value () =
  (* cmdliner rejects the unparsable option value; main remaps its
     cli_error exit to 2 so scripts see one consistent failure code *)
  let code, msg = run "exp e1 --seed notanint" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "stderr not empty" true (String.length msg > 0)

let test_unknown_flag () =
  let code, _ = run "exp e1 --no-such-flag" in
  check Alcotest.int "exit code" 2 code

let test_help_exits_zero () =
  let code, _ = run "--help > /dev/null" in
  check Alcotest.int "exit code" 0 code

(* --- drill and glass subcommands ------------------------------------ *)

let test_drill_unknown_name () =
  let code, msg = run "drill --name no-such-drill" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "names the drill" true (contains msg "no-such-drill");
  check Alcotest.bool "lists the catalog" true (contains msg "regional-blackout")

let test_drill_requires_a_book () =
  let code, msg = run "drill" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "stderr not empty" true (String.length msg > 0)

let test_glass_bad_query () =
  let code, msg = run "glass --name regional-blackout no-such-query" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "stderr not empty" true (String.length msg > 0)

let drill_file =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".."
       (Filename.concat "examples"
          (Filename.concat "drills" "prefix-hijack.drill")))

let test_drill_from_file_end_to_end () =
  (* the file loader is the operator-facing path: run a whole drill
     from an examples/ book, SLO verdict green, exit 0 *)
  let code, out = run_out (Printf.sprintf "drill --file %s" (Filename.quote drill_file)) in
  check Alcotest.int "exit code" 0 code;
  check Alcotest.bool "prints the verdict" true (contains out "pass");
  check Alcotest.bool "prints the transcript" true (contains out "hijack")

(* --- the evolvelint binary honours the same contract ---------------- *)

let lint_binary =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".."
       (Filename.concat "tools" (Filename.concat "lint" "main.exe")))

let run_lint args =
  let err = Filename.temp_file "evolvelint_cli" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s 2> %s" (Filename.quote lint_binary) args
         (Filename.quote err))
  in
  let ic = open_in err in
  let msg = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove err;
  (code, msg)

let test_lint_explain_unknown_rule () =
  let code, msg = run_lint "--explain no-such-rule" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "names the rule" true (contains msg "no-such-rule");
  check Alcotest.bool "lists the known rules" true (contains msg "layering");
  check Alcotest.bool "points at usage" true (contains msg "usage")

let test_lint_explain_known_rule () =
  let code, msg = run_lint "--explain domain-unsafe-write > /dev/null" in
  check Alcotest.int "exit code" 0 code;
  check Alcotest.bool "stderr empty" true (String.length msg = 0)

let test_lint_summaries_rejects_sarif () =
  let code, msg = run_lint "--summaries --format sarif" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "points at usage" true (contains msg "usage")

let test_lint_unknown_format () =
  let code, msg = run_lint "--format yaml" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "points at usage" true (contains msg "usage")

(* --- bench --json emission: schema shape ---------------------------- *)

(* `bench/main.exe --json` is a CI artifact generator: it must exit 0
   and leave four well-shaped documents behind — every expected key
   present, every numeric value finite. Runs once from _build/default
   (where write_lint_json's root detection expects the tree) and all
   four schema tests read its output. *)

let abs p = if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p

let bench_dir = abs (Filename.concat (Filename.dirname Sys.executable_name) "..")

let bench_binary =
  Filename.concat bench_dir (Filename.concat "bench" "main.exe")

let bench_run =
  lazy
    (Sys.command
       (Printf.sprintf "cd %s && %s --json > /dev/null 2>&1"
          (Filename.quote bench_dir)
          (Filename.quote bench_binary)))

let read_bench name =
  check Alcotest.int "bench --json exits 0" 0 (Lazy.force bench_run);
  let path = Filename.concat bench_dir name in
  check Alcotest.bool (name ^ " written") true (Sys.file_exists path);
  let ic = open_in path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

(* extract the raw token after ["key":] up to the next ',' or '}' *)
let field body key =
  let pat = Printf.sprintf "\"%s\":" key in
  let pl = String.length pat and bl = String.length body in
  let rec find i =
    if i + pl > bl then None
    else if String.sub body i pl = pat then Some (i + pl)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < bl && (match body.[!stop] with ',' | '}' -> false | _ -> true)
      do
        incr stop
      done;
      Some (String.trim (String.sub body start (!stop - start)))

let check_schema name ~strings ~numbers =
  let body = read_bench name in
  check Alcotest.bool (name ^ " is one object") true
    (String.length (String.trim body) > 2
    && (String.trim body).[0] = '{'
    && (let t = String.trim body in
        t.[String.length t - 1] = '}'));
  List.iter
    (fun key ->
      match field body key with
      | None -> Alcotest.failf "%s: missing key %S" name key
      | Some v ->
          check Alcotest.bool
            (Printf.sprintf "%s: %S is a string" name key)
            true
            (String.length v >= 2 && v.[0] = '\"' && v.[String.length v - 1] = '\"'))
    strings;
  List.iter
    (fun key ->
      match field body key with
      | None -> Alcotest.failf "%s: missing key %S" name key
      | Some v -> (
          match float_of_string_opt v with
          | Some f when Float.is_finite f -> ()
          | Some _ -> Alcotest.failf "%s: %S is non-finite" name key
          | None -> Alcotest.failf "%s: %S is not numeric (%S)" name key v))
    numbers

let test_bench_dataplane_schema () =
  check_schema "BENCH_dataplane.json" ~strings:[ "topology" ]
    ~numbers:
      [
        "packets_per_sec";
        "cache_hit_rate";
        "ns_per_lookup_uncached";
        "ns_per_lookup_cached";
        "lookup_speedup";
        "ns_per_packet_uncached";
        "ns_per_packet_cached";
      ]

let test_bench_faults_schema () =
  check_schema "BENCH_faults.json" ~strings:[]
    ~numbers:
      [
        "ns_per_fault_send";
        "ls_loss";
        "ls_messages";
        "ls_acks";
        "ls_retransmits";
        "ls_flood_ms";
        "bgp_loss";
        "bgp_updates";
        "bgp_resets";
        "bgp_boot_ms";
      ]

let test_bench_lint_schema () =
  check_schema "BENCH_lint.json" ~strings:[]
    ~numbers:
      [
        "untyped_ms";
        "typed_ms";
        "fixpoint_ms";
        "bindings";
        "untyped_findings";
        "typed_findings_raw";
        "findings";
      ]

let test_bench_shard_schema () =
  check_schema "BENCH_shard.json" ~strings:[ "topology"; "mode" ]
    ~numbers:
      [
        "packets_per_batch";
        "baseline_pump_pps";
        "pps_domains_1";
        "pps_domains_2";
        "pps_domains_4";
        "pps_domains_8";
        "speedup_domains_4";
      ];
  (* the curve must be a real measurement, not zeros *)
  let body = read_bench "BENCH_shard.json" in
  List.iter
    (fun key ->
      match field body key with
      | Some v ->
          check Alcotest.bool
            (Printf.sprintf "%s positive" key)
            true
            (float_of_string v > 0.0)
      | None -> Alcotest.failf "missing key %S" key)
    [ "baseline_pump_pps"; "pps_domains_1"; "pps_domains_4" ]

let test_bench_drills_schema () =
  let body = read_bench "BENCH_drills.json" in
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ " present") true (contains body ("\"" ^ n ^ "\"")))
    [
      "regional-blackout";
      "provider-depeer";
      "prefix-hijack";
      "flapping-provider";
      "flash-crowd";
      "slow-consumer";
    ];
  (* the committed artifact doubles as a regression gate: every
     catalog drill must be green in it *)
  check Alcotest.bool "drills pass" true (contains body "\"pass\": true");
  check Alcotest.bool "no drill fails" false (contains body "\"pass\": false");
  check Alcotest.bool "has recovery trajectories" true
    (contains body "ok_trajectory");
  check Alcotest.bool "has blackhole trajectories" true
    (contains body "blackhole_cumulative_s");
  List.iter
    (fun key ->
      match field body key with
      | None -> Alcotest.failf "missing key %S" key
      | Some v -> (
          match float_of_string_opt v with
          | Some f when Float.is_finite f && f >= 0.0 -> ()
          | _ -> Alcotest.failf "%S is not a finite number (%S)" key v))
    [ "blackhole_s"; "stale_frac"; "hijacked_peak" ]

let test_bench_overload_schema () =
  let body = read_bench "BENCH_overload.json" in
  check_schema "BENCH_overload.json" ~strings:[]
    ~numbers:
      [
        "uncrashed_run_ms"; "crashed_run_ms"; "recovery_overhead_ms"; "restarts";
      ];
  check Alcotest.bool "has the goodput-vs-load curve" true
    (contains body "goodput_vs_load");
  check Alcotest.bool "has per-drill drop reasons" true
    (contains body "overload_drills");
  check Alcotest.bool "both overload drills present" true
    (contains body "flash-crowd" && contains body "slow-consumer");
  (* the supervised restart really happened, and it was cheap enough
     to measure rather than hang *)
  (match field body "restarts" with
  | Some v -> check Alcotest.bool "restarts fired" true (float_of_string v >= 1.0)
  | None -> Alcotest.failf "missing key \"restarts\"");
  (match field body "recovery_overhead_ms" with
  | Some v ->
      check Alcotest.bool "recovery overhead non-negative and finite" true
        (let f = float_of_string v in
         Float.is_finite f && f >= 0.0)
  | None -> Alcotest.failf "missing key \"recovery_overhead_ms\"");
  (* control never shed before data anywhere on the curve *)
  check Alcotest.bool "control rides the reserve" false
    (contains body "\"ctrl_ok\": 0.")

let () =
  Alcotest.run "cli"
    [
      ( "errors",
        [
          Alcotest.test_case "unknown experiment" `Quick
            test_unknown_experiment;
          Alcotest.test_case "unknown figure" `Quick test_unknown_figure;
          Alcotest.test_case "malformed flag value" `Quick
            test_malformed_flag_value;
          Alcotest.test_case "unknown flag" `Quick test_unknown_flag;
          Alcotest.test_case "help exits 0" `Quick test_help_exits_zero;
          Alcotest.test_case "exp list" `Quick test_exp_list;
        ] );
      ( "drill",
        [
          Alcotest.test_case "unknown name exits 2" `Quick
            test_drill_unknown_name;
          Alcotest.test_case "requires a book" `Quick test_drill_requires_a_book;
          Alcotest.test_case "glass bad query exits 2" `Quick
            test_glass_bad_query;
          Alcotest.test_case "file loader end to end" `Slow
            test_drill_from_file_end_to_end;
        ] );
      ( "lint",
        [
          Alcotest.test_case "explain unknown rule exits 2" `Quick
            test_lint_explain_unknown_rule;
          Alcotest.test_case "explain known rule exits 0" `Quick
            test_lint_explain_known_rule;
          Alcotest.test_case "--summaries rejects sarif" `Quick
            test_lint_summaries_rejects_sarif;
          Alcotest.test_case "unknown format exits 2" `Quick
            test_lint_unknown_format;
        ] );
      ( "bench-json",
        [
          Alcotest.test_case "BENCH_dataplane schema" `Slow
            test_bench_dataplane_schema;
          Alcotest.test_case "BENCH_faults schema" `Slow
            test_bench_faults_schema;
          Alcotest.test_case "BENCH_lint schema" `Slow test_bench_lint_schema;
          Alcotest.test_case "BENCH_shard schema" `Slow
            test_bench_shard_schema;
          Alcotest.test_case "BENCH_drills schema" `Slow
            test_bench_drills_schema;
          Alcotest.test_case "BENCH_overload schema" `Slow
            test_bench_overload_schema;
        ] );
    ]
