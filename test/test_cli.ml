(* The CLI contract for bad input: unknown experiments / figures and
   malformed flags must exit 2 with a usage hint on stderr — never a
   backtrace, never a silent success. Runs the real binary (see
   test/dune for the dependency). *)

(* resolve relative to this test executable (both live in _build), so
   the test works from `dune runtest` and `dune exec` alike *)
let binary =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "evolvenet.exe"))

(* run the binary with [args], capturing (exit code, stderr) *)
let run args =
  let err = Filename.temp_file "evolvenet_cli" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s 2> %s" (Filename.quote binary) args
         (Filename.quote err))
  in
  let ic = open_in err in
  let msg = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove err;
  (code, msg)

let contains haystack needle =
  let h = String.lowercase_ascii haystack
  and n = String.lowercase_ascii needle in
  let hl = String.length h and nl = String.length n in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub h i nl) n || go (i + 1))
  in
  go 0

let check = Alcotest.check

let test_unknown_experiment () =
  let code, msg = run "exp e999" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "names the experiment" true (contains msg "e999");
  check Alcotest.bool "points at usage" true (contains msg "usage")

let test_unknown_figure () =
  let code, msg = run "fig 99" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "points at usage" true (contains msg "usage")

let test_malformed_flag_value () =
  (* cmdliner rejects the unparsable option value; main remaps its
     cli_error exit to 2 so scripts see one consistent failure code *)
  let code, msg = run "exp e1 --seed notanint" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "stderr not empty" true (String.length msg > 0)

let test_unknown_flag () =
  let code, _ = run "exp e1 --no-such-flag" in
  check Alcotest.int "exit code" 2 code

let test_help_exits_zero () =
  let code, _ = run "--help > /dev/null" in
  check Alcotest.int "exit code" 0 code

(* --- the evolvelint binary honours the same contract ---------------- *)

let lint_binary =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".."
       (Filename.concat "tools" (Filename.concat "lint" "main.exe")))

let run_lint args =
  let err = Filename.temp_file "evolvelint_cli" ".err" in
  let code =
    Sys.command
      (Printf.sprintf "%s %s 2> %s" (Filename.quote lint_binary) args
         (Filename.quote err))
  in
  let ic = open_in err in
  let msg = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove err;
  (code, msg)

let test_lint_explain_unknown_rule () =
  let code, msg = run_lint "--explain no-such-rule" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "names the rule" true (contains msg "no-such-rule");
  check Alcotest.bool "lists the known rules" true (contains msg "layering");
  check Alcotest.bool "points at usage" true (contains msg "usage")

let test_lint_explain_known_rule () =
  let code, msg = run_lint "--explain domain-unsafe-write > /dev/null" in
  check Alcotest.int "exit code" 0 code;
  check Alcotest.bool "stderr empty" true (String.length msg = 0)

let test_lint_summaries_rejects_sarif () =
  let code, msg = run_lint "--summaries --format sarif" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "points at usage" true (contains msg "usage")

let test_lint_unknown_format () =
  let code, msg = run_lint "--format yaml" in
  check Alcotest.int "exit code" 2 code;
  check Alcotest.bool "points at usage" true (contains msg "usage")

let () =
  Alcotest.run "cli"
    [
      ( "errors",
        [
          Alcotest.test_case "unknown experiment" `Quick
            test_unknown_experiment;
          Alcotest.test_case "unknown figure" `Quick test_unknown_figure;
          Alcotest.test_case "malformed flag value" `Quick
            test_malformed_flag_value;
          Alcotest.test_case "unknown flag" `Quick test_unknown_flag;
          Alcotest.test_case "help exits 0" `Quick test_help_exits_zero;
        ] );
      ( "lint",
        [
          Alcotest.test_case "explain unknown rule exits 2" `Quick
            test_lint_explain_unknown_rule;
          Alcotest.test_case "explain known rule exits 0" `Quick
            test_lint_explain_known_rule;
          Alcotest.test_case "--summaries rejects sarif" `Quick
            test_lint_summaries_rejects_sarif;
          Alcotest.test_case "unknown format exits 2" `Quick
            test_lint_unknown_format;
        ] );
    ]
