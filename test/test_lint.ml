(* evolvelint's own tests: each rule family must fire on a violating
   fixture (with a file:line diagnostic) and stay silent on the clean
   tree. Fixtures are parsed from strings — the checks are pure. *)

module L = Lintcore.Lint

let check = Alcotest.check
let empty = L.Allowlist.empty
let has_rule rule diags = List.exists (fun (d : L.diag) -> d.L.rule = rule) diags

let count_rule rule diags =
  List.length (List.filter (fun (d : L.diag) -> d.L.rule = rule) diags)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

(* --- layering ------------------------------------------------------- *)

let test_layering_upward_edge () =
  let dune_src =
    "(library\n (name routing)\n (libraries netcore topology simcore fmt))\n"
  in
  let diags = L.check_layering ~dune_files:[ ("lib/routing/dune", dune_src) ] in
  check Alcotest.int "one violation" 1 (count_rule "layering" diags);
  let d = List.find (fun (d : L.diag) -> d.L.rule = "layering") diags in
  check Alcotest.string "file" "lib/routing/dune" d.L.file;
  check Alcotest.int "line of the offending dep" 3 d.L.line

let test_layering_sideways_edge () =
  (* anycast and vnbone are ordered: vnbone may use anycast, never the
     reverse *)
  let dune_src = "(library (name anycast) (libraries vnbone))" in
  let diags = L.check_layering ~dune_files:[ ("lib/anycast/dune", dune_src) ] in
  check Alcotest.bool "sideways/upward dep flagged" true
    (has_rule "layering" diags)

let test_layering_clean () =
  let dune_src =
    "(library\n (name routing)\n (libraries netcore topology fmt))\n"
  in
  check Alcotest.int "no violation" 0
    (List.length (L.check_layering ~dune_files:[ ("lib/routing/dune", dune_src) ]))

let test_layering_unknown_library () =
  let dune_src = "(library (name mystery) (libraries fmt))" in
  let diags = L.check_layering ~dune_files:[ ("lib/mystery/dune", dune_src) ] in
  check Alcotest.bool "unknown lib/ library flagged" true
    (has_rule "layering" diags)

(* --- determinism ---------------------------------------------------- *)

let det ?(allow = empty) ?(path = "lib/core/fixture.ml") src =
  L.check_determinism ~allow ~path src

let test_random_direct () =
  let diags = det "let f () = Random.int 3\n" in
  check Alcotest.int "flagged" 1 (count_rule "random-direct" diags);
  let d = List.hd diags in
  check Alcotest.int "line" 1 d.L.line

let test_random_allowed_in_rng () =
  let diags = det ~path:"lib/topology/rng.ml" "let f () = Random.int 3\n" in
  check Alcotest.int "rng.ml may use Random" 0
    (count_rule "random-direct" diags)

let test_forbidden_calls () =
  let src =
    "let a () = Sys.time ()\n\
     let b () = Unix.gettimeofday ()\n\
     let c () = Hashtbl.randomize ()\n\
     let d () = Random.self_init ()\n"
  in
  check Alcotest.int "all four flagged" 4 (count_rule "forbidden-call" (det src))

let test_self_init_forbidden_even_in_rng () =
  let diags = det ~path:"lib/topology/rng.ml" "let f () = Random.self_init ()\n" in
  check Alcotest.int "self_init flagged in rng.ml too" 1
    (count_rule "forbidden-call" diags)

let test_hashtbl_fold_unsorted () =
  let diags = det "let groups t = Hashtbl.fold (fun g _ acc -> g :: acc) t []\n" in
  check Alcotest.int "escaping fold flagged" 1 (count_rule "hashtbl-order" diags)

let test_hashtbl_fold_piped_into_sort () =
  let src =
    "let groups t =\n\
    \  Hashtbl.fold (fun g _ acc -> g :: acc) t []\n\
    \  |> List.sort compare\n"
  in
  check Alcotest.int "sorted fold passes" 0 (count_rule "hashtbl-order" (det src))

let test_hashtbl_fold_inside_sort_application () =
  let src =
    "let groups t = List.sort_uniq compare (Hashtbl.fold (fun g _ a -> g :: a) t [])\n"
  in
  check Alcotest.int "sort-wrapped fold passes" 0
    (count_rule "hashtbl-order" (det src))

let test_hashtbl_iter_flagged () =
  let diags = det "let sum t r = Hashtbl.iter (fun _ v -> r := !r + v) t\n" in
  check Alcotest.int "iter flagged" 1 (count_rule "hashtbl-order" diags)

let test_hashtbl_allowlist () =
  let allow =
    L.Allowlist.parse ~path:"allowlist"
      "hashtbl-order lib/core/fixture.ml:groups  # verified: set semantics\n"
  in
  let diags =
    det ~allow "let groups t = Hashtbl.fold (fun g _ acc -> g :: acc) t []\n"
  in
  check Alcotest.int "allowlisted site passes" 0
    (count_rule "hashtbl-order" diags);
  check Alcotest.int "entry is not stale" 0 (List.length (L.Allowlist.stale allow))

let test_allowlist_stale_entry () =
  let allow =
    L.Allowlist.parse ~path:"allowlist" "hashtbl-order lib/gone.ml:nothing\n"
  in
  ignore (det ~allow "let f x = x\n");
  check Alcotest.int "unused entry reported" 1
    (count_rule "stale-allowlist" (L.Allowlist.stale allow))

let test_parse_error () =
  check Alcotest.bool "garbage reported" true
    (has_rule "parse-error" (det "let let let\n"))

(* --- interface hygiene ---------------------------------------------- *)

let test_missing_mli () =
  let diags = L.check_missing_mli ~ml:[ "lib/x/a.ml"; "lib/x/b.ml" ] ~mli:[ "lib/x/a.mli" ] in
  check Alcotest.int "one missing interface" 1 (count_rule "missing-mli" diags);
  check Alcotest.string "names the module" "lib/x/b.ml"
    (List.hd diags).L.file

let test_mli_without_paper_ref () =
  let diags =
    L.check_mli_doc ~path:"lib/x/a.mli" "(** A module doing things. *)\nval f : int -> int\n"
  in
  check Alcotest.int "flagged" 1 (count_rule "mli-doc-ref" diags)

let test_mli_with_section_sign () =
  let diags =
    L.check_mli_doc ~path:"lib/x/a.mli"
      "(** Implements the paper's \xC2\xA73.2 anycast options. *)\nval f : int -> int\n"
  in
  check Alcotest.int "\xC2\xA7 reference passes" 0 (List.length diags)

let test_mli_with_section_word () =
  let diags =
    L.check_mli_doc ~path:"lib/x/a.mli"
      "val f : int -> int\n(** See Section 3 of the paper. *)\n"
  in
  check Alcotest.int "'Section' reference passes" 0 (List.length diags)

(* --- experiment completeness ---------------------------------------- *)

(* e1 has all seven artifacts; e2 is missing cli, bench, report, docs
   and test. *)
let fixture_sources =
  {
    L.experiments_ml =
      ( "lib/core/experiments.ml",
        "type e1_row = { x : int }\n\
         let e1_sweep () = []\n\
         let print_e1 _ = ()\n\
         type e2_row = { y : int }\n\
         let e2_sweep () = []\n\
         let print_e2 _ = ()\n" );
    L.bin_ml =
      ("bin/evolvenet.ml", "let run = function \"e1\" -> () | _ -> ()\n");
    L.bench_ml = ("bench/main.ml", "let () = print_e1 []\n");
    L.report_ml = ("lib/core/report.ml", "let s = \"E1 \xE2\x80\x94 sweep\"\n");
    L.test_ml = ("test/test_experiments.ml", "let suites = [ (\"e1\", []) ]\n");
    L.experiments_md = ("EXPERIMENTS.md", "## E1 \xE2\x80\x94 the sweep\n");
  }

let test_experiment_completeness () =
  let diags = L.check_experiments ~allow:empty fixture_sources in
  let mentions n =
    List.length
      (List.filter
         (fun (d : L.diag) ->
           d.L.rule = "experiment-artifacts"
           &&
           let pre = Printf.sprintf "e%d is missing" n in
           String.length d.L.msg >= String.length pre
           && String.sub d.L.msg 0 (String.length pre) = pre)
         diags)
  in
  check Alcotest.int "e1 complete" 0 (mentions 1);
  check Alcotest.int "e2 missing five artifacts" 5 (mentions 2)

let test_experiment_allowlist () =
  let allow =
    L.Allowlist.parse ~path:"allowlist"
      "experiment-artifacts lib/core/experiments.ml:e2.cli\n\
       experiment-artifacts lib/core/experiments.ml:e2.bench\n\
       experiment-artifacts lib/core/experiments.ml:e2.report\n\
       experiment-artifacts lib/core/experiments.ml:e2.docs\n\
       experiment-artifacts lib/core/experiments.ml:e2.test\n"
  in
  let diags = L.check_experiments ~allow fixture_sources in
  check Alcotest.int "all exemptions honoured" 0
    (count_rule "experiment-artifacts" diags)

(* --- typed rule packs (fixtures) ------------------------------------ *)

(* Typecheck a fixture module in-process and run the typed pass over it
   alone, exactly as `run` would over the real tree. *)
let typed ?(allow = empty) ?(baseline = empty) ?intf ~modname src =
  let filename =
    Printf.sprintf "lib/fixture/%s.ml" (String.lowercase_ascii modname)
  in
  match Lintcore.Typed.of_string ~filename ~modname ?intf src with
  | Error d -> Alcotest.failf "fixture rejected: %s" (L.to_string d)
  | Ok m ->
      let decls = Lintcore.Typed.decls_of_mods [ m ] in
      L.filter_suppressed ~allow ~baseline (L.typed_pass ~decls [ m ])

let test_poly_compare_fires_then_fixed () =
  let dirty = typed ~modname:"Cmpfix" "let feq (a : float) b = a = b\n" in
  check Alcotest.int "float `=` flagged" 1 (count_rule "poly-compare" dirty);
  let d = List.find (fun (d : L.diag) -> d.L.rule = "poly-compare") dirty in
  check Alcotest.int "line" 1 d.L.line;
  check
    Alcotest.(option string)
    "suppression key names the binding"
    (Some "lib/fixture/cmpfix.ml:feq")
    d.L.key;
  let fixed =
    typed ~modname:"Cmpfix" "let feq (a : float) b = Float.equal a b\n"
  in
  check Alcotest.int "Float.equal passes" 0 (count_rule "poly-compare" fixed)

let test_float_ordering_exempt () =
  (* scalar-float `<` is the IEEE primitive — exempt; `compare` at
     float is not *)
  let ord = typed ~modname:"Cmpord" "let lt (a : float) b = a < b\n" in
  check Alcotest.int "scalar float `<` passes" 0 (count_rule "poly-compare" ord);
  let cmp = typed ~modname:"Cmpord" "let c (a : float) b = compare a b\n" in
  check Alcotest.int "float `compare` flagged" 1 (count_rule "poly-compare" cmp)

let test_physical_eq_fires_then_fixed () =
  let dirty = typed ~modname:"Physfix" "let same (a : int list) b = a == b\n" in
  check Alcotest.int "`==` flagged" 1 (count_rule "physical-eq" dirty);
  let fixed = typed ~modname:"Physfix" "let same (a : int list) b = a = b\n" in
  check Alcotest.int "structural `=` passes" 0 (count_rule "physical-eq" fixed)

let test_catch_all_fires_then_fixed () =
  let dirty = typed ~modname:"Exnfix" "let f g = try g () with _ -> 0\n" in
  check Alcotest.int "catch-all flagged" 1 (count_rule "catch-all" dirty);
  let fixed =
    typed ~modname:"Exnfix" "let f g = try g () with Not_found -> 0\n"
  in
  check Alcotest.int "named handler passes" 0 (count_rule "catch-all" fixed);
  let reraise =
    typed ~modname:"Exnfix" "let f g = try g () with e -> raise e\n"
  in
  check Alcotest.int "re-raising handler passes" 0
    (count_rule "catch-all" reraise)

let test_undoc_raise_fires_then_fixed () =
  let src = "let f x = if x < 0 then invalid_arg \"f\" else x\n" in
  let dirty = typed ~modname:"Raisefix" ~intf:"val f : int -> int\n" src in
  check Alcotest.int "undocumented raise flagged" 1
    (count_rule "undoc-raise" dirty);
  let fixed =
    typed ~modname:"Raisefix"
      ~intf:"val f : int -> int\n(** @raise Invalid_argument on x < 0. *)\n"
      src
  in
  check Alcotest.int "@raise doc line passes" 0 (count_rule "undoc-raise" fixed)

let test_hot_path_alloc_fires_then_fixed () =
  (* the module is named Pump, so `inject` is a hot-path root *)
  let dirty = typed ~modname:"Pump" "let inject t x = (x, t)\n" in
  check Alcotest.int "per-packet tuple flagged" 1
    (count_rule "hot-path-alloc" dirty);
  let fixed = typed ~modname:"Pump" "let inject t x = x + t\n" in
  check Alcotest.int "allocation-free body passes" 0
    (count_rule "hot-path-alloc" fixed)

let test_hot_path_reachability () =
  (* the allocation sits in a helper `inject` calls — reachability must
     carry the hot set through the call graph; the same helper in a
     cold module stays unflagged *)
  let src = "let helper x = Some x\nlet inject t x = helper (x + t)\n" in
  let hot = typed ~modname:"Pump" src in
  check Alcotest.int "transitively-reachable callee flagged" 1
    (count_rule "hot-path-alloc" hot);
  let cold = typed ~modname:"Coldpath" src in
  check Alcotest.int "same code off the hot path passes" 0
    (count_rule "hot-path-alloc" cold)

(* --- effect summaries (v3 engine) ----------------------------------- *)

module CG = Lintcore.Callgraph
module S = Lintcore.Summary

(* Build the call graph and summaries of one fixture module directly,
   for asserting on the analysis itself rather than its findings. *)
let graph_of ?(filename = "lib/fixture/fix.ml") ~modname src =
  match Lintcore.Typed.of_string ~filename ~modname src with
  | Error d -> Alcotest.failf "fixture rejected: %s" (L.to_string d)
  | Ok m ->
      let cg = CG.build [ m ] in
      (cg, S.compute cg)

let test_summary_effects () =
  let _, sums =
    graph_of ~modname:"Sumfx"
      "let double x = x + x\n\
       let shout () = print_int 1\n\
       let tick (r : int ref) = incr r\n\
       let counter = ref 0\n\
       let bump () = incr counter\n\
       let caller () = bump ()\n"
  in
  let full n = S.get sums.S.full ("Sumfx." ^ n) in
  check Alcotest.bool "double is pure" true (S.pure (full "double"));
  check Alcotest.bool "shout performs io" true (full "shout").S.io;
  check Alcotest.bool "tick writes own (parameter-rooted)" true
    (full "tick").S.writes_own;
  check Alcotest.bool "tick writes nothing shared" true
    (S.SS.is_empty (full "tick").S.writes_shared);
  check Alcotest.bool "bump writes the shared counter" true
    (S.SS.mem "Sumfx.counter" (full "bump").S.writes_shared);
  (* interprocedural: the caller's own body writes nothing, its
     fixpoint summary inherits bump's shared write *)
  check Alcotest.bool "caller's base is write-free" true
    (S.SS.is_empty (S.get sums.S.base "Sumfx.caller").S.writes_shared);
  check Alcotest.bool "caller's fixpoint carries the write" true
    (S.SS.mem "Sumfx.counter" (full "caller").S.writes_shared)

let test_summary_scc_fixpoint () =
  let cg, sums =
    graph_of ~modname:"Sccfx"
      "let spins = ref 0\n\
       let rec ping n = if n = 0 then !spins else pong (n - 1)\n\
       and pong n = spins := !spins + 1; ping n\n"
  in
  check Alcotest.bool "ping -> pong edge" true
    (CG.SS.mem "Sccfx.pong" (CG.succs cg "Sccfx.ping"));
  check Alcotest.bool "pong -> ping edge" true
    (CG.SS.mem "Sccfx.ping" (CG.succs cg "Sccfx.pong"));
  check Alcotest.bool "ping's own body writes nothing" true
    (S.SS.is_empty (S.get sums.S.base "Sccfx.ping").S.writes_shared);
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ "'s fixpoint carries the SCC's shared write")
        true
        (S.SS.mem "Sccfx.spins"
           (S.get sums.S.full ("Sccfx." ^ n)).S.writes_shared))
    [ "ping"; "pong" ]

let test_rng_sanctioned_source () =
  let src = "let draw () = Random.int 10\n" in
  let _, seeded = graph_of ~filename:"lib/topology/rng.ml" ~modname:"Rng" src in
  check Alcotest.bool "rng.ml is never a nondeterminism witness" true
    ((S.get seeded.S.full "Rng.draw").S.nondet = None);
  let _, unseeded = graph_of ~modname:"Other" src in
  check Alcotest.bool "the same source elsewhere is a witness" true
    ((S.get unseeded.S.full "Other.draw").S.nondet <> None)

(* --- shared-state inventory ------------------------------------------ *)

let test_shared_state_fires_then_fixed () =
  let dirty =
    typed ~modname:"Statefx"
      "let cache : (string, int) Hashtbl.t = Hashtbl.create 16\n\
       let get k = Hashtbl.find_opt cache k\n"
  in
  check Alcotest.int "toplevel Hashtbl flagged" 1
    (count_rule "shared-state" dirty);
  let d = List.find (fun (d : L.diag) -> d.L.rule = "shared-state") dirty in
  check
    Alcotest.(option string)
    "keyed at the binding"
    (Some "lib/fixture/statefx.ml:cache")
    d.L.key;
  check Alcotest.bool "names the container kind" true
    (contains_sub d.L.msg "Hashtbl.t");
  let fixed = typed ~modname:"Statefx" "let get tbl k = Hashtbl.find_opt tbl k\n" in
  check Alcotest.int "threaded table passes" 0 (count_rule "shared-state" fixed)

let test_shared_state_record_and_immutables () =
  let diags =
    typed ~modname:"Statefx"
      "type h = { mutable alive : bool }\n\
       let flag = { alive = true }\n\
       let pi = 3.14159\n\
       let names = [ \"a\"; \"b\" ]\n"
  in
  check Alcotest.int "mutable record flagged, immutables quiet" 1
    (count_rule "shared-state" diags);
  let d = List.find (fun (d : L.diag) -> d.L.rule = "shared-state") diags in
  check Alcotest.bool "names the record kind" true
    (contains_sub d.L.msg "mutable fields")

(* --- domain safety (race detector) ----------------------------------- *)

let test_domain_unsafe_fires_then_fixed () =
  let dirty =
    typed ~modname:"Pump"
      "let hits = ref 0\nlet note () = incr hits\nlet inject t = note (); t\n"
  in
  check Alcotest.int "the direct writer is flagged once" 1
    (count_rule "domain-unsafe-write" dirty);
  let d =
    List.find (fun (d : L.diag) -> d.L.rule = "domain-unsafe-write") dirty
  in
  check
    Alcotest.(option string)
    "keyed at the writer"
    (Some "lib/fixture/pump.ml:note")
    d.L.key;
  check Alcotest.bool "message names the shared target" true
    (contains_sub d.L.msg "Pump.hits");
  let fixed =
    typed ~modname:"Pump"
      "let note (h : int ref) = incr h\nlet inject t h = note h; t\n"
  in
  check Alcotest.int "instance-threaded state passes" 0
    (count_rule "domain-unsafe-write" fixed)

let test_domain_instance_owned_proven () =
  (* the telemetry idiom: mutation through a parameter is *proven*
     instance-owned, not allowlisted *)
  let diags =
    typed ~modname:"Pump"
      "type c = { mutable n : int }\n\
       let bump (x : c) = x.n <- x.n + 1\n\
       let inject (t : c) = bump t; t.n\n"
  in
  check Alcotest.int "parameter-rooted mutation is proven owned" 0
    (count_rule "domain-unsafe-write" diags);
  check Alcotest.int "instance mutable fields are not shared state" 0
    (count_rule "shared-state" diags)

let test_domain_alias_laundering () =
  let diags =
    typed ~modname:"Pump"
      "let glob = ref 0\n\
       let sneaky () = let g = glob in g := 1\n\
       let inject t = sneaky (); t\n"
  in
  check Alcotest.int "global laundered through a let still flagged" 1
    (count_rule "domain-unsafe-write" diags)

let test_domain_cold_module_quiet () =
  let diags =
    typed ~modname:"Coldmod"
      "let hits = ref 0\nlet note () = incr hits\nlet drive t = note (); t\n"
  in
  check Alcotest.int "same write off the pump path passes" 0
    (count_rule "domain-unsafe-write" diags)

(* --- call-graph edges the summary engine depends on ------------------ *)

let test_callgraph_functor_application () =
  let src =
    "let total = ref 0\n\
     module type N = sig val n : int end\n\
     module F (X : N) = struct let go () = total := !total + X.n end\n\
     module A = F (struct let n = 3 end)\n\
     let inject t = A.go (); t\n"
  in
  let cg, _ = graph_of ~filename:"lib/fixture/pump.ml" ~modname:"Pump" src in
  check Alcotest.bool "inject -> F.go edge through the application" true
    (CG.SS.mem "Pump.F.go" (CG.succs cg "Pump.inject"));
  let dirty = typed ~modname:"Pump" src in
  check Alcotest.int "functor-body writer flagged" 1
    (count_rule "domain-unsafe-write" dirty);
  let d =
    List.find (fun (d : L.diag) -> d.L.rule = "domain-unsafe-write") dirty
  in
  check
    Alcotest.(option string)
    "keyed at the nested binding"
    (Some "lib/fixture/pump.ml:F.go")
    d.L.key;
  let fixed =
    typed ~modname:"Pump"
      "module type N = sig val n : int end\n\
       module F (X : N) = struct let go (acc : int ref) = acc := !acc + X.n end\n\
       module A = F (struct let n = 3 end)\n\
       let inject t acc = A.go acc; t\n"
  in
  check Alcotest.int "threaded accumulator passes" 0
    (count_rule "domain-unsafe-write" fixed)

let test_callgraph_first_class_module () =
  let src =
    "let total = ref 0\n\
     module type C = sig val bump : int -> int end\n\
     let counter : (module C) =\n\
    \  (module struct let bump x = total := !total + x; !total end)\n\
     let inject t = let module M = (val counter) in M.bump t\n"
  in
  let cg, sums = graph_of ~filename:"lib/fixture/pump.ml" ~modname:"Pump" src in
  check Alcotest.bool "inject -> counter edge through the unpack" true
    (CG.SS.mem "Pump.counter" (CG.succs cg "Pump.inject"));
  check Alcotest.bool "packed body's write attributed to counter" true
    (S.SS.mem "Pump.total" (S.get sums.S.base "Pump.counter").S.writes_shared);
  let dirty = typed ~modname:"Pump" src in
  check Alcotest.int "write through a first-class module flagged" 1
    (count_rule "domain-unsafe-write" dirty)

(* --- determinism taint ------------------------------------------------ *)

let test_taint_reaches_surface () =
  let dirty =
    typed ~modname:"Experiments"
      "let clock () = Sys.time ()\n\
       let e1_demo (xs : float list) = List.map (fun x -> x +. clock ()) xs\n"
  in
  check Alcotest.int "flagged at the surface, not the helper" 1
    (count_rule "determinism-taint" dirty);
  let d =
    List.find (fun (d : L.diag) -> d.L.rule = "determinism-taint") dirty
  in
  check
    Alcotest.(option string)
    "keyed at the surface"
    (Some "lib/fixture/experiments.ml:e1_demo")
    d.L.key;
  check Alcotest.bool "witness names the originating source" true
    (contains_sub d.L.msg "Sys.time");
  let fixed =
    typed ~modname:"Experiments"
      "let clock () = 0.0\n\
       let e1_demo (xs : float list) = List.map (fun x -> x +. clock ()) xs\n"
  in
  check Alcotest.int "clean helper passes" 0
    (count_rule "determinism-taint" fixed)

let test_taint_report_generate_surface () =
  let dirty =
    typed ~modname:"Report"
      "let stamp () = Sys.time ()\nlet generate () = stamp ()\n"
  in
  check Alcotest.int "Report.generate is a surface" 1
    (count_rule "determinism-taint" dirty);
  let quiet =
    typed ~modname:"Report"
      "let stamp () = Sys.time ()\nlet helper () = stamp ()\n"
  in
  check Alcotest.int "non-surface bindings stay quiet" 0
    (count_rule "determinism-taint" quiet)

(* --- atomics protocol (v4) ------------------------------------------- *)

module RA = Lintcore.Rules_atomic
module RB = Lintcore.Rules_bounds

(* Run the atomics pack alone over one fixture with a custom role
   table, exactly as typed_pass drives it with Lint.atomic_roles. *)
let atomic ?(scope = L.atomic_scope) ~roles ~modname src =
  let filename =
    Printf.sprintf "lib/fixture/%s.ml" (String.lowercase_ascii modname)
  in
  match Lintcore.Typed.of_string ~filename ~modname src with
  | Error d -> Alcotest.failf "fixture rejected: %s" (L.to_string d)
  | Ok m ->
      let cg = CG.build [ m ] in
      let sums = S.compute cg in
      RA.check ~roles ~scope sums cg [ m ]

let test_atomic_wrong_writer_fires_then_fixed () =
  let roles =
    [
      ( "Ringfx.t.head",
        RA.Single_writer { writers = [ "Ringfx.pop" ]; publishes = None } );
    ]
  in
  let dirty =
    atomic ~roles ~modname:"Ringfx"
      "type t = { head : int Atomic.t }\n\
       let pop t = Atomic.set t.head 1\n\
       let rogue t = Atomic.set t.head 2\n"
  in
  check Alcotest.int "write outside the declared writer flagged" 1
    (count_rule "atomic-protocol" dirty);
  let d = List.hd dirty in
  check
    Alcotest.(option string)
    "keyed at the rogue binding"
    (Some "lib/fixture/ringfx.ml:rogue")
    d.L.key;
  let fixed =
    atomic ~roles ~modname:"Ringfx"
      "type t = { head : int Atomic.t }\n\
       let pop t = Atomic.set t.head 1\n\
       let rogue t = pop t\n"
  in
  check Alcotest.int "routing through the writer passes" 0
    (count_rule "atomic-protocol" fixed)

let test_atomic_publish_ordering_fires_then_fixed () =
  let roles =
    [
      ( "Pubfx.t.tail",
        RA.Single_writer
          { writers = [ "Pubfx.push" ]; publishes = Some "Pubfx.t.buf" } );
    ]
  in
  let dirty =
    atomic ~roles ~modname:"Pubfx"
      "type t = { buf : int array; mask : int; tail : int Atomic.t }\n\
       let push t x =\n\
      \  let tl = Atomic.get t.tail in\n\
      \  Atomic.set t.tail (tl + 1);\n\
      \  t.buf.(tl land t.mask) <- x\n"
  in
  check Alcotest.int "slot write after the publish flagged" 1
    (count_rule "atomic-protocol" dirty);
  check Alcotest.bool "message explains the happens-before edge" true
    (contains_sub (List.hd dirty).L.msg "publishes");
  let fixed =
    atomic ~roles ~modname:"Pubfx"
      "type t = { buf : int array; mask : int; tail : int Atomic.t }\n\
       let push t x =\n\
      \  let tl = Atomic.get t.tail in\n\
      \  t.buf.(tl land t.mask) <- x;\n\
      \  Atomic.set t.tail (tl + 1)\n"
  in
  check Alcotest.int "slot write before the publish passes" 0
    (count_rule "atomic-protocol" fixed)

let test_atomic_counter_store_and_spawn_order () =
  let src =
    "type t = { live : int Atomic.t }\n\
     let retire t = ignore (Atomic.fetch_and_add t.live (-1) : int)\n\
     let reset t = Atomic.set t.live 0\n"
  in
  let strict =
    atomic
      ~roles:[ ("Ctrfx.t.live", RA.Counter { setters = [] }) ]
      ~modname:"Ctrfx" src
  in
  check Alcotest.int "store outside declared setters flagged" 1
    (count_rule "atomic-protocol" strict);
  let declared =
    atomic
      ~roles:[ ("Ctrfx.t.live", RA.Counter { setters = [ "Ctrfx.reset" ] }) ]
      ~modname:"Ctrfx" src
  in
  check Alcotest.int "fetch_and_add free, declared setter passes" 0
    (count_rule "atomic-protocol" declared);
  let late =
    atomic
      ~roles:[ ("Spawnfx.t.live", RA.Counter { setters = [ "Spawnfx.run" ] }) ]
      ~modname:"Spawnfx"
      "type t = { live : int Atomic.t }\n\
       let run t =\n\
      \  let d = Domain.spawn (fun () -> Atomic.get t.live) in\n\
      \  Atomic.set t.live 1;\n\
      \  ignore (Domain.join d : int)\n"
  in
  check Alcotest.int "counter set after Domain.spawn flagged" 1
    (count_rule "atomic-protocol" late)

let snapfx_roles =
  [
    ( "Snapfx.t.head",
      RA.Single_writer { writers = [ "Snapfx.pop" ]; publishes = None } );
    ( "Snapfx.t.tail",
      RA.Single_writer { writers = [ "Snapfx.push" ]; publishes = None } );
  ]

let snapfx_src =
  "type t = { head : int Atomic.t; tail : int Atomic.t }\n\
   let size t = Atomic.get t.tail - Atomic.get t.head\n\
   let pop t =\n\
  \  ignore (Atomic.get t.tail - Atomic.get t.head : int);\n\
  \  Atomic.set t.head 1\n"

let test_atomic_non_snapshot_read () =
  let diags = atomic ~roles:snapfx_roles ~modname:"Snapfx" snapfx_src in
  (* size combines two single-writer loads from outside either writer;
     pop makes the same pair but owns head, so only size fires *)
  check Alcotest.int "non-snapshot pair flagged once" 1
    (count_rule "atomic-protocol" diags);
  check
    Alcotest.(option string)
    "keyed at the non-owner"
    (Some "lib/fixture/snapfx.ml:size")
    (List.hd diags).L.key

let test_atomic_allowlist_precedence () =
  let allow =
    L.Allowlist.parse ~path:"allowlist"
      "atomic-protocol lib/fixture/snapfx.ml:size  # clamped downstream\n"
  in
  let diags =
    L.filter_suppressed ~allow ~baseline:empty
      (atomic ~roles:snapfx_roles ~modname:"Snapfx" snapfx_src)
  in
  check Alcotest.int "allowlisted non-snapshot suppressed" 0
    (List.length diags);
  check Alcotest.int "entry is live, not stale" 0
    (List.length (L.Allowlist.stale allow))

let test_atomic_accessor_alias_seen_through () =
  (* the write goes through a returned alias — the accessor map must
     resolve it to the field so the role check still applies *)
  let src =
    "type t = { asleep : bool Atomic.t }\n\
     let asleep_flag t = t.asleep\n\
     let doze t = Atomic.set (asleep_flag t) true\n"
  in
  let ok =
    atomic
      ~roles:
        [ ("Viewfx.t.asleep", RA.Publish_flag { writers = [ "Viewfx.doze" ] }) ]
      ~modname:"Viewfx" src
  in
  check Alcotest.int "declared writer through the accessor passes" 0
    (count_rule "atomic-protocol" ok);
  let bad =
    atomic
      ~roles:
        [ ("Viewfx.t.asleep", RA.Publish_flag { writers = [ "Viewfx.other" ] }) ]
      ~modname:"Viewfx" src
  in
  check Alcotest.int "accessor write from a non-writer flagged" 1
    (count_rule "atomic-protocol" bad)

let test_atomic_read_only_view_write () =
  let diags =
    atomic
      ~roles:
        [
          ("Rofx.t.flag", RA.Publish_flag { writers = [] });
          ("Rofx.t.view", RA.Read_only_view { of_field = "Rofx.t.flag" });
        ]
      ~modname:"Rofx"
      "type t = { flag : bool Atomic.t; view : bool Atomic.t }\n\
       let poke t = Atomic.set t.view true\n"
  in
  check Alcotest.int "write to a read-only view flagged" 1
    (count_rule "atomic-protocol" diags);
  check Alcotest.bool "message names the viewed field" true
    (contains_sub (List.hd diags).L.msg "Rofx.t.flag")

let test_atomic_coverage_and_stale_via_real_table () =
  (* a module named Ring goes through typed_pass against the real
     atomic_roles table: the undeclared field is a coverage finding,
     and the table's head/tail entries (which this Ring lacks) are
     stale — three atomic-role findings, nothing else *)
  let diags =
    typed ~modname:"Ring"
      "type t = { extra : int Atomic.t }\nlet mk () = { extra = Atomic.make 0 }\n"
  in
  check Alcotest.int "coverage + two stale entries" 3
    (count_rule "atomic-role" diags);
  check Alcotest.bool "undeclared field named" true
    (List.exists
       (fun (d : L.diag) -> contains_sub d.L.msg "Ring.t.extra")
       diags);
  check Alcotest.bool "stale table entry named" true
    (List.exists
       (fun (d : L.diag) -> contains_sub d.L.msg "Ring.t.head")
       diags)

(* --- arena bounds (v4) ----------------------------------------------- *)

let bounds ?(roots = []) ~modname src =
  let filename =
    Printf.sprintf "lib/fixture/%s.ml" (String.lowercase_ascii modname)
  in
  match Lintcore.Typed.of_string ~filename ~modname src with
  | Error d -> Alcotest.failf "fixture rejected: %s" (L.to_string d)
  | Ok m -> RB.analyze ~roots (CG.build [ m ])

let test_bounds_provable_vs_unprovable () =
  let sites, diags =
    bounds ~roots:[ "Bndfx.get" ] ~modname:"Bndfx"
      "let get (b : Bytes.t) i =\n\
      \  if i >= 0 && i < Bytes.length b then Bytes.unsafe_get b i else 'x'\n"
  in
  check Alcotest.int "one obligation site" 1 (List.length sites);
  check Alcotest.bool "guarded unsafe access proven" true
    (List.hd sites).RB.sp_proven;
  check Alcotest.int "no findings on the proven site" 0 (List.length diags);
  let sites, diags =
    bounds ~roots:[ "Bndfx.get" ] ~modname:"Bndfx"
      "let get (b : Bytes.t) i = Bytes.unsafe_get b i\n"
  in
  check Alcotest.bool "unguarded access unproven" false
    (List.hd sites).RB.sp_proven;
  check Alcotest.int "rooted obligation fires arena-bounds" 1
    (count_rule "arena-bounds" diags);
  check Alcotest.int "unsafe access fires unsafe-unproven" 1
    (count_rule "unsafe-unproven" diags)

let test_bounds_unrooted_unsafe_still_licensed () =
  (* off the bounds roots, arena-bounds stays quiet but the unsafe
     license is unconditional for lib/ files *)
  let _, diags =
    bounds ~roots:[] ~modname:"Coldfx"
      "let get (b : Bytes.t) i = Bytes.unsafe_get b i\n"
  in
  check Alcotest.int "unrooted: no arena-bounds" 0
    (count_rule "arena-bounds" diags);
  check Alcotest.int "unsafe-unproven still fires" 1
    (count_rule "unsafe-unproven" diags)

let test_bounds_checked_access_is_an_obligation () =
  let _, diags =
    bounds ~roots:[ "Chkfx.get" ] ~modname:"Chkfx"
      "let get (b : Bytes.t) i = Bytes.get b i\n"
  in
  check Alcotest.int "checked rooted access fires arena-bounds" 1
    (count_rule "arena-bounds" diags);
  check Alcotest.int "checked access is not an unsafe license" 0
    (count_rule "unsafe-unproven" diags)

let test_bounds_interprocedural_discharge () =
  let guarded =
    "let put (b : Bytes.t) i = Bytes.unsafe_set b i 'x'\n\
     let run (b : Bytes.t) i =\n\
    \  if i >= 0 && i < Bytes.length b then put b i\n"
  in
  let sites, diags = bounds ~roots:[ "Ipfx.run" ] ~modname:"Ipfx" guarded in
  check Alcotest.bool "callee obligation discharged at the call site" true
    (List.hd sites).RB.sp_proven;
  check Alcotest.int "no findings" 0 (List.length diags);
  let unguarded =
    "let put (b : Bytes.t) i = Bytes.unsafe_set b i 'x'\n\
     let run (b : Bytes.t) i = put b i\n"
  in
  let sites, diags = bounds ~roots:[ "Ipfx.run" ] ~modname:"Ipfx" unguarded in
  check Alcotest.bool "obligation escapes at the root" false
    (List.hd sites).RB.sp_proven;
  check Alcotest.int "escape is a rooted finding" 1
    (count_rule "arena-bounds" diags)

let test_bounds_for_loop_range () =
  let sites, diags =
    bounds ~roots:[ "Loopfx.fill" ] ~modname:"Loopfx"
      "let fill (b : Bytes.t) =\n\
      \  for i = 0 to Bytes.length b - 1 do Bytes.unsafe_set b i 'x' done\n"
  in
  check Alcotest.bool "loop-range access proven" true
    (List.hd sites).RB.sp_proven;
  check Alcotest.int "no findings" 0 (List.length diags)

let test_bounds_allowlist_precedence () =
  let allow =
    L.Allowlist.parse ~path:"allowlist"
      "arena-bounds lib/fixture/chkfx.ml:get  # relational width\n\
       unsafe-unproven lib/fixture/bndfx.ml:get  # measured risk\n"
  in
  let _, d1 =
    bounds ~roots:[ "Chkfx.get" ] ~modname:"Chkfx"
      "let get (b : Bytes.t) i = Bytes.get b i\n"
  in
  let _, d2 =
    bounds ~roots:[] ~modname:"Bndfx"
      "let get (b : Bytes.t) i = Bytes.unsafe_get b i\n"
  in
  let left = L.filter_suppressed ~allow ~baseline:empty (d1 @ d2) in
  check Alcotest.int "both pack findings suppressed" 0 (List.length left);
  check Alcotest.int "entries live, not stale" 0
    (List.length (L.Allowlist.stale allow))

let test_baseline_suppresses_then_goes_stale () =
  let baseline =
    L.Allowlist.parse ~path:"baseline"
      "poly-compare lib/fixture/cmpfix.ml:feq  # legacy, burn down\n"
  in
  let diags = typed ~baseline ~modname:"Cmpfix" "let feq (a : float) b = a = b\n" in
  check Alcotest.int "baselined finding suppressed" 0 (List.length diags);
  check Alcotest.int "entry is live, not stale" 0
    (List.length (L.Allowlist.stale ~rule:"stale-baseline" baseline))

let test_stale_baseline_entry_fires () =
  let baseline =
    L.Allowlist.parse ~path:"baseline" "poly-compare lib/gone.ml:nothing\n"
  in
  ignore (typed ~baseline ~modname:"Cmpfix" "let id x = x\n");
  let stale = L.Allowlist.stale ~rule:"stale-baseline" baseline in
  check Alcotest.int "unused baseline entry reported" 1
    (count_rule "stale-baseline" stale)

let test_allowlist_wins_over_baseline () =
  (* the same key in both files: the allowlist claims it, so the
     baseline entry is stale — debt must not hide behind an exemption *)
  let allow =
    L.Allowlist.parse ~path:"allowlist" "poly-compare lib/fixture/cmpfix.ml:feq\n"
  in
  let baseline =
    L.Allowlist.parse ~path:"baseline" "poly-compare lib/fixture/cmpfix.ml:feq\n"
  in
  let diags =
    typed ~allow ~baseline ~modname:"Cmpfix" "let feq (a : float) b = a = b\n"
  in
  check Alcotest.int "suppressed" 0 (List.length diags);
  check Alcotest.int "baseline copy is stale" 1
    (List.length (L.Allowlist.stale ~rule:"stale-baseline" baseline))

(* --- diagnostics, serialization, catalog ---------------------------- *)

let mk_diag ?key ~file ~line ~col ~rule msg =
  { L.file; line; col; rule; msg; key }

let test_to_string_one_based () =
  let d = typed ~modname:"Cmpfix" "let feq (a : float) b = a = b\n" in
  let d = List.hd d in
  check Alcotest.bool "column is 1-based" true (d.L.col >= 1);
  check Alcotest.string "format"
    (Printf.sprintf "%s:%d:%d: [%s] %s" d.L.file d.L.line d.L.col d.L.rule
       d.L.msg)
    (L.to_string d)

let test_dedupe_same_site () =
  (* the untyped and typed passes can both flag one site under one
     rule; the merged stream must carry it once *)
  let a = mk_diag ~file:"a.ml" ~line:3 ~col:1 ~rule:"r" "alpha" in
  let b = mk_diag ~file:"a.ml" ~line:3 ~col:1 ~rule:"r" "beta" in
  let other = mk_diag ~file:"a.ml" ~line:3 ~col:1 ~rule:"other" "gamma" in
  let out = L.dedupe_diags [ b; a; a; other ] in
  check Alcotest.int "same site+rule collapses, other rule survives" 2
    (List.length out);
  check
    Alcotest.(list string)
    "sorted, first message per site kept" [ "gamma"; "alpha" ]
    (List.map (fun (d : L.diag) -> d.L.msg) out)

let test_compare_diag_total () =
  let a = mk_diag ~file:"a.ml" ~line:1 ~col:1 ~rule:"r" "m" in
  let b = mk_diag ~file:"a.ml" ~line:1 ~col:2 ~rule:"r" "m" in
  let c = mk_diag ~file:"b.ml" ~line:1 ~col:1 ~rule:"r" "m" in
  check Alcotest.bool "col orders" true (L.compare_diag a b < 0);
  check Alcotest.bool "file dominates" true (L.compare_diag b c < 0);
  check Alcotest.int "reflexive" 0 (L.compare_diag a a);
  check Alcotest.bool "antisymmetric" true
    (L.compare_diag b a > 0 && L.compare_diag c b > 0)

let test_json_output () =
  let d =
    mk_diag ~key:"a.ml:f" ~file:"a.ml" ~line:3 ~col:7 ~rule:"poly-compare"
      "uses \"polymorphic\" compare"
  in
  let json = L.to_json [ d ] in
  let contains sub = check Alcotest.bool sub true (contains_sub json sub) in
  contains "\"tool\": \"evolvelint\"";
  contains "\"findings\": 1";
  contains "\"rule\": \"poly-compare\"";
  contains "\"line\": 3";
  contains "\"col\": 7";
  (* the embedded quotes must be escaped per RFC 8259 *)
  contains "uses \\\"polymorphic\\\" compare"

let test_sarif_output () =
  let d =
    mk_diag ~file:"lib/a.ml" ~line:3 ~col:7 ~rule:"catch-all" "swallows"
  in
  let sarif = L.to_sarif [ d ] in
  let contains sub = check Alcotest.bool sub true (contains_sub sarif sub) in
  contains "\"version\": \"2.1.0\"";
  contains "\"ruleId\": \"catch-all\"";
  contains "\"uri\": \"lib/a.ml\"";
  contains "\"startLine\": 3";
  contains "\"startColumn\": 7";
  (* every registry rule ships as a reportingDescriptor *)
  List.iter (fun (id, _) -> contains (Printf.sprintf "\"id\": \"%s\"" id)) L.rules

(* --- the real tree -------------------------------------------------- *)

(* Under `dune runtest` the cwd is _build/default/test and the declared
   deps place the sources one level up; under a bare `dune exec` from
   the repo root they are right here. *)
let repo_root =
  if Sys.file_exists "../tools/lint/allowlist" then ".."
  else if Sys.file_exists "tools/lint/allowlist" then "."
  else Alcotest.fail "cannot locate the repo root (tools/lint/allowlist)"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_catalog_in_sync () =
  check Alcotest.string "doc/LINT.md matches Lint.catalog_md ()"
    (L.catalog_md ())
    (read_file (Filename.concat repo_root "doc/LINT.md"))

let test_clean_tree_passes () =
  let allow =
    L.Allowlist.load (Filename.concat repo_root "tools/lint/allowlist")
  in
  let baseline =
    L.Allowlist.load (Filename.concat repo_root "tools/lint/baseline")
  in
  let diags = L.run ~root:repo_root ~allow ~baseline in
  check
    Alcotest.(list string)
    "evolvelint is clean on the committed tree" []
    (List.map L.to_string diags)

let test_outputs_byte_identical () =
  let load f = L.Allowlist.load (Filename.concat repo_root f) in
  let run () =
    L.run ~root:repo_root
      ~allow:(load "tools/lint/allowlist")
      ~baseline:(load "tools/lint/baseline")
  in
  let d1 = run () and d2 = run () in
  check Alcotest.string "json byte-identical across runs" (L.to_json d1)
    (L.to_json d2);
  check Alcotest.string "sarif byte-identical across runs" (L.to_sarif d1)
    (L.to_sarif d2)

let test_summary_dump_deterministic () =
  let j1 = L.summary_dump ~root:repo_root ~json:true in
  let j2 = L.summary_dump ~root:repo_root ~json:true in
  check Alcotest.string "json dump byte-identical across runs" j1 j2;
  check Alcotest.bool "covers the pump entry point" true
    (contains_sub j1 "Pump.inject");
  check Alcotest.bool "json carries the bounds sites" true
    (contains_sub j1 "\"bounds_sites\"");
  check Alcotest.bool "json carries the spawned callees" true
    (contains_sub j1 "\"spawn_callees\"");
  let t = L.summary_dump ~root:repo_root ~json:false in
  check Alcotest.bool "text dump lists the shared-state inventory" true
    (contains_sub t "# shared state");
  check Alcotest.bool "accessor map sees through asleep_flag" true
    (contains_sub t "Shard.asleep_flag -> Shard.t.asleep");
  check Alcotest.bool "spawned-closure callees listed" true
    (contains_sub t "# spawned-closure callees");
  check Alcotest.bool "bounds site list present" true
    (contains_sub t "# bounds sites")

let test_proven_dump_on_tree () =
  let p1 = L.proven_dump ~root:repo_root in
  let p2 = L.proven_dump ~root:repo_root in
  check Alcotest.string "proven dump byte-identical across runs" p1 p2;
  check Alcotest.bool "data-path unsafe put proven" true
    (contains_sub p1 "Wire.big_put8 proven");
  check Alcotest.bool "checked encap funnel stays unproven" true
    (contains_sub p1 "Wire.big_put8c unproven");
  (* the license invariant CI enforces: every unsafe accessor line in
     the committed tree must be proven *)
  List.iter
    (fun line ->
      if contains_sub line "unsafe_" then
        check Alcotest.bool ("unsafe site licensed: " ^ line) true
          (contains_sub line " proven"))
    (String.split_on_char '\n' p1)

let () =
  Alcotest.run "lint"
    [
      ( "layering",
        [
          Alcotest.test_case "upward edge fires" `Quick test_layering_upward_edge;
          Alcotest.test_case "sideways edge fires" `Quick
            test_layering_sideways_edge;
          Alcotest.test_case "clean graph passes" `Quick test_layering_clean;
          Alcotest.test_case "unknown library fires" `Quick
            test_layering_unknown_library;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "stray Random.int fires" `Quick test_random_direct;
          Alcotest.test_case "rng.ml exemption" `Quick test_random_allowed_in_rng;
          Alcotest.test_case "wall-clock calls fire" `Quick test_forbidden_calls;
          Alcotest.test_case "self_init fires everywhere" `Quick
            test_self_init_forbidden_even_in_rng;
          Alcotest.test_case "unsorted fold fires" `Quick
            test_hashtbl_fold_unsorted;
          Alcotest.test_case "fold |> sort passes" `Quick
            test_hashtbl_fold_piped_into_sort;
          Alcotest.test_case "sort (fold ...) passes" `Quick
            test_hashtbl_fold_inside_sort_application;
          Alcotest.test_case "iter fires" `Quick test_hashtbl_iter_flagged;
          Alcotest.test_case "allowlist exempts" `Quick test_hashtbl_allowlist;
          Alcotest.test_case "stale allowlist entry fires" `Quick
            test_allowlist_stale_entry;
          Alcotest.test_case "parse error reported" `Quick test_parse_error;
        ] );
      ( "interfaces",
        [
          Alcotest.test_case "missing .mli fires" `Quick test_missing_mli;
          Alcotest.test_case "no paper ref fires" `Quick
            test_mli_without_paper_ref;
          Alcotest.test_case "\xC2\xA7 ref passes" `Quick test_mli_with_section_sign;
          Alcotest.test_case "'Section' ref passes" `Quick
            test_mli_with_section_word;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "incomplete experiment fires per artifact" `Quick
            test_experiment_completeness;
          Alcotest.test_case "allowlist exempts artifacts" `Quick
            test_experiment_allowlist;
        ] );
      ( "comparison-safety",
        [
          Alcotest.test_case "float `=` fires then fixed" `Quick
            test_poly_compare_fires_then_fixed;
          Alcotest.test_case "scalar-float ordering exempt" `Quick
            test_float_ordering_exempt;
          Alcotest.test_case "`==` fires then fixed" `Quick
            test_physical_eq_fires_then_fixed;
        ] );
      ( "exception-hygiene",
        [
          Alcotest.test_case "catch-all fires then fixed" `Quick
            test_catch_all_fires_then_fixed;
          Alcotest.test_case "undocumented raise fires then fixed" `Quick
            test_undoc_raise_fires_then_fixed;
        ] );
      ( "hot-path-allocation",
        [
          Alcotest.test_case "per-packet alloc fires then fixed" `Quick
            test_hot_path_alloc_fires_then_fixed;
          Alcotest.test_case "reachability carries the hot set" `Quick
            test_hot_path_reachability;
        ] );
      ( "effect-summaries",
        [
          Alcotest.test_case "per-binding effect classes" `Quick
            test_summary_effects;
          Alcotest.test_case "mutual recursion reaches the fixpoint" `Quick
            test_summary_scc_fixpoint;
          Alcotest.test_case "rng.ml is a sanctioned source" `Quick
            test_rng_sanctioned_source;
        ] );
      ( "shared-state",
        [
          Alcotest.test_case "toplevel container fires then fixed" `Quick
            test_shared_state_fires_then_fixed;
          Alcotest.test_case "mutable record flagged, immutables quiet" `Quick
            test_shared_state_record_and_immutables;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "shared write fires then fixed" `Quick
            test_domain_unsafe_fires_then_fixed;
          Alcotest.test_case "instance-owned mutation proven" `Quick
            test_domain_instance_owned_proven;
          Alcotest.test_case "alias laundering caught" `Quick
            test_domain_alias_laundering;
          Alcotest.test_case "cold module stays quiet" `Quick
            test_domain_cold_module_quiet;
          Alcotest.test_case "functor application edges" `Quick
            test_callgraph_functor_application;
          Alcotest.test_case "first-class module edges" `Quick
            test_callgraph_first_class_module;
        ] );
      ( "determinism-taint",
        [
          Alcotest.test_case "taint surfaces at eN" `Quick
            test_taint_reaches_surface;
          Alcotest.test_case "Report.generate is a surface" `Quick
            test_taint_report_generate_surface;
        ] );
      ( "atomics-protocol",
        [
          Alcotest.test_case "wrong-role write fires then fixed" `Quick
            test_atomic_wrong_writer_fires_then_fixed;
          Alcotest.test_case "publish ordering fires then fixed" `Quick
            test_atomic_publish_ordering_fires_then_fixed;
          Alcotest.test_case "counter stores and spawn order" `Quick
            test_atomic_counter_store_and_spawn_order;
          Alcotest.test_case "non-snapshot read pair fires" `Quick
            test_atomic_non_snapshot_read;
          Alcotest.test_case "allowlist precedence" `Quick
            test_atomic_allowlist_precedence;
          Alcotest.test_case "accessor alias seen through" `Quick
            test_atomic_accessor_alias_seen_through;
          Alcotest.test_case "read-only view write fires" `Quick
            test_atomic_read_only_view_write;
          Alcotest.test_case "coverage and stale table entries" `Quick
            test_atomic_coverage_and_stale_via_real_table;
        ] );
      ( "arena-bounds",
        [
          Alcotest.test_case "provable vs unprovable offset" `Quick
            test_bounds_provable_vs_unprovable;
          Alcotest.test_case "unrooted unsafe still licensed" `Quick
            test_bounds_unrooted_unsafe_still_licensed;
          Alcotest.test_case "checked access is an obligation" `Quick
            test_bounds_checked_access_is_an_obligation;
          Alcotest.test_case "interprocedural discharge" `Quick
            test_bounds_interprocedural_discharge;
          Alcotest.test_case "for-loop range proves" `Quick
            test_bounds_for_loop_range;
          Alcotest.test_case "allowlist precedence" `Quick
            test_bounds_allowlist_precedence;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "baseline suppresses live debt" `Quick
            test_baseline_suppresses_then_goes_stale;
          Alcotest.test_case "stale baseline entry fires" `Quick
            test_stale_baseline_entry_fires;
          Alcotest.test_case "allowlist wins over baseline" `Quick
            test_allowlist_wins_over_baseline;
        ] );
      ( "output",
        [
          Alcotest.test_case "to_string is 1-based" `Quick
            test_to_string_one_based;
          Alcotest.test_case "same-site diagnostics dedupe" `Quick
            test_dedupe_same_site;
          Alcotest.test_case "compare_diag is total" `Quick
            test_compare_diag_total;
          Alcotest.test_case "json shape and escaping" `Quick test_json_output;
          Alcotest.test_case "sarif 2.1.0 shape" `Quick test_sarif_output;
          Alcotest.test_case "doc/LINT.md in sync" `Quick test_catalog_in_sync;
        ] );
      ( "whole-tree",
        [
          Alcotest.test_case "clean tree passes" `Quick test_clean_tree_passes;
          Alcotest.test_case "lint output is deterministic" `Quick
            test_outputs_byte_identical;
          Alcotest.test_case "summary dump is deterministic" `Quick
            test_summary_dump_deterministic;
          Alcotest.test_case "proven dump licenses every unsafe site" `Quick
            test_proven_dump_on_tree;
        ] );
    ]
