(* evolvelint's own tests: each rule family must fire on a violating
   fixture (with a file:line diagnostic) and stay silent on the clean
   tree. Fixtures are parsed from strings — the checks are pure. *)

module L = Lintcore.Lint

let check = Alcotest.check
let empty = L.Allowlist.empty
let has_rule rule diags = List.exists (fun (d : L.diag) -> d.L.rule = rule) diags

let count_rule rule diags =
  List.length (List.filter (fun (d : L.diag) -> d.L.rule = rule) diags)

(* --- layering ------------------------------------------------------- *)

let test_layering_upward_edge () =
  let dune_src =
    "(library\n (name routing)\n (libraries netcore topology simcore fmt))\n"
  in
  let diags = L.check_layering ~dune_files:[ ("lib/routing/dune", dune_src) ] in
  check Alcotest.int "one violation" 1 (count_rule "layering" diags);
  let d = List.find (fun (d : L.diag) -> d.L.rule = "layering") diags in
  check Alcotest.string "file" "lib/routing/dune" d.L.file;
  check Alcotest.int "line of the offending dep" 3 d.L.line

let test_layering_sideways_edge () =
  (* anycast and vnbone are ordered: vnbone may use anycast, never the
     reverse *)
  let dune_src = "(library (name anycast) (libraries vnbone))" in
  let diags = L.check_layering ~dune_files:[ ("lib/anycast/dune", dune_src) ] in
  check Alcotest.bool "sideways/upward dep flagged" true
    (has_rule "layering" diags)

let test_layering_clean () =
  let dune_src =
    "(library\n (name routing)\n (libraries netcore topology fmt))\n"
  in
  check Alcotest.int "no violation" 0
    (List.length (L.check_layering ~dune_files:[ ("lib/routing/dune", dune_src) ]))

let test_layering_unknown_library () =
  let dune_src = "(library (name mystery) (libraries fmt))" in
  let diags = L.check_layering ~dune_files:[ ("lib/mystery/dune", dune_src) ] in
  check Alcotest.bool "unknown lib/ library flagged" true
    (has_rule "layering" diags)

(* --- determinism ---------------------------------------------------- *)

let det ?(allow = empty) ?(path = "lib/core/fixture.ml") src =
  L.check_determinism ~allow ~path src

let test_random_direct () =
  let diags = det "let f () = Random.int 3\n" in
  check Alcotest.int "flagged" 1 (count_rule "random-direct" diags);
  let d = List.hd diags in
  check Alcotest.int "line" 1 d.L.line

let test_random_allowed_in_rng () =
  let diags = det ~path:"lib/topology/rng.ml" "let f () = Random.int 3\n" in
  check Alcotest.int "rng.ml may use Random" 0
    (count_rule "random-direct" diags)

let test_forbidden_calls () =
  let src =
    "let a () = Sys.time ()\n\
     let b () = Unix.gettimeofday ()\n\
     let c () = Hashtbl.randomize ()\n\
     let d () = Random.self_init ()\n"
  in
  check Alcotest.int "all four flagged" 4 (count_rule "forbidden-call" (det src))

let test_self_init_forbidden_even_in_rng () =
  let diags = det ~path:"lib/topology/rng.ml" "let f () = Random.self_init ()\n" in
  check Alcotest.int "self_init flagged in rng.ml too" 1
    (count_rule "forbidden-call" diags)

let test_hashtbl_fold_unsorted () =
  let diags = det "let groups t = Hashtbl.fold (fun g _ acc -> g :: acc) t []\n" in
  check Alcotest.int "escaping fold flagged" 1 (count_rule "hashtbl-order" diags)

let test_hashtbl_fold_piped_into_sort () =
  let src =
    "let groups t =\n\
    \  Hashtbl.fold (fun g _ acc -> g :: acc) t []\n\
    \  |> List.sort compare\n"
  in
  check Alcotest.int "sorted fold passes" 0 (count_rule "hashtbl-order" (det src))

let test_hashtbl_fold_inside_sort_application () =
  let src =
    "let groups t = List.sort_uniq compare (Hashtbl.fold (fun g _ a -> g :: a) t [])\n"
  in
  check Alcotest.int "sort-wrapped fold passes" 0
    (count_rule "hashtbl-order" (det src))

let test_hashtbl_iter_flagged () =
  let diags = det "let sum t r = Hashtbl.iter (fun _ v -> r := !r + v) t\n" in
  check Alcotest.int "iter flagged" 1 (count_rule "hashtbl-order" diags)

let test_hashtbl_allowlist () =
  let allow =
    L.Allowlist.parse ~path:"allowlist"
      "hashtbl-order lib/core/fixture.ml:groups  # verified: set semantics\n"
  in
  let diags =
    det ~allow "let groups t = Hashtbl.fold (fun g _ acc -> g :: acc) t []\n"
  in
  check Alcotest.int "allowlisted site passes" 0
    (count_rule "hashtbl-order" diags);
  check Alcotest.int "entry is not stale" 0 (List.length (L.Allowlist.stale allow))

let test_allowlist_stale_entry () =
  let allow =
    L.Allowlist.parse ~path:"allowlist" "hashtbl-order lib/gone.ml:nothing\n"
  in
  ignore (det ~allow "let f x = x\n");
  check Alcotest.int "unused entry reported" 1
    (count_rule "stale-allowlist" (L.Allowlist.stale allow))

let test_parse_error () =
  check Alcotest.bool "garbage reported" true
    (has_rule "parse-error" (det "let let let\n"))

(* --- interface hygiene ---------------------------------------------- *)

let test_missing_mli () =
  let diags = L.check_missing_mli ~ml:[ "lib/x/a.ml"; "lib/x/b.ml" ] ~mli:[ "lib/x/a.mli" ] in
  check Alcotest.int "one missing interface" 1 (count_rule "missing-mli" diags);
  check Alcotest.string "names the module" "lib/x/b.ml"
    (List.hd diags).L.file

let test_mli_without_paper_ref () =
  let diags =
    L.check_mli_doc ~path:"lib/x/a.mli" "(** A module doing things. *)\nval f : int -> int\n"
  in
  check Alcotest.int "flagged" 1 (count_rule "mli-doc-ref" diags)

let test_mli_with_section_sign () =
  let diags =
    L.check_mli_doc ~path:"lib/x/a.mli"
      "(** Implements the paper's \xC2\xA73.2 anycast options. *)\nval f : int -> int\n"
  in
  check Alcotest.int "\xC2\xA7 reference passes" 0 (List.length diags)

let test_mli_with_section_word () =
  let diags =
    L.check_mli_doc ~path:"lib/x/a.mli"
      "val f : int -> int\n(** See Section 3 of the paper. *)\n"
  in
  check Alcotest.int "'Section' reference passes" 0 (List.length diags)

(* --- experiment completeness ---------------------------------------- *)

(* e1 has all seven artifacts; e2 is missing cli, bench, report, docs
   and test. *)
let fixture_sources =
  {
    L.experiments_ml =
      ( "lib/core/experiments.ml",
        "type e1_row = { x : int }\n\
         let e1_sweep () = []\n\
         let print_e1 _ = ()\n\
         type e2_row = { y : int }\n\
         let e2_sweep () = []\n\
         let print_e2 _ = ()\n" );
    L.bin_ml =
      ("bin/evolvenet.ml", "let run = function \"e1\" -> () | _ -> ()\n");
    L.bench_ml = ("bench/main.ml", "let () = print_e1 []\n");
    L.report_ml = ("lib/core/report.ml", "let s = \"E1 \xE2\x80\x94 sweep\"\n");
    L.test_ml = ("test/test_experiments.ml", "let suites = [ (\"e1\", []) ]\n");
    L.experiments_md = ("EXPERIMENTS.md", "## E1 \xE2\x80\x94 the sweep\n");
  }

let test_experiment_completeness () =
  let diags = L.check_experiments ~allow:empty fixture_sources in
  let mentions n =
    List.length
      (List.filter
         (fun (d : L.diag) ->
           d.L.rule = "experiment-artifacts"
           &&
           let pre = Printf.sprintf "e%d is missing" n in
           String.length d.L.msg >= String.length pre
           && String.sub d.L.msg 0 (String.length pre) = pre)
         diags)
  in
  check Alcotest.int "e1 complete" 0 (mentions 1);
  check Alcotest.int "e2 missing five artifacts" 5 (mentions 2)

let test_experiment_allowlist () =
  let allow =
    L.Allowlist.parse ~path:"allowlist"
      "experiment-artifacts lib/core/experiments.ml:e2.cli\n\
       experiment-artifacts lib/core/experiments.ml:e2.bench\n\
       experiment-artifacts lib/core/experiments.ml:e2.report\n\
       experiment-artifacts lib/core/experiments.ml:e2.docs\n\
       experiment-artifacts lib/core/experiments.ml:e2.test\n"
  in
  let diags = L.check_experiments ~allow fixture_sources in
  check Alcotest.int "all exemptions honoured" 0
    (count_rule "experiment-artifacts" diags)

(* --- the real tree -------------------------------------------------- *)

(* Under `dune runtest` the cwd is _build/default/test and the declared
   deps place the sources one level up; under a bare `dune exec` from
   the repo root they are right here. *)
let repo_root =
  if Sys.file_exists "../tools/lint/allowlist" then ".."
  else if Sys.file_exists "tools/lint/allowlist" then "."
  else Alcotest.fail "cannot locate the repo root (tools/lint/allowlist)"

let test_clean_tree_passes () =
  let allow =
    L.Allowlist.load (Filename.concat repo_root "tools/lint/allowlist")
  in
  let diags = L.run ~root:repo_root ~allow in
  check
    Alcotest.(list string)
    "evolvelint is clean on the committed tree" []
    (List.map L.to_string diags)

let () =
  Alcotest.run "lint"
    [
      ( "layering",
        [
          Alcotest.test_case "upward edge fires" `Quick test_layering_upward_edge;
          Alcotest.test_case "sideways edge fires" `Quick
            test_layering_sideways_edge;
          Alcotest.test_case "clean graph passes" `Quick test_layering_clean;
          Alcotest.test_case "unknown library fires" `Quick
            test_layering_unknown_library;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "stray Random.int fires" `Quick test_random_direct;
          Alcotest.test_case "rng.ml exemption" `Quick test_random_allowed_in_rng;
          Alcotest.test_case "wall-clock calls fire" `Quick test_forbidden_calls;
          Alcotest.test_case "self_init fires everywhere" `Quick
            test_self_init_forbidden_even_in_rng;
          Alcotest.test_case "unsorted fold fires" `Quick
            test_hashtbl_fold_unsorted;
          Alcotest.test_case "fold |> sort passes" `Quick
            test_hashtbl_fold_piped_into_sort;
          Alcotest.test_case "sort (fold ...) passes" `Quick
            test_hashtbl_fold_inside_sort_application;
          Alcotest.test_case "iter fires" `Quick test_hashtbl_iter_flagged;
          Alcotest.test_case "allowlist exempts" `Quick test_hashtbl_allowlist;
          Alcotest.test_case "stale allowlist entry fires" `Quick
            test_allowlist_stale_entry;
          Alcotest.test_case "parse error reported" `Quick test_parse_error;
        ] );
      ( "interfaces",
        [
          Alcotest.test_case "missing .mli fires" `Quick test_missing_mli;
          Alcotest.test_case "no paper ref fires" `Quick
            test_mli_without_paper_ref;
          Alcotest.test_case "\xC2\xA7 ref passes" `Quick test_mli_with_section_sign;
          Alcotest.test_case "'Section' ref passes" `Quick
            test_mli_with_section_word;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "incomplete experiment fires per artifact" `Quick
            test_experiment_completeness;
          Alcotest.test_case "allowlist exempts artifacts" `Quick
            test_experiment_allowlist;
        ] );
      ( "whole-tree",
        [ Alcotest.test_case "clean tree passes" `Quick test_clean_tree_passes ] );
    ]
