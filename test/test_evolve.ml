(* Tests for the evolve framework: orchestration, adoption dynamics,
   revenue accounting, table rendering. *)

module Internet = Topology.Internet
module Service = Anycast.Service
module Setup = Evolve.Setup
module Adoption = Evolve.Adoption
module Revenue = Evolve.Revenue
module Table = Evolve.Table
module Transport = Vnbone.Transport
module Router = Vnbone.Router

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)

let test_setup_end_to_end () =
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  Setup.deploy setup ~domain:5;
  Setup.deploy setup ~domain:9;
  check Alcotest.(list int) "participants" [ 5; 9 ]
    (Service.participants (Setup.service setup));
  let j = Setup.send setup ~strategy:Router.Bgp_aware ~src:0 ~dst:50 () in
  check Alcotest.bool "delivered" true (Transport.delivered j)

let test_setup_fraction_deploy () =
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  let inet = Setup.internet setup in
  let n = Array.length (Internet.domain inet 5).Internet.router_ids in
  Setup.deploy ~fraction:0.5 setup ~domain:5;
  let members = Service.members (Setup.service setup) in
  check Alcotest.int "half the routers" ((n + 1) / 2) (List.length members);
  Alcotest.check_raises "fraction range"
    (Invalid_argument "Setup.deploy: fraction outside (0, 1]") (fun () ->
      Setup.deploy ~fraction:0.0 setup ~domain:6)

let test_setup_router_cache_invalidation () =
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  Setup.deploy setup ~domain:5;
  let f1 = Router.fabric (Setup.router setup) in
  let f1' = Router.fabric (Setup.router setup) in
  check Alcotest.bool "cached between deployments" true (f1 == f1');
  Setup.deploy setup ~domain:9;
  let f2 = Router.fabric (Setup.router setup) in
  check Alcotest.bool "rebuilt after deploy" false (f1 == f2);
  check Alcotest.int "new fabric covers both domains"
    (List.length (Service.members (Setup.service setup)))
    (Array.length (Vnbone.Fabric.members f2))

let test_setup_payload_preserved () =
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  Setup.deploy setup ~domain:7;
  let j =
    Setup.send setup ~strategy:Router.Proxy ~src:3 ~dst:44
      ~payload:"the-actual-bytes" ()
  in
  check Alcotest.bool "delivered" true (Transport.delivered j);
  check Alcotest.string "payload rides the journey" "the-actual-bytes"
    j.Transport.packet.Netcore.Packet.body;
  check Alcotest.int "packet tagged with the generation" 8
    j.Transport.packet.Netcore.Packet.version

let test_setup_undeploy () =
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  Setup.deploy setup ~domain:5;
  Setup.deploy setup ~domain:9;
  Setup.undeploy setup ~domain:5;
  check Alcotest.(list int) "one left" [ 9 ]
    (Service.participants (Setup.service setup))

let test_setup_gia_on_preferential_attachment () =
  (* cross-feature coverage: GIA anycast over a heavy-tailed internet *)
  let inet = Internet.build_ba Internet.default_ba_params in
  let setup =
    Setup.of_internet inet ~version:8
      ~strategy:(Service.Gia { home_domain = 0; radius = 1 })
  in
  List.iter (fun d -> Setup.deploy setup ~domain:d) [ 0; 12; 25 ];
  let service = Setup.service setup in
  check (Alcotest.float 1e-9) "universal delivery" 1.0
    (Anycast.Metrics.delivery_rate service);
  (* journeys work across the heavy-tailed graph too *)
  let j = Setup.send setup ~strategy:Router.Proxy ~src:1 ~dst:100 () in
  check Alcotest.bool "journey delivered" true (Transport.delivered j)

let test_setup_mixed_igp_fib_agreement () =
  (* compiled FIBs must match on-the-fly decisions in DV domains too *)
  let inet = Internet.build Internet.default_params in
  let env =
    Simcore.Forward.make_env
      ~flavor_of:(fun d ->
        if d mod 3 = 0 then Routing.Igp.Distvec_igp else Routing.Igp.Linkstate_igp)
      inet
  in
  let fib = Simcore.Fib.compile env in
  let rng = Topology.Rng.create 77L in
  let samples =
    List.init 200 (fun _ ->
        let entry = Topology.Rng.int rng (Internet.num_routers inet) in
        let h =
          Topology.Rng.int rng (Array.length inet.Internet.endhosts)
        in
        (entry, (Internet.endhost inet h).Internet.haddr))
  in
  match Simcore.Fib.agrees_with_decide fib env ~samples with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Adoption                                                            *)

let test_adoption_deterministic () =
  let a = Adoption.run Adoption.default_params in
  let b = Adoption.run Adoption.default_params in
  check Alcotest.bool "same trajectory" true (a = b)

let test_adoption_point_count () =
  let p = { Adoption.default_params with Adoption.steps = 42 } in
  check Alcotest.int "steps+1 points" 43 (List.length (Adoption.run p))

let test_adoption_ua_tips_gated_stalls () =
  let run ua =
    Adoption.run { Adoption.default_params with Adoption.universal_access = ua }
  in
  let ua = run true and gated = run false in
  check Alcotest.bool "UA tips" true (Adoption.tipped ua);
  check Alcotest.bool "gated never tips" false (Adoption.tipped gated);
  check Alcotest.bool "gated apps stay dark" true
    ((Adoption.final gated).Adoption.app_fraction < 0.05);
  check Alcotest.bool "UA time-to-tip defined" true
    (Adoption.time_to_tip ua <> None)

let test_adoption_monotone_fractions () =
  let points = Adoption.run Adoption.default_params in
  let rec monotone = function
    | a :: (b : Adoption.point) :: rest ->
        a.Adoption.isp_fraction <= b.Adoption.isp_fraction
        && a.Adoption.app_fraction <= b.Adoption.app_fraction
        && monotone (b :: rest)
    | _ -> true
  in
  check Alcotest.bool "adoption never reverses" true (monotone points)

let test_adoption_reachability_semantics () =
  let points =
    Adoption.run { Adoption.default_params with Adoption.universal_access = true }
  in
  List.iter
    (fun (pt : Adoption.point) ->
      (* with UA, one deployer makes everyone reachable *)
      if pt.Adoption.isp_fraction > 0.0 then
        check (Alcotest.float 1e-9) "UA reach" 1.0 pt.Adoption.reachable_users)
    points;
  let gated =
    Adoption.run { Adoption.default_params with Adoption.universal_access = false }
  in
  List.iter
    (fun (pt : Adoption.point) ->
      check (Alcotest.float 1e-9) "gated reach = deployer share"
        pt.Adoption.deployer_user_share pt.Adoption.reachable_users)
    gated

let prop_adoption_ua_dominates =
  QCheck.Test.make ~name:"UA final adoption >= gated (any seed)" ~count:20
    QCheck.(int_bound 100000)
    (fun seed ->
      let base = { Adoption.default_params with Adoption.seed = Int64.of_int seed } in
      let final ua =
        (Adoption.final (Adoption.run { base with Adoption.universal_access = ua }))
          .Adoption.isp_fraction
      in
      final true >= final false)

(* ------------------------------------------------------------------ *)
(* Revenue                                                             *)

let test_revenue_deployers_attract_traffic () =
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  Setup.deploy setup ~domain:5;
  Setup.deploy setup ~domain:9;
  let inet = Setup.internet setup in
  let pairs = Revenue.random_pairs inet ~seed:3L ~count:60 in
  let report =
    Revenue.traffic_report (Setup.router setup) ~strategy:Router.Bgp_aware ~pairs
  in
  check Alcotest.int "attempted" 60 report.Revenue.attempted;
  check Alcotest.bool "mostly delivered" true
    (report.Revenue.delivered > 50);
  check Alcotest.(list int) "deployers recorded" [ 5; 9 ] report.Revenue.deployers;
  (* assumption A4 made visible: deployers carry more IPvN traffic *)
  check Alcotest.bool "deployers out-earn non-deployers" true
    (report.Revenue.deployer_mean > report.Revenue.non_deployer_mean)

let test_revenue_pairs_are_valid () =
  let inet = Internet.build Internet.default_params in
  let pairs = Revenue.random_pairs inet ~seed:1L ~count:100 in
  check Alcotest.int "count" 100 (List.length pairs);
  let hn = Array.length inet.Internet.endhosts in
  List.iter
    (fun (s, d) ->
      check Alcotest.bool "distinct" true (s <> d);
      check Alcotest.bool "in range" true (s >= 0 && s < hn && d >= 0 && d < hn))
    pairs

(* ------------------------------------------------------------------ *)
(* Traffic                                                             *)

module Traffic = Evolve.Traffic

let test_traffic_populations_normalized () =
  let inet = Internet.build Internet.default_params in
  List.iter
    (fun model ->
      let t = Traffic.create inet model ~seed:1L in
      let total =
        List.fold_left
          (fun acc d -> acc +. Traffic.population t d)
          0.0
          (List.init (Internet.num_domains inet) Fun.id)
      in
      check (Alcotest.float 1e-9) "sums to 1" 1.0 total)
    [ Traffic.Uniform; Traffic.Gravity { zipf_s = 1.0 } ]

let test_traffic_gravity_skews () =
  let inet = Internet.build Internet.default_params in
  let g = Traffic.create inet (Traffic.Gravity { zipf_s = 1.0 }) ~seed:1L in
  check Alcotest.bool "zipf head heavier than tail" true
    (Traffic.population g 0 > Traffic.population g (Internet.num_domains inet - 1));
  (* sampled flows reflect the skew: domain 0 endpoints appear more
     often than under the uniform model *)
  let share_of_domain t =
    let flows = Traffic.sample_flows t ~count:400 in
    let hits =
      List.length
        (List.filter
           (fun (s, d) ->
             (Internet.endhost inet s).Internet.hdomain = 0
             || (Internet.endhost inet d).Internet.hdomain = 0)
           flows)
    in
    float_of_int hits
  in
  let u = Traffic.create inet Traffic.Uniform ~seed:2L in
  check Alcotest.bool "gravity oversamples the head domain" true
    (share_of_domain g > share_of_domain u)

let test_traffic_flows_valid () =
  let inet = Internet.build Internet.default_params in
  let t = Traffic.create inet (Traffic.Gravity { zipf_s = 1.2 }) ~seed:3L in
  let flows = Traffic.sample_flows t ~count:200 in
  check Alcotest.int "count" 200 (List.length flows);
  let hn = Array.length inet.Internet.endhosts in
  List.iter
    (fun (s, d) ->
      check Alcotest.bool "distinct" true (s <> d);
      check Alcotest.bool "in range" true (s >= 0 && s < hn && d >= 0 && d < hn))
    flows

let test_e16_attraction_premium () =
  let rows = Evolve.Experiments.e16_revenue_gravity ~flows:80 () in
  List.iter
    (fun (r : Evolve.Experiments.e16_row) ->
      check Alcotest.bool ("premium > 1: " ^ r.Evolve.Experiments.picker) true
        (r.Evolve.Experiments.attraction_premium > 1.0))
    rows

(* ------------------------------------------------------------------ *)
(* Dot                                                                 *)

module Dot = Evolve.Dot

let count_substring needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_dot_domain_graph () =
  let inet = Internet.build Internet.default_params in
  let dot = Dot.domain_graph inet in
  check Alcotest.bool "graph header" true
    (String.length dot > 10 && String.sub dot 0 7 = "graph G");
  check Alcotest.int "one node per domain" (Internet.num_domains inet)
    (count_substring "[label=\"AS" dot);
  check Alcotest.int "one edge per interlink"
    (List.length inet.Internet.interlinks)
    (count_substring " -- " dot);
  check Alcotest.int "balanced braces" (count_substring "{" dot)
    (count_substring "}" dot)

let test_dot_write_file_roundtrip () =
  let path = Filename.temp_file "evolvenet" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let contents = Dot.domain_graph (Internet.build Internet.default_params) in
      Dot.write_file ~path contents;
      let ic = open_in path in
      let n = in_channel_length ic in
      let read = really_input_string ic n in
      close_in ic;
      check Alcotest.bool "file holds the rendering" true (read = contents))

let test_dot_fabric_highlights_members () =
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  Setup.deploy setup ~domain:5;
  Setup.deploy setup ~domain:9;
  let dot = Dot.fabric (Setup.fabric setup) in
  let members = List.length (Service.members (Setup.service setup)) in
  check Alcotest.int "members highlighted" members
    (count_substring "fillcolor=gold" dot);
  check Alcotest.bool "tunnels drawn" true (count_substring "color=blue" dot > 0)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

module Stats = Evolve.Stats

let test_stats_summary () =
  let s = Stats.summarize [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check Alcotest.int "n" 8 s.Stats.n;
  check (Alcotest.float 1e-9) "mean" 5.0 s.Stats.mean;
  check (Alcotest.float 1e-6) "sample stddev" 2.138089935 s.Stats.stddev;
  (* ci95 = t(7) * s / sqrt(8) = 2.365 * 2.138 / 2.828 *)
  check (Alcotest.float 1e-3) "ci95" 1.7878 s.Stats.ci95

let test_stats_edge_cases () =
  let empty = Stats.summarize [] in
  check Alcotest.bool "empty is nan" true (Float.is_nan empty.Stats.mean);
  let single = Stats.summarize [ 42.0 ] in
  check (Alcotest.float 1e-9) "singleton mean" 42.0 single.Stats.mean;
  check (Alcotest.float 1e-9) "singleton ci" 0.0 single.Stats.ci95;
  check Alcotest.string "render" "42.00 +/- 0.00" (Stats.to_string single)

let test_stats_t_table () =
  check (Alcotest.float 1e-3) "df=1" 12.706 (Stats.t_critical_95 1);
  check (Alcotest.float 1e-3) "df=10" 2.228 (Stats.t_critical_95 10);
  check (Alcotest.float 1e-3) "df large" 1.96 (Stats.t_critical_95 1000)

let prop_stats_ci_shrinks =
  QCheck.Test.make ~name:"ci narrows as n grows (same spread)" ~count:50
    QCheck.(int_range 3 20)
    (fun n ->
      let sample k = List.init k (fun i -> float_of_int (i mod 3)) in
      let a = Stats.summarize (sample n) in
      let b = Stats.summarize (sample (4 * n)) in
      b.Stats.ci95 <= a.Stats.ci95 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Engine-driven continuity (the live_evolution example, asserted)     *)

let test_staged_rollout_is_continuous () =
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  let service = Setup.service setup in
  let engine = Simcore.Engine.create () in
  let horizon = 200.0 in
  let rng = Topology.Rng.create 99L in
  let inet = Setup.internet setup in
  for d = 0 to Internet.num_domains inet - 1 do
    Simcore.Engine.schedule engine
      ~delay:(Topology.Rng.float rng horizon)
      (fun _ -> Setup.deploy setup ~domain:d)
  done;
  let drops = ref 0 and first = ref None and last = ref None in
  let rec probe engine =
    let t = Simcore.Engine.now engine in
    (if List.length (Service.participants service) > 0 then
       match Anycast.Metrics.actual service ~endhost:5 with
       | Some (_, metric) ->
           if !first = None then first := Some metric;
           last := Some metric
       | None -> incr drops);
    if t +. 2.0 <= horizon then Simcore.Engine.schedule engine ~delay:2.0 probe
  in
  Simcore.Engine.schedule engine ~delay:1.0 probe;
  ignore (Simcore.Engine.run engine);
  check Alcotest.int "no outage during rollout" 0 !drops;
  match (!first, !last) with
  | Some f, Some l ->
      check Alcotest.bool "redirection improved or held" true (l <= f +. 1e-9)
  | _ -> Alcotest.fail "no successful probes"

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let test_report_deterministic_and_complete () =
  (* byte-identical across reruns AND across shard counts: the
     EVOLVENET_SHARDS knob (CI runs the suite once with it set to 4)
     must never leak into a generated report — everything the sharded
     data plane contributes to E33 is order-independent (DESIGN.md
     §11), so the report cannot depend on how many domains ran it *)
  Unix.putenv "EVOLVENET_SHARDS" "1";
  let a = Evolve.Report.generate () in
  Unix.putenv "EVOLVENET_SHARDS" "4";
  let b = Evolve.Report.generate () in
  check Alcotest.bool "deterministic" true (a = b);
  List.iter
    (fun needle ->
      check Alcotest.bool ("contains " ^ needle) true
        (let nl = String.length needle and hl = String.length a in
         let rec go i =
           i + nl <= hl && (String.sub a i nl = needle || go (i + 1))
         in
         go 0))
    [ "Figure 1"; "Figure 4"; "E1 "; "E23 "; "E33 "; "advertise-by-proxy" ]

(* ------------------------------------------------------------------ *)
(* Table                                                               *)

let test_table_render () =
  let out =
    Table.render ~header:[ "a"; "long-column" ]
      ~rows:[ [ "xxxx"; "1" ]; [ "y"; "2" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "header+rule+rows" 4
    (List.length (List.filter (fun l -> l <> "") lines));
  (* all non-rule lines align on the second column *)
  (match lines with
  | header :: _rule :: row :: _ ->
      let col s = String.index s (if s = header then 'l' else '1') in
      check Alcotest.int "aligned columns" (String.index header 'l') (col row)
  | _ -> Alcotest.fail "unexpected shape")

let test_table_formatting () =
  check Alcotest.string "ff" "1.25" (Table.ff 1.25);
  check Alcotest.string "ff nan" "-" (Table.ff nan);
  check Alcotest.string "ff inf" "inf" (Table.ff infinity);
  check Alcotest.string "fpct" "50.0%" (Table.fpct 0.5);
  check Alcotest.string "fi" "42" (Table.fi 42);
  check Alcotest.string "fb" "true" (Table.fb true)

let () =
  Alcotest.run "evolve"
    [
      ( "setup",
        [
          Alcotest.test_case "end to end" `Quick test_setup_end_to_end;
          Alcotest.test_case "fractional deployment" `Quick test_setup_fraction_deploy;
          Alcotest.test_case "router cache invalidation" `Quick
            test_setup_router_cache_invalidation;
          Alcotest.test_case "undeploy" `Quick test_setup_undeploy;
          Alcotest.test_case "payload preserved" `Quick test_setup_payload_preserved;
          Alcotest.test_case "GIA on preferential attachment" `Quick
            test_setup_gia_on_preferential_attachment;
          Alcotest.test_case "mixed-IGP FIB agreement" `Quick
            test_setup_mixed_igp_fib_agreement;
        ] );
      ( "adoption",
        [
          Alcotest.test_case "deterministic" `Quick test_adoption_deterministic;
          Alcotest.test_case "point count" `Quick test_adoption_point_count;
          Alcotest.test_case "UA tips, gated stalls" `Quick
            test_adoption_ua_tips_gated_stalls;
          Alcotest.test_case "monotone adoption" `Quick test_adoption_monotone_fractions;
          Alcotest.test_case "reachability semantics" `Quick
            test_adoption_reachability_semantics;
          qcheck prop_adoption_ua_dominates;
        ] );
      ( "revenue",
        [
          Alcotest.test_case "deployers attract traffic" `Quick
            test_revenue_deployers_attract_traffic;
          Alcotest.test_case "pair sampling" `Quick test_revenue_pairs_are_valid;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "normalized populations" `Quick
            test_traffic_populations_normalized;
          Alcotest.test_case "gravity skews sampling" `Quick test_traffic_gravity_skews;
          Alcotest.test_case "valid flows" `Quick test_traffic_flows_valid;
          Alcotest.test_case "attraction premium (E16)" `Quick
            test_e16_attraction_premium;
        ] );
      ( "dot",
        [
          Alcotest.test_case "domain graph" `Quick test_dot_domain_graph;
          Alcotest.test_case "write_file roundtrip" `Quick test_dot_write_file_roundtrip;
          Alcotest.test_case "fabric highlights members" `Quick
            test_dot_fabric_highlights_members;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "edge cases" `Quick test_stats_edge_cases;
          Alcotest.test_case "t table" `Quick test_stats_t_table;
          qcheck prop_stats_ci_shrinks;
        ] );
      ( "dynamics",
        [
          Alcotest.test_case "staged rollout continuity" `Quick
            test_staged_rollout_is_continuous;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formatting" `Quick test_table_formatting;
        ] );
      ( "report",
        [
          Alcotest.test_case "deterministic and complete" `Slow
            test_report_deterministic_and_complete;
        ] );
    ]
