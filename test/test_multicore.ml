(* Tests for the sharded multicore data plane (DESIGN.md §11): the
   SPSC ring must be a faithful FIFO under concurrent producers and
   consumers, the shard map a total contiguous partition, the arena
   wire path byte-equal to the string encoder, and the domain pool's
   verdicts identical to the serial pump oracle at every shard
   count — with a one-shard pool matching the pump's telemetry field
   for field, cache statistics included. *)

module Internet = Topology.Internet
module Forward = Simcore.Forward
module Workload = Dataplane.Workload
module Telemetry = Dataplane.Telemetry
module Pump = Dataplane.Pump
module Packet = Netcore.Packet
module Ipv4 = Netcore.Ipv4
module Wire = Netcore.Wire
module Arena = Netcore.Arena
module Ring = Multicore.Ring
module Shardmap = Multicore.Shardmap
module Shard = Multicore.Shard
module Domainpool = Multicore.Domainpool

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ---------------------------------------------------------------- *)
(* Ring                                                              *)

let test_ring_fifo_serial () =
  let r = Ring.create ~capacity:8 ~dummy:(-1) in
  check Alcotest.bool "fresh ring is empty" true (Ring.is_empty r);
  for i = 0 to 7 do
    check Alcotest.bool (Printf.sprintf "push %d" i) true (Ring.push r i)
  done;
  check Alcotest.int "full length" 8 (Ring.length r);
  check Alcotest.bool "push beyond capacity refused" false (Ring.push r 99);
  for i = 0 to 7 do
    check Alcotest.int (Printf.sprintf "pop %d in order" i) i (Ring.pop r)
  done;
  check Alcotest.bool "drained" true (Ring.is_empty r);
  Alcotest.check_raises "pop on empty raises"
    (Invalid_argument "Ring.pop: empty") (fun () -> ignore (Ring.pop r))

let test_ring_capacity_rounding () =
  let r = Ring.create ~capacity:5 ~dummy:0 in
  check Alcotest.int "capacity rounds up to a power of two" 8 (Ring.capacity r)

let test_ring_backpressure () =
  (* a producer against a full ring must spin, not lose items: the
     consumer drains one, exactly one push succeeds *)
  let r = Ring.create ~capacity:4 ~dummy:(-1) in
  for i = 0 to 3 do
    ignore (Ring.push r i)
  done;
  check Alcotest.bool "full ring refuses" false (Ring.push r 4);
  check Alcotest.int "head preserved" 0 (Ring.pop r);
  check Alcotest.bool "freed slot accepts" true (Ring.push r 4);
  check Alcotest.bool "full again refuses" false (Ring.push r 5);
  let got = List.init 4 (fun _ -> Ring.pop r) in
  check Alcotest.(list int) "FIFO across the wrap" [ 1; 2; 3; 4 ] got

(* The SPSC contract under real parallelism: one producer domain, one
   consumer domain, every pushed value arrives exactly once and in
   order. Retries on both sides exercise the full/empty transitions. *)
let prop_ring_spsc =
  QCheck.Test.make ~name:"ring: concurrent SPSC keeps FIFO, no loss/dup"
    ~count:30
    QCheck.(pair (int_range 1 6) (int_range 1 512))
    (fun (cap_log, n) ->
      let r = Ring.create ~capacity:(1 lsl cap_log) ~dummy:(-1) in
      let producer =
        Domain.spawn (fun () ->
            for i = 0 to n - 1 do
              while not (Ring.push r i) do
                Domain.cpu_relax ()
              done
            done)
      in
      let got = ref [] in
      let remaining = ref n in
      while !remaining > 0 do
        if Ring.is_empty r then Domain.cpu_relax ()
        else begin
          got := Ring.pop r :: !got;
          decr remaining
        end
      done;
      Domain.join producer;
      Ring.is_empty r && List.rev !got = List.init n Fun.id)

(* Four domains in a relay: main pushes into ring 0, three spawned
   stages each pop their inbox and push their outbox, main drains the
   last ring. Every ring keeps exactly one producer and one consumer
   (the SPSC contract), but all four run concurrently, so the
   occupancy assertions inside push/pop — the debug checks the
   atomics-protocol roles license — are exercised under real
   cross-domain timing, including the full/empty spins at tiny
   capacities. *)
let prop_ring_relay_4domains =
  QCheck.Test.make ~name:"ring: 4-domain relay preserves FIFO end to end"
    ~count:20
    QCheck.(pair (int_range 1 4) (int_range 1 256))
    (fun (cap_log, n) ->
      let mk () = Ring.create ~capacity:(1 lsl cap_log) ~dummy:(-1) in
      let rings = Array.init 3 (fun _ -> mk ()) in
      let stage inbox outbox () =
        for _ = 0 to n - 1 do
          while Ring.is_empty inbox do
            Domain.cpu_relax ()
          done;
          let v = Ring.pop inbox in
          while not (Ring.push outbox v) do
            Domain.cpu_relax ()
          done
        done
      in
      let d1 = Domain.spawn (stage rings.(0) rings.(1)) in
      let d2 = Domain.spawn (stage rings.(1) rings.(2)) in
      let got = ref [] in
      let d3 =
        Domain.spawn (fun () ->
            for _ = 0 to n - 1 do
              while Ring.is_empty rings.(2) do
                Domain.cpu_relax ()
              done;
              got := Ring.pop rings.(2) :: !got
            done)
      in
      for i = 0 to n - 1 do
        while not (Ring.push rings.(0) i) do
          Domain.cpu_relax ()
        done
      done;
      Domain.join d1;
      Domain.join d2;
      Domain.join d3;
      Array.for_all Ring.is_empty rings
      && List.rev !got = List.init n Fun.id)

(* ---------------------------------------------------------------- *)
(* Shardmap                                                          *)

let test_shardmap_partition () =
  List.iter
    (fun (routers, shards) ->
      let m = Shardmap.create ~routers ~shards in
      (* totality: every router lands in exactly the shard whose
         contiguous range contains it *)
      for r = 0 to routers - 1 do
        let s = Shardmap.shard_of m r in
        check Alcotest.bool "shard id in range" true (s >= 0 && s < shards);
        let lo, hi = Shardmap.range m s in
        check Alcotest.bool
          (Printf.sprintf "router %d inside its shard's range" r)
          true
          (r >= lo && r < hi)
      done;
      (* contiguity: ranges tile [0, routers) without gap or overlap *)
      let covered = ref 0 in
      for s = 0 to shards - 1 do
        let lo, hi = Shardmap.range m s in
        check Alcotest.int
          (Printf.sprintf "shard %d starts where %d ended" s (s - 1))
          !covered lo;
        check Alcotest.bool "range non-decreasing" true (hi >= lo);
        covered := hi
      done;
      check Alcotest.int "ranges cover every router" routers !covered)
    [ (1, 1); (7, 3); (8, 8); (72, 8); (100, 7); (64, 4) ]

let test_shardmap_validation () =
  Alcotest.check_raises "zero shards refused"
    (Invalid_argument "Shardmap.create: shards must be in [1, routers]")
    (fun () -> ignore (Shardmap.create ~routers:4 ~shards:0));
  Alcotest.check_raises "more shards than routers refused"
    (Invalid_argument "Shardmap.create: shards must be in [1, routers]")
    (fun () -> ignore (Shardmap.create ~routers:4 ~shards:5))

(* ---------------------------------------------------------------- *)
(* Arena wire path                                                   *)

let test_arena_roundtrip () =
  let a = Arena.create ~bytes:4096 in
  let packets =
    [
      Packet.make_data ~src:(Ipv4.of_int 1) ~dst:(Ipv4.of_int 2) "hello";
      Packet.make_data ~src:(Ipv4.of_int 3) ~dst:(Ipv4.of_int 4) "";
      Packet.make_data ~src:(Ipv4.of_int 0xCAFE) ~dst:(Ipv4.of_int 0xBEEF)
        (String.make 200 'z');
    ]
  in
  List.iter
    (fun p ->
      let len = Wire.wire_length p in
      let off = Wire.encode_into p a in
      let buf = Arena.buf a in
      (* the slab bytes are exactly the string encoding *)
      let s = Wire.encode p in
      check Alcotest.int "wire_length matches encoding" (String.length s) len;
      for i = 0 to len - 1 do
        check Alcotest.char
          (Printf.sprintf "byte %d" i)
          s.[i]
          (Bigarray.Array1.get buf (off + i))
      done;
      (* peeks agree with the decoded packet *)
      check Alcotest.int "peeked dst"
        (Ipv4.to_int p.Packet.dst)
        (Ipv4.to_int (Wire.peek_dst_big buf ~off ~len ~default:(Ipv4.of_int 0)));
      check Alcotest.int "peeked ttl" p.Packet.ttl
        (Wire.peek_ttl_big buf ~off ~len ~default:(-1));
      match Wire.decode_big buf ~off ~len with
      | Ok q -> check Alcotest.bool "decode_big roundtrips" true (p = q)
      | Error e -> Alcotest.failf "decode_big failed: %s" e)
    packets

let test_arena_exhaustion () =
  let a = Arena.create ~bytes:8 in
  check Alcotest.int "first alloc at offset 0" 0 (Arena.alloc a 8);
  check Alcotest.int "exhausted alloc returns -1" (-1) (Arena.alloc a 1);
  Arena.reset a;
  check Alcotest.int "reset rewinds the cursor" 0 (Arena.alloc a 4);
  Alcotest.check_raises "ensure with bytes in flight raises"
    (Invalid_argument "Arena.ensure: arena in use") (fun () ->
      Arena.ensure a ~bytes:1024)

let test_pump_slab_equals_heap () =
  (* the arena-backed pump path must leave telemetry exactly where the
     string path does — same verdicts, same cache statistics *)
  let inet = Internet.build Internet.default_params in
  let env = Forward.make_env inet in
  let wl =
    Workload.create inet (Workload.Gravity { zipf_s = 1.2 }) ~seed:5L
      ~packets_per_flow:4
  in
  let flows = Workload.batch wl ~count:64 in
  let heap = Pump.create env in
  Pump.run_batch_in heap Pump.Heap flows;
  let slab = Pump.create env in
  Pump.run_batch_in slab (Pump.Slab (Arena.create ~bytes:0)) flows;
  let th = Pump.telemetry heap and ts = Pump.telemetry slab in
  check Alcotest.int "router counts" (Telemetry.num_routers th)
    (Telemetry.num_routers ts);
  for r = 0 to Telemetry.num_routers th - 1 do
    check Alcotest.bool
      (Printf.sprintf "router %d counters equal" r)
      true
      (Telemetry.router th r = Telemetry.router ts r)
  done

(* ---------------------------------------------------------------- *)
(* Domainpool vs the serial pump oracle                              *)

let pool_fixture =
  lazy
    (let inet = Internet.build Internet.default_params in
     let env = Forward.make_env inet in
     let wl =
       Workload.create inet (Workload.Gravity { zipf_s = 1.2 }) ~seed:11L
         ~packets_per_flow:8
     in
     let flows = Workload.batch wl ~count:512 in
     let pump = Pump.create env in
     Pump.run_batch pump flows;
     (env, flows, pump))

let verdict t =
  let c = Telemetry.total t in
  ( c.Telemetry.packets,
    c.Telemetry.bytes,
    c.Telemetry.encap_bytes,
    c.Telemetry.delivered,
    c.Telemetry.dropped,
    c.Telemetry.ttl_expired )

let test_pool_one_shard_equals_pump () =
  let env, flows, pump = Lazy.force pool_fixture in
  let pool = Domainpool.create env ~shards:1 ~seed:11L in
  Domainpool.run pool flows;
  let pt = Domainpool.telemetry pool and st = Pump.telemetry pump in
  (* full structural equality, cache statistics included: one shard
     forwards in exactly the serial order *)
  for r = 0 to Telemetry.num_routers st - 1 do
    check Alcotest.bool
      (Printf.sprintf "router %d counters equal pump's" r)
      true
      (Telemetry.router pt r = Telemetry.router st r)
  done;
  check Alcotest.bool "native class equals pump's" true
    (Telemetry.cls pt Telemetry.Native = Telemetry.cls st Telemetry.Native);
  check Alcotest.int "no crossings with one shard" 0
    (Domainpool.crossings pool);
  Domainpool.close pool

let test_pool_verdicts_shard_invariant () =
  let env, flows, pump = Lazy.force pool_fixture in
  let oracle = verdict (Pump.telemetry pump) in
  List.iter
    (fun shards ->
      let pool = Domainpool.create env ~shards ~seed:11L in
      Domainpool.run pool flows;
      let v = verdict (Domainpool.telemetry pool) in
      Domainpool.close pool;
      check Alcotest.bool
        (Printf.sprintf "verdict at %d shards equals the serial pump" shards)
        true (v = oracle))
    [ 1; 2; 3; 4; 8 ]

(* CI runs the whole suite a second time with EVOLVENET_SHARDS=4, so
   the oracle comparison below actually executes a parallel pool on
   that pass; unset, a modest default still covers the ring path *)
let test_pool_env_shard_count () =
  let env, flows, pump = Lazy.force pool_fixture in
  let shards =
    match Sys.getenv_opt "EVOLVENET_SHARDS" with
    | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 2)
    | None -> 2
  in
  let pool = Domainpool.create env ~shards ~seed:11L in
  Domainpool.run pool flows;
  let v = verdict (Domainpool.telemetry pool) in
  Domainpool.close pool;
  check Alcotest.bool
    (Printf.sprintf "EVOLVENET_SHARDS=%d verdict equals the serial pump"
       shards)
    true
    (v = verdict (Pump.telemetry pump))

let test_pool_telemetry_accumulates () =
  (* two runs of the same batch double every counter, like the pump *)
  let env, flows, _ = Lazy.force pool_fixture in
  let once = Domainpool.create env ~shards:4 ~seed:11L in
  Domainpool.run once flows;
  let p1, b1, e1, d1, r1, t1 = verdict (Domainpool.telemetry once) in
  Domainpool.close once;
  let twice = Domainpool.create env ~shards:4 ~seed:11L in
  Domainpool.run twice flows;
  Domainpool.run twice flows;
  let p2, b2, e2, d2, r2, t2 = verdict (Domainpool.telemetry twice) in
  Domainpool.close twice;
  check Alcotest.bool "all counters doubled" true
    ((p2, b2, e2, d2, r2, t2) = (2 * p1, 2 * b1, 2 * e1, 2 * d1, 2 * r1, 2 * t1))

(* ---------------------------------------------------------------- *)
(* Overload: bounded spill, shedding, supervision (DESIGN.md §13)    *)

(* the terminal-accounting partition: every injected packet ends
   exactly once as delivered, dropped, ttl-expired, queue-dropped or
   shed *)
let terminal_sum t =
  let c = Telemetry.total t in
  c.Telemetry.delivered + c.Telemetry.dropped + c.Telemetry.ttl_expired
  + c.Telemetry.queue_dropped + c.Telemetry.shed

let injected flows =
  List.fold_left (fun n f -> n + f.Workload.packets) 0 flows

(* one starved cooperative run with tight rings and a tiny spill; the
   slow-consumer drill's regime, down to the paced injection *)
let overloaded_pool env flows =
  let pool =
    Domainpool.create env ~shards:4 ~ring_capacity:8 ~spill_cap:8
      ~inject_per_pass:2 ~seed:11L
  in
  let rounds = Domainpool.run_cooperative ~slow:(1, 12) pool flows in
  (pool, rounds)

let test_spill_bounded_under_overload () =
  let env, flows, _ = Lazy.force pool_fixture in
  let pool, _ = overloaded_pool env flows in
  check Alcotest.bool "overload actually shed" true (Domainpool.shed pool > 0);
  check Alcotest.bool "pool high-water within the bound" true
    (Domainpool.overflow_high_water pool <= 8);
  for s = 0 to Domainpool.num_shards pool - 1 do
    let sh = Domainpool.shard pool s in
    check Alcotest.bool
      (Printf.sprintf "shard %d high-water within its cap" s)
      true
      (Shard.overflow_high_water sh <= Shard.overflow_cap sh);
    check Alcotest.int
      (Printf.sprintf "shard %d spill drained" s)
      0 (Shard.overflow_len sh)
  done;
  check Alcotest.int "every packet reached a terminal verdict"
    (injected flows)
    (terminal_sum (Domainpool.telemetry pool));
  check Alcotest.int "pool shed equals the telemetry's" (Domainpool.shed pool)
    (Telemetry.total (Domainpool.telemetry pool)).Telemetry.shed;
  Domainpool.close pool

let test_overload_deterministic () =
  (* backpressure and shedding are part of the deterministic contract:
     two identical starved runs agree on every count, rounds included *)
  let env, flows, _ = Lazy.force pool_fixture in
  let signature () =
    let pool, rounds = overloaded_pool env flows in
    let v = verdict (Domainpool.telemetry pool) in
    let s =
      ( Domainpool.shed pool,
        Domainpool.overflow_high_water pool,
        Domainpool.crossings pool,
        rounds )
    in
    Domainpool.close pool;
    (v, s)
  in
  check Alcotest.bool "starved runs are bit-reproducible" true
    (signature () = signature ())

let test_shed_eager_bounded_deterministic () =
  (* the opt-in producer-side early shed: still bounded, still
     deterministic under the cooperative driver, and it sheds no less
     than the spill-full path alone *)
  let env, flows, _ = Lazy.force pool_fixture in
  let run () =
    let pool =
      Domainpool.create env ~shards:4 ~ring_capacity:8 ~spill_cap:8
        ~inject_per_pass:2 ~shed_eager:true ~seed:11L
    in
    let rounds = Domainpool.run_cooperative ~slow:(1, 12) pool flows in
    let tel = Domainpool.telemetry pool in
    let sg =
      (verdict tel, Domainpool.shed pool, Domainpool.overflow_high_water pool)
    in
    check Alcotest.int "terminal accounting still partitions"
      (injected flows) (terminal_sum tel);
    check Alcotest.bool "eager shedding keeps the spill bound" true
      (Domainpool.overflow_high_water pool <= 8);
    check Alcotest.bool "eager path shed" true (Domainpool.shed pool > 0);
    Domainpool.close pool;
    ignore rounds;
    sg
  in
  check Alcotest.bool "eager runs are bit-reproducible" true (run () = run ())

let test_pool_supervised_restart_parallel () =
  (* the parallel spawn/join path with a crash armed: the supervisor
     must revive the victim and the verdict must still equal the
     serial pump's — caches rebuild warm from the shared FIBs, so a
     restart is invisible to forwarding decisions *)
  let env, flows, pump = Lazy.force pool_fixture in
  let oracle = verdict (Pump.telemetry pump) in
  let pool = Domainpool.create env ~shards:4 ~seed:11L in
  Shard.arm_crash (Domainpool.shard pool 1) ~after:64;
  Domainpool.run pool flows;
  check Alcotest.bool "the supervisor restarted the victim" true
    (Domainpool.restarts pool >= 1);
  check Alcotest.bool "victim's restart is counted per shard" true
    (Domainpool.shard_restarts pool 1 >= 1);
  check Alcotest.int "nothing was shed across the crash" 0
    (Domainpool.shed pool);
  check Alcotest.bool "verdict equals the serial pump's" true
    (verdict (Domainpool.telemetry pool) = oracle);
  Domainpool.close pool

(* The per-pair no-reorder property. [Shard.offer]'s discipline —
   ring only while the spill is empty, spill retried FIFO before
   fresh handoffs, shed past the bound — exercised over the real ring
   for every qcheck-drawn interleaving of producer steps and consumer
   drains: the messages that survive must reach the consumer in
   exactly the order the producer emitted them. *)
let prop_backpressure_no_reorder =
  QCheck.Test.make
    ~name:"overload: survivors keep per-pair FIFO under spill and shed"
    ~count:300
    QCheck.(
      triple (int_range 0 4) (int_range 1 8)
        (list_of_size (QCheck.Gen.int_range 1 60) (int_range 0 4)))
    (fun (cap_log, spill_cap, drains) ->
      let r = Ring.create ~capacity:(1 lsl cap_log) ~dummy:(-1) in
      let spill = Queue.create () in
      let sent = ref [] and received = ref [] and shed = ref [] in
      let flush_spill () =
        let stalled = ref false in
        while (not !stalled) && not (Queue.is_empty spill) do
          if Ring.push r (Queue.peek spill) then ignore (Queue.take spill)
          else stalled := true
        done
      in
      let offer v =
        sent := v :: !sent;
        flush_spill ();
        if Queue.is_empty spill && Ring.push r v then ()
        else if Queue.length spill < spill_cap then Queue.add v spill
        else shed := v :: !shed
      in
      let next = ref 0 in
      List.iter
        (fun pops ->
          offer !next;
          incr next;
          for _ = 1 to pops do
            if not (Ring.is_empty r) then received := Ring.pop r :: !received
          done)
        drains;
      (* end of overload: drain everything still in flight, spill
         first through the ring as the shard's retry loop would *)
      let guard = ref 0 in
      while
        (not (Ring.is_empty r)) || not (Queue.is_empty spill)
      do
        incr guard;
        if !guard > 100_000 then failwith "drain did not terminate";
        while not (Ring.is_empty r) do
          received := Ring.pop r :: !received
        done;
        flush_spill ()
      done;
      let module IS = Set.Make (Int) in
      let shed_set = IS.of_list !shed in
      let survivors =
        List.filter (fun v -> not (IS.mem v shed_set)) (List.rev !sent)
      in
      List.rev !received = survivors
      && List.length !received + IS.cardinal shed_set = List.length !sent)

let () =
  Alcotest.run "multicore"
    [
      ( "ring",
        [
          Alcotest.test_case "serial FIFO" `Quick test_ring_fifo_serial;
          Alcotest.test_case "capacity rounding" `Quick
            test_ring_capacity_rounding;
          Alcotest.test_case "backpressure" `Quick test_ring_backpressure;
          qcheck prop_ring_spsc;
          qcheck prop_ring_relay_4domains;
        ] );
      ( "shardmap",
        [
          Alcotest.test_case "total contiguous partition" `Quick
            test_shardmap_partition;
          Alcotest.test_case "validation" `Quick test_shardmap_validation;
        ] );
      ( "arena",
        [
          Alcotest.test_case "wire roundtrip" `Quick test_arena_roundtrip;
          Alcotest.test_case "exhaustion and reset" `Quick
            test_arena_exhaustion;
          Alcotest.test_case "pump slab equals heap" `Quick
            test_pump_slab_equals_heap;
        ] );
      ( "domainpool",
        [
          Alcotest.test_case "one shard equals the pump" `Quick
            test_pool_one_shard_equals_pump;
          Alcotest.test_case "verdicts shard-invariant" `Quick
            test_pool_verdicts_shard_invariant;
          Alcotest.test_case "env-selected shard count" `Quick
            test_pool_env_shard_count;
          Alcotest.test_case "telemetry accumulates" `Quick
            test_pool_telemetry_accumulates;
        ] );
      ( "overload",
        [
          Alcotest.test_case "spill bounded under sustained overload" `Quick
            test_spill_bounded_under_overload;
          Alcotest.test_case "starved runs deterministic" `Quick
            test_overload_deterministic;
          Alcotest.test_case "eager shed bounded and deterministic" `Quick
            test_shed_eager_bounded_deterministic;
          Alcotest.test_case "supervised restart on the parallel path" `Slow
            test_pool_supervised_restart_parallel;
          qcheck prop_backpressure_no_reorder;
        ] );
    ]
