(* Tests for the data-plane traffic engine: the pump must realize the
   exact paths and verdicts of the Forward.decide oracle (cache on and
   off), the flow cache must behave like a direct-mapped cache, and the
   workload/telemetry plumbing must be deterministic and consistent. *)

module Internet = Topology.Internet
module Rng = Topology.Rng
module Forward = Simcore.Forward
module Fib = Simcore.Fib
module Service = Anycast.Service
module Fabric = Vnbone.Fabric
module Router = Vnbone.Router
module Transport = Vnbone.Transport
module Flowcache = Dataplane.Flowcache
module Linkq = Dataplane.Linkq
module Workload = Dataplane.Workload
module Telemetry = Dataplane.Telemetry
module Pump = Dataplane.Pump
module Packet = Netcore.Packet
module Ipv4 = Netcore.Ipv4

let check = Alcotest.check

let default_setup ?(deploy = [ 5; 9; 14 ]) () =
  let inet = Internet.build Internet.default_params in
  let env = Forward.make_env inet in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  List.iter
    (fun d ->
      Service.add_participant service ~domain:d
        ~routers:(Array.to_list (Internet.domain inet d).Internet.router_ids))
    deploy;
  (inet, env, service)

let fixture = lazy (default_setup ())

let trace_str (t : Forward.trace) =
  let outcome =
    match t.Forward.outcome with
    | Forward.Router_accepted r -> Printf.sprintf "router %d" r
    | Forward.Endhost_accepted h -> Printf.sprintf "endhost %d" h
    | Forward.Dropped Forward.Ttl_expired -> "drop ttl"
    | Forward.Dropped Forward.No_route -> "drop no-route"
    | Forward.Dropped Forward.Stuck -> "drop stuck"
    | Forward.Dropped Forward.Link_down -> "drop link-down"
    | Forward.Dropped Forward.Queue_full -> "drop queue-full"
    | Forward.Dropped Forward.Shed -> "drop shed"
  in
  String.concat ">" (List.map string_of_int t.Forward.hops) ^ " => " ^ outcome

(* sampled (entry, dst) probes covering anycast, unicast and
   inter-domain destinations *)
let sample_probes (inet : Internet.t) env service =
  let rng = Rng.create 99L in
  let hosts = Array.length inet.Internet.endhosts in
  let routers = Internet.num_routers inet in
  List.concat
    [
      (* endhost-to-endhost unicast *)
      List.init 40 (fun _ ->
          let h = Rng.int rng hosts in
          let entry = Rng.int rng routers in
          (entry, (Internet.endhost inet h).Internet.haddr));
      (* router addresses *)
      List.init 20 (fun _ ->
          let r = Rng.int rng routers in
          let entry = Rng.int rng routers in
          (entry, (Internet.router inet r).Internet.raddr));
      (* the anycast address from everywhere *)
      List.init 20 (fun _ -> (Rng.int rng routers, Service.address service));
    ]
  |> fun probes ->
  ignore env;
  probes

let agreement_case ~use_cache () =
  let inet, env, service = Lazy.force fixture in
  let pump = Pump.create ~use_cache env in
  List.iter
    (fun (entry, dst) ->
      let p = Packet.make_data ~src:Ipv4.any ~dst "probe" in
      let oracle = Forward.forward env p ~entry in
      (* twice: the second pass is served from a warm cache *)
      let first = Pump.inject pump p ~entry in
      let second = Pump.inject pump p ~entry in
      check Alcotest.string "pump = oracle (cold)" (trace_str oracle)
        (trace_str first);
      check Alcotest.string "pump = oracle (warm)" (trace_str oracle)
        (trace_str second))
    (sample_probes inet env service)

let test_agreement_cached () = agreement_case ~use_cache:true ()
let test_agreement_uncached () = agreement_case ~use_cache:false ()

let test_agreement_send_data () =
  let inet, env, _ = Lazy.force fixture in
  let pump = Pump.create env in
  let rng = Rng.create 7L in
  let hosts = Array.length inet.Internet.endhosts in
  for _ = 1 to 40 do
    let src = Rng.int rng hosts in
    let dst = Rng.int rng hosts in
    if src <> dst then begin
      let hs = Internet.endhost inet src
      and hd = Internet.endhost inet dst in
      let p =
        Packet.make_data ~src:hs.Internet.haddr ~dst:hd.Internet.haddr "x"
      in
      let oracle = Forward.send_from_endhost env p ~endhost:src in
      let got = Pump.send_data pump ~src ~dst ~payload:"x" in
      check Alcotest.string "send_data = oracle" (trace_str oracle)
        (trace_str got)
    end
  done

let test_vn_agreement_with_transport () =
  let inet, env, service = Lazy.force fixture in
  let pump = Pump.create env in
  let vrouter = Router.create (Fabric.build service) in
  let rng = Rng.create 23L in
  let hosts = Array.length inet.Internet.endhosts in
  for _ = 1 to 25 do
    let src = Rng.int rng hosts in
    let dst = Rng.int rng hosts in
    if src <> dst then begin
      let j =
        Transport.send vrouter ~strategy:Router.Bgp_aware ~src ~dst
          ~payload:"x"
      in
      let d =
        Pump.send_vn pump vrouter ~strategy:Router.Bgp_aware ~src ~dst
          ~payload:"x"
      in
      check Alcotest.bool "delivered agrees" (Transport.delivered j)
        (Pump.vn_delivered d);
      check Alcotest.int "underlay hops agree" (Transport.total_hops j)
        d.Pump.vn_hops
    end
  done

(* ------------------------------------------------------------------ *)
(* Flowcache                                                           *)

let addr i = Ipv4.of_int i

let test_flowcache_hit_miss () =
  let c = Flowcache.create ~slots:8 in
  check Alcotest.(option int) "cold miss" None (Flowcache.lookup c (addr 1));
  Flowcache.insert c (addr 1) 42;
  check Alcotest.(option int) "hit" (Some 42) (Flowcache.lookup c (addr 1));
  let s = Flowcache.stats c in
  check Alcotest.int "one hit" 1 s.Flowcache.hits;
  check Alcotest.int "one miss" 1 s.Flowcache.misses;
  check Alcotest.int "no eviction" 0 s.Flowcache.evictions

let test_flowcache_direct_mapped_eviction () =
  (* a 1-slot cache makes any two distinct addresses collide,
     independent of the slot-hash function *)
  let c = Flowcache.create ~slots:1 in
  check Alcotest.int "one slot" 1 (Flowcache.capacity c);
  Flowcache.insert c (addr 1) 10;
  Flowcache.insert c (addr 9) 90;
  check Alcotest.(option int) "old entry evicted" None
    (Flowcache.lookup c (addr 1));
  check Alcotest.(option int) "new entry present" (Some 90)
    (Flowcache.lookup c (addr 9));
  check Alcotest.int "eviction counted" 1 (Flowcache.stats c).Flowcache.evictions

let test_flowcache_find_and_clear () =
  let c = Flowcache.create ~slots:8 in
  let computes = ref 0 in
  let compute _ =
    incr computes;
    Some 7
  in
  check Alcotest.(option int) "computed" (Some 7)
    (Flowcache.find c (addr 3) ~compute);
  check Alcotest.(option int) "cached" (Some 7)
    (Flowcache.find c (addr 3) ~compute);
  check Alcotest.int "compute ran once" 1 !computes;
  Flowcache.clear c;
  check Alcotest.int "cleared" 0 (Flowcache.stats c).Flowcache.occupied;
  check Alcotest.(option int) "recomputed after clear" (Some 7)
    (Flowcache.find c (addr 3) ~compute);
  check Alcotest.int "compute ran again" 2 !computes

let test_flowcache_negative_not_cached () =
  let c = Flowcache.create ~slots:8 in
  let computes = ref 0 in
  let compute _ =
    incr computes;
    None
  in
  check Alcotest.(option int) "miss" None (Flowcache.find c (addr 5) ~compute);
  check Alcotest.(option int) "still miss" None
    (Flowcache.find c (addr 5) ~compute);
  check Alcotest.int "compute re-ran (None not cached)" 2 !computes

let test_flowcache_churn_stress () =
  (* rapid membership churn: after every [refresh] the flow caches must
     serve the NEW snapshot's actions — a stale cached action after
     refresh returns would desynchronize the pump from the oracle *)
  let inet = Internet.build Internet.default_params in
  let env = Forward.make_env inet in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  let routers_of d = Array.to_list (Internet.domain inet d).Internet.router_ids in
  Service.add_participant service ~domain:5 ~routers:(routers_of 5);
  (* a tiny cache maximizes collisions, so stale survivors would show *)
  let pump = Pump.create ~cache_slots:2 env in
  let rng = Rng.create 101L in
  let hosts = Array.length inet.Internet.endhosts in
  let probes =
    List.init 30 (fun _ ->
        (Rng.int rng (Internet.num_routers inet), Service.address service))
    @ List.init 30 (fun _ ->
          let h = Rng.int rng hosts in
          ( Rng.int rng (Internet.num_routers inet),
            (Internet.endhost inet h).Internet.haddr ))
  in
  let assert_agrees round =
    List.iter
      (fun (entry, dst) ->
        let p = Packet.make_data ~src:Ipv4.any ~dst "churn" in
        let oracle = Forward.forward env p ~entry in
        (* twice: cold fill, then the warm path that a stale entry
           would poison *)
        ignore (Pump.inject pump p ~entry);
        check Alcotest.string
          (Printf.sprintf "round %d: pump = oracle" round)
          (trace_str oracle)
          (trace_str (Pump.inject pump p ~entry)))
      probes
  in
  assert_agrees 0;
  List.iteri
    (fun i d ->
      (* flip the domain's membership, reconverge, refresh — the caches
         must follow instantly *)
      (if Service.is_participant service ~domain:d then
         Service.remove_participant service ~domain:d
       else Service.add_participant service ~domain:d ~routers:(routers_of d));
      Pump.refresh pump;
      assert_agrees (i + 1))
    [ 9; 5; 14; 9; 5; 9 ]

let test_flowcache_rounds_to_power_of_two () =
  check Alcotest.int "5 -> 8" 8 (Flowcache.capacity (Flowcache.create ~slots:5));
  check Alcotest.int "8 -> 8" 8 (Flowcache.capacity (Flowcache.create ~slots:8));
  Alcotest.check_raises "slots = 0 rejected"
    (Invalid_argument "Flowcache.create: slots must be positive") (fun () ->
      ignore (Flowcache.create ~slots:0))

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)

let test_workload_deterministic () =
  let inet, _, _ = Lazy.force fixture in
  let flows seed =
    Workload.batch
      (Workload.create inet (Workload.Gravity { zipf_s = 1.2 }) ~seed)
      ~count:50
  in
  check Alcotest.bool "same seed, same flows" true (flows 5L = flows 5L);
  check Alcotest.bool "different seed, different flows" true
    (flows 5L <> flows 6L)

let test_workload_flows_valid () =
  let inet, _, _ = Lazy.force fixture in
  let hosts = Array.length inet.Internet.endhosts in
  let wl = Workload.create ~packets_per_flow:3 inet Workload.Uniform ~seed:1L in
  List.iter
    (fun (f : Workload.flow) ->
      check Alcotest.bool "src in range" true
        (f.Workload.src >= 0 && f.Workload.src < hosts);
      check Alcotest.bool "dst in range" true
        (f.Workload.dst >= 0 && f.Workload.dst < hosts);
      check Alcotest.bool "src <> dst" true (f.Workload.src <> f.Workload.dst);
      check Alcotest.int "packets per flow" 3 f.Workload.packets;
      check Alcotest.bool "payload from the mix" true
        (List.mem f.Workload.bytes_per_packet [ 64; 512; 1400 ]))
    (Workload.batch wl ~count:60)

let test_workload_total_packets () =
  let inet, _, _ = Lazy.force fixture in
  let wl = Workload.create ~packets_per_flow:5 inet Workload.Uniform ~seed:2L in
  check Alcotest.int "total packets" 50
    (Workload.total_packets (Workload.batch wl ~count:10))

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)

let test_telemetry_counters_and_merge () =
  let a = Telemetry.create ~routers:4 in
  Telemetry.record_hop a ~router:1 ~cls:Telemetry.Native ~bytes:100
    ~encap_bytes:0;
  Telemetry.record_hop a ~router:2 ~cls:Telemetry.Encap ~bytes:120
    ~encap_bytes:20;
  Telemetry.record_delivered a ~router:2 ~cls:Telemetry.Encap;
  Telemetry.record_cache a ~router:1 ~cls:Telemetry.Native ~hit:true;
  let b = Telemetry.create ~routers:4 in
  Telemetry.record_drop b ~router:3 ~cls:Telemetry.Native;
  Telemetry.record_ttl_expired b ~router:0 ~cls:Telemetry.Encap;
  let m = Telemetry.merge a b in
  let t = Telemetry.total m in
  check Alcotest.int "packets" 2 t.Telemetry.packets;
  check Alcotest.int "bytes" 220 t.Telemetry.bytes;
  check Alcotest.int "encap bytes" 20 t.Telemetry.encap_bytes;
  check Alcotest.int "delivered" 1 t.Telemetry.delivered;
  check Alcotest.int "dropped" 1 t.Telemetry.dropped;
  check Alcotest.int "ttl expired" 1 t.Telemetry.ttl_expired;
  check Alcotest.int "cache hits" 1 t.Telemetry.cache_hits;
  (* class totals match router totals *)
  let native = Telemetry.cls m Telemetry.Native
  and encap = Telemetry.cls m Telemetry.Encap in
  check Alcotest.int "class packets"
    (native.Telemetry.packets + encap.Telemetry.packets)
    t.Telemetry.packets;
  check Alcotest.int "class delivered"
    (native.Telemetry.delivered + encap.Telemetry.delivered)
    t.Telemetry.delivered;
  (* inputs unchanged *)
  check Alcotest.int "a unchanged" 2 (Telemetry.total a).Telemetry.packets

let test_pump_telemetry_counts () =
  let inet, env, _ = Lazy.force fixture in
  ignore inet;
  let pump = Pump.create env in
  let tr = Pump.send_data pump ~src:0 ~dst:5 ~payload:"abc" in
  let t = Telemetry.total (Pump.telemetry pump) in
  check Alcotest.int "one handling per hop router"
    (List.length tr.Forward.hops)
    t.Telemetry.packets;
  check Alcotest.int "native class only" 0
    (Telemetry.cls (Pump.telemetry pump) Telemetry.Encap).Telemetry.packets;
  check Alcotest.bool "delivered recorded" true (t.Telemetry.delivered = 1)

(* ------------------------------------------------------------------ *)
(* Snapshot semantics                                                  *)

let test_refresh_tracks_control_plane () =
  (* a fresh pump agrees; after a membership change it goes stale and
     refresh restores agreement *)
  let inet, env, service = default_setup () in
  let pump = Pump.create env in
  let addr = Service.address service in
  let agree () =
    List.for_all
      (fun entry ->
        let p = Packet.make_data ~src:Ipv4.any ~dst:addr "probe" in
        trace_str (Forward.forward env p ~entry)
        = trace_str (Pump.inject pump p ~entry))
      (List.init (Internet.num_routers inet) Fun.id)
  in
  check Alcotest.bool "fresh snapshot agrees" true (agree ());
  Service.remove_participant service ~domain:5;
  check Alcotest.bool "stale snapshot disagrees somewhere" false (agree ());
  Pump.refresh pump;
  check Alcotest.bool "refreshed snapshot agrees" true (agree ())

let test_refresh_clears_caches () =
  let _, env, _ = default_setup () in
  let pump = Pump.create env in
  ignore (Pump.send_data pump ~src:0 ~dst:9 ~payload:"x");
  ignore (Pump.send_data pump ~src:0 ~dst:9 ~payload:"x");
  check Alcotest.bool "warm cache hits" true (Pump.cache_hit_rate pump > 0.0);
  let hits_before =
    (Telemetry.total (Pump.telemetry pump)).Telemetry.cache_hits
  in
  Pump.refresh pump;
  ignore (Pump.send_data pump ~src:0 ~dst:9 ~payload:"x");
  let t = Telemetry.total (Pump.telemetry pump) in
  check Alcotest.int "first post-refresh pass misses" hits_before
    t.Telemetry.cache_hits

(* ------------------------------------------------------------------ *)
(* Linkq: finite-capacity link queues (DESIGN.md §13)                  *)

let test_linkq_admission_discipline () =
  (* depth 1000, reserve 100: data plays in [0, 900], control in
     [0, 1000], and a data refusal with reserve room left is a shed *)
  let lq =
    Linkq.create ~control_reserve:100 ~routers:3 ~rate:300 ~depth:1000
      [ (0, 1) ]
  in
  let data = Telemetry.Native and ctl = Telemetry.Control in
  let admit cls bytes = Linkq.admit lq ~src:0 ~dst:1 ~cls ~bytes in
  check Alcotest.bool "600B data fits" true (admit data 600 = Linkq.Admitted);
  check Alcotest.bool "second 600B overflows the depth: droptail" true
    (admit data 600 = Linkq.Rejected_full);
  check Alcotest.bool "350B data only blocked by the reserve: shed" true
    (admit data 350 = Linkq.Rejected_shed);
  check Alcotest.bool "350B control rides the reserve" true
    (admit ctl 350 = Linkq.Admitted);
  check Alcotest.bool "control past the depth still droptails" true
    (admit ctl 100 = Linkq.Rejected_full);
  check Alcotest.bool "unregistered link stays an infinite pipe" true
    (Linkq.admit lq ~src:0 ~dst:2 ~cls:data ~bytes:999_999 = Linkq.Admitted);
  check Alcotest.int "950B queued on the loaded direction" 950
    (Linkq.queued lq ~src:0 ~dst:1);
  check Alcotest.int "reverse direction registered but idle" 0
    (Linkq.queued lq ~src:1 ~dst:0);
  Linkq.tick lq;
  check Alcotest.int "tick drains one rate quantum" 650
    (Linkq.queued lq ~src:0 ~dst:1);
  let s = Linkq.stats lq in
  check Alcotest.int "both directions registered" 2 s.Linkq.links;
  check Alcotest.int "two admissions" 2 s.Linkq.admitted;
  check Alcotest.int "two droptails" 2 s.Linkq.drops_full;
  check Alcotest.int "one precedence shed" 1 s.Linkq.drops_shed;
  check Alcotest.int "queued tracks the drain" 650 s.Linkq.queued;
  check Alcotest.int "high water from before the tick" 950 s.Linkq.high_water;
  check (Alcotest.float 1e-9) "mean delay in ticks" 1.0 s.Linkq.mean_delay

let test_linkq_validation () =
  let invalid msg g =
    match g () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("expected Invalid_argument: " ^ msg)
  in
  invalid "zero rate" (fun () ->
      ignore (Linkq.create ~routers:2 ~rate:0 ~depth:10 [ (0, 1) ]));
  invalid "zero depth" (fun () ->
      ignore (Linkq.create ~routers:2 ~rate:1 ~depth:0 [ (0, 1) ]));
  invalid "reserve = depth" (fun () ->
      ignore
        (Linkq.create ~control_reserve:10 ~routers:2 ~rate:1 ~depth:10
           [ (0, 1) ]));
  invalid "endpoint out of range" (fun () ->
      ignore (Linkq.create ~routers:2 ~rate:1 ~depth:10 [ (0, 2) ]))

(* Drive a pump through congested queues and check, class by class,
   that every injected packet is accounted exactly once: delivered +
   dropped + ttl-expired + queue-dropped + shed = injected. *)
let partition_run ~reserve ~load =
  let inet = Internet.build Internet.default_params in
  let env = Forward.make_env inet in
  let hosts =
    Array.init
      (Array.length inet.Internet.endhosts)
      (fun h -> Internet.endhost inet h)
  in
  let nh = Array.length hosts in
  let pump = Pump.create env in
  let lq =
    Linkq.of_internet ~control_reserve:reserve ~rate:3000 ~depth:6000 inet
  in
  Pump.attach_linkq pump lq;
  let payload = String.make 600 'd' in
  let data_in = ref 0 and ctl_in = ref 0 in
  for _tick = 1 to 8 do
    for k = 0 to load - 1 do
      let s = hosts.(k mod nh) and d = hosts.((k + (nh / 2) + 1) mod nh) in
      if s != d then begin
        incr data_in;
        let p =
          Packet.make_data ~src:s.Internet.haddr ~dst:d.Internet.haddr payload
        in
        ignore (Pump.inject pump p ~entry:s.Internet.access_router)
      end
    done;
    for k = 0 to 7 do
      let s = hosts.(k mod nh) and d = hosts.((k + (nh / 3) + 1) mod nh) in
      if s != d then begin
        incr ctl_in;
        let p =
          Packet.make_data ~src:s.Internet.haddr ~dst:d.Internet.haddr "probe"
        in
        ignore
          (Pump.inject ~cls:Telemetry.Control pump p
             ~entry:s.Internet.access_router)
      end
    done;
    Linkq.tick lq
  done;
  (Pump.telemetry pump, !data_in, !ctl_in)

let terminal (c : Telemetry.counters) =
  c.Telemetry.delivered + c.Telemetry.dropped + c.Telemetry.ttl_expired
  + c.Telemetry.queue_dropped + c.Telemetry.shed

let test_class_drop_partition_with_reserve () =
  let tel, data_in, ctl_in = partition_run ~reserve:1200 ~load:64 in
  let dat = Telemetry.cls tel Telemetry.Native in
  let ctl = Telemetry.cls tel Telemetry.Control in
  let enc = Telemetry.cls tel Telemetry.Encap in
  check Alcotest.int "data class partitions" data_in (terminal dat);
  check Alcotest.int "control class partitions" ctl_in (terminal ctl);
  check Alcotest.int "no encap traffic in this run" 0 (terminal enc);
  check Alcotest.int "classes partition the total" (data_in + ctl_in)
    (terminal (Telemetry.total tel));
  check Alcotest.bool "overload actually shed data" true
    (dat.Telemetry.shed > 0);
  check Alcotest.int "control is never shed" 0 ctl.Telemetry.shed;
  check Alcotest.int "the reserve admitted every probe" ctl_in
    ctl.Telemetry.delivered

let test_class_drop_partition_no_reserve () =
  (* without a reserve there is no precedence class: refusals are pure
     droptail, so the shed counter must stay zero everywhere *)
  let tel, data_in, ctl_in = partition_run ~reserve:0 ~load:256 in
  let c = Telemetry.total tel in
  check Alcotest.int "total partitions" (data_in + ctl_in) (terminal c);
  check Alcotest.int "no reserve, no sheds" 0 c.Telemetry.shed;
  check Alcotest.bool "congestion droptailed" true
    (c.Telemetry.queue_dropped > 0)

let () =
  Alcotest.run "dataplane"
    [
      ( "agreement",
        [
          Alcotest.test_case "pump = Forward oracle (cached)" `Quick
            test_agreement_cached;
          Alcotest.test_case "pump = Forward oracle (uncached)" `Quick
            test_agreement_uncached;
          Alcotest.test_case "send_data = send_from_endhost" `Quick
            test_agreement_send_data;
          Alcotest.test_case "send_vn = Transport.send" `Quick
            test_vn_agreement_with_transport;
        ] );
      ( "flowcache",
        [
          Alcotest.test_case "hit/miss counters" `Quick test_flowcache_hit_miss;
          Alcotest.test_case "direct-mapped eviction" `Quick
            test_flowcache_direct_mapped_eviction;
          Alcotest.test_case "find + clear" `Quick test_flowcache_find_and_clear;
          Alcotest.test_case "negative results not cached" `Quick
            test_flowcache_negative_not_cached;
          Alcotest.test_case "power-of-two capacity" `Quick
            test_flowcache_rounds_to_power_of_two;
          Alcotest.test_case "no stale action across churn + refresh" `Quick
            test_flowcache_churn_stress;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "flows valid" `Quick test_workload_flows_valid;
          Alcotest.test_case "total packets" `Quick test_workload_total_packets;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "counters and merge" `Quick
            test_telemetry_counters_and_merge;
          Alcotest.test_case "pump records hops" `Quick
            test_pump_telemetry_counts;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "refresh tracks control plane" `Quick
            test_refresh_tracks_control_plane;
          Alcotest.test_case "refresh clears caches" `Quick
            test_refresh_clears_caches;
        ] );
      ( "linkq",
        [
          Alcotest.test_case "admission discipline" `Quick
            test_linkq_admission_discipline;
          Alcotest.test_case "validation" `Quick test_linkq_validation;
          Alcotest.test_case "per-class drop partition (reserve)" `Quick
            test_class_drop_partition_with_reserve;
          Alcotest.test_case "per-class drop partition (droptail)" `Quick
            test_class_drop_partition_no_reserve;
        ] );
    ]
