.PHONY: build test lint explain bench report

build:        ## build everything (zero warnings expected)
	dune build @all

test:         ## ten alcotest suites + the lint pass
	dune runtest

lint:         ## evolvelint: layering, determinism, interfaces, experiments
	dune build @lint

explain:      ## print every lint rule's rationale and provenance
	dune exec tools/lint/main.exe -- --explain all

bench:        ## all figures, experiments E1-E28, microbenchmarks
	dune exec bench/main.exe

report:       ## regenerate RESULTS.md
	dune exec bin/evolvenet.exe -- report -o RESULTS.md
