.PHONY: build test lint lint-json lint-sarif summaries explain catalog bench bench-json report

build:        ## build everything (zero warnings expected)
	dune build @all

test:         ## ten alcotest suites + the lint pass
	dune runtest

lint:         ## evolvelint: untyped + typed passes over the whole tree
	dune build @lint

lint-json:    ## machine-readable findings -> LINT.json
	dune exec tools/lint/main.exe -- --root . --format json > LINT.json || true
	@python3 -m json.tool LINT.json > /dev/null && echo "LINT.json valid"

lint-sarif:   ## SARIF 2.1.0 findings -> lint.sarif (CI uploads this)
	dune exec tools/lint/main.exe -- --root . --format sarif > lint.sarif || true
	@python3 -m json.tool lint.sarif > /dev/null && echo "lint.sarif valid"

summaries:    ## per-binding effect summaries + shared-state inventory
	dune exec tools/lint/main.exe -- --root . --summaries

explain:      ## print every lint rule's rationale and provenance
	dune exec tools/lint/main.exe -- --explain all

catalog:      ## regenerate doc/LINT.md from the rule registry
	dune exec tools/lint/main.exe -- --catalog > doc/LINT.md

bench:        ## all figures, experiments E1-E32, microbenchmarks
	dune exec bench/main.exe

bench-json:   ## machine-readable numbers -> BENCH_{dataplane,faults,lint}.json
	dune exec bench/main.exe -- --json

report:       ## regenerate RESULTS.md
	dune exec bin/evolvenet.exe -- report -o RESULTS.md
