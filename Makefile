.PHONY: build test lint explain bench bench-json report

build:        ## build everything (zero warnings expected)
	dune build @all

test:         ## ten alcotest suites + the lint pass
	dune runtest

lint:         ## evolvelint: layering, determinism, interfaces, experiments
	dune build @lint

explain:      ## print every lint rule's rationale and provenance
	dune exec tools/lint/main.exe -- --explain all

bench:        ## all figures, experiments E1-E30, microbenchmarks
	dune exec bench/main.exe

bench-json:   ## data-plane throughput numbers -> BENCH_dataplane.json
	dune exec bench/main.exe -- --json

report:       ## regenerate RESULTS.md
	dune exec bin/evolvenet.exe -- report -o RESULTS.md
