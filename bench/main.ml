(* The full reproduction harness.

   Part 1 regenerates every figure and experiment table of the paper
   (see DESIGN.md section 3 for the index and EXPERIMENTS.md for the
   recorded results).

   Part 2 runs Bechamel microbenchmarks of the core operations — one
   Test.make per operation — so substrate performance regressions are
   visible. *)

module Scenario = Evolve.Scenario
module E = Evolve.Experiments
module Internet = Topology.Internet
module Forward = Simcore.Forward
module Service = Anycast.Service
module Fabric = Vnbone.Fabric
module Router = Vnbone.Router
module Transport = Vnbone.Transport
module Lpm = Netcore.Lpm
module Prefix = Netcore.Prefix
module Ipv4 = Netcore.Ipv4
module Spt = Routing.Spt
module Bgp = Interdomain.Bgp
module Fib = Simcore.Fib
module Pump = Dataplane.Pump
module Workload = Dataplane.Workload
module Flowcache = Dataplane.Flowcache
module Domainpool = Multicore.Domainpool

let section title =
  print_newline ();
  print_endline ("==== " ^ title ^ " ====");
  print_newline ()

let figures () =
  section "Paper figures (scenario replays)";
  print_endline "Figure 1: seamless spread of deployment";
  Format.printf "%a@." Scenario.pp_fig1 (Scenario.fig1 ());
  print_endline "Figure 2: Option 2 anycast with default routes";
  Format.printf "%a@." Scenario.pp_fig2 (Scenario.fig2 ());
  print_endline "Figure 3: egress selection with BGPv(N-1) import";
  Format.printf "%a@." Scenario.pp_fig3 (Scenario.fig3 ());
  print_endline "Figure 4: advertising-by-proxy";
  Format.printf "%a@." Scenario.pp_fig4 (Scenario.fig4 ())

let experiments () =
  section "Experiments (E1-E32)";
  E.print_e1 (E.e1_deployment_sweep ());
  E.print_e2 (E.e2_default_route_sweep ());
  E.print_e3 (E.e3_egress_comparison ());
  E.print_e4 (E.e3_egress_comparison ~deploy_fraction:0.15 ~pairs:80 ());
  E.print_e5 (E.e5_state_scaling ());
  E.print_e6 (E.e6_adoption ());
  E.print_e7 (E.e7_robustness ());
  E.print_e8 (E.e8_convergence ());
  E.print_e9 (E.e9_host_advertised ());
  E.print_e10 (E.e10_discovery_ablation ());
  E.print_e11 (E.e11_congruence ());
  E.print_e12 (E.e12_gia_sweep ());
  E.print_e13 (E.e13_seed_stability ());
  E.print_e14 (E.e14_proxy_alpha ());
  E.print_e15 (E.e15_viability_sweep ());
  E.print_e16 (E.e16_revenue_gravity ());
  E.print_e17 (E.e17_bgpvn_scaling ());
  E.print_e18 (E.e18_flooding_cost ());
  E.print_e19 (E.e19_mrai_sweep ());
  E.print_e20 (E.e20_anycast_resilience ());
  E.print_e21 (E.e21_size_scaling ());
  E.print_e22 (E.e22_fib_scaling ());
  E.print_e23 (E.e23_topology_robustness ());
  E.print_e24 (E.e24_flow_stability ());
  E.print_e25 (E.e25_coalition_sweep ());
  E.print_e26 (E.e26_encapsulation_overhead ());
  E.print_e27 (E.e27_mixed_igp ());
  E.print_e28 (E.e28_path_hunting ());
  E.print_e29 (E.e29_dataplane_cost ());
  E.print_e30 (E.e30_churn_traffic ());
  E.print_e31 (E.e31_fault_convergence ());
  E.print_e32 (E.e32_flap_traffic ());
  E.print_e33 (E.e33_shard_invariance ());
  E.print_e34 (E.e34_drill_catalog ());
  E.print_e35 (E.e35_hijack_containment ());
  E.print_e36 (E.e36_overload_response ());
  E.print_e37 (E.e37_crash_recovery ())

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                     *)

open Bechamel
open Toolkit

let bench_lpm_lookup () =
  let rng = Topology.Rng.create 1L in
  let table =
    Lpm.of_list
      (List.init 1000 (fun i ->
           ( Prefix.make
               (Ipv4.of_int (Topology.Rng.int rng 0x3FFFFFFF * 4))
               (8 + Topology.Rng.int rng 17),
             i )))
  in
  let probes = Array.init 64 (fun _ -> Ipv4.of_int (Topology.Rng.int rng 0xFFFFFFF)) in
  let i = ref 0 in
  Test.make ~name:"lpm-lookup (1k prefixes)"
    (Staged.stage (fun () ->
         incr i;
         ignore (Lpm.lookup probes.(!i land 63) table)))

let bench_dijkstra () =
  let inet = Internet.build Internet.default_params in
  let i = ref 0 in
  let n = Internet.num_routers inet in
  Test.make ~name:"dijkstra (full router graph)"
    (Staged.stage (fun () ->
         i := (!i + 37) mod n;
         ignore (Spt.dijkstra inet.Internet.graph ~src:!i)))

let bench_bgp_convergence () =
  let inet = Internet.build Internet.default_params in
  Test.make ~name:"bgp full convergence (28 domains)"
    (Staged.stage (fun () ->
         let bgp = Bgp.create inet in
         Bgp.originate_all_domain_prefixes bgp;
         ignore (Bgp.converge bgp)))

let anycast_fixture =
  lazy
    (let inet = Internet.build Internet.default_params in
     let env = Forward.make_env inet in
     let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
     List.iter
       (fun d ->
         Service.add_participant service ~domain:d
           ~routers:(Array.to_list (Internet.domain inet d).Internet.router_ids))
       [ 5; 9; 14 ];
     service)

let bench_anycast_resolution () =
  let service = Lazy.force anycast_fixture in
  let inet = (Service.env service).Forward.inet in
  let hn = Array.length inet.Internet.endhosts in
  let i = ref 0 in
  Test.make ~name:"anycast resolution (endhost probe)"
    (Staged.stage (fun () ->
         i := (!i + 7) mod hn;
         ignore (Service.resolve_from_endhost service ~endhost:!i)))

let bench_fabric_build () =
  let service = Lazy.force anycast_fixture in
  Test.make ~name:"vn-bone construction (3 domains)"
    (Staged.stage (fun () -> ignore (Fabric.build service)))

let bench_journey () =
  let service = Lazy.force anycast_fixture in
  let router = Router.create (Fabric.build service) in
  let inet = (Service.env service).Forward.inet in
  let hn = Array.length inet.Internet.endhosts in
  let i = ref 0 in
  Test.make ~name:"end-to-end IPvN journey"
    (Staged.stage (fun () ->
         i := (!i + 11) mod (hn - 1);
         ignore
           (Transport.send router ~strategy:Router.Bgp_aware ~src:!i ~dst:(!i + 1)
              ~payload:"bench")))

let bench_internet_build () =
  Test.make ~name:"internet generation (28 domains)"
    (Staged.stage (fun () -> ignore (Internet.build Internet.default_params)))

let bench_bgpvn () =
  let service = Lazy.force anycast_fixture in
  let fabric = Fabric.build service in
  Test.make ~name:"bgpvn convergence (3 domains)"
    (Staged.stage (fun () ->
         let s = Vnbone.Bgpvn.create fabric in
         ignore (Vnbone.Bgpvn.converge s)))

let bench_lsa_flood () =
  let inet = Internet.build Internet.default_params in
  Test.make ~name:"lsa flood (domain of 12 routers)"
    (Staged.stage (fun () ->
         let proto = Simcore.Lsproto.create inet ~domain:0 in
         let engine = Simcore.Engine.create () in
         Simcore.Lsproto.start proto engine;
         ignore (Simcore.Engine.run engine)))

let lossy_everywhere p ~src:_ ~dst:_ = Simcore.Faults.lossy p

let bench_faults_send () =
  let faults = Simcore.Faults.create ~policy:(lossy_everywhere 0.2) 42L in
  let engine = Simcore.Engine.create () in
  Test.make ~name:"fault fabric send+deliver (loss 0.2)"
    (Staged.stage (fun () ->
         ignore
           (Simcore.Faults.send faults engine ~src:0 ~dst:1 ~delay:1.0
              (fun _ -> ()));
         ignore (Simcore.Engine.run engine)))

let bench_faulty_flood () =
  let inet = Internet.build Internet.default_params in
  Test.make ~name:"lsa flood under loss 0.2 (acked, domain of 12)"
    (Staged.stage (fun () ->
         let faults = Simcore.Faults.create ~policy:(lossy_everywhere 0.2) 42L in
         let proto = Simcore.Lsproto.create ~faults inet ~domain:0 in
         let engine = Simcore.Engine.create () in
         Simcore.Lsproto.start proto engine;
         ignore (Simcore.Engine.run engine)))

let bench_bgp_async_boot () =
  let inet = Internet.build Internet.default_params in
  Test.make ~name:"async bgp bootstrap (28 domains)"
    (Staged.stage (fun () ->
         let dyn = Simcore.Bgpdyn.create inet in
         let engine = Simcore.Engine.create () in
         Simcore.Bgpdyn.originate_all_domain_prefixes dyn engine;
         ignore (Simcore.Engine.run engine)))

(* --- data-plane traffic engine ------------------------------------- *)

(* The E21 "large internet" (12 transits x 6 stubs): big enough that an
   uncached longest-prefix walk visibly costs more than a direct-mapped
   cache hit. *)
let dataplane_fixture =
  lazy
    (let params =
       {
         Internet.default_params with
         Internet.transit_domains = 12;
         stubs_per_transit = 6;
       }
     in
     let inet = Internet.build params in
     let env = Forward.make_env inet in
     let pump = Pump.create ~cache_slots:4096 env in
     let uncached = Pump.create ~use_cache:false env in
     let fib = Fib.compile env in
     let wl =
       Workload.create ~packets_per_flow:16 inet
         (Workload.Gravity { zipf_s = 1.2 })
         ~seed:7L
     in
     let flows = Array.of_list (Workload.batch wl ~count:256) in
     (inet, pump, uncached, fib, flows))

let flow_dst inet (flows : Workload.flow array) i =
  let n = Array.length flows in
  (Internet.endhost inet flows.(i land (n - 1)).Workload.dst).Internet.haddr

let bench_fib_lookup_uncached () =
  let inet, _, _, fib, flows = Lazy.force dataplane_fixture in
  let table = Fib.table fib ~router:0 in
  let i = ref 0 in
  Test.make ~name:"fib lookup, lpm (large internet)"
    (Staged.stage (fun () ->
         incr i;
         ignore (Lpm.lookup_value (flow_dst inet flows !i) table)))

let bench_fib_lookup_cached () =
  let inet, _, _, fib, flows = Lazy.force dataplane_fixture in
  let table = Fib.table fib ~router:0 in
  let cache = Flowcache.create ~slots:4096 in
  let i = ref 0 in
  Test.make ~name:"fib lookup, flow cache (large internet)"
    (Staged.stage (fun () ->
         incr i;
         ignore
           (Flowcache.find cache (flow_dst inet flows !i)
              ~compute:(fun a -> Lpm.lookup_value a table))))

let bench_pump_send pump name =
  let inet, _, _, _, flows = Lazy.force dataplane_fixture in
  ignore inet;
  let n = Array.length flows in
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         incr i;
         let f = flows.(!i land (n - 1)) in
         ignore
           (Pump.send_data pump ~src:f.Workload.src ~dst:f.Workload.dst
              ~payload:"x")))

let bench_pump_cached () =
  let _, pump, _, _, _ = Lazy.force dataplane_fixture in
  bench_pump_send pump "pump send, flow cache (large internet)"

let bench_pump_uncached () =
  let _, _, uncached, _, _ = Lazy.force dataplane_fixture in
  bench_pump_send uncached "pump send, lpm only (large internet)"

let measure_tests tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.fold
        (fun name ols_result acc ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | _ -> nan
          in
          (name, ns) :: acc)
        analyzed []
      |> List.rev)
    tests

let run_benchmarks () =
  section "Microbenchmarks (Bechamel)";
  let rows =
    measure_tests
      [
        bench_lpm_lookup ();
        bench_dijkstra ();
        bench_bgp_convergence ();
        bench_anycast_resolution ();
        bench_fabric_build ();
        bench_journey ();
        bench_internet_build ();
        bench_bgpvn ();
        bench_lsa_flood ();
        bench_bgp_async_boot ();
        bench_faults_send ();
        bench_faulty_flood ();
        bench_fib_lookup_uncached ();
        bench_fib_lookup_cached ();
        bench_pump_uncached ();
        bench_pump_cached ();
      ]
  in
  Evolve.Table.print ~title:"core operation costs"
    ~header:[ "operation"; "ns/run" ]
    ~rows:
      (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.0f" ns ]) rows)

(* --- machine-readable bench output (--json) ------------------------- *)

(* The Bechamel harness above carries a few microseconds of per-run
   overhead (visible on every row of the table), which is fine for the
   relative-cost display but swamps the ~30-200 ns lookup operations
   whose ratio the JSON exists to record. For those we time a plain
   calibrated loop instead. *)
let time_ns ~warmup ~iters f =
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int iters

(* BENCH_*.json are CI artifacts diffed across runs: a truncated or
   non-finite document is worse than a missing one. Render the whole
   string first, refuse NaN/inf (what %f prints for them), then write
   to a temp path and rename, so a crash mid-write can never leave a
   partial file behind — and any failure exits nonzero instead of
   letting the bench report success. *)
let emit_json path json =
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i =
      i + nl <= hl && (String.sub json i nl = needle || go (i + 1))
    in
    go 0
  in
  if contains "nan" || contains "inf" then begin
    Printf.eprintf "refusing to write %s: non-finite value in output\n%!" path;
    exit 1
  end;
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc json);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     Printf.eprintf "failed to write %s: %s\n%!" path (Printexc.to_string e);
     exit 1);
  Printf.printf "wrote %s\n%s" path json

let write_bench_json path =
  let inet, pump, uncached, fib, flows = Lazy.force dataplane_fixture in
  let table = Fib.table fib ~router:0 in
  let n = Array.length flows in
  let dsts = Array.map (fun f -> (Internet.endhost inet f.Workload.dst).Internet.haddr) flows in
  let cache = Flowcache.create ~slots:4096 in
  let i = ref 0 in
  let next_dst () =
    incr i;
    dsts.(!i land (n - 1))
  in
  let ns_lpm =
    time_ns ~warmup:10_000 ~iters:200_000 (fun () ->
        Lpm.lookup_value (next_dst ()) table)
  in
  let ns_cached =
    time_ns ~warmup:10_000 ~iters:200_000 (fun () ->
        Flowcache.find cache (next_dst ())
          ~compute:(fun a -> Lpm.lookup_value a table))
  in
  let send p () =
    incr i;
    let f = flows.(!i land (n - 1)) in
    Pump.send_data p ~src:f.Workload.src ~dst:f.Workload.dst ~payload:"x"
  in
  let ns_send_lpm = time_ns ~warmup:1_000 ~iters:20_000 (send uncached) in
  let ns_send = time_ns ~warmup:1_000 ~iters:20_000 (send pump) in
  let json =
    Printf.sprintf
      "{\n\
      \  \"topology\": \"e21-large-internet (12 transits x 6 stubs)\",\n\
      \  \"packets_per_sec\": %.0f,\n\
      \  \"cache_hit_rate\": %.4f,\n\
      \  \"ns_per_lookup_uncached\": %.1f,\n\
      \  \"ns_per_lookup_cached\": %.1f,\n\
      \  \"lookup_speedup\": %.2f,\n\
      \  \"ns_per_packet_uncached\": %.1f,\n\
      \  \"ns_per_packet_cached\": %.1f\n\
       }\n"
      (1e9 /. ns_send) (Pump.cache_hit_rate pump) ns_lpm ns_cached
      (ns_lpm /. ns_cached) ns_send_lpm ns_send
  in
  emit_json path json

(* The robustness machinery's cost sheet: raw fabric throughput plus
   what loss-hardened convergence costs each protocol (messages, the
   ack/retransmit and keepalive/reset overhead, wall time). *)
let write_faults_json path =
  let faults = Simcore.Faults.create ~policy:(lossy_everywhere 0.2) 42L in
  let engine = Simcore.Engine.create () in
  let ns_send =
    time_ns ~warmup:10_000 ~iters:200_000 (fun () ->
        ignore
          (Simcore.Faults.send faults engine ~src:0 ~dst:1 ~delay:1.0
             (fun _ -> ()));
        Simcore.Engine.run engine)
  in
  let inet = Internet.build Internet.default_params in
  let ls_loss = 0.2 in
  let t0 = Unix.gettimeofday () in
  let lsf = Simcore.Faults.create ~policy:(lossy_everywhere ls_loss) 43L in
  let proto = Simcore.Lsproto.create ~faults:lsf inet ~domain:0 in
  let eng = Simcore.Engine.create () in
  Simcore.Lsproto.start proto eng;
  ignore (Simcore.Engine.run eng);
  let ls_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let ls = Simcore.Lsproto.stats proto in
  let bgp_loss = 0.2 in
  let t0 = Unix.gettimeofday () in
  let bf =
    Simcore.Faults.create ~policy:(lossy_everywhere bgp_loss) ~fifo:true 44L
  in
  let dyn = Simcore.Bgpdyn.create ~faults:bf inet in
  let eng = Simcore.Engine.create () in
  Simcore.Bgpdyn.originate_all_domain_prefixes dyn eng;
  (* without hold timers a lost update means reset + full replay, and
     under permanent loss the replays keep losing messages — so, as in
     E31 and the tests, the injection window must close for the run to
     quiesce; the number reported is boot-through-loss to convergence *)
  Simcore.Engine.schedule_at eng ~time:30.0 (fun _ ->
      Simcore.Faults.set_policy bf (fun ~src:_ ~dst:_ ->
          Simcore.Faults.reliable));
  ignore (Simcore.Engine.run eng);
  let bgp_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let bgp = Simcore.Bgpdyn.stats dyn in
  let json =
    Printf.sprintf
      "{\n\
      \  \"ns_per_fault_send\": %.1f,\n\
      \  \"ls_loss\": %.2f,\n\
      \  \"ls_messages\": %d,\n\
      \  \"ls_acks\": %d,\n\
      \  \"ls_retransmits\": %d,\n\
      \  \"ls_flood_ms\": %.1f,\n\
      \  \"bgp_loss\": %.2f,\n\
      \  \"bgp_updates\": %d,\n\
      \  \"bgp_resets\": %d,\n\
      \  \"bgp_boot_ms\": %.1f\n\
       }\n"
      ns_send ls_loss ls.Simcore.Lsproto.messages ls.Simcore.Lsproto.acks
      ls.Simcore.Lsproto.retransmits ls_ms bgp_loss bgp.Simcore.Bgpdyn.updates
      bgp.Simcore.Bgpdyn.resets bgp_ms
  in
  emit_json path json

(* The evolvelint cost sheet: what the repo gate costs per run — the
   untyped Parsetree pass, the typed pass (call graph + rule packs),
   the interprocedural effect fixpoint alone, and the arena-bounds
   prover alone — plus the finding counts, so CI can watch both the
   gate's latency and its signal. *)
let write_lint_json path =
  let module L = Lintcore.Lint in
  let module T = Lintcore.Typed in
  let root = if Sys.file_exists "tools/lint/allowlist" then "." else ".." in
  let ms f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    ((Unix.gettimeofday () -. t0) *. 1e3, v)
  in
  let untyped_ms, untyped =
    ms (fun () ->
        L.run_untyped ~root
          ~allow:(L.Allowlist.load (Filename.concat root "tools/lint/allowlist")))
  in
  let tree = T.load_tree ~root in
  let typed_ms, typed_diags =
    ms (fun () -> L.typed_pass ~decls:tree.T.tdecls tree.T.tmods)
  in
  let fixpoint_ms, sums =
    ms (fun () -> Lintcore.Summary.compute (Lintcore.Callgraph.build tree.T.tmods))
  in
  let bounds_ms, (bounds_sites, _) =
    let cg = Lintcore.Callgraph.build tree.T.tmods in
    ms (fun () -> Lintcore.Rules_bounds.analyze ~roots:L.bounds_roots cg)
  in
  let bounds_proven =
    List.length
      (List.filter
         (fun s -> s.Lintcore.Rules_bounds.sp_proven)
         bounds_sites)
  in
  let bindings = Hashtbl.length sums.Lintcore.Summary.full in
  let findings =
    L.run ~root
      ~allow:(L.Allowlist.load (Filename.concat root "tools/lint/allowlist"))
      ~baseline:(L.Allowlist.load (Filename.concat root "tools/lint/baseline"))
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"untyped_ms\": %.1f,\n\
      \  \"typed_ms\": %.1f,\n\
      \  \"fixpoint_ms\": %.1f,\n\
      \  \"bounds_ms\": %.1f,\n\
      \  \"bindings\": %d,\n\
      \  \"bounds_sites\": %d,\n\
      \  \"bounds_proven\": %d,\n\
      \  \"untyped_findings\": %d,\n\
      \  \"typed_findings_raw\": %d,\n\
      \  \"findings\": %d\n\
       }\n"
      untyped_ms typed_ms fixpoint_ms bounds_ms bindings
      (List.length bounds_sites) bounds_proven (List.length untyped)
      (List.length typed_diags) (List.length findings)
  in
  emit_json path json


(* The sharded data plane's headline: packets/sec as the domain pool
   widens, against the serial pump on the identical batch. One-byte
   payloads and the e21 gravity workload, matching the
   BENCH_dataplane.json baseline; best-of-5 runs because a loaded CI
   box jitters far more than the pool does. The pool walks flowlets
   (DESIGN.md §11), which is where the single-worker speedup over the
   per-packet pump comes from; extra domains then scale the walk until
   the core count caps them. *)
let write_shard_json path =
  let inet, _, _, _, _ = Lazy.force dataplane_fixture in
  let env = Forward.make_env inet in
  let wl =
    Workload.create ~packets_per_flow:16 inet
      (Workload.Gravity { zipf_s = 1.2 })
      ~seed:7L
  in
  let flows =
    List.map
      (fun (f : Workload.flow) -> { f with Workload.bytes_per_packet = 1 })
      (Workload.batch wl ~count:16384)
  in
  let npackets =
    List.fold_left (fun a (f : Workload.flow) -> a + f.Workload.packets) 0 flows
  in
  let best_of n run =
    run ();
    (* warm: fill caches, fault in the arena *)
    let best = ref infinity in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      run ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    float_of_int npackets /. !best
  in
  let pool_pps shards =
    let pool =
      Domainpool.create ~cache_slots:4096 ~ring_capacity:65536 env ~shards
        ~seed:7L
    in
    let pps = best_of 5 (fun () -> Domainpool.run pool flows) in
    Domainpool.close pool;
    pps
  in
  let p1 = pool_pps 1 in
  let p2 = pool_pps 2 in
  let p4 = pool_pps 4 in
  let p8 = pool_pps 8 in
  let pump = Pump.create ~cache_slots:4096 env in
  let baseline = best_of 3 (fun () -> Pump.run_batch pump flows) in
  let json =
    Printf.sprintf
      "{\n\
      \  \"topology\": \"e21-large-internet (12 transits x 6 stubs)\",\n\
      \  \"mode\": \"flowlet-batched domain pool vs per-packet serial pump\",\n\
      \  \"packets_per_batch\": %d,\n\
      \  \"baseline_pump_pps\": %.0f,\n\
      \  \"pps_domains_1\": %.0f,\n\
      \  \"pps_domains_2\": %.0f,\n\
      \  \"pps_domains_4\": %.0f,\n\
      \  \"pps_domains_8\": %.0f,\n\
      \  \"speedup_domains_4\": %.2f\n\
       }\n"
      npackets baseline p1 p2 p4 p8 (p4 /. baseline)
  in
  emit_json path json

(* The incident-drill scorecard: each catalog drill's recovery metrics
   and SLO verdict, plus the per-tick delivery and cumulative
   blackhole-seconds trajectories CI diffs across runs (the drills are
   deterministic, so any drift is a behaviour change). *)
let write_drills_json path =
  let fopt = function
    | None -> "null"
    | Some f -> Printf.sprintf "%.4f" f
  in
  let drill_obj b =
    let r = Ops.Drill.complete b in
    let v = Ops.Slo.evaluate r in
    let m = v.Ops.Slo.metrics in
    let rows = Ops.Drill.rows r in
    Ops.Drill.close r;
    let ok_traj =
      String.concat ", "
        (List.map
           (fun (row : Ops.Drill.tick_row) ->
             Printf.sprintf "%.4f" row.Ops.Drill.ok)
           rows)
    in
    let blackhole_traj =
      let acc = ref 0.0 in
      String.concat ", "
        (List.map
           (fun (row : Ops.Drill.tick_row) ->
             acc := !acc +. row.Ops.Drill.lost;
             Printf.sprintf "%.4f" !acc)
           rows)
    in
    Printf.sprintf
      "    {\n\
      \      \"name\": \"%s\",\n\
      \      \"pass\": %b,\n\
      \      \"detection_s\": %s,\n\
      \      \"reconverge_s\": %s,\n\
      \      \"blackhole_s\": %.4f,\n\
      \      \"stale_frac\": %.4f,\n\
      \      \"hijacked_peak\": %.4f,\n\
      \      \"ok_trajectory\": [%s],\n\
      \      \"blackhole_cumulative_s\": [%s]\n\
      \    }"
      b.Ops.Drillbook.name v.Ops.Slo.pass
      (fopt m.Ops.Slo.detection_s)
      (fopt m.Ops.Slo.reconverge_s)
      m.Ops.Slo.blackhole_s m.Ops.Slo.stale_frac m.Ops.Slo.hijacked_peak
      ok_traj blackhole_traj
  in
  let json =
    Printf.sprintf "{\n  \"drills\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.map drill_obj Ops.Drillbook.catalog))
  in
  emit_json path json

(* The overload scorecard (DESIGN.md §13): the E36 goodput-vs-load
   curve through the finite link queues, the two overload drills'
   drop-reason breakdown, and what a supervised shard restart costs in
   wall time — detection (a millisecond-scale poll), respawn, and the
   victim's cold flow caches. *)
let write_overload_json path =
  let curve =
    String.concat ",\n"
      (List.map
         (fun (r : E.e36_row) ->
           Printf.sprintf
             "    { \"load\": %d, \"offered\": %d, \"goodput\": %d, \
              \"goodput_frac\": %.4f, \"shed_frac\": %.4f, \"queue_drop\": \
              %d, \"ctrl_ok\": %.4f, \"mean_delay_ticks\": %.4f }"
             r.E.load36 r.E.offered36 r.E.goodput36 r.E.goodput_frac36
             (float_of_int r.E.shed36 /. float_of_int (max 1 r.E.offered36))
             r.E.qdrop36 r.E.ctrl_ok36 r.E.delay36)
         (E.e36_overload_response ()))
  in
  let drills =
    String.concat ",\n"
      (List.map
         (fun b ->
           let r = Ops.Drill.complete b in
           let d = Ops.Drill.drop_reasons r in
           Ops.Drill.close r;
           Printf.sprintf
             "    { \"name\": \"%s\", \"queue_full\": %d, \"shed_native\": \
              %d, \"shed_encap\": %d, \"shed_control\": %d, \
              \"fault_fabric\": %d }"
             b.Ops.Drillbook.name d.Ops.Drill.queue_full d.Ops.Drill.shed_native
             d.Ops.Drill.shed_encap d.Ops.Drill.shed_control d.Ops.Drill.fabric)
         [ Ops.Drillbook.flash_crowd; Ops.Drillbook.slow_consumer ])
  in
  let inet, _, _, _, _ = Lazy.force dataplane_fixture in
  let env = Forward.make_env inet in
  let wl =
    Workload.create ~packets_per_flow:16 inet
      (Workload.Gravity { zipf_s = 1.2 })
      ~seed:7L
  in
  let flows = Workload.batch wl ~count:4096 in
  let run_ms ~crash =
    let pool =
      Domainpool.create ~cache_slots:4096 ~ring_capacity:65536 env ~shards:4
        ~seed:7L
    in
    Domainpool.run pool flows;
    (* warm *)
    let best = ref infinity in
    for _ = 1 to 5 do
      if crash then
        Multicore.Shard.arm_crash (Domainpool.shard pool 1) ~after:256;
      let t0 = Unix.gettimeofday () in
      Domainpool.run pool flows;
      let dt = (Unix.gettimeofday () -. t0) *. 1e3 in
      if dt < !best then best := dt
    done;
    let restarts = Domainpool.restarts pool in
    Domainpool.close pool;
    (!best, restarts)
  in
  let base_ms, _ = run_ms ~crash:false in
  let crash_ms, restarts = run_ms ~crash:true in
  let json =
    Printf.sprintf
      "{\n\
      \  \"goodput_vs_load\": [\n\
       %s\n\
      \  ],\n\
      \  \"overload_drills\": [\n\
       %s\n\
      \  ],\n\
      \  \"uncrashed_run_ms\": %.3f,\n\
      \  \"crashed_run_ms\": %.3f,\n\
      \  \"recovery_overhead_ms\": %.3f,\n\
      \  \"restarts\": %d\n\
       }\n"
      curve drills base_ms crash_ms
      (Float.max 0.0 (crash_ms -. base_ms))
      restarts
  in
  emit_json path json

let () =
  if Array.exists (fun a -> a = "--json") Sys.argv then begin
    write_bench_json "BENCH_dataplane.json";
    write_faults_json "BENCH_faults.json";
    write_lint_json "BENCH_lint.json";
    write_shard_json "BENCH_shard.json";
    write_drills_json "BENCH_drills.json";
    write_overload_json "BENCH_overload.json"
  end
  else begin
    figures ();
    experiments ();
    run_benchmarks ()
  end
