(* Shared-state inventory.

   Catalogue every module-level mutable container in the nine
   libraries — toplevel `ref`s, arrays, `bytes`, `Hashtbl.t`s,
   `Buffer`/`Queue`/`Stack`/`Atomic`s and records with mutable fields —
   and classify how far each escapes:

     module-private   < crosses-module < crosses-library < pump-reachable

   Every toplevel item is also a finding (rule `shared-state`):
   module-level mutable state is process-global, so it cannot be owned
   by one pump instance when the data plane shards across OCaml 5
   domains (ROADMAP 1), and it silently couples experiments that the
   determinism conventions assume independent. Thread it through a
   constructor instead, or allowlist it with an ownership argument.

   Mutable *record fields* are inventory-only: a mutable field on an
   instance type (Telemetry.counters, Flowcache.t) is the sanctioned
   instance-state idiom, and the domain-safety rule already checks that
   every write to one is rooted in an instance. The inventory (dumped
   by `--summaries`) records which bindings assign each field and
   whether any of them sits on the pump path. *)

module SS = Set.Make (String)

type item = {
  it_node : string;  (* "Module.binding" *)
  it_kind : string;  (* "ref", "Hashtbl.t", "record with mutable fields" *)
  it_file : string;
  it_line : int;
  it_class : string;
  it_writers : string list;  (* bindings whose summary writes this target *)
}

type field_item = {
  fi_id : string;  (* "Telemetry.counters.packets" *)
  fi_file : string;
  fi_line : int;
  fi_writers : string list;  (* bindings that assign this field *)
  fi_pump : bool;  (* some writer is reachable from the pump roots *)
}

(* ------------------------------------------------------------------ *)
(* Mutable-container detection, on the binding's type                  *)

let rec container ~(decls : Typed.decls) ~self (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Ttuple tys -> List.find_map (container ~decls ~self) tys
  | Types.Tconstr (p, _, _) -> (
      match List.rev (Typed.path_components p []) with
      | [] -> None
      | t :: rest -> (
          let m =
            match rest with m :: _ -> Typed.plain_module m | [] -> self
          in
          match (m, t) with
          | _, "ref" -> Some "ref"
          | _, "array" -> Some "array"
          | _, "bytes" -> Some "bytes"
          | "Hashtbl", "t" -> Some "Hashtbl.t"
          | "Buffer", "t" -> Some "Buffer.t"
          | "Queue", "t" -> Some "Queue.t"
          | "Stack", "t" -> Some "Stack.t"
          | "Atomic", "t" -> Some "Atomic.t"
          | _ -> (
              let decl =
                match Hashtbl.find_opt decls.Typed.impl (m, t) with
                | Some d -> Some d
                | None -> Hashtbl.find_opt decls.Typed.intf (m, t)
              in
              match decl with
              | Some { Types.type_kind = Type_record (lds, _); _ }
                when List.exists
                       (fun (ld : Types.label_declaration) ->
                         ld.Types.ld_mutable = Asttypes.Mutable)
                       lds ->
                  Some (Printf.sprintf "record %s.%s with mutable fields" m t)
              | _ -> None)))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Inventory                                                           *)

let inventory ~(decls : Typed.decls) ~(sums : Summary.info) ~dom
    (cg : Callgraph.t) (mods : Typed.modinfo list) =
  (* node -> owning library, and reverse reference edges *)
  let lib_of = Hashtbl.create 64 in
  List.iter
    (fun (b : Callgraph.bind) ->
      if not (Hashtbl.mem lib_of b.Callgraph.b_node) then
        Hashtbl.replace lib_of b.Callgraph.b_node
          b.Callgraph.b_mod.Typed.ti_lib)
    cg.Callgraph.binds;
  let referrers node =
    List.filter
      (fun (b : Callgraph.bind) ->
        b.Callgraph.b_node <> node
        && SS.mem node (Callgraph.succs cg b.Callgraph.b_node))
      cg.Callgraph.binds
  in
  let writers_of node =
    List.sort_uniq String.compare
      (List.filter_map
         (fun (b : Callgraph.bind) ->
           let s = Summary.get sums.Summary.base b.Callgraph.b_node in
           if Summary.SS.mem node s.Summary.writes_shared then
             Some b.Callgraph.b_node
           else None)
         cg.Callgraph.binds)
  in
  let items =
    List.filter_map
      (fun (b : Callgraph.bind) ->
        let node = b.Callgraph.b_node in
        let m = b.Callgraph.b_mod in
        let ty = b.Callgraph.b_vb.Typedtree.vb_expr.Typedtree.exp_type in
        match Types.get_desc ty with
        | Types.Tarrow _ -> None (* functions are not state *)
        | _ -> (
            match container ~decls ~self:m.Typed.ti_module ty with
            | None -> None
            | Some kind ->
                let refs = referrers node in
                let owner_mod = Callgraph.module_of_node node in
                let owner_lib = m.Typed.ti_lib in
                let cross_lib =
                  List.exists
                    (fun (r : Callgraph.bind) ->
                      r.Callgraph.b_mod.Typed.ti_lib <> owner_lib)
                    refs
                in
                let exported =
                  match m.Typed.ti_intf with
                  | Some intf ->
                      let want =
                        "val " ^ Callgraph.binding_of_node node
                      in
                      let n = String.length intf
                      and w = String.length want in
                      let rec go i =
                        i + w <= n
                        && (String.sub intf i w = want || go (i + 1))
                      in
                      go 0
                  | None -> false
                in
                let cross_mod =
                  exported
                  || List.exists
                       (fun (r : Callgraph.bind) ->
                         Callgraph.module_of_node r.Callgraph.b_node
                         <> owner_mod)
                       refs
                in
                let cls =
                  if Callgraph.mem dom node then "pump-reachable"
                  else if cross_lib then "crosses-library"
                  else if cross_mod then "crosses-module"
                  else "module-private"
                in
                let line, _ =
                  Diag.loc_pos b.Callgraph.b_vb.Typedtree.vb_loc
                in
                Some
                  {
                    it_node = node;
                    it_kind = kind;
                    it_file = m.Typed.ti_file;
                    it_line = line;
                    it_class = cls;
                    it_writers = writers_of node;
                  }))
      cg.Callgraph.binds
  in
  (* mutable record fields, per defining module, with their writers *)
  let field_writers = Hashtbl.create 64 in
  Hashtbl.iter
    (fun node fields ->
      Summary.SS.iter
        (fun f ->
          let cur =
            Option.value (Hashtbl.find_opt field_writers f) ~default:[]
          in
          Hashtbl.replace field_writers f (node :: cur))
        fields)
    sums.Summary.field_writes;
  let fields =
    List.concat_map
      (fun (m : Typed.modinfo) ->
        List.concat_map
          (fun (it : Typedtree.structure_item) ->
            match it.Typedtree.str_desc with
            | Tstr_type (_, tds) ->
                List.concat_map
                  (fun (td : Typedtree.type_declaration) ->
                    match td.Typedtree.typ_type.Types.type_kind with
                    | Type_record (lds, _) ->
                        List.filter_map
                          (fun (ld : Types.label_declaration) ->
                            if ld.Types.ld_mutable <> Asttypes.Mutable then
                              None
                            else
                              let fi_id =
                                Printf.sprintf "%s.%s.%s" m.Typed.ti_module
                                  td.Typedtree.typ_name.Location.txt
                                  (Ident.name ld.Types.ld_id)
                              in
                              let writers =
                                List.sort_uniq String.compare
                                  (Option.value
                                     (Hashtbl.find_opt field_writers fi_id)
                                     ~default:[])
                              in
                              let line, _ = Diag.loc_pos ld.Types.ld_loc in
                              Some
                                {
                                  fi_id;
                                  fi_file = m.Typed.ti_file;
                                  fi_line = line;
                                  fi_writers = writers;
                                  fi_pump =
                                    List.exists
                                      (fun w -> Callgraph.mem dom w)
                                      writers;
                                })
                          lds
                    | _ -> [])
                  tds
            | _ -> [])
          m.Typed.ti_str.Typedtree.str_items)
      mods
  in
  (items, fields)

(* ------------------------------------------------------------------ *)
(* The rule: every toplevel mutable container is a finding             *)

let check ~decls ~sums ~dom (cg : Callgraph.t) mods =
  let items, _ = inventory ~decls ~sums ~dom cg mods in
  List.map
    (fun it ->
      let binding = Callgraph.binding_of_node it.it_node in
      let key = it.it_file ^ ":" ^ binding in
      Diag.make ~line:it.it_line ~key ~file:it.it_file ~rule:"shared-state"
        (Printf.sprintf
           "toplevel mutable state `%s` (%s, escape: %s%s): module-level \
            state is process-global — it cannot be owned by one pump \
            instance once the data plane shards across domains (ROADMAP 1) \
            and it couples experiments; thread it through a constructor, or \
            add `shared-state %s` to tools/lint/allowlist with an ownership \
            argument"
           binding it.it_kind it.it_class
           (match it.it_writers with
           | [] -> ""
           | ws -> "; written by " ^ String.concat ", " ws)
           key))
    items
