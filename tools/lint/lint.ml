(* evolvelint: repo-invariant static analysis.

   Two passes. The untyped pass parses every .ml/.mli under lib/,
   bin/, bench/ and test/ into Parsetree (compiler-libs) and walks it,
   plus a tiny dune-file reader for the library graph. The typed pass
   (Typed, Callgraph, the Rules_ modules) loads the .cmt/.cmti artifacts dune emits
   for the nine libraries and runs the comparison-safety, exception
   hygiene and hot-path allocation rule packs over the Typedtree, with
   a cross-module call graph for reachability. See [rules] for the
   rationale of each rule. *)

type diag = Diag.t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
  key : string option;
}

let diag ?(line = 1) ?(col = 1) ?key ~file ~rule msg =
  Diag.make ~line ~col ?key ~file ~rule msg

let to_string = Diag.to_string
let compare_diag = Diag.compare

(* ------------------------------------------------------------------ *)
(* Rule registry (id, rationale) — printed by `--explain`.             *)

let layer_order =
  [| "netcore"; "topology"; "routing"; "interdomain"; "simcore"; "anycast";
     "vnbone"; "dataplane"; "multicore"; "ops"; "evolve" |]

let layer_order_str = String.concat " < " (Array.to_list layer_order)

let rules =
  [
    ( "layering",
      "The (libraries ...) dependency DAG under lib/ must respect the strict \
       bottom-up order " ^ layer_order_str ^ ". No upward or sideways edge is \
       allowed: modules needing the event engine live in simcore, not \
       routing. Provenance: CLAUDE.md conventions; the paper's layering \
       argument (new IPvN generations ride on what exists, \u{00A7}3.2) only \
       holds if the substrate itself stays acyclic." );
    ( "random-direct",
      "No Random.* outside lib/topology/rng.ml. All randomness flows through \
       Topology.Rng with explicit seeds so every experiment is replayable. \
       Provenance: CLAUDE.md conventions; DESIGN.md \u{00A7}7 (determinism: \
       Report.generate is compared for equality in tests)." );
    ( "forbidden-call",
      "Random.self_init, Sys.time, Unix.gettimeofday, Unix.time and \
       Hashtbl.randomize are forbidden everywhere in lib/: they inject \
       wall-clock or process state into results and break replayable \
       experiments. Provenance: CLAUDE.md determinism convention." );
    ( "hashtbl-order",
      "A Hashtbl.fold/Hashtbl.iter whose result escapes without passing \
       through List.sort / List.sort_uniq is flagged: hash-bucket order is \
       an implementation detail, and routing or report output must not \
       depend on it. Verified-safe sites (order-insensitive consumers) are \
       recorded in tools/lint/allowlist as `hashtbl-order file.ml:binding`. \
       Provenance: CLAUDE.md determinism convention; DESIGN.md \u{00A7}7." );
    ( "missing-mli",
      "Every public module under lib/ must have an .mli: the interface is \
       where the paper mapping and the API contract live. Provenance: \
       CLAUDE.md conventions." );
    ( "mli-doc-ref",
      "Every .mli under lib/ must carry at least one doc comment tying it \
       to the paper section it implements (a \u{00A7} reference or the word \
       'Section'). Provenance: CLAUDE.md conventions ('doc comments tying \
       it to the paper section it implements')." );
    ( "experiment-artifacts",
      "Every experiment eN defined in lib/core/experiments.ml must ship all \
       seven artifacts: a typed row record (eN_row), a print_eN, a CLI hook \
       in bin/evolvenet.ml, a bench hook in bench/main.ml, a Report \
       section (\"EN — ...\"), an EXPERIMENTS.md entry (\"## EN\") and a \
       shape-asserting suite (\"eN\") in test/test_experiments.ml. \
       Provenance: CLAUDE.md seven-artifact rule." );
    ( "parse-error",
      "Every .ml/.mli in lib/, bin/, bench/ and test/ and every lib/*/dune \
       must parse; the other rules are only as good as the parse." );
    ( "stale-allowlist",
      "An allowlist entry that no longer matches any flagged site must be \
       deleted, so the allowlist stays an accurate record of verified-safe \
       sites rather than a blanket waiver." );
    ( "poly-compare",
      "Polymorphic =/<>/compare/</<=/>/>=/min/max applied at a functional, \
       float-carrying, abstract or opaque type. The structural order on \
       such types is either a runtime error (functions), not total (nan), \
       or silently different from the module's own compare once the \
       representation changes — which breaks the deterministic Map/sort \
       orders Report.generate depends on. Checked on the Typedtree at the \
       instantiated use-site type, so generic 'a helpers stay quiet. One \
       carve-out: < <= > >= at exactly [float] compile to the IEEE \
       comparison, which is deterministic; the nan hazard is specific to \
       =/compare/min/max and to floats inside structures. Provenance: \
       DESIGN.md \u{00A7}7 determinism; CLAUDE.md ('All randomness... \
       experiments must be deterministic')." );
    ( "physical-eq",
      "== and != compare heap addresses, which the language leaves \
       unspecified on immutable values; any use outside an allowlisted \
       site (`physical-eq file.ml:binding`) is an error. Use structural \
       equality or the type's own equal. Provenance: CLAUDE.md determinism \
       convention." );
    ( "catch-all",
      "`try ... with _ ->` (or a never-re-raised variable handler) \
       swallows every exception including programming errors, turning \
       invariant violations into silent wrong results — the opposite of \
       what a reproduction harness wants. Match the constructors you mean, \
       or re-raise. Provenance: CLAUDE.md determinism convention; the \
       paper's \u{00A7}3.2 layering argument assumes invariant violations \
       surface." );
    ( "undoc-raise",
      "A lib/ function raises an exception that escapes the module (no \
       in-module handler) while its .mli never mentions the exception: \
       the interface contract is incomplete. Document it (e.g. `@raise \
       Invalid_argument`) in the .mli. Assert_failure/Match_failure are \
       exempt. Provenance: CLAUDE.md ('Every public module has an .mli \
       with doc comments')." );
    ( "hot-path-alloc",
      "Functions transitively reachable from the data-plane roots \
       (Pump.inject/Pump.step, Flowcache.lookup, Wire.peek_*, and the \
       sharded pool's Shard.run worker loop with its Ring.push/Ring.pop \
       handoffs) must not \
       allocate per call: capturing closures, tuple/option/list cells and \
       partial applications are flagged, one aggregated diagnostic per \
       function. Deliberate allocations (the trace a function exists to \
       build) go in tools/lint/allowlist; legacy ones burn down in \
       tools/lint/baseline. Provenance: DESIGN.md data-plane section \
       (\u{00A7}3.3.2 forwarding treats payloads as opaque bytes — the \
       per-hop budget is header reads, not allocation)." );
    ( "shared-state",
      "Every toplevel mutable container in lib/ (ref, array, bytes, \
       Hashtbl, Buffer/Queue/Stack/Atomic, record with mutable fields) is \
       catalogued with its escape class — module-private < crosses-module \
       < crosses-library < pump-reachable — and flagged: module-level \
       state is process-global, so it cannot be owned by one pump instance \
       once the data plane shards across OCaml 5 domains (ROADMAP 1), and \
       it couples experiments the determinism conventions assume \
       independent. Thread it through a constructor; deliberate exceptions \
       go in tools/lint/allowlist with an ownership argument. Mutable \
       record fields on instance types are the sanctioned idiom and are \
       inventory-only (`--summaries`). Provenance: DESIGN.md \u{00A7}9.4; \
       ROADMAP item 1." );
    ( "domain-unsafe-write",
      "Functions reachable from the pump entry points (Pump.inject / \
       Pump.step, Flowcache.lookup) and the multicore worker roots \
       (Shard.run, Ring.push, Ring.pop — the code one domain per shard \
       executes concurrently) must not write state that is not \
       provably owned by a single pump instance. The summary engine traces \
       every mutation to the root of the written lvalue — through record \
       fields, `!` and array reads — and classifies it: rooted in a \
       parameter, local or fresh value is instance-owned (today's \
       telemetry bumps and cache counters pass this way, not via \
       allowlist); rooted in module-level state is a finding, because it \
       becomes a cross-domain data race when the data plane shards \
       (ROADMAP 1). This gate must read zero before and after that \
       refactor. Provenance: DESIGN.md \u{00A7}9.4; the paper's \u{00A7}3-4 \
       argument that the cost of change be explicit before deploying it." );
    ( "determinism-taint",
      "Flow-based complement to random-direct/forbidden-call: the effect \
       summaries propagate a nondeterminism witness (unseeded Random.*, \
       wall clock, Hashtbl.randomize) through the call graph, and any \
       witness reaching a determinism surface — an Experiments.eN entry \
       point or Report.generate, whose outputs tests compare for byte \
       equality — is flagged at the surface with the originating source \
       named. A seeded Topology.Rng draw laundered through helpers stays \
       clean; an unseeded source two hops away does not. Provenance: \
       DESIGN.md \u{00A7}7 determinism; CLAUDE.md ('experiments must be \
       deterministic')." );
    ( "atomic-role",
      "Coverage gate for the atomics-protocol verifier: every `Atomic.t` \
       record field in lib/multicore must carry a declared role in the \
       atomic_roles table (single-writer, publish-flag, counter or \
       read-only-view), and every table entry must still name a real \
       field. A new atomic that lands without a role would silently \
       bypass the protocol checks, and a stale entry means the table \
       drifted from the code — both are findings, so the role table and \
       the data structures cannot diverge. Provenance: DESIGN.md \
       \u{00A7}9.5; the SPSC ring and doorbell protocols of the \
       multicore plane." );
    ( "atomic-protocol",
      "Checks every Atomic operation in the whole call graph against the \
       touched field's declared role. Single-writer fields accept writes \
       only from their declared writer functions, and inside those \
       writers every write to the published slot must precede the \
       Atomic.set that publishes it — the seq_cst store is the \
       happens-before edge the consuming domain relies on. Publish \
       flags flip only from their writers; counters are \
       fetch_and_add/incr/decr-only except from declared setters, and a \
       setter that spawns domains must store before any spawn, because \
       the spawned domains read the counter. Read-only views are never \
       written; the Summary accessor map lets the checker see a view \
       through `Array.map Shard.asleep_flag` — the returned-alias blind \
       spot of \u{00A7}9.4, closed here. Two checks need no \
       declaration: an Atomic write the verifier cannot resolve to a \
       field defeats the scheme and is flagged, and a binding that \
       combines separate loads of two single-writer fields from outside \
       either writer observes a non-snapshot that can mix states from \
       different instants (the Ring.length clamp exists because this \
       pack was dogfooded on it). Provenance: DESIGN.md \u{00A7}9.5; \
       the publication-order argument in lib/multicore/ring.ml." );
    ( "arena-bounds",
      "A linear-arithmetic bounds prover over the typed tree: every \
       Bigarray/Bytes index reachable from the bounds-proof roots must \
       be proved in-bounds from the facts that dominate it — branch \
       guards (with \u{00B1}1 tightening on strict integer \
       comparisons), for-loop ranges, early-exit raise guards, \
       `&&`-chain predicates exported as postconditions, and the arena \
       contract: `let off = Arena.alloc a len` plus a later `off >= 0` \
       licenses `off + len <= dim(a)`. Obligations a binding cannot \
       discharge locally are re-expressed over its formal parameters \
       and discharged at call sites, one reverse-topological pass over \
       the call-graph SCCs; what still escapes at a root is a finding. \
       Checked String.get/Array.get stay out of scope by design — the \
       decode cursor and the ring's masked indexing rely on runtime \
       checks. Provenance: DESIGN.md \u{00A7}9.5; the paper's \
       \u{00A7}3 requirement that the cost of a data-plane change be \
       measured, which the unsafe flip's pps delta quantifies \
       (BENCH_shard.json)." );
    ( "unsafe-unproven",
      "The license that makes `unsafe_get`/`unsafe_set` a proof \
       artifact instead of a judgment call: any unsafe access in lib/ \
       whose site the bounds prover did not prove in-bounds is a \
       finding, whether or not it is reachable from the bounds roots. \
       Together with the CI gate — every unsafe occurrence in lib/ must \
       appear in the `--proven` site list as proven — an unsafe access \
       can exist only where a machine-checked proof, or an allowlist \
       entry with a written justification, stands behind it. \
       Provenance: DESIGN.md \u{00A7}9.5; CLAUDE.md (unsafe accesses \
       are lint-licensed only)." );
    ( "stale-baseline",
      "A baseline entry that no longer matches any finding means the debt \
       it recorded was paid; delete the line so the baseline only shrinks. \
       tools/lint/baseline grandfathers findings that predate a rule, \
       letting new rules land strict on new code without a big-bang \
       cleanup." );
    ( "typed-engine",
      "The typed rule packs need the .cmt/.cmti artifacts dune emits \
       (-bin-annot is on by default); a library with no artifacts, or an \
       unreadable cmt, is an error rather than a silent skip — otherwise \
       the typed rules would pass vacuously." );
  ]

(* Roots of the data-plane hot path for the allocation lint; a
   trailing '*' is a prefix wildcard. Pump.step is the paper-facing
   alias kept for forward compatibility. Shard.run is the multicore
   worker loop (one per domain) and Ring.push/Ring.pop the SPSC
   handoff it drives — per-packet code, so alloc-free. *)
let hot_path_roots =
  [
    "Pump.inject";
    "Pump.step";
    "Flowcache.lookup";
    "Wire.peek_*";
    "Shard.run";
    "Ring.push";
    "Ring.pop";
  ]

(* Roots of the domain-safety gate: the entry points a sharded data
   plane runs concurrently — the serial pump's (one pump instance per
   domain) plus the multicore pool's worker loop and ring operations,
   which execute on every domain at once. Narrower than the hot
   path — Wire.peek_* are pure header reads and are covered
   transitively anyway. *)
let domain_safety_roots =
  [
    "Pump.inject";
    "Pump.step";
    "Flowcache.lookup";
    "Shard.run";
    "Ring.push";
    "Ring.pop";
  ]

(* ------------------------------------------------------------------ *)
(* evolvelint v4: atomic roles and bounds roots (DESIGN.md §9.5)       *)

(* The declared per-field protocol for every Atomic.t in lib/multicore.
   rules_atomic checks the whole call graph against this table, and the
   atomic-role coverage check keeps the table total: an Atomic field
   without an entry, or an entry without a field, is a finding. *)
let atomic_roles : (string * Rules_atomic.role) list =
  [
    (* SPSC ring: the consumer owns head, the producer owns tail, and
       each side's slot write must precede its index publish — the
       Atomic.set is the happens-before edge to the other domain. *)
    ( "Ring.t.head",
      Rules_atomic.Single_writer
        { writers = [ "Ring.pop" ]; publishes = Some "Ring.t.buf" } );
    ( "Ring.t.tail",
      Rules_atomic.Single_writer
        { writers = [ "Ring.push" ]; publishes = Some "Ring.t.buf" } );
    (* Pool-wide in-flight count, one atomic shared by the pool and
       every shard (Shard.create receives Domainpool's). Workers only
       fetch_and_add; the single store happens in Domainpool.run,
       before any domain is spawned. *)
    ("Shard.t.live", Rules_atomic.Counter { setters = [] });
    ( "Domainpool.t.live",
      Rules_atomic.Counter
        { setters = [ "Domainpool.run"; "Domainpool.run_cooperative" ] } );
    (* Doorbell protocol: each worker publishes its own asleep flag
       around the blocking select; peers observe it only through the
       read-only peer_asleep array Domainpool wires up. *)
    ( "Shard.t.asleep",
      Rules_atomic.Publish_flag { writers = [ "Shard.nap" ] } );
    ( "Shard.t.peer_asleep",
      Rules_atomic.Read_only_view { of_field = "Shard.t.asleep" } );
    (* Credit/watermark protocol (DESIGN.md §13): each consumer
       publishes its own congestion flag from its pass loop; producers
       observe it only through the read-only peer_congested array. *)
    ( "Shard.t.congested",
      Rules_atomic.Publish_flag { writers = [ "Shard.update_congestion" ] } );
    ( "Shard.t.peer_congested",
      Rules_atomic.Read_only_view { of_field = "Shard.t.congested" } );
    (* Supervision (DESIGN.md §13): a crashing worker publishes its own
       death as it exits the run loop; only the supervisor — which has
       joined the domain first — clears it in Shard.revive. *)
    ( "Shard.t.dead",
      Rules_atomic.Publish_flag
        { writers = [ "Shard.crash_exit"; "Shard.revive" ] } );
  ]

(* Modules whose Atomic fields the coverage check applies to: all of
   lib/multicore, plus any module the role table itself names — so a
   test fixture module called Ring exercises the coverage and
   staleness checks with a custom table. *)
let atomic_scope (m : Typed.modinfo) =
  m.Typed.ti_lib = "multicore"
  || List.exists
       (fun (f, _) ->
         match String.index_opt f '.' with
         | Some i -> String.sub f 0 i = m.Typed.ti_module
         | None -> false)
       atomic_roles

(* Roots of the bounds-proof obligation set: the per-packet entry
   points plus the Wire slab codecs they drive. Wire.big_peek_ok is
   named explicitly — the peek_* wildcard does not cover it, and its
   &&-chain is the postcondition the peek proofs instantiate. *)
let bounds_roots =
  [
    "Pump.run_batch_in";
    "Shard.run";
    "Wire.peek_*";
    "Wire.encode_into";
    "Wire.decode_big";
    "Wire.big_peek_ok";
  ]

(* ------------------------------------------------------------------ *)
(* Small string helpers                                                *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* [has_word s w]: [w] occurs in [s] with a non-alphanumeric character
   before it and no digit directly after ("E4" matches "E4 —" but
   neither "E40" nor "PE4"). *)
let has_word s w =
  let n = String.length s and m = String.length w in
  let rec go i =
    if i + m > n then false
    else if
      String.sub s i m = w
      && (i = 0 || not (is_alnum s.[i - 1]))
      && (i + m = n || not (is_digit s.[i + m]))
    then true
    else go (i + 1)
  in
  m > 0 && go 0

let split_lines s = String.split_on_char '\n' s

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)

module Allowlist = struct
  type entry = { e_rule : string; e_key : string; e_line : int; mutable used : bool }
  type t = { path : string; entries : entry list }

  let empty = { path = "<builtin-empty>"; entries = [] }

  (* One entry per line: `RULE FILE:KEY`; `#` starts a comment. *)
  let parse ~path contents =
    let entries =
      List.concat
        (List.mapi
           (fun i line ->
             let line =
               match String.index_opt line '#' with
               | Some j -> String.sub line 0 j
               | None -> line
             in
             let line = String.trim line in
             if line = "" then []
             else
               match String.index_opt line ' ' with
               | None -> []
               | Some j ->
                   let rule = String.sub line 0 j in
                   let key =
                     String.trim
                       (String.sub line (j + 1) (String.length line - j - 1))
                   in
                   [ { e_rule = rule; e_key = key; e_line = i + 1; used = false } ])
           (split_lines contents))
    in
    { path; entries }

  let load path = parse ~path (read_file path)

  let mem t ~rule ~key =
    match
      List.find_opt (fun e -> e.e_rule = rule && e.e_key = key) t.entries
    with
    | Some e ->
        e.used <- true;
        true
    | None -> false

  let stale ?(rule = "stale-allowlist") t =
    List.filter_map
      (fun e ->
        if e.used then None
        else
          Some
            (diag ~file:t.path ~line:e.e_line ~rule
               (Printf.sprintf
                  "entry `%s %s` matched no flagged site; delete it" e.e_rule
                  e.e_key)))
      t.entries
end

(* Keyed diagnostics (the typed rule packs) are suppressed by either
   file: the allowlist records deliberate, justified exceptions; the
   baseline grandfathers legacy findings that predate a rule so it can
   land strict on new code. Allowlist wins, so one site never marks
   both files used. *)
let filter_suppressed ~allow ~baseline diags =
  List.filter
    (fun (d : diag) ->
      match d.key with
      | None -> true
      | Some key ->
          (not (Allowlist.mem allow ~rule:d.rule ~key))
          && not (Allowlist.mem baseline ~rule:d.rule ~key))
    diags

(* ------------------------------------------------------------------ *)
(* Parsing helpers (compiler-libs)                                     *)

let parse_lexbuf ~filename src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf filename;
  lexbuf

let parse_error_diag ~file exn =
  diag ~file ~rule:"parse-error"
    (Printf.sprintf "does not parse: %s" (Printexc.to_string exn))

let parse_impl ~filename src =
  try Ok (Parse.implementation (parse_lexbuf ~filename src))
  with exn -> Error (parse_error_diag ~file:filename exn)

let parse_intf ~filename src =
  try Ok (Parse.interface (parse_lexbuf ~filename src))
  with exn -> Error (parse_error_diag ~file:filename exn)

let flatten_lident l = try Longident.flatten l with _ -> []

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

let expr_ident (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match strip_stdlib (flatten_lident txt) with [] -> None | p -> Some p)
  | _ -> None

let loc_pos = Diag.loc_pos

(* ------------------------------------------------------------------ *)
(* Rule family 2: determinism                                          *)

let sort_fns = [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]

(* head identifier of an expression, looking through application *)
let head_ident (e : Parsetree.expression) =
  match e.pexp_desc with Pexp_apply (f, _) -> expr_ident f | _ -> expr_ident e

let is_sort_expr e =
  match head_ident e with
  | Some [ "List"; f ] -> List.mem f sort_fns
  | _ -> false

let forbidden_idents =
  [
    ([ "Random"; "self_init" ], "seeds from process state");
    ([ "Sys"; "time" ], "wall-clock/CPU time");
    ([ "Unix"; "gettimeofday" ], "wall-clock time");
    ([ "Unix"; "time" ], "wall-clock time");
    ([ "Hashtbl"; "randomize" ], "randomizes bucket order");
  ]

(* Determinism walk over one lib/ source file. [path] is the
   repo-relative path, used both in diagnostics and for the
   lib/topology/rng.ml exemption. *)
let check_determinism ~allow ~path src =
  match parse_impl ~filename:path src with
  | Error d -> [ d ]
  | Ok structure ->
      let diags = ref [] in
      let add ~loc ~rule msg =
        let line, col = loc_pos loc in
        diags := diag ~file:path ~line ~col ~rule msg :: !diags
      in
      let is_rng_module =
        path = "lib/topology/rng.ml"
        || Filename.basename path = "rng.ml"
           && contains_sub path "topology"
      in
      (* Locations of fold/iter applications already piped through a
         List.sort — marked top-down before the child is visited. *)
      let sorted : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
      let mark (e : Parsetree.expression) =
        Hashtbl.replace sorted (loc_pos e.pexp_loc) ()
      in
      let current_binding = ref None in
      let open Ast_iterator in
      let iter =
        {
          default_iterator with
          value_binding =
            (fun it vb ->
              match (!current_binding, vb.pvb_pat.ppat_desc) with
              | None, Ppat_var { txt; _ } ->
                  current_binding := Some txt;
                  default_iterator.value_binding it vb;
                  current_binding := None
              | _ -> default_iterator.value_binding it vb);
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_apply (f, args) -> (
                  (* establish sorted contexts for children *)
                  (if is_sort_expr e then
                     List.iter (fun (_, a) -> mark a) args);
                  (match (expr_ident f, args) with
                  | Some [ "|>" ], [ (_, l); (_, r) ] when is_sort_expr r ->
                      mark l
                  | Some [ "@@" ], [ (_, l); (_, r) ] when is_sort_expr l ->
                      mark r
                  | _ -> ());
                  match expr_ident f with
                  | Some [ "Hashtbl"; ("fold" | "iter") as fn ] ->
                      if not (Hashtbl.mem sorted (loc_pos e.pexp_loc)) then begin
                        let binding =
                          Option.value !current_binding ~default:"<toplevel>"
                        in
                        let key = path ^ ":" ^ binding in
                        if not (Allowlist.mem allow ~rule:"hashtbl-order" ~key)
                        then
                          add ~loc:f.pexp_loc ~rule:"hashtbl-order"
                            (Printf.sprintf
                               "Hashtbl.%s result escapes `%s` without a \
                                List.sort/List.sort_uniq; sort it or add \
                                `hashtbl-order %s` to tools/lint/allowlist \
                                with a justification"
                               fn binding key)
                      end
                  | _ -> ())
              | Pexp_ident { txt; loc } -> (
                  let p = strip_stdlib (flatten_lident txt) in
                  (match List.assoc_opt p forbidden_idents with
                  | Some why ->
                      add ~loc ~rule:"forbidden-call"
                        (Printf.sprintf "%s is forbidden in lib/ (%s)"
                           (String.concat "." p) why)
                  | None -> ());
                  match p with
                  | "Random" :: rest
                    when (not is_rng_module) && rest <> [ "self_init" ] ->
                      add ~loc ~rule:"random-direct"
                        (Printf.sprintf
                           "direct %s use; all randomness must flow through \
                            Topology.Rng with an explicit seed"
                           (String.concat "." p))
                  | _ -> ())
              | _ -> ());
              default_iterator.expr it e);
        }
      in
      iter.structure iter structure;
      List.rev !diags

(* ------------------------------------------------------------------ *)
(* Rule family 1: layering (dune-file reader)                          *)

type sexp = Atom of string * int | SList of sexp list * int

let parse_sexps ~path src =
  let n = String.length src in
  let line = ref 1 in
  let pos = ref 0 in
  let peek () = src.[!pos] in
  let advance () =
    if peek () = '\n' then incr line;
    incr pos
  in
  let rec skip_ws () =
    if !pos < n then
      match peek () with
      | ' ' | '\t' | '\r' | '\n' ->
          advance ();
          skip_ws ()
      | ';' ->
          while !pos < n && peek () <> '\n' do
            advance ()
          done;
          skip_ws ()
      | _ -> ()
  in
  let rec parse_one () =
    let l0 = !line in
    match peek () with
    | '(' ->
        advance ();
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          if !pos >= n then failwith (path ^ ": unbalanced parenthesis")
          else if peek () = ')' then advance ()
          else begin
            items := parse_one () :: !items;
            loop ()
          end
        in
        loop ();
        SList (List.rev !items, l0)
    | '"' ->
        advance ();
        let b = Buffer.create 16 in
        let rec str () =
          if !pos >= n then failwith (path ^ ": unterminated string")
          else
            match peek () with
            | '"' -> advance ()
            | '\\' ->
                advance ();
                if !pos < n then begin
                  Buffer.add_char b (peek ());
                  advance ()
                end;
                str ()
            | c ->
                Buffer.add_char b c;
                advance ();
                str ()
        in
        str ();
        Atom (Buffer.contents b, l0)
    | _ ->
        let b = Buffer.create 16 in
        let rec atom () =
          if !pos < n then
            match peek () with
            | ' ' | '\t' | '\r' | '\n' | '(' | ')' | ';' -> ()
            | c ->
                Buffer.add_char b c;
                advance ();
                atom ()
        in
        atom ();
        Atom (Buffer.contents b, l0)
  in
  let rec top acc =
    skip_ws ();
    if !pos >= n then List.rev acc else top (parse_one () :: acc)
  in
  top []

let rank name =
  let r = ref None in
  Array.iteri (fun i x -> if x = name then r := Some i) layer_order;
  !r

let stanza_field fields key =
  List.find_map
    (function
      | SList (Atom (k, _) :: rest, _) when k = key -> Some rest | _ -> None)
    fields

(* [dune_files] is a list of (repo-relative path, contents). Only
   library stanzas are inspected; stanzas outside lib/ may depend on
   anything. *)
let check_layering ~dune_files =
  List.concat_map
    (fun (path, src) ->
      match parse_sexps ~path src with
      | exception Failure msg -> [ diag ~file:path ~rule:"parse-error" msg ]
      | sexps ->
          List.concat_map
            (function
              | SList (Atom ("library", _) :: fields, stanza_line) -> (
                  let name =
                    match stanza_field fields "name" with
                    | Some (Atom (n, l) :: _) -> Some (n, l)
                    | _ -> None
                  in
                  let deps =
                    match stanza_field fields "libraries" with
                    | Some atoms ->
                        List.filter_map
                          (function Atom (a, l) -> Some (a, l) | _ -> None)
                          atoms
                    | None -> []
                  in
                  match name with
                  | None ->
                      [
                        diag ~file:path ~line:stanza_line ~rule:"layering"
                          "library stanza without a (name ...)";
                      ]
                  | Some (n, nl) -> (
                      match rank n with
                      | None ->
                          if
                            String.length path >= 4
                            && String.sub path 0 4 = "lib/"
                          then
                            [
                              diag ~file:path ~line:nl ~rule:"layering"
                                (Printf.sprintf
                                   "library '%s' is not in the layering \
                                    order (%s); add it at the right level \
                                    in tools/lint/lint.ml"
                                   n layer_order_str);
                            ]
                          else []
                      | Some r ->
                          List.filter_map
                            (fun (d, dl) ->
                              match rank d with
                              | Some rd when rd >= r ->
                                  Some
                                    (diag ~file:path ~line:dl ~rule:"layering"
                                       (Printf.sprintf
                                          "'%s' must not depend on '%s': the \
                                           order is %s"
                                          n d layer_order_str))
                              | _ -> None)
                            deps))
              | _ -> [])
            sexps)
    dune_files

(* ------------------------------------------------------------------ *)
(* Rule family 3: interface hygiene                                    *)

let check_missing_mli ~ml ~mli =
  List.filter_map
    (fun f ->
      if Filename.check_suffix f ".ml" then
        let want = f ^ "i" in
        if List.mem want mli then None
        else
          Some
            (diag ~file:f ~rule:"missing-mli"
               (Printf.sprintf "public module without an interface: add %s"
                  want))
      else None)
    ml

let check_mli_doc ~path src =
  match parse_intf ~filename:path src with
  | Error d -> [ d ]
  | Ok signature ->
      let found = ref false in
      let open Ast_iterator in
      let iter =
        {
          default_iterator with
          attribute =
            (fun it a ->
              (match a.attr_name.txt with
              | "ocaml.doc" | "ocaml.text" -> (
                  match a.attr_payload with
                  | PStr
                      [
                        {
                          pstr_desc =
                            Pstr_eval
                              ( {
                                  pexp_desc =
                                    Pexp_constant (Pconst_string (s, _, _));
                                  _;
                                },
                                _ );
                          _;
                        };
                      ] ->
                      if contains_sub s "\xC2\xA7" || contains_sub s "Section"
                      then found := true
                  | _ -> ())
              | _ -> ());
              default_iterator.attribute it a);
        }
      in
      iter.signature iter signature;
      if !found then []
      else
        [
          diag ~file:path ~rule:"mli-doc-ref"
            "no doc comment ties this interface to a paper section (add a \
             \u{00A7}N.N or 'Section N' reference)";
        ]

(* ------------------------------------------------------------------ *)
(* Rule family 4: experiment completeness                              *)

type exp_sources = {
  experiments_ml : string * string;
  bin_ml : string * string;
  bench_ml : string * string;
  report_ml : string * string;
  test_ml : string * string;
  experiments_md : string * string;
}

(* "e<digits>_<rest>" -> Some digits *)
let exp_num_of_name name =
  let n = String.length name in
  if n < 2 || name.[0] <> 'e' then None
  else
    let rec digits i = if i < n && is_digit name.[i] then digits (i + 1) else i in
    let stop = digits 1 in
    if stop = 1 || stop >= n || name.[stop] <> '_' then None
    else int_of_string_opt (String.sub name 1 (stop - 1))

let prefixed_num ~prefix name =
  let pl = String.length prefix in
  if
    String.length name > pl
    && String.sub name 0 pl = prefix
    && String.for_all is_digit
         (String.sub name pl (String.length name - pl))
  then int_of_string_opt (String.sub name pl (String.length name - pl))
  else None

(* All string constants in expressions and patterns, plus every
   referenced identifier's flattened path. *)
let scan_impl structure =
  let strings = Hashtbl.create 64 in
  let idents = Hashtbl.create 64 in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _)) ->
              Hashtbl.replace strings s ()
          | Pexp_ident { txt; _ } ->
              List.iter
                (fun c -> Hashtbl.replace idents c ())
                (flatten_lident txt)
          | _ -> ());
          default_iterator.expr it e);
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_constant (Pconst_string (s, _, _)) ->
              Hashtbl.replace strings s ()
          | _ -> ());
          default_iterator.pat it p);
    }
  in
  iter.structure iter structure;
  (strings, idents)

let check_experiments ~allow sources =
  let exp_path, exp_src = sources.experiments_ml in
  match parse_impl ~filename:exp_path exp_src with
  | Error d -> [ d ]
  | Ok structure ->
      (* inventory of experiments.ml: row types, value bindings *)
      let row_types = Hashtbl.create 32 in
      let values = Hashtbl.create 64 in
      let exp_line : (int, int) Hashtbl.t = Hashtbl.create 32 in
      let note_line n line =
        if not (Hashtbl.mem exp_line n) then Hashtbl.replace exp_line n line
      in
      List.iter
        (fun (item : Parsetree.structure_item) ->
          match item.pstr_desc with
          | Pstr_type (_, decls) ->
              List.iter
                (fun (d : Parsetree.type_declaration) ->
                  Hashtbl.replace row_types d.ptype_name.txt ())
                decls
          | Pstr_value (_, vbs) ->
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  match vb.pvb_pat.ppat_desc with
                  | Ppat_var { txt; _ } ->
                      Hashtbl.replace values txt ();
                      let line = fst (loc_pos vb.pvb_loc) in
                      (match exp_num_of_name txt with
                      | Some n -> note_line n line
                      | None -> (
                          match prefixed_num ~prefix:"print_e" txt with
                          | Some n -> note_line n line
                          | None -> ()))
                  | _ -> ())
                vbs
          | _ -> ())
        structure;
      let ids =
        List.sort_uniq compare
          (Hashtbl.fold (fun n _ acc -> n :: acc) exp_line [])
      in
      let scan (path, src) =
        match parse_impl ~filename:path src with
        | Error d -> Error d
        | Ok s -> Ok (scan_impl s)
      in
      let parse_diags = ref [] in
      let scan_opt src =
        match scan src with
        | Error d ->
            parse_diags := d :: !parse_diags;
            None
        | Ok x -> Some x
      in
      let bin = scan_opt sources.bin_ml in
      let bench = scan_opt sources.bench_ml in
      let report = scan_opt sources.report_ml in
      let test = scan_opt sources.test_ml in
      let md_lines = split_lines (snd sources.experiments_md) in
      let has_string scanned s =
        match scanned with
        | None -> true (* parse error already reported; don't cascade *)
        | Some (strings, _) -> Hashtbl.mem strings s
      in
      let string_with_word scanned w =
        match scanned with
        | None -> true
        | Some (strings, _) ->
            Hashtbl.fold
              (fun s () acc -> acc || has_word s w)
              strings false
      in
      let has_ident scanned i =
        match scanned with
        | None -> true
        | Some (_, idents) -> Hashtbl.mem idents i
      in
      let md_has_entry n =
        List.exists
          (fun line ->
            String.length line >= 3
            && String.sub line 0 3 = "## "
            && has_word line (Printf.sprintf "E%d" n))
          md_lines
      in
      let missing =
        List.concat_map
          (fun n ->
            let checks =
              [
                ( "row",
                  Hashtbl.mem row_types (Printf.sprintf "e%d_row" n),
                  Printf.sprintf "no `e%d_row` record type in %s" n exp_path );
                ( "print",
                  Hashtbl.mem values (Printf.sprintf "print_e%d" n),
                  Printf.sprintf "no `print_e%d` in %s" n exp_path );
                ( "cli",
                  has_string bin (Printf.sprintf "e%d" n),
                  Printf.sprintf "no \"e%d\" CLI hook in %s" n
                    (fst sources.bin_ml) );
                ( "bench",
                  has_ident bench (Printf.sprintf "print_e%d" n),
                  Printf.sprintf "no print_e%d bench hook in %s" n
                    (fst sources.bench_ml) );
                ( "report",
                  string_with_word report (Printf.sprintf "E%d" n),
                  Printf.sprintf "no \"E%d — ...\" section in %s" n
                    (fst sources.report_ml) );
                ( "docs",
                  md_has_entry n,
                  Printf.sprintf "no \"## E%d\" entry in %s" n
                    (fst sources.experiments_md) );
                ( "test",
                  has_string test (Printf.sprintf "e%d" n),
                  Printf.sprintf "no \"e%d\" shape-test suite in %s" n
                    (fst sources.test_ml) );
              ]
            in
            List.filter_map
              (fun (artifact, ok, msg) ->
                if ok then None
                else
                  let key =
                    Printf.sprintf "%s:e%d.%s" exp_path n artifact
                  in
                  if Allowlist.mem allow ~rule:"experiment-artifacts" ~key
                  then None
                  else
                    Some
                      (diag ~file:exp_path
                         ~line:(Option.value (Hashtbl.find_opt exp_line n)
                                  ~default:1)
                         ~rule:"experiment-artifacts"
                         (Printf.sprintf
                            "e%d is missing its %s artifact: %s (allowlist \
                             key `experiment-artifacts %s`)"
                            n artifact msg key)))
              checks)
          ids
      in
      List.rev !parse_diags @ missing

(* ------------------------------------------------------------------ *)
(* Output formats                                                      *)

(* Hand-rolled JSON (the toolchain ships no JSON library and the repo
   adds no dependencies): escape per RFC 8259. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""

let jobj fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> jstr k ^ ": " ^ v) fields)
  ^ "}"

let jarr items = "[" ^ String.concat ", " items ^ "]"

let diag_json (d : diag) =
  jobj
    ([
       ("file", jstr d.file);
       ("line", string_of_int d.line);
       ("col", string_of_int d.col);
       ("rule", jstr d.rule);
       ("message", jstr d.msg);
     ]
    @ match d.key with None -> [] | Some k -> [ ("key", jstr k) ])

let to_json diags =
  jobj
    [
      ("tool", jstr "evolvelint");
      ("findings", string_of_int (List.length diags));
      ("diagnostics", jarr (List.map diag_json diags));
    ]

(* SARIF 2.1.0, the minimal subset GitHub code scanning ingests: one
   run, one driver, the rule registry as reportingDescriptors, one
   result per diagnostic. *)
let to_sarif diags =
  let rule_descriptor (id, why) =
    jobj
      [
        ("id", jstr id);
        ("shortDescription", jobj [ ("text", jstr id) ]);
        ("fullDescription", jobj [ ("text", jstr why) ]);
      ]
  in
  let result (d : diag) =
    jobj
      [
        ("ruleId", jstr d.rule);
        ("level", jstr "error");
        ("message", jobj [ ("text", jstr d.msg) ]);
        ( "locations",
          jarr
            [
              jobj
                [
                  ( "physicalLocation",
                    jobj
                      [
                        ( "artifactLocation",
                          jobj [ ("uri", jstr d.file) ] );
                        ( "region",
                          jobj
                            [
                              ("startLine", string_of_int d.line);
                              ("startColumn", string_of_int d.col);
                            ] );
                      ] );
                ];
            ] );
      ]
  in
  jobj
    [
      ( "$schema",
        jstr "https://json.schemastore.org/sarif-2.1.0.json" );
      ("version", jstr "2.1.0");
      ( "runs",
        jarr
          [
            jobj
              [
                ( "tool",
                  jobj
                    [
                      ( "driver",
                        jobj
                          [
                            ("name", jstr "evolvelint");
                            ("informationUri", jstr "tools/lint");
                            ("rules", jarr (List.map rule_descriptor rules));
                          ] );
                    ] );
                ("results", jarr (List.map result diags));
              ];
          ] );
    ]

(* doc/LINT.md is generated from this function (`--catalog`) and a
   test asserts the committed file matches, so the catalog can never
   drift from the registry. *)
let catalog_md () =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "# evolvelint rule catalog\n\n\
     <!-- Generated by `dune exec tools/lint/main.exe -- --catalog`. Do \
     not edit by hand; test/test_lint.ml asserts this file matches the \
     registry in tools/lint/lint.ml. -->\n\n\
     evolvelint runs two passes. The untyped pass parses every source \
     file into the Parsetree and checks repo-shape invariants; the typed \
     pass loads the `.cmt`/`.cmti` artifacts dune emits, builds a \
     cross-module call graph over the nine libraries (nested modules and \
     functor applications included), infers an interprocedural effect \
     summary per binding — pure / reads-mutable / writes-own / \
     reads-shared / writes-shared / io / raises / nondet — propagated \
     bottom-up to a fixpoint with recursive SCCs collapsed, and runs the \
     comparison-safety, exception-hygiene, hot-path allocation, \
     shared-state, domain-safety, determinism-taint, atomics-protocol \
     and arena-bounds rule packs over the Typedtree. `--summaries` \
     dumps the summaries, the shared-state inventory, the accessor \
     aliases, the spawned-closure callees and the bounds-proof site \
     list (text or `--format json`); `--proven` prints the site list \
     alone, which CI joins against every `unsafe_get`/`unsafe_set` \
     occurrence in lib/. DESIGN.md \u{00A7}9.4 documents the effect \
     lattice and the ownership rule, \u{00A7}9.5 the role lattice and \
     the interval domain behind the v4 packs.\n\n\
     Suppression: diagnostics carrying a `RULE FILE:BINDING` key honor \
     two files. `tools/lint/allowlist` records deliberate, justified \
     exceptions and is meant to be permanent; `tools/lint/baseline` \
     grandfathers legacy findings so a new rule lands strict on new code, \
     and is meant to shrink to empty. Stale entries in either file are \
     errors (`stale-allowlist`, `stale-baseline`).\n\n\
     Hot-path roots: "
    ;
  Buffer.add_string b (String.concat ", " (List.map (fun r -> "`" ^ r ^ "`") hot_path_roots));
  Buffer.add_string b ".\n\nDomain-safety roots: ";
  Buffer.add_string b
    (String.concat ", " (List.map (fun r -> "`" ^ r ^ "`") domain_safety_roots));
  Buffer.add_string b
    " — plus, automatically, every callee invoked inside a \
     `Domain.spawn` closure.\n\nBounds-proof roots: ";
  Buffer.add_string b
    (String.concat ", " (List.map (fun r -> "`" ^ r ^ "`") bounds_roots));
  Buffer.add_string b ".\n";
  List.iter
    (fun (id, why) ->
      Buffer.add_string b (Printf.sprintf "\n## %s\n\n%s\n" id why))
    rules;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Driver: walk the tree                                               *)

let is_dir p = try Sys.is_directory p with Sys_error _ -> false

(* repo-relative recursive file listing, sorted for determinism *)
let rec walk root rel =
  let abs = Filename.concat root rel in
  if not (is_dir abs) then if Sys.file_exists abs then [ rel ] else []
  else
    Sys.readdir abs |> Array.to_list |> List.sort compare
    |> List.concat_map (fun name ->
           if name = "_build" || name = ".git" then []
           else walk root (rel ^ "/" ^ name))

let files_with_suffix root dir suffix =
  List.filter (fun f -> Filename.check_suffix f suffix) (walk root dir)

(* The typed pass over a loaded tree: call graph, effect summaries,
   reachability from the hot-path and domain-safety roots, then the
   per-module packs (comparison safety, exception hygiene, hot-path
   allocation) and the whole-graph v3 packs (shared-state inventory,
   domain-safety, determinism taint). Shared by [run] and the fixture
   tests (which build one-module trees). *)
let typed_pass ~decls mods =
  let cg = Callgraph.build mods in
  let sums = Summary.compute cg in
  let hot = Callgraph.reachable cg ~roots:hot_path_roots in
  (* closures handed to Domain.spawn execute on a child domain, so
     their callees join the domain-safety roots — the stored-closure
     blind spot of DESIGN.md §9.4, closed in v4 *)
  let dom =
    Callgraph.reachable cg
      ~roots:
        (domain_safety_roots
        @ Callgraph.SS.elements (Callgraph.spawn_callees cg))
  in
  List.concat_map
    (fun (m : Typed.modinfo) ->
      Rules_compare.check ~decls m
      @ Rules_exn.check m
      @ Rules_alloc.check ~hot ~roots:hot_path_roots m)
    mods
  @ Rules_state.check ~decls ~sums ~dom cg mods
  @ Rules_domain.check ~sums ~dom ~roots:domain_safety_roots cg
  @ Rules_taint.check ~sums cg
  @ Rules_atomic.check ~roles:atomic_roles ~scope:atomic_scope sums cg mods
  @ snd (Rules_bounds.analyze ~roots:bounds_roots cg)

(* Two diagnostics at the same rule+site — one from the untyped pass,
   one from the typed pass — are the same finding worded twice; keep
   the compare_diag-first one. Input need not be sorted. *)
let dedupe_diags diags =
  let sorted = List.sort_uniq compare_diag diags in
  let same (a : diag) (b : diag) =
    a.file = b.file && a.line = b.line && a.col = b.col && a.rule = b.rule
  in
  List.rev
    (List.fold_left
       (fun acc d ->
         match acc with p :: _ when same p d -> acc | _ -> d :: acc)
       [] sorted)

(* The untyped pass alone — sections 1-4 of [run]; also timed
   separately by `bench --json`. Marks [allow] entries used, so the
   staleness check belongs to the caller once every pass has run. *)
let run_untyped ~root ~allow =
  let read rel = read_file (Filename.concat root rel) in
  let diags = ref [] in
  let add ds = diags := ds @ !diags in
  (* 1. layering over lib/*/dune *)
  let lib_dunes =
    if is_dir (Filename.concat root "lib") then
      Sys.readdir (Filename.concat root "lib")
      |> Array.to_list |> List.sort compare
      |> List.filter_map (fun d ->
             let rel = "lib/" ^ d ^ "/dune" in
             if Sys.file_exists (Filename.concat root rel) then
               Some (rel, read rel)
             else None)
    else []
  in
  add (check_layering ~dune_files:lib_dunes);
  (* 2. determinism over lib/ implementations *)
  let lib_ml = files_with_suffix root "lib" ".ml" in
  let lib_mli = files_with_suffix root "lib" ".mli" in
  List.iter (fun f -> add (check_determinism ~allow ~path:f (read f))) lib_ml;
  (* 3. interface hygiene *)
  add (check_missing_mli ~ml:lib_ml ~mli:lib_mli);
  List.iter (fun f -> add (check_mli_doc ~path:f (read f))) lib_mli;
  (* parse-check everything else we claim to cover *)
  List.iter
    (fun dir ->
      List.iter
        (fun f ->
          if Filename.check_suffix f ".ml" then
            match parse_impl ~filename:f (read f) with
            | Error d -> add [ d ]
            | Ok _ -> ()
          else if Filename.check_suffix f ".mli" then
            match parse_intf ~filename:f (read f) with
            | Error d -> add [ d ]
            | Ok _ -> ())
        (walk root dir))
    [ "bin"; "bench"; "test" ];
  (* 4. experiment completeness *)
  let source rel =
    if Sys.file_exists (Filename.concat root rel) then Some (rel, read rel)
    else begin
      add
        [
          diag ~file:rel ~rule:"experiment-artifacts"
            "required file is missing";
        ];
      None
    end
  in
  (match
     ( source "lib/core/experiments.ml",
       source "bin/evolvenet.ml",
       source "bench/main.ml",
       source "lib/core/report.ml",
       source "test/test_experiments.ml",
       source "EXPERIMENTS.md" )
   with
  | Some experiments_ml, Some bin_ml, Some bench_ml, Some report_ml,
    Some test_ml, Some experiments_md ->
      add
        (check_experiments ~allow
           {
             experiments_ml;
             bin_ml;
             bench_ml;
             report_ml;
             test_ml;
             experiments_md;
           })
  | _ -> ());
  List.sort compare_diag !diags

let run ~root ~allow ~baseline =
  let diags = ref (run_untyped ~root ~allow) in
  let add ds = diags := ds @ !diags in
  (* 5. typed pass: comparison safety, exception hygiene, hot-path
     allocation, effect summaries and the v3 packs over the .cmt tree *)
  let tree = Typed.load_tree ~root in
  add tree.Typed.tdiags;
  add
    (filter_suppressed ~allow ~baseline
       (typed_pass ~decls:tree.Typed.tdecls tree.Typed.tmods));
  add (Allowlist.stale allow);
  add (Allowlist.stale ~rule:"stale-baseline" baseline);
  dedupe_diags !diags

(* ------------------------------------------------------------------ *)
(* `--summaries`: dump the effect summaries and shared-state inventory *)

let summary_dump ~root ~json =
  let tree = Typed.load_tree ~root in
  let cg = Callgraph.build tree.Typed.tmods in
  let sums = Summary.compute cg in
  let spawned = Callgraph.SS.elements (Callgraph.spawn_callees cg) in
  let dom =
    Callgraph.reachable cg ~roots:(domain_safety_roots @ spawned)
  in
  let items, fields =
    Rules_state.inventory ~decls:tree.Typed.tdecls ~sums ~dom cg
      tree.Typed.tmods
  in
  let nodes =
    List.sort_uniq String.compare
      (List.map (fun (b : Callgraph.bind) -> b.Callgraph.b_node)
         cg.Callgraph.binds)
  in
  let accessors =
    List.sort compare
      (Hashtbl.fold
         (fun k v acc -> (k, v) :: acc)
         sums.Summary.accessors [])
  in
  let sites, _ = Rules_bounds.analyze ~roots:bounds_roots cg in
  let effects n = Summary.describe (Summary.get sums.Summary.full n) in
  if json then
    jobj
      [
        ("tool", jstr "evolvelint");
        ("roots", jarr (List.map jstr domain_safety_roots));
        ( "summaries",
          jarr
            (List.map
               (fun n ->
                 jobj
                   [
                     ("node", jstr n);
                     ("effects", jarr (List.map jstr (effects n)));
                     ( "pump_reachable",
                       if Callgraph.mem dom n then "true" else "false" );
                   ])
               nodes) );
        ( "shared_state",
          jarr
            (List.map
               (fun (it : Rules_state.item) ->
                 jobj
                   [
                     ("node", jstr it.Rules_state.it_node);
                     ("kind", jstr it.Rules_state.it_kind);
                     ("file", jstr it.Rules_state.it_file);
                     ("line", string_of_int it.Rules_state.it_line);
                     ("escape", jstr it.Rules_state.it_class);
                     ( "writers",
                       jarr (List.map jstr it.Rules_state.it_writers) );
                   ])
               items) );
        ( "mutable_fields",
          jarr
            (List.map
               (fun (f : Rules_state.field_item) ->
                 jobj
                   [
                     ("field", jstr f.Rules_state.fi_id);
                     ("file", jstr f.Rules_state.fi_file);
                     ("line", string_of_int f.Rules_state.fi_line);
                     ( "writers",
                       jarr (List.map jstr f.Rules_state.fi_writers) );
                     ( "pump_reachable",
                       if f.Rules_state.fi_pump then "true" else "false" );
                   ])
               fields) );
        ( "accessors",
          jarr
            (List.map
               (fun (n, f) ->
                 jobj [ ("node", jstr n); ("field", jstr f) ])
               accessors) );
        ("spawn_callees", jarr (List.map jstr spawned));
        ( "bounds_sites",
          jarr
            (List.map
               (fun (s : Rules_bounds.site) ->
                 jobj
                   [
                     ("file", jstr s.Rules_bounds.sp_file);
                     ("line", string_of_int s.Rules_bounds.sp_line);
                     ("col", string_of_int s.Rules_bounds.sp_col);
                     ("accessor", jstr s.Rules_bounds.sp_accessor);
                     ("node", jstr s.Rules_bounds.sp_node);
                     ( "unsafe",
                       if s.Rules_bounds.sp_unsafe then "true" else "false"
                     );
                     ( "proven",
                       if s.Rules_bounds.sp_proven then "true" else "false"
                     );
                     ( "reasons",
                       jarr (List.map jstr s.Rules_bounds.sp_reasons) );
                   ])
               sites) );
      ]
  else begin
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Printf.sprintf "# effect summaries (%d bindings; roots: %s)\n"
         (List.length nodes)
         (String.concat ", " domain_safety_roots));
    List.iter
      (fun n ->
        Buffer.add_string b
          (Printf.sprintf "%s%s  %s\n" n
             (if Callgraph.mem dom n then "  [pump]" else "")
             (String.concat ", " (effects n))))
      nodes;
    Buffer.add_string b
      (Printf.sprintf "\n# shared state (%d toplevel items)\n"
         (List.length items));
    List.iter
      (fun (it : Rules_state.item) ->
        Buffer.add_string b
          (Printf.sprintf "%s  %s  escape:%s  (%s:%d)%s\n"
             it.Rules_state.it_node it.Rules_state.it_kind
             it.Rules_state.it_class it.Rules_state.it_file
             it.Rules_state.it_line
             (match it.Rules_state.it_writers with
             | [] -> ""
             | ws -> "  written-by: " ^ String.concat ", " ws)))
      items;
    Buffer.add_string b
      (Printf.sprintf "\n# mutable record fields (%d)\n"
         (List.length fields));
    List.iter
      (fun (f : Rules_state.field_item) ->
        Buffer.add_string b
          (Printf.sprintf "%s%s  (%s:%d)%s\n" f.Rules_state.fi_id
             (if f.Rules_state.fi_pump then "  [pump]" else "")
             f.Rules_state.fi_file f.Rules_state.fi_line
             (match f.Rules_state.fi_writers with
             | [] -> ""
             | ws -> "  written-by: " ^ String.concat ", " ws)))
      fields;
    Buffer.add_string b
      (Printf.sprintf "\n# accessor aliases (%d)\n" (List.length accessors));
    List.iter
      (fun (n, f) -> Buffer.add_string b (Printf.sprintf "%s -> %s\n" n f))
      accessors;
    Buffer.add_string b
      (Printf.sprintf "\n# spawned-closure callees (%d)\n"
         (List.length spawned));
    List.iter (fun n -> Buffer.add_string b (n ^ "\n")) spawned;
    Buffer.add_string b
      (Printf.sprintf "\n# bounds sites (%d; roots: %s)\n"
         (List.length sites)
         (String.concat ", " bounds_roots));
    List.iter
      (fun (s : Rules_bounds.site) ->
        Buffer.add_string b
          (Printf.sprintf "%s:%d:%d  %s  %s  %s%s\n" s.Rules_bounds.sp_file
             s.Rules_bounds.sp_line s.Rules_bounds.sp_col
             s.Rules_bounds.sp_accessor s.Rules_bounds.sp_node
             (if s.Rules_bounds.sp_proven then "proven" else "unproven")
             (match s.Rules_bounds.sp_reasons with
             | [] -> ""
             | rs -> "  (" ^ String.concat "; " rs ^ ")")))
      sites;
    Buffer.contents b
  end

(* ------------------------------------------------------------------ *)
(* `--proven`: the bounds prover's site list alone, one line per
   access — `file:line:col accessor node proven|unproven`. CI joins
   every `unsafe_get`/`unsafe_set` occurrence in lib/ against the
   proven lines, so an unlicensed unsafe access fails the build even
   if the lint run itself were skipped. *)

let proven_dump ~root =
  let tree = Typed.load_tree ~root in
  let cg = Callgraph.build tree.Typed.tmods in
  let sites, _ = Rules_bounds.analyze ~roots:bounds_roots cg in
  let b = Buffer.create 1024 in
  List.iter
    (fun (s : Rules_bounds.site) ->
      Buffer.add_string b
        (Printf.sprintf "%s:%d:%d %s %s %s\n" s.Rules_bounds.sp_file
           s.Rules_bounds.sp_line s.Rules_bounds.sp_col
           s.Rules_bounds.sp_accessor s.Rules_bounds.sp_node
           (if s.Rules_bounds.sp_proven then "proven" else "unproven")))
    sites;
  Buffer.contents b
