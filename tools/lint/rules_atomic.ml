(* Atomics-protocol verifier (evolvelint v4, DESIGN.md §9.5).

   The multicore data plane's safety argument rests on per-field
   protocols that used to live in comments — "head written only by the
   consumer", "slot write happens before the tail publish". This pack
   makes them declared, machine-checked roles. Every [Atomic.t] record
   field in the scoped libraries must appear in the role table
   (rule `atomic-role`), and every Atomic operation in the whole call
   graph is checked against the written field's role
   (rule `atomic-protocol`):

   - [Single_writer]: only the declared writer functions may write the
     field. When the role names a published slot field, every write to
     the slot inside a declared writer must precede (in source order —
     the writers are straight-line, so order is dominance) an
     Atomic.set/exchange of the field: the seq_cst store is what
     publishes the slot contents to the other domain.
   - [Publish_flag]: only the declared writers may flip it.
   - [Counter]: fetch_and_add/incr/decr are allowed anywhere;
     set/exchange/compare_and_set only from the declared setters, and
     a setter that also calls Domain.spawn must perform its set before
     every spawn — the spawned domains read the counter.
   - [Read_only_view]: never written; a stored alias of another
     declared field. The Summary accessor map is what lets the checker
     see through `Array.map Shard.asleep_flag ss` — the returned-alias
     blind spot of DESIGN.md §9.4.

   Two protocol checks go beyond the role table. A binding that loads
   two distinct single-writer fields with separate Atomic.get reads,
   while being a declared writer of neither, observes a non-snapshot —
   the pair can mix states from different instants (the Ring.length
   finding this pack was dogfooded on). And an Atomic write whose
   target cannot be resolved to a field (not a field read, an indexed
   field read, a local alias of one, or an accessor application)
   defeats the verifier and is flagged as such.

   Findings carry `file.ml:binding` keys, so deliberate exceptions go
   in tools/lint/allowlist with a justification. *)

type role =
  | Single_writer of { writers : string list; publishes : string option }
  | Publish_flag of { writers : string list }
  | Counter of { setters : string list }
  | Read_only_view of { of_field : string }

let role_name = function
  | Single_writer _ -> "single-writer"
  | Publish_flag _ -> "publish-flag"
  | Counter _ -> "counter"
  | Read_only_view _ -> "read-only-view"

let writers_of = function
  | Single_writer { writers; _ } | Publish_flag { writers } -> writers
  | Counter { setters } -> setters
  | Read_only_view _ -> []

(* [int Atomic.t], or an array/iarray of atomics. *)
let rec is_atomic_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) -> (
      match List.rev (Typed.path_components p []) with
      | "t" :: "Atomic" :: _ -> true
      | ("array" | "iarray") :: _ -> List.exists is_atomic_ty args
      | _ -> false)
  | _ -> false

let atomic_reads = [ "get" ]

let atomic_rmw = [ "fetch_and_add"; "incr"; "decr" ]

let atomic_stores = [ "set"; "exchange"; "compare_and_set" ]

let loc_start (l : Location.t) = l.loc_start.pos_cnum

(* ------------------------------------------------------------------ *)

let check ~(roles : (string * role) list) ~scope (sums : Summary.info)
    (cg : Callgraph.t) (mods : Typed.modinfo list) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let role_of f = List.assoc_opt f roles in
  (* 1. coverage: every Atomic field of a scoped module is declared *)
  let found_fields = Hashtbl.create 16 in
  List.iter
    (fun (m : Typed.modinfo) ->
      List.iter
        (fun (it : Typedtree.structure_item) ->
          match it.str_desc with
          | Tstr_type (_, tds) ->
              List.iter
                (fun (td : Typedtree.type_declaration) ->
                  match td.typ_type.Types.type_kind with
                  | Types.Type_record (lds, _) ->
                      List.iter
                        (fun (ld : Types.label_declaration) ->
                          if is_atomic_ty ld.Types.ld_type then begin
                            let f =
                              Printf.sprintf "%s.%s.%s" m.Typed.ti_module
                                td.typ_name.txt
                                (Ident.name ld.Types.ld_id)
                            in
                            Hashtbl.replace found_fields f ();
                            if scope m && role_of f = None then
                              let line, col = Diag.loc_pos ld.Types.ld_loc in
                              add
                                (Diag.make ~line ~col
                                   ~key:
                                     (m.Typed.ti_file ^ ":"
                                    ^ td.typ_name.txt ^ "." ^ Ident.name
                                                                ld.Types.ld_id)
                                   ~file:m.Typed.ti_file ~rule:"atomic-role"
                                   (Printf.sprintf
                                      "Atomic field `%s` has no declared \
                                       role: add it to atomic_roles in \
                                       tools/lint/lint.ml (single-writer, \
                                       publish-flag, counter or \
                                       read-only-view) so the protocol \
                                       verifier can check every write \
                                       against it"
                                      f))
                          end)
                        lds
                  | _ -> ())
                tds
          | _ -> ())
        m.Typed.ti_str.str_items)
    mods;
  (* stale declarations: a role naming a field of an analyzed module
     that no longer exists means the table drifted from the code *)
  let mod_file =
    List.map (fun (m : Typed.modinfo) -> (m.Typed.ti_module, m.Typed.ti_file)) mods
  in
  List.iter
    (fun (f, r) ->
      match String.index_opt f '.' with
      | None -> ()
      | Some i -> (
          let fmod = String.sub f 0 i in
          match List.assoc_opt fmod mod_file with
          | Some file when not (Hashtbl.mem found_fields f) ->
              add
                (Diag.make ~key:(file ^ ":" ^ f) ~file ~rule:"atomic-role"
                   (Printf.sprintf
                      "role table declares `%s` as %s, but module %s has no \
                       such Atomic field — delete or fix the stale entry in \
                       atomic_roles (tools/lint/lint.ml)"
                      f (role_name r) fmod))
          | _ -> ()))
    roles;
  (* Read_only_view must alias a field that itself has a declared role *)
  List.iter
    (fun (f, r) ->
      match r with
      | Read_only_view { of_field } when role_of of_field = None ->
          add
            (Diag.make ~file:"tools/lint/lint.ml" ~rule:"atomic-role"
               (Printf.sprintf
                  "`%s` is declared as a read-only view of `%s`, which has \
                   no declared role of its own — a view of an unchecked \
                   field proves nothing"
                  f of_field))
      | _ -> ())
    roles;
  (* 2. per-binding protocol checks over the whole graph *)
  List.iter
    (fun (b : Callgraph.bind) ->
      let m = b.Callgraph.b_mod in
      let self = m.Typed.ti_module in
      let node = b.Callgraph.b_node in
      let binding = Callgraph.binding_of_node node in
      let key = m.Typed.ti_file ^ ":" ^ binding in
      let aliases : (Ident.t * string) list ref = ref [] in
      (* resolve the atomic value an operation touches to a field id *)
      let rec field_of (e : Typedtree.expression) =
        match e.exp_desc with
        | Texp_field (_, _, ld) -> Some (Summary.field_id ~self ld)
        | Texp_ident (Path.Pident id, _, _) ->
            Option.map snd
              (List.find_opt (fun (i, _) -> Ident.same i id) !aliases)
        | Texp_apply (f, args) -> (
            let arg0 =
              match List.filter_map snd args with a :: _ -> Some a | [] -> None
            in
            let accessor_node =
              match f.exp_desc with
              | Texp_ident (Path.Pident id, _, _) ->
                  Option.map snd
                    (List.find_opt
                       (fun (i, _) -> Ident.same i id)
                       b.Callgraph.b_statics)
              | Texp_ident (p, _, _) -> (
                  match Typed.norm_target p with
                  | Some (tm, tv) -> Some (tm ^ "." ^ tv)
                  | None -> None)
              | _ -> None
            in
            match accessor_node with
            | Some ("Array.get" | "Array.unsafe_get" | "Bytes.get"
                   | "Bytes.unsafe_get" | "Stdlib.!") ->
                Option.bind arg0 field_of
            | Some n -> Hashtbl.find_opt sums.Summary.accessors n
            | None -> None)
        | _ -> None
      in
      let writes = ref [] in
      (* (field option, op, loc) *)
      let gets = ref [] in
      let slot_writes = ref [] in
      let spawn_locs = ref [] in
      let open Tast_iterator in
      let iter =
        {
          default_iterator with
          expr =
            (fun it (e : Typedtree.expression) ->
              (match e.exp_desc with
              | Texp_let (_, vbs, _) ->
                  List.iter
                    (fun (vb : Typedtree.value_binding) ->
                      match vb.vb_pat.pat_desc with
                      | Tpat_var (id, _) when is_atomic_ty vb.vb_expr.exp_type
                        -> (
                          match field_of vb.vb_expr with
                          | Some f -> aliases := (id, f) :: !aliases
                          | None -> ())
                      | _ -> ())
                    vbs
              | Texp_setfield (_, _, ld, _) ->
                  slot_writes :=
                    (Summary.field_id ~self ld, e.exp_loc) :: !slot_writes
              | Texp_apply (f, args) -> (
                  match f.exp_desc with
                  | Texp_ident (p, _, _) -> (
                      let arg n = List.nth_opt (List.filter_map snd args) n in
                      match Typed.norm_target p with
                      | Some ("Atomic", op)
                        when List.mem op atomic_rmw
                             || List.mem op atomic_stores -> (
                          match arg 0 with
                          | Some a ->
                              writes := (field_of a, op, e.exp_loc) :: !writes
                          | None ->
                              writes := (None, op, e.exp_loc) :: !writes)
                      | Some ("Atomic", op) when List.mem op atomic_reads -> (
                          match arg 0 with
                          | Some a -> gets := (field_of a, e.exp_loc) :: !gets
                          | None -> ())
                      | Some (("Array" | "Bytes"), ("set" | "unsafe_set"))
                        -> (
                          match arg 0 with
                          | Some a -> (
                              match field_of a with
                              | Some f ->
                                  slot_writes := (f, e.exp_loc) :: !slot_writes
                              | None -> ())
                          | None -> ())
                      | Some ("Domain", "spawn") ->
                          spawn_locs := e.exp_loc :: !spawn_locs
                      | _ -> ())
                  | _ -> ())
              | _ -> ());
              default_iterator.expr it e);
        }
      in
      iter.value_binding iter b.Callgraph.b_vb;
      let writes = List.rev !writes in
      let gets = List.rev !gets in
      let slot_writes = List.rev !slot_writes in
      let spawn_locs = List.rev !spawn_locs in
      (* 2a. every write checked against the field's role *)
      List.iter
        (fun (f, op, loc) ->
          let line, col = Diag.loc_pos loc in
          let fail msg =
            add
              (Diag.make ~line ~col ~key ~file:m.Typed.ti_file
                 ~rule:"atomic-protocol" msg)
          in
          match f with
          | None ->
              if scope m then
                fail
                  (Printf.sprintf
                     "`%s` performs Atomic.%s on a value the verifier \
                      cannot resolve to a declared field — write through \
                      the field (or a single-field accessor of it) so the \
                      role protocol stays checkable, or add \
                      `atomic-protocol %s` to tools/lint/allowlist with a \
                      justification"
                     binding op key)
          | Some f -> (
              match role_of f with
              | None -> () (* undeclared fields are the coverage check's *)
              | Some (Read_only_view { of_field }) ->
                  fail
                    (Printf.sprintf
                       "`%s` writes `%s`, a read-only view of `%s`: views \
                        are never written — write the viewed field through \
                        its declared writers instead"
                       binding f of_field)
              | Some (Counter { setters }) ->
                  if
                    List.mem op atomic_stores && not (List.mem node setters)
                  then
                    fail
                      (Printf.sprintf
                         "`%s` performs Atomic.%s on counter `%s`; counters \
                          are fetch_and_add/incr/decr-only except from \
                          their declared setters (%s) — add the binding to \
                          the role's setters if the store is part of the \
                          protocol, or add `atomic-protocol %s` to \
                          tools/lint/allowlist"
                         binding op f
                         (match setters with
                         | [] -> "none"
                         | ss -> String.concat ", " ss)
                         key)
              | Some (Single_writer { writers; _ } as r)
              | Some (Publish_flag { writers } as r) ->
                  if not (List.mem node writers) then
                    fail
                      (Printf.sprintf
                         "`%s` writes `%s`, declared %s with writers %s: a \
                          write from any other function races the owning \
                          side — route the write through a declared \
                          writer, extend the role's writer list, or add \
                          `atomic-protocol %s` to tools/lint/allowlist"
                         binding f (role_name r)
                         (String.concat ", " writers)
                         key)))
        writes;
      (* 2b. publish ordering inside declared single-writer functions *)
      List.iter
        (fun (f, r) ->
          match r with
          | Single_writer { writers; publishes = Some slot }
            when List.mem node writers ->
              let publishes =
                List.filter_map
                  (fun (wf, op, loc) ->
                    if wf = Some f && List.mem op atomic_stores then
                      Some (loc_start loc)
                    else None)
                  writes
              in
              let slots =
                List.filter (fun (sf, _) -> sf = slot) slot_writes
              in
              List.iter
                (fun (_, sloc) ->
                  if
                    not
                      (List.exists (fun p -> p > loc_start sloc) publishes)
                  then begin
                    let line, col = Diag.loc_pos sloc in
                    add
                      (Diag.make ~line ~col ~key ~file:m.Typed.ti_file
                         ~rule:"atomic-protocol"
                         (Printf.sprintf
                            "`%s` writes slot `%s` without a following \
                             Atomic.set of `%s`: the seq_cst store is what \
                             publishes the slot to the consuming domain — \
                             every slot write must precede the publish"
                            binding slot f))
                  end)
                slots
          | _ -> ())
        roles;
      (* 2c. a counter setter that spawns must set before every spawn *)
      (match spawn_locs with
      | [] -> ()
      | spawns ->
          List.iter
            (fun (f, r) ->
              match r with
              | Counter { setters } when List.mem node setters ->
                  List.iter
                    (fun (wf, op, loc) ->
                      if
                        wf = Some f
                        && List.mem op atomic_stores
                        && List.exists
                             (fun sl -> loc_start sl < loc_start loc)
                             spawns
                      then begin
                        let line, col = Diag.loc_pos loc in
                        add
                          (Diag.make ~line ~col ~key ~file:m.Typed.ti_file
                             ~rule:"atomic-protocol"
                             (Printf.sprintf
                                "`%s` sets counter `%s` after a \
                                 Domain.spawn: the spawned domains read the \
                                 counter, so the set must happen before \
                                 any domain starts"
                                binding f))
                      end)
                    writes
              | _ -> ())
            roles);
      (* 2d. non-snapshot: two single-writer fields, two separate loads *)
      let sw_reads =
        List.sort_uniq compare
          (List.filter_map
             (fun (f, _) ->
               match f with
               | Some f -> (
                   match role_of f with
                   | Some (Single_writer _) -> Some f
                   | _ -> None)
               | None -> None)
             gets)
      in
      if
        List.length sw_reads >= 2
        && not
             (List.exists
                (fun f ->
                  match role_of f with
                  | Some r -> List.mem node (writers_of r)
                  | None -> false)
                sw_reads)
      then begin
        let loc = match gets with (_, l) :: _ -> l | [] -> Location.none in
        let line, col = Diag.loc_pos loc in
        add
          (Diag.make ~line ~col ~key ~file:m.Typed.ti_file
             ~rule:"atomic-protocol"
             (Printf.sprintf
                "`%s` combines separate Atomic.get loads of %s from \
                 outside either writer: the pair is not a snapshot and \
                 can mix states from different instants — clamp or \
                 otherwise bound the combined value, then record the \
                 justification as `atomic-protocol %s` in \
                 tools/lint/allowlist"
                binding
                (String.concat " and "
                   (List.map (fun f -> "`" ^ f ^ "`") sw_reads))
                key))
      end)
    cg.Callgraph.binds;
  List.rev !diags
