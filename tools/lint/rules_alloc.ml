(* Hot-path allocation lint.

   For every top-level function transitively reachable (per
   Callgraph) from the data-plane roots — Pump.inject / Pump.step,
   Flowcache.lookup, Wire.peek_* — flag per-call allocation in its
   body:

   - closure captures: a nested function that captures variables from
     its environment is heap-allocated on every execution of the
     enclosing code. Capture-free local functions compile to static
     closures and stay quiet, so `let rec go ...` loops that thread
     all state through arguments are the recommended fix.
   - tuple/option/list cells: Texp_tuple, Some, and (::) construction.
   - partial applications: an application whose result is still a
     function allocates an intermediate closure.

   One aggregated diagnostic per function (key FILE:BINDING), so a
   deliberate allocation — e.g. the per-delivery trace a function
   exists to build — is one allowlist/baseline line, not a line per
   site. The outermost curried parameter chain of a binding is the
   function itself, not a per-call allocation, and is skipped. *)

module IdSet = Set.Make (struct
  type t = Ident.t

  let compare = Ident.compare
end)

(* Bodies of a binding: descend through the leading curried chain.
   A multi-case `function` keyword contributes each case body. *)
let rec leading_bodies (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> leading_bodies c.c_rhs
  | Texp_function { cases; _ } ->
      List.map (fun (c : Typedtree.value Typedtree.case) -> c.c_rhs) cases
  | _ -> [ e ]

(* Every expression in a function's own leading chain, so a counted
   closure marks its merged curried layers as already handled. *)
let rec leading_chain (e : Typedtree.expression) acc =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> leading_chain c.c_rhs (e :: acc)
  | Texp_function _ -> e :: acc
  | _ -> acc

let idents_bound_in (e : Typedtree.expression) =
  let acc = ref IdSet.empty in
  let open Tast_iterator in
  let iter =
    {
      default_iterator with
      pat =
        (fun (type k) it (p : k Typedtree.general_pattern) ->
          (match p.pat_desc with
          | Typedtree.Tpat_var (id, _) -> acc := IdSet.add id !acc
          | Typedtree.Tpat_alias (_, id, _) -> acc := IdSet.add id !acc
          | _ -> ());
          default_iterator.pat it p);
      expr =
        (fun it (e : Typedtree.expression) ->
          (match e.exp_desc with
          | Texp_for (id, _, _, _, _, _) -> acc := IdSet.add id !acc
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  iter.expr iter e;
  !acc

(* Free value variables of [e]: Pident references not bound inside
   [e] and not in [statics] (top-level bindings resolve statically,
   they are not captured). *)
let captures ~statics ?(self = IdSet.empty) (e : Typedtree.expression) =
  let bound = idents_bound_in e in
  let free = ref [] in
  let open Tast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun it (ex : Typedtree.expression) ->
          (match ex.exp_desc with
          | Texp_ident (Path.Pident id, _, _) ->
              if
                (not (IdSet.mem id bound))
                && (not (IdSet.mem id statics))
                && (not (IdSet.mem id self))
                && not (List.exists (Ident.same id) !free)
              then free := id :: !free
          | _ -> ());
          default_iterator.expr it ex);
    }
  in
  iter.expr iter e;
  List.rev !free

type counts = {
  mutable closures : int;
  mutable cells : int;
  mutable partials : int;
  mutable first : Location.t option;
  mutable captured : string list; (* sample from the first capture *)
}

let check ~hot ~roots (m : Typed.modinfo) =
  let diags = ref [] in
  let statics =
    IdSet.union
      (IdSet.of_list
         (List.map fst (Typed.top_value_idents m.Typed.ti_str)))
      (IdSet.of_list (Typed.top_module_idents m.Typed.ti_str))
  in
  Typed.iter_top_bindings m.Typed.ti_str ~f:(fun ~id:_ ~name vb ->
      let node = Callgraph.node m.Typed.ti_module name in
      if Callgraph.mem hot node then begin
        let c =
          { closures = 0; cells = 0; partials = 0; first = None; captured = [] }
        in
        let note loc = if c.first = None then c.first <- Some loc in
        let handled_funs : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
        let applied : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
        let locid (l : Location.t) =
          (l.loc_start.pos_lnum, l.loc_start.pos_cnum)
        in
        let count_closure ?(self = IdSet.empty) (f : Typedtree.expression) =
          if not (Hashtbl.mem handled_funs (locid f.exp_loc)) then begin
            List.iter
              (fun (l : Typedtree.expression) ->
                Hashtbl.replace handled_funs (locid l.exp_loc) ())
              (leading_chain f []);
            match captures ~statics ~self f with
            | [] -> () (* capture-free: compiles to a static closure *)
            | caps ->
                c.closures <- c.closures + 1;
                note f.exp_loc;
                if c.captured = [] then
                  c.captured <-
                    List.filteri (fun i _ -> i < 3)
                      (List.map Ident.name caps)
          end
        in
        let open Tast_iterator in
        let iter =
          {
            default_iterator with
            expr =
              (fun it (e : Typedtree.expression) ->
                (match e.exp_desc with
                | Texp_let (rf, vbs, _) ->
                    let self =
                      match rf with
                      | Recursive ->
                          IdSet.of_list
                            (List.filter_map
                               (fun (vb : Typedtree.value_binding) ->
                                 match vb.vb_pat.pat_desc with
                                 | Tpat_var (id, _) -> Some id
                                 | _ -> None)
                               vbs)
                      | Nonrecursive -> IdSet.empty
                    in
                    List.iter
                      (fun (vb : Typedtree.value_binding) ->
                        match vb.vb_expr.exp_desc with
                        | Texp_function _ -> count_closure ~self vb.vb_expr
                        | _ -> ())
                      vbs
                | Texp_function _ -> count_closure e
                | Texp_tuple _ ->
                    c.cells <- c.cells + 1;
                    note e.exp_loc
                | Texp_construct (_, cd, _ :: _)
                  when cd.Types.cstr_name = "Some"
                       || cd.Types.cstr_name = "::" ->
                    c.cells <- c.cells + 1;
                    note e.exp_loc
                | Texp_apply (f, _) -> (
                    Hashtbl.replace applied (locid f.exp_loc) ();
                    if not (Hashtbl.mem applied (locid e.exp_loc)) then
                      match Types.get_desc e.exp_type with
                      | Types.Tarrow _ ->
                          c.partials <- c.partials + 1;
                          note e.exp_loc
                      | _ -> ())
                | _ -> ());
                default_iterator.expr it e);
          }
        in
        List.iter (fun b -> iter.expr iter b) (leading_bodies vb.vb_expr);
        if c.closures + c.cells + c.partials > 0 then begin
          let key = m.Typed.ti_file ^ ":" ^ name in
          let line, col =
            match c.first with
            | Some l -> Diag.loc_pos l
            | None -> (1, 1)
          in
          let cap =
            match c.captured with
            | [] -> ""
            | caps -> Printf.sprintf " capturing %s" (String.concat ", " caps)
          in
          diags :=
            Diag.make ~line ~col ~key ~file:m.Typed.ti_file
              ~rule:"hot-path-alloc"
              (Printf.sprintf
                 "`%s` is on the per-packet hot path (reachable from %s) \
                  and allocates per call: %d capturing closure(s)%s, %d \
                  tuple/option/list cell(s), %d partial application(s); \
                  hoist them or add `hot-path-alloc %s` to \
                  tools/lint/allowlist (deliberate) or baseline (legacy)"
                 name
                 (String.concat ", " roots)
                 c.closures cap c.cells c.partials key)
            :: !diags
        end
      end);
  List.rev !diags
