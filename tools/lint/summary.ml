(* Interprocedural effect summaries (evolvelint v3).

   For every binding the call graph attributes, infer a base effect
   summary from its body, then propagate callee summaries bottom-up to
   a fixpoint: the graph is condensed into strongly connected
   components (Tarjan), and because the summary domain is a pure union
   lattice, one reverse-topological pass — each SCC joining its
   members' base summaries with its successors' final summaries — is
   the exact fixpoint, recursion included.

   The summary per binding:

     pure / reads-mutable / writes-own / reads-shared{targets} /
     writes-shared{targets} / performs-IO / raises / nondet(witness)

   The own/shared split is the ownership rule the domain-safety gate
   builds on. Every mutation site is traced to the *root* of the
   written lvalue — through record fields, `!`, and Array/Bytes.get —
   and classified:

   - rooted in a function parameter, a local let, or a freshly built
     value: *instance-owned*. A pump instance mutating state handed to
     it (telemetry bumps, cache hit counters) stays safe when the data
     plane shards across domains, because each domain holds its own
     instance.
   - rooted in a module-level binding (of this or another module):
     *shared*. Module-level state is process-global; a write to it from
     the packet path is tomorrow's cross-domain race.

   A local alias of shared state (`let g = glob in g := ...`) is
   traced through a per-binding alias map, so laundering a global
   through a let does not change its class. Stored closures and
   shared state returned by calls are the analysis' blind spots —
   documented in DESIGN.md §9.4 — and are over-approximated on the
   read side only.

   Nondeterminism witnesses name the source site ("Random.int at
   file:line"); lib/topology/rng.ml is the sanctioned seeded source
   and is never a witness (DESIGN.md §7). *)

module SS = Set.Make (String)

type t = {
  reads_mut : bool;  (* reads owned mutable state *)
  writes_own : bool;  (* writes instance-owned state *)
  reads_shared : SS.t;  (* module-level targets read, node-named *)
  writes_shared : SS.t;  (* module-level targets written, node-named *)
  io : bool;
  raises : bool;
  nondet : string option;  (* witness of the first nondeterminism source *)
}

let empty =
  {
    reads_mut = false;
    writes_own = false;
    reads_shared = SS.empty;
    writes_shared = SS.empty;
    io = false;
    raises = false;
    nondet = None;
  }

let pure s =
  (not s.reads_mut) && (not s.writes_own)
  && SS.is_empty s.reads_shared
  && SS.is_empty s.writes_shared
  && (not s.io) && (not s.raises)
  && s.nondet = None

let join a b =
  {
    reads_mut = a.reads_mut || b.reads_mut;
    writes_own = a.writes_own || b.writes_own;
    reads_shared = SS.union a.reads_shared b.reads_shared;
    writes_shared = SS.union a.writes_shared b.writes_shared;
    io = a.io || b.io;
    raises = a.raises || b.raises;
    nondet =
      (* deterministic join: the lexicographically first witness *)
      (match (a.nondet, b.nondet) with
      | Some x, Some y -> Some (min x y)
      | (Some _ as w), None | None, (Some _ as w) -> w
      | None, None -> None);
  }

(* Effect tags in a fixed order, for dumps and messages. *)
let describe s =
  if pure s then [ "pure" ]
  else
    (if s.reads_mut then [ "reads-mutable" ] else [])
    @ (if s.writes_own then [ "writes-own" ] else [])
    @ List.map (fun t -> "reads-shared:" ^ t) (SS.elements s.reads_shared)
    @ List.map (fun t -> "writes-shared:" ^ t) (SS.elements s.writes_shared)
    @ (if s.io then [ "io" ] else [])
    @ (if s.raises then [ "raises" ] else [])
    @ (match s.nondet with Some w -> [ "nondet:" ^ w ] | None -> [])

(* A shared-write site, kept per binding for precise diagnostics. *)
type site = { s_target : string; s_loc : Location.t }

type info = {
  base : (string, t) Hashtbl.t;  (* intraprocedural, per node *)
  full : (string, t) Hashtbl.t;  (* propagated to fixpoint *)
  sites : (string, site list) Hashtbl.t;  (* shared-write sites per node *)
  field_writes : (string, SS.t) Hashtbl.t;
      (* node -> "Module.type.field" mutable fields it assigns *)
  accessors : (string, string) Hashtbl.t;
      (* single-field accessors ("let buf t = t.slab"): node ->
         "Module.type.field". An application of such a binding IS the
         field read, so ownership tracing looks through it instead of
         treating the result as fresh — the returned-alias blind spot
         of DESIGN.md §9.4, closed for one-field accessors. The
         atomics pack (rules_atomic) uses the same map to attribute a
         write through a stored accessor result to the underlying
         field. *)
}

let get_opt tbl n = Hashtbl.find_opt tbl n
let get tbl n = Option.value (get_opt tbl n) ~default:empty

(* ------------------------------------------------------------------ *)
(* Classifying stdlib calls                                            *)

(* Normalized (module, value) head of an applied or referenced path;
   single-component (local) paths classify as nothing. *)
let target_of_path p =
  match List.rev (Typed.path_components p []) with
  | v :: m :: _ -> Some (Typed.plain_module m, v)
  | _ -> None

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Indices (into the positional argument list) an application writes
   through. *)
let write_args = function
  | "Stdlib", (":=" | "incr" | "decr") -> [ 0 ]
  | "Array", ("set" | "unsafe_set" | "fill") -> [ 0 ]
  | "Array", ("sort" | "fast_sort" | "stable_sort") -> [ 1 ]
  | "Array", "blit" -> [ 2 ]
  | "Bytes", ("set" | "unsafe_set" | "fill") -> [ 0 ]
  | "Bytes", ("blit" | "blit_string") -> [ 2 ]
  | "Hashtbl", ("replace" | "add" | "remove" | "reset" | "clear") -> [ 0 ]
  | "Hashtbl", "filter_map_inplace" -> [ 1 ]
  | "Queue", ("push" | "add") -> [ 1 ]
  | "Queue", ("pop" | "take" | "clear") -> [ 0 ]
  | "Queue", "transfer" -> [ 0; 1 ]
  | "Stack", "push" -> [ 1 ]
  | "Stack", ("pop" | "clear") -> [ 0 ]
  | "Buffer", ("clear" | "reset" | "truncate") -> [ 0 ]
  | "Buffer", f when has_prefix "add_" f -> [ 0 ]
  | ( "Atomic",
      ("set" | "exchange" | "incr" | "decr" | "compare_and_set"
      | "fetch_and_add") ) ->
      [ 0 ]
  | _ -> []

(* Indices an application reads mutable state through. Immutable
   observations (Array.length) don't count. *)
let read_args = function
  | "Stdlib", "!" -> [ 0 ]
  | "Array", ("get" | "unsafe_get" | "copy" | "to_list" | "sub") -> [ 0 ]
  | "Array", ("iter" | "iteri" | "map" | "mapi" | "exists" | "for_all"
             | "mem" | "fold_right") ->
      [ 1 ]
  | "Array", "fold_left" -> [ 2 ]
  | "Bytes", ("get" | "unsafe_get" | "sub" | "sub_string" | "to_string") ->
      [ 0 ]
  | ( "Hashtbl",
      ("find" | "find_opt" | "find_all" | "mem" | "length" | "copy"
      | "to_seq" | "to_seq_keys" | "to_seq_values" | "stats") ) ->
      [ 0 ]
  | "Hashtbl", ("fold" | "iter") -> [ 1 ]
  | "Queue", ("peek" | "top" | "length" | "is_empty") -> [ 0 ]
  | "Queue", "iter" -> [ 1 ]
  | "Queue", "fold" -> [ 2 ]
  | "Stack", ("top" | "length" | "is_empty") -> [ 0 ]
  | "Stack", "iter" -> [ 1 ]
  | "Stack", "fold" -> [ 2 ]
  | "Buffer", ("contents" | "length" | "sub" | "nth" | "to_bytes") -> [ 0 ]
  | "Atomic", "get" -> [ 0 ]
  | _ -> []

let pure_sys =
  [
    "opaque_identity"; "word_size"; "int_size"; "big_endian";
    "max_string_length"; "max_array_length"; "max_floatarray_length";
    "ocaml_version"; "backend_type";
  ]

let is_io = function
  | "Printf", ("printf" | "eprintf" | "fprintf" | "ifprintf") -> true
  | "Format", f ->
      has_prefix "print_" f || has_prefix "pp_print_" f
      || List.mem f [ "printf"; "eprintf"; "fprintf"; "force_newline" ]
  | "Stdlib", f ->
      List.exists
        (fun p -> has_prefix p f)
        [
          "print_"; "prerr_"; "output"; "input"; "open_"; "close_"; "read_";
          "seek_"; "pos_";
        ]
      || List.mem f [ "flush"; "flush_all"; "exit"; "at_exit"; "really_input";
                      "really_input_string"; "in_channel_length";
                      "out_channel_length"; "set_binary_mode_in";
                      "set_binary_mode_out" ]
  | "Sys", f -> not (List.mem f pure_sys)
  | ("Unix" | "In_channel" | "Out_channel"), _ -> true
  | "Filename", ("temp_file" | "open_temp_file" | "temp_dir") -> true
  | _ -> false

let nondet_why = function
  | "Random", f -> Some (Printf.sprintf "Random.%s (unseeded)" f)
  | "Sys", "time" -> Some "Sys.time (wall clock)"
  | "Unix", (("gettimeofday" | "time") as f) ->
      Some (Printf.sprintf "Unix.%s (wall clock)" f)
  | "Hashtbl", "randomize" -> Some "Hashtbl.randomize"
  | _ -> None

let is_raise = function
  | "Stdlib", ("raise" | "raise_notrace" | "failwith" | "invalid_arg") -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Ownership: tracing an lvalue to its root                            *)

type root = Owned | Shared of string

(* Root of the value [e] denotes, through record fields, derefs and
   array reads. [statics] is the binding's scope chain from the call
   graph; [aliases] maps local lets bound to shared-rooted values;
   [accessors] maps single-field accessor nodes to their field, so an
   accessor application roots at the accessor's argument. *)
let rec root_of ~statics ~aliases ~accessors (e : Typedtree.expression) =
  let is_function =
    match Types.get_desc e.exp_type with
    | Types.Tarrow _ -> true
    | _ -> false
  in
  match e.exp_desc with
  | _ when is_function -> Owned (* functions are code, not mutable state *)
  | Texp_ident (Path.Pident id, _, _) -> (
      match List.find_opt (fun (i, _) -> Ident.same i id) statics with
      | Some (_, node) -> Shared node
      | None -> (
          match
            List.find_opt (fun (i, _) -> Ident.same i id) !aliases
          with
          | Some (_, g) -> Shared g
          | None -> Owned (* parameter or local *)))
  | Texp_ident (p, _, _) ->
      (* dotted path: module-level state of this or another module *)
      Shared
        (String.concat "."
           (match Typed.path_components p [] with
           | m :: rest -> Typed.plain_module m :: rest
           | [] -> []))
  | Texp_field (b, _, _) -> root_of ~statics ~aliases ~accessors b
  | Texp_apply (f, args) -> (
      let accessor =
        match f.exp_desc with
        | Texp_ident (Path.Pident id, _, _) -> (
            match List.find_opt (fun (i, _) -> Ident.same i id) statics with
            | Some (_, n) -> Hashtbl.mem accessors n
            | None -> false)
        | Texp_ident (p, _, _) -> (
            match target_of_path p with
            | Some (("Array" | "Bytes"), ("get" | "unsafe_get"))
            | Some ("Stdlib", "!") ->
                true
            | Some (tm, tv) -> Hashtbl.mem accessors (tm ^ "." ^ tv)
            | None -> false)
        | _ -> false
      in
      if accessor then
        match List.filter_map snd args with
        | a :: _ -> root_of ~statics ~aliases ~accessors a
        | [] -> Owned
      else Owned (* fresh value returned by a call *))
  | _ -> Owned (* literals, fresh constructions, matches, ... *)

(* ------------------------------------------------------------------ *)
(* Base (intraprocedural) scan of one binding                          *)

(* "Module.type.field" for a mutable label; the defining module comes
   from the label's result type when it is a dotted constructor, else
   the module under scan. *)
let field_id ~self (ld : Types.label_description) =
  let tmod, tname =
    match Types.get_desc ld.lbl_res with
    | Types.Tconstr (p, _, _) -> (
        match List.rev (Typed.path_components p []) with
        | t :: m :: _ -> (Typed.plain_module m, t)
        | [ t ] -> (self, t)
        | [] -> (self, "?"))
    | _ -> (self, "?")
  in
  Printf.sprintf "%s.%s.%s" tmod tname ld.lbl_name

(* "let buf t = t.slab" — a one-parameter accessor whose whole body is
   a field read of that parameter. The map of these is what lets
   root_of and the atomics pack look through a returned alias. *)
let accessor_of (b : Callgraph.bind) =
  match b.Callgraph.b_vb.vb_expr.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> (
      match (c.c_lhs.pat_desc, c.c_rhs.exp_desc) with
      | Tpat_var (pid, _), Texp_field (obj, _, ld) -> (
          match obj.exp_desc with
          | Texp_ident (Path.Pident oid, _, _) when Ident.same pid oid ->
              Some (field_id ~self:b.Callgraph.b_mod.Typed.ti_module ld)
          | _ -> None)
      | _ -> None)
  | _ -> None

let scan ~accessors (b : Callgraph.bind) =
  let m = b.Callgraph.b_mod in
  let statics = b.Callgraph.b_statics in
  (* lib/topology/rng.ml is the sanctioned seeded randomness source *)
  let sanctioned = m.Typed.ti_file = "lib/topology/rng.ml" in
  let s = ref empty in
  let sites = ref [] in
  let fields = ref SS.empty in
  let aliases : (Ident.t * string) list ref = ref [] in
  let set f = s := f !s in
  let note_write root loc =
    match root with
    | Owned -> set (fun s -> { s with writes_own = true })
    | Shared g ->
        set (fun s -> { s with writes_shared = SS.add g s.writes_shared });
        sites := { s_target = g; s_loc = loc } :: !sites
  in
  let note_read = function
    | Owned -> set (fun s -> { s with reads_mut = true })
    | Shared g ->
        set (fun s -> { s with reads_shared = SS.add g s.reads_shared })
  in
  let root_of e = root_of ~statics ~aliases ~accessors e in
  let classify_head (mf : string * string) loc =
    if is_io mf then set (fun s -> { s with io = true });
    if is_raise mf then set (fun s -> { s with raises = true });
    match nondet_why mf with
    | Some why when not sanctioned ->
        let line, _ = Diag.loc_pos loc in
        let w = Printf.sprintf "%s at %s:%d" why m.Typed.ti_file line in
        set (fun s ->
            { s with nondet = (join s { empty with nondet = Some w }).nondet })
    | _ -> ()
  in
  let open Tast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun it (e : Typedtree.expression) ->
          (match e.exp_desc with
          | Texp_let (_, vbs, _) ->
              (* record local aliases of shared state before the body
                 (children are visited after this node) *)
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  match vb.vb_pat.pat_desc with
                  | Tpat_var (id, _) -> (
                      match root_of vb.vb_expr with
                      | Shared g -> aliases := (id, g) :: !aliases
                      | Owned -> ())
                  | _ -> ())
                vbs
          | Texp_setfield (obj, _, ld, _) ->
              note_write (root_of obj) e.exp_loc;
              fields := SS.add (field_id ~self:m.Typed.ti_module ld) !fields
          | Texp_field (obj, _, ld) when ld.Types.lbl_mut = Asttypes.Mutable
            ->
              note_read (root_of obj)
          | Texp_setinstvar _ -> set (fun s -> { s with writes_own = true })
          | Texp_assert _ -> set (fun s -> { s with raises = true })
          | Texp_ident (p, _, _) -> (
              match target_of_path p with
              | Some mf -> classify_head mf e.exp_loc
              | None -> ())
          | Texp_apply (f, args) -> (
              match f.exp_desc with
              | Texp_ident (p, _, _) -> (
                  match target_of_path p with
                  | Some mf ->
                      let pos = List.filter_map snd args in
                      let at i = List.nth_opt pos i in
                      List.iter
                        (fun i ->
                          match at i with
                          | Some a -> note_write (root_of a) a.exp_loc
                          | None ->
                              (* partial application of a mutator:
                                 assume the eventual target is owned *)
                              set (fun s -> { s with writes_own = true }))
                        (write_args mf);
                      List.iter
                        (fun i ->
                          match at i with
                          | Some a -> note_read (root_of a)
                          | None -> ())
                        (read_args mf)
                  | None -> ())
              | _ -> ())
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  iter.value_binding iter b.Callgraph.b_vb;
  (!s, List.rev !sites, !fields)

(* ------------------------------------------------------------------ *)
(* Fixpoint: Tarjan SCC condensation, reverse-topological join         *)

let sccs_of (cg : Callgraph.t) =
  let order = SS.elements cg.Callgraph.nodes in
  let index = Hashtbl.create 256 in
  let lowlink = Hashtbl.create 256 in
  let on_stack = Hashtbl.create 256 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    SS.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Callgraph.succs cg v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) order;
  (* Tarjan emits SCCs in reverse topological order (callees before
     callers); !sccs is the reversal of emission order, so re-reverse *)
  List.rev !sccs

let compute (cg : Callgraph.t) =
  let base = Hashtbl.create 256 in
  let sites = Hashtbl.create 64 in
  let field_writes = Hashtbl.create 64 in
  let accessors = Hashtbl.create 64 in
  List.iter
    (fun (b : Callgraph.bind) ->
      match accessor_of b with
      | Some f -> Hashtbl.replace accessors b.Callgraph.b_node f
      | None -> ())
    cg.Callgraph.binds;
  List.iter
    (fun (b : Callgraph.bind) ->
      let s, ws, fw = scan ~accessors b in
      let n = b.Callgraph.b_node in
      (* a name bound twice in one module (shadowing at the top level)
         joins; last write of sites appends *)
      Hashtbl.replace base n (join (get base n) s);
      if ws <> [] then
        Hashtbl.replace sites n
          (Option.value (Hashtbl.find_opt sites n) ~default:[] @ ws);
      if not (SS.is_empty fw) then
        Hashtbl.replace field_writes n
          (SS.union
             (Option.value (Hashtbl.find_opt field_writes n) ~default:SS.empty)
             fw))
    cg.Callgraph.binds;
  let full = Hashtbl.create 256 in
  List.iter
    (fun scc ->
      let members = SS.of_list scc in
      let s =
        List.fold_left
          (fun acc v ->
            let acc = join acc (get base v) in
            SS.fold
              (fun w acc ->
                if SS.mem w members then acc else join acc (get full w))
              (Callgraph.succs cg v) acc)
          empty scc
      in
      List.iter (fun v -> Hashtbl.replace full v s) scc)
    (sccs_of cg);
  { base; full; sites; field_writes; accessors }
