(* Arena bounds proofs (evolvelint v4, DESIGN.md §9.5).

   An abstract interpretation over linear expressions that tries to
   prove every Bigarray/Bytes index in the tree in-bounds, so the hot
   path may use [unsafe_get]/[unsafe_set] where the proof succeeds.

   The domain is deliberately small: an expression is a linear form
   `c + Σ kᵢ·symᵢ` over symbols naming locals/parameters (`v:`),
   string/bytes lengths (`len:`), bigarray dims (`dim:`) and array
   lengths (`alen:`); everything else is a fresh opaque. Facts are
   linear forms known to be ≥ 0, gathered from the guards that
   dominate an access: `if`/`&&`/`||` branches (with ±1 tightening on
   strict integer comparisons), early-exit raise guards, `for`-loop
   ranges, `String.init` lambdas, and two contracts that make arena
   code provable — `let off = Arena.alloc a len` plus a later
   `off >= 0` fact yields `dim(a) - off - len >= 0`, and
   `let b = Arena.buf a` aliases `dim(b)` to `dim(a)`. Predicates
   whose body is an `&&`-chain of linear comparisons over their
   formals (Wire.big_peek_ok) export those conjuncts as
   postconditions, instantiated at call sites.

   A goal `g >= 0` is proved by finding a small subset of facts (plus
   the free axioms `len/dim/alen >= 0`) whose sum, subtracted from
   [g], leaves a nonnegative constant — sound because each fact is
   itself ≥ 0. Obligations a binding cannot prove locally are
   re-expressed over its formal parameters (eliminating each local
   through a unit-coefficient bound, which only weakens the goal) and
   exported; one reverse-topological pass over the call-graph SCCs
   instantiates every exported obligation at every call site, proving
   it there or re-exporting it up the chain. An obligation still open
   at a bounds root or at a binding with no analyzed callers has
   escaped the analysis and its access stays unproven; intra-SCC
   (recursive) call sites instantiate the callee's phase-A residuals
   once, a documented approximation.

   Checked [String.get]/[Array.get] stay out of scope — the decode
   cursor and the ring's masked indexing rely on runtime checks by
   design. Checked Bigarray/Bytes accesses and every unsafe access are
   obligations. Findings: `arena-bounds` for an unproven
   Bigarray/Bytes access reachable from the bounds roots, and
   `unsafe-unproven` for any unproven unsafe access in lib/ — the rule
   that makes unsafe accesses lint-licensed, never a judgment call. *)

module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Linear expressions: c + Σ k·sym, terms sorted, no zero coeffs       *)

type lx = { c : int; ts : (string * int) list }

let lconst c = { c; ts = [] }
let lsym s = { c = 0; ts = [ (s, 1) ] }

let ladd a b =
  let rec m xs ys =
    match (xs, ys) with
    | [], r | r, [] -> r
    | (sx, kx) :: tx, (sy, ky) :: ty ->
        if sx = sy then
          let k = kx + ky in
          if k = 0 then m tx ty else (sx, k) :: m tx ty
        else if sx < sy then (sx, kx) :: m tx ys
        else (sy, ky) :: m xs ty
  in
  { c = a.c + b.c; ts = m a.ts b.ts }

let lscale k a =
  if k = 0 then lconst 0
  else { c = k * a.c; ts = List.map (fun (s, j) -> (s, k * j)) a.ts }

let lsub a b = ladd a (lscale (-1) b)
let lis_const a = a.ts = []

(* Symbols render with Ident stamps stripped so messages are
   byte-stable across rebuilds: "v:body_271" -> "body",
   "dim:v:arena_3" -> "dim(arena)", opaques -> "?n". *)
let strip_stamp s =
  let n = String.length s in
  let rec digits i =
    if i > 0 && s.[i - 1] >= '0' && s.[i - 1] <= '9' then digits (i - 1) else i
  in
  let i = digits n in
  if i < n && i > 1 && s.[i - 1] = '_' then String.sub s 0 (i - 1) else s

let has_prefix p s =
  String.length s > String.length p && String.sub s 0 (String.length p) = p

let after p s = String.sub s (String.length p) (String.length s - String.length p)

let rec render_sym s =
  if has_prefix "len:" s then "len(" ^ render_sym (after "len:" s) ^ ")"
  else if has_prefix "dim:" s then "dim(" ^ render_sym (after "dim:" s) ^ ")"
  else if has_prefix "alen:" s then "length(" ^ render_sym (after "alen:" s) ^ ")"
  else if has_prefix "v:" s then strip_stamp (after "v:" s)
  else if has_prefix "o:" s then "?" ^ after "o:" s
  else if has_prefix "p:" s then "?" ^ after "p:" s
  else if has_prefix "g:" s then after "g:" s
  else s

let render g =
  let term first (s, k) =
    let v = render_sym s in
    let mag = abs k in
    let core = if mag = 1 then v else Printf.sprintf "%d*%s" mag v in
    if k >= 0 then if first then core else "+ " ^ core else "- " ^ core
  in
  let parts = List.mapi (fun i t -> term (i = 0) t) g.ts in
  let parts =
    if parts = [] then [ string_of_int g.c ]
    else if g.c = 0 then parts
    else if g.c > 0 then parts @ [ Printf.sprintf "+ %d" g.c ]
    else parts @ [ Printf.sprintf "- %d" (-g.c) ]
  in
  String.concat " " parts

(* ------------------------------------------------------------------ *)
(* Sites and obligations                                               *)

type site = {
  sp_file : string;
  sp_line : int;
  sp_col : int;
  sp_node : string;  (* binding containing the access *)
  sp_accessor : string;  (* e.g. "Bigarray.Array1.unsafe_set" *)
  sp_unsafe : bool;
  mutable sp_proven : bool;
  mutable sp_reasons : string list;  (* why not, when not *)
}

type oblig = { ob_site : site; ob_goal : lx }  (* goal over formal syms *)

(* How a call site maps one callee formal onto caller terms. *)
type tgt = { tv : lx; tbase : string option; tdim : string option }

type callsite = {
  k_callee : string;
  k_map : (string * tgt) list;  (* callee formal sym -> caller target *)
  k_facts : lx list;
  k_formal_ids : SS.t;  (* caller's formals, for re-export *)
}

(* ------------------------------------------------------------------ *)
(* Environment of one binding's walk                                   *)

type env = {
  statics : (Ident.t * string) list;
  consts : (string, int) Hashtbl.t;  (* node -> top-level int literal *)
  mods : SS.t;  (* analyzed module names *)
  formals_tbl : (string, (Asttypes.arg_label * Ident.t option) list) Hashtbl.t;
  post_tbl : (string, lx list) Hashtbl.t;  (* node -> postconditions *)
  subst : (Ident.t * lx) list;
  bufs : (Ident.t * string) list;  (* Arena.buf alias -> arena root sym *)
  allocs : (string * (string * lx)) list;  (* off sym -> (dim sym, len) *)
  formal_ids : SS.t;
  fresh : int ref;
}

let vsym id = "v:" ^ Ident.unique_name id

let opaque env =
  incr env.fresh;
  lsym ("o:" ^ string_of_int !(env.fresh))

let head_std (f : Typedtree.expression) =
  match f.exp_desc with
  | Texp_ident (p, _, _) -> Typed.norm_target p
  | _ -> None

(* An applied head resolving to an analyzed binding, through the
   static scope (local references) or a normalized dotted path. *)
let head_node env (f : Typedtree.expression) =
  match f.exp_desc with
  | Texp_ident (Path.Pident id, _, _) ->
      Option.map snd (List.find_opt (fun (i, _) -> Ident.same i id) env.statics)
  | Texp_ident (p, _, _) -> (
      match Typed.norm_target p with
      | Some (m, v) when SS.mem m env.mods -> Some (m ^ "." ^ v)
      | _ -> None)
  | _ -> None

let find_ident assoc id =
  Option.map snd (List.find_opt (fun (i, _) -> Ident.same i id) assoc)

(* Root symbol a value's derived quantities (len/dim/alen) hang off. *)
let base_sym env (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
      match find_ident env.subst id with
      | Some { c = 0; ts = [ (s, 1) ] } -> Some s
      | Some _ -> None
      | None -> (
          match find_ident env.statics id with
          | Some node -> Some ("g:" ^ node)
          | None -> Some (vsym id)))
  | Texp_ident (p, _, _) -> (
      match Typed.norm_target p with
      | Some (m, v) -> Some ("g:" ^ m ^ "." ^ v)
      | None -> None)
  | _ -> None

let derived pfx env e =
  match base_sym env e with Some s -> lsym (pfx ^ s) | None -> opaque env

let dim_of env (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) when find_ident env.bufs id <> None ->
      lsym ("dim:" ^ Option.get (find_ident env.bufs id))
  | _ -> derived "dim:" env e

let rec lx_of env (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_int n) -> lconst n
  | Texp_ident (Path.Pident id, _, _) -> (
      match find_ident env.subst id with
      | Some l -> l
      | None -> (
          match find_ident env.statics id with
          | Some node -> (
              match Hashtbl.find_opt env.consts node with
              | Some n -> lconst n
              | None -> lsym ("g:" ^ node))
          | None -> lsym (vsym id)))
  | Texp_ident (p, _, _) -> (
      match Typed.norm_target p with
      | Some (m, v) -> (
          let node = m ^ "." ^ v in
          match Hashtbl.find_opt env.consts node with
          | Some n -> lconst n
          | None -> lsym ("g:" ^ node))
      | None -> opaque env)
  | Texp_apply (f, args) -> (
      match (head_std f, List.filter_map snd args) with
      | Some ("Stdlib", "+"), [ a; b ] -> ladd (lx_of env a) (lx_of env b)
      | Some ("Stdlib", "-"), [ a; b ] -> lsub (lx_of env a) (lx_of env b)
      | Some ("Stdlib", "~-"), [ a ] -> lscale (-1) (lx_of env a)
      | Some ("Stdlib", "*"), [ a; b ] ->
          let la = lx_of env a and lb = lx_of env b in
          if lis_const la then lscale la.c lb
          else if lis_const lb then lscale lb.c la
          else opaque env
      | Some (("String" | "Bytes"), "length"), [ a ] -> derived "len:" env a
      | Some ("Array", "length"), [ a ] -> derived "alen:" env a
      | Some ("Array1", "dim"), [ a ] -> dim_of env a
      | _ -> opaque env)
  | _ -> opaque env

(* ------------------------------------------------------------------ *)
(* Facts from conditions                                               *)

let is_int_ty (e : Typedtree.expression) =
  match Types.get_desc e.exp_type with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_int
  | _ -> false

let label_eq (a : Asttypes.arg_label) (b : Asttypes.arg_label) =
  match (a, b) with
  | Asttypes.Nolabel, Asttypes.Nolabel -> true
  | Asttypes.Labelled x, Asttypes.Labelled y -> x = y
  | Asttypes.Optional x, Asttypes.Optional y -> x = y
  | _ -> false

(* Pair each callee formal with its actual: labels by name, unlabeled
   positionally; unmatched formals (partial application) drop out. *)
let match_args (formals : (Asttypes.arg_label * Ident.t option) list)
    (args : (Asttypes.arg_label * Typedtree.expression option) list) =
  let args = Array.of_list args in
  let used = Array.make (Array.length args) false in
  let take lbl =
    let r = ref None in
    Array.iteri
      (fun j (l, eo) ->
        if !r = None && (not used.(j)) && label_eq lbl l && eo <> None then begin
          used.(j) <- true;
          r := eo
        end)
      args;
    !r
  in
  List.filter_map
    (fun (lbl, ido) ->
      let actual = take lbl in
      match (ido, actual) with
      | Some id, Some a -> Some (id, a)
      | _ -> None)
    formals

let tgt_of env (a : Typedtree.expression) =
  let tv = lx_of env a in
  let tbase =
    match tv with { c = 0; ts = [ (s, 1) ] } -> Some s | _ -> base_sym env a
  in
  let tdim =
    match a.exp_desc with
    | Texp_ident (Path.Pident id, _, _) when find_ident env.bufs id <> None ->
        Some ("dim:" ^ Option.get (find_ident env.bufs id))
    | _ -> Option.map (fun s -> "dim:" ^ s) tbase
  in
  { tv; tbase; tdim }

(* Substitute a callee-formal goal through a call-site map. Unmapped
   symbols become fresh opaques — never provable, always sound. *)
let instantiate fresh (map : (string * tgt) list) (g : lx) =
  let opq () =
    incr fresh;
    lsym ("p:" ^ string_of_int !fresh)
  in
  List.fold_left
    (fun acc (s, k) ->
      let term =
        match List.assoc_opt s map with
        | Some t -> t.tv
        | None ->
            if has_prefix "len:" s || has_prefix "alen:" s then begin
              let p = if has_prefix "len:" s then "len:" else "alen:" in
              match List.assoc_opt (after p s) map with
              | Some { tbase = Some b; _ } -> lsym (p ^ b)
              | _ -> opq ()
            end
            else if has_prefix "dim:" s then
              match List.assoc_opt (after "dim:" s) map with
              | Some { tdim = Some d; _ } -> lsym d
              | _ -> opq ()
            else opq ()
      in
      ladd acc (lscale k term))
    (lconst g.c) g.ts

(* The alloc contract fires when the program learns off >= 0: that is
   exactly Arena.alloc's non-exhaustion signal, so the slab holds
   [len] bytes at [off]. *)
let augment env f =
  match f with
  | { c = 0; ts = [ (s, 1) ] } -> (
      match List.assoc_opt s env.allocs with
      | Some (dim_sym, len) -> [ f; lsub (lsub (lsym dim_sym) (lsym s)) len ]
      | None -> [ f ])
  | _ -> [ f ]

let add_facts env nf facts = List.concat_map (augment env) nf @ facts

let rec cond_facts env (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, args) -> (
      let pos = List.filter_map snd args in
      match (head_std f, pos) with
      | Some ("Stdlib", "&&"), [ a; b ] ->
          let ta, _ = cond_facts env a and tb, _ = cond_facts env b in
          (ta @ tb, [])
      | Some ("Stdlib", "||"), [ a; b ] ->
          let _, fa = cond_facts env a and _, fb = cond_facts env b in
          ([], fa @ fb)
      | Some ("Stdlib", "not"), [ a ] ->
          let t, fa = cond_facts env a in
          (fa, t)
      | Some ("Stdlib", (("<" | "<=" | ">" | ">=" | "=" | "<>") as op)), [ a; b ]
        when is_int_ty a && is_int_ty b -> (
          let la = lx_of env a and lb = lx_of env b in
          let ge x y = lsub x y in
          let gt x y = lsub (lsub x y) (lconst 1) in
          match op with
          | "<" -> ([ gt lb la ], [ ge la lb ])
          | "<=" -> ([ ge lb la ], [ gt la lb ])
          | ">" -> ([ gt la lb ], [ ge lb la ])
          | ">=" -> ([ ge la lb ], [ gt lb la ])
          | "=" -> ([ ge la lb; ge lb la ], [])
          | _ -> ([], [ ge la lb; ge lb la ]))
      | _ -> (
          (* a predicate with inferred postconditions: its truth is the
             conjunction of those linear facts at the actuals *)
          match head_node env f with
          | Some n -> (
              match
                ( Hashtbl.find_opt env.post_tbl n,
                  Hashtbl.find_opt env.formals_tbl n )
              with
              | Some posts, Some formals ->
                  let map =
                    List.map
                      (fun (id, a) -> (vsym id, tgt_of env a))
                      (match_args formals args)
                  in
                  (List.map (instantiate env.fresh map) posts, [])
              | _ -> ([], []))
          | None -> ([], [])))
  | _ -> ([], [])

(* ------------------------------------------------------------------ *)
(* The prover: subtract a small subset of facts, land on a constant    *)

let deriv_axioms facts goal =
  let syms =
    List.fold_left
      (fun acc g -> List.fold_left (fun acc (s, _) -> SS.add s acc) acc g.ts)
      SS.empty (goal :: facts)
  in
  SS.fold
    (fun s acc ->
      if has_prefix "len:" s || has_prefix "dim:" s || has_prefix "alen:" s
      then lsym s :: acc
      else acc)
    syms []

let proves facts goal =
  let fs =
    Array.of_list (List.sort_uniq compare (facts @ deriv_axioms facts goal))
  in
  let n = Array.length fs in
  let ok g = g.ts = [] && g.c >= 0 in
  let rec pick depth start g =
    ok g
    || depth > 0
       &&
       let r = ref false in
       let i = ref start in
       while (not !r) && !i < n do
         r := pick (depth - 1) (!i + 1) (lsub g fs.(!i));
         incr i
       done;
       !r
  in
  pick 4 0 goal

let exportable formal_ids s =
  let rec strip s =
    if has_prefix "len:" s then strip (after "len:" s)
    else if has_prefix "alen:" s then strip (after "alen:" s)
    else if has_prefix "dim:" s then strip (after "dim:" s)
    else s
  in
  let b = strip s in
  has_prefix "v:" b && SS.mem (after "v:" b) formal_ids

(* Eliminate every non-formal symbol from [g] through unit-coefficient
   facts: for k·s with k > 0 a lower bound (a fact with +1 on s), for
   k < 0 an upper bound (-1 on s); each step subtracts |k| copies of a
   nonnegative fact, so the residual still implies the goal. *)
let eliminate formal_ids facts g =
  let cands = List.sort_uniq compare (facts @ deriv_axioms facts g) in
  let rec go g fuel =
    match List.find_opt (fun (s, _) -> not (exportable formal_ids s)) g.ts with
    | None -> Some g
    | Some (s, k) ->
        if fuel = 0 then None
        else
          let want = if k > 0 then 1 else -1 in
          List.find_map
            (fun f ->
              if List.assoc_opt s f.ts = Some want then
                go (lsub g (lscale (abs k) f)) (fuel - 1)
              else None)
            cands
  in
  go g 8

(* ------------------------------------------------------------------ *)
(* Phase A: walk every binding                                         *)

let always_raise_heads = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let rec always_raises (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match head_std f with
      | Some ("Stdlib", v) -> List.mem v always_raise_heads
      | _ -> false)
  | Texp_sequence (_, b) -> always_raises b
  | Texp_let (_, _, b) -> always_raises b
  | _ -> false

let rec formals_of (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { arg_label; cases = [ c ]; _ } ->
      let id =
        match c.c_lhs.pat_desc with
        | Tpat_var (id, _) | Tpat_alias (_, id, _) -> Some id
        | _ -> None
      in
      (arg_label, id) :: formals_of c.c_rhs
  | _ -> []

let rec body_of (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> body_of c.c_rhs
  | _ -> e

let rec conjuncts (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, [ (_, Some a); (_, Some b) ])
    when head_std f = Some ("Stdlib", "&&") ->
      conjuncts a @ conjuncts b
  | _ -> [ e ]

let accessor_table =
  [
    (("Array1", "get"), ("Bigarray.Array1.get", `Dim, false));
    (("Array1", "set"), ("Bigarray.Array1.set", `Dim, false));
    (("Array1", "unsafe_get"), ("Bigarray.Array1.unsafe_get", `Dim, true));
    (("Array1", "unsafe_set"), ("Bigarray.Array1.unsafe_set", `Dim, true));
    (("Bytes", "get"), ("Bytes.get", `Len, false));
    (("Bytes", "set"), ("Bytes.set", `Len, false));
    (("Bytes", "unsafe_get"), ("Bytes.unsafe_get", `Len, true));
    (("Bytes", "unsafe_set"), ("Bytes.unsafe_set", `Len, true));
    (("String", "unsafe_get"), ("String.unsafe_get", `Len, true));
    (("Array", "unsafe_get"), ("Array.unsafe_get", `Alen, true));
    (("Array", "unsafe_set"), ("Array.unsafe_set", `Alen, true));
  ]

let analyze ~roots (cg : Callgraph.t) =
  let consts = Hashtbl.create 64 in
  let formals_tbl = Hashtbl.create 256 in
  let post_tbl = Hashtbl.create 32 in
  let mods =
    List.fold_left
      (fun acc (b : Callgraph.bind) ->
        SS.add b.Callgraph.b_mod.Typed.ti_module acc)
      SS.empty cg.Callgraph.binds
  in
  (* prepass 1: module-level integer constants and formal lists *)
  List.iter
    (fun (b : Callgraph.bind) ->
      (match b.Callgraph.b_vb.vb_expr.exp_desc with
      | Texp_constant (Asttypes.Const_int n) ->
          Hashtbl.replace consts b.Callgraph.b_node n
      | _ -> ());
      Hashtbl.replace formals_tbl b.Callgraph.b_node
        (formals_of b.Callgraph.b_vb.vb_expr))
    cg.Callgraph.binds;
  let env_of (b : Callgraph.bind) =
    let formals = Hashtbl.find formals_tbl b.Callgraph.b_node in
    let formal_ids =
      List.fold_left
        (fun acc (_, ido) ->
          match ido with
          | Some id -> SS.add (Ident.unique_name id) acc
          | None -> acc)
        SS.empty formals
    in
    {
      statics = b.Callgraph.b_statics;
      consts;
      mods;
      formals_tbl;
      post_tbl;
      subst = [];
      bufs = [];
      allocs = [];
      formal_ids;
      fresh = ref 0;
    }
  in
  (* prepass 2: postconditions of &&-chain predicates, over formals
     only (conjuncts that mention anything else are skipped) *)
  List.iter
    (fun (b : Callgraph.bind) ->
      let env = env_of b in
      let body = body_of b.Callgraph.b_vb.vb_expr in
      let posts =
        List.concat_map
          (fun conj ->
            let tf, _ = cond_facts env conj in
            List.filter
              (fun f ->
                List.for_all (fun (s, _) -> exportable env.formal_ids s) f.ts)
              tf)
          (conjuncts body)
      in
      if posts <> [] && not (SS.is_empty env.formal_ids) then
        Hashtbl.replace post_tbl b.Callgraph.b_node posts)
    cg.Callgraph.binds;
  (* phase A: collect obligations and call sites, prove what's local *)
  let sites = ref [] in
  let opens : (string, oblig list) Hashtbl.t = Hashtbl.create 32 in
  let callsites : (string, callsite list) Hashtbl.t = Hashtbl.create 64 in
  let push_open node ob =
    let cur = Option.value (Hashtbl.find_opt opens node) ~default:[] in
    if
      not
        (List.exists
           (fun o -> o.ob_site == ob.ob_site && o.ob_goal = ob.ob_goal)
           cur)
    then Hashtbl.replace opens node (cur @ [ ob ])
  in
  let mark site reason =
    site.sp_proven <- false;
    if not (List.mem reason site.sp_reasons) then
      site.sp_reasons <- site.sp_reasons @ [ reason ]
  in
  List.iter
    (fun (b : Callgraph.bind) ->
      let node = b.Callgraph.b_node in
      let file = b.Callgraph.b_mod.Typed.ti_file in
      let env0 = env_of b in
      let settle env facts site goal =
        if proves facts goal then ()
        else
          match eliminate env.formal_ids facts goal with
          | Some r when lis_const r ->
              if r.c < 0 then mark site ("cannot prove " ^ render goal ^ " >= 0")
          | Some r -> push_open node { ob_site = site; ob_goal = r }
          | None -> mark site ("cannot prove " ^ render goal ^ " >= 0")
      in
      let rec go env facts (e : Typedtree.expression) =
        let walk_children () =
          let open Tast_iterator in
          let it =
            { default_iterator with expr = (fun _ e -> go env facts e) }
          in
          default_iterator.expr it e
        in
        match e.exp_desc with
        | Texp_let (Asttypes.Nonrecursive, vbs, body) ->
            List.iter
              (fun (vb : Typedtree.value_binding) -> go env facts vb.vb_expr)
              vbs;
            let env =
              List.fold_left
                (fun env (vb : Typedtree.value_binding) ->
                  match vb.vb_pat.pat_desc with
                  | Tpat_var (id, _) | Tpat_alias (_, id, _) -> (
                      match vb.vb_expr.exp_desc with
                      | Texp_apply (f, args)
                        when head_std f = Some ("Arena", "alloc") -> (
                          match List.filter_map snd args with
                          | [ arena; len ] ->
                              let dim_sym =
                                match base_sym env arena with
                                | Some s -> "dim:" ^ s
                                | None ->
                                    incr env.fresh;
                                    "o:" ^ string_of_int !(env.fresh)
                              in
                              {
                                env with
                                allocs =
                                  (vsym id, (dim_sym, lx_of env len))
                                  :: env.allocs;
                              }
                          | _ -> env)
                      | Texp_apply (f, args)
                        when head_std f = Some ("Arena", "buf") -> (
                          match List.filter_map snd args with
                          | [ arena ] -> (
                              match base_sym env arena with
                              | Some s ->
                                  { env with bufs = (id, s) :: env.bufs }
                              | None -> env)
                          | _ -> env)
                      | _ ->
                          {
                            env with
                            subst = (id, lx_of env vb.vb_expr) :: env.subst;
                          })
                  | _ -> env)
                env vbs
            in
            go env facts body
        | Texp_ifthenelse (c, t, fo) ->
            go env facts c;
            let tf, ff = cond_facts env c in
            go env (add_facts env tf facts) t;
            Option.iter (go env (add_facts env ff facts)) fo
        | Texp_sequence (a, rest) -> (
            go env facts a;
            match a.exp_desc with
            | Texp_ifthenelse (c, t, None) when always_raises t ->
                let _, ff = cond_facts env c in
                go env (add_facts env ff facts) rest
            | _ -> go env facts rest)
        | Texp_for (id, _, lo, hi, dir, body) ->
            go env facts lo;
            go env facts hi;
            let i = lsym (vsym id) in
            let llo = lx_of env lo and lhi = lx_of env hi in
            let range =
              match dir with
              | Asttypes.Upto -> [ lsub i llo; lsub lhi i ]
              | Asttypes.Downto -> [ lsub llo i; lsub i lhi ]
            in
            go env (add_facts env range facts) body
        | Texp_while (c, body) ->
            go env facts c;
            let tf, _ = cond_facts env c in
            go env (add_facts env tf facts) body
        | Texp_apply (f, args) -> (
            let pos = List.filter_map snd args in
            match (head_std f, pos) with
            | Some ("Stdlib", "&&"), [ a; b2 ] ->
                go env facts a;
                let tf, _ = cond_facts env a in
                go env (add_facts env tf facts) b2
            | Some ("Stdlib", "||"), [ a; b2 ] ->
                go env facts a;
                let _, ff = cond_facts env a in
                go env (add_facts env ff facts) b2
            | Some (("String" | "Bytes"), "init"), [ n; fn ]
              when (match fn.exp_desc with
                   | Texp_function
                       {
                         cases = [ { c_lhs = { pat_desc = Tpat_var _; _ }; _ } ];
                         _;
                       } ->
                       true
                   | _ -> false) -> (
                go env facts n;
                match fn.exp_desc with
                | Texp_function { cases = [ c ]; _ } ->
                    let id =
                      match c.c_lhs.pat_desc with
                      | Tpat_var (id, _) -> id
                      | _ -> assert false
                    in
                    let i = lsym (vsym id) in
                    let ln = lx_of env n in
                    go env
                      (add_facts env [ i; lsub (lsub ln (lconst 1)) i ] facts)
                      c.c_rhs
                | _ -> ())
            | Some mf, bufv :: idx :: _ when List.mem_assoc mf accessor_table
              ->
                let acc_name, kind, unsafe = List.assoc mf accessor_table in
                let line, col = Diag.loc_pos e.exp_loc in
                let site =
                  {
                    sp_file = file;
                    sp_line = line;
                    sp_col = col;
                    sp_node = node;
                    sp_accessor = acc_name;
                    sp_unsafe = unsafe;
                    sp_proven = true;
                    sp_reasons = [];
                  }
                in
                sites := site :: !sites;
                let bound =
                  match kind with
                  | `Dim -> dim_of env bufv
                  | `Len -> derived "len:" env bufv
                  | `Alen -> derived "alen:" env bufv
                in
                let li = lx_of env idx in
                settle env facts site li;
                settle env facts site (lsub (lsub bound li) (lconst 1));
                List.iter (go env facts) pos
            | _ ->
                (match head_node env f with
                | Some callee -> (
                    match Hashtbl.find_opt formals_tbl callee with
                    | Some formals when formals <> [] ->
                        let map =
                          List.map
                            (fun (id, a) -> (vsym id, tgt_of env a))
                            (match_args formals args)
                        in
                        let cur =
                          Option.value
                            (Hashtbl.find_opt callsites node)
                            ~default:[]
                        in
                        Hashtbl.replace callsites node
                          (cur
                          @ [
                              {
                                k_callee = callee;
                                k_map = map;
                                k_facts = facts;
                                k_formal_ids = env.formal_ids;
                              };
                            ])
                    | _ -> ())
                | None -> ());
                go env facts f;
                List.iter (go env facts) pos)
        | _ -> walk_children ()
      in
      go env0 [] b.Callgraph.b_vb.vb_expr)
    cg.Callgraph.binds;
  (* phase B: reverse-topological propagation of exported obligations *)
  let fresh_b = ref 0 in
  List.iter
    (fun scc ->
      List.iter
        (fun caller ->
          List.iter
            (fun cs ->
              List.iter
                (fun ob ->
                  let g = instantiate fresh_b cs.k_map ob.ob_goal in
                  if proves cs.k_facts g then ()
                  else
                    let fail () =
                      mark ob.ob_site
                        (Printf.sprintf
                           "cannot prove %s >= 0 at call from %s" (render g)
                           caller)
                    in
                    match eliminate cs.k_formal_ids cs.k_facts g with
                    | Some r when lis_const r -> if r.c < 0 then fail ()
                    | Some r ->
                        push_open caller { ob_site = ob.ob_site; ob_goal = r }
                    | None -> fail ())
                (Option.value (Hashtbl.find_opt opens cs.k_callee) ~default:[]))
            (Option.value (Hashtbl.find_opt callsites caller) ~default:[]))
        scc)
    (Summary.sccs_of cg);
  (* post-pass: an obligation still open where nothing analyzed can
     discharge it has escaped the proof *)
  let rooted = Callgraph.reachable cg ~roots in
  let root_set = SS.of_list (Callgraph.expand_roots cg roots) in
  let has_caller n =
    Hashtbl.fold
      (fun src succs acc -> acc || (src <> n && Callgraph.SS.mem n succs))
      cg.Callgraph.edges false
  in
  Hashtbl.iter
    (fun n obs ->
      if SS.mem n root_set || not (has_caller n) then
        List.iter
          (fun ob ->
            mark ob.ob_site
              (Printf.sprintf "%s >= 0 escapes to unanalyzed callers of %s"
                 (render ob.ob_goal) n))
          obs)
    opens;
  let sites =
    List.sort
      (fun a b ->
        compare
          (a.sp_file, a.sp_line, a.sp_col, a.sp_accessor)
          (b.sp_file, b.sp_line, b.sp_col, b.sp_accessor))
      !sites
  in
  List.iter (fun s -> s.sp_reasons <- List.sort_uniq compare s.sp_reasons) sites;
  (* findings *)
  let diags =
    List.concat_map
      (fun s ->
        if s.sp_proven then []
        else
          let key = s.sp_file ^ ":" ^ Callgraph.binding_of_node s.sp_node in
          let reason =
            match s.sp_reasons with r :: _ -> r | [] -> "no proof found"
          in
          let bigarray_or_bytes =
            has_prefix "Bigarray" s.sp_accessor || has_prefix "Bytes" s.sp_accessor
          in
          (if bigarray_or_bytes && Callgraph.mem rooted s.sp_node then
             [
               Diag.make ~line:s.sp_line ~col:s.sp_col ~key ~file:s.sp_file
                 ~rule:"arena-bounds"
                 (Printf.sprintf
                    "`%s` indexes a slab via %s without an in-bounds proof \
                     (%s): restructure so the offset is linearly related to \
                     the allocation it came from (DESIGN.md §9.5), or add \
                     `arena-bounds %s` to tools/lint/allowlist with a \
                     justification"
                    s.sp_node s.sp_accessor reason key);
             ]
           else [])
          @
          if
            s.sp_unsafe && String.length s.sp_file >= 4
            && String.sub s.sp_file 0 4 = "lib/"
          then
            [
              Diag.make ~line:s.sp_line ~col:s.sp_col ~key ~file:s.sp_file
                ~rule:"unsafe-unproven"
                (Printf.sprintf
                   "`%s` uses %s without a bounds proof (%s): unsafe accesses \
                    are licensed only by the rules_bounds prover — keep the \
                    checked accessor until the proof goes through, or add \
                    `unsafe-unproven %s` to tools/lint/allowlist with a \
                    justification"
                   s.sp_node s.sp_accessor reason key);
            ]
          else [])
      sites
  in
  (sites, diags)
