(* Typed-tree front end for evolvelint.

   Two ways in:
   - [load_tree] reads the `.cmt`/`.cmti`/`.cmi` artifacts dune emits
     (dune always compiles with -bin-annot) for every library under
     lib/, giving the rule packs a fully typed, cross-module view.
   - [of_string] typechecks a self-contained fixture in-process
     against the stdlib, so the rule packs are unit-testable without a
     build tree.

   Also owns the type-declaration tables ([decls]) the
   comparison-safety rule uses to decide whether a type is abstract,
   float-carrying, or safely structural. *)

type modinfo = {
  ti_module : string;  (* plain module name, e.g. "Pump" *)
  ti_lib : string;  (* dune library name, e.g. "dataplane" *)
  ti_file : string;  (* repo-relative source path *)
  ti_str : Typedtree.structure;
  ti_intf : string option;  (* .mli source text, when the module has one *)
}

(* ------------------------------------------------------------------ *)
(* Names and paths                                                     *)

(* "Dataplane__Pump" -> "Pump"; names without a "__" pass through. *)
let plain_module s =
  let n = String.length s in
  let rec last i found =
    if i + 2 > n then found
    else if s.[i] = '_' && s.[i + 1] = '_' then last (i + 1) (Some (i + 2))
    else last (i + 1) found
  in
  match last 0 None with
  | Some j when j < n -> String.sub s j (n - j)
  | _ -> s

let rec path_components p acc =
  match p with
  | Path.Pident id -> Ident.name id :: acc
  | Path.Pdot (p, s) -> path_components p (s :: acc)
  | Path.Papply (p, _) -> path_components p acc
  | Path.Pextra_ty (p, _) -> path_components p acc

(* Last two components of a path, as a (module, value) pair with any
   wrapped-library prefix stripped: [Dataplane.Telemetry.record_hop]
   and [Netcore__Ipv4.to_int] both normalize to their plain module.
   Single-component (local) paths return [None]. *)
let norm_target p =
  match List.rev (path_components p []) with
  | v :: m :: _ -> Some (plain_module m, v)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Structure helpers                                                   *)

let iter_top_bindings (str : Typedtree.structure) ~f =
  List.iter
    (fun (it : Typedtree.structure_item) ->
      match it.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, name) -> f ~id ~name:name.txt vb
              | _ -> ())
            vbs
      | _ -> ())
    str.str_items

let top_value_idents str =
  let acc = ref [] in
  iter_top_bindings str ~f:(fun ~id ~name _ -> acc := (id, name) :: !acc);
  List.rev !acc

let top_module_idents (str : Typedtree.structure) =
  List.concat_map
    (fun (it : Typedtree.structure_item) ->
      match it.str_desc with
      | Tstr_module mb -> Option.to_list mb.mb_id
      | Tstr_recmodule mbs -> List.filter_map (fun mb -> mb.Typedtree.mb_id) mbs
      | _ -> [])
    str.str_items

(* ------------------------------------------------------------------ *)
(* Type-declaration tables                                             *)

type decls = {
  impl : (string * string, Types.type_declaration) Hashtbl.t;
      (* as defined in the .ml — the in-module view *)
  intf : (string * string, Types.type_declaration) Hashtbl.t;
      (* as exported by the .cmi — the cross-module view *)
}

let empty_decls () = { impl = Hashtbl.create 64; intf = Hashtbl.create 64 }

let add_impl_decls decls (m : modinfo) =
  List.iter
    (fun (it : Typedtree.structure_item) ->
      match it.str_desc with
      | Tstr_type (_, tds) ->
          List.iter
            (fun (td : Typedtree.type_declaration) ->
              Hashtbl.replace decls.impl (m.ti_module, td.typ_name.txt)
                td.typ_type)
            tds
      | _ -> ())
    m.ti_str.str_items

(* Unmarshaling .cmt/.cmi artifacts dominates typed-pass start-up, and
   one test process loads the same tree many times (lint run,
   summaries, catalog, fixtures interleaved). Both loads are memoized
   by path and validated against the artifact's content digest, so an
   unchanged artifact is a hash lookup and a rebuilt one reloads. A
   .mli edit rebuilds the implementation's .cmt too (dune checks the
   .ml against it), so the digest also covers the cached ti_intf. *)
let cmi_cache :
    (string, Digest.t * (string * (string * Types.type_declaration) list))
    Hashtbl.t =
  Hashtbl.create 64

let read_cmi_decls path =
  let digest = Digest.file path in
  match Hashtbl.find_opt cmi_cache path with
  | Some (d, r) when d = digest -> r
  | _ ->
      let cmi = Cmi_format.read_cmi path in
      let mname = plain_module cmi.Cmi_format.cmi_name in
      let tds =
        List.filter_map
          (fun (item : Types.signature_item) ->
            match item with
            | Types.Sig_type (id, td, _, _) -> Some (Ident.name id, td)
            | _ -> None)
          cmi.Cmi_format.cmi_sign
      in
      Hashtbl.replace cmi_cache path (digest, (mname, tds));
      (mname, tds)

let add_cmi_decls decls path =
  let mname, tds = read_cmi_decls path in
  List.iter (fun (n, td) -> Hashtbl.replace decls.intf (mname, n) td) tds

let decls_of_mods mods =
  let d = empty_decls () in
  List.iter (add_impl_decls d) mods;
  d

(* ------------------------------------------------------------------ *)
(* Loading a built tree                                                *)

let is_dir p = try Sys.is_directory p with Sys_error _ -> false

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* dune keeps a library's compilation artifacts in
   lib/<dir>/.<libname>.objs/byte/. When linting a source checkout
   directly (`dune exec tools/lint/main.exe -- --root .`) the objs
   directories live under _build/default instead, so try both. *)
let byte_dir_of ~root libdir =
  let candidates =
    [
      Filename.concat root (Filename.concat "lib" libdir);
      Filename.concat root
        (Filename.concat "_build/default/lib" libdir);
    ]
  in
  List.find_map
    (fun dir ->
      if not (is_dir dir) then None
      else
        Sys.readdir dir |> Array.to_list |> List.sort compare
        |> List.find_map (fun e ->
               if
                 String.length e > 6
                 && e.[0] = '.'
                 && Filename.check_suffix e ".objs"
               then
                 let byte = Filename.concat (Filename.concat dir e) "byte" in
                 if is_dir byte then
                   Some (String.sub e 1 (String.length e - 6), byte)
                 else None
               else None))
    candidates

type tree = { tmods : modinfo list; tdecls : decls; tdiags : Diag.t list }

(* cmt -> modinfo memo; [None] records a cmt that carries no
   implementation for us (alias module, interface-only), so skipping
   it is also free on the next load. *)
let cmt_cache : (string, Digest.t * modinfo option) Hashtbl.t =
  Hashtbl.create 32

let load_cmt ~root ~libname path =
  let digest = Digest.file path in
  match Hashtbl.find_opt cmt_cache path with
  | Some (d, r) when d = digest -> r
  | _ ->
      let wrapped name =
        let p = plain_module name in
        if p = name || p = "" then None else Some p
      in
      let cmt = Cmt_format.read_cmt path in
      let r =
        match
          (wrapped cmt.Cmt_format.cmt_modname, cmt.Cmt_format.cmt_annots)
        with
        | Some mname, Cmt_format.Implementation str ->
            let file =
              match cmt.Cmt_format.cmt_sourcefile with
              | Some s -> s
              | None -> path
            in
            let intf =
              let mli = Filename.concat root (file ^ "i") in
              if Sys.file_exists mli then Some (read_file mli) else None
            in
            Some
              {
                ti_module = mname;
                ti_lib = libname;
                ti_file = file;
                ti_str = str;
                ti_intf = intf;
              }
        | _ -> None
      in
      Hashtbl.replace cmt_cache path (digest, r);
      r

let load_tree ~root =
  let mods = ref [] and diags = ref [] in
  let decls = empty_decls () in
  let libroot = Filename.concat root "lib" in
  let libdirs =
    if is_dir libroot then
      Sys.readdir libroot |> Array.to_list |> List.sort compare
      |> List.filter (fun d -> is_dir (Filename.concat libroot d))
    else []
  in
  List.iter
    (fun d ->
      match byte_dir_of ~root d with
      | None ->
          diags :=
            Diag.make ~file:("lib/" ^ d) ~rule:"typed-engine"
              "no .cmt artifacts found for this library; the typed rules \
               need a dune build (bin-annot) before linting"
            :: !diags
      | Some (libname, byte) ->
          Sys.readdir byte |> Array.to_list |> List.sort compare
          |> List.iter (fun f ->
                 let path = Filename.concat byte f in
                 (* skip the generated alias module (no "__") *)
                 let wrapped name =
                   let p = plain_module name in
                   if p = name || p = "" then None else Some p
                 in
                 if Filename.check_suffix f ".cmt" then (
                   match load_cmt ~root ~libname path with
                   | exception exn ->
                       diags :=
                         Diag.make ~file:path ~rule:"typed-engine"
                           (Printf.sprintf "cannot read cmt: %s"
                              (Printexc.to_string exn))
                         :: !diags
                   | Some m ->
                       add_impl_decls decls m;
                       mods := m :: !mods
                   | None -> ())
                 else if Filename.check_suffix f ".cmi" then
                   match wrapped (Filename.remove_extension f) with
                   | Some _ -> (
                       try add_cmi_decls decls path
                       with exn ->
                         diags :=
                           Diag.make ~file:path ~rule:"typed-engine"
                             (Printf.sprintf "cannot read cmi: %s"
                                (Printexc.to_string exn))
                           :: !diags)
                   | None -> ()))
    libdirs;
  {
    tmods = List.sort (fun a b -> compare a.ti_file b.ti_file) !mods;
    tdecls = decls;
    tdiags = List.rev !diags;
  }

(* ------------------------------------------------------------------ *)
(* In-process typechecking (fixtures)                                  *)

let tc_initialized = ref false

let init_typecheck () =
  if not !tc_initialized then begin
    (* fixtures are allowed to be sloppy; their warnings are not the
       test's subject *)
    ignore (Warnings.parse_options false "-a");
    Compmisc.init_path ();
    tc_initialized := true
  end

let of_string ~filename ~modname ?intf src =
  init_typecheck ();
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf filename;
  match Parse.implementation lexbuf with
  | exception exn ->
      Error
        (Diag.make ~file:filename ~rule:"typed-engine"
           (Printf.sprintf "fixture does not parse: %s"
              (Printexc.to_string exn)))
  | pt -> (
      match Typemod.type_structure env pt with
      | tstr, _, _, _, _ ->
          Ok
            {
              ti_module = modname;
              ti_lib = "fixture";
              ti_file = filename;
              ti_str = tstr;
              ti_intf = intf;
            }
      | exception exn ->
          Error
            (Diag.make ~file:filename ~rule:"typed-engine"
               (Printf.sprintf "fixture does not typecheck: %s"
                  (Printexc.to_string exn))))
