(* Cross-module call graph over the typed tree.

   Nodes are value bindings, named "Module.binding". Since v3 the graph
   also attributes one level of nested modules: a binding inside
   `module F (X : S) = struct let go () = ... end` in pump.ml is the
   node "Pump.F.go", and `module A = F (Arg)` registers A as an alias
   of F so a later `A.go ()` resolves to "Pump.F.go". A module alias to
   another analyzed library module (`module W = Netcore.Wire`) resolves
   dotted uses through the local name to the target's own nodes.

   An edge A -> B is recorded when A's body references B — either a
   local reference to a binding in scope (matched by Ident.same, so
   shadowing cannot confuse it) or a dotted path whose normalized
   (module, value) pair lands in one of the analyzed modules.
   First-class modules need no special casing: a packed struct's body
   is part of the enclosing binding's expression, so its references are
   attributed to that binding by the default traversal.

   [binds] lists every attributed binding with the static scope it was
   resolved against — the summary engine (Summary) consumes it so the
   effect analysis and the graph can never disagree about scoping.

   [reachable] computes the transitive closure from a set of root
   patterns; a trailing '*' in a root is a prefix wildcard, so
   "Wire.peek_*" covers every header peek. *)

module SS = Set.Make (String)

type bind = {
  b_node : string;  (* "Pump.inject" or "Pump.F.go" *)
  b_mod : Typed.modinfo;
  b_statics : (Ident.t * string) list;
      (* idents in scope that resolve to module-level bindings, keyed
         to their node names — the binding's own scope chain *)
  b_vb : Typedtree.value_binding;
}

type t = {
  edges : (string, SS.t) Hashtbl.t;
  nodes : SS.t;
  binds : bind list;  (* deterministic: file order, then source order *)
  spawns : (string, SS.t) Hashtbl.t;
      (* binding -> nodes it invokes inside a closure argument to
         Domain.spawn. These callees execute on a child domain, so the
         domain-safety gate treats them as roots — the stored-closure
         blind spot of DESIGN.md §9.4, closed for spawned closures. *)
}

let node m v = m ^ "." ^ v

(* Values bound at the top of a structure, in source order. A binding
   with a type annotation (`let x : t = e`) typechecks to an alias
   pattern wrapping the constraint, so both shapes name a value. *)
let struct_values (items : Typedtree.structure_item list) =
  List.concat_map
    (fun (it : Typedtree.structure_item) ->
      match it.str_desc with
      | Tstr_value (_, vbs) ->
          List.filter_map
            (fun (vb : Typedtree.value_binding) ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, name) | Tpat_alias (_, id, name) ->
                  Some (id, name.txt, vb)
              | _ -> None)
            vbs
      | _ -> [])
    items

(* What a module expression amounts to for attribution: its own
   structure (looking through functor parameters and constraints), an
   alias of a locally bound module, an alias of another analyzed
   module, or something opaque. A functor application aliases the
   functor itself — the applied copy shares the functor body's nodes,
   which is the right over-approximation for effect analysis. *)
let rec mod_shape (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure s -> `Structure s
  | Tmod_functor (_, body) -> mod_shape body
  | Tmod_constraint (me, _, _, _) -> mod_shape me
  | Tmod_apply (f, _, _) -> mod_shape f
  | Tmod_ident (Path.Pident id, _) -> `Local id
  | Tmod_ident (p, _) -> (
      match List.rev (Typed.path_components p []) with
      | last :: _ -> `Global (Typed.plain_module last)
      | [] -> `Opaque)
  | _ -> `Opaque

(* Is [e] a reference to Domain.spawn (or Stdlib.Domain.spawn)? *)
let is_domain_spawn (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Typed.norm_target p = Some ("Domain", "spawn")
  | _ -> false

let build (mods : Typed.modinfo list) =
  let module_set = SS.of_list (List.map (fun m -> m.Typed.ti_module) mods) in
  let edges = Hashtbl.create 256 in
  let spawns = Hashtbl.create 16 in
  let nodes = ref SS.empty in
  let binds = ref [] in
  let add_node n = nodes := SS.add n !nodes in
  let add_edge src dst =
    add_node src;
    add_node dst;
    let cur = Option.value (Hashtbl.find_opt edges src) ~default:SS.empty in
    Hashtbl.replace edges src (SS.add dst cur)
  in
  List.iter
    (fun (m : Typed.modinfo) ->
      let self = m.Typed.ti_module in
      (* pass 1: enumerate scopes — outer bindings, nested structures,
         and the module-ident -> node-prefix alias map *)
      let outer_vals = struct_values m.Typed.ti_str.str_items in
      let outer_binds =
        List.map (fun (id, nm, _) -> (id, node self nm)) outer_vals
      in
      let declared = ref SS.empty in
      List.iter
        (fun (_, nm, _) -> declared := SS.add (node self nm) !declared)
        outer_vals;
      let prefixes : (Ident.t * string) list ref = ref [] in
      let nested_structs = ref [] in
      List.iter
        (fun (it : Typedtree.structure_item) ->
          match it.str_desc with
          | Tstr_module mb -> (
              match mb.mb_id with
              | None -> ()
              | Some mid -> (
                  match mod_shape mb.mb_expr with
                  | `Structure s ->
                      let prefix = node self (Ident.name mid) in
                      prefixes := (mid, prefix) :: !prefixes;
                      let vals = struct_values s.Typedtree.str_items in
                      List.iter
                        (fun (_, nm, _) ->
                          declared := SS.add (node prefix nm) !declared)
                        vals;
                      nested_structs := (prefix, vals) :: !nested_structs
                  | `Local aid -> (
                      match
                        List.find_opt
                          (fun (i, _) -> Ident.same i aid)
                          !prefixes
                      with
                      | Some (_, prefix) -> prefixes := (mid, prefix) :: !prefixes
                      | None -> ())
                  | `Global g ->
                      if SS.mem g module_set then
                        prefixes := (mid, g) :: !prefixes
                  | `Opaque -> ()))
          | _ -> ())
        m.Typed.ti_str.str_items;
      let nested_structs = List.rev !nested_structs in
      (* pass 2: walk every attributed binding against its scope *)
      let walk ~statics src vb =
        add_node src;
        binds := { b_node = src; b_mod = m; b_statics = statics; b_vb = vb }
                 :: !binds;
        (* resolve an ident expression to a node, against this
           binding's scope — the same three cases the edge walk uses *)
        let resolve (e : Typedtree.expression) =
          match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) ->
              Option.map snd
                (List.find_opt (fun (i, _) -> Ident.same i id) statics)
          | Texp_ident (Path.Pdot (Path.Pident mid, v), _, _)
            when List.exists (fun (i, _) -> Ident.same i mid) !prefixes -> (
              let _, prefix =
                List.find (fun (i, _) -> Ident.same i mid) !prefixes
              in
              let dst = node prefix v in
              if SS.mem dst !declared then Some dst
              else
                (* alias of another analyzed module: its own
                   top-level bindings are nodes already *)
                match String.index_opt prefix '.' with
                | None when SS.mem prefix module_set -> Some dst
                | _ -> None)
          | Texp_ident (p, _, _) -> (
              match Typed.norm_target p with
              | Some (tm, tv) when SS.mem tm module_set -> Some (node tm tv)
              | _ -> None)
          | _ -> None
        in
        let note_spawn_callees (arg : Typedtree.expression) =
          let open Tast_iterator in
          let it =
            {
              default_iterator with
              expr =
                (fun it e ->
                  (match resolve e with
                  | Some dst ->
                      let cur =
                        Option.value
                          (Hashtbl.find_opt spawns src)
                          ~default:SS.empty
                      in
                      Hashtbl.replace spawns src (SS.add dst cur)
                  | None -> ());
                  default_iterator.expr it e);
            }
          in
          it.expr it arg
        in
        let open Tast_iterator in
        let iter =
          {
            default_iterator with
            expr =
              (fun it (e : Typedtree.expression) ->
                (match e.exp_desc with
                | Texp_ident _ -> (
                    match resolve e with
                    | Some dst -> add_edge src dst
                    | None -> ())
                | Texp_apply (f, args) when is_domain_spawn f ->
                    List.iter
                      (fun (_, a) -> Option.iter note_spawn_callees a)
                      args
                | _ -> ());
                default_iterator.expr it e);
          }
        in
        iter.value_binding iter vb
      in
      List.iter
        (fun (_, nm, vb) -> walk ~statics:outer_binds (node self nm) vb)
        outer_vals;
      List.iter
        (fun (prefix, vals) ->
          let own = List.map (fun (id, nm, _) -> (id, node prefix nm)) vals in
          let statics = own @ outer_binds in
          List.iter
            (fun (_, nm, vb) -> walk ~statics (node prefix nm) vb)
            vals)
        nested_structs)
    mods;
  { edges; nodes = !nodes; binds = List.rev !binds; spawns }

let expand_roots t roots =
  List.concat_map
    (fun r ->
      if String.length r > 0 && r.[String.length r - 1] = '*' then
        let prefix = String.sub r 0 (String.length r - 1) in
        SS.elements
          (SS.filter
             (fun n ->
               String.length n >= String.length prefix
               && String.sub n 0 (String.length prefix) = prefix)
             t.nodes)
      else if SS.mem r t.nodes then [ r ]
      else [])
    roots

let reachable t ~roots =
  let seen = ref SS.empty in
  let rec go n =
    if not (SS.mem n !seen) then begin
      seen := SS.add n !seen;
      match Hashtbl.find_opt t.edges n with
      | Some succs -> SS.iter go succs
      | None -> ()
    end
  in
  List.iter go (expand_roots t roots);
  !seen

(* All nodes invoked inside Domain.spawn closures anywhere in the
   graph — automatic extra roots for the domain-safety gate. *)
let spawn_callees t =
  Hashtbl.fold (fun _ s acc -> SS.union s acc) t.spawns SS.empty

let mem set n = SS.mem n set

let succs t n = Option.value (Hashtbl.find_opt t.edges n) ~default:SS.empty

(* "Pump.F.go" -> "Pump"; "Pump.inject" -> "Pump". *)
let module_of_node n =
  match String.index_opt n '.' with
  | Some i -> String.sub n 0 i
  | None -> n

(* "Pump.F.go" -> "F.go" — the within-module binding name used in
   suppression keys. *)
let binding_of_node n =
  match String.index_opt n '.' with
  | Some i -> String.sub n (i + 1) (String.length n - i - 1)
  | None -> n
