(* Cross-module call graph over the typed tree.

   Nodes are top-level value bindings, named "Module.binding". An edge
   A -> B is recorded when A's body references B — either a local
   reference to another top-level binding of the same module (matched
   by Ident.same, so shadowing cannot confuse it) or a dotted path
   whose normalized (module, value) pair lands in one of the analyzed
   modules. References from inside nested modules are not attributed
   (the repo convention keeps public API at the top level).

   [reachable] computes the transitive closure from a set of root
   patterns; a trailing '*' in a root is a prefix wildcard, so
   "Wire.peek_*" covers every header peek. *)

module SS = Set.Make (String)

type t = { edges : (string, SS.t) Hashtbl.t; nodes : SS.t }

let node m v = m ^ "." ^ v

let build (mods : Typed.modinfo list) =
  let module_set = SS.of_list (List.map (fun m -> m.Typed.ti_module) mods) in
  let edges = Hashtbl.create 256 in
  let nodes = ref SS.empty in
  let add_node n = nodes := SS.add n !nodes in
  let add_edge src dst =
    add_node src;
    add_node dst;
    let cur = Option.value (Hashtbl.find_opt edges src) ~default:SS.empty in
    Hashtbl.replace edges src (SS.add dst cur)
  in
  List.iter
    (fun (m : Typed.modinfo) ->
      let self = m.Typed.ti_module in
      let tops = Typed.top_value_idents m.Typed.ti_str in
      Typed.iter_top_bindings m.Typed.ti_str ~f:(fun ~id:_ ~name vb ->
          let src = node self name in
          add_node src;
          let open Tast_iterator in
          let iter =
            {
              default_iterator with
              expr =
                (fun it (e : Typedtree.expression) ->
                  (match e.exp_desc with
                  | Texp_ident (Path.Pident id, _, _) -> (
                      match
                        List.find_opt (fun (i, _) -> Ident.same i id) tops
                      with
                      | Some (_, n) -> add_edge src (node self n)
                      | None -> ())
                  | Texp_ident (p, _, _) -> (
                      match Typed.norm_target p with
                      | Some (tm, tv) when SS.mem tm module_set ->
                          add_edge src (node tm tv)
                      | _ -> ())
                  | _ -> ());
                  default_iterator.expr it e);
            }
          in
          iter.value_binding iter vb))
    mods;
  { edges; nodes = !nodes }

let expand_roots t roots =
  List.concat_map
    (fun r ->
      if String.length r > 0 && r.[String.length r - 1] = '*' then
        let prefix = String.sub r 0 (String.length r - 1) in
        SS.elements
          (SS.filter
             (fun n ->
               String.length n >= String.length prefix
               && String.sub n 0 (String.length prefix) = prefix)
             t.nodes)
      else if SS.mem r t.nodes then [ r ]
      else [])
    roots

let reachable t ~roots =
  let seen = ref SS.empty in
  let rec go n =
    if not (SS.mem n !seen) then begin
      seen := SS.add n !seen;
      match Hashtbl.find_opt t.edges n with
      | Some succs -> SS.iter go succs
      | None -> ()
    end
  in
  List.iter go (expand_roots t roots);
  !seen

let mem set n = SS.mem n set
