(* Flow-based determinism taint.

   The untyped pass flags nondeterminism sources at their sites
   (random-direct, forbidden-call). This pack is the flow-based
   complement: the effect summaries carry a nondeterminism *witness*
   (an unseeded Random.*, a wall-clock read, Hashtbl.randomize) through
   any chain of calls, so the taint is reported where it surfaces —
   at an `Experiments.eN` entry point or at `Report.generate`, whose
   outputs the test suite compares for byte equality (DESIGN.md §7).

   A seeded Topology.Rng draw laundered through any number of helpers
   stays clean: lib/topology/rng.ml is the sanctioned source and its
   summaries never carry a witness. Conversely, an unseeded source
   reaching a surface through helpers the syntactic rules cannot see
   (e.g. a fixture module calling Sys.time two hops away) is flagged
   here even though the surface itself looks innocent. *)

(* The bindings whose determinism the repo's tests rely on: every
   experiment row producer in lib/core/experiments.ml, and the report
   generator compared for equality. *)
let surface node =
  match String.index_opt node '.' with
  | None -> false
  | Some i -> (
      let m = String.sub node 0 i in
      let b = String.sub node (i + 1) (String.length node - i - 1) in
      match m with
      | "Report" -> b = "generate"
      | "Experiments" ->
          String.length b >= 3
          && b.[0] = 'e'
          && (match String.index_opt b '_' with
             | Some j when j > 1 ->
                 let digits = String.sub b 1 (j - 1) in
                 String.for_all (fun c -> c >= '0' && c <= '9') digits
             | _ -> false)
      | _ -> false)

let check ~(sums : Summary.info) (cg : Callgraph.t) =
  List.filter_map
    (fun (b : Callgraph.bind) ->
      let node = b.Callgraph.b_node in
      if not (surface node) then None
      else
        match (Summary.get sums.Summary.full node).Summary.nondet with
        | None -> None
        | Some witness ->
            let m = b.Callgraph.b_mod in
            let binding = Callgraph.binding_of_node node in
            let key = m.Typed.ti_file ^ ":" ^ binding in
            let line, col =
              Diag.loc_pos b.Callgraph.b_vb.Typedtree.vb_loc
            in
            Some
              (Diag.make ~line ~col ~key ~file:m.Typed.ti_file
                 ~rule:"determinism-taint"
                 (Printf.sprintf
                    "`%s` is a determinism surface (its output is compared \
                     for equality) but a nondeterminism source reaches it \
                     through the call graph: %s; route the value through a \
                     seeded Topology.Rng, or add `determinism-taint %s` to \
                     tools/lint/allowlist with a justification"
                    binding witness key)))
    cg.Callgraph.binds
