(* Exception hygiene over the typed tree.

   Two rules:

   - catch-all: a [try ... with _ ->] (or [with e ->] where [e] is
     never re-raised) swallows every exception, including the
     programming errors the determinism rules exist to surface.
     Handlers that re-raise are fine.

   - undoc-raise: a library function raises an exception that is part
     of its observable behavior, but the module's .mli never mentions
     the exception. The check is module-granular: an exception
     constructor that some handler in the same module catches is
     treated as internal control flow. The mention check is textual
     (the constructor name appearing anywhere in the .mli, e.g. in a
     [@raise Invalid_argument] doc line) so prose documentation
     counts. Assert_failure and Match_failure are exempt: they are
     invariant violations, not API. *)

let raise_fns = [ "Stdlib.raise"; "Stdlib.raise_notrace" ]

let exempt_exns = [ "Assert_failure"; "Match_failure" ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

(* exception-constructor names matched by a handler pattern *)
let rec handled_names (p : Typedtree.pattern) acc =
  match p.pat_desc with
  | Tpat_construct (_, cd, _, _) -> cd.Types.cstr_name :: acc
  | Tpat_or (a, b, _) -> handled_names a (handled_names b acc)
  | Tpat_alias (p, _, _) -> handled_names p acc
  | _ -> acc

let is_wildcard (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_any | Tpat_var _ -> true
  | Tpat_alias ({ pat_desc = Tpat_any; _ }, _, _) -> true
  | _ -> false

(* does the expression re-raise anywhere? *)
let reraises (e : Typedtree.expression) =
  let found = ref false in
  let open Tast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun it (e : Typedtree.expression) ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) when List.mem (Path.name p) raise_fns ->
              found := true
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  iter.expr iter e;
  !found

type raise_site = { r_exn : string; r_binding : string; r_loc : Location.t }

let check (m : Typed.modinfo) =
  let diags = ref [] in
  let raises : raise_site list ref = ref [] in
  let handled : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  Typed.iter_top_bindings m.Typed.ti_str ~f:(fun ~id:_ ~name vb ->
      let key = m.Typed.ti_file ^ ":" ^ name in
      let open Tast_iterator in
      let iter =
        {
          default_iterator with
          expr =
            (fun it (e : Typedtree.expression) ->
              (match e.exp_desc with
              | Texp_try (_, cases) ->
                  List.iter
                    (fun (c : Typedtree.value Typedtree.case) ->
                      List.iter
                        (fun n -> Hashtbl.replace handled n ())
                        (handled_names c.c_lhs []);
                      if is_wildcard c.c_lhs && not (reraises c.c_rhs) then
                        diags :=
                          Diag.of_loc ~key ~rule:"catch-all" c.c_lhs.pat_loc
                            (Printf.sprintf
                               "catch-all handler in `%s` swallows every \
                                exception; match the constructors you mean \
                                (or re-raise), or add `catch-all %s` to \
                                tools/lint/allowlist"
                               name key)
                          :: !diags)
                    cases
              | Texp_match (_, cases, _) ->
                  List.iter
                    (fun (c : Typedtree.computation Typedtree.case) ->
                      match Typedtree.split_pattern c.c_lhs with
                      | _, Some exn_pat ->
                          List.iter
                            (fun n -> Hashtbl.replace handled n ())
                            (handled_names exn_pat [])
                      | _, None -> ())
                    cases
              | Texp_apply (f, (_, Some arg) :: _) -> (
                  match f.exp_desc with
                  | Texp_ident (p, _, _) -> (
                      let record exn =
                        raises :=
                          { r_exn = exn; r_binding = name; r_loc = f.exp_loc }
                          :: !raises
                      in
                      match Path.name p with
                      | "Stdlib.raise" | "Stdlib.raise_notrace" -> (
                          match arg.exp_desc with
                          | Texp_construct (_, cd, _) ->
                              record cd.Types.cstr_name
                          | _ -> () (* re-raise of a bound exception *))
                      | "Stdlib.failwith" -> record "Failure"
                      | "Stdlib.invalid_arg" -> record "Invalid_argument"
                      | _ -> ())
                  | _ -> ())
              | _ -> ());
              default_iterator.expr it e);
        }
      in
      iter.value_binding iter vb);
  (match m.Typed.ti_intf with
  | None -> () (* missing-mli is its own rule; don't cascade *)
  | Some intf ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun r ->
          if
            (not (List.mem r.r_exn exempt_exns))
            && (not (Hashtbl.mem handled r.r_exn))
            && (not (contains_sub intf r.r_exn))
            && not (Hashtbl.mem seen (r.r_binding, r.r_exn))
          then begin
            Hashtbl.replace seen (r.r_binding, r.r_exn) ();
            let key = m.Typed.ti_file ^ ":" ^ r.r_binding in
            diags :=
              Diag.of_loc ~key ~rule:"undoc-raise" r.r_loc
                (Printf.sprintf
                   "`%s` raises %s but %si never mentions it; document it \
                    (e.g. `@raise %s`) in the interface, or add \
                    `undoc-raise %s` to tools/lint/baseline"
                   r.r_binding r.r_exn m.Typed.ti_file r.r_exn key)
              :: !diags
          end)
        (List.rev !raises));
  List.rev !diags
