(* Domain-safety race detector.

   Any function reachable from the data-plane entry points
   (Pump.inject / Pump.step, Flowcache.lookup) that writes state not
   provably owned by a single pump instance is a finding. The proof is
   the summary engine's ownership trace (Summary.scan): a mutation
   rooted in a function parameter, a local let or a fresh value is
   instance-owned and stays quiet — today's telemetry bumps and cache
   hit counters pass this way, not via allowlist — while a mutation
   rooted in module-level state is flagged at its site.

   Only *direct* writers are flagged (base summaries, not propagated
   ones): a caller of a flagged writer would be the same race reported
   twice. This is the readiness gate for ROADMAP item 1, the sharded
   multicore data plane: it must read zero before Pump is split across
   OCaml 5 domains, and must stay zero after. *)

let check ~(sums : Summary.info) ~dom ~roots (cg : Callgraph.t) =
  List.filter_map
    (fun (b : Callgraph.bind) ->
      let node = b.Callgraph.b_node in
      if not (Callgraph.mem dom node) then None
      else
        match Hashtbl.find_opt sums.Summary.sites node with
        | None | Some [] -> None
        | Some (first :: _ as sites) ->
            let m = b.Callgraph.b_mod in
            let binding = Callgraph.binding_of_node node in
            let key = m.Typed.ti_file ^ ":" ^ binding in
            let targets =
              List.sort_uniq String.compare
                (List.map (fun s -> s.Summary.s_target) sites)
            in
            let line, col = Diag.loc_pos first.Summary.s_loc in
            Some
              (Diag.make ~line ~col ~key ~file:m.Typed.ti_file
                 ~rule:"domain-unsafe-write"
                 (Printf.sprintf
                    "`%s` is reachable from the pump entry points (%s) and \
                     writes shared module-level state (%s) not owned by a \
                     single pump instance — a data race once the data plane \
                     shards across domains (ROADMAP 1); thread the state \
                     through the instance, or add `domain-unsafe-write %s` \
                     to tools/lint/allowlist with an ownership argument"
                    binding
                    (String.concat ", " roots)
                    (String.concat ", " targets)
                    key)))
    cg.Callgraph.binds
