(* Shared diagnostic type for evolvelint.

   Columns are 1-based (the first character of a line is column 1) and
   the ordering is total and explicit — field by field, no polymorphic
   compare — so diagnostics sort identically across OCaml versions.
   [key], when present, is the stable suppression identity
   (FILE:BINDING) matched against tools/lint/allowlist and
   tools/lint/baseline entries; it deliberately excludes line numbers
   so entries survive unrelated edits. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
  key : string option;
}

let make ?(line = 1) ?(col = 1) ?key ~file ~rule msg =
  { file; line; col; rule; msg; key }

(* 1-based line and column of a location's start. *)
let loc_pos (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol + 1)

let of_loc ?key ~rule (loc : Location.t) msg =
  let line, col = loc_pos loc in
  make ~line ~col ?key ~file:loc.loc_start.pos_fname ~rule msg

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.msg

let compare a b =
  let ( <?> ) c next = if c <> 0 then c else next () in
  String.compare a.file b.file <?> fun () ->
  Int.compare a.line b.line <?> fun () ->
  Int.compare a.col b.col <?> fun () ->
  String.compare a.rule b.rule <?> fun () -> String.compare a.msg b.msg
