(* evolvelint CLI.

   evolvelint [--root DIR] [--allowlist FILE]   run all checks
   evolvelint --explain RULE|all                print a rule's rationale *)

module Lint = Lintcore.Lint

let usage = "evolvelint [--root DIR] [--allowlist FILE] [--explain RULE|all]"

let () =
  let root = ref "." in
  let allowlist = ref "" in
  let explain = ref "" in
  Arg.parse
    [
      ("--root", Arg.Set_string root, "DIR repository root (default .)");
      ( "--allowlist",
        Arg.Set_string allowlist,
        "FILE allowlist of verified-safe sites (default \
         ROOT/tools/lint/allowlist)" );
      ( "--explain",
        Arg.Set_string explain,
        "RULE print the rule's rationale and provenance ('all' for every \
         rule)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    usage;
  if !explain <> "" then begin
    let print_rule (id, text) = Printf.printf "%-20s %s\n\n" id text in
    if !explain = "all" then List.iter print_rule Lint.rules
    else
      match List.assoc_opt !explain Lint.rules with
      | Some text -> print_rule (!explain, text)
      | None ->
          Printf.eprintf "unknown rule '%s'; known rules: %s\n" !explain
            (String.concat ", " (List.map fst Lint.rules));
          exit 2
  end
  else begin
    let allow_path =
      if !allowlist <> "" then !allowlist
      else Filename.concat !root "tools/lint/allowlist"
    in
    let allow =
      if Sys.file_exists allow_path then Lint.Allowlist.load allow_path
      else Lint.Allowlist.empty
    in
    let diags = Lint.run ~root:!root ~allow in
    List.iter (fun d -> print_endline (Lint.to_string d)) diags;
    match diags with
    | [] ->
        print_endline "evolvelint: OK (layering, determinism, interfaces, \
                       experiment artifacts)"
    | _ ->
        Printf.printf "evolvelint: %d violation(s)\n" (List.length diags);
        exit 1
  end
