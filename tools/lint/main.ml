(* evolvelint CLI.

   evolvelint [--root DIR] [--allowlist FILE] [--baseline FILE]
              [--format text|json|sarif]        run all checks
   evolvelint --summaries [--format text|json]  dump effect summaries
                                                and shared-state inventory
   evolvelint --explain RULE|all                print a rule's rationale
   evolvelint --catalog                         print doc/LINT.md
   evolvelint --proven [--root DIR]             print the bounds prover's
                                                site list (CI unsafe gate) *)

module Lint = Lintcore.Lint

let usage =
  "evolvelint [--root DIR] [--allowlist FILE] [--baseline FILE] \
   [--format text|json|sarif] [--summaries] [--explain RULE|all] \
   [--catalog] [--proven]"

let () =
  let root = ref "." in
  let allowlist = ref "" in
  let baseline = ref "" in
  let format = ref "text" in
  let explain = ref "" in
  let catalog = ref false in
  let summaries = ref false in
  let proven = ref false in
  Arg.parse
    [
      ("--root", Arg.Set_string root, "DIR repository root (default .)");
      ( "--allowlist",
        Arg.Set_string allowlist,
        "FILE allowlist of deliberate, justified exceptions (default \
         ROOT/tools/lint/allowlist)" );
      ( "--baseline",
        Arg.Set_string baseline,
        "FILE baseline of grandfathered legacy findings (default \
         ROOT/tools/lint/baseline)" );
      ( "--format",
        Arg.Set_string format,
        "FMT output format: text (default), json, or sarif" );
      ( "--summaries",
        Arg.Set summaries,
        " dump per-binding effect summaries and the shared-state \
         inventory (text or --format json)" );
      ( "--explain",
        Arg.Set_string explain,
        "RULE print the rule's rationale and provenance ('all' for every \
         rule)" );
      ( "--catalog",
        Arg.Set catalog,
        " print the generated rule catalog (doc/LINT.md)" );
      ( "--proven",
        Arg.Set proven,
        " print the bounds prover's site list, one `file:line:col \
         accessor binding proven|unproven` per Bigarray/Bytes access \
         (the CI unsafe-license gate joins against it)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    usage;
  if !catalog then print_string (Lint.catalog_md ())
  else if !proven then print_string (Lint.proven_dump ~root:!root)
  else if !explain <> "" then begin
    let print_rule (id, text) = Printf.printf "%-20s %s\n\n" id text in
    if !explain = "all" then List.iter print_rule Lint.rules
    else
      match List.assoc_opt !explain Lint.rules with
      | Some text -> print_rule (!explain, text)
      | None ->
          Printf.eprintf "unknown rule '%s'; known rules: %s\nusage: %s\n"
            !explain
            (String.concat ", " (List.map fst Lint.rules))
            usage;
          exit 2
  end
  else if !summaries then begin
    match !format with
    | "text" -> print_string (Lint.summary_dump ~root:!root ~json:false)
    | "json" -> print_endline (Lint.summary_dump ~root:!root ~json:true)
    | other ->
        Printf.eprintf
          "--summaries supports text and json, not '%s'\nusage: %s\n" other
          usage;
        exit 2
  end
  else begin
    (* reject a bad format before the (expensive) scan *)
    if not (List.mem !format [ "text"; "json"; "sarif" ]) then begin
      Printf.eprintf "unknown format '%s' (text|json|sarif)\nusage: %s\n"
        !format usage;
      exit 2
    end;
    let load ~flag ~default =
      let path =
        if !flag <> "" then !flag else Filename.concat !root default
      in
      if Sys.file_exists path then Lint.Allowlist.load path
      else Lint.Allowlist.empty
    in
    let allow = load ~flag:allowlist ~default:"tools/lint/allowlist" in
    let base = load ~flag:baseline ~default:"tools/lint/baseline" in
    let diags = Lint.run ~root:!root ~allow ~baseline:base in
    (match !format with
    | "json" -> print_endline (Lint.to_json diags)
    | "sarif" -> print_endline (Lint.to_sarif diags)
    | "text" -> (
        List.iter (fun d -> print_endline (Lint.to_string d)) diags;
        match diags with
        | [] ->
            print_endline
              "evolvelint: OK (layering, determinism, interfaces, \
               experiment artifacts, comparison safety, exception \
               hygiene, hot-path allocation, shared state, domain \
               safety, determinism taint, atomics protocol, arena \
               bounds)"
        | _ -> Printf.printf "evolvelint: %d violation(s)\n" (List.length diags))
    | _ -> assert false (* validated above *));
    if diags <> [] then exit 1
  end
