(* Comparison safety over the typed tree.

   Two rules:

   - poly-compare: a polymorphic comparison (Stdlib.=, <>, <, <=, >,
     >=, compare, min, max) whose instantiated operand type is
     functional (raises at runtime), float-carrying (nan breaks the
     total order Maps and sorts rely on), or abstract/opaque (the
     structural order silently diverges from the module's own compare
     when the representation changes). The operand type is read off
     the use site's instantiated type scheme, so generic helpers
     ('a -> 'a -> int) stay quiet and only concrete bad
     instantiations fire.

   - physical-eq: any use of == / != outside allowlisted sites;
     physical equality on immutables is unspecified by the language
     and never what a deterministic simulator wants.

   Classification of a type constructor consults the declaration
   tables from Typed.decls: the in-module (.ml) view for the module's
   own types, the exported (.cmi) view for everything else. Unknown
   constructors (external libraries, stdlib containers with hidden
   representation like Hashtbl.t) count as opaque. *)

let poly_compare_ops =
  [
    "Stdlib.="; "Stdlib.<>"; "Stdlib.compare"; "Stdlib.<"; "Stdlib.<=";
    "Stdlib.>"; "Stdlib.>="; "Stdlib.min"; "Stdlib.max";
  ]

(* The ordering operators compile to the IEEE comparison on a scalar
   float operand, which is well-defined and deterministic; the nan
   hazard is specific to the *equality/total-order* operators
   (compare nan nan = 0, min/max asymmetry, = on nan) and to floats
   buried inside structures, where the runtime's structural walk takes
   over. So < <= > >= at exactly [float] are exempt. *)
let ordering_ops = [ "Stdlib.<"; "Stdlib.<="; "Stdlib.>"; "Stdlib.>=" ]

let physical_eq_ops = [ "Stdlib.=="; "Stdlib.!=" ]

(* base types on which the polymorphic order is total and stable *)
let safe_heads =
  [ "int"; "char"; "string"; "bytes"; "bool"; "unit"; "int32"; "int64";
    "nativeint" ]

(* containers whose order is the element order *)
let container_heads =
  [ "list"; "option"; "array"; "ref"; "Stdlib.ref"; "result";
    "Stdlib.result" ]

type verdict = Safe | Bad of string

let rec first_arrow_arg ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | Types.Tpoly (t, _) -> first_arrow_arg t
  | _ -> None

let decl_components (td : Types.type_declaration) =
  let of_ctor (cd : Types.constructor_declaration) =
    match cd.cd_args with
    | Types.Cstr_tuple tys -> tys
    | Types.Cstr_record lds -> List.map (fun ld -> ld.Types.ld_type) lds
  in
  Option.to_list td.type_manifest
  @
  match td.type_kind with
  | Types.Type_record (lds, _) -> List.map (fun ld -> ld.Types.ld_type) lds
  | Types.Type_variant (cds, _) -> List.concat_map of_ctor cds
  | Types.Type_abstract | Types.Type_open -> []

let is_abstract (td : Types.type_declaration) =
  td.type_kind = Types.Type_abstract && td.type_manifest = None

(* [classify ~decls ~self ty]: can the polymorphic order be trusted on
   [ty] when used from module [self]? Walks the structure of the type,
   expanding named constructors through the declaration tables with a
   visited set against recursive types. *)
let classify ~(decls : Typed.decls) ~self ty =
  let visited = Hashtbl.create 8 in
  let rec go ty =
    match Types.get_desc ty with
    | Types.Tvar _ | Types.Tunivar _ -> Safe
    | Types.Tarrow _ -> Bad "a functional type"
    | Types.Tpoly (t, _) -> go t
    | Types.Ttuple tys -> first_bad tys
    | Types.Tconstr (p, args, _) -> (
        let name = Path.name p in
        if name = "float" || name = "Float.t" || name = "Stdlib.Float.t" then
          Bad "a float (nan breaks the total order)"
        else if name = "exn" then Bad "exn"
        else if List.mem name safe_heads then Safe
        else if List.mem name container_heads then first_bad args
        else
          match Typed.norm_target p with
          | None -> Bad (Printf.sprintf "the local type %s" name)
          | Some (m, t) -> (
              if Hashtbl.mem visited (m, t) then Safe
              else begin
                Hashtbl.add visited (m, t) ();
                let decl =
                  if m = self then
                    match Hashtbl.find_opt decls.Typed.impl (m, t) with
                    | Some d -> Some d
                    | None -> Hashtbl.find_opt decls.Typed.intf (m, t)
                  else Hashtbl.find_opt decls.Typed.intf (m, t)
                in
                match decl with
                | None ->
                    Bad (Printf.sprintf "the opaque type %s.%s" m t)
                | Some d ->
                    if is_abstract d then
                      Bad
                        (Printf.sprintf
                           "the abstract type %s.%s (use its own \
                            compare/equal)"
                           m t)
                    else first_bad (decl_components d @ args)
              end))
    | _ -> Safe
  and first_bad tys =
    List.fold_left
      (fun acc ty -> match acc with Bad _ -> acc | Safe -> go ty)
      Safe tys
  in
  go ty

let type_to_string ty = Format.asprintf "%a" Printtyp.type_expr ty

let plain_op pname =
  match String.rindex_opt pname '.' with
  | Some i -> String.sub pname (i + 1) (String.length pname - i - 1)
  | None -> pname

let check ~decls (m : Typed.modinfo) =
  let diags = ref [] in
  Typed.iter_top_bindings m.Typed.ti_str ~f:(fun ~id:_ ~name vb ->
      let key = m.Typed.ti_file ^ ":" ^ name in
      let add ~loc ~rule msg =
        diags := Diag.of_loc ~key ~rule loc msg :: !diags
      in
      let open Tast_iterator in
      let iter =
        {
          default_iterator with
          expr =
            (fun it (e : Typedtree.expression) ->
              (match e.exp_desc with
              | Texp_ident (p, lid, _) -> (
                  let pname = Path.name p in
                  if List.mem pname physical_eq_ops then
                    add ~loc:lid.loc ~rule:"physical-eq"
                      (Printf.sprintf
                         "physical equality (%s) in `%s`; use structural \
                          equality or the type's own equal, or add \
                          `physical-eq %s` to tools/lint/allowlist"
                         (plain_op pname) name key)
                  else if List.mem pname poly_compare_ops then
                    match first_arrow_arg e.exp_type with
                    | None -> ()
                    | Some arg
                      when List.mem pname ordering_ops
                           && (match Types.get_desc arg with
                              | Types.Tconstr (p, [], _) ->
                                  let n = Path.name p in
                                  n = "float" || n = "Float.t"
                                  || n = "Stdlib.Float.t"
                              | _ -> false) ->
                        ()
                    | Some arg -> (
                        match
                          classify ~decls ~self:m.Typed.ti_module arg
                        with
                        | Safe -> ()
                        | Bad why ->
                            add ~loc:lid.loc ~rule:"poly-compare"
                              (Printf.sprintf
                                 "polymorphic %s applied at %s, which \
                                  involves %s; use an explicit comparator \
                                  (key `poly-compare %s`)"
                                 (plain_op pname) (type_to_string arg) why
                                 key)))
              | _ -> ());
              default_iterator.expr it e);
        }
      in
      iter.value_binding iter vb);
  List.rev !diags
