(** evolvelint: repo-invariant static analysis.

    Turns the CLAUDE.md conventions — the structural discipline the
    paper's evolvability argument rests on (\u{00A7}3.2: new generations
    layer on what exists without breaking invariants) — into machine
    checks. Two passes: the untyped pass walks the Parsetree of every
    source file plus the dune library graph (layering, determinism,
    interface hygiene, experiment completeness); the typed pass loads
    the [.cmt]/[.cmti] artifacts dune emits, builds a cross-module call
    graph, and runs the comparison-safety, exception-hygiene and
    hot-path allocation rule packs over the Typedtree. *)

type diag = Diag.t = {
  file : string;
  line : int;
  col : int;  (** 1-based, like the line *)
  rule : string;  (** rule identifier; see {!rules} *)
  msg : string;
  key : string option;
      (** suppression key [FILE:BINDING] for allowlist/baseline-gated
          rules; [None] for diagnostics that cannot be suppressed *)
}

val to_string : diag -> string
(** [file:line:col: [rule] msg] — the diagnostic format. *)

val compare_diag : diag -> diag -> int
(** Total, explicit order: file, line, col, rule, msg. *)

val rules : (string * string) list
(** Every rule id with its rationale and provenance (paper section or
    CLAUDE.md convention); what [--explain] prints. *)

val layer_order : string array
(** The strict bottom-up library order the layering rule enforces. *)

val hot_path_roots : string list
(** Roots of the data-plane hot path for the allocation lint; a
    trailing ['*'] is a prefix wildcard. *)

val domain_safety_roots : string list
(** Roots of the domain-safety gate: the entry points a sharded data
    plane runs concurrently, one pump instance per domain. The typed
    pass adds every callee invoked inside a [Domain.spawn] closure
    automatically. *)

val atomic_roles : (string * Rules_atomic.role) list
(** The declared protocol role of every [Atomic.t] record field in
    lib/multicore, keyed ["Module.type.field"]; what the
    atomics-protocol verifier (rules_atomic) checks the call graph
    against, and what the [atomic-role] coverage check keeps total. *)

val atomic_scope : Typed.modinfo -> bool
(** Modules whose Atomic fields must be covered by {!atomic_roles}:
    lib/multicore plus any module the table itself names. *)

val bounds_roots : string list
(** Roots of the bounds-proof obligation set (rules_bounds): the
    per-packet entry points plus the Wire slab codecs they drive; a
    trailing ['*'] is a prefix wildcard. *)

(** Sites exempted from a rule. One entry per line: [RULE FILE:KEY]
    ([#] starts a comment). For [hashtbl-order] and the typed rules the
    key is [file.ml:binding]; for [experiment-artifacts] it is
    [eN.artifact]. The same format serves two files with different
    contracts: [tools/lint/allowlist] (deliberate, justified,
    permanent) and [tools/lint/baseline] (legacy debt, shrinks to
    empty). *)
module Allowlist : sig
  type t

  val empty : t
  val parse : path:string -> string -> t
  val load : string -> t

  val mem : t -> rule:string -> key:string -> bool
  (** Marks the matching entry used. *)

  val stale : ?rule:string -> t -> diag list
  (** Entries that matched nothing — each one is itself a violation,
      so the file cannot silently rot. Call after the checks.
      [rule] defaults to ["stale-allowlist"]; pass ["stale-baseline"]
      when checking the baseline. *)
end

val filter_suppressed :
  allow:Allowlist.t -> baseline:Allowlist.t -> diag list -> diag list
(** Drop keyed diagnostics matched by the allowlist or, failing that,
    the baseline; unkeyed diagnostics always pass through. *)

val check_layering : dune_files:(string * string) list -> diag list
(** [(path, contents)] pairs of dune files. Library stanzas must only
    depend on strictly lower layers of {!layer_order}. *)

val check_determinism :
  allow:Allowlist.t -> path:string -> string -> diag list
(** Walk one lib/ implementation: no [Random.*] outside
    lib/topology/rng.ml, no wall-clock calls, no [Hashtbl.randomize],
    and no [Hashtbl.fold]/[iter] escaping unsorted (allowlist-gated). *)

val check_missing_mli : ml:string list -> mli:string list -> diag list

val check_mli_doc : path:string -> string -> diag list
(** The interface must carry a doc comment referencing a paper section
    (a \u{00A7} sign or the word "Section"). *)

type exp_sources = {
  experiments_ml : string * string;
  bin_ml : string * string;
  bench_ml : string * string;
  report_ml : string * string;
  test_ml : string * string;
  experiments_md : string * string;
}

val check_experiments : allow:Allowlist.t -> exp_sources -> diag list
(** The seven-artifact rule: every [eN] in experiments.ml has a row
    record, [print_eN], CLI hook, bench hook, Report section,
    EXPERIMENTS.md entry and shape-test suite. *)

val typed_pass : decls:Typed.decls -> Typed.modinfo list -> diag list
(** The typed rule packs over an already-loaded module set: build the
    call graph, compute the effect summaries (Summary), compute
    reachability from {!hot_path_roots} and {!domain_safety_roots},
    then run comparison safety, exception hygiene and hot-path
    allocation per module plus the whole-graph v3 packs (shared-state
    inventory, domain-safety race detector, determinism taint).
    Unfiltered — pass the result through {!filter_suppressed}. *)

val dedupe_diags : diag list -> diag list
(** Sort by {!compare_diag}, drop exact duplicates, and collapse
    diagnostics from different passes at the same rule+site (same
    file, line, column and rule) to the first in compare order. *)

val to_json : diag list -> string
(** Machine-readable findings:
    [{"tool": "evolvelint", "findings": N, "diagnostics": [...]}]. *)

val to_sarif : diag list -> string
(** SARIF 2.1.0: one run, the rule registry as reportingDescriptors,
    one result per diagnostic. *)

val catalog_md : unit -> string
(** The generated rule catalog (doc/LINT.md); a test asserts the
    committed file matches, so the catalog cannot drift from
    {!rules}. *)

val run_untyped : root:string -> allow:Allowlist.t -> diag list
(** The untyped pass alone (layering, determinism, interfaces,
    experiment artifacts), sorted. Marks allowlist entries used;
    staleness is checked by {!run} once every pass has run. *)

val run : root:string -> allow:Allowlist.t -> baseline:Allowlist.t -> diag list
(** Both passes over a repo checkout; sorted, deduplicated. The typed
    pass needs [dune build] artifacts (in-tree or under
    [_build/default]) and reports their absence as [typed-engine]
    diagnostics rather than passing vacuously. *)

val summary_dump : root:string -> json:bool -> string
(** The `--summaries` report over a built checkout: every binding's
    propagated effect summary, the toplevel shared-state inventory
    with escape classes, the mutable-field inventory with writers, the
    accessor aliases, the spawned-closure callees and the bounds-proof
    site list. Deterministic: same tree, byte-identical output. *)

val proven_dump : root:string -> string
(** The `--proven` report: the bounds prover's site list alone, one
    [file:line:col accessor binding proven|unproven] line per
    Bigarray/Bytes access reached by the analysis. CI joins every
    [unsafe_get]/[unsafe_set] occurrence in lib/ against the proven
    lines — the unsafe-license gate. *)
