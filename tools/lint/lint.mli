(** evolvelint: repo-invariant static analysis.

    Turns the CLAUDE.md conventions — the structural discipline the
    paper's evolvability argument rests on (\u{00A7}3.2: new generations
    layer on what exists without breaking invariants) — into machine
    checks over the Parsetree of every source file plus the dune
    library graph. Four rule families: layering, determinism,
    interface hygiene, experiment completeness. *)

type diag = {
  file : string;
  line : int;
  col : int;
  rule : string;  (** rule identifier; see {!rules} *)
  msg : string;
}

val to_string : diag -> string
(** [file:line:col: [rule] msg] — the diagnostic format. *)

val compare_diag : diag -> diag -> int

val rules : (string * string) list
(** Every rule id with its rationale and provenance (paper section or
    CLAUDE.md convention); what [--explain] prints. *)

val layer_order : string array
(** The strict bottom-up library order the layering rule enforces. *)

(** Verified-safe sites exempted from a rule. One entry per line:
    [RULE FILE:KEY] ([#] starts a comment). For [hashtbl-order] the key
    is the enclosing top-level binding; for [experiment-artifacts] it
    is [eN.artifact]. *)
module Allowlist : sig
  type t

  val empty : t
  val parse : path:string -> string -> t
  val load : string -> t

  val stale : t -> diag list
  (** Entries that matched nothing — each one is itself a violation,
      so the allowlist cannot silently rot. Call after the checks. *)
end

val check_layering : dune_files:(string * string) list -> diag list
(** [(path, contents)] pairs of dune files. Library stanzas must only
    depend on strictly lower layers of {!layer_order}. *)

val check_determinism :
  allow:Allowlist.t -> path:string -> string -> diag list
(** Walk one lib/ implementation: no [Random.*] outside
    lib/topology/rng.ml, no wall-clock calls, no [Hashtbl.randomize],
    and no [Hashtbl.fold]/[iter] escaping unsorted (allowlist-gated). *)

val check_missing_mli : ml:string list -> mli:string list -> diag list

val check_mli_doc : path:string -> string -> diag list
(** The interface must carry a doc comment referencing a paper section
    (a \u{00A7} sign or the word "Section"). *)

type exp_sources = {
  experiments_ml : string * string;
  bin_ml : string * string;
  bench_ml : string * string;
  report_ml : string * string;
  test_ml : string * string;
  experiments_md : string * string;
}

val check_experiments : allow:Allowlist.t -> exp_sources -> diag list
(** The seven-artifact rule: every [eN] in experiments.ml has a row
    record, [print_eN], CLI hook, bench hook, Report section,
    EXPERIMENTS.md entry and shape-test suite. *)

val run : root:string -> allow:Allowlist.t -> diag list
(** All four families over a repo checkout; sorted, deduplicated. *)
