(* A guided tour of the vN-Bone: construction, routing, and the three
   egress-selection strategies of §3.3.2 (Figures 3 and 4).

   Run with: dune exec examples/vnbone_tour.exe *)

module Setup = Evolve.Setup
module Service = Anycast.Service
module Fabric = Vnbone.Fabric
module Router = Vnbone.Router
module Transport = Vnbone.Transport
module Internet = Topology.Internet

let kind_name = function
  | `Intra -> "intra-domain"
  | `Inter_policy -> "inter-domain (policy)"
  | `Inter_bootstrap -> "inter-domain (anycast bootstrap)"
  | `Manual -> "hand-configured"

let () =
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  let inet = Setup.internet setup in
  List.iter (fun d -> Setup.deploy setup ~domain:d) [ 6; 11; 19 ];
  let fabric = Setup.fabric setup in

  print_endline "-- vN-Bone construction --";
  Printf.printf "members: %d IPv8 routers across domains %s\n"
    (Array.length (Fabric.members fabric))
    (String.concat ", "
       (List.map string_of_int (Service.participants (Setup.service setup))));
  Printf.printf "connected: %b; anchored to domain %s\n"
    (Fabric.is_connected fabric)
    (match Fabric.anchor_domain fabric with
    | Some d -> string_of_int d
    | None -> "-");
  let tunnels = Fabric.tunnels fabric in
  let count k = List.length (List.filter (fun t -> t.Fabric.kind = k) tunnels) in
  Printf.printf "tunnels: %d intra, %d policy, %d bootstrap\n\n" (count `Intra)
    (count `Inter_policy) (count `Inter_bootstrap);
  print_endline "inter-domain tunnels and their underlay cost:";
  List.iter
    (fun t ->
      if t.Fabric.kind <> `Intra then
        Printf.printf "  %d (dom %d) <-> %d (dom %d)  metric %.1f  [%s]\n"
          t.Fabric.from_router
          (Internet.router inet t.Fabric.from_router).Internet.rdomain
          t.Fabric.to_router
          (Internet.router inet t.Fabric.to_router).Internet.rdomain
          t.Fabric.underlay_metric (kind_name t.Fabric.kind))
    tunnels;

  print_endline "\n-- egress selection strategies --";
  (* source near one participant, destinations scattered over
     non-IPv8 domains: the strategies pick different egresses when a
     farther participant sits closer to the destination *)
  let src = (Internet.domain inet 6).Internet.endhost_ids.(0) in
  List.iter
    (fun dst_domain ->
      let dst = (Internet.domain inet dst_domain).Internet.endhost_ids.(0) in
      Printf.printf "src endhost %d (IPv8 domain 6) -> endhost %d (non-IPv8 domain %d)\n"
        src dst dst_domain;
      Printf.printf "  %-20s %-10s %-10s %-10s %-10s\n" "strategy" "vN hops"
        "exit hops" "total" "egress dom";
      List.iter
        (fun strategy ->
          let j = Setup.send setup ~strategy ~src ~dst () in
          Printf.printf "  %-20s %-10d %-10d %-10d %s\n"
            (Router.strategy_to_string strategy)
            (Transport.vn_hops j) (Transport.exit_hops j) (Transport.total_hops j)
            (match j.Transport.egress with
            | Some e -> string_of_int (Internet.router inet e).Internet.rdomain
            | None -> "-"))
        [ Router.Exit_early; Router.Bgp_aware; Router.Proxy ];
      print_newline ())
    [ 12; 18; 25 ];

  print_endline "\n-- the paper's own figures --";
  print_endline "Figure 3 (BGPv(N-1)-aware egress):";
  Format.printf "%a@." Evolve.Scenario.pp_fig3 (Evolve.Scenario.fig3 ());
  print_endline "Figure 4 (advertising-by-proxy):";
  Format.printf "%a@." Evolve.Scenario.pp_fig4 (Evolve.Scenario.fig4 ())
