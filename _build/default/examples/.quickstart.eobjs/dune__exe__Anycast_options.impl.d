examples/anycast_options.ml: Anycast Evolve Fun Interdomain List Printf Simcore Topology
