examples/quickstart.ml: Anycast Array Evolve List Netcore Printf Topology Vnbone
