examples/quickstart.mli:
