examples/deployment_spread.ml: Anycast Array Evolve Format Fun Printf Topology
