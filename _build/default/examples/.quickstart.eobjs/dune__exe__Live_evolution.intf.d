examples/live_evolution.mli:
