examples/multicast_lesson.ml: Anycast Array Evolve Float List Printf String Vnbone
