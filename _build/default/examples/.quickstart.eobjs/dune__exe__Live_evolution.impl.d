examples/live_evolution.ml: Anycast Evolve List Printf Simcore Topology
