examples/anycast_options.mli:
