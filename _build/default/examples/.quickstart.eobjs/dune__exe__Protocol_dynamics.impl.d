examples/protocol_dynamics.ml: Array List Netcore Printf Simcore Topology
