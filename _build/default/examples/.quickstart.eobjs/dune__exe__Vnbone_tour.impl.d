examples/vnbone_tour.ml: Anycast Array Evolve Format List Printf String Topology Vnbone
