examples/multicast_lesson.mli:
