examples/vnbone_tour.mli:
