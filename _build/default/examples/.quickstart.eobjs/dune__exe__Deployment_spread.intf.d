examples/deployment_spread.mli:
