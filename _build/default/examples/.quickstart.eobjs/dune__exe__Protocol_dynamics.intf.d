examples/protocol_dynamics.mli:
