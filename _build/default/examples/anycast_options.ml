(* The three inter-domain anycast designs, side by side on one
   internet (§3.2 and the GIA discussion):

   - Option 1: every participant originates a dedicated,
     non-aggregatable /24 globally — best proximity, needs a policy
     change at every ISP and one global route per IP generation.
   - Option 2: the address lives in the default ISP's own space —
     zero changes anywhere else, but the default ISP carries the load.
   - GIA: home-domain rooting plus radius-limited advertisements —
     the tunable middle.

   Run with: dune exec examples/anycast_options.exe *)

module Setup = Evolve.Setup
module Service = Anycast.Service
module Metrics = Anycast.Metrics
module Internet = Topology.Internet
module Bgp = Interdomain.Bgp

let measure name strategy =
  let setup = Setup.create ~version:8 ~strategy () in
  let inet = Setup.internet setup in
  (* the same participants every time: domain 0 (the default/home where
     one is needed) plus three stubs *)
  List.iter (fun d -> Setup.deploy setup ~domain:d) [ 0; 7; 13; 21 ];
  let service = Setup.service setup in
  let env = Setup.env setup in
  let mean_rib =
    let n = Internet.num_domains inet in
    let total =
      List.fold_left
        (fun acc d -> acc + Bgp.rib_size env.Simcore.Forward.bgp ~domain:d)
        0
        (List.init n Fun.id)
    in
    float_of_int total /. float_of_int n
  in
  Printf.printf "%-22s delivery %5s   stretch %.2f   domain-0 share %5s   mean RIB %.2f\n"
    name
    (Printf.sprintf "%.0f%%" (100.0 *. Metrics.delivery_rate service))
    (Metrics.mean_stretch service)
    (Printf.sprintf "%.0f%%" (100.0 *. Metrics.termination_share service ~domain:0))
    mean_rib

let () =
  print_endline
    "four participants (domain 0 + three stubs), 28-domain internet:\n";
  measure "option 1 (global)" Service.Option1;
  measure "option 2 (default)" (Service.Option2 { default_domain = 0 });
  List.iter
    (fun r ->
      measure
        (Printf.sprintf "GIA (radius %d)" r)
        (Service.Gia { home_domain = 0; radius = r }))
    [ 0; 1; 2 ];
  print_endline
    "\nthe trade: option 2 concentrates load at domain 0 with baseline\n\
     routing state; option 1 distributes it at +1 global route; GIA\n\
     buys the distribution with state only within its radius."
