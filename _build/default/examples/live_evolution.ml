(* Live evolution: deployment events and client traffic interleaved on
   the discrete-event engine.

   ISPs adopt IPv8 at random times over a simulated month while a
   client sends a probe every 6 hours. The paper's promise is that the
   client never reconfigures, never loses service, and its path to IPv8
   only improves as deployment spreads — here we watch that happen on a
   timeline.

   Run with: dune exec examples/live_evolution.exe *)

module Engine = Simcore.Engine
module Setup = Evolve.Setup
module Service = Anycast.Service
module Metrics = Anycast.Metrics
module Internet = Topology.Internet
module Rng = Topology.Rng

let () =
  let setup = Setup.create ~version:8 ~strategy:Anycast.Service.Option1 () in
  let inet = Setup.internet setup in
  let service = Setup.service setup in
  let client = 17 in
  let rng = Rng.create 404L in

  let engine = Engine.create () in
  let horizon = 720.0 (* hours: one month *) in

  (* deployment process: each domain adopts at a uniform random time *)
  for d = 0 to Internet.num_domains inet - 1 do
    Engine.schedule engine ~delay:(Rng.float rng horizon) (fun _ ->
        Setup.deploy setup ~domain:d)
  done;

  (* client process: a probe every 6 hours, recording what it saw *)
  let probes = ref [] in
  let rec probe engine =
    let t = Engine.now engine in
    let deployed = List.length (Service.participants service) in
    probes := (t, deployed, Metrics.actual service ~endhost:client) :: !probes;
    if t +. 6.0 <= horizon then Engine.schedule engine ~delay:6.0 probe
  in
  Engine.schedule engine ~delay:1.0 probe;

  let events = Engine.run engine in
  Printf.printf "simulated %.0f hours, %d events\n\n" horizon events;

  Printf.printf "%-8s %-10s %-8s %s\n" "hour" "deployed" "metric" "ingress domain";
  let dropped = ref 0 in
  let last_metric = ref infinity in
  let improvements = ref 0 and regressions = ref 0 in
  List.iter
    (fun (t, deployed, result) ->
      match result with
      | Some (member, metric) ->
          if metric < !last_metric -. 1e-9 then incr improvements
          else if metric > !last_metric +. 1e-9 then incr regressions;
          last_metric := metric;
          (* print every other day to keep the log short *)
          if int_of_float t mod 48 < 6 then
            Printf.printf "%-8.0f %-10d %-8.1f %d\n" t deployed metric
              (Internet.router inet member).Internet.rdomain
      | None ->
          (* before the first deployment there is nothing to reach;
             only count drops once the service exists *)
          if deployed > 0 then begin
            incr dropped;
            Printf.printf "%-8.0f %-10d DROPPED\n" t deployed
          end
          else if int_of_float t mod 48 < 6 then
            Printf.printf "%-8.0f %-10d (no IPv8 anywhere yet)\n" t deployed)
    (List.rev !probes);
  Printf.printf "\nprobes: %d, dropped after first deployment: %d\n"
    (List.length !probes) !dropped;
  Printf.printf "metric improvements: %d, regressions: %d\n" !improvements
    !regressions;
  Printf.printf "final participants: %d/%d domains; client metric %.1f\n"
    (List.length (Service.participants service))
    (Internet.num_domains inet) !last_metric;
  if !dropped = 0 then
    print_endline "-> service was continuous through the whole rollout."
