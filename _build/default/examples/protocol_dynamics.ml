(* Protocol dynamics: what deployment costs on the wire.

   The architecture rides on two protocol events: an ISP's IPv8
   routers start advertising the anycast group inside the IGP (one LSA
   flood), and the ISP injects the anycast prefix into BGP (an update
   wave). This example runs both at message level on the event engine
   and prints their cost.

   Run with: dune exec examples/protocol_dynamics.exe *)

module Engine = Simcore.Engine
module Lsproto = Simcore.Lsproto
module Bgpdyn = Simcore.Bgpdyn
module Internet = Topology.Internet
module Addressing = Netcore.Addressing

let () =
  let inet = Internet.build Internet.default_params in
  let group = Addressing.anycast_global ~group:8 in

  print_endline "-- inside the deploying ISP: one LSA flood --";
  let proto = Lsproto.create inet ~domain:5 in
  let engine = Engine.create () in
  Lsproto.start proto engine;
  ignore (Engine.run engine);
  let before = Lsproto.stats proto in
  Printf.printf "initial LSDB sync: %d LSA transmissions\n"
    before.Lsproto.messages;
  let member = (Internet.domain inet 5).Internet.router_ids.(0) in
  let t0 = Engine.now engine in
  Lsproto.advertise_anycast proto engine ~router:member group;
  ignore (Engine.run engine);
  let after = Lsproto.stats proto in
  Printf.printf
    "advertising the anycast address: %d messages, settled in %.1f time units\n"
    (after.Lsproto.messages - before.Lsproto.messages)
    (after.Lsproto.last_change -. t0);
  Printf.printf "every router now sees the member: %b\n\n"
    (List.for_all
       (fun r -> Lsproto.members_view proto ~router:r group = [ member ])
       (Array.to_list (Internet.domain inet 5).Internet.router_ids));

  print_endline "-- across the internet: one BGP update wave --";
  let dyn = Bgpdyn.create ~mrai:2.0 ~jitter:2.0 inet in
  let engine = Engine.create () in
  Bgpdyn.originate_all_domain_prefixes dyn engine;
  ignore (Engine.run engine);
  let boot = Bgpdyn.stats dyn in
  Printf.printf "bootstrap (28 /16s): %d updates, quiescent at t=%.2f\n"
    boot.Bgpdyn.updates boot.Bgpdyn.last_change;
  let t0 = Engine.now engine in
  Bgpdyn.originate dyn engine ~domain:5 group;
  ignore (Engine.run engine);
  let s = Bgpdyn.stats dyn in
  Printf.printf
    "injecting the anycast /24: %d updates, %d transient best-route changes,\n"
    (s.Bgpdyn.updates - boot.Bgpdyn.updates)
    (s.Bgpdyn.best_changes - boot.Bgpdyn.best_changes);
  Printf.printf "quiescent %.2f time units after origination\n"
    (s.Bgpdyn.last_change -. t0);
  match Bgpdyn.agrees_with_synchronous dyn with
  | Ok () ->
      print_endline
        "final state verified identical to the synchronous reference engine."
  | Error msg -> Printf.printf "DISAGREEMENT: %s\n" msg
