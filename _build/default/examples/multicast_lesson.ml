(* The IP Multicast lesson (§2.1): why universal access is the switch
   between a virtuous cycle and a chicken-and-egg stall.

   The paper: "had a major ISP (say Sprint) deployed multicast, this
   new functionality would only have been available to Sprint's
   customers. Application developers ... were reluctant to develop
   multicast applications that could only service a fraction of
   Internet users."

   We run the adoption model both ways and print the trajectories, then
   show the revenue-flow side (assumption A4) on the packet simulator.

   Run with: dune exec examples/multicast_lesson.exe *)

module Adoption = Evolve.Adoption
module Revenue = Evolve.Revenue
module Setup = Evolve.Setup
module Service = Anycast.Service
module Router = Vnbone.Router

let spark points =
  (* a crude text sparkline of ISP adoption over time *)
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '#' |] in
  String.concat ""
    (List.filteri (fun i _ -> i mod 5 = 0) points
    |> List.map (fun (p : Adoption.point) ->
           let lvl =
             int_of_float (p.Adoption.isp_fraction *. 5.0) |> min 5 |> max 0
           in
           String.make 1 glyphs.(lvl)))

let run_side label ua =
  let points =
    Adoption.run { Adoption.default_params with Adoption.universal_access = ua }
  in
  let final = Adoption.final points in
  Printf.printf "%-28s |%s|\n" label (spark points);
  Printf.printf "%-28s   final ISP adoption %.0f%%, apps %.0f%%, %s\n\n" ""
    (100.0 *. final.Adoption.isp_fraction)
    (100.0 *. final.Adoption.app_fraction)
    (match Adoption.time_to_tip points with
    | Some t -> Printf.sprintf "tipped at step %d" t
    | None -> "never tipped")

let () =
  print_endline "-- adoption dynamics: one early adopter, 40 ISPs, 60 apps --\n";
  run_side "with universal access" true;
  run_side "without (multicast story)" false;

  print_endline "-- the incentive side (A4): deployers attract traffic --";
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  Setup.deploy setup ~domain:5;
  Setup.deploy setup ~domain:9;
  let pairs = Revenue.random_pairs (Setup.internet setup) ~seed:7L ~count:120 in
  let report =
    Revenue.traffic_report (Setup.router setup) ~strategy:Router.Bgp_aware ~pairs
  in
  Printf.printf "journeys delivered: %d/%d\n" report.Revenue.delivered
    report.Revenue.attempted;
  Printf.printf "mean IPv8 traffic carried by deployers:     %.1f units\n"
    report.Revenue.deployer_mean;
  Printf.printf "mean IPv8 traffic carried by non-deployers: %.1f units\n"
    report.Revenue.non_deployer_mean;
  Printf.printf
    "-> offering IPv8 multiplies carried IPv8 traffic %.1fx: the revenue\n"
    (report.Revenue.deployer_mean /. Float.max 1.0 report.Revenue.non_deployer_mean);
  print_endline "   flow that rewards early adopters (assumption A4)."
