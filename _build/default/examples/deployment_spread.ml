(* Deployment spread (the Figure 1 story, then its generalization).

   Watches one client's anycast redirection as IPv8 deployment spreads
   ISP by ISP across a random internet: the client is never
   reconfigured, never dropped, and its path to IPv8 only improves.

   Run with: dune exec examples/deployment_spread.exe *)

module Setup = Evolve.Setup
module Service = Anycast.Service
module Metrics = Anycast.Metrics
module Internet = Topology.Internet
module Rng = Topology.Rng

let () =
  print_endline "-- Figure 1 scenario (fixed topology) --";
  Format.printf "%a@." Evolve.Scenario.pp_fig1 (Evolve.Scenario.fig1 ());

  print_endline "-- the same effect on a random internet --";
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  let inet = Setup.internet setup in
  let service = Setup.service setup in
  let client = 3 in
  Printf.printf "client: endhost %d in domain %d\n\n" client
    (Internet.endhost inet client).Internet.hdomain;
  let order =
    let rng = Rng.create 2025L in
    let a = Array.init (Internet.num_domains inet) Fun.id in
    Rng.shuffle rng a;
    a
  in
  Printf.printf "%-10s %-16s %-10s %s\n" "deployed" "ingress router"
    "in domain" "metric from client";
  Array.iteri
    (fun i d ->
      Setup.deploy setup ~domain:d;
      if i < 12 || i = Array.length order - 1 then
        match Metrics.actual service ~endhost:client with
        | Some (member, metric) ->
            Printf.printf "%-10d %-16d %-10d %.1f\n" (i + 1) member
              (Internet.router inet member).Internet.rdomain metric
        | None -> Printf.printf "%-10d (dropped!)\n" (i + 1))
    order;
  Printf.printf "\nmean anycast stretch at full deployment: %.2f\n"
    (Metrics.mean_stretch service)
