(* Quickstart: stand up an internet, deploy IPv8 in one ISP, and send
   an IPv8 packet between two endhosts whose own ISPs know nothing
   about IPv8 — the paper's universal-access property in ~30 lines.

   Run with: dune exec examples/quickstart.exe *)

module Setup = Evolve.Setup
module Service = Anycast.Service
module Router = Vnbone.Router
module Transport = Vnbone.Transport
module Internet = Topology.Internet

let () =
  (* 1. a random multi-provider internet: 4 tier-1s, 24 stubs *)
  let setup = Setup.create ~version:8 ~strategy:Service.Option1 () in
  let inet = Setup.internet setup in
  Printf.printf "internet: %d domains, %d routers, %d endhosts\n"
    (Internet.num_domains inet)
    (Internet.num_routers inet)
    (Array.length inet.Internet.endhosts);

  (* 2. a single ISP (domain 7) deploys IPv8 on all its routers *)
  Setup.deploy setup ~domain:7;
  Printf.printf "domain 7 deployed IPv8: %d IPv8 routers, anycast %s\n"
    (List.length (Service.members (Setup.service setup)))
    (Netcore.Ipv4.to_string (Service.address (Setup.service setup)));

  (* 3. two endhosts in two OTHER domains talk IPv8 anyway *)
  let src = 0 and dst = 60 in
  Printf.printf "endhost %d (domain %d) -> endhost %d (domain %d)\n" src
    (Internet.endhost inet src).Internet.hdomain dst
    (Internet.endhost inet dst).Internet.hdomain;
  let j = Setup.send setup ~strategy:Router.Bgp_aware ~src ~dst () in
  Printf.printf "delivered: %b\n" (Transport.delivered j);
  Printf.printf "  IPv8 source address:      %s\n"
    (Netcore.Ipvn.to_string j.Transport.packet.Netcore.Packet.vsrc);
  Printf.printf "  IPv8 destination address: %s\n"
    (Netcore.Ipvn.to_string j.Transport.packet.Netcore.Packet.vdst);
  (match (j.Transport.ingress, j.Transport.egress) with
  | Some i, Some e ->
      Printf.printf "  anycast ingress: router %d (domain %d)\n" i
        (Internet.router inet i).Internet.rdomain;
      Printf.printf "  vN-Bone egress:  router %d (domain %d)\n" e
        (Internet.router inet e).Internet.rdomain
  | _ -> ());
  Printf.printf "  hops: %d total = %d access + %d vN-Bone + %d exit\n"
    (Transport.total_hops j) (Transport.access_hops j) (Transport.vn_hops j)
    (Transport.exit_hops j)
