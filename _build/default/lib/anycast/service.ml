module Internet = Topology.Internet
module Igp = Routing.Igp
module Bgp = Interdomain.Bgp
module Forward = Simcore.Forward
module Prefix = Netcore.Prefix
module Packet = Netcore.Packet
module Addressing = Netcore.Addressing
module Ipv4 = Netcore.Ipv4

type strategy =
  | Option1
  | Option2 of { default_domain : int }
  | Gia of { home_domain : int; radius : int }

type t = {
  env : Forward.env;
  version : int;
  strategy : strategy;
  group : Prefix.t;
  members : (int, unit) Hashtbl.t;  (* router id -> () *)
  mutable participant_domains : int list;
}

let env t = t.env
let version t = t.version
let strategy t = t.strategy
let group t = t.group
let address t = Addressing.anycast_address t.group

let deploy env ~version ~strategy =
  if version < 1 || version > 63 then
    invalid_arg "Service.deploy: version out of [1, 63]";
  let rooted domain =
    if domain < 0 || domain >= Internet.num_domains env.Forward.inet then
      invalid_arg "Service.deploy: default domain out of range";
    Addressing.anycast_in_domain ~domain ~group:version
  in
  let group =
    match strategy with
    | Option1 -> Addressing.anycast_global ~group:version
    | Option2 { default_domain } -> rooted default_domain
    | Gia { home_domain; radius } ->
        if radius < 0 then invalid_arg "Service.deploy: negative GIA radius";
        rooted home_domain
  in
  { env; version; strategy; group; members = Hashtbl.create 16; participant_domains = [] }

let is_participant t ~domain = List.mem domain t.participant_domains
let participants t = List.sort Int.compare t.participant_domains

let members t =
  Hashtbl.fold (fun r () acc -> r :: acc) t.members [] |> List.sort Int.compare

let members_in t ~domain =
  members t
  |> List.filter (fun r -> (Internet.router t.env.Forward.inet r).rdomain = domain)

let enroll_router t router =
  let d = (Internet.router t.env.Forward.inet router).rdomain in
  Igp.advertise_anycast t.env.Forward.igps.(d) ~group:t.group ~member:router;
  Hashtbl.replace t.members router ()

let enroll_domain t ~domain ~routers =
  if routers = [] then invalid_arg "Service.add_participant: no routers";
  List.iter
    (fun r ->
      if (Internet.router t.env.Forward.inet r).rdomain <> domain then
        invalid_arg "Service.add_participant: router outside the domain")
    routers;
  List.iter (enroll_router t) routers;
  if not (is_participant t ~domain) then
    t.participant_domains <- domain :: t.participant_domains;
  match t.strategy with
  | Option1 -> Bgp.originate t.env.Forward.bgp ~domain t.group
  | Option2 _ -> ()
  | Gia { radius; _ } ->
      Bgp.originate_limited t.env.Forward.bgp ~domain ~radius t.group

let add_participant t ~domain ~routers =
  enroll_domain t ~domain ~routers;
  ignore (Forward.reconverge t.env)

let add_participants t entries =
  List.iter (fun (domain, routers) -> enroll_domain t ~domain ~routers) entries;
  ignore (Forward.reconverge t.env)

let remove_participant t ~domain =
  List.iter
    (fun r ->
      Igp.withdraw_anycast t.env.Forward.igps.(domain) ~group:t.group ~member:r;
      Hashtbl.remove t.members r)
    (members_in t ~domain);
  t.participant_domains <- List.filter (fun d -> d <> domain) t.participant_domains;
  (match t.strategy with
  | Option1 -> Bgp.withdraw_origin t.env.Forward.bgp ~domain t.group
  | Option2 _ -> ()
  | Gia _ -> Bgp.withdraw_limited t.env.Forward.bgp ~domain t.group);
  ignore (Forward.reconverge t.env)

let add_member t ~router =
  let d = (Internet.router t.env.Forward.inet router).rdomain in
  if not (is_participant t ~domain:d) then
    invalid_arg "Service.add_member: domain is not a participant";
  enroll_router t router

let remove_member t ~router =
  let d = (Internet.router t.env.Forward.inet router).rdomain in
  Igp.withdraw_anycast t.env.Forward.igps.(d) ~group:t.group ~member:router;
  Hashtbl.remove t.members router

let advertise_to_neighbor t ~from_ ~to_ =
  (match t.strategy with
  | Option1 | Gia _ ->
      invalid_arg
        "Service.advertise_to_neighbor: peering advertisements are an Option 2 \
         mechanism"
  | Option2 _ -> ());
  if not (is_participant t ~domain:from_) then
    invalid_arg "Service.advertise_to_neighbor: advertiser is not a participant";
  (* the advertiser delivers via its own IGP anycast members; only the
     scoped (non-re-exported) route is placed at the neighbor *)
  Bgp.advertise_scoped t.env.Forward.bgp ~from_ ~to_ t.group;
  ignore (Forward.reconverge t.env)

let withdraw_neighbor_advertisement t ~from_ ~to_ =
  Bgp.withdraw_scoped t.env.Forward.bgp ~from_ ~to_ t.group;
  ignore (Forward.reconverge t.env)

let resolve_from_router t ~entry =
  let probe = Packet.make_data ~src:Ipv4.any ~dst:(address t) "anycast-probe" in
  Forward.forward t.env probe ~entry

let resolve_from_endhost t ~endhost =
  let probe = Packet.make_data ~src:Ipv4.any ~dst:(address t) "anycast-probe" in
  Forward.send_from_endhost t.env probe ~endhost

let ingress_for_endhost t ~endhost =
  match (resolve_from_endhost t ~endhost).Forward.outcome with
  | Forward.Router_accepted r -> Some r
  | Forward.Endhost_accepted _ | Forward.Dropped _ -> None
