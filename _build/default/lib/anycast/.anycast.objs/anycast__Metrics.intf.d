lib/anycast/metrics.mli: Service Simcore
