lib/anycast/metrics.ml: Array Float Fun List Netcore Service Simcore Topology
