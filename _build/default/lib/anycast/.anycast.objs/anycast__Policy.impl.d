lib/anycast/policy.ml: Hashtbl Interdomain List Netcore
