lib/anycast/policy.mli: Interdomain Netcore
