lib/anycast/service.ml: Array Hashtbl Int Interdomain List Netcore Routing Simcore Topology
