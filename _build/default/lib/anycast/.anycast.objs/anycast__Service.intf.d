lib/anycast/service.mli: Netcore Simcore
