(** The anycast redirection service for one IPvN deployment.

    One anycast group serves each new generation of IP (paper §3.2:
    "a single anycast address is needed to serve each new generation").
    IPvN routers are the group members; participant ISPs advertise the
    group into their IGP, and — depending on the inter-domain option —
    either originate the group's non-aggregatable prefix into BGP
    (Option 1) or rely on the default ISP's covering unicast prefix,
    improved by scoped peering advertisements (Option 2). *)

type strategy =
  | Option1
      (** dedicated non-aggregatable /24, originated into BGP by every
          participant; subject to per-domain propagation policy *)
  | Option2 of { default_domain : int }
      (** prefix carved from the default ISP's /16; plain unicast
          routing carries packets toward the default domain *)
  | Gia of { home_domain : int; radius : int }
      (** the GIA design the paper cites (Katabi et al.): the anycast
          address is rooted in a {e home} domain, so default routes
          always deliver, and participants additionally make
          themselves discoverable within [radius] AS hops (modelling
          GIA's "border routers can initiate searches for nearby
          members"). [radius = 0] behaves like pure Option 2 with no
          peering advertisements; a large radius approaches Option 1. *)

type t

val deploy : Simcore.Forward.env -> version:int -> strategy:strategy -> t
(** Create the (initially empty) deployment for IP generation
    [version]. No participant is enrolled yet; under Option 2 and GIA,
    the anycast prefix is carved out of the default/home domain's /16.
    @raise Invalid_argument if [version] is not in [\[1, 63\]], the
    default/home domain does not exist, or a GIA radius is negative. *)

val env : t -> Simcore.Forward.env
val version : t -> int
val strategy : t -> strategy

val group : t -> Netcore.Prefix.t
(** The anycast prefix of this deployment. *)

val address : t -> Netcore.Ipv4.t
(** The well-known anycast address endhosts send to. *)

val add_participant : t -> domain:int -> routers:int list -> unit
(** The domain deploys IPvN on the given routers (global ids inside
    the domain): they join the anycast group in the domain's IGP, and
    under Option 1 the domain originates the anycast prefix into BGP.
    BGP is re-converged before returning.
    @raise Invalid_argument if a router is outside the domain or the
    list is empty. *)

val add_participants : t -> (int * int list) list -> unit
(** Enroll several domains at once ((domain, routers) pairs) with a
    single BGP re-convergence — what a coordinated rollout (or a test
    over a large internet) wants instead of per-domain convergence.
    Same validation as {!add_participant}. *)

val remove_participant : t -> domain:int -> unit
(** Withdraw the whole domain (IGP withdrawals + BGP origin
    withdrawal). *)

val add_member : t -> router:int -> unit
(** Enroll one more router of an already-participating domain. *)

val remove_member : t -> router:int -> unit

val is_participant : t -> domain:int -> bool
val participants : t -> int list
val members : t -> int list
(** All IPvN routers, ascending. *)

val members_in : t -> domain:int -> int list

val advertise_to_neighbor : t -> from_:int -> to_:int -> unit
(** Option 2 "peering advertisement": participant [from_] advertises
    its anycast route to neighbor [to_] (installed there, not
    re-exported). Re-converges BGP.
    @raise Invalid_argument under Option 1, when [from_] is not a
    participant, or when the domains are not linked. *)

val withdraw_neighbor_advertisement : t -> from_:int -> to_:int -> unit

val resolve_from_endhost : t -> endhost:int -> Simcore.Forward.trace
(** Send a probe to the anycast address from an endhost; the trace's
    outcome identifies the IPvN ingress router the network chose. *)

val resolve_from_router : t -> entry:int -> Simcore.Forward.trace

val ingress_for_endhost : t -> endhost:int -> int option
(** The member router this endhost's packets are redirected to, if
    delivery succeeds. *)
