module Prefix = Netcore.Prefix

type t = { table : (int * Prefix.t, bool) Hashtbl.t; mutable refuse_long : int list }

let create () = { table = Hashtbl.create 16; refuse_long = [] }

let set_propagates t ~domain ~prefix v =
  Hashtbl.replace t.table (domain, prefix) v

let refuse_all_nonroutable t ~domains =
  t.refuse_long <- domains @ t.refuse_long

let propagates t ~domain ~prefix =
  match Hashtbl.find_opt t.table (domain, prefix) with
  | Some v -> v
  | None ->
      not
        (List.mem domain t.refuse_long
        && not (Prefix.is_globally_routable prefix))

let bgp_config t =
  { Interdomain.Bgp.propagate = (fun d p -> propagates t ~domain:d ~prefix:p) }
