(** Packets: the IPv4 substrate header and the IPvN header it may
    encapsulate.

    The paper's universal-access mechanism is "encapsulate an IPvN
    packet in an IPv4 packet addressed to the well-known anycast
    address"; this module is that encapsulation. *)

type vn = {
  version : int;  (** the IPvN generation *)
  vsrc : Ipvn.t;
  vdst : Ipvn.t;
  vttl : int;  (** hop budget at the IPvN layer (vN-Bone hops) *)
  dest_v4_hint : Ipv4.t option;
      (** the destination's IPv(N-1) address when carried "in a separate
          option field in the IPvN header" (paper, §3.3.2); [None] when
          the sender relies on inference from a self-address. *)
  body : string;
}
(** An IPvN packet. *)

type payload =
  | Data of string  (** ordinary IPv4 traffic *)
  | Encap of vn  (** an IPvN packet tunneled over IPv4 *)

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  ttl : int;  (** hop budget at the IPv4 layer *)
  payload : payload;
}
(** An IPv4 packet. *)

val default_ttl : int
(** Initial hop budget (64). *)

val make_data : src:Ipv4.t -> dst:Ipv4.t -> string -> t
(** A plain IPv4 data packet with the default TTL. *)

val make_vn :
  version:int ->
  vsrc:Ipvn.t ->
  vdst:Ipvn.t ->
  ?dest_v4_hint:Ipv4.t ->
  string ->
  vn
(** An IPvN packet with the default vTTL.
    @raise Invalid_argument if the source or destination version
    disagrees with [version]. *)

val encapsulate : src:Ipv4.t -> dst:Ipv4.t -> vn -> t
(** Wrap an IPvN packet in an IPv4 packet (fresh IPv4 TTL). *)

val decapsulate : t -> vn option
(** The IPvN packet inside, if any. *)

val decrement_ttl : t -> t option
(** [None] once the hop budget is exhausted. *)

val decrement_vttl : vn -> vn option

val dest_ipv4 : vn -> Ipv4.t option
(** The destination's IPv4 address as recoverable by an IPvN router:
    the explicit header hint if present, else the address embedded in a
    self-assigned destination, else [None]. *)

val pp : Format.formatter -> t -> unit
val pp_vn : Format.formatter -> vn -> unit
