(* Address plan:
   - domain d owns the /16 starting at (d + 256) * 2^16 — offset by 256
     so that domain space never collides with the 240/8 anycast range
     or 0/8.  With d < 40960 this stays below 0xB000_0000, clear of the
     0xF000_0000 (240/8) Option-1 anycast range.
   - inside a /16: hosts 1..16383 are routers, 16384..32767 endhosts,
     0xFF00..0xFFFF (the top /24s, one per group up to 63) are Option-2
     anycast prefixes. *)

let max_domains = 40960
let router_base = 1
let router_span = 16 * 1024
let endhost_base = router_span
let endhost_span = 16 * 1024

let check_domain d =
  if d < 0 || d >= max_domains then
    invalid_arg "Addressing: domain id out of range"

let domain_prefix d =
  check_domain d;
  Prefix.make (Ipv4.of_int ((d + 256) lsl 16)) 16

let domain_of_address a =
  let v = Ipv4.to_int a in
  let block = v lsr 16 in
  let d = block - 256 in
  if d >= 0 && d < max_domains then Some d else None

let router_address ~domain ~index =
  if index < 0 || index >= router_span - router_base then
    invalid_arg "Addressing.router_address: index out of range";
  Prefix.host (domain_prefix domain) (router_base + index)

let endhost_address ~domain ~index =
  if index < 0 || index >= endhost_span then
    invalid_arg "Addressing.endhost_address: index out of range";
  Prefix.host (domain_prefix domain) (endhost_base + index)

let low16 a = Ipv4.to_int a land 0xFFFF

let is_router_address a =
  match domain_of_address a with
  | None -> false
  | Some _ ->
      let h = low16 a in
      h >= router_base && h < router_span

let is_endhost_address a =
  match domain_of_address a with
  | None -> false
  | Some _ ->
      let h = low16 a in
      h >= endhost_base && h < endhost_base + endhost_span

let anycast_global ~group =
  if group < 0 || group >= 65536 then
    invalid_arg "Addressing.anycast_global: group out of range";
  (* 240.0.0.0/8 carved into /24s, one per group. *)
  Prefix.make (Ipv4.of_int ((240 lsl 24) lor (group lsl 8))) 24

let anycast_in_domain ~domain ~group =
  if group < 0 || group >= 64 then
    invalid_arg "Addressing.anycast_in_domain: group out of range";
  (* the top 64 /24s of the domain's /16, clear of router/endhost space *)
  let base = Ipv4.to_int (Prefix.network (domain_prefix domain)) in
  Prefix.make (Ipv4.of_int (base lor ((0xC0 + group) lsl 8))) 24

let anycast_address p = Prefix.host p 1
