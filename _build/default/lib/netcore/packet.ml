type vn = {
  version : int;
  vsrc : Ipvn.t;
  vdst : Ipvn.t;
  vttl : int;
  dest_v4_hint : Ipv4.t option;
  body : string;
}

type payload = Data of string | Encap of vn
type t = { src : Ipv4.t; dst : Ipv4.t; ttl : int; payload : payload }

let default_ttl = 64
let make_data ~src ~dst body = { src; dst; ttl = default_ttl; payload = Data body }

let make_vn ~version ~vsrc ~vdst ?dest_v4_hint body =
  if Ipvn.version vsrc <> version then
    invalid_arg "Packet.make_vn: source address version mismatch";
  if Ipvn.version vdst <> version then
    invalid_arg "Packet.make_vn: destination address version mismatch";
  { version; vsrc; vdst; vttl = default_ttl; dest_v4_hint; body }

let encapsulate ~src ~dst vn = { src; dst; ttl = default_ttl; payload = Encap vn }
let decapsulate t = match t.payload with Encap vn -> Some vn | Data _ -> None
let decrement_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }

let decrement_vttl vn =
  if vn.vttl <= 1 then None else Some { vn with vttl = vn.vttl - 1 }

let dest_ipv4 vn =
  match vn.dest_v4_hint with
  | Some a -> Some a
  | None -> Ipvn.embedded_ipv4 vn.vdst

let pp_vn fmt vn =
  Format.fprintf fmt "IPv%d[%a -> %a, vttl=%d]" vn.version Ipvn.pp vn.vsrc
    Ipvn.pp vn.vdst vn.vttl

let pp fmt t =
  match t.payload with
  | Data _ -> Format.fprintf fmt "IPv4[%a -> %a, ttl=%d]" Ipv4.pp t.src Ipv4.pp t.dst t.ttl
  | Encap vn ->
      Format.fprintf fmt "IPv4[%a -> %a, ttl=%d | %a]" Ipv4.pp t.src Ipv4.pp
        t.dst t.ttl pp_vn vn
