type t = int (* invariant: 0 <= t < 2^32 *)

let mask32 = 0xFFFF_FFFF
let of_int i = i land mask32
let to_int a = a
let of_int32 i = Int32.to_int i land mask32
let to_int32 a = Int32.of_int a

let of_octets a b c d =
  let check o =
    if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets: octet out of range"
  in
  check a;
  check b;
  check c;
  check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> Some v
        | _ -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
      | _ -> None)
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let to_string a =
  Printf.sprintf "%d.%d.%d.%d"
    ((a lsr 24) land 0xFF)
    ((a lsr 16) land 0xFF)
    ((a lsr 8) land 0xFF)
    (a land 0xFF)

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash

let bit a i =
  if i < 0 || i > 31 then invalid_arg "Ipv4.bit: index out of range";
  (a lsr (31 - i)) land 1 = 1

let succ a = (a + 1) land mask32
let add a k = (a + k) land mask32
let any = 0
let broadcast = mask32
let pp fmt a = Format.pp_print_string fmt (to_string a)
