lib/netcore/ipvn.mli: Format Ipv4
