lib/netcore/ipvn.ml: Format Hashtbl Int Int64 Ipv4 Printf
