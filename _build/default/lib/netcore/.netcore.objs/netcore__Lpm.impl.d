lib/netcore/lpm.ml: Ipv4 List Option Prefix
