lib/netcore/addressing.mli: Ipv4 Prefix
