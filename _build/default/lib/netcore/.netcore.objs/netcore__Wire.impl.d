lib/netcore/wire.ml: Buffer Char Ipv4 Ipvn Packet Printf String
