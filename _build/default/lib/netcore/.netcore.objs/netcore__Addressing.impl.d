lib/netcore/addressing.ml: Ipv4 Prefix
