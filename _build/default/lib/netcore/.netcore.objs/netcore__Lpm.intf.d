lib/netcore/lpm.mli: Ipv4 Prefix
