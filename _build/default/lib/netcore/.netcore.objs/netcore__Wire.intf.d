lib/netcore/wire.mli: Packet
