lib/netcore/packet.ml: Format Ipv4 Ipvn
