lib/netcore/ipv4.ml: Format Hashtbl Int Int32 Printf String
