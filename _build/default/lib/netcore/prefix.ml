type t = { network : Ipv4.t; length : int }

let mask_of_length len =
  if len = 0 then 0 else 0xFFFF_FFFF lsl (32 - len) land 0xFFFF_FFFF

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of range";
  let net = Ipv4.to_int addr land mask_of_length len in
  { network = Ipv4.of_int net; length = len }

let network p = p.network
let length p = p.length

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> None
  | Some i -> (
      let addr = String.sub s 0 i in
      let len = String.sub s (i + 1) (String.length s - i - 1) in
      match (Ipv4.of_string_opt addr, int_of_string_opt len) with
      | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
      | _ -> None)

let of_string s =
  match of_string_opt s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.network) p.length
let pp fmt p = Format.pp_print_string fmt (to_string p)

let compare a b =
  match Ipv4.compare a.network b.network with
  | 0 -> Int.compare a.length b.length
  | c -> c

let equal a b = compare a b = 0

let mem addr p =
  Ipv4.to_int addr land mask_of_length p.length = Ipv4.to_int p.network

let subsumes outer inner =
  outer.length <= inner.length && mem inner.network outer

let split p =
  if p.length = 32 then invalid_arg "Prefix.split: /32 cannot be split";
  let len = p.length + 1 in
  let lo = { network = p.network; length = len } in
  let hi_net = Ipv4.to_int p.network lor (1 lsl (32 - len)) in
  (lo, { network = Ipv4.of_int hi_net; length = len })

let size p = 1 lsl (32 - p.length)

let host p i =
  if i < 0 || i >= size p then invalid_arg "Prefix.host: index out of range";
  Ipv4.add p.network i

let global_routability_limit = 22
let is_globally_routable p = p.length <= global_routability_limit
