module Internet = Topology.Internet
module Prefix = Netcore.Prefix

type anycast_decision =
  | Deliver
  | Toward of { member : int; next_hop : int; metric : float }

type t = {
  inet : Internet.t;
  dom : int;
  router_ids : int array;  (* global ids, domain order *)
  spts : Spt.t array;  (* indexed like router_ids, filtered to the domain *)
  members : (Prefix.t, int list ref) Hashtbl.t;  (* group -> global ids *)
}

let domain t = t.dom
let routers t = Array.to_list t.router_ids

let in_domain t rid =
  rid >= 0
  && rid < Internet.num_routers t.inet
  && (Internet.router t.inet rid).rdomain = t.dom

let local_index t rid =
  (* router_ids are contiguous in construction order; rindex is the
     offset *)
  (Internet.router t.inet rid).rindex

let compute inet ~domain =
  let d = Internet.domain inet domain in
  let allow rid = (Internet.router inet rid).rdomain = domain in
  let spts =
    Array.map (fun rid -> Spt.dijkstra_filtered inet.graph ~src:rid ~allow) d.router_ids
  in
  {
    inet;
    dom = domain;
    router_ids = d.router_ids;
    spts;
    members = Hashtbl.create 4;
  }

let advertise_anycast t ~group ~member =
  if not (in_domain t member) then
    invalid_arg "Linkstate.advertise_anycast: router not in domain";
  let cell =
    match Hashtbl.find_opt t.members group with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace t.members group c;
        c
  in
  if not (List.mem member !cell) then cell := member :: !cell

let withdraw_anycast t ~group ~member =
  match Hashtbl.find_opt t.members group with
  | None -> ()
  | Some c ->
      c := List.filter (fun m -> m <> member) !c;
      if !c = [] then Hashtbl.remove t.members group

let distance t ~src ~dst =
  if not (in_domain t src && in_domain t dst) then infinity
  else Spt.distance t.spts.(local_index t src) dst

let next_hop t ~src ~dst =
  if not (in_domain t src && in_domain t dst) then None
  else Spt.next_hop t.spts.(local_index t src) dst

let anycast_members t ~group =
  match Hashtbl.find_opt t.members group with
  | None -> []
  | Some c -> List.sort Int.compare !c

let groups t =
  Hashtbl.fold (fun g _ acc -> g :: acc) t.members []
  |> List.sort Prefix.compare

let anycast_route t ~src ~group =
  if not (in_domain t src) then None
  else
    match anycast_members t ~group with
    | [] -> None
    | members ->
        if List.mem src members then Some Deliver
        else begin
          let spt = t.spts.(local_index t src) in
          let best =
            List.fold_left
              (fun acc m ->
                let d = Spt.distance spt m in
                match acc with
                | Some (_, bd) when bd <= d -> acc
                | _ -> if d < infinity then Some (m, d) else acc)
              None members
          in
          match best with
          | None -> None
          | Some (m, d) -> (
              match Spt.next_hop spt m with
              | Some nh -> Some (Toward { member = m; next_hop = nh; metric = d })
              | None -> None)
        end

let anycast_route_pseudo_node t ~src ~group =
  if not (in_domain t src) then None
  else
    match anycast_members t ~group with
    | [] -> None
    | members ->
        if List.mem src members then Some Deliver
        else begin
          (* materialize the pseudo-node: copy the domain subgraph,
             append one node, hang it off every member with an equal
             high cost, and run SPF from [src] *)
          let n = Topology.Graph.n t.inet.Internet.graph in
          let g = Topology.Graph.create ~n:(n + 1) in
          Array.iter
            (fun rid ->
              Topology.Graph.iter_neighbors t.inet.Internet.graph rid
                (fun nb w ->
                  if
                    rid < nb
                    && (Internet.router t.inet nb).Internet.rdomain = t.dom
                  then Topology.Graph.add_edge g rid nb w))
            t.router_ids;
          let high_cost = 1.0e6 in
          List.iter
            (fun m -> Topology.Graph.add_edge g m n high_cost)
            members;
          let allow v =
            v = n || (Internet.router t.inet v).Internet.rdomain = t.dom
          in
          let spt = Spt.dijkstra_filtered g ~src ~allow in
          match Spt.path spt n with
          | None -> None
          | Some nodes -> (
              (* the hop before the pseudo-node is the chosen member *)
              match List.rev nodes with
              | _pseudo :: member :: _ -> (
                  let metric = Spt.distance spt n -. high_cost in
                  match Spt.next_hop spt n with
                  | Some nh when nh <> n ->
                      Some (Toward { member; next_hop = nh; metric })
                  | _ ->
                      (* src is adjacent to the pseudo-node only when it
                         is a member, handled above; next hop toward the
                         pseudo-node is the first real hop otherwise *)
                      Some (Toward { member; next_hop = member; metric }))
              | _ -> None)
  end

let flood_rounds t ~origin =
  if not (in_domain t origin) then
    invalid_arg "Linkstate.flood_rounds: router not in domain";
  let allow rid = (Internet.router t.inet rid).rdomain = t.dom in
  Spt.eccentricity t.inet.graph ~src:origin ~allow
