module Prefix = Netcore.Prefix

type flavor = Linkstate_igp | Distvec_igp

type state = Ls of Linkstate.t | Dv of Distvec.t

type t = {
  state : state;
  dom : int;
  live_groups : (Prefix.t, int ref) Hashtbl.t;  (* group -> member count *)
}

type anycast_decision = {
  deliver : bool;
  next_hop : int;
  metric : float;
  member : int option;
}

let compute inet ~domain ~flavor =
  let state =
    match flavor with
    | Linkstate_igp -> Ls (Linkstate.compute inet ~domain)
    | Distvec_igp ->
        let dv = Distvec.create inet ~domain in
        ignore (Distvec.converge dv);
        Dv dv
  in
  { state; dom = domain; live_groups = Hashtbl.create 4 }

let flavor t = match t.state with Ls _ -> Linkstate_igp | Dv _ -> Distvec_igp
let domain t = t.dom
let members_known t = match t.state with Ls _ -> true | Dv _ -> false

let distance t ~src ~dst =
  match t.state with
  | Ls ls -> Linkstate.distance ls ~src ~dst
  | Dv dv -> Distvec.distance dv ~src ~dst

let next_hop t ~src ~dst =
  match t.state with
  | Ls ls -> Linkstate.next_hop ls ~src ~dst
  | Dv dv -> Distvec.next_hop dv ~src ~dst

let bump t group delta =
  let cell =
    match Hashtbl.find_opt t.live_groups group with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace t.live_groups group c;
        c
  in
  cell := !cell + delta;
  if !cell <= 0 then Hashtbl.remove t.live_groups group

let advertise_anycast t ~group ~member =
  (match t.state with
  | Ls ls ->
      (* Linkstate dedups members itself; only count fresh ones *)
      if not (List.mem member (Linkstate.anycast_members ls ~group)) then
        bump t group 1;
      Linkstate.advertise_anycast ls ~group ~member
  | Dv dv ->
      bump t group 1;
      Distvec.advertise_anycast dv ~group ~member;
      ignore (Distvec.converge dv))

let withdraw_anycast t ~group ~member =
  (match t.state with
  | Ls ls ->
      if List.mem member (Linkstate.anycast_members ls ~group) then
        bump t group (-1);
      Linkstate.withdraw_anycast ls ~group ~member
  | Dv dv ->
      bump t group (-1);
      Distvec.withdraw_anycast dv ~group ~member;
      ignore (Distvec.converge dv))

let groups t =
  Hashtbl.fold (fun g _ acc -> g :: acc) t.live_groups []
  |> List.sort Prefix.compare

let anycast_route t ~src ~group =
  match t.state with
  | Ls ls -> (
      match Linkstate.anycast_route ls ~src ~group with
      | Some Linkstate.Deliver ->
          Some { deliver = true; next_hop = src; metric = 0.0; member = Some src }
      | Some (Linkstate.Toward { member; next_hop; metric }) ->
          Some { deliver = false; next_hop; metric; member = Some member }
      | None -> None)
  | Dv dv -> (
      match Distvec.anycast_route dv ~src ~group with
      | Some Distvec.Deliver ->
          Some { deliver = true; next_hop = src; metric = 0.0; member = Some src }
      | Some (Distvec.Toward { next_hop; metric }) ->
          Some { deliver = false; next_hop; metric; member = None }
      | None -> None)

let anycast_members t ~group =
  match t.state with
  | Ls ls -> Some (Linkstate.anycast_members ls ~group)
  | Dv _ -> None

let as_linkstate t = match t.state with Ls ls -> Some ls | Dv _ -> None
