module Graph = Topology.Graph

type t = { src : int; dist : float array; parent : int array }

(* A simple binary min-heap of (priority, node); decrease-key is done by
   pushing duplicates and skipping settled nodes on pop. *)
module Heap = struct
  type t = {
    mutable prio : float array;
    mutable node : int array;
    mutable size : int;
  }

  let create () = { prio = Array.make 16 0.0; node = Array.make 16 0; size = 0 }

  let grow h =
    let cap = Array.length h.prio in
    let prio = Array.make (2 * cap) 0.0 in
    let node = Array.make (2 * cap) 0 in
    Array.blit h.prio 0 prio 0 h.size;
    Array.blit h.node 0 node 0 h.size;
    h.prio <- prio;
    h.node <- node

  let swap h i j =
    let p = h.prio.(i) and v = h.node.(i) in
    h.prio.(i) <- h.prio.(j);
    h.node.(i) <- h.node.(j);
    h.prio.(j) <- p;
    h.node.(j) <- v

  let push h p v =
    if h.size = Array.length h.prio then grow h;
    h.prio.(h.size) <- p;
    h.node.(h.size) <- v;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && h.prio.((!i - 1) / 2) > h.prio.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let p = h.prio.(0) and v = h.node.(0) in
      h.size <- h.size - 1;
      h.prio.(0) <- h.prio.(h.size);
      h.node.(0) <- h.node.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && h.prio.(l) < h.prio.(!smallest) then smallest := l;
        if r < h.size && h.prio.(r) < h.prio.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some (p, v)
    end
end

let dijkstra_filtered g ~src ~allow =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          Graph.iter_neighbors g u (fun v w ->
              if (not settled.(v)) && (allow v || v = src) then begin
                let nd = d +. w in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  parent.(v) <- u;
                  Heap.push heap nd v
                end
              end)
        end;
        loop ()
  in
  loop ();
  { src; dist; parent }

let dijkstra g ~src = dijkstra_filtered g ~src ~allow:(fun _ -> true)
let distance t v = t.dist.(v)
let reachable t v = t.dist.(v) < infinity

let path t v =
  if not (reachable t v) then None
  else begin
    let rec go v acc = if v = t.src then t.src :: acc else go t.parent.(v) (v :: acc) in
    Some (go v [])
  end

let next_hop t v =
  if v = t.src || not (reachable t v) then None
  else begin
    let rec go v = if t.parent.(v) = t.src then v else go t.parent.(v) in
    Some (go v)
  end

let bfs_levels g ~src ~allow =
  let n = Graph.n g in
  let level = Array.make n (-1) in
  let q = Queue.create () in
  level.(src) <- 0;
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_neighbors g u (fun v _ ->
        if level.(v) < 0 && allow v then begin
          level.(v) <- level.(u) + 1;
          Queue.add v q
        end)
  done;
  level

let hops g ~src ~dst =
  let level = bfs_levels g ~src ~allow:(fun _ -> true) in
  if level.(dst) < 0 then None else Some level.(dst)

let eccentricity g ~src ~allow =
  let level = bfs_levels g ~src ~allow in
  Array.fold_left max 0 level
