(** OSPF-like intra-domain link-state routing with anycast support.

    Every router floods its links; each router then computes shortest
    paths over the common link-state database. Anycast follows the
    paper's §3.2 rule: an IPvN router additionally advertises its
    anycast address (modelled as membership in an anycast group), so
    every router can both route toward the closest member {e and}
    identify the full member set — the property vN-Bone construction
    relies on. *)

type t
(** Link-state routing state for one domain. Mutable: anycast
    membership can be advertised and withdrawn. *)

type anycast_decision =
  | Deliver  (** the querying router is itself a group member *)
  | Toward of { member : int; next_hop : int; metric : float }
      (** forward to [next_hop] on the shortest path to the closest
          member *)

val compute : Topology.Internet.t -> domain:int -> t
(** Build the LSDB and all shortest-path trees for the routers of one
    domain. Routes never leave the domain. *)

val domain : t -> int

val advertise_anycast : t -> group:Netcore.Prefix.t -> member:int -> unit
(** [member] (a global router id in this domain) starts accepting
    packets for [group].
    @raise Invalid_argument if the router is not in this domain. *)

val withdraw_anycast : t -> group:Netcore.Prefix.t -> member:int -> unit

val distance : t -> src:int -> dst:int -> float
(** Metric of the shortest intra-domain path; [infinity] when either
    router is outside the domain. *)

val next_hop : t -> src:int -> dst:int -> int option
(** First hop of the shortest path between two routers of the domain. *)

val anycast_route : t -> src:int -> group:Netcore.Prefix.t -> anycast_decision option
(** Routing decision for an anycast-addressed packet at [src]; [None]
    when the group has no member in this domain. Ties between members
    break toward the lower router id, matching deterministic OSPF
    tie-breaking. *)

val anycast_route_pseudo_node : t -> src:int -> group:Netcore.Prefix.t -> anycast_decision option
(** The same decision computed by the paper's {e other} LS encoding:
    "IPvN routers also advertise a high-cost 'link' to the
    corresponding anycast address" — the group becomes a pseudo-node
    hanging off every member by an identical high-cost edge, and
    routing toward it lands at the metric-closest member. Provably
    equal to {!anycast_route} (asserted by the test-suite); provided
    to document the equivalence of the two §3.2 encodings. *)

val anycast_members : t -> group:Netcore.Prefix.t -> int list
(** The member set, as visible in the LSDB (sorted). This is the
    "IPvN routers can identify one another" property of link-state
    anycast that intra-domain vN-Bone construction uses. *)

val groups : t -> Netcore.Prefix.t list
(** All groups with at least one member. *)

val flood_rounds : t -> origin:int -> int
(** Rounds for an LSA originated at [origin] to reach every router of
    the domain (its eccentricity in hops): the link-state convergence
    cost after an anycast membership change. *)

val routers : t -> int list
(** Global ids of the domain's routers. *)
