(** A unified view over the two intra-domain routing families.

    The paper requires its mechanisms to work whether a domain runs a
    link-state or a distance-vector IGP (§3.2), with one capability
    difference that drives vN-Bone construction: link-state reveals the
    anycast member set, plain distance-vector does not (footnote 2).
    This wrapper lets the forwarding plane, the anycast service and the
    vN-Bone treat domains uniformly while preserving that difference. *)

type flavor = Linkstate_igp | Distvec_igp

type t

type anycast_decision = {
  deliver : bool;  (** the querying router is itself a member *)
  next_hop : int;  (** meaningful when not delivering *)
  metric : float;
  member : int option;
      (** the chosen member — [None] under distance-vector, which only
          knows distances *)
}

val compute : Topology.Internet.t -> domain:int -> flavor:flavor -> t
(** Build (and, for distance-vector, converge) the domain's routing
    state. *)

val flavor : t -> flavor
val domain : t -> int

val members_known : t -> bool
(** True exactly for link-state: members can enumerate one another. *)

val distance : t -> src:int -> dst:int -> float
val next_hop : t -> src:int -> dst:int -> int option

val advertise_anycast : t -> group:Netcore.Prefix.t -> member:int -> unit
(** Membership change; distance-vector re-converges internally. *)

val withdraw_anycast : t -> group:Netcore.Prefix.t -> member:int -> unit

val groups : t -> Netcore.Prefix.t list
(** Groups with at least one member in this domain (tracked for both
    flavors — any router knows which anycast prefixes are locally
    live, it just may not know {e who} serves them). *)

val anycast_route : t -> src:int -> group:Netcore.Prefix.t -> anycast_decision option

val anycast_members : t -> group:Netcore.Prefix.t -> int list option
(** [Some members] under link-state; [None] under distance-vector —
    the capability gap that forces anycast-walk vN-Bone discovery. *)

val as_linkstate : t -> Linkstate.t option
(** The underlying link-state view when that is the flavor. *)
