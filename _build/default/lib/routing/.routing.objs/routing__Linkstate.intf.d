lib/routing/linkstate.mli: Netcore Topology
