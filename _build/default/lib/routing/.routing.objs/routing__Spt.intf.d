lib/routing/spt.mli: Topology
