lib/routing/spt.ml: Array Queue Topology
