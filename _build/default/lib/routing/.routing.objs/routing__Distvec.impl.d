lib/routing/distvec.ml: Array List Netcore Option Topology
