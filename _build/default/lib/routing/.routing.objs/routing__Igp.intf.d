lib/routing/igp.mli: Linkstate Netcore Topology
