lib/routing/distvec.mli: Netcore Topology
