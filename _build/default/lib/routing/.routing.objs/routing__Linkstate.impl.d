lib/routing/linkstate.ml: Array Hashtbl Int List Netcore Spt Topology
