lib/routing/igp.ml: Distvec Hashtbl Linkstate List Netcore
