lib/simcore/bgpdyn.mli: Engine Interdomain Netcore Topology
