lib/simcore/forward.ml: Array Interdomain List Netcore Routing Topology
