lib/simcore/bgpdyn.ml: Array Engine Float Hashtbl Interdomain List Netcore Option Printf String Topology
