lib/simcore/forward.mli: Interdomain Netcore Routing Topology
