lib/simcore/lsproto.mli: Engine Netcore Routing Topology
