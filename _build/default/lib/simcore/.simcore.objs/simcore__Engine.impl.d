lib/simcore/engine.ml: Array
