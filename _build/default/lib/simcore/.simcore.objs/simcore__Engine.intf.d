lib/simcore/engine.mli:
