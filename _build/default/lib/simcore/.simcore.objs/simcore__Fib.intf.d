lib/simcore/fib.mli: Forward Netcore
