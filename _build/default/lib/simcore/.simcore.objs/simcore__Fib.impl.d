lib/simcore/fib.ml: Array Forward Interdomain List Netcore Printf Routing Topology
