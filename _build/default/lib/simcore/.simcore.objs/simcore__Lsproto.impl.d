lib/simcore/lsproto.ml: Array Engine Hashtbl Int List Netcore Routing Topology
