module Internet = Topology.Internet
module Forward = Simcore.Forward
module Service = Anycast.Service
module Packet = Netcore.Packet
module Ipvn = Netcore.Ipvn
module Ipv4 = Netcore.Ipv4

type leg =
  | Access of Forward.trace
  | Vn of { from_router : int; to_router : int; underlay : Forward.trace }
  | Exit of Forward.trace

type failure = No_ingress | Vn_unreachable | Exit_failed | Vttl_expired

type journey = {
  legs : leg list;
  ingress : int option;
  egress : int option;
  packet : Packet.vn;
  result : (unit, failure) Stdlib.result;
}

let vn_address_of_endhost service ~endhost =
  let env = Service.env service in
  let h = Internet.endhost env.Forward.inet endhost in
  let version = Service.version service in
  if Service.is_participant service ~domain:h.Internet.hdomain then
    Ipvn.provider ~version ~domain:h.Internet.hdomain ~host:h.Internet.hindex
  else Ipvn.self_of_ipv4 ~version h.Internet.haddr

let leg_trace = function Access t | Exit t -> t | Vn { underlay; _ } -> underlay

let leg_hops leg = Forward.hop_count (leg_trace leg)

let total_hops j = List.fold_left (fun n l -> n + leg_hops l) 0 j.legs

let vn_hops j =
  List.fold_left
    (fun n l -> match l with Vn _ -> n + leg_hops l | Access _ | Exit _ -> n)
    0 j.legs

let access_hops j =
  List.fold_left
    (fun n l -> match l with Access _ -> n + leg_hops l | Vn _ | Exit _ -> n)
    0 j.legs

let exit_hops j =
  List.fold_left
    (fun n l -> match l with Exit _ -> n + leg_hops l | Vn _ | Access _ -> n)
    0 j.legs

let vn_fraction j =
  let total = total_hops j in
  if total = 0 then 0.0 else float_of_int (vn_hops j) /. float_of_int total

let last_vn_router j =
  match j.egress with Some e -> Some e | None -> j.ingress

let delivered j = Result.is_ok j.result

let path_metric router j =
  let env = Service.env (Fabric.service (Router.fabric router)) in
  List.fold_left (fun acc l -> acc +. Forward.path_metric env (leg_trace l)) 0.0 j.legs

let send router ~strategy ~src ~dst ~payload =
  let fabric = Router.fabric router in
  let service = Fabric.service fabric in
  let env = Service.env service in
  let inet = env.Forward.inet in
  let hdst = Internet.endhost inet dst in
  let version = Service.version service in
  let vsrc = vn_address_of_endhost service ~endhost:src in
  let vdst = vn_address_of_endhost service ~endhost:dst in
  let packet =
    Packet.make_vn ~version ~vsrc ~vdst ~dest_v4_hint:hdst.Internet.haddr payload
  in
  let finish ?ingress ?egress legs result =
    { legs = List.rev legs; ingress; egress; packet; result }
  in
  (* 1. access leg: encapsulate toward the anycast address *)
  let hsrc = Internet.endhost inet src in
  let access_packet =
    Packet.encapsulate ~src:hsrc.Internet.haddr ~dst:(Service.address service)
      packet
  in
  let access_trace = Forward.send_from_endhost env access_packet ~endhost:src in
  match access_trace.Forward.outcome with
  | Forward.Endhost_accepted _ | Forward.Dropped _ ->
      finish [ Access access_trace ] (Error No_ingress)
  | Forward.Router_accepted ingress -> (
      let legs = [ Access access_trace ] in
      (* 2. pick the egress *)
      let egress =
        if Service.is_participant service ~domain:hdst.Internet.hdomain then
          Router.egress_to_vn_domain router ~ingress ~domain:hdst.Internet.hdomain
        else Router.egress_for router ~strategy ~ingress ~dest:hdst.Internet.haddr
      in
      match egress with
      | None -> finish ~ingress legs (Error Vn_unreachable)
      | Some egress -> (
          (* 3. vN-Bone legs *)
          match Fabric.vn_path fabric ingress egress with
          | None -> finish ~ingress ~egress legs (Error Vn_unreachable)
          | Some vn_nodes ->
              let rec tunnel_legs legs vttl = function
                | a :: (b :: _ as rest) ->
                    if vttl <= 1 then Error (legs, Vttl_expired)
                    else begin
                      let dst_addr = (Internet.router inet b).Internet.raddr in
                      let p =
                        Packet.encapsulate
                          ~src:(Internet.router inet a).Internet.raddr
                          ~dst:dst_addr packet
                      in
                      let underlay = Forward.forward env p ~entry:a in
                      if Forward.delivered underlay then
                        tunnel_legs
                          (Vn { from_router = a; to_router = b; underlay } :: legs)
                          (vttl - 1) rest
                      else Error (legs, Vn_unreachable)
                    end
                | [ _ ] | [] -> Ok legs
              in
              (match tunnel_legs legs packet.Packet.vttl vn_nodes with
              | Error (legs, f) -> finish ~ingress ~egress legs (Error f)
              | Ok legs ->
                  (* 4. exit leg over IPv(N-1) *)
                  let exit_packet =
                    Packet.encapsulate
                      ~src:(Internet.router inet egress).Internet.raddr
                      ~dst:hdst.Internet.haddr packet
                  in
                  let exit_trace = Forward.forward env exit_packet ~entry:egress in
                  let legs = Exit exit_trace :: legs in
                  (match exit_trace.Forward.outcome with
                  | Forward.Endhost_accepted h when h = dst ->
                      finish ~ingress ~egress legs (Ok ())
                  | Forward.Endhost_accepted _ | Forward.Router_accepted _
                  | Forward.Dropped _ ->
                      finish ~ingress ~egress legs (Error Exit_failed)))))

let failure_to_string = function
  | No_ingress -> "anycast redirection failed (no ingress)"
  | Vn_unreachable -> "no vN-Bone path to the chosen egress"
  | Exit_failed -> "the IPv(N-1) exit leg did not deliver"
  | Vttl_expired -> "vN hop budget exhausted"

let pp_journey inet fmt j =
  let domain_of r = (Internet.router inet r).Internet.rdomain in
  let pp_trace fmt (t : Forward.trace) =
    Format.fprintf fmt "%s"
      (String.concat " > "
         (List.map
            (fun r -> Printf.sprintf "%d(d%d)" r (domain_of r))
            t.Forward.hops))
  in
  Format.fprintf fmt "IPv%d %a -> %a@."
    j.packet.Packet.version Ipvn.pp j.packet.Packet.vsrc Ipvn.pp
    j.packet.Packet.vdst;
  List.iter
    (fun leg ->
      match leg with
      | Access t ->
          Format.fprintf fmt "  access (anycast):  %a@." pp_trace t
      | Vn { from_router; to_router; underlay } ->
          Format.fprintf fmt "  vN tunnel %d->%d:   %a@." from_router to_router
            pp_trace underlay
      | Exit t -> Format.fprintf fmt "  exit (IPv(N-1)):   %a@." pp_trace t)
    j.legs;
  match j.result with
  | Ok () ->
      Format.fprintf fmt "  delivered: %d hops (%d on the vN-Bone)@."
        (total_hops j) (vn_hops j)
  | Error f -> Format.fprintf fmt "  FAILED: %s@." (failure_to_string f)
