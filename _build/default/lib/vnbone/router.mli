(** Routing over the vN-Bone (paper §3.3.2), including egress selection
    for destinations in non-IPvN domains.

    Routing between IPvN routers is shortest-path over the vN-Bone
    ("BGPvN" — the paper assumes no specific algorithm). The
    interesting question is picking the {e egress} router for a
    destination whose domain has not deployed IPvN; the strategies
    mirror the paper's walk-through:

    - {!Exit_early}: "simply exit the vN-Bone and forward the packet
      directly to the destination's IPv(N-1) address" from the current
      router — fails to exploit IPvN deployment (Fig 3, path through X).
    - {!Bgp_aware}: IPvN border routers acquire BGPv(N-1) tables and
      exit at the member whose domain is closest (in AS-path terms) to
      the destination's domain (Fig 3, path through Y).
    - {!Proxy}: advertising-by-proxy (Fig 4) — members advertise their
      IPv(N-1) distance to non-IPvN destinations into BGPvN, and the
      combined BGPvN cost (vN-Bone hops, discounted because deployers
      prefer traffic on IPvN — assumption A4 — plus the advertised
      AS-level exit distance) is minimized.
    - {!Host_advertised}: the paper's declined-but-appealing §3.3.2
      alternative — "have the IPvN client use anycast to locate a
      closeby IPvN router and have that router advertise the client's
      temporary IPvN address". The endhost must {!register_endhost}
      first; the advertising member becomes its egress. This gives the
      best exits, but introduces exactly the fate-sharing the paper
      worries about: if the advertiser leaves the deployment, the
      registered route goes stale and journeys fail until the host
      re-registers (exercised in the E9 experiment). Unregistered
      destinations fall back to exit-early. *)

type strategy = Exit_early | Bgp_aware | Proxy | Host_advertised

val strategy_to_string : strategy -> string

type mode =
  | Oracle
      (** centralized shortest-path computation over the fabric — fast
          and convenient for experiments *)
  | Protocol
      (** route on the tables of a real distributed {!Bgpvn} instance;
          the tests assert this agrees with the oracle *)

type t

val create : ?proxy_alpha:float -> ?mode:mode -> Fabric.t -> t
(** [proxy_alpha] (default 0.5) is the weight of one vN-Bone hop
    relative to one IPv(N-1) AS hop in the {!Proxy} combined metric;
    values < 1 encode the deployers' preference for carrying traffic
    on the vN-Bone. [mode] (default [Oracle]) selects how BGPvN routes
    are obtained. *)

val mode : t -> mode

val protocol : t -> Bgpvn.t
(** The underlying BGPvN speaker state (lazily created and converged;
    available in either mode for inspection). *)

val fabric : t -> Fabric.t

val egress_to_vn_domain : t -> ingress:int -> domain:int -> int option
(** The member of a participant destination domain that BGPvN routes
    toward from [ingress] (cheapest on the vN-Bone); [None] when the
    domain has no reachable member. *)

val egress_for : t -> strategy:strategy -> ingress:int -> dest:Netcore.Ipv4.t -> int option
(** The member where a packet for [dest] (an address in a non-IPvN
    domain) should leave the vN-Bone, per the strategy. Always returns
    [ingress] for {!Exit_early}; [None] only when [ingress] is not a
    member. *)

val exit_cost : t -> member:int -> dest:Netcore.Ipv4.t -> float
(** Metric of the IPv(N-1) path from a member to the destination
    address ([infinity] when undeliverable) — what a proxy
    advertisement for [dest] by [member] would carry. *)

val domain_path_length : t -> member:int -> dest:Netcore.Ipv4.t -> int option
(** Length of the BGPv(N-1) AS-level path from the member's domain to
    the destination's covering prefix — what a BGPv(N-1)-aware border
    router compares (Fig 3). *)

(** {1 Host-advertised registrations (§3.3.2)} *)

val register_endhost : t -> endhost:int -> int option
(** The endhost anycasts to find its closest IPvN router, which then
    advertises the host's temporary address into BGPvN. Returns the
    advertising member ([None] when anycast resolution fails).
    Re-registration overwrites the previous advertiser — the paper's
    "endhost would periodically repeat this process in order to adapt
    to spread in deployment". *)

val registered_advertiser : t -> endhost:int -> int option
(** The member currently advertising this endhost, if any. The entry
    may be stale: the member may have left the deployment since. *)

val deregister_endhost : t -> endhost:int -> unit

val registration_stale : t -> endhost:int -> bool
(** True when a registration exists but its advertiser is no longer a
    vN-Bone member — the fate-sharing hazard. *)
