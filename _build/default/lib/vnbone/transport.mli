(** End-to-end IPvN transport between endhosts under partial
    deployment — the paper's full universal-access data path:

    + the source endhost addresses an IPvN packet (self-assigned
      address when its own domain has not deployed) and encapsulates
      it toward the well-known anycast address;
    + anycast redirection steers it to the closest IPvN ingress;
    + BGPvN carries it across the vN-Bone to the chosen egress;
    + the egress tunnels it over IPv(N-1) to the destination.

    A {!journey} records every leg with its underlying IPv4 trace, so
    experiments can count how much of the path ran on the vN-Bone. *)

type leg =
  | Access of Simcore.Forward.trace
      (** source endhost → ingress member, via anycast *)
  | Vn of { from_router : int; to_router : int; underlay : Simcore.Forward.trace }
      (** one vN-Bone tunnel hop with its underlay path *)
  | Exit of Simcore.Forward.trace
      (** egress member → destination endhost, over IPv(N-1) *)

type failure =
  | No_ingress  (** anycast redirection failed: universal access broken *)
  | Vn_unreachable  (** no vN-Bone path from ingress to chosen egress *)
  | Exit_failed  (** the final IPv(N-1) leg did not deliver *)
  | Vttl_expired

type journey = {
  legs : leg list;
  ingress : int option;
  egress : int option;
  packet : Netcore.Packet.vn;
  result : (unit, failure) Stdlib.result;
}

val vn_address_of_endhost : Anycast.Service.t -> endhost:int -> Netcore.Ipvn.t
(** Provider-assigned when the endhost's domain participates,
    self-assigned (paper §3.3.2 / RFC 3056) otherwise. *)

val send :
  Router.t ->
  strategy:Router.strategy ->
  src:int ->
  dst:int ->
  payload:string ->
  journey
(** Send an IPvN packet between two endhosts (ids). The strategy
    governs egress selection when the destination domain has not
    deployed IPvN; destinations in participant domains always use
    BGPvN's own routes. *)

val delivered : journey -> bool
val total_hops : journey -> int
val vn_hops : journey -> int
(** Underlay hops spent inside vN-Bone legs. *)

val access_hops : journey -> int
val exit_hops : journey -> int

val vn_fraction : journey -> float
(** [vn_hops / total_hops]; 0 when the journey has no hops. *)

val last_vn_router : journey -> int option
(** The last IPvN router that handled the packet (Fig 3's "last IPvN
    hop"). *)

val path_metric : Router.t -> journey -> float
(** Total underlay metric across all legs. *)

val pp_journey : Topology.Internet.t -> Format.formatter -> journey -> unit
(** Leg-by-leg rendering — addresses, per-leg router paths, the
    failure if any. What [evolvenet sim --verbose] prints. *)
