type vn_action = Vn_local | Vn_next of int

type t = {
  fabric : Fabric.t;
  tables : (Bgpvn.dest, vn_action) Hashtbl.t array;  (* per fabric node *)
}

let compile speaker =
  let fabric = Bgpvn.fabric speaker in
  let members = Fabric.members fabric in
  let tables =
    Array.map
      (fun member ->
        let table = Hashtbl.create 16 in
        List.iter
          (fun (r : Bgpvn.route) ->
            let action =
              match r.Bgpvn.next with
              | None -> Vn_local
              | Some nh -> Vn_next nh
            in
            Hashtbl.replace table r.Bgpvn.rdest action)
          (Bgpvn.routes speaker ~at:member);
        table)
      members
  in
  { fabric; tables }

let node t at =
  match Fabric.index_of t.fabric at with
  | Some n -> n
  | None -> invalid_arg "Vn_fib: router is not a vN-Bone member"

let lookup t ~at dest = Hashtbl.find_opt t.tables.(node t at) dest
let size t ~at = Hashtbl.length t.tables.(node t at)

let walk t ~from_ dest =
  let limit = Array.length (Fabric.members t.fabric) + 1 in
  let rec go at acc steps =
    if steps > limit then Error "forwarding loop"
    else
      match lookup t ~at dest with
      | None -> Error "no route at member"
      | Some Vn_local -> Ok (List.rev (at :: acc))
      | Some (Vn_next nh) ->
          if List.mem nh acc then Error "forwarding loop"
          else go nh (at :: acc) (steps + 1)
  in
  go from_ [] 0
