lib/vnbone/transport.ml: Anycast Fabric Format List Netcore Printf Result Router Simcore Stdlib String Topology
