lib/vnbone/bgpvn.ml: Anycast Array Fabric Hashtbl List Netcore Simcore Topology
