lib/vnbone/router.mli: Bgpvn Fabric Netcore
