lib/vnbone/fabric.mli: Anycast Topology
