lib/vnbone/transport.mli: Anycast Format Netcore Router Simcore Stdlib Topology
