lib/vnbone/fabric.ml: Anycast Array Float Hashtbl Int List Netcore Option Queue Routing Simcore Topology
