lib/vnbone/vn_fib.ml: Array Bgpvn Fabric Hashtbl List
