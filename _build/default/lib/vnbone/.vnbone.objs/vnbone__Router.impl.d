lib/vnbone/router.ml: Anycast Array Bgpvn Fabric Hashtbl Interdomain List Netcore Option Simcore Topology
