lib/vnbone/vn_fib.mli: Bgpvn
