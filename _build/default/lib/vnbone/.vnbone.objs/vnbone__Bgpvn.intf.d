lib/vnbone/bgpvn.mli: Fabric Netcore
