lib/interdomain/bgp.mli: Netcore Topology
