lib/interdomain/bgp.ml: Array Hashtbl List Netcore Option Topology
