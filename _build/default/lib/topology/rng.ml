type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 63-bit rejection-free reduction; bias is negligible for our bounds *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound))

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. x /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t xs =
  let a = Array.of_list xs in
  shuffle t a;
  Array.to_list a

let sample t k xs =
  let a = Array.of_list xs in
  shuffle t a;
  let k = min k (Array.length a) in
  Array.to_list (Array.sub a 0 k)

let exponential t mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  (* inverse-CDF over the precomputed normalizer; n is small in our
     experiments so the linear scan is fine *)
  let total = ref 0.0 in
  for k = 1 to n do
    total := !total +. (1.0 /. Float.pow (float_of_int k) s)
  done;
  let u = float t !total in
  let rec go k acc =
    if k > n then n
    else
      let acc = acc +. (1.0 /. Float.pow (float_of_int k) s) in
      if u < acc then k else go (k + 1) acc
  in
  go 1 0.0
