type t = Customer | Peer | Provider

let invert = function
  | Customer -> Provider
  | Provider -> Customer
  | Peer -> Peer

let to_string = function
  | Customer -> "customer"
  | Peer -> "peer"
  | Provider -> "provider"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b

let export_allowed ~learned_from ~to_ =
  match (learned_from, to_) with
  | Customer, _ -> true (* customer routes go to everyone *)
  | (Peer | Provider), Customer -> true (* customers hear everything *)
  | (Peer | Provider), (Peer | Provider) -> false

let local_preference = function Customer -> 3 | Peer -> 2 | Provider -> 1
