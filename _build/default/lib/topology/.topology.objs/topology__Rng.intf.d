lib/topology/rng.mli:
