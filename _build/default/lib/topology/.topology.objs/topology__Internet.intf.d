lib/topology/internet.mli: Graph Netcore Relationship
