lib/topology/rng.ml: Array Float Int64 List
