lib/topology/internet.ml: Array Float Graph Hashtbl Int List Netcore Printf Relationship Rng
