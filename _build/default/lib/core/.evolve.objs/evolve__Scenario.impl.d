lib/core/scenario.ml: Anycast Array Format List Setup Simcore String Topology Vnbone
