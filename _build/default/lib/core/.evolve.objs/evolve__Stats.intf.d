lib/core/stats.mli:
