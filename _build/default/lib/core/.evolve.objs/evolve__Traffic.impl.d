lib/core/traffic.ml: Array Float List Topology
