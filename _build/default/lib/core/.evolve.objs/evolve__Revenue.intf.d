lib/core/revenue.mli: Topology Vnbone
