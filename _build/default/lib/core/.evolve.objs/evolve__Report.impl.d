lib/core/report.ml: Buffer Experiments Format Fun List Scenario Stats String Table
