lib/core/experiments.mli: Adoption Stats Topology
