lib/core/dot.mli: Topology Vnbone
