lib/core/stats.ml: Array Float List Printf
