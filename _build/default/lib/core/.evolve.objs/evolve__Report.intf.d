lib/core/report.mli:
