lib/core/adoption.ml: Array Float Fun List Topology
