lib/core/setup.ml: Anycast Array Simcore Topology Vnbone
