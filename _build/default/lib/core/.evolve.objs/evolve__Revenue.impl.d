lib/core/revenue.ml: Anycast Array List Simcore Topology Vnbone
