lib/core/table.mli:
