lib/core/experiments.ml: Adoption Anycast Array Float Fun Hashtbl Int64 Interdomain List Netcore Option Printf Queue Revenue Routing Setup Simcore Stats String Sys Table Topology Traffic Vnbone
