lib/core/traffic.mli: Topology
