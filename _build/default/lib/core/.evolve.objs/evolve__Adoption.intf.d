lib/core/adoption.mli:
