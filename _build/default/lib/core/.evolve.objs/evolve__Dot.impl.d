lib/core/dot.ml: Anycast Array Buffer Fun List Printf Simcore Topology Vnbone
