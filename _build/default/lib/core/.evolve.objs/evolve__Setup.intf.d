lib/core/setup.mli: Anycast Simcore Topology Vnbone
