module Internet = Topology.Internet
module Rng = Topology.Rng

type model = Uniform | Gravity of { zipf_s : float }

type t = {
  inet : Internet.t;
  weights : float array;  (* per domain, normalized *)
  rng : Rng.t;
}

let create (inet : Internet.t) model ~seed =
  let n = Internet.num_domains inet in
  let raw =
    match model with
    | Uniform ->
        (* weight by endhost count so uniform-over-hosts holds *)
        Array.init n (fun d ->
            float_of_int
              (Array.length (Internet.domain inet d).Internet.endhost_ids))
    | Gravity { zipf_s } ->
        Array.init n (fun d ->
            if Array.length (Internet.domain inet d).Internet.endhost_ids = 0
            then 0.0
            else 1.0 /. Float.pow (float_of_int (d + 1)) zipf_s)
  in
  let total = Array.fold_left ( +. ) 0.0 raw in
  if total <= 0.0 then invalid_arg "Traffic.create: no endhosts anywhere";
  { inet; weights = Array.map (fun w -> w /. total) raw; rng = Rng.create seed }

let population t d = t.weights.(d)

let population_share t doms =
  List.fold_left (fun acc d -> acc +. t.weights.(d)) 0.0 doms

let pick_domain t =
  let u = Rng.float t.rng 1.0 in
  let n = Array.length t.weights in
  let rec go d acc =
    if d >= n - 1 then n - 1
    else
      let acc = acc +. t.weights.(d) in
      if u < acc then d else go (d + 1) acc
  in
  go 0 0.0

let pick_endhost t =
  let rec try_domain () =
    let d = pick_domain t in
    let hosts = (Internet.domain t.inet d).Internet.endhost_ids in
    if Array.length hosts = 0 then try_domain ()
    else hosts.(Rng.int t.rng (Array.length hosts))
  in
  try_domain ()

let sample_flows t ~count =
  List.init count (fun _ ->
      let src = pick_endhost t in
      let rec dst () =
        let d = pick_endhost t in
        if d = src then dst () else d
      in
      (src, dst ()))
