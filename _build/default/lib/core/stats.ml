type summary = { n : int; mean : float; stddev : float; ci95 : float }

(* two-sided 95% critical values of Student's t, df = 1..30 *)
let t_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_critical_95 df =
  if df <= 0 then nan
  else if df <= Array.length t_table then t_table.(df - 1)
  else 1.96

let summarize = function
  | [] -> { n = 0; mean = nan; stddev = nan; ci95 = nan }
  | [ x ] -> { n = 1; mean = x; stddev = 0.0; ci95 = 0.0 }
  | xs ->
      let n = List.length xs in
      let fn = float_of_int n in
      let mean = List.fold_left ( +. ) 0.0 xs /. fn in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
        /. (fn -. 1.0)
      in
      let stddev = sqrt var in
      let ci95 = t_critical_95 (n - 1) *. stddev /. sqrt fn in
      { n; mean; stddev; ci95 }

let to_string s =
  if Float.is_nan s.mean then "-"
  else Printf.sprintf "%.2f +/- %.2f" s.mean s.ci95

let mean_of f xs = (summarize (List.map f xs)).mean
