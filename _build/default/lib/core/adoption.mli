(** Adoption dynamics: the virtuous cycle vs the chicken-and-egg.

    The paper argues (§2.1) that universal access converts deployment
    into a positive feedback loop — "a virtuous cycle between
    application demand and service demand" — while its absence
    reproduces IP Multicast's failure: application developers would not
    target a service reachable only by one ISP's customers, so ISPs saw
    no demand.

    The model: discrete time; each ISP holds a market share of the user
    population; applications become IPvN-aware with a hazard
    proportional to the {e reachable} user fraction; ISPs deploy with a
    hazard proportional to application availability times addressable
    demand (plus a revenue-attraction term for traffic pulled from
    non-deployers, assumption A4). Universal access determines the
    reachable fraction: with UA every user can reach IPvN as soon as a
    single ISP deploys; without UA only the deployers' own customers
    can. *)

type params = {
  num_isps : int;
  num_apps : int;
  universal_access : bool;
  app_hazard : float;  (** per-step adoption eagerness of developers *)
  app_viability_threshold : float;
      (** developers ignore IPvN until the reachable user fraction
          crosses this floor — the paper's "content providers were
          reluctant to develop multicast applications that could only
          service a fraction of Internet users" *)
  isp_hazard : float;  (** per-step adoption eagerness of ISPs *)
  revenue_weight : float;
      (** strength of the traffic-attraction incentive (A4): deployers
          earn from non-deployers' users only under universal access *)
  demand_threshold : float;
      (** an ISP only considers deploying once the app fraction exceeds
          this floor — deployment has real costs *)
  early_adopters : int;  (** ISPs deploying at t=0 regardless *)
  market : [ `Equal | `Zipf of float ];  (** user share across ISPs *)
  steps : int;
  seed : int64;
}

val default_params : params
(** 40 ISPs, 60 apps, 1 early adopter, Zipf(1.0) market, 150 steps. *)

type point = {
  step : int;
  isp_fraction : float;  (** fraction of ISPs that have deployed *)
  app_fraction : float;  (** fraction of IPvN-aware applications *)
  reachable_users : float;  (** fraction of users able to use IPvN *)
  deployer_user_share : float;  (** users whose own ISP deployed *)
}

val run : params -> point list
(** Simulate; the list has [steps + 1] points (including t=0). *)

val final : point list -> point
(** Last point. @raise Invalid_argument on []. *)

val tipped : ?threshold:float -> point list -> bool
(** Whether ISP adoption crossed [threshold] (default 0.9) by the end. *)

val time_to_tip : ?threshold:float -> point list -> int option
(** First step at which ISP adoption crossed the threshold. *)
