module Rng = Topology.Rng

type params = {
  num_isps : int;
  num_apps : int;
  universal_access : bool;
  app_hazard : float;
  app_viability_threshold : float;
  isp_hazard : float;
  revenue_weight : float;
  demand_threshold : float;
  early_adopters : int;
  market : [ `Equal | `Zipf of float ];
  steps : int;
  seed : int64;
}

let default_params =
  {
    num_isps = 40;
    num_apps = 60;
    universal_access = true;
    app_hazard = 0.25;
    app_viability_threshold = 0.3;
    isp_hazard = 0.30;
    revenue_weight = 0.5;
    demand_threshold = 0.02;
    early_adopters = 1;
    market = `Zipf 1.0;
    steps = 150;
    seed = 2005L;
  }

type point = {
  step : int;
  isp_fraction : float;
  app_fraction : float;
  reachable_users : float;
  deployer_user_share : float;
}

let market_shares p =
  match p.market with
  | `Equal -> Array.make p.num_isps (1.0 /. float_of_int p.num_isps)
  | `Zipf s ->
      let raw =
        Array.init p.num_isps (fun i ->
            1.0 /. Float.pow (float_of_int (i + 1)) s)
      in
      let total = Array.fold_left ( +. ) 0.0 raw in
      Array.map (fun x -> x /. total) raw

let run p =
  if p.num_isps <= 0 || p.num_apps <= 0 then
    invalid_arg "Adoption.run: empty population";
  let rng = Rng.create p.seed in
  let share = market_shares p in
  let deployed = Array.make p.num_isps false in
  for i = 0 to min p.early_adopters p.num_isps - 1 do
    deployed.(i) <- true
  done;
  let apps = Array.make p.num_apps false in
  let observe step =
    let deployer_user_share =
      Array.to_list share
      |> List.mapi (fun i s -> if deployed.(i) then s else 0.0)
      |> List.fold_left ( +. ) 0.0
    in
    let any_deployed = Array.exists Fun.id deployed in
    let reachable_users =
      if p.universal_access then (if any_deployed then 1.0 else 0.0)
      else deployer_user_share
    in
    let count a = Array.fold_left (fun n b -> if b then n + 1 else n) 0 a in
    {
      step;
      isp_fraction = float_of_int (count deployed) /. float_of_int p.num_isps;
      app_fraction = float_of_int (count apps) /. float_of_int p.num_apps;
      reachable_users;
      deployer_user_share;
    }
  in
  let points = ref [ observe 0 ] in
  for step = 1 to p.steps do
    let prev = List.hd !points in
    (* developers adopt in proportion to the users an IPvN app could
       serve, and not at all below the viability floor *)
    let app_rate =
      if prev.reachable_users < p.app_viability_threshold then 0.0
      else p.app_hazard *. prev.reachable_users
    in
    for a = 0 to p.num_apps - 1 do
      if (not apps.(a)) && Rng.bernoulli rng app_rate then apps.(a) <- true
    done;
    (* ISPs adopt when application availability makes demand real;
       the revenue term (A4) rewards attracting other ISPs' IPvN
       traffic, which only flows under universal access *)
    let attraction =
      if p.universal_access then
        p.revenue_weight *. (1.0 -. prev.deployer_user_share)
      else 0.0
    in
    for i = 0 to p.num_isps - 1 do
      if (not deployed.(i)) && prev.app_fraction > p.demand_threshold then begin
        let demand = prev.app_fraction *. prev.reachable_users in
        let hazard = p.isp_hazard *. demand *. (1.0 +. attraction) in
        if Rng.bernoulli rng hazard then deployed.(i) <- true
      end
    done;
    points := observe step :: !points
  done;
  List.rev !points

let final = function
  | [] -> invalid_arg "Adoption.final: empty run"
  | points -> List.nth points (List.length points - 1)

let tipped ?(threshold = 0.9) points =
  List.exists (fun pt -> pt.isp_fraction >= threshold) points

let time_to_tip ?(threshold = 0.9) points =
  List.find_map
    (fun pt -> if pt.isp_fraction >= threshold then Some pt.step else None)
    points
