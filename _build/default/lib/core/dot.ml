module Internet = Topology.Internet
module Graph = Topology.Graph
module Relationship = Topology.Relationship
module Fabric = Vnbone.Fabric
module Service = Anycast.Service
module Forward = Simcore.Forward

let buf_graph f =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "graph G {\n";
  f buf;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let domain_graph (inet : Internet.t) =
  buf_graph (fun buf ->
      Buffer.add_string buf "  layout=neato;\n  overlap=false;\n";
      Array.iter
        (fun (d : Internet.domain) ->
          Buffer.add_string buf
            (Printf.sprintf "  d%d [label=\"AS%d\"%s];\n" d.Internet.did
               d.Internet.did
               (if d.Internet.is_transit then " shape=box style=filled fillcolor=lightgray"
                else "")))
        inet.Internet.domains;
      List.iter
        (fun (l : Internet.interlink) ->
          let style =
            match l.Internet.rel with
            | Relationship.Peer -> "style=dashed label=\"peer\""
            | Relationship.Provider -> "label=\"c2p\""
            | Relationship.Customer -> "label=\"p2c\""
          in
          Buffer.add_string buf
            (Printf.sprintf "  d%d -- d%d [%s];\n" l.Internet.a_domain
               l.Internet.b_domain style))
        inet.Internet.interlinks)

let router_clusters buf (inet : Internet.t) highlight =
  Array.iter
    (fun (d : Internet.domain) ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_d%d {\n    label=\"AS%d\";\n"
           d.Internet.did d.Internet.did);
      Array.iter
        (fun rid ->
          let extra =
            if highlight rid then " style=filled fillcolor=gold" else ""
          in
          Buffer.add_string buf (Printf.sprintf "    r%d [label=\"%d\"%s];\n" rid rid extra))
        d.Internet.router_ids;
      Buffer.add_string buf "  }\n")
    inet.Internet.domains;
  List.iter
    (fun (u, v, _) -> Buffer.add_string buf (Printf.sprintf "  r%d -- r%d;\n" u v))
    (Graph.edges inet.Internet.graph)

let router_graph (inet : Internet.t) =
  buf_graph (fun buf -> router_clusters buf inet (fun _ -> false))

let fabric f =
  let service = Fabric.service f in
  let inet = (Service.env service).Forward.inet in
  let members = Service.members service in
  buf_graph (fun buf ->
      router_clusters buf inet (fun rid -> List.mem rid members);
      List.iter
        (fun (t : Fabric.tunnel) ->
          let style =
            match t.Fabric.kind with
            | `Intra -> "color=blue penwidth=2"
            | `Inter_policy -> "color=red penwidth=2"
            | `Inter_bootstrap -> "color=red penwidth=2 style=dashed"
            | `Manual -> "color=darkgreen penwidth=2 style=dotted"
          in
          Buffer.add_string buf
            (Printf.sprintf "  r%d -- r%d [%s label=\"%.0f\"];\n"
               t.Fabric.from_router t.Fabric.to_router style
               t.Fabric.underlay_metric))
        (Fabric.tunnels f))

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
