module Internet = Topology.Internet
module Forward = Simcore.Forward
module Service = Anycast.Service
module Router = Vnbone.Router
module Fabric = Vnbone.Fabric
module Transport = Vnbone.Transport
module Rng = Topology.Rng

type report = {
  per_domain : float array;
  deployers : int list;
  deployer_mean : float;
  non_deployer_mean : float;
  delivered : int;
  attempted : int;
}

let random_pairs (inet : Internet.t) ~seed ~count =
  let rng = Rng.create seed in
  let n = Array.length inet.Internet.endhosts in
  if n < 2 then []
  else
    List.init count (fun _ ->
        let src = Rng.int rng n in
        let rec pick () =
          let d = Rng.int rng n in
          if d = src then pick () else d
        in
        (src, pick ()))

let credit_trace inet per_domain trace =
  (* each received hop credits the receiving router's domain *)
  match trace.Forward.hops with
  | [] -> ()
  | _ :: receivers ->
      List.iter
        (fun r ->
          let d = (Internet.router inet r).Internet.rdomain in
          per_domain.(d) <- per_domain.(d) +. 1.0)
        receivers

let credit_journey inet per_domain (j : Transport.journey) =
  List.iter
    (fun leg ->
      let trace =
        match leg with
        | Transport.Access t | Transport.Exit t -> t
        | Transport.Vn { underlay; _ } -> underlay
      in
      credit_trace inet per_domain trace)
    j.Transport.legs

let traffic_report router ~strategy ~pairs =
  let fabric = Router.fabric router in
  let service = Fabric.service fabric in
  let inet = (Service.env service).Forward.inet in
  let per_domain = Array.make (Internet.num_domains inet) 0.0 in
  let delivered = ref 0 in
  List.iter
    (fun (src, dst) ->
      let j = Transport.send router ~strategy ~src ~dst ~payload:"traffic" in
      if Transport.delivered j then incr delivered;
      credit_journey inet per_domain j)
    pairs;
  let deployers = Service.participants service in
  let mean sel =
    let xs =
      Array.to_list (Array.mapi (fun d v -> (d, v)) per_domain)
      |> List.filter (fun (d, _) -> sel d)
      |> List.map snd
    in
    match xs with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  {
    per_domain;
    deployers;
    deployer_mean = mean (fun d -> List.mem d deployers);
    non_deployer_mean = mean (fun d -> not (List.mem d deployers));
    delivered = !delivered;
    attempted = List.length pairs;
  }
