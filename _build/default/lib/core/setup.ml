module Internet = Topology.Internet
module Forward = Simcore.Forward
module Service = Anycast.Service
module Policy = Anycast.Policy
module Fabric = Vnbone.Fabric
module Router = Vnbone.Router
module Transport = Vnbone.Transport

type t = {
  inet : Internet.t;
  env : Forward.env;
  service : Service.t;
  policy : Policy.t;
  version : int;
  mutable router : Router.t option;  (* invalidated on deployment change *)
}

let internet t = t.inet
let env t = t.env
let service t = t.service
let policy t = t.policy
let version t = t.version

let of_internet ?policy inet ~version ~strategy =
  let policy = match policy with Some p -> p | None -> Policy.create () in
  let env = Forward.make_env ~config:(Policy.bgp_config policy) inet in
  let service = Service.deploy env ~version ~strategy in
  { inet; env; service; policy; version; router = None }

let create ?(params = Internet.default_params) ?policy ~version ~strategy () =
  of_internet ?policy (Internet.build params) ~version ~strategy

let invalidate t = t.router <- None

let deploy ?(fraction = 1.0) t ~domain =
  if fraction <= 0.0 || fraction > 1.0 then
    invalid_arg "Setup.deploy: fraction outside (0, 1]";
  let d = Internet.domain t.inet domain in
  let n = Array.length d.Internet.router_ids in
  let count = max 1 (int_of_float (ceil (fraction *. float_of_int n))) in
  let routers =
    Array.to_list (Array.sub d.Internet.router_ids 0 (min count n))
  in
  Service.add_participant t.service ~domain ~routers;
  invalidate t

let undeploy t ~domain =
  Service.remove_participant t.service ~domain;
  invalidate t

let router t =
  match t.router with
  | Some r -> r
  | None ->
      let r = Router.create (Fabric.build t.service) in
      t.router <- Some r;
      r

let fabric t = Router.fabric (router t)

let send t ~strategy ~src ~dst ?(payload = "hello-ipvn") () =
  Transport.send (router t) ~strategy ~src ~dst ~payload
