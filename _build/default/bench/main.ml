(* The full reproduction harness.

   Part 1 regenerates every figure and experiment table of the paper
   (see DESIGN.md section 3 for the index and EXPERIMENTS.md for the
   recorded results).

   Part 2 runs Bechamel microbenchmarks of the core operations — one
   Test.make per operation — so substrate performance regressions are
   visible. *)

module Scenario = Evolve.Scenario
module E = Evolve.Experiments
module Internet = Topology.Internet
module Forward = Simcore.Forward
module Service = Anycast.Service
module Fabric = Vnbone.Fabric
module Router = Vnbone.Router
module Transport = Vnbone.Transport
module Lpm = Netcore.Lpm
module Prefix = Netcore.Prefix
module Ipv4 = Netcore.Ipv4
module Spt = Routing.Spt
module Bgp = Interdomain.Bgp

let section title =
  print_newline ();
  print_endline ("==== " ^ title ^ " ====");
  print_newline ()

let figures () =
  section "Paper figures (scenario replays)";
  print_endline "Figure 1: seamless spread of deployment";
  Format.printf "%a@." Scenario.pp_fig1 (Scenario.fig1 ());
  print_endline "Figure 2: Option 2 anycast with default routes";
  Format.printf "%a@." Scenario.pp_fig2 (Scenario.fig2 ());
  print_endline "Figure 3: egress selection with BGPv(N-1) import";
  Format.printf "%a@." Scenario.pp_fig3 (Scenario.fig3 ());
  print_endline "Figure 4: advertising-by-proxy";
  Format.printf "%a@." Scenario.pp_fig4 (Scenario.fig4 ())

let experiments () =
  section "Experiments (E1-E28)";
  E.print_e1 (E.e1_deployment_sweep ());
  E.print_e2 (E.e2_default_route_sweep ());
  E.print_e3 (E.e3_egress_comparison ());
  E.print_e4 (E.e3_egress_comparison ~deploy_fraction:0.15 ~pairs:80 ());
  E.print_e5 (E.e5_state_scaling ());
  E.print_e6 (E.e6_adoption ());
  E.print_e7 (E.e7_robustness ());
  E.print_e8 (E.e8_convergence ());
  E.print_e9 (E.e9_host_advertised ());
  E.print_e10 (E.e10_discovery_ablation ());
  E.print_e11 (E.e11_congruence ());
  E.print_e12 (E.e12_gia_sweep ());
  E.print_e13 (E.e13_seed_stability ());
  E.print_e14 (E.e14_proxy_alpha ());
  E.print_e15 (E.e15_viability_sweep ());
  E.print_e16 (E.e16_revenue_gravity ());
  E.print_e17 (E.e17_bgpvn_scaling ());
  E.print_e18 (E.e18_flooding_cost ());
  E.print_e19 (E.e19_mrai_sweep ());
  E.print_e20 (E.e20_anycast_resilience ());
  E.print_e21 (E.e21_size_scaling ());
  E.print_e22 (E.e22_fib_scaling ());
  E.print_e23 (E.e23_topology_robustness ());
  E.print_e24 (E.e24_flow_stability ());
  E.print_e25 (E.e25_coalition_sweep ());
  E.print_e26 (E.e26_encapsulation_overhead ());
  E.print_e27 (E.e27_mixed_igp ());
  E.print_e28 (E.e28_path_hunting ())

(* ------------------------------------------------------------------ *)
(* Microbenchmarks                                                     *)

open Bechamel
open Toolkit

let bench_lpm_lookup () =
  let rng = Topology.Rng.create 1L in
  let table =
    Lpm.of_list
      (List.init 1000 (fun i ->
           ( Prefix.make
               (Ipv4.of_int (Topology.Rng.int rng 0x3FFFFFFF * 4))
               (8 + Topology.Rng.int rng 17),
             i )))
  in
  let probes = Array.init 64 (fun _ -> Ipv4.of_int (Topology.Rng.int rng 0xFFFFFFF)) in
  let i = ref 0 in
  Test.make ~name:"lpm-lookup (1k prefixes)"
    (Staged.stage (fun () ->
         incr i;
         ignore (Lpm.lookup probes.(!i land 63) table)))

let bench_dijkstra () =
  let inet = Internet.build Internet.default_params in
  let i = ref 0 in
  let n = Internet.num_routers inet in
  Test.make ~name:"dijkstra (full router graph)"
    (Staged.stage (fun () ->
         i := (!i + 37) mod n;
         ignore (Spt.dijkstra inet.Internet.graph ~src:!i)))

let bench_bgp_convergence () =
  let inet = Internet.build Internet.default_params in
  Test.make ~name:"bgp full convergence (28 domains)"
    (Staged.stage (fun () ->
         let bgp = Bgp.create inet in
         Bgp.originate_all_domain_prefixes bgp;
         ignore (Bgp.converge bgp)))

let anycast_fixture =
  lazy
    (let inet = Internet.build Internet.default_params in
     let env = Forward.make_env inet in
     let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
     List.iter
       (fun d ->
         Service.add_participant service ~domain:d
           ~routers:(Array.to_list (Internet.domain inet d).Internet.router_ids))
       [ 5; 9; 14 ];
     service)

let bench_anycast_resolution () =
  let service = Lazy.force anycast_fixture in
  let inet = (Service.env service).Forward.inet in
  let hn = Array.length inet.Internet.endhosts in
  let i = ref 0 in
  Test.make ~name:"anycast resolution (endhost probe)"
    (Staged.stage (fun () ->
         i := (!i + 7) mod hn;
         ignore (Service.resolve_from_endhost service ~endhost:!i)))

let bench_fabric_build () =
  let service = Lazy.force anycast_fixture in
  Test.make ~name:"vn-bone construction (3 domains)"
    (Staged.stage (fun () -> ignore (Fabric.build service)))

let bench_journey () =
  let service = Lazy.force anycast_fixture in
  let router = Router.create (Fabric.build service) in
  let inet = (Service.env service).Forward.inet in
  let hn = Array.length inet.Internet.endhosts in
  let i = ref 0 in
  Test.make ~name:"end-to-end IPvN journey"
    (Staged.stage (fun () ->
         i := (!i + 11) mod (hn - 1);
         ignore
           (Transport.send router ~strategy:Router.Bgp_aware ~src:!i ~dst:(!i + 1)
              ~payload:"bench")))

let bench_internet_build () =
  Test.make ~name:"internet generation (28 domains)"
    (Staged.stage (fun () -> ignore (Internet.build Internet.default_params)))

let bench_bgpvn () =
  let service = Lazy.force anycast_fixture in
  let fabric = Fabric.build service in
  Test.make ~name:"bgpvn convergence (3 domains)"
    (Staged.stage (fun () ->
         let s = Vnbone.Bgpvn.create fabric in
         ignore (Vnbone.Bgpvn.converge s)))

let bench_lsa_flood () =
  let inet = Internet.build Internet.default_params in
  Test.make ~name:"lsa flood (domain of 12 routers)"
    (Staged.stage (fun () ->
         let proto = Simcore.Lsproto.create inet ~domain:0 in
         let engine = Simcore.Engine.create () in
         Simcore.Lsproto.start proto engine;
         ignore (Simcore.Engine.run engine)))

let bench_bgp_async_boot () =
  let inet = Internet.build Internet.default_params in
  Test.make ~name:"async bgp bootstrap (28 domains)"
    (Staged.stage (fun () ->
         let dyn = Simcore.Bgpdyn.create inet in
         let engine = Simcore.Engine.create () in
         Simcore.Bgpdyn.originate_all_domain_prefixes dyn engine;
         ignore (Simcore.Engine.run engine)))

let run_benchmarks () =
  section "Microbenchmarks (Bechamel)";
  let tests =
    [
      bench_lpm_lookup ();
      bench_dijkstra ();
      bench_bgp_convergence ();
      bench_anycast_resolution ();
      bench_fabric_build ();
      bench_journey ();
      bench_internet_build ();
      bench_bgpvn ();
      bench_lsa_flood ();
      bench_bgp_async_boot ();
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (x :: _) -> x
              | _ -> nan
            in
            (name, ns) :: acc)
          analyzed []
        |> List.rev)
      tests
  in
  Evolve.Table.print ~title:"core operation costs"
    ~header:[ "operation"; "ns/run" ]
    ~rows:
      (List.map (fun (name, ns) -> [ name; Printf.sprintf "%.0f" ns ]) rows)

let () =
  figures ();
  experiments ();
  run_benchmarks ()
