(* Tests for the BGP-like path-vector protocol and its policies. *)

module Internet = Topology.Internet
module Relationship = Topology.Relationship
module Bgp = Interdomain.Bgp
module Prefix = Netcore.Prefix
module Addressing = Netcore.Addressing

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let spec r e tr = { Internet.routers = r; endhosts = e; transit = tr }
let link a b rel_of_b = { Internet.a; b; rel_of_b }

(* a small policy playground:
     T0 -- T1 (peers), S2 -> T0, S3 -> T1, S4 -> T0 and T1 (multihomed) *)
let playground () =
  Internet.build_custom ~seed:5L
    [| spec 3 0 true; spec 3 0 true; spec 2 1 false; spec 2 1 false; spec 2 1 false |]
    [
      link 0 1 Relationship.Peer;
      link 2 0 Relationship.Provider;
      link 3 1 Relationship.Provider;
      link 4 0 Relationship.Provider;
      link 4 1 Relationship.Provider;
    ]

let converged_playground () =
  let inet = playground () in
  let bgp = Bgp.create inet in
  Bgp.originate_all_domain_prefixes bgp;
  ignore (Bgp.converge bgp);
  (inet, bgp)

let test_full_reachability () =
  let inet, bgp = converged_playground () in
  let n = Internet.num_domains inet in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      let p = (Internet.domain inet dst).Internet.prefix in
      match Bgp.route_to bgp ~domain:src p with
      | Some r ->
          check Alcotest.bool "path starts at src" true (List.hd r.Bgp.as_path = src);
          check Alcotest.bool "path ends at origin" true
            (List.nth r.Bgp.as_path (List.length r.Bgp.as_path - 1) = dst)
      | None -> Alcotest.fail (Printf.sprintf "no route %d -> %d" src dst)
    done
  done

let test_convergence_stable () =
  let _, bgp = converged_playground () in
  check Alcotest.bool "no change after convergence" false (Bgp.step bgp)

let test_loop_free_paths () =
  let inet, bgp = converged_playground () in
  for d = 0 to Internet.num_domains inet - 1 do
    List.iter
      (fun r ->
        let sorted = List.sort_uniq Int.compare r.Bgp.as_path in
        check Alcotest.int "no repeated domain" (List.length r.Bgp.as_path)
          (List.length sorted))
      (Bgp.rib bgp ~domain:d)
  done

(* valley-free: once a path goes "down" (provider->customer) or sideways
   (peer), it may never go "up" (customer->provider) or sideways again.
   We walk each chosen as_path from the origin toward the owner. *)
let valley_free inet path =
  (* path: owner first ... origin last; traverse origin -> owner, each
     step is an export from [from_] to [to_] *)
  let rec ok seen_down = function
    | from_ :: (to_ :: _ as rest) -> (
        match Internet.relationship inet ~of_:from_ ~to_ with
        | None -> false
        | Some rel ->
            (* [rel] is the role of [to_] seen from [from_]: Customer
               means the route flows provider->customer (down); Peer is
               sideways; Provider is up (customer->provider). *)
            let down = rel = Relationship.Customer in
            let up = rel = Relationship.Provider in
            let sideways = rel = Relationship.Peer in
            if seen_down && (up || sideways) then false
            else ok (seen_down || down || sideways) rest)
    | _ -> true
  in
  ok false (List.rev path)

let test_valley_free () =
  let inet, bgp = converged_playground () in
  for d = 0 to Internet.num_domains inet - 1 do
    List.iter
      (fun r ->
        check Alcotest.bool
          ("valley-free: "
          ^ String.concat "," (List.map string_of_int r.Bgp.as_path))
          true (valley_free inet r.Bgp.as_path))
      (Bgp.rib bgp ~domain:d)
  done

let prop_valley_free_random_internets =
  QCheck.Test.make ~name:"all chosen paths valley-free (random internets)"
    ~count:10
    QCheck.(int_bound 10000)
    (fun seed ->
      let params =
        { Internet.default_params with Internet.seed = Int64.of_int seed }
      in
      let inet = Internet.build params in
      let bgp = Bgp.create inet in
      Bgp.originate_all_domain_prefixes bgp;
      ignore (Bgp.converge bgp);
      List.for_all
        (fun d ->
          List.for_all
            (fun r -> valley_free inet r.Bgp.as_path)
            (Bgp.rib bgp ~domain:d))
        (List.init (Internet.num_domains inet) Fun.id))

let test_customer_preference () =
  (* S4 is multihomed to T0 and T1. A prefix originated by S4 must be
     reached from T0 via its customer link, not via peer T1. *)
  let inet, bgp = converged_playground () in
  let p = (Internet.domain inet 4).Internet.prefix in
  match Bgp.route_to bgp ~domain:0 p with
  | Some r ->
      check Alcotest.(list int) "direct customer path" [ 0; 4 ] r.Bgp.as_path;
      check Alcotest.int "customer pref"
        Relationship.(local_preference Customer)
        r.Bgp.pref
  | None -> Alcotest.fail "T0 has no route to its customer S4"

let test_anycast_multi_origin () =
  (* both S2 and S3 originate the same anycast prefix; each domain
     routes to the policy-closest origin *)
  let inet, bgp = converged_playground () in
  let g = Addressing.anycast_global ~group:8 in
  Bgp.originate bgp ~domain:2 g;
  Bgp.originate bgp ~domain:3 g;
  ignore (Bgp.converge bgp);
  let origin d =
    match Bgp.route_to bgp ~domain:d g with
    | Some r -> List.nth r.Bgp.as_path (List.length r.Bgp.as_path - 1)
    | None -> -1
  in
  check Alcotest.int "T0 picks its customer S2" 2 (origin 0);
  check Alcotest.int "T1 picks its customer S3" 3 (origin 1);
  check Alcotest.int "S2 uses itself" 2 (origin 2);
  check Alcotest.int "S3 uses itself" 3 (origin 3);
  ignore inet

let test_propagation_filter_blocks () =
  let inet = playground () in
  let g = Addressing.anycast_global ~group:8 in
  (* T1 refuses to carry the anycast prefix *)
  let config =
    { Bgp.propagate = (fun d p -> not (d = 1 && Prefix.equal p g)) }
  in
  let bgp = Bgp.create ~config inet in
  Bgp.originate_all_domain_prefixes bgp;
  Bgp.originate bgp ~domain:2 g;
  ignore (Bgp.converge bgp);
  (* S3 hangs off T1 only: the refusal cuts it off from the anycast *)
  check Alcotest.bool "T1 has no anycast route" true
    (Bgp.route_to bgp ~domain:1 g = None);
  check Alcotest.bool "S3 blocked by its transit" true
    (Bgp.route_to bgp ~domain:3 g = None);
  (* but S4 is multihomed to T0 and still reaches it *)
  check Alcotest.bool "S4 reaches via T0" true
    (Bgp.route_to bgp ~domain:4 g <> None);
  (* unicast routes are unaffected *)
  check Alcotest.bool "unicast unaffected" true
    (Bgp.route_to bgp ~domain:3 (Internet.domain inet 2).Internet.prefix <> None)

let test_scoped_advertisement () =
  let _inet, bgp = converged_playground () in
  let g = Addressing.anycast_in_domain ~domain:2 ~group:8 in
  (* S3 advertises the (option-2) anycast /24 to its transit T1 only *)
  Bgp.advertise_scoped bgp ~from_:3 ~to_:1 g;
  ignore (Bgp.converge bgp);
  (match Bgp.route_to bgp ~domain:1 g with
  | Some r ->
      check Alcotest.bool "no-export flagged" true r.Bgp.no_export;
      check Alcotest.(list int) "one-hop path" [ 1; 3 ] r.Bgp.as_path
  | None -> Alcotest.fail "scoped route not installed");
  (* and crucially it is NOT re-exported to T0 or its customers *)
  check Alcotest.bool "not re-exported to T0" true
    (Bgp.route_to bgp ~domain:0 g = None);
  check Alcotest.bool "not re-exported to S2" true
    (Bgp.route_to bgp ~domain:2 g = None);
  Bgp.withdraw_scoped bgp ~from_:3 ~to_:1 g;
  ignore (Bgp.converge bgp);
  check Alcotest.bool "withdrawn" true (Bgp.route_to bgp ~domain:1 g = None)

let test_limited_origin_radius () =
  (* playground distances from S2: T0 = 1 hop, T1 and S4 = 2, S3 = 3 *)
  let _inet, bgp = converged_playground () in
  let g = Addressing.anycast_global ~group:11 in
  let reaches d = Bgp.route_to bgp ~domain:d g <> None in
  (* radius 0: local only *)
  Bgp.originate_limited bgp ~domain:2 ~radius:0 g;
  ignore (Bgp.converge bgp);
  check Alcotest.bool "r0 local" true (reaches 2);
  check Alcotest.bool "r0 not at provider" false (reaches 0);
  Bgp.withdraw_limited bgp ~domain:2 g;
  (* radius 1: provider T0 hears it, nobody further *)
  Bgp.originate_limited bgp ~domain:2 ~radius:1 g;
  ignore (Bgp.converge bgp);
  check Alcotest.bool "r1 provider" true (reaches 0);
  check Alcotest.bool "r1 not at peer's side" false (reaches 1);
  check Alcotest.bool "r1 not 2 hops" false (reaches 3);
  Bgp.withdraw_limited bgp ~domain:2 g;
  (* radius 2: T1 and S4 hear it, S3 (3 hops) does not *)
  Bgp.originate_limited bgp ~domain:2 ~radius:2 g;
  ignore (Bgp.converge bgp);
  check Alcotest.bool "r2 peer transit" true (reaches 1);
  check Alcotest.bool "r2 multihomed stub" true (reaches 4);
  check Alcotest.bool "r2 not 3 hops" false (reaches 3);
  (* withdraw clears everywhere *)
  Bgp.withdraw_limited bgp ~domain:2 g;
  ignore (Bgp.converge bgp);
  for d = 0 to 4 do
    check Alcotest.bool "withdrawn" false (reaches d)
  done

let test_limited_origin_rejects_negative () =
  let inet = playground () in
  let bgp = Bgp.create inet in
  Alcotest.check_raises "negative radius"
    (Invalid_argument "Bgp.originate_limited: negative radius") (fun () ->
      Bgp.originate_limited bgp ~domain:0 ~radius:(-1)
        (Addressing.anycast_global ~group:1))

let test_scoped_requires_link () =
  let inet = playground () in
  let bgp = Bgp.create inet in
  Alcotest.check_raises "not linked"
    (Invalid_argument "Bgp.advertise_scoped: domains not directly linked")
    (fun () ->
      Bgp.advertise_scoped bgp ~from_:2 ~to_:3
        (Addressing.anycast_global ~group:1))

let test_lookup_lpm () =
  let _inet, bgp = converged_playground () in
  (* an address inside S3's /16 resolves to S3's prefix by LPM *)
  let addr = Addressing.endhost_address ~domain:3 ~index:0 in
  match Bgp.lookup bgp ~domain:2 addr with
  | Some r ->
      check Alcotest.bool "covers addr" true (Prefix.mem addr r.Bgp.prefix);
      check Alcotest.int "originates at S3" 3
        (List.nth r.Bgp.as_path (List.length r.Bgp.as_path - 1))
  | None -> Alcotest.fail "no LPM route"

let test_withdraw_origin () =
  let inet, bgp = converged_playground () in
  let g = Addressing.anycast_global ~group:9 in
  Bgp.originate bgp ~domain:2 g;
  ignore (Bgp.converge bgp);
  check Alcotest.bool "present" true (Bgp.route_to bgp ~domain:1 g <> None);
  Bgp.withdraw_origin bgp ~domain:2 g;
  ignore (Bgp.converge bgp);
  for d = 0 to Internet.num_domains inet - 1 do
    check Alcotest.bool "gone everywhere" true (Bgp.route_to bgp ~domain:d g = None)
  done

let test_rib_size_accounting () =
  let inet, bgp = converged_playground () in
  let n = Internet.num_domains inet in
  for d = 0 to n - 1 do
    check Alcotest.int "one entry per domain prefix" n (Bgp.rib_size bgp ~domain:d)
  done;
  Bgp.originate bgp ~domain:2 (Addressing.anycast_global ~group:8);
  ignore (Bgp.converge bgp);
  for d = 0 to n - 1 do
    check Alcotest.int "anycast adds one" (n + 1) (Bgp.rib_size bgp ~domain:d)
  done

let test_egress_link_and_domain_path () =
  let inet, bgp = converged_playground () in
  let p3 = (Internet.domain inet 3).Internet.prefix in
  (match Bgp.egress_link bgp ~domain:0 p3 with
  | Some l ->
      check Alcotest.int "egress starts at src domain" 0 l.Internet.a_domain;
      check Alcotest.int "toward next hop" 1 l.Internet.b_domain
  | None -> Alcotest.fail "no egress link");
  (* self prefix: no egress *)
  check Alcotest.bool "self has no egress" true
    (Bgp.egress_link bgp ~domain:3 p3 = None);
  match Bgp.domain_path bgp ~src:0 (Prefix.network p3) with
  | Some path -> check Alcotest.(list int) "domain path" [ 0; 1; 3 ] path
  | None -> Alcotest.fail "no domain path"

let prop_lookup_consistent_with_route_to =
  QCheck.Test.make ~name:"lookup = route_to of the covering prefix" ~count:10
    QCheck.(int_bound 10000)
    (fun seed ->
      let params =
        { Internet.default_params with Internet.seed = Int64.of_int seed }
      in
      let inet = Internet.build params in
      let bgp = Bgp.create inet in
      Bgp.originate_all_domain_prefixes bgp;
      ignore (Bgp.converge bgp);
      let n = Internet.num_domains inet in
      List.for_all
        (fun src ->
          List.for_all
            (fun dst ->
              let addr = Addressing.endhost_address ~domain:dst ~index:0 in
              match Bgp.lookup bgp ~domain:src addr with
              | None -> false
              | Some r ->
                  Prefix.mem addr r.Bgp.prefix
                  && Bgp.route_to bgp ~domain:src r.Bgp.prefix = Some r)
            (List.init n Fun.id))
        (List.init (min n 6) Fun.id))

let () =
  Alcotest.run "interdomain"
    [
      ( "bgp-core",
        [
          Alcotest.test_case "full reachability" `Quick test_full_reachability;
          Alcotest.test_case "stable after convergence" `Quick test_convergence_stable;
          Alcotest.test_case "loop-free paths" `Quick test_loop_free_paths;
          Alcotest.test_case "valley-free paths" `Quick test_valley_free;
          qcheck prop_valley_free_random_internets;
          Alcotest.test_case "customer preference" `Quick test_customer_preference;
          Alcotest.test_case "LPM lookup" `Quick test_lookup_lpm;
          Alcotest.test_case "RIB accounting" `Quick test_rib_size_accounting;
          Alcotest.test_case "egress link / domain path" `Quick
            test_egress_link_and_domain_path;
          qcheck prop_lookup_consistent_with_route_to;
        ] );
      ( "bgp-anycast",
        [
          Alcotest.test_case "multi-origin anycast" `Quick test_anycast_multi_origin;
          Alcotest.test_case "propagation filter blocks" `Quick
            test_propagation_filter_blocks;
          Alcotest.test_case "scoped advertisement" `Quick test_scoped_advertisement;
          Alcotest.test_case "scoped requires link" `Quick test_scoped_requires_link;
          Alcotest.test_case "limited-radius origination" `Quick
            test_limited_origin_radius;
          Alcotest.test_case "limited radius validation" `Quick
            test_limited_origin_rejects_negative;
          Alcotest.test_case "withdraw origin" `Quick test_withdraw_origin;
        ] );
    ]
