(* Tests for the anycast redirection service: both inter-domain
   options, policy gating, and the stretch/share metrics. *)

module Internet = Topology.Internet
module Relationship = Topology.Relationship
module Forward = Simcore.Forward
module Service = Anycast.Service
module Metrics = Anycast.Metrics
module Policy = Anycast.Policy
module Prefix = Netcore.Prefix
module Addressing = Netcore.Addressing

let check = Alcotest.check

let spec r e tr = { Internet.routers = r; endhosts = e; transit = tr }
let link a b rel_of_b = { Internet.a; b; rel_of_b }

(* T0 -- T1 peers; S2 -> T0; S3 -> T1; each domain has endhosts *)
let small_internet () =
  Internet.build_custom ~seed:77L
    [| spec 4 2 true; spec 4 2 true; spec 3 2 false; spec 3 2 false |]
    [
      link 0 1 Relationship.Peer;
      link 2 0 Relationship.Provider;
      link 3 1 Relationship.Provider;
    ]

let fresh_env () = Forward.make_env (small_internet ())

let domain_routers env d =
  Array.to_list (Internet.domain env.Forward.inet d).Internet.router_ids

let endhosts_in env d =
  Array.to_list (Internet.domain env.Forward.inet d).Internet.endhost_ids

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)

let test_policy_defaults () =
  let p = Policy.create () in
  let any24 = Addressing.anycast_global ~group:1 in
  check Alcotest.bool "default allows" true (Policy.propagates p ~domain:3 ~prefix:any24);
  Policy.set_propagates p ~domain:3 ~prefix:any24 false;
  check Alcotest.bool "explicit refusal" false
    (Policy.propagates p ~domain:3 ~prefix:any24);
  check Alcotest.bool "other domains unaffected" true
    (Policy.propagates p ~domain:2 ~prefix:any24)

let test_policy_refuse_nonroutable () =
  let p = Policy.create () in
  Policy.refuse_all_nonroutable p ~domains:[ 1 ];
  let any24 = Addressing.anycast_global ~group:1 in
  let big = Prefix.of_string "10.0.0.0/16" in
  check Alcotest.bool "refuses /24" false (Policy.propagates p ~domain:1 ~prefix:any24);
  check Alcotest.bool "carries /16" true (Policy.propagates p ~domain:1 ~prefix:big);
  check Alcotest.bool "explicit override wins" true
    (Policy.set_propagates p ~domain:1 ~prefix:any24 true;
     Policy.propagates p ~domain:1 ~prefix:any24)

(* ------------------------------------------------------------------ *)
(* Service: Option 1                                                   *)

let test_opt1_deploy_and_resolve () =
  let env = fresh_env () in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  check Alcotest.bool "no members yet" true (Service.members service = []);
  Service.add_participant service ~domain:2 ~routers:(domain_routers env 2);
  check Alcotest.bool "participant" true (Service.is_participant service ~domain:2);
  check Alcotest.int "members" 3 (List.length (Service.members service));
  (* every endhost, in every domain, reaches a member in S2 *)
  List.iter
    (fun d ->
      List.iter
        (fun h ->
          match Service.ingress_for_endhost service ~endhost:h with
          | Some m ->
              check Alcotest.int "lands in S2" 2
                (Internet.router env.Forward.inet m).Internet.rdomain
          | None -> Alcotest.fail "universal access broken")
        (endhosts_in env d))
    [ 0; 1; 2; 3 ]

let test_opt1_closest_wins () =
  let env = fresh_env () in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  Service.add_participant service ~domain:2 ~routers:(domain_routers env 2);
  Service.add_participant service ~domain:3 ~routers:(domain_routers env 3);
  (* clients in S3 must now be served by S3's own members *)
  List.iter
    (fun h ->
      match Service.ingress_for_endhost service ~endhost:h with
      | Some m ->
          check Alcotest.int "local members win" 3
            (Internet.router env.Forward.inet m).Internet.rdomain
      | None -> Alcotest.fail "dropped")
    (endhosts_in env 3);
  (* stretch for S3 clients is 1: they already get the best member *)
  List.iter
    (fun h ->
      match Metrics.stretch service ~endhost:h with
      | Some s -> check (Alcotest.float 1e-9) "stretch 1" 1.0 s
      | None -> Alcotest.fail "no stretch")
    (endhosts_in env 3)

let test_opt1_policy_blocks_transit () =
  (* T1 refuses anycast prefixes: S3 (single-homed behind T1) loses
     access — the scenario motivating Option 2 *)
  let policy = Policy.create () in
  let env = Forward.make_env ~config:(Policy.bgp_config policy) (small_internet ()) in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  Policy.set_propagates policy ~domain:1 ~prefix:(Service.group service) false;
  Service.add_participant service ~domain:2 ~routers:(domain_routers env 2);
  List.iter
    (fun h ->
      check Alcotest.bool "S3 blocked" true
        (Service.ingress_for_endhost service ~endhost:h = None))
    (endhosts_in env 3);
  List.iter
    (fun h ->
      check Alcotest.bool "S2 locals fine" true
        (Service.ingress_for_endhost service ~endhost:h <> None))
    (endhosts_in env 2)

let test_opt1_remove_participant () =
  let env = fresh_env () in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  Service.add_participant service ~domain:2 ~routers:(domain_routers env 2);
  Service.add_participant service ~domain:3 ~routers:(domain_routers env 3);
  Service.remove_participant service ~domain:2;
  check Alcotest.(list int) "only S3 left" [ 3 ] (Service.participants service);
  (* S2 clients are now redirected to S3 *)
  List.iter
    (fun h ->
      match Service.ingress_for_endhost service ~endhost:h with
      | Some m ->
          check Alcotest.int "redirected to S3" 3
            (Internet.router env.Forward.inet m).Internet.rdomain
      | None -> Alcotest.fail "dropped after withdrawal")
    (endhosts_in env 2)

let test_service_validation () =
  let env = fresh_env () in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  Alcotest.check_raises "empty routers"
    (Invalid_argument "Service.add_participant: no routers") (fun () ->
      Service.add_participant service ~domain:2 ~routers:[]);
  Alcotest.check_raises "foreign router"
    (Invalid_argument "Service.add_participant: router outside the domain")
    (fun () ->
      Service.add_participant service ~domain:2 ~routers:(domain_routers env 3));
  Alcotest.check_raises "bad version"
    (Invalid_argument "Service.deploy: version out of [1, 63]") (fun () ->
      ignore (Service.deploy env ~version:64 ~strategy:Service.Option1))

(* ------------------------------------------------------------------ *)
(* Service: Option 2                                                   *)

let test_opt2_routes_to_default () =
  let env = fresh_env () in
  let service =
    Service.deploy env ~version:8 ~strategy:(Service.Option2 { default_domain = 2 })
  in
  check Alcotest.bool "prefix inside default's space" true
    (Prefix.subsumes (Internet.domain env.Forward.inet 2).Internet.prefix
       (Service.group service));
  Service.add_participant service ~domain:2 ~routers:(domain_routers env 2);
  (* plain unicast routing carries every client to the default domain,
     with no BGP change at all *)
  List.iter
    (fun d ->
      List.iter
        (fun h ->
          match Service.ingress_for_endhost service ~endhost:h with
          | Some m ->
              check Alcotest.int "lands at default" 2
                (Internet.router env.Forward.inet m).Internet.rdomain
          | None -> Alcotest.fail "option2 universal access broken")
        (endhosts_in env d))
    [ 0; 1; 2; 3 ];
  check (Alcotest.float 1e-9) "default share 100%" 1.0
    (Metrics.termination_share service ~domain:2)

let test_opt2_second_participant_serves_locally () =
  let env = fresh_env () in
  let service =
    Service.deploy env ~version:8 ~strategy:(Service.Option2 { default_domain = 2 })
  in
  Service.add_participant service ~domain:2 ~routers:(domain_routers env 2);
  Service.add_participant service ~domain:3 ~routers:(domain_routers env 3);
  (* S3's clients are served inside S3: the anycast packet meets a
     member before leaving the domain *)
  List.iter
    (fun h ->
      match Service.ingress_for_endhost service ~endhost:h with
      | Some m ->
          check Alcotest.int "served locally" 3
            (Internet.router env.Forward.inet m).Internet.rdomain
      | None -> Alcotest.fail "dropped")
    (endhosts_in env 3);
  (* but T1's clients still default to D because nothing advertised *)
  List.iter
    (fun h ->
      match Service.ingress_for_endhost service ~endhost:h with
      | Some m ->
          check Alcotest.int "T1 defaults to D" 2
            (Internet.router env.Forward.inet m).Internet.rdomain
      | None -> Alcotest.fail "dropped")
    (endhosts_in env 1)

let test_opt2_peering_advertisement () =
  let env = fresh_env () in
  let service =
    Service.deploy env ~version:8 ~strategy:(Service.Option2 { default_domain = 2 })
  in
  Service.add_participant service ~domain:2 ~routers:(domain_routers env 2);
  Service.add_participant service ~domain:3 ~routers:(domain_routers env 3);
  (* Q(=S3) advertises to its neighbor T1: T1's clients switch to S3 *)
  Service.advertise_to_neighbor service ~from_:3 ~to_:1;
  List.iter
    (fun h ->
      match Service.ingress_for_endhost service ~endhost:h with
      | Some m ->
          check Alcotest.int "T1 now lands at S3" 3
            (Internet.router env.Forward.inet m).Internet.rdomain
      | None -> Alcotest.fail "dropped")
    (endhosts_in env 1);
  (* withdrawal restores the default route *)
  Service.withdraw_neighbor_advertisement service ~from_:3 ~to_:1;
  List.iter
    (fun h ->
      match Service.ingress_for_endhost service ~endhost:h with
      | Some m ->
          check Alcotest.int "back to default" 2
            (Internet.router env.Forward.inet m).Internet.rdomain
      | None -> Alcotest.fail "dropped")
    (endhosts_in env 1)

let test_opt2_requires_participant_advertiser () =
  let env = fresh_env () in
  let service =
    Service.deploy env ~version:8 ~strategy:(Service.Option2 { default_domain = 2 })
  in
  Service.add_participant service ~domain:2 ~routers:(domain_routers env 2);
  Alcotest.check_raises "non-participant cannot advertise"
    (Invalid_argument "Service.advertise_to_neighbor: advertiser is not a participant")
    (fun () -> Service.advertise_to_neighbor service ~from_:3 ~to_:1);
  let service1 = Service.deploy env ~version:9 ~strategy:Service.Option1 in
  Service.add_participant service1 ~domain:2 ~routers:(domain_routers env 2);
  Alcotest.check_raises "option1 has no peering advertisements"
    (Invalid_argument
       "Service.advertise_to_neighbor: peering advertisements are an Option 2 \
        mechanism") (fun () -> Service.advertise_to_neighbor service1 ~from_:2 ~to_:0)

let test_opt2_empty_default_drops () =
  (* GIA's rule: the home domain must include at least one member; with
     none, option-2 packets reaching the default domain die there *)
  let env = fresh_env () in
  let service =
    Service.deploy env ~version:8 ~strategy:(Service.Option2 { default_domain = 2 })
  in
  Service.add_participant service ~domain:3 ~routers:(domain_routers env 3);
  List.iter
    (fun h ->
      check Alcotest.bool "T0 clients dropped at memberless default" true
        (Service.ingress_for_endhost service ~endhost:h = None))
    (endhosts_in env 0)

let test_opt1_batch_equals_sequential () =
  let env_a = fresh_env () in
  let sa = Service.deploy env_a ~version:8 ~strategy:Service.Option1 in
  Service.add_participant sa ~domain:2 ~routers:(domain_routers env_a 2);
  Service.add_participant sa ~domain:3 ~routers:(domain_routers env_a 3);
  let env_b = fresh_env () in
  let sb = Service.deploy env_b ~version:8 ~strategy:Service.Option1 in
  Service.add_participants sb
    [ (2, domain_routers env_b 2); (3, domain_routers env_b 3) ];
  check Alcotest.(list int) "same participants" (Service.participants sa)
    (Service.participants sb);
  check Alcotest.(list int) "same members" (Service.members sa) (Service.members sb);
  (* same redirection decisions everywhere *)
  List.iter
    (fun d ->
      List.iter
        (fun h ->
          check Alcotest.(option int) "same ingress"
            (Service.ingress_for_endhost sa ~endhost:h)
            (Service.ingress_for_endhost sb ~endhost:h))
        (endhosts_in env_a d))
    [ 0; 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Service: GIA                                                        *)

let test_gia_r0_behaves_like_option2 () =
  let env = fresh_env () in
  let gia =
    Service.deploy env ~version:8
      ~strategy:(Service.Gia { home_domain = 2; radius = 0 })
  in
  check Alcotest.bool "prefix rooted at home" true
    (Prefix.subsumes (Internet.domain env.Forward.inet 2).Internet.prefix
       (Service.group gia));
  Service.add_participant gia ~domain:2 ~routers:(domain_routers env 2);
  Service.add_participant gia ~domain:3 ~routers:(domain_routers env 3);
  (* T1's clients still default to the home domain: radius 0 makes no
     one discoverable beyond its own borders *)
  List.iter
    (fun h ->
      match Service.ingress_for_endhost gia ~endhost:h with
      | Some m ->
          check Alcotest.int "defaults to home" 2
            (Internet.router env.Forward.inet m).Internet.rdomain
      | None -> Alcotest.fail "dropped")
    (endhosts_in env 1)

let test_gia_radius_recovers_proximity () =
  let env = fresh_env () in
  let gia =
    Service.deploy env ~version:9
      ~strategy:(Service.Gia { home_domain = 2; radius = 1 })
  in
  Service.add_participant gia ~domain:2 ~routers:(domain_routers env 2);
  Service.add_participant gia ~domain:3 ~routers:(domain_routers env 3);
  (* with radius 1, S3's advertisement reaches its provider T1, so
     T1's clients are served at S3 instead of trekking to the home *)
  List.iter
    (fun h ->
      match Service.ingress_for_endhost gia ~endhost:h with
      | Some m ->
          check Alcotest.int "served at nearby participant" 3
            (Internet.router env.Forward.inet m).Internet.rdomain
      | None -> Alcotest.fail "dropped")
    (endhosts_in env 1);
  (* home-domain delivery still works everywhere *)
  check (Alcotest.float 1e-9) "universal delivery" 1.0
    (Metrics.delivery_rate gia)

let test_gia_validation () =
  let env = fresh_env () in
  Alcotest.check_raises "negative radius"
    (Invalid_argument "Service.deploy: negative GIA radius") (fun () ->
      ignore
        (Service.deploy env ~version:8
           ~strategy:(Service.Gia { home_domain = 0; radius = -1 })));
  let gia =
    Service.deploy env ~version:8
      ~strategy:(Service.Gia { home_domain = 2; radius = 1 })
  in
  Service.add_participant gia ~domain:2 ~routers:(domain_routers env 2);
  Alcotest.check_raises "no peering advertisements under GIA"
    (Invalid_argument
       "Service.advertise_to_neighbor: peering advertisements are an Option 2 \
        mechanism") (fun () -> Service.advertise_to_neighbor gia ~from_:2 ~to_:0)

(* ------------------------------------------------------------------ *)
(* Metrics helpers                                                     *)

let test_metrics_stats () =
  check Alcotest.bool "mean of empty is nan" true (Float.is_nan (Metrics.mean []));
  check (Alcotest.float 1e-9) "mean" 2.0 (Metrics.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "p50" 2.0 (Metrics.percentile 0.5 [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "p100" 9.0 (Metrics.percentile 1.0 [ 9.0; 1.0 ]);
  check (Alcotest.float 1e-9) "p0 clamps" 1.0 (Metrics.percentile 0.0 [ 9.0; 1.0 ])

let test_metrics_stretch_at_full_deployment () =
  let env = fresh_env () in
  let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
  List.iter
    (fun d -> Service.add_participant service ~domain:d ~routers:(domain_routers env d))
    [ 0; 1; 2; 3 ];
  check (Alcotest.float 1e-9) "full deployment -> stretch 1" 1.0
    (Metrics.mean_stretch service);
  check (Alcotest.float 1e-9) "full delivery" 1.0 (Metrics.delivery_rate service)

let () =
  Alcotest.run "anycast"
    [
      ( "policy",
        [
          Alcotest.test_case "defaults" `Quick test_policy_defaults;
          Alcotest.test_case "refuse non-routable" `Quick test_policy_refuse_nonroutable;
        ] );
      ( "option1",
        [
          Alcotest.test_case "deploy and resolve" `Quick test_opt1_deploy_and_resolve;
          Alcotest.test_case "closest member wins" `Quick test_opt1_closest_wins;
          Alcotest.test_case "policy blocks transit" `Quick
            test_opt1_policy_blocks_transit;
          Alcotest.test_case "remove participant" `Quick test_opt1_remove_participant;
          Alcotest.test_case "batch = sequential enrollment" `Quick
            test_opt1_batch_equals_sequential;
          Alcotest.test_case "validation" `Quick test_service_validation;
        ] );
      ( "option2",
        [
          Alcotest.test_case "routes to default" `Quick test_opt2_routes_to_default;
          Alcotest.test_case "second participant serves locally" `Quick
            test_opt2_second_participant_serves_locally;
          Alcotest.test_case "peering advertisement" `Quick
            test_opt2_peering_advertisement;
          Alcotest.test_case "advertiser validation" `Quick
            test_opt2_requires_participant_advertiser;
          Alcotest.test_case "memberless default drops" `Quick
            test_opt2_empty_default_drops;
        ] );
      ( "gia",
        [
          Alcotest.test_case "r=0 behaves like option2" `Quick
            test_gia_r0_behaves_like_option2;
          Alcotest.test_case "radius recovers proximity" `Quick
            test_gia_radius_recovers_proximity;
          Alcotest.test_case "validation" `Quick test_gia_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "stats helpers" `Quick test_metrics_stats;
          Alcotest.test_case "stretch at full deployment" `Quick
            test_metrics_stretch_at_full_deployment;
        ] );
    ]
