(* Tests for intra-domain routing: Dijkstra, link-state and
   distance-vector anycast. *)

module Graph = Topology.Graph
module Rng = Topology.Rng
module Internet = Topology.Internet
module Spt = Routing.Spt
module Linkstate = Routing.Linkstate
module Distvec = Routing.Distvec
module Addressing = Netcore.Addressing

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let group = Addressing.anycast_global ~group:8

let random_connected_graph seed n extra =
  let rng = Rng.create (Int64.of_int seed) in
  let g = Graph.create ~n in
  for i = 1 to n - 1 do
    Graph.add_edge g i (Rng.int rng i) (1.0 +. Rng.float rng 9.0)
  done;
  for _ = 1 to extra do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then Graph.add_edge g u v (1.0 +. Rng.float rng 9.0)
  done;
  g

(* reference all-pairs Bellman-Ford *)
let bellman_ford g ~src =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  dist.(src) <- 0.0;
  for _ = 1 to n do
    List.iter
      (fun (u, v, w) ->
        if dist.(u) +. w < dist.(v) then dist.(v) <- dist.(u) +. w;
        if dist.(v) +. w < dist.(u) then dist.(u) <- dist.(v) +. w)
      (Graph.edges g)
  done;
  dist

(* ------------------------------------------------------------------ *)
(* Spt                                                                 *)

let prop_dijkstra_matches_bellman_ford =
  QCheck.Test.make ~name:"dijkstra distances = bellman-ford" ~count:50
    QCheck.(pair (int_bound 10000) (int_bound 20))
    (fun (seed, n) ->
      let n = n + 2 in
      let g = random_connected_graph seed n (2 * n) in
      let src = seed mod n in
      let spt = Spt.dijkstra g ~src in
      let ref_dist = bellman_ford g ~src in
      Array.for_all2
        (fun a b -> Float.abs (a -. b) < 1e-9)
        spt.Spt.dist ref_dist)

let prop_dijkstra_paths_valid =
  QCheck.Test.make ~name:"dijkstra paths walk real edges with right cost"
    ~count:50
    QCheck.(pair (int_bound 10000) (int_bound 20))
    (fun (seed, n) ->
      let n = n + 2 in
      let g = random_connected_graph seed n (2 * n) in
      let src = seed mod n in
      let spt = Spt.dijkstra g ~src in
      List.for_all
        (fun dst ->
          match Spt.path spt dst with
          | None -> false
          | Some nodes ->
              let rec cost = function
                | a :: (b :: _ as rest) -> (
                    match Graph.edge_weight g a b with
                    | Some w -> w +. cost rest
                    | None -> infinity)
                | _ -> 0.0
              in
              List.hd nodes = src
              && List.nth nodes (List.length nodes - 1) = dst
              && Float.abs (cost nodes -. Spt.distance spt dst) < 1e-9)
        (List.init n Fun.id))

let test_spt_filtered () =
  let g = Graph.create ~n:4 in
  (* 0 - 1 - 2, and 0 - 3 - 2 with 3 forbidden *)
  Graph.add_edge g 0 1 5.0;
  Graph.add_edge g 1 2 5.0;
  Graph.add_edge g 0 3 1.0;
  Graph.add_edge g 3 2 1.0;
  let spt = Spt.dijkstra_filtered g ~src:0 ~allow:(fun v -> v <> 3) in
  check (Alcotest.float 1e-9) "detour distance" 10.0 (Spt.distance spt 2);
  check Alcotest.bool "forbidden unreachable" false (Spt.reachable spt 3)

let test_spt_next_hop () =
  let g = Graph.create ~n:3 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 1.0;
  let spt = Spt.dijkstra g ~src:0 in
  check Alcotest.(option int) "next hop" (Some 1) (Spt.next_hop spt 2);
  check Alcotest.(option int) "self" None (Spt.next_hop spt 0)

let test_spt_hops_and_eccentricity () =
  let g = Graph.create ~n:4 in
  Graph.add_edge g 0 1 10.0;
  Graph.add_edge g 1 2 10.0;
  Graph.add_edge g 2 3 10.0;
  check Alcotest.(option int) "hops ignore weights" (Some 3) (Spt.hops g ~src:0 ~dst:3);
  check Alcotest.int "eccentricity" 3 (Spt.eccentricity g ~src:0 ~allow:(fun _ -> true));
  check Alcotest.int "filtered ecc" 1
    (Spt.eccentricity g ~src:0 ~allow:(fun v -> v < 2))

(* ------------------------------------------------------------------ *)
(* Shared fixture: one domain of an internet                           *)

let single_domain_inet ?(n = 12) ?(seed = 3L) () =
  Internet.build_custom ~seed
    [| { Internet.routers = n; endhosts = 2; transit = true } |]
    []

(* ------------------------------------------------------------------ *)
(* Linkstate                                                           *)

let test_ls_distance_symmetric () =
  let inet = single_domain_inet () in
  let ls = Linkstate.compute inet ~domain:0 in
  let routers = Linkstate.routers ls in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check (Alcotest.float 1e-9) "symmetric"
            (Linkstate.distance ls ~src:a ~dst:b)
            (Linkstate.distance ls ~src:b ~dst:a))
        routers)
    routers

let test_ls_anycast_closest () =
  let inet = single_domain_inet () in
  let ls = Linkstate.compute inet ~domain:0 in
  let routers = Linkstate.routers ls in
  let m1 = List.nth routers 0 and m2 = List.nth routers (List.length routers - 1) in
  Linkstate.advertise_anycast ls ~group ~member:m1;
  Linkstate.advertise_anycast ls ~group ~member:m2;
  List.iter
    (fun src ->
      match Linkstate.anycast_route ls ~src ~group with
      | None -> Alcotest.fail "no anycast route"
      | Some Linkstate.Deliver ->
          check Alcotest.bool "deliver only at members" true (src = m1 || src = m2)
      | Some (Linkstate.Toward { member; metric; _ }) ->
          let best =
            Float.min
              (Linkstate.distance ls ~src ~dst:m1)
              (Linkstate.distance ls ~src ~dst:m2)
          in
          check (Alcotest.float 1e-9) "routes to closest member" best metric;
          check (Alcotest.float 1e-9) "member is the argmin" best
            (Linkstate.distance ls ~src ~dst:member))
    routers

let test_ls_pseudo_node_encoding_equivalent () =
  (* the paper's two LS encodings (§3.2) must agree: explicit member
     listing vs a high-cost link to a pseudo-node *)
  let inet = single_domain_inet ~n:12 ~seed:8L () in
  let ls = Linkstate.compute inet ~domain:0 in
  let routers = Linkstate.routers ls in
  Linkstate.advertise_anycast ls ~group ~member:2;
  Linkstate.advertise_anycast ls ~group ~member:9;
  List.iter
    (fun src ->
      match
        ( Linkstate.anycast_route ls ~src ~group,
          Linkstate.anycast_route_pseudo_node ls ~src ~group )
      with
      | Some Linkstate.Deliver, Some Linkstate.Deliver -> ()
      | ( Some (Linkstate.Toward { metric = m1; member = mem1; _ }),
          Some (Linkstate.Toward { metric = m2; member = mem2; _ }) ) ->
          check (Alcotest.float 1e-6) "same metric" m1 m2;
          (* on ties the encodings may pick different members, but both
             picks must achieve the metric *)
          check (Alcotest.float 1e-9) "listing's member achieves it" m1
            (Linkstate.distance ls ~src ~dst:mem1);
          check (Alcotest.float 1e-6) "pseudo-node's member achieves it" m1
            (Linkstate.distance ls ~src ~dst:mem2)
      | a, b ->
          Alcotest.fail
            (Printf.sprintf "encodings disagree structurally at %d (%b vs %b)"
               src (a <> None) (b <> None)))
    routers

let test_ls_members_visible () =
  let inet = single_domain_inet () in
  let ls = Linkstate.compute inet ~domain:0 in
  check Alcotest.(list int) "no members yet" [] (Linkstate.anycast_members ls ~group);
  Linkstate.advertise_anycast ls ~group ~member:2;
  Linkstate.advertise_anycast ls ~group ~member:0;
  Linkstate.advertise_anycast ls ~group ~member:2 (* duplicate ignored *);
  check Alcotest.(list int) "sorted members" [ 0; 2 ]
    (Linkstate.anycast_members ls ~group);
  Linkstate.withdraw_anycast ls ~group ~member:0;
  check Alcotest.(list int) "after withdraw" [ 2 ]
    (Linkstate.anycast_members ls ~group);
  Linkstate.withdraw_anycast ls ~group ~member:2;
  check Alcotest.int "group gone" 0 (List.length (Linkstate.groups ls))

let test_ls_domain_scoped () =
  let inet = Internet.small_example () in
  let ls = Linkstate.compute inet ~domain:0 in
  let foreign =
    (Internet.domain inet 1).Internet.router_ids.(0)
  in
  check Alcotest.bool "foreign unreachable" true
    (Linkstate.distance ls ~src:(List.hd (Linkstate.routers ls)) ~dst:foreign
    = infinity);
  Alcotest.check_raises "cannot advertise foreign member"
    (Invalid_argument "Linkstate.advertise_anycast: router not in domain")
    (fun () -> Linkstate.advertise_anycast ls ~group ~member:foreign)

(* ------------------------------------------------------------------ *)
(* Distvec                                                             *)

let test_dv_agrees_with_ls () =
  let inet = single_domain_inet ~n:10 () in
  let ls = Linkstate.compute inet ~domain:0 in
  let dv = Distvec.create inet ~domain:0 in
  let rounds = Distvec.converge dv in
  check Alcotest.bool "converged in >0 rounds" true (rounds > 0);
  check Alcotest.bool "stable after convergence" false (Distvec.step dv);
  let routers = Linkstate.routers ls in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check (Alcotest.float 1e-9) "dv distance = ls distance"
            (Linkstate.distance ls ~src:a ~dst:b)
            (Distvec.distance dv ~src:a ~dst:b))
        routers)
    routers

let prop_dv_agrees_with_ls_any_seed =
  QCheck.Test.make ~name:"dv = ls distances over random domains" ~count:15
    QCheck.(pair (int_bound 1000) (int_bound 10))
    (fun (seed, n) ->
      let n = n + 3 in
      let inet = single_domain_inet ~n ~seed:(Int64.of_int seed) () in
      let ls = Linkstate.compute inet ~domain:0 in
      let dv = Distvec.create inet ~domain:0 in
      ignore (Distvec.converge dv);
      let routers = Linkstate.routers ls in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              Float.abs
                (Linkstate.distance ls ~src:a ~dst:b
                -. Distvec.distance dv ~src:a ~dst:b)
              < 1e-9)
            routers)
        routers)

let test_dv_anycast_distance () =
  let inet = single_domain_inet ~n:10 () in
  let ls = Linkstate.compute inet ~domain:0 in
  let dv = Distvec.create inet ~domain:0 in
  ignore (Distvec.converge dv);
  let routers = Linkstate.routers ls in
  let m1 = List.nth routers 1 and m2 = List.nth routers 7 in
  Linkstate.advertise_anycast ls ~group ~member:m1;
  Linkstate.advertise_anycast ls ~group ~member:m2;
  Distvec.advertise_anycast dv ~group ~member:m1;
  Distvec.advertise_anycast dv ~group ~member:m2;
  ignore (Distvec.converge dv);
  List.iter
    (fun src ->
      let expected =
        Float.min
          (Linkstate.distance ls ~src ~dst:m1)
          (Linkstate.distance ls ~src ~dst:m2)
      in
      check (Alcotest.float 1e-9) "dv anycast distance" expected
        (Distvec.anycast_distance dv ~src ~group);
      match Distvec.anycast_route dv ~src ~group with
      | Some Distvec.Deliver ->
          check Alcotest.bool "deliver at member" true (src = m1 || src = m2)
      | Some (Distvec.Toward { metric; _ }) ->
          check (Alcotest.float 1e-9) "toward metric" expected metric
      | None -> Alcotest.fail "no dv anycast route")
    routers

let test_dv_withdraw_propagates () =
  let inet = single_domain_inet ~n:8 () in
  let dv = Distvec.create inet ~domain:0 in
  ignore (Distvec.converge dv);
  Distvec.advertise_anycast dv ~group ~member:0;
  Distvec.advertise_anycast dv ~group ~member:5;
  ignore (Distvec.converge dv);
  Distvec.withdraw_anycast dv ~group ~member:0;
  let rounds = Distvec.converge dv in
  check Alcotest.bool "withdrawal needs rounds" true (rounds > 0);
  (* everyone now routes to member 5 *)
  let ls = Linkstate.compute inet ~domain:0 in
  List.iter
    (fun src ->
      if src <> 5 then
        check (Alcotest.float 1e-9) "post-withdraw distance"
          (Linkstate.distance ls ~src ~dst:5)
          (Distvec.anycast_distance dv ~src ~group))
    (Linkstate.routers ls)

let test_dv_link_failure_reconverges () =
  let inet = single_domain_inet ~n:10 ~seed:6L () in
  let dv = Distvec.create inet ~domain:0 in
  ignore (Distvec.converge dv);
  (* fail an edge that lies on a cycle so the domain stays connected *)
  let g = inet.Internet.graph in
  let edge =
    List.find_opt
      (fun (a, b, _) ->
        Graph.remove_edge g a b;
        let still = Graph.is_connected g in
        if not still then Graph.add_edge g a b 1.0;
        still)
      (Graph.edges g)
  in
  match edge with
  | None -> Alcotest.fail "no removable edge in fixture"
  | Some (a, b, _) ->
      Distvec.fail_link dv a b;
      let rounds = Distvec.converge dv in
      check Alcotest.bool "re-convergence does work" true (rounds > 0);
      (* reference: link-state recomputed over the mutated graph *)
      let ls = Linkstate.compute inet ~domain:0 in
      List.iter
        (fun src ->
          List.iter
            (fun dst ->
              check (Alcotest.float 1e-9)
                (Printf.sprintf "post-failure %d->%d" src dst)
                (Linkstate.distance ls ~src ~dst)
                (Distvec.distance dv ~src ~dst))
            (Linkstate.routers ls))
        (Linkstate.routers ls)

let test_dv_partition_counts_to_infinity_bounded () =
  (* two routers joined by one link: failing it must converge to
     unreachable (bounded by the protocol's infinity), not loop *)
  let inet =
    Internet.build_custom ~seed:1L ~intra_style:(Internet.Ring_chords 0)
      [| { Internet.routers = 2; endhosts = 0; transit = true } |]
      []
  in
  let dv = Distvec.create inet ~domain:0 in
  ignore (Distvec.converge dv);
  check Alcotest.bool "initially reachable" true
    (Distvec.distance dv ~src:0 ~dst:1 < infinity);
  Distvec.fail_link dv 0 1;
  ignore (Distvec.converge dv);
  check Alcotest.bool "converges to unreachable" true
    (Distvec.distance dv ~src:0 ~dst:1 = infinity);
  (* restoring the link brings the route back *)
  Distvec.restore_link dv 0 1 1.0;
  ignore (Distvec.converge dv);
  check (Alcotest.float 1e-9) "restored" 1.0 (Distvec.distance dv ~src:0 ~dst:1)

let test_dv_next_hop_walks_to_destination () =
  let inet = single_domain_inet ~n:10 () in
  let dv = Distvec.create inet ~domain:0 in
  ignore (Distvec.converge dv);
  let walk src dst =
    let rec go cur steps =
      if cur = dst then true
      else if steps > 50 then false
      else
        match Distvec.next_hop dv ~src:cur ~dst with
        | Some nh -> go nh (steps + 1)
        | None -> false
    in
    go src 0
  in
  let routers = List.init 10 Fun.id in
  List.iter
    (fun a ->
      List.iter
        (fun b -> check Alcotest.bool "walk reaches" true (walk a b))
        routers)
    routers

(* ------------------------------------------------------------------ *)
(* Igp: the unified wrapper                                            *)

module Igp = Routing.Igp

let test_igp_flavors_agree_on_unicast () =
  let inet = single_domain_inet ~n:10 ~seed:4L () in
  let ls = Igp.compute inet ~domain:0 ~flavor:Igp.Linkstate_igp in
  let dv = Igp.compute inet ~domain:0 ~flavor:Igp.Distvec_igp in
  check Alcotest.bool "flavors" true
    (Igp.flavor ls = Igp.Linkstate_igp && Igp.flavor dv = Igp.Distvec_igp);
  check Alcotest.bool "capability gap" true
    (Igp.members_known ls && not (Igp.members_known dv));
  for a = 0 to 9 do
    for b = 0 to 9 do
      check (Alcotest.float 1e-9) "distances agree"
        (Igp.distance ls ~src:a ~dst:b)
        (Igp.distance dv ~src:a ~dst:b)
    done
  done

let test_igp_anycast_decisions_agree () =
  let inet = single_domain_inet ~n:10 ~seed:4L () in
  let ls = Igp.compute inet ~domain:0 ~flavor:Igp.Linkstate_igp in
  let dv = Igp.compute inet ~domain:0 ~flavor:Igp.Distvec_igp in
  List.iter
    (fun igp ->
      Igp.advertise_anycast igp ~group ~member:2;
      Igp.advertise_anycast igp ~group ~member:7)
    [ ls; dv ];
  check Alcotest.bool "both track live groups" true
    (Igp.groups ls = [ group ] && Igp.groups dv = [ group ]);
  for src = 0 to 9 do
    match (Igp.anycast_route ls ~src ~group, Igp.anycast_route dv ~src ~group) with
    | Some a, Some b ->
        check Alcotest.bool "deliver agrees" true (a.Igp.deliver = b.Igp.deliver);
        check (Alcotest.float 1e-9) "metric agrees" a.Igp.metric b.Igp.metric;
        (* when forwarding (not delivering), only LS can name the member *)
        if not a.Igp.deliver then
          check Alcotest.bool "LS names the member, DV does not" true
            (a.Igp.member <> None && b.Igp.member = None)
    | _ -> Alcotest.fail "missing anycast route"
  done;
  (* withdrawal empties the live-group set on both *)
  List.iter
    (fun igp ->
      Igp.withdraw_anycast igp ~group ~member:2;
      Igp.withdraw_anycast igp ~group ~member:7;
      check Alcotest.int "group retired" 0 (List.length (Igp.groups igp)))
    [ ls; dv ]

let () =
  Alcotest.run "routing"
    [
      ( "spt",
        [
          qcheck prop_dijkstra_matches_bellman_ford;
          qcheck prop_dijkstra_paths_valid;
          Alcotest.test_case "filtered" `Quick test_spt_filtered;
          Alcotest.test_case "next hop" `Quick test_spt_next_hop;
          Alcotest.test_case "hops / eccentricity" `Quick
            test_spt_hops_and_eccentricity;
        ] );
      ( "linkstate",
        [
          Alcotest.test_case "symmetric distances" `Quick test_ls_distance_symmetric;
          Alcotest.test_case "anycast routes to closest" `Quick test_ls_anycast_closest;
          Alcotest.test_case "pseudo-node encoding equivalent" `Quick
            test_ls_pseudo_node_encoding_equivalent;
          Alcotest.test_case "member visibility" `Quick test_ls_members_visible;
          Alcotest.test_case "domain scoped" `Quick test_ls_domain_scoped;
        ] );
      ( "igp",
        [
          Alcotest.test_case "flavors agree on unicast" `Quick
            test_igp_flavors_agree_on_unicast;
          Alcotest.test_case "anycast decisions agree" `Quick
            test_igp_anycast_decisions_agree;
        ] );
      ( "distvec",
        [
          Alcotest.test_case "agrees with linkstate" `Quick test_dv_agrees_with_ls;
          qcheck prop_dv_agrees_with_ls_any_seed;
          Alcotest.test_case "anycast distances" `Quick test_dv_anycast_distance;
          Alcotest.test_case "withdrawal propagates" `Quick test_dv_withdraw_propagates;
          Alcotest.test_case "link failure re-converges" `Quick
            test_dv_link_failure_reconverges;
          Alcotest.test_case "bounded count-to-infinity" `Quick
            test_dv_partition_counts_to_infinity_bounded;
          Alcotest.test_case "next hops walk to destination" `Quick
            test_dv_next_hop_walks_to_destination;
        ] );
    ]
