(* Integration tests: the four paper figures must reproduce their
   narrated outcomes (see DESIGN.md section 3 for the expected shapes). *)

module Scenario = Evolve.Scenario

let check = Alcotest.check

(* --- Figure 1: seamless spread of deployment ---------------------- *)

let fig1 = lazy (Scenario.fig1 ())

let test_fig1_stage_count () =
  check Alcotest.int "three stages" 3 (List.length (Lazy.force fig1))

let test_fig1_always_delivered () =
  List.iter
    (fun (s : Scenario.fig1_stage) ->
      check Alcotest.bool "universal access at every stage" true
        (s.Scenario.metric < infinity))
    (Lazy.force fig1)

let test_fig1_ingress_tracks_deployment () =
  match Lazy.force fig1 with
  | [ s1; s2; s3 ] ->
      check Alcotest.string "only X offers at stage 1" "X" s1.Scenario.ingress_domain;
      check Alcotest.string "closer Y takes over" "Y" s2.Scenario.ingress_domain;
      check Alcotest.string "local Z serves its own client" "Z"
        s3.Scenario.ingress_domain
  | _ -> Alcotest.fail "expected exactly three stages"

let test_fig1_monotone_improvement () =
  let rec monotone = function
    | (a : Scenario.fig1_stage) :: (b :: _ as rest) ->
        a.Scenario.metric >= b.Scenario.metric && monotone rest
    | _ -> true
  in
  check Alcotest.bool "redirection distance never worsens" true
    (monotone (Lazy.force fig1));
  (* final stage: the client's own ISP serves it at zero distance *)
  let last = List.nth (Lazy.force fig1) 2 in
  check (Alcotest.float 1e-9) "local service" 0.0 last.Scenario.metric

(* --- Figure 2: default routes and peering advertisements ---------- *)

let fig2 = lazy (Scenario.fig2 ())

let terminates stage source rows =
  match
    List.find_opt
      (fun (r : Scenario.fig2_row) ->
        r.Scenario.stage = stage && r.Scenario.source = source)
      rows
  with
  | Some r -> r.Scenario.terminates_in
  | None -> "(missing)"

let test_fig2_before_peering () =
  let rows = Lazy.force fig2 in
  check Alcotest.string "X defaults to D" "D"
    (terminates "before Y-Q peering" "X" rows);
  check Alcotest.string "Y defaults to D" "D"
    (terminates "before Y-Q peering" "Y" rows);
  check Alcotest.string "Z reaches Q" "Q" (terminates "before Y-Q peering" "Z" rows)

let test_fig2_after_peering () =
  let rows = Lazy.force fig2 in
  check Alcotest.string "X still defaults to D" "D"
    (terminates "after Y-Q peering" "X" rows);
  check Alcotest.string "Y switches to Q" "Q"
    (terminates "after Y-Q peering" "Y" rows);
  check Alcotest.string "Z unchanged" "Q" (terminates "after Y-Q peering" "Z" rows)

(* --- Figure 3: egress selection ----------------------------------- *)

let fig3 = lazy (Scenario.fig3 ())

let row3 name =
  match
    List.find_opt
      (fun (r : Scenario.fig3_row) -> r.Scenario.strategy = name)
      (Lazy.force fig3)
  with
  | Some r -> r
  | None -> Alcotest.fail ("missing strategy row: " ^ name)

let test_fig3_exit_early_leaves_at_m () =
  let r = row3 "exit-early" in
  check Alcotest.string "last vN hop in M" "M" r.Scenario.last_vn_domain;
  check Alcotest.int "no vN-Bone hops" 0 r.Scenario.vn_hops

let test_fig3_bgp_aware_rides_to_o () =
  let r = row3 "bgpv(n-1)-aware" in
  check Alcotest.string "last vN hop in O" "O" r.Scenario.last_vn_domain;
  check Alcotest.bool "uses the vN-Bone" true (r.Scenario.vn_hops > 0)

let test_fig3_bgp_aware_exits_closer () =
  let early = row3 "exit-early" and aware = row3 "bgpv(n-1)-aware" in
  check Alcotest.bool "fewer exposed exit hops" true
    (aware.Scenario.exit_hops < early.Scenario.exit_hops);
  check Alcotest.bool "larger vN fraction" true
    (aware.Scenario.vn_fraction > early.Scenario.vn_fraction)

(* --- Figure 4: advertising-by-proxy ------------------------------- *)

let fig4 = lazy (Scenario.fig4 ())

let row4 name =
  match
    List.find_opt
      (fun (r : Scenario.fig4_row) -> r.Scenario.strategy = name)
      (Lazy.force fig4)
  with
  | Some r -> r
  | None -> Alcotest.fail ("missing strategy row: " ^ name)

let test_fig4_delivery () =
  List.iter
    (fun (r : Scenario.fig4_row) ->
      check Alcotest.bool ("delivered: " ^ r.Scenario.strategy) true
        r.Scenario.delivered)
    (Lazy.force fig4)

let test_fig4_without_proxy_exits_at_a () =
  let r = row4 "exit-early" in
  check Alcotest.string "egress stays in A" "A" r.Scenario.egress_domain;
  check Alcotest.int "no vN hops" 0 r.Scenario.vn_hops

let test_fig4_proxy_rides_to_c () =
  let r = row4 "advertise-by-proxy" in
  check Alcotest.string "egress at C, adjacent to Z" "C" r.Scenario.egress_domain;
  check Alcotest.bool "rides the vN-Bone" true (r.Scenario.vn_hops > 0)

let test_fig4_proxy_reduces_exposure () =
  let early = row4 "exit-early" and proxy = row4 "advertise-by-proxy" in
  check Alcotest.bool "less IPv(N-1) exposure with proxy" true
    (proxy.Scenario.exposure_hops < early.Scenario.exposure_hops)

(* --- pretty-printers ------------------------------------------------ *)

let render pp v =
  let b = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer b in
  pp fmt v;
  Format.pp_print_flush fmt ();
  Buffer.contents b

let test_pp_smoke () =
  let nonempty what s =
    check Alcotest.bool (what ^ " renders") true (String.length s > 40)
  in
  nonempty "fig1" (render Scenario.pp_fig1 (Lazy.force fig1));
  nonempty "fig2" (render Scenario.pp_fig2 (Lazy.force fig2));
  nonempty "fig3" (render Scenario.pp_fig3 (Lazy.force fig3));
  nonempty "fig4" (render Scenario.pp_fig4 (Lazy.force fig4))

let () =
  Alcotest.run "scenario"
    [
      ( "fig1",
        [
          Alcotest.test_case "stage count" `Quick test_fig1_stage_count;
          Alcotest.test_case "always delivered" `Quick test_fig1_always_delivered;
          Alcotest.test_case "ingress tracks deployment" `Quick
            test_fig1_ingress_tracks_deployment;
          Alcotest.test_case "monotone improvement" `Quick test_fig1_monotone_improvement;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "before peering" `Quick test_fig2_before_peering;
          Alcotest.test_case "after peering" `Quick test_fig2_after_peering;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "exit-early leaves at M" `Quick
            test_fig3_exit_early_leaves_at_m;
          Alcotest.test_case "bgp-aware rides to O" `Quick test_fig3_bgp_aware_rides_to_o;
          Alcotest.test_case "bgp-aware exits closer" `Quick
            test_fig3_bgp_aware_exits_closer;
        ] );
      ("pp", [ Alcotest.test_case "printers render" `Quick test_pp_smoke ]);
      ( "fig4",
        [
          Alcotest.test_case "delivery" `Quick test_fig4_delivery;
          Alcotest.test_case "no proxy: exits at A" `Quick
            test_fig4_without_proxy_exits_at_a;
          Alcotest.test_case "proxy rides to C" `Quick test_fig4_proxy_rides_to_c;
          Alcotest.test_case "proxy reduces exposure" `Quick
            test_fig4_proxy_reduces_exposure;
        ] );
    ]
