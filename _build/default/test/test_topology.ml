(* Tests for the graph/RNG/internet-generation substrate. *)

module Rng = Topology.Rng
module Graph = Topology.Graph
module Relationship = Topology.Relationship
module Internet = Topology.Internet

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)

let test_rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let r = Rng.create 7L in
  let s = Rng.split r in
  (* drawing from the split stream must not change the parent's future *)
  let r2 = Rng.create 7L in
  let _ = Rng.split r2 in
  ignore (Rng.int s 100);
  check Alcotest.int "parent unaffected" (Rng.int r2 1000000) (Rng.int r 1000000)

let test_rng_bounds () =
  let r = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    check Alcotest.bool "int_in range" true (v >= -5 && v <= 5)
  done;
  for _ = 1 to 100 do
    let f = Rng.float r 2.5 in
    check Alcotest.bool "float range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_shuffle_permutes () =
  let r = Rng.create 9L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  check Alcotest.bool "same multiset" true (sorted = Array.init 50 Fun.id)

let test_rng_sample () =
  let r = Rng.create 9L in
  let s = Rng.sample r 5 [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  check Alcotest.int "size" 5 (List.length s);
  check Alcotest.int "distinct" 5 (List.length (List.sort_uniq Int.compare s));
  check Alcotest.int "oversample" 3 (List.length (Rng.sample r 99 [ 1; 2; 3 ]))

let test_rng_exponential_mean () =
  let r = Rng.create 5L in
  let n = 20000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential r 3.0 in
    check Alcotest.bool "non-negative" true (x >= 0.0);
    total := !total +. x
  done;
  let mean = !total /. float_of_int n in
  check Alcotest.bool "sample mean near 3" true (Float.abs (mean -. 3.0) < 0.15)

let test_rng_zipf_head_heavy () =
  let r = Rng.create 5L in
  let hits = Array.make 11 0 in
  for _ = 1 to 5000 do
    let k = Rng.zipf r ~n:10 ~s:1.0 in
    hits.(k) <- hits.(k) + 1
  done;
  check Alcotest.bool "rank 1 dominates rank 10" true (hits.(1) > 3 * hits.(10))

let prop_rng_zipf_in_range =
  QCheck.Test.make ~name:"zipf stays in range" ~count:200
    QCheck.(pair (int_bound 1000) (int_bound 30))
    (fun (seed, n) ->
      let n = n + 1 in
      let r = Rng.create (Int64.of_int seed) in
      let k = Rng.zipf r ~n ~s:1.1 in
      k >= 1 && k <= n)

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)

let test_graph_edges () =
  let g = Graph.create ~n:4 in
  Graph.add_edge g 0 1 2.0;
  Graph.add_edge g 1 2 3.0;
  check Alcotest.bool "undirected" true (Graph.has_edge g 1 0);
  check Alcotest.(option (float 0.0)) "weight" (Some 2.0) (Graph.edge_weight g 0 1);
  check Alcotest.int "edge count" 2 (Graph.edge_count g);
  Graph.add_edge g 0 1 5.0;
  check Alcotest.int "replace keeps count" 2 (Graph.edge_count g);
  check Alcotest.(option (float 0.0)) "replaced" (Some 5.0) (Graph.edge_weight g 0 1);
  Graph.remove_edge g 0 1;
  check Alcotest.bool "removed" false (Graph.has_edge g 0 1);
  check Alcotest.int "count after remove" 1 (Graph.edge_count g)

let test_graph_rejects () =
  let g = Graph.create ~n:2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 0 0 1.0);
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Graph.add_edge: non-positive weight") (fun () ->
      Graph.add_edge g 0 1 0.0);
  Alcotest.check_raises "range" (Invalid_argument "Graph.add_edge: node out of range")
    (fun () -> Graph.add_edge g 0 5 1.0)

let test_graph_components () =
  let g = Graph.create ~n:6 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 1.0;
  Graph.add_edge g 3 4 1.0;
  let comps = Graph.components g in
  check Alcotest.int "three components" 3 (List.length comps);
  check Alcotest.bool "not connected" false (Graph.is_connected g);
  Graph.add_edge g 2 3 1.0;
  Graph.add_edge g 4 5 1.0;
  check Alcotest.bool "now connected" true (Graph.is_connected g)

let test_graph_copy_isolated () =
  let g = Graph.create ~n:3 in
  Graph.add_edge g 0 1 1.0;
  let g' = Graph.copy g in
  Graph.add_edge g' 1 2 1.0;
  check Alcotest.bool "copy independent" false (Graph.has_edge g 1 2);
  check Alcotest.bool "copy has it" true (Graph.has_edge g' 1 2)

(* ------------------------------------------------------------------ *)
(* Relationship                                                        *)

let test_relationship_invert () =
  check Alcotest.bool "c/p" true
    (Relationship.invert Relationship.Customer = Relationship.Provider);
  check Alcotest.bool "peer" true
    (Relationship.invert Relationship.Peer = Relationship.Peer)

let test_relationship_gao_rexford () =
  let open Relationship in
  (* customer routes are exported to everyone *)
  List.iter
    (fun to_ ->
      check Alcotest.bool "customer route exported" true
        (export_allowed ~learned_from:Customer ~to_))
    [ Customer; Peer; Provider ];
  (* peer/provider routes go only to customers *)
  List.iter
    (fun learned_from ->
      check Alcotest.bool "to customer ok" true
        (export_allowed ~learned_from ~to_:Customer);
      check Alcotest.bool "to peer blocked" false
        (export_allowed ~learned_from ~to_:Peer);
      check Alcotest.bool "to provider blocked" false
        (export_allowed ~learned_from ~to_:Provider))
    [ Peer; Provider ];
  check Alcotest.bool "preference order" true
    (local_preference Customer > local_preference Peer
    && local_preference Peer > local_preference Provider)

(* ------------------------------------------------------------------ *)
(* Internet                                                            *)

let test_build_invariants () =
  let t = Internet.build Internet.default_params in
  (match Internet.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.int "domain count"
    (Internet.default_params.Internet.transit_domains
    * (1 + Internet.default_params.Internet.stubs_per_transit))
    (Internet.num_domains t)

let prop_build_invariants_any_seed =
  QCheck.Test.make ~name:"build invariants hold for any seed" ~count:25
    QCheck.(int_bound 10000)
    (fun seed ->
      let params =
        { Internet.default_params with Internet.seed = Int64.of_int seed }
      in
      Internet.check_invariants (Internet.build params) = Ok ())

let prop_build_styles =
  QCheck.Test.make ~name:"all intra styles produce connected domains" ~count:10
    QCheck.(int_bound 1000)
    (fun seed ->
      List.for_all
        (fun style ->
          let params =
            {
              Internet.default_params with
              Internet.seed = Int64.of_int seed;
              intra_style = style;
            }
          in
          Internet.check_invariants (Internet.build params) = Ok ())
        [
          Internet.Ring_chords 2;
          Internet.Waxman (0.9, 0.3);
          Internet.Erdos_renyi 0.15;
        ])

let test_build_relationships () =
  let t = Internet.build Internet.default_params in
  let nt = Internet.default_params.Internet.transit_domains in
  (* every stub sees its transit as Provider *)
  let stub = nt in
  (match Internet.relationship t ~of_:stub ~to_:0 with
  | Some Relationship.Provider -> ()
  | _ -> Alcotest.fail "stub should see transit 0 as provider");
  (* transit core is a full peer mesh *)
  for i = 0 to nt - 1 do
    for j = 0 to nt - 1 do
      if i <> j then
        match Internet.relationship t ~of_:i ~to_:j with
        | Some Relationship.Peer -> ()
        | _ -> Alcotest.fail "transit pair should peer"
    done
  done

let test_build_custom () =
  let spec r e tr = { Internet.routers = r; endhosts = e; transit = tr } in
  let t =
    Internet.build_custom
      [| spec 3 1 true; spec 2 1 false |]
      [ { Internet.a = 1; b = 0; rel_of_b = Relationship.Provider } ]
  in
  (match Internet.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.int "domains" 2 (Internet.num_domains t);
  check Alcotest.int "routers" 5 (Internet.num_routers t);
  (match Internet.relationship t ~of_:1 ~to_:0 with
  | Some Relationship.Provider -> ()
  | _ -> Alcotest.fail "custom relationship");
  (match Internet.relationship t ~of_:0 ~to_:1 with
  | Some Relationship.Customer -> ()
  | _ -> Alcotest.fail "custom relationship inverse")

let prop_build_ba_invariants =
  QCheck.Test.make ~name:"preferential-attachment build invariants" ~count:10
    QCheck.(int_bound 10000)
    (fun seed ->
      let params =
        {
          Internet.default_ba_params with
          Internet.ba_seed = Int64.of_int seed;
        }
      in
      Internet.check_invariants (Internet.build_ba params) = Ok ())

let test_build_ba_structure () =
  let t = Internet.build_ba Internet.default_ba_params in
  check Alcotest.int "domain count" Internet.default_ba_params.Internet.ba_domains
    (Internet.num_domains t);
  (* the seed clique peers fully *)
  let k = Internet.default_ba_params.Internet.ba_seed_clique in
  for i = 0 to k - 1 do
    for j = 0 to k - 1 do
      if i <> j then
        match Internet.relationship t ~of_:i ~to_:j with
        | Some Relationship.Peer -> ()
        | _ -> Alcotest.fail "core clique must peer"
    done
  done;
  (* every non-core domain has at least one provider *)
  for d = k to Internet.num_domains t - 1 do
    let has_provider =
      List.exists
        (fun (_, rel) -> rel = Relationship.Provider)
        (Internet.neighbor_domains t d)
    in
    check Alcotest.bool "edge domain has a provider" true has_provider
  done;
  (* heavy tail: the busiest domain has far more links than the median *)
  let degs =
    List.init (Internet.num_domains t) (fun d ->
        List.length (Internet.neighbor_domains t d))
  in
  let sorted = List.sort compare degs in
  let median = List.nth sorted (List.length sorted / 2) in
  let top = List.nth sorted (List.length sorted - 1) in
  check Alcotest.bool "heavy-tailed degrees" true (top >= 2 * median)

let test_accessors () =
  let t = Internet.small_example () in
  let r0 = Internet.router t 0 in
  check Alcotest.(option int) "router by addr" (Some 0)
    (Option.map
       (fun (r : Internet.router) -> r.Internet.rid)
       (Internet.router_of_addr t r0.Internet.raddr));
  let h0 = Internet.endhost t 0 in
  check Alcotest.(option int) "endhost by addr" (Some 0)
    (Option.map
       (fun (h : Internet.endhost) -> h.Internet.hid)
       (Internet.endhost_of_addr t h0.Internet.haddr));
  check Alcotest.(option int) "domain of addr" (Some h0.Internet.hdomain)
    (Internet.domain_of_addr t h0.Internet.haddr);
  let borders = Internet.border_routers t 0 in
  check Alcotest.bool "has border routers" true (borders <> []);
  List.iter
    (fun b ->
      check Alcotest.int "border in domain" 0 (Internet.router t b).Internet.rdomain)
    borders

let test_interlinks_between_orientation () =
  let t = Internet.small_example () in
  match t.Internet.interlinks with
  | [] -> Alcotest.fail "no interlinks"
  | l :: _ ->
      let a = l.Internet.a_domain and b = l.Internet.b_domain in
      let fwd = Internet.interlinks_between t a b in
      let bwd = Internet.interlinks_between t b a in
      check Alcotest.bool "both orientations seen" true (fwd <> [] && bwd <> []);
      List.iter
        (fun il ->
          check Alcotest.int "normalised" a il.Internet.a_domain;
          check Alcotest.int "normalised b" b il.Internet.b_domain)
        fwd;
      (* relationship flips with orientation *)
      let rel_fwd = (List.hd fwd).Internet.rel in
      let rel_bwd = (List.hd bwd).Internet.rel in
      check Alcotest.bool "inverted" true (Relationship.invert rel_fwd = rel_bwd)

let () =
  Alcotest.run "topology"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "sample" `Quick test_rng_sample;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "zipf head heavy" `Quick test_rng_zipf_head_heavy;
          qcheck prop_rng_zipf_in_range;
        ] );
      ( "graph",
        [
          Alcotest.test_case "edges" `Quick test_graph_edges;
          Alcotest.test_case "rejects bad input" `Quick test_graph_rejects;
          Alcotest.test_case "components" `Quick test_graph_components;
          Alcotest.test_case "copy isolation" `Quick test_graph_copy_isolated;
        ] );
      ( "relationship",
        [
          Alcotest.test_case "invert" `Quick test_relationship_invert;
          Alcotest.test_case "gao-rexford rules" `Quick test_relationship_gao_rexford;
        ] );
      ( "internet",
        [
          Alcotest.test_case "build invariants" `Quick test_build_invariants;
          Alcotest.test_case "relationships" `Quick test_build_relationships;
          Alcotest.test_case "custom build" `Quick test_build_custom;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "interlink orientation" `Quick
            test_interlinks_between_orientation;
          Alcotest.test_case "preferential-attachment structure" `Quick
            test_build_ba_structure;
          qcheck prop_build_invariants_any_seed;
          qcheck prop_build_styles;
          qcheck prop_build_ba_invariants;
        ] );
    ]
