test/test_simcore.ml: Alcotest Array Fun Int64 Interdomain Lazy List Netcore Printf QCheck QCheck_alcotest Routing Simcore Topology
