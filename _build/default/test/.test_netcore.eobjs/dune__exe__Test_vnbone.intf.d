test/test_vnbone.mli:
