test/test_topology.ml: Alcotest Array Float Fun Int Int64 List Option QCheck QCheck_alcotest Topology
