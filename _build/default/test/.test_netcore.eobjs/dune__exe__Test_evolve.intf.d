test/test_evolve.mli:
