test/test_experiments.ml: Alcotest Evolve Lazy List Printf Topology
