test/test_anycast.mli:
