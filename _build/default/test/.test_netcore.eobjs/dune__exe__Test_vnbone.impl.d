test/test_vnbone.ml: Alcotest Anycast Array Buffer Format Fun Int64 List Netcore Option Printf QCheck QCheck_alcotest Simcore String Topology Vnbone
