test/test_scenario.ml: Alcotest Buffer Evolve Format Lazy List String
