test/test_interdomain.ml: Alcotest Fun Int Int64 Interdomain List Netcore Printf QCheck QCheck_alcotest String Topology
