test/test_routing.ml: Alcotest Array Float Fun Int64 List Netcore Printf QCheck QCheck_alcotest Routing Topology
