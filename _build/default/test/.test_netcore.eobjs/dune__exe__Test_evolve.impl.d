test/test_evolve.ml: Alcotest Anycast Array Evolve Filename Float Fun Int64 List Netcore QCheck QCheck_alcotest Routing Simcore String Sys Topology Vnbone
