test/test_netcore.ml: Alcotest Bool Fun List Netcore Option QCheck QCheck_alcotest Result String
