test/test_anycast.ml: Alcotest Anycast Array Float List Netcore Simcore Topology
