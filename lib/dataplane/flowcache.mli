(** Per-router flow cache in front of the compiled FIB.

    The paper's routing-state concern (§3.2: anycast routes are
    non-aggregatable, so FIBs grow with deployment) makes the
    longest-prefix match the expensive step of every hop. A real line
    card hides that cost behind an exact-match flow cache; this module
    is that cache: a direct-mapped (address → action) array indexed by
    a multiplicative hash of the destination (raw low bits would alias
    the whole internet onto a few slots, since endhost addresses are
    /16-aligned), with hit/miss/eviction counters so experiments can
    report how much locality the workload has.

    Entries are forwarding decisions, so the cache must be {!clear}ed
    whenever the FIB snapshot it fronts is recompiled. *)

type 'a t
(** A direct-mapped cache from {!Netcore.Ipv4.t} to ['a]. *)

type stats = { hits : int; misses : int; evictions : int; occupied : int }

val create : slots:int -> 'a t
(** A cache with at least [slots] slots (rounded up to a power of
    two), all empty. @raise Invalid_argument when [slots <= 0]. *)

val capacity : 'a t -> int
(** The actual (power-of-two) slot count. *)

val lookup : 'a t -> Netcore.Ipv4.t -> 'a option
(** The cached value for this exact address, counting a hit or a
    miss. A slot occupied by a different address is a miss. *)

val insert : 'a t -> Netcore.Ipv4.t -> 'a -> unit
(** Install a value, overwriting the slot; replacing a different
    address counts as an eviction. *)

val find : 'a t -> Netcore.Ipv4.t -> compute:(Netcore.Ipv4.t -> 'a option) -> 'a option
(** [lookup], falling back to [compute] on a miss and caching a
    [Some] result. [None] results are not cached. *)

val clear : 'a t -> unit
(** Drop every entry (FIB recompile invalidation); counters are
    kept. *)

val stats : 'a t -> stats
val hit_rate : 'a t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val reset_stats : 'a t -> unit
