module Packet = Netcore.Packet
module Wire = Netcore.Wire
module Lpm = Netcore.Lpm
module Internet = Topology.Internet
module Forward = Simcore.Forward
module Fib = Simcore.Fib
module Service = Anycast.Service
module Router = Vnbone.Router
module Fabric = Vnbone.Fabric
module Transport = Vnbone.Transport

type t = {
  env : Forward.env;
  tables : Fib.action Lpm.t array; (* installed per-router snapshots *)
  caches : Fib.action Flowcache.t array option;
  telemetry : Telemetry.t;
  mutable link_up : int -> int -> bool;
      (* stored closure, so the hot path calls it without allocating *)
  mutable linkq : Linkq.t option;
      (* finite-capacity link queues; None = infinite pipes *)
}

let every_link_up _ _ = true

let create ?(use_cache = true) ?(cache_slots = 256) (env : Forward.env) =
  let fib = Fib.compile env in
  let n = Internet.num_routers env.Forward.inet in
  {
    env;
    tables = Array.init n (fun r -> Fib.table fib ~router:r);
    caches =
      (if use_cache then
         Some (Array.init n (fun _ -> Flowcache.create ~slots:cache_slots))
       else None);
    telemetry = Telemetry.create ~routers:n;
    link_up = every_link_up;
    linkq = None;
  }

let set_link_filter t f = t.link_up <- f
let clear_link_filter t = t.link_up <- every_link_up
let attach_linkq t lq = t.linkq <- Some lq
let detach_linkq t = t.linkq <- None
let linkq t = t.linkq

let env t = t.env
let telemetry t = t.telemetry
let cached t = Option.is_some t.caches
let cache_hit_rate t = Telemetry.cache_hit_rate t.telemetry

let install t fib r =
  t.tables.(r) <- Fib.table fib ~router:r;
  match t.caches with Some cs -> Flowcache.clear cs.(r) | None -> ()

let refresh ?routers t =
  let fib = Fib.compile t.env in
  match routers with
  | None -> Array.iteri (fun r _ -> install t fib r) t.tables
  | Some rs -> List.iter (install t fib) rs

(* one forwarding decision: flow cache in front of the router's LPM *)
let lookup_action t ~router ~cls dst =
  match t.caches with
  | None -> Lpm.lookup_value dst t.tables.(router)
  | Some cs -> (
      let c = cs.(router) in
      match Flowcache.lookup c dst with
      | Some _ as hit ->
          Telemetry.record_cache t.telemetry ~router ~cls ~hit:true;
          hit
      | None -> (
          Telemetry.record_cache t.telemetry ~router ~cls ~hit:false;
          match Lpm.lookup_value dst t.tables.(router) with
          | Some a as r ->
              Flowcache.insert c dst a;
              r
          | None -> None))

(* Delivery/drop bookkeeping shared by every exit from the hop loop.
   Top level — not nested in [inject] — so the loop below stays
   capture-free (hot-path-alloc). *)
let finish_trace tel ~router:r ~cls ~wire acc outcome =
  (match outcome with
  | Forward.Router_accepted _ | Forward.Endhost_accepted _ ->
      (* delivery decodes (and decapsulates) the wire bytes *)
      (match Wire.decode wire with
      | Ok p -> ignore (Packet.decapsulate p)
      | Error _ -> ());
      Telemetry.record_delivered tel ~router:r ~cls
  | Forward.Dropped Forward.Ttl_expired ->
      Telemetry.record_ttl_expired tel ~router:r ~cls
  | Forward.Dropped Forward.Queue_full ->
      Telemetry.record_queue_drop tel ~router:r ~cls
  | Forward.Dropped Forward.Shed -> Telemetry.record_shed tel ~router:r ~cls
  | Forward.Dropped _ -> Telemetry.record_drop tel ~router:r ~cls);
  { Forward.hops = List.rev acc; outcome }

(* The per-packet hop loop. All state threads through arguments, so
   the recursion is a static closure; the one cons per hop is the
   trace the function exists to build (allowlisted). *)
let rec hop_loop t tel ~cls ~dst ~wire ~len ~encap_bytes r ttl acc =
  let acc = r :: acc in
  Telemetry.record_hop tel ~router:r ~cls ~bytes:len ~encap_bytes;
  match lookup_action t ~router:r ~cls dst with
  | None -> finish_trace tel ~router:r ~cls ~wire acc (Forward.Dropped Forward.No_route)
  | Some Fib.Local -> finish_trace tel ~router:r ~cls ~wire acc (Forward.Router_accepted r)
  | Some (Fib.Attached h) ->
      finish_trace tel ~router:r ~cls ~wire acc (Forward.Endhost_accepted h)
  | Some (Fib.Next_hop nh) ->
      if ttl <= 1 then
        finish_trace tel ~router:r ~cls ~wire acc
          (Forward.Dropped Forward.Ttl_expired)
      else if nh = r then
        finish_trace tel ~router:r ~cls ~wire acc (Forward.Dropped Forward.Stuck)
      else if not (t.link_up r nh) then
        finish_trace tel ~router:r ~cls ~wire acc
          (Forward.Dropped Forward.Link_down)
      else begin
        match Linkq.admit_opt t.linkq ~src:r ~dst:nh ~cls ~bytes:len with
        | Linkq.Admitted ->
            hop_loop t tel ~cls ~dst ~wire ~len ~encap_bytes nh (ttl - 1) acc
        | Linkq.Rejected_full ->
            finish_trace tel ~router:r ~cls ~wire acc
              (Forward.Dropped Forward.Queue_full)
        | Linkq.Rejected_shed ->
            finish_trace tel ~router:r ~cls ~wire acc
              (Forward.Dropped Forward.Shed)
      end

let inject ?cls t packet ~entry =
  let wire = Wire.encode packet in
  let len = String.length wire in
  let cls =
    match cls with
    | Some c -> c
    | None -> (
        match packet.Packet.payload with
        | Packet.Data _ -> Telemetry.Native
        | Packet.Encap _ -> Telemetry.Encap)
  in
  (* bytes beyond a native packet carrying the same body *)
  let encap_bytes =
    match packet.Packet.payload with
    | Packet.Data _ -> 0
    | Packet.Encap vn -> len - (13 + String.length vn.Packet.body)
  in
  (* the hot path reads the destination straight from the header bytes *)
  let dst = Wire.peek_dst_or wire ~default:packet.Packet.dst in
  hop_loop t t.telemetry ~cls ~dst ~wire ~len ~encap_bytes entry
    packet.Packet.ttl []

let send_data t ~src ~dst ~payload =
  let inet = t.env.Forward.inet in
  let hs = Internet.endhost inet src and hd = Internet.endhost inet dst in
  let p = Packet.make_data ~src:hs.Internet.haddr ~dst:hd.Internet.haddr payload in
  inject t p ~entry:hs.Internet.access_router

let run_flow t (f : Workload.flow) =
  let payload = String.make f.Workload.bytes_per_packet 'x' in
  for _ = 1 to f.Workload.packets do
    ignore (send_data t ~src:f.Workload.src ~dst:f.Workload.dst ~payload)
  done

let run_batch t flows = List.iter (run_flow t) flows

(* --- arena-backed batch entry points --------------------------------- *)

type buffer = Heap | Slab of Netcore.Arena.t

(* Trace-free hop loop over an arena view: same forwarding decisions
   and telemetry bumps as [hop_loop], minus the per-hop cons and the
   delivery-side decode, so a steady-state batch does zero GC work. *)
let rec step_loop t tel ~cls ~dst ~len ~encap_bytes r ttl =
  Telemetry.record_hop tel ~router:r ~cls ~bytes:len ~encap_bytes;
  match lookup_action t ~router:r ~cls dst with
  | None ->
      Telemetry.record_drop tel ~router:r ~cls;
      Forward.Dropped Forward.No_route
  | Some Fib.Local ->
      Telemetry.record_delivered tel ~router:r ~cls;
      Forward.Router_accepted r
  | Some (Fib.Attached h) ->
      Telemetry.record_delivered tel ~router:r ~cls;
      Forward.Endhost_accepted h
  | Some (Fib.Next_hop nh) ->
      if ttl <= 1 then begin
        Telemetry.record_ttl_expired tel ~router:r ~cls;
        Forward.Dropped Forward.Ttl_expired
      end
      else if nh = r then begin
        Telemetry.record_drop tel ~router:r ~cls;
        Forward.Dropped Forward.Stuck
      end
      else if not (t.link_up r nh) then begin
        Telemetry.record_drop tel ~router:r ~cls;
        Forward.Dropped Forward.Link_down
      end
      else begin
        match Linkq.admit_opt t.linkq ~src:r ~dst:nh ~cls ~bytes:len with
        | Linkq.Admitted -> step_loop t tel ~cls ~dst ~len ~encap_bytes nh (ttl - 1)
        | Linkq.Rejected_full ->
            Telemetry.record_queue_drop tel ~router:r ~cls;
            Forward.Dropped Forward.Queue_full
        | Linkq.Rejected_shed ->
            Telemetry.record_shed tel ~router:r ~cls;
            Forward.Dropped Forward.Shed
      end

let step t ~buf ~off ~len ~cls ~encap_bytes ~entry =
  let dst =
    Wire.peek_dst_big buf ~off ~len ~default:(Netcore.Ipv4.of_int 0)
  in
  let ttl = Wire.peek_ttl_big buf ~off ~len ~default:0 in
  step_loop t t.telemetry ~cls ~dst ~len ~encap_bytes entry ttl

let run_flow_in t buffer (f : Workload.flow) =
  match buffer with
  | Heap -> run_flow t f
  | Slab arena ->
      let inet = t.env.Forward.inet in
      let hs = Internet.endhost inet f.Workload.src
      and hd = Internet.endhost inet f.Workload.dst in
      let payload = String.make f.Workload.bytes_per_packet 'x' in
      let p =
        Packet.make_data ~src:hs.Internet.haddr ~dst:hd.Internet.haddr payload
      in
      let len = Wire.wire_length p in
      (* the slab is scratch space: rewind and reuse it per flow, so
         capacity only ever needs one encoded packet *)
      Netcore.Arena.reset arena;
      Netcore.Arena.ensure arena ~bytes:len;
      let off = Wire.encode_into p arena in
      let buf = Netcore.Arena.buf arena in
      for _ = 1 to f.Workload.packets do
        ignore
          (step t ~buf ~off ~len ~cls:Telemetry.Native ~encap_bytes:0
             ~entry:hs.Internet.access_router
            : Forward.outcome)
      done

let run_batch_in t buffer flows = List.iter (run_flow_in t buffer) flows

(* --- the IPvN journey over compiled tables -------------------------- *)

type vn_outcome =
  | Vn_delivered
  | Vn_no_ingress
  | Vn_unreachable
  | Vn_exit_failed
  | Vn_vttl_expired

let vn_outcome_to_string = function
  | Vn_delivered -> "delivered"
  | Vn_no_ingress -> "no ingress"
  | Vn_unreachable -> "vn unreachable"
  | Vn_exit_failed -> "exit failed"
  | Vn_vttl_expired -> "vttl expired"

type vn_delivery = {
  traces : Forward.trace list; (* access, tunnel legs, exit — in order *)
  vn_outcome : vn_outcome;
  vn_hops : int; (* underlay transmissions over all legs *)
  vn_bytes : int; (* wire bytes x transmissions over all legs *)
}

let send_vn t router ~strategy ~src ~dst ~payload =
  let fabric = Router.fabric router in
  let service = Fabric.service fabric in
  let inet = t.env.Forward.inet in
  let hsrc = Internet.endhost inet src and hdst = Internet.endhost inet dst in
  let version = Service.version service in
  let vsrc = Transport.vn_address_of_endhost service ~endhost:src in
  let vdst = Transport.vn_address_of_endhost service ~endhost:dst in
  let packet =
    Packet.make_vn ~version ~vsrc ~vdst ~dest_v4_hint:hdst.Internet.haddr
      payload
  in
  let hops = ref 0 and bytes = ref 0 in
  let track p (tr : Forward.trace) =
    let h = Forward.hop_count tr in
    hops := !hops + h;
    bytes := !bytes + (h * Wire.wire_length p);
    tr
  in
  let finish traces vn_outcome =
    { traces = List.rev traces; vn_outcome; vn_hops = !hops; vn_bytes = !bytes }
  in
  (* 1. access leg: encapsulate toward the anycast address *)
  let access_packet =
    Packet.encapsulate ~src:hsrc.Internet.haddr ~dst:(Service.address service)
      packet
  in
  let access =
    track access_packet
      (inject t access_packet ~entry:hsrc.Internet.access_router)
  in
  match access.Forward.outcome with
  | Forward.Endhost_accepted _ | Forward.Dropped _ ->
      finish [ access ] Vn_no_ingress
  | Forward.Router_accepted ingress -> (
      let traces = [ access ] in
      (* 2. pick the egress *)
      let egress =
        if Service.is_participant service ~domain:hdst.Internet.hdomain then
          Router.egress_to_vn_domain router ~ingress
            ~domain:hdst.Internet.hdomain
        else Router.egress_for router ~strategy ~ingress ~dest:hdst.Internet.haddr
      in
      match egress with
      | None -> finish traces Vn_unreachable
      | Some egress -> (
          (* 3. vN-Bone tunnel legs, hop by hop over compiled tables *)
          match Fabric.vn_path fabric ingress egress with
          | None -> finish traces Vn_unreachable
          | Some vn_nodes -> (
              let rec tunnels traces vttl = function
                | a :: (b :: _ as rest) ->
                    if vttl <= 1 then Error (traces, Vn_vttl_expired)
                    else
                      let p =
                        Packet.encapsulate
                          ~src:(Internet.router inet a).Internet.raddr
                          ~dst:(Internet.router inet b).Internet.raddr packet
                      in
                      let tr = track p (inject t p ~entry:a) in
                      if Forward.delivered tr then
                        tunnels (tr :: traces) (vttl - 1) rest
                      else Error (tr :: traces, Vn_unreachable)
                | [ _ ] | [] -> Ok traces
              in
              match tunnels traces packet.Packet.vttl vn_nodes with
              | Error (traces, f) -> finish traces f
              | Ok traces -> (
                  (* 4. exit leg over IPv(N-1) *)
                  let exit_packet =
                    Packet.encapsulate
                      ~src:(Internet.router inet egress).Internet.raddr
                      ~dst:hdst.Internet.haddr packet
                  in
                  let tr = track exit_packet (inject t exit_packet ~entry:egress) in
                  let traces = tr :: traces in
                  match tr.Forward.outcome with
                  | Forward.Endhost_accepted h when h = dst ->
                      finish traces Vn_delivered
                  | Forward.Endhost_accepted _ | Forward.Router_accepted _
                  | Forward.Dropped _ ->
                      finish traces Vn_exit_failed))))

let vn_delivered d =
  match d.vn_outcome with Vn_delivered -> true | _ -> false
