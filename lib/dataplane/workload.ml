module Internet = Topology.Internet
module Rng = Topology.Rng

type model = Uniform | Gravity of { zipf_s : float }
type flow = { src : int; dst : int; packets : int; bytes_per_packet : int }

type t = {
  inet : Internet.t;
  weights : float array; (* per domain, normalized *)
  rng : Rng.t;
  packets_per_flow : int;
  payload_mix : int array;
}

let create ?(packets_per_flow = 4) ?(payload_mix = [| 64; 512; 1400 |])
    (inet : Internet.t) model ~seed =
  if packets_per_flow <= 0 then
    invalid_arg "Workload.create: packets_per_flow must be positive";
  if Array.length payload_mix = 0 then
    invalid_arg "Workload.create: payload_mix must be non-empty";
  let n = Internet.num_domains inet in
  let raw =
    match model with
    | Uniform ->
        (* weight by endhost count so uniform-over-hosts holds *)
        Array.init n (fun d ->
            float_of_int
              (Array.length (Internet.domain inet d).Internet.endhost_ids))
    | Gravity { zipf_s } ->
        Array.init n (fun d ->
            if Array.length (Internet.domain inet d).Internet.endhost_ids = 0
            then 0.0
            else 1.0 /. Float.pow (float_of_int (d + 1)) zipf_s)
  in
  let total = Array.fold_left ( +. ) 0.0 raw in
  if total <= 0.0 then invalid_arg "Workload.create: no endhosts anywhere";
  {
    inet;
    weights = Array.map (fun w -> w /. total) raw;
    rng = Rng.create seed;
    packets_per_flow;
    payload_mix;
  }

let pick_domain t =
  let u = Rng.float t.rng 1.0 in
  let n = Array.length t.weights in
  let rec go d acc =
    if d >= n - 1 then n - 1
    else
      let acc = acc +. t.weights.(d) in
      if u < acc then d else go (d + 1) acc
  in
  go 0 0.0

let pick_endhost t =
  let rec try_domain () =
    let d = pick_domain t in
    let hosts = (Internet.domain t.inet d).Internet.endhost_ids in
    if Array.length hosts = 0 then try_domain ()
    else hosts.(Rng.int t.rng (Array.length hosts))
  in
  try_domain ()

let next t =
  let src = pick_endhost t in
  let rec pick_dst () =
    let d = pick_endhost t in
    if d = src then pick_dst () else d
  in
  {
    src;
    dst = pick_dst ();
    packets = t.packets_per_flow;
    bytes_per_packet = Rng.pick_array t.rng t.payload_mix;
  }

let batch t ~count = List.init count (fun _ -> next t)
let total_packets flows = List.fold_left (fun n f -> n + f.packets) 0 flows
