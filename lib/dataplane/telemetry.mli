(** Per-hop data-plane telemetry.

    What the paper's data-plane questions (§3.2 state and stretch,
    §3.3.2 encapsulation overhead) cost in packets and bytes, counted
    the way a router's interface counters would: every field is an
    event count, incremented once per event at the router where it
    happened and once in the packet's class ([Native] IPv4 data vs
    [Encap]sulated IPvN). A packet crossing [k] routers therefore
    contributes [k] to [packets]; terminal events (delivery, drop,
    TTL expiry) count once. Telemetries from separate runs merge by
    summation, so per-batch counters can be aggregated. *)

type cls =
  | Native  (** IPv4 data packet *)
  | Encap  (** encapsulated IPvN data packet *)
  | Control
      (** control/keepalive traffic (probes, protocol messages): the
          overload model (DESIGN.md §13) gives it drop precedence —
          control is never shed before data at the same queue. *)

(** traffic class of a packet *)

val cls_to_string : cls -> string

type counters = {
  mutable packets : int;  (** per-hop handlings *)
  mutable bytes : int;  (** wire bytes handled *)
  mutable encap_bytes : int;  (** encapsulation-overhead bytes handled *)
  mutable delivered : int;
  mutable dropped : int;  (** No_route + Stuck drops *)
  mutable ttl_expired : int;
  mutable queue_dropped : int;
      (** droptail losses at a finite-capacity link queue ([Linkq]) *)
  mutable shed : int;
      (** deliberate load-shedding losses: class-precedence eviction at
          a link queue, or backpressure shedding at a shard spill
          buffer (DESIGN.md §13) *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

type t

val create : routers:int -> t
(** All-zero counters for an internet with [routers] routers. *)

val num_routers : t -> int

val router : t -> int -> counters
(** One router's counters (live view — fields mutate as events are
    recorded). *)

val cls : t -> cls -> counters
(** One traffic class's counters. *)

val total : t -> counters
(** Fresh sum over all routers. *)

val cache_hit_rate : t -> float
(** [cache_hits / (cache_hits + cache_misses)] over all routers; 0
    before any lookup. *)

val busiest : t -> int option
(** Router that handled the most packets; [None] when no router has
    handled any. Its scratch state is local, so the evolvelint effect
    summaries prove the scan instance-owned. *)

(** {2 Recording} — called by the traffic engine, one event each. *)

val record_hop : t -> router:int -> cls:cls -> bytes:int -> encap_bytes:int -> unit
val record_delivered : t -> router:int -> cls:cls -> unit
val record_drop : t -> router:int -> cls:cls -> unit
val record_ttl_expired : t -> router:int -> cls:cls -> unit
val record_queue_drop : t -> router:int -> cls:cls -> unit
val record_shed : t -> router:int -> cls:cls -> unit
val record_cache : t -> router:int -> cls:cls -> hit:bool -> unit

(** {2 Count-weighted recording} — the flowlet-batched sharded data
    plane (DESIGN.md §11) walks the [count] byte-identical packets of
    one flow as a unit and records each event once with the
    multiplier. Each [_n] recorder leaves the counters exactly as
    [count] calls of its per-packet sibling would. *)

val record_hop_n :
  t -> router:int -> cls:cls -> bytes:int -> encap_bytes:int -> count:int -> unit

val record_delivered_n : t -> router:int -> cls:cls -> count:int -> unit
val record_drop_n : t -> router:int -> cls:cls -> count:int -> unit
val record_ttl_expired_n : t -> router:int -> cls:cls -> count:int -> unit
val record_queue_drop_n : t -> router:int -> cls:cls -> count:int -> unit
val record_shed_n : t -> router:int -> cls:cls -> count:int -> unit

val record_cache_n : t -> router:int -> cls:cls -> hits:int -> misses:int -> unit
(** [hits] + [misses] probes' worth of cache statistics in one bump —
    a batched walk probes once but accounts for every packet (a miss
    followed by an insert makes the remaining [count - 1] packets
    hits, exactly as they would serially). *)

val merge : t -> t -> t
(** Field-wise sum; inputs are unchanged.
    @raise Invalid_argument when router counts differ. *)

val pp : Format.formatter -> t -> unit
(** Compact human-readable summary (per-class lines + busiest
    router). *)
