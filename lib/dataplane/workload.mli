(** Seeded flow workloads: the traffic matrix the data plane is
    measured under.

    The paper's evolvability argument is population-driven — §2's
    assumption A1 values a network generation by "the number of users"
    it can reach — so the default workload is a gravity model: flows
    land in a domain with probability proportional to a Zipf share of
    the user population, mirroring {!Evolve.Traffic} one layer down so
    the data-plane engine can generate load without depending on the
    experiment layer. A uniform-over-endhosts matrix is the control.

    All draws flow through {!Topology.Rng}, so a (model, seed) pair
    always yields the same flow sequence. *)

type model =
  | Uniform  (** every endhost equally likely, per side *)
  | Gravity of { zipf_s : float }
      (** domain popularity Zipf-distributed with exponent [zipf_s];
          hosts uniform within the domain *)

type flow = {
  src : int;  (** source endhost id *)
  dst : int;  (** destination endhost id, never [src] *)
  packets : int;  (** packets this flow contributes to a batch *)
  bytes_per_packet : int;  (** payload size drawn from the mix *)
}

type t

val create :
  ?packets_per_flow:int ->
  ?payload_mix:int array ->
  Topology.Internet.t ->
  model ->
  seed:int64 ->
  t
(** A workload generator over the internet's endhosts.
    [packets_per_flow] (default 4) sets {!flow.packets};
    [payload_mix] (default [[|64; 512; 1400|]]) the payload sizes
    drawn per flow. @raise Invalid_argument when the internet has no
    endhosts, [packets_per_flow <= 0], or the mix is empty. *)

val next : t -> flow
(** Draw the next flow (advances the generator state). *)

val batch : t -> count:int -> flow list
(** [count] successive flows. *)

val total_packets : flow list -> int
(** Sum of {!flow.packets} over a batch. *)
