(** The data-plane traffic engine: batched packets over compiled FIB
    snapshots.

    Everything below this module decides {e one} packet at a time
    against the live control plane; the pump is the line-card view the
    ROADMAP's "heavy traffic" goal needs. It holds one compiled
    {!Simcore.Fib} table per router (a snapshot — §3.2's data-plane
    state), fronts each with a {!Flowcache}, performs real {!Wire}
    encode at injection / header peeks per hop / decode-and-decap at
    delivery (the IPvN-in-IPv4 encapsulation of §3.3.2), and records
    every event into a {!Telemetry}.

    Tables are snapshots: after a deployment or routing change the
    control plane moves on but the pump keeps forwarding on stale
    tables until {!refresh} — exactly the convergence window experiment
    E30 measures. The pump must agree with the {!Simcore.Forward}
    oracle whenever its snapshot is current (asserted, cache on and
    off, by the test-suite). *)

type t

val create : ?use_cache:bool -> ?cache_slots:int -> Simcore.Forward.env -> t
(** Compile a FIB snapshot of the env's current control plane and
    stand up per-router flow caches ([use_cache] default true,
    [cache_slots] default 256) and telemetry. *)

val env : t -> Simcore.Forward.env
val telemetry : t -> Telemetry.t

val cached : t -> bool
(** Whether flow caches are enabled. *)

val cache_hit_rate : t -> float
(** Aggregate flow-cache hit rate since creation. *)

val set_link_filter : t -> (int -> int -> bool) -> unit
(** Install a link-liveness predicate over (router, next-hop) pairs:
    a packet whose FIB action crosses a down link is dropped with
    {!Simcore.Forward.Link_down} instead of traversing it. This is how
    E32 pumps traffic {e while links flap} — the snapshot FIB keeps
    pointing over the dead link until the control plane reconverges
    and {!refresh} installs the detour. The predicate is a stored
    closure; the hot path calls it without allocating. *)

val clear_link_filter : t -> unit
(** Back to every link up (the default). *)

val attach_linkq : t -> Linkq.t -> unit
(** Attach finite-capacity link queues (DESIGN.md §13): every
    router-to-router transmission then consults {!Linkq.admit} and a
    refused packet is dropped with {!Simcore.Forward.Queue_full}
    (droptail) or {!Simcore.Forward.Shed} (class precedence) at the
    sending router. The caller drives {!Linkq.tick} between injection
    rounds; experiment E36 is the reference user. *)

val detach_linkq : t -> unit
(** Back to infinite pipes (the default). *)

val linkq : t -> Linkq.t option

val refresh : ?routers:int list -> t -> unit
(** Recompile the FIB from the env's current control-plane state and
    install it at the given routers (default: all), invalidating their
    flow caches. Partial refresh leaves the rest forwarding on the old
    snapshot — the mixed-table state of a convergence window. *)

val inject :
  ?cls:Telemetry.cls -> t -> Netcore.Packet.t -> entry:int -> Simcore.Forward.trace
(** Push one packet hop by hop from router [entry] over the installed
    tables: encode once, peek the destination from the header bytes at
    each hop, look up through the flow cache, decode/decapsulate on
    delivery. Returns the same trace shape as {!Simcore.Forward.forward}.
    [cls] overrides the telemetry class derived from the payload —
    operational probes inject as {!Telemetry.Control} so the overload
    machinery gives them drop precedence. *)

val send_data : t -> src:int -> dst:int -> payload:string -> Simcore.Forward.trace
(** Native IPv4 endhost-to-endhost send (the access link is not a
    router hop, as in {!Simcore.Forward.send_from_endhost}). *)

val run_flow : t -> Workload.flow -> unit
(** Send all of a flow's packets natively, for the telemetry. *)

val run_batch : t -> Workload.flow list -> unit

(** {2 Arena entry points} — the zero-copy path of the sharded data
    plane (DESIGN.md §11). Packet bytes live in a pre-allocated
    {!Netcore.Arena} slab; forwarding reads the fixed header straight
    out of the slab (§3.3.2's opaque-payload rule) and builds no
    trace, so a steady-state batch does zero GC work. *)

val step :
  t ->
  buf:Netcore.Arena.buf ->
  off:int ->
  len:int ->
  cls:Telemetry.cls ->
  encap_bytes:int ->
  entry:int ->
  Simcore.Forward.outcome
(** Forward one encoded packet — the [(off, len)] view of [buf], as
    produced by {!Netcore.Wire.encode_into} — hop by hop from router
    [entry]. Telemetry-equivalent to {!inject} on the decoded packet
    (asserted by the test-suite); differs only in building no trace
    and skipping the delivery-side decode. A malformed view reads a
    zero destination and TTL and is dropped accordingly. *)

type buffer = Heap | Slab of Netcore.Arena.t
    (** Buffer provider for batch runs: [Heap] is the classic
        {!run_batch} path (encode to a fresh string per packet);
        [Slab] rewinds and reuses the given arena, keeping the whole
        batch off the OCaml heap. Both record identical telemetry. *)

val run_flow_in : t -> buffer -> Workload.flow -> unit
(** {!run_flow} parameterized over the buffer provider. *)

val run_batch_in : t -> buffer -> Workload.flow list -> unit
(** {!run_batch} parameterized over the buffer provider. *)

(** {2 IPvN journeys} — the §3.3.2 universal-access data path
    (access anycast leg, vN-Bone tunnel legs, IPv(N-1) exit leg),
    with every underlay leg forwarded by {!inject} instead of the
    control-plane oracle {!Vnbone.Transport.send} uses. *)

type vn_outcome =
  | Vn_delivered
  | Vn_no_ingress  (** anycast redirection failed *)
  | Vn_unreachable  (** no egress or no vN-Bone path *)
  | Vn_exit_failed
  | Vn_vttl_expired

val vn_outcome_to_string : vn_outcome -> string

type vn_delivery = {
  traces : Simcore.Forward.trace list;
      (** access, tunnel and exit underlay traces, in order *)
  vn_outcome : vn_outcome;
  vn_hops : int;  (** underlay transmissions over all legs *)
  vn_bytes : int;  (** wire bytes crossing links (bytes x transmissions) *)
}

val send_vn :
  t ->
  Vnbone.Router.t ->
  strategy:Vnbone.Router.strategy ->
  src:int ->
  dst:int ->
  payload:string ->
  vn_delivery
(** End-to-end IPvN send between endhost ids over the pump's tables.
    The router must be built over the same env as the pump. *)

val vn_delivered : vn_delivery -> bool
