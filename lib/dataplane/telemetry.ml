type cls = Native | Encap | Control

let cls_to_string = function
  | Native -> "native"
  | Encap -> "encap"
  | Control -> "control"

type counters = {
  mutable packets : int;
  mutable bytes : int;
  mutable encap_bytes : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable ttl_expired : int;
  mutable queue_dropped : int;
  mutable shed : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let fresh () =
  {
    packets = 0;
    bytes = 0;
    encap_bytes = 0;
    delivered = 0;
    dropped = 0;
    ttl_expired = 0;
    queue_dropped = 0;
    shed = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

type t = { per_router : counters array; per_class : counters array }

let create ~routers =
  {
    per_router = Array.init routers (fun _ -> fresh ());
    per_class = Array.init 3 (fun _ -> fresh ());
  }

let num_routers t = Array.length t.per_router
let cls_index = function Native -> 0 | Encap -> 1 | Control -> 2
let router t r = t.per_router.(r)
let cls t c = t.per_class.(cls_index c)

(* The bump helpers live at top level with the amounts as arguments:
   a nested [let bump x = ...] capturing them would heap-allocate a
   closure on every recorded hop (hot-path-alloc). *)
let bump_hop (x : counters) ~bytes ~encap_bytes =
  x.packets <- x.packets + 1;
  x.bytes <- x.bytes + bytes;
  x.encap_bytes <- x.encap_bytes + encap_bytes

let record_hop t ~router ~cls:c ~bytes ~encap_bytes =
  bump_hop t.per_router.(router) ~bytes ~encap_bytes;
  bump_hop (cls t c) ~bytes ~encap_bytes

let record_delivered t ~router ~cls:c =
  t.per_router.(router).delivered <- t.per_router.(router).delivered + 1;
  (cls t c).delivered <- (cls t c).delivered + 1

let record_drop t ~router ~cls:c =
  t.per_router.(router).dropped <- t.per_router.(router).dropped + 1;
  (cls t c).dropped <- (cls t c).dropped + 1

let record_ttl_expired t ~router ~cls:c =
  t.per_router.(router).ttl_expired <- t.per_router.(router).ttl_expired + 1;
  (cls t c).ttl_expired <- (cls t c).ttl_expired + 1

let record_queue_drop t ~router ~cls:c =
  t.per_router.(router).queue_dropped <- t.per_router.(router).queue_dropped + 1;
  (cls t c).queue_dropped <- (cls t c).queue_dropped + 1

let record_shed t ~router ~cls:c =
  t.per_router.(router).shed <- t.per_router.(router).shed + 1;
  (cls t c).shed <- (cls t c).shed + 1

(* Count-weighted variants for flowlet batching (DESIGN.md §11): a
   shard walks [count] byte-identical packets of one flow as a unit
   and bumps each counter once with the multiplier. Field-for-field
   equal to calling the per-packet recorder [count] times. *)
let bump_hop_n (x : counters) ~bytes ~encap_bytes ~count =
  x.packets <- x.packets + count;
  x.bytes <- x.bytes + (bytes * count);
  x.encap_bytes <- x.encap_bytes + (encap_bytes * count)

let record_hop_n t ~router ~cls:c ~bytes ~encap_bytes ~count =
  bump_hop_n t.per_router.(router) ~bytes ~encap_bytes ~count;
  bump_hop_n (cls t c) ~bytes ~encap_bytes ~count

let record_delivered_n t ~router ~cls:c ~count =
  t.per_router.(router).delivered <- t.per_router.(router).delivered + count;
  (cls t c).delivered <- (cls t c).delivered + count

let record_drop_n t ~router ~cls:c ~count =
  t.per_router.(router).dropped <- t.per_router.(router).dropped + count;
  (cls t c).dropped <- (cls t c).dropped + count

let record_ttl_expired_n t ~router ~cls:c ~count =
  t.per_router.(router).ttl_expired <-
    t.per_router.(router).ttl_expired + count;
  (cls t c).ttl_expired <- (cls t c).ttl_expired + count

let record_queue_drop_n t ~router ~cls:c ~count =
  t.per_router.(router).queue_dropped <-
    t.per_router.(router).queue_dropped + count;
  (cls t c).queue_dropped <- (cls t c).queue_dropped + count

let record_shed_n t ~router ~cls:c ~count =
  t.per_router.(router).shed <- t.per_router.(router).shed + count;
  (cls t c).shed <- (cls t c).shed + count

let bump_cache (x : counters) ~hit =
  if hit then x.cache_hits <- x.cache_hits + 1
  else x.cache_misses <- x.cache_misses + 1

let record_cache t ~router ~cls:c ~hit =
  bump_cache t.per_router.(router) ~hit;
  bump_cache (cls t c) ~hit

let bump_cache_n (x : counters) ~hits ~misses =
  x.cache_hits <- x.cache_hits + hits;
  x.cache_misses <- x.cache_misses + misses

let record_cache_n t ~router ~cls:c ~hits ~misses =
  bump_cache_n t.per_router.(router) ~hits ~misses;
  bump_cache_n (cls t c) ~hits ~misses

let add_into (dst : counters) (src : counters) =
  dst.packets <- dst.packets + src.packets;
  dst.bytes <- dst.bytes + src.bytes;
  dst.encap_bytes <- dst.encap_bytes + src.encap_bytes;
  dst.delivered <- dst.delivered + src.delivered;
  dst.dropped <- dst.dropped + src.dropped;
  dst.ttl_expired <- dst.ttl_expired + src.ttl_expired;
  dst.queue_dropped <- dst.queue_dropped + src.queue_dropped;
  dst.shed <- dst.shed + src.shed;
  dst.cache_hits <- dst.cache_hits + src.cache_hits;
  dst.cache_misses <- dst.cache_misses + src.cache_misses

let merge a b =
  if num_routers a <> num_routers b then
    invalid_arg "Telemetry.merge: router counts differ";
  let m = create ~routers:(num_routers a) in
  Array.iteri
    (fun i c ->
      add_into m.per_router.(i) c;
      add_into m.per_router.(i) b.per_router.(i))
    a.per_router;
  Array.iteri
    (fun i c ->
      add_into m.per_class.(i) c;
      add_into m.per_class.(i) b.per_class.(i))
    a.per_class;
  m

let total t =
  let acc = fresh () in
  Array.iter (add_into acc) t.per_router;
  acc

let cache_hit_rate t =
  let acc = total t in
  let lookups = acc.cache_hits + acc.cache_misses in
  if lookups = 0 then 0.0
  else float_of_int acc.cache_hits /. float_of_int lookups

(* The scratch ref is a local of this binding, so the effect-summary
   engine proves the writes instance-owned — no allowlist entry needed
   even if the scan ever lands on a reachable path. *)
let busiest t =
  let best = ref (-1) in
  Array.iteri
    (fun i c ->
      if !best < 0 || c.packets > t.per_router.(!best).packets then best := i)
    t.per_router;
  if !best >= 0 && t.per_router.(!best).packets > 0 then Some !best else None

let pp fmt t =
  let line name (c : counters) =
    Format.fprintf fmt
      "  %-8s %8d pkts  %10d B  %8d encap B  %6d dlv  %4d drop  %4d ttl  \
       %4d qdrop  %4d shed@."
      name c.packets c.bytes c.encap_bytes c.delivered c.dropped c.ttl_expired
      c.queue_dropped c.shed
  in
  Format.fprintf fmt "telemetry (%d routers):@." (num_routers t);
  line "native" (cls t Native);
  line "encap" (cls t Encap);
  line "control" (cls t Control);
  match busiest t with
  | Some b ->
      Format.fprintf fmt "  busiest router: %d (%d pkts, %.1f%% cache hits)@."
        b t.per_router.(b).packets (100.0 *. cache_hit_rate t)
  | None -> ()
