module Ipv4 = Netcore.Ipv4

(* Split key/value arrays rather than one [(key * value) option array]:
   [values.(i)] holds the [Some v] that [lookup] returns, so a cache hit
   allocates nothing — the option cell was paid for once, at [insert].
   [keys.(i)] is meaningful only where [values.(i)] is [Some _]. *)
type 'a t = {
  keys : Ipv4.t array;
  values : 'a option array;
  mask : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; occupied : int }

let create ~slots =
  if slots <= 0 then invalid_arg "Flowcache.create: slots must be positive";
  let rec pow2 k = if k >= slots then k else pow2 (k * 2) in
  let n = pow2 1 in
  {
    keys = Array.make n (Ipv4.of_int 0);
    values = Array.make n None;
    mask = n - 1;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = Array.length t.values

(* Fibonacci (multiplicative) hashing before masking: endhost addresses
   are domain-/16-aligned with tiny host parts, so raw low bits would
   map every destination in the internet onto a handful of slots. *)
let slot_of t addr =
  let h = Ipv4.to_int addr * 0x9E3779B1 in
  (h lsr 15) land t.mask

let lookup t addr =
  let i = slot_of t addr in
  match t.values.(i) with
  | Some _ as hit when Ipv4.equal t.keys.(i) addr ->
      t.hits <- t.hits + 1;
      hit
  | Some _ | None ->
      t.misses <- t.misses + 1;
      None

let insert t addr v =
  let i = slot_of t addr in
  (match t.values.(i) with
  | Some _ when not (Ipv4.equal t.keys.(i) addr) ->
      t.evictions <- t.evictions + 1
  | Some _ | None -> ());
  t.keys.(i) <- addr;
  t.values.(i) <- Some v

let find t addr ~compute =
  match lookup t addr with
  | Some _ as hit -> hit
  | None -> (
      match compute addr with
      | Some v as r ->
          insert t addr v;
          r
      | None -> None)

let clear t = Array.fill t.values 0 (Array.length t.values) None

let stats t =
  let occupied =
    Array.fold_left
      (fun n s -> match s with None -> n | Some _ -> n + 1)
      0 t.values
  in
  { hits = t.hits; misses = t.misses; evictions = t.evictions; occupied }

let hit_rate (t : _ t) =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let reset_stats (t : _ t) =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
