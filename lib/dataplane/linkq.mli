(** Finite-capacity link and tunnel queues (DESIGN.md §13).

    The paper's Option-1/Option-2 comparison charges evolution a
    per-packet encapsulation tax ("the cost of this indirection is
    processing ... and increased latency", §3.3.2). With infinite
    pipes that tax shows up only as stretch and byte counts; [Linkq]
    gives every registered directed link a byte queue with a finite
    [depth] and a service [rate], so vN-Bone detours and encap
    overhead surface as queueing delay and droptail loss instead.

    The discipline is deterministic FIFO/droptail: a packet is
    admitted iff it fits under the queue's byte limit, it then waits
    behind the bytes already queued (delay accounted as
    [occupancy / rate] ticks), and [tick] drains every queue by
    [rate] bytes. The last [control_reserve] bytes of each queue's
    depth are reserved for {!Telemetry.Control} traffic — a data
    packet refused while that headroom remains is a {e shed}
    (deliberate, class-precedence loss), never the other way round:
    control is never shed before data.

    A [Linkq] attaches to a {!Pump} ({!Pump.attach_linkq}); forwarding
    then consults {!admit} on every router-to-router transmission. *)

type t

type verdict =
  | Admitted
  | Rejected_full  (** droptail: the queue is out of depth *)
  | Rejected_shed
      (** class precedence: room remains, but it is reserved for
          control traffic *)

val create :
  ?control_reserve:int ->
  routers:int ->
  rate:int ->
  depth:int ->
  (int * int) list ->
  t
(** [create ~routers ~rate ~depth links] registers a queue in each
    direction of every link in [links] (router id pairs). [rate] is
    bytes drained per {!tick}; [depth] is the byte cap per queue;
    [control_reserve] (default 0) bytes of that depth admit only
    control-class packets.
    @raise Invalid_argument on non-positive [rate]/[depth], a reserve
    outside [\[0, depth)], or an endpoint outside [0..routers-1]. *)

val of_internet : ?control_reserve:int -> rate:int -> depth:int -> Topology.Internet.t -> t
(** Register every directed router-level link of the internet. *)

val admit : t -> src:int -> dst:int -> cls:Telemetry.cls -> bytes:int -> verdict
(** Try to enqueue [bytes] on the [src -> dst] queue. Unregistered
    links always admit (they stay infinite pipes). Allocation-free. *)

val admit_opt :
  t option -> src:int -> dst:int -> cls:Telemetry.cls -> bytes:int -> verdict
(** [admit] through an optional queue set; [None] always admits. The
    form the {!Pump} hot path uses. *)

val tick : t -> unit
(** Serve every queue: drain up to [rate] bytes from each. *)

type stats = {
  links : int;  (** registered directed queues *)
  admitted : int;  (** packets admitted over all queues *)
  drops_full : int;  (** droptail losses *)
  drops_shed : int;  (** class-precedence sheds *)
  queued : int;  (** bytes queued right now, all queues *)
  high_water : int;  (** max bytes any one queue ever held *)
  mean_delay : float;  (** mean queueing delay of admitted packets, in ticks *)
}

val stats : t -> stats

val depth : t -> int
val rate : t -> int
val control_reserve : t -> int

val queued : t -> src:int -> dst:int -> int
(** Bytes currently queued on one directed link (0 if unregistered). *)
