(* Finite-capacity link queues (DESIGN.md §13). One FIFO/droptail
   byte queue per registered directed link, drained at a fixed rate
   per tick. Everything is deterministic: admission depends only on
   the queue's current occupancy, and service happens in [tick]. *)

type verdict = Admitted | Rejected_full | Rejected_shed

type q = {
  mutable occ : int; (* queued bytes *)
  mutable hw : int; (* high-water of [occ] *)
  mutable admitted : int; (* packets admitted *)
  mutable drops_full : int; (* droptail losses *)
  mutable drops_shed : int; (* class-precedence sheds *)
  mutable delay_bytes : int; (* sum over admitted packets of the bytes
                                queued ahead of them (delay = /rate) *)
}

let fresh_q () =
  {
    occ = 0;
    hw = 0;
    admitted = 0;
    drops_full = 0;
    drops_shed = 0;
    delay_bytes = 0;
  }

type t = {
  routers : int;
  rate : int; (* bytes drained per tick, per link *)
  depth : int; (* max queued bytes per link *)
  reserve : int; (* tail bytes of [depth] reserved for control *)
  slots : q option array; (* dense [src * routers + dst] index *)
  qs : q array; (* registration order, for deterministic service *)
}

let create ?(control_reserve = 0) ~routers ~rate ~depth links =
  if rate <= 0 then invalid_arg "Linkq.create: rate must be positive";
  if depth <= 0 then invalid_arg "Linkq.create: depth must be positive";
  if control_reserve < 0 || control_reserve >= depth then
    invalid_arg "Linkq.create: control_reserve must be in [0, depth)";
  let slots = Array.make (routers * routers) None in
  let qs = ref [] in
  let register src dst =
    if src < 0 || src >= routers || dst < 0 || dst >= routers then
      invalid_arg "Linkq.create: link endpoint out of range";
    let k = (src * routers) + dst in
    match slots.(k) with
    | Some _ -> ()
    | None ->
        let q = fresh_q () in
        slots.(k) <- Some q;
        qs := q :: !qs
  in
  List.iter
    (fun (a, b) ->
      register a b;
      register b a)
    links;
  {
    routers;
    rate;
    depth;
    reserve = control_reserve;
    slots;
    qs = Array.of_list (List.rev !qs);
  }

let of_internet ?control_reserve ~rate ~depth inet =
  let routers = Topology.Internet.num_routers inet in
  let links =
    List.map
      (fun (a, b, _w) -> (a, b))
      (Topology.Graph.edges inet.Topology.Internet.graph)
  in
  create ?control_reserve ~routers ~rate ~depth links

(* Hot path (reachable from Pump.inject/Pump.step): no allocation —
   the dense array probe returns an existing [Some] cell and every
   verdict is a constant constructor. *)
let admit t ~src ~dst ~cls ~bytes =
  match t.slots.((src * t.routers) + dst) with
  | None -> Admitted (* unregistered link: infinite pipe, as before *)
  | Some q ->
      let limit =
        if cls = Telemetry.Control then t.depth else t.depth - t.reserve
      in
      if q.occ + bytes <= limit then begin
        q.admitted <- q.admitted + 1;
        q.delay_bytes <- q.delay_bytes + q.occ;
        q.occ <- q.occ + bytes;
        if q.occ > q.hw then q.hw <- q.occ;
        Admitted
      end
      else if q.occ + bytes <= t.depth then begin
        (* only the control reserve refused it: a precedence shed.
           Control itself never lands here ([limit = depth]), so
           control is never shed before data by construction. *)
        q.drops_shed <- q.drops_shed + 1;
        Rejected_shed
      end
      else begin
        q.drops_full <- q.drops_full + 1;
        Rejected_full
      end

let admit_opt o ~src ~dst ~cls ~bytes =
  match o with None -> Admitted | Some t -> admit t ~src ~dst ~cls ~bytes

let tick t =
  Array.iter
    (fun q -> if q.occ > 0 then q.occ <- (if q.occ > t.rate then q.occ - t.rate else 0))
    t.qs

type stats = {
  links : int;
  admitted : int;
  drops_full : int;
  drops_shed : int;
  queued : int; (* bytes queued right now, over all links *)
  high_water : int; (* max bytes any one link ever queued *)
  mean_delay : float; (* mean queueing delay of admitted packets, ticks *)
}

let stats t =
  let admitted = ref 0
  and drops_full = ref 0
  and drops_shed = ref 0
  and queued = ref 0
  and hw = ref 0
  and delay_bytes = ref 0 in
  Array.iter
    (fun (q : q) ->
      admitted := !admitted + q.admitted;
      drops_full := !drops_full + q.drops_full;
      drops_shed := !drops_shed + q.drops_shed;
      queued := !queued + q.occ;
      if q.hw > !hw then hw := q.hw;
      delay_bytes := !delay_bytes + q.delay_bytes)
    t.qs;
  {
    links = Array.length t.qs;
    admitted = !admitted;
    drops_full = !drops_full;
    drops_shed = !drops_shed;
    queued = !queued;
    high_water = !hw;
    mean_delay =
      (if !admitted = 0 then 0.0
       else
         float_of_int !delay_bytes
         /. float_of_int !admitted /. float_of_int t.rate);
  }

let depth t = t.depth
let rate t = t.rate
let control_reserve t = t.reserve

let queued t ~src ~dst =
  match t.slots.((src * t.routers) + dst) with None -> 0 | Some q -> q.occ
