(** The paper's four figures (§3.2) as executable scenarios.

    Each function builds the figure's topology with
    {!Topology.Internet.build_custom}, drives the deployment exactly as
    the figure narrates, and returns measured rows; [pp_*] renders the
    table. The expected shapes are asserted by the integration tests
    (test/test_scenario.ml) and recorded in EXPERIMENTS.md. *)

(** {1 Figure 1 — seamless spread of deployment}

    ISPs X, then Y, then Z deploy IPv8; client C (in Z) is redirected
    to the closest IPv8 provider throughout, with no reconfiguration. *)

type fig1_stage = {
  deployed : string list;  (** domains offering IPv8 at this stage *)
  ingress_domain : string;  (** where C's anycast packets land *)
  metric : float;  (** routing metric from C to its ingress *)
}

val fig1 : unit -> fig1_stage list
val pp_fig1 : Format.formatter -> fig1_stage list -> unit

(** {1 Figure 2 — Option 2 anycast: default routes + peering}

    D is the default domain, Q a second participant. Before the Y–Q
    peering advertisement, X's and Y's packets terminate in D while Z's
    reach Q; after it, Y's packets go to Q instead. *)

type fig2_row = {
  stage : string;  (** "before Y-Q peering" / "after Y-Q peering" *)
  source : string;  (** client's domain: X, Y or Z *)
  terminates_in : string;  (** D or Q *)
}

val fig2 : unit -> fig2_row list
val pp_fig2 : Format.formatter -> fig2_row list -> unit

(** {1 Figure 3 — egress selection with BGPv(N-1) import}

    With only BGPvN, the packet leaves the vN-Bone at the ingress
    domain M (last IPvN hop X); when IPvN border routers import
    BGPv(N-1), it rides the vN-Bone to O and exits at Y, close to C. *)

type fig3_row = {
  strategy : string;
  last_vn_domain : string;  (** domain of the last IPvN hop *)
  vn_hops : int;
  exit_hops : int;
  vn_fraction : float;
}

val fig3 : unit -> fig3_row list
val pp_fig3 : Format.formatter -> fig3_row list -> unit

(** {1 Figure 4 — advertising-by-proxy}

    A, B, C support IPvN; M, N, Z only IPv(N-1). When B and C advertise
    their distance to Z into BGPvN, A's packets stay on the vN-Bone
    through C instead of exiting immediately toward Z. *)

type fig4_row = {
  strategy : string;
  egress_domain : string;
  exposure_hops : int;  (** hops outside the vN-Bone (access + exit) *)
  vn_hops : int;
  delivered : bool;
}

val fig4 : unit -> fig4_row list
val pp_fig4 : Format.formatter -> fig4_row list -> unit
