module Internet = Topology.Internet
module Rng = Topology.Rng
module Forward = Simcore.Forward
module Service = Anycast.Service
module Metrics = Anycast.Metrics
module Bgp = Interdomain.Bgp
module Fabric = Vnbone.Fabric
module Router = Vnbone.Router
module Transport = Vnbone.Transport
module Linkstate = Routing.Linkstate
module Distvec = Routing.Distvec
module Igp = Routing.Igp
module Graph = Topology.Graph
module Prefix = Netcore.Prefix
module Addressing = Netcore.Addressing
module Pump = Dataplane.Pump
module Workload = Dataplane.Workload
module Telemetry = Dataplane.Telemetry
module Linkq = Dataplane.Linkq
module Domainpool = Multicore.Domainpool
module Shard = Multicore.Shard
module Drillbook = Ops.Drillbook
module Drill = Ops.Drill
module Slo = Ops.Slo

let all_endhosts (inet : Internet.t) =
  List.init (Array.length inet.Internet.endhosts) Fun.id

(* ------------------------------------------------------------------ *)
(* E1                                                                  *)

type e1_row = {
  fraction : float;
  deployed_domains : int;
  mean_stretch : float;
  p95_stretch : float;
  delivery_rate : float;
}

let e1_deployment_sweep ?(params = Internet.default_params)
    ?(fractions = [ 0.05; 0.1; 0.2; 0.4; 0.6; 0.8; 1.0 ]) () =
  let inet = Internet.build params in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  let num = Internet.num_domains inet in
  let order =
    let rng = Rng.create (Int64.add params.Internet.seed 99L) in
    let a = Array.init num Fun.id in
    Rng.shuffle rng a;
    a
  in
  let deployed = ref 0 in
  let service = Setup.service setup in
  List.map
    (fun fraction ->
      let target = max 1 (int_of_float (ceil (fraction *. float_of_int num))) in
      while !deployed < target && !deployed < num do
        Setup.deploy setup ~domain:order.(!deployed);
        incr deployed
      done;
      let stretches =
        all_endhosts inet
        |> List.filter_map (fun h -> Metrics.stretch service ~endhost:h)
      in
      {
        fraction;
        deployed_domains = !deployed;
        mean_stretch = Metrics.mean stretches;
        p95_stretch = Metrics.percentile 0.95 stretches;
        delivery_rate = Metrics.delivery_rate service;
      })
    fractions

let print_e1 rows =
  Table.print ~title:"E1: anycast stretch vs deployment fraction (Option 1)"
    ~header:[ "fraction"; "domains"; "mean stretch"; "p95 stretch"; "delivery" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.ff r.fraction;
             Table.fi r.deployed_domains;
             Table.ff r.mean_stretch;
             Table.ff r.p95_stretch;
             Table.fpct r.delivery_rate;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E2                                                                  *)

type e2_row = {
  label : string;
  advertisers : int;
  default_share : float;
  mean_stretch2 : float;
  delivery2 : float;
}

let stub_domains (inet : Internet.t) =
  Array.to_list inet.Internet.domains
  |> List.filter (fun d -> not d.Internet.is_transit)
  |> List.map (fun d -> d.Internet.did)

let e2_default_route_sweep ?(params = Internet.default_params)
    ?(participants = 5) () =
  let inet = Internet.build params in
  (* the default provider is a transit domain; other participants are
     stubs spread over the internet *)
  let default_domain = 0 in
  let rng = Rng.create (Int64.add params.Internet.seed 7L) in
  let others = Rng.sample rng (participants - 1) (stub_domains inet) in
  let deploy_all setup =
    Setup.deploy setup ~domain:default_domain;
    List.iter (fun d -> Setup.deploy setup ~domain:d) others
  in
  let measure label advertisers service =
    {
      label;
      advertisers;
      default_share = Metrics.termination_share service ~domain:default_domain;
      mean_stretch2 = Metrics.mean_stretch service;
      delivery2 = Metrics.delivery_rate service;
    }
  in
  (* Option 2 with a growing number of advertising participants *)
  let setup2 =
    Setup.of_internet inet ~version:8
      ~strategy:(Service.Option2 { default_domain })
  in
  deploy_all setup2;
  let service2 = Setup.service setup2 in
  let advertise_from d =
    List.iter
      (fun (nb, _) ->
        if not (Service.is_participant service2 ~domain:nb) then
          Service.advertise_to_neighbor service2 ~from_:d ~to_:nb)
      (Internet.neighbor_domains inet d)
  in
  let rows = ref [ measure "option2" 0 service2 ] in
  List.iteri
    (fun i d ->
      advertise_from d;
      rows := measure "option2" (i + 1) service2 :: !rows)
    others;
  (* Option 1 reference: same participants, global routes *)
  let inet1 = Internet.build params in
  let setup1 = Setup.of_internet inet1 ~version:8 ~strategy:Service.Option1 in
  deploy_all setup1;
  let ref_row =
    measure "option1 (reference)" 0 (Setup.service setup1)
  in
  List.rev (ref_row :: !rows)

let print_e2 rows =
  Table.print
    ~title:"E2: Option 2 default routes, effect of peering advertisements"
    ~header:
      [ "scheme"; "advertisers"; "default share"; "mean stretch"; "delivery" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.label;
             Table.fi r.advertisers;
             Table.fpct r.default_share;
             Table.ff r.mean_stretch2;
             Table.fpct r.delivery2;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E3 / E4                                                             *)

type strategy_row = {
  strategy_name : string;
  mean_vn_fraction : float;
  mean_vn_hops : float;
  mean_exposure_hops : float;
  mean_total_hops : float;
  journey_delivery : float;
}

let e3_egress_comparison ?(params = Internet.default_params)
    ?(deploy_fraction = 0.3) ?(pairs = 120) () =
  let inet = Internet.build params in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  let num = Internet.num_domains inet in
  let rng = Rng.create (Int64.add params.Internet.seed 13L) in
  let order =
    let a = Array.init num Fun.id in
    Rng.shuffle rng a;
    a
  in
  let deploy_count =
    max 1 (int_of_float (ceil (deploy_fraction *. float_of_int num)))
  in
  for i = 0 to deploy_count - 1 do
    Setup.deploy setup ~domain:order.(i)
  done;
  let service = Setup.service setup in
  (* pairs whose destination domain has NOT deployed *)
  let hosts = Array.of_list (all_endhosts inet) in
  let non_vn h =
    not
      (Service.is_participant service
         ~domain:(Internet.endhost inet h).Internet.hdomain)
  in
  let sample_pairs =
    List.init pairs (fun _ ->
        let src = Rng.pick_array rng hosts in
        let rec dst () =
          let d = Rng.pick_array rng hosts in
          if d <> src && non_vn d then d else dst ()
        in
        (src, dst ()))
  in
  let vrouter = Setup.router setup in
  let run strategy =
    let journeys =
      List.map
        (fun (src, dst) ->
          Transport.send vrouter ~strategy ~src ~dst ~payload:"e3")
        sample_pairs
    in
    let ok = List.filter Transport.delivered journeys in
    let meanf f = Metrics.mean (List.map f ok) in
    {
      strategy_name = Router.strategy_to_string strategy;
      mean_vn_fraction = meanf Transport.vn_fraction;
      mean_vn_hops = meanf (fun j -> float_of_int (Transport.vn_hops j));
      mean_exposure_hops =
        meanf (fun j ->
            float_of_int (Transport.access_hops j + Transport.exit_hops j));
      mean_total_hops = meanf (fun j -> float_of_int (Transport.total_hops j));
      journey_delivery =
        float_of_int (List.length ok) /. float_of_int (max 1 (List.length journeys));
    }
  in
  [ run Router.Exit_early; run Router.Bgp_aware; run Router.Proxy ]

let print_strategy_rows title rows =
  Table.print ~title
    ~header:
      [ "strategy"; "vN fraction"; "vN hops"; "exposure"; "total hops"; "delivery" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.strategy_name;
             Table.ff r.mean_vn_fraction;
             Table.ff r.mean_vn_hops;
             Table.ff r.mean_exposure_hops;
             Table.ff r.mean_total_hops;
             Table.fpct r.journey_delivery;
           ])
         rows)

let print_e3 rows =
  print_strategy_rows "E3: egress selection (Fig 3 generalized)" rows

let print_e4 rows =
  print_strategy_rows "E4: advertising-by-proxy (Fig 4 generalized)" rows

(* ------------------------------------------------------------------ *)
(* E5                                                                  *)

type e5_row = {
  generations : int;
  opt1_mean_rib : float;
  opt1_max_rib : int;
  opt2_mean_rib : float;
  opt2_max_rib : int;
  baseline_rib : int;
}

let rib_stats env =
  let inet = env.Forward.inet in
  let sizes =
    List.init (Internet.num_domains inet) (fun d ->
        Bgp.rib_size env.Forward.bgp ~domain:d)
  in
  ( Metrics.mean (List.map float_of_int sizes),
    List.fold_left max 0 sizes )

let e5_state_scaling ?(params = Internet.default_params) ?(max_generations = 6)
    ?(domains_per_generation = 3) () =
  let build_env () =
    let inet = Internet.build params in
    Forward.make_env inet
  in
  let env1 = build_env () and env2 = build_env () in
  let baseline = Internet.num_domains env1.Forward.inet in
  let rng = Rng.create (Int64.add params.Internet.seed 17L) in
  let stubs = stub_domains env1.Forward.inet in
  let deploy_generation env strategy version =
    let service = Service.deploy env ~version ~strategy in
    let doms =
      match strategy with
      | Service.Option2 { default_domain } | Service.Gia { home_domain = default_domain; _ }
        ->
          default_domain
          :: Rng.sample rng (domains_per_generation - 1) stubs
      | Service.Option1 -> Rng.sample rng domains_per_generation stubs
    in
    List.iter
      (fun d ->
        let routers =
          Array.to_list (Internet.domain env.Forward.inet d).Internet.router_ids
        in
        Service.add_participant service ~domain:d ~routers)
      doms;
    service
  in
  List.init max_generations (fun i ->
      let version = i + 1 in
      ignore (deploy_generation env1 Service.Option1 version);
      ignore
        (deploy_generation env2 (Service.Option2 { default_domain = 0 }) version);
      let m1, x1 = rib_stats env1 and m2, x2 = rib_stats env2 in
      {
        generations = version;
        opt1_mean_rib = m1;
        opt1_max_rib = x1;
        opt2_mean_rib = m2;
        opt2_max_rib = x2;
        baseline_rib = baseline;
      })

let print_e5 rows =
  Table.print ~title:"E5: inter-domain routing state vs concurrent IPvN generations"
    ~header:
      [
        "generations";
        "opt1 mean RIB";
        "opt1 max RIB";
        "opt2 mean RIB";
        "opt2 max RIB";
        "baseline";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.generations;
             Table.ff r.opt1_mean_rib;
             Table.fi r.opt1_max_rib;
             Table.ff r.opt2_mean_rib;
             Table.fi r.opt2_max_rib;
             Table.fi r.baseline_rib;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E6                                                                  *)

type e6_row = {
  scenario : string;
  universal_access : bool;
  final_isp_fraction : float;
  final_app_fraction : float;
  tip_step : int option;
}

let e6_adoption ?(seeds = [ 1L; 2L; 3L; 4L; 5L ]) ?(base = Adoption.default_params)
    () =
  let run_mean ua =
    let finals =
      List.map
        (fun seed ->
          let points =
            Adoption.run { base with Adoption.universal_access = ua; seed }
          in
          (Adoption.final points, Adoption.time_to_tip points))
        seeds
    in
    let mean f = Metrics.mean (List.map f finals) in
    let tips = List.filter_map snd finals in
    {
      scenario =
        (if ua then "universal access" else "ISP-gated access (multicast)");
      universal_access = ua;
      final_isp_fraction = mean (fun (p, _) -> p.Adoption.isp_fraction);
      final_app_fraction = mean (fun (p, _) -> p.Adoption.app_fraction);
      tip_step =
        (match tips with
        | [] -> None
        | _ ->
            Some
              (int_of_float
                 (Metrics.mean (List.map float_of_int tips))));
    }
  in
  [ run_mean true; run_mean false ]

let print_e6 rows =
  Table.print ~title:"E6: adoption dynamics (virtuous cycle vs chicken-and-egg)"
    ~header:[ "scenario"; "final ISP adoption"; "final app adoption"; "tip step" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.scenario;
             Table.fpct r.final_isp_fraction;
             Table.fpct r.final_app_fraction;
             (match r.tip_step with Some s -> Table.fi s | None -> "never");
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E7                                                                  *)

type e7_row = {
  failure_fraction : float;
  survive_k1 : float;
  survive_k2 : float;
  survive_k3 : float;
  mean_repair_tunnels : float;
  trials : int;
}

(* connectivity of the subgraph induced by the surviving members *)
let survivors_connected fabric dead =
  let g = Fabric.graph fabric in
  let n = Topology.Graph.n g in
  let alive v = not (Hashtbl.mem dead v) in
  let start = ref (-1) in
  for v = n - 1 downto 0 do
    if alive v then start := v
  done;
  if !start < 0 then true
  else begin
    let seen = Array.make n false in
    let q = Queue.create () in
    seen.(!start) <- true;
    Queue.add !start q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Topology.Graph.iter_neighbors g u (fun v _ ->
          if alive v && not seen.(v) then begin
            seen.(v) <- true;
            Queue.add v q
          end)
    done;
    let ok = ref true in
    for v = 0 to n - 1 do
      if alive v && not seen.(v) then ok := false
    done;
    !ok
  end

let e7_robustness ?(params = Internet.default_params) ?(deploy_domains = 8)
    ?(trials = 20) ?(failure_fractions = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ]) () =
  let inet = Internet.build params in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  let rng = Rng.create (Int64.add params.Internet.seed 29L) in
  let doms = Rng.sample rng deploy_domains (stub_domains inet) in
  List.iter (fun d -> Setup.deploy ~fraction:1.0 setup ~domain:d) doms;
  let service = Setup.service setup in
  let fabrics = List.map (fun k -> (k, Fabric.build ~k service)) [ 1; 2; 3 ] in
  let members = Array.of_list (Service.members service) in
  let fabric2 = List.assoc 2 fabrics in
  let base_tunnels = List.length (Fabric.tunnels fabric2) in
  List.map
    (fun failure_fraction ->
      let kill_count =
        int_of_float (failure_fraction *. float_of_int (Array.length members))
      in
      let survive = Hashtbl.create 3 in
      let repair_total = ref 0.0 in
      for _ = 1 to trials do
        let victims = Rng.sample rng kill_count (Array.to_list members) in
        (* static survivability per k *)
        List.iter
          (fun (k, fabric) ->
            let dead = Hashtbl.create 16 in
            List.iter
              (fun r ->
                match Fabric.index_of fabric r with
                | Some n -> Hashtbl.replace dead n ()
                | None -> ())
              victims;
            if survivors_connected fabric dead then
              Hashtbl.replace survive k
                (1 + Option.value ~default:0 (Hashtbl.find_opt survive k)))
          fabrics;
        (* repair cost: rebuild (k = 2) over the survivors *)
        List.iter (fun r -> Service.remove_member service ~router:r) victims;
        let rebuilt = Fabric.build ~k:2 service in
        let lost =
          List.length
            (List.filter
               (fun tn ->
                 List.mem tn.Fabric.from_router victims
                 || List.mem tn.Fabric.to_router victims)
               (Fabric.tunnels fabric2))
        in
        let now = List.length (Fabric.tunnels rebuilt) in
        repair_total :=
          !repair_total +. float_of_int (max 0 (now - (base_tunnels - lost)));
        List.iter (fun r -> Service.add_member service ~router:r) victims
      done;
      let rate k =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt survive k))
        /. float_of_int trials
      in
      {
        failure_fraction;
        survive_k1 = rate 1;
        survive_k2 = rate 2;
        survive_k3 = rate 3;
        mean_repair_tunnels = !repair_total /. float_of_int trials;
        trials;
      })
    failure_fractions

let print_e7 rows =
  Table.print ~title:"E7: vN-Bone survivability under member failures"
    ~header:
      [
        "failure fraction";
        "survives (k=1)";
        "survives (k=2)";
        "survives (k=3)";
        "repair tunnels";
        "trials";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.ff r.failure_fraction;
             Table.fpct r.survive_k1;
             Table.fpct r.survive_k2;
             Table.fpct r.survive_k3;
             Table.ff r.mean_repair_tunnels;
             Table.fi r.trials;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E8                                                                  *)

type e8_row = {
  domain_routers : int;
  ls_mean_rounds : float;
  dv_join_rounds : float;
  dv_leave_rounds : float;
}

let e8_convergence ?(sizes = [ 8; 16; 32; 64 ]) ?(seed = 5L) () =
  List.map
    (fun n ->
      let inet =
        Internet.build_custom ~seed
          [| { Internet.routers = n; endhosts = 1; transit = true } |]
          []
      in
      let group = Addressing.anycast_global ~group:8 in
      let ls = Linkstate.compute inet ~domain:0 in
      let dv = Distvec.create inet ~domain:0 in
      ignore (Distvec.converge dv) (* warm up unicast vectors *);
      let rng = Rng.create (Int64.add seed (Int64.of_int n)) in
      let routers = Array.to_list (Internet.domain inet 0).Internet.router_ids in
      let first = Rng.pick rng routers in
      Linkstate.advertise_anycast ls ~group ~member:first;
      Distvec.advertise_anycast dv ~group ~member:first;
      ignore (Distvec.converge dv);
      (* a second member joins at the far side of the domain (the
         worst case for update propagation), then leaves *)
      let joiner =
        List.fold_left
          (fun best r ->
            if r = first then best
            else
              let d = Linkstate.distance ls ~src:first ~dst:r in
              match best with
              | Some (_, bd) when bd >= d -> best
              | _ -> Some (r, d))
          None routers
        |> Option.get |> fst
      in
      let ls_rounds = Linkstate.flood_rounds ls ~origin:joiner in
      Linkstate.advertise_anycast ls ~group ~member:joiner;
      Distvec.advertise_anycast dv ~group ~member:joiner;
      let dv_join = Distvec.converge dv in
      Linkstate.withdraw_anycast ls ~group ~member:joiner;
      Distvec.withdraw_anycast dv ~group ~member:joiner;
      let dv_leave = Distvec.converge dv in
      {
        domain_routers = n;
        ls_mean_rounds = float_of_int ls_rounds;
        dv_join_rounds = float_of_int dv_join;
        dv_leave_rounds = float_of_int dv_leave;
      })
    sizes

let print_e8 rows =
  Table.print ~title:"E8: anycast convergence, link-state vs distance-vector"
    ~header:[ "routers"; "LS flood rounds"; "DV join rounds"; "DV leave rounds" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.domain_routers;
             Table.ff r.ls_mean_rounds;
             Table.ff r.dv_join_rounds;
             Table.ff r.dv_leave_rounds;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E9                                                                  *)

type e9_row = {
  member_failure : float;
  host_adv_delivery : float;
  proxy_delivery : float;
  host_adv_exposure : float;
  proxy_exposure : float;
}

let e9_host_advertised ?(params = Internet.default_params)
    ?(deploy_fraction = 0.3) ?(pairs = 80)
    ?(failures = [ 0.0; 0.1; 0.25; 0.5 ]) () =
  List.map
    (fun member_failure ->
      (* a fresh world per failure level so stale registrations do not
         leak between rows *)
      let inet = Internet.build params in
      let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
      let rng = Rng.create (Int64.add params.Internet.seed 31L) in
      let num = Internet.num_domains inet in
      let order =
        let a = Array.init num Fun.id in
        Rng.shuffle rng a;
        a
      in
      let deploy_count =
        max 1 (int_of_float (ceil (deploy_fraction *. float_of_int num)))
      in
      for i = 0 to deploy_count - 1 do
        Setup.deploy setup ~domain:order.(i)
      done;
      let service = Setup.service setup in
      let vrouter = Setup.router setup in
      let hosts = Array.of_list (all_endhosts inet) in
      let sample_pairs =
        List.init pairs (fun _ ->
            let src = Rng.pick_array rng hosts in
            let rec dst () =
              let d = Rng.pick_array rng hosts in
              if d <> src then d else dst ()
            in
            (src, dst ()))
      in
      (* every destination registers while the deployment is intact *)
      List.iter
        (fun (_, dst) -> ignore (Router.register_endhost vrouter ~endhost:dst))
        sample_pairs;
      (* then a fraction of the members fail; nobody re-registers *)
      let members = Array.of_list (Service.members service) in
      let kill =
        Rng.sample rng
          (int_of_float (member_failure *. float_of_int (Array.length members)))
          (Array.to_list members)
      in
      List.iter (fun r -> Service.remove_member service ~router:r) kill;
      let run strategy =
        let journeys =
          List.map
            (fun (src, dst) ->
              Transport.send vrouter ~strategy ~src ~dst ~payload:"e9")
            sample_pairs
        in
        let ok = List.filter Transport.delivered journeys in
        let delivery =
          float_of_int (List.length ok)
          /. float_of_int (max 1 (List.length journeys))
        in
        let exposure =
          Metrics.mean
            (List.map
               (fun j ->
                 float_of_int (Transport.access_hops j + Transport.exit_hops j))
               ok)
        in
        (delivery, exposure)
      in
      let ha_del, ha_exp = run Router.Host_advertised in
      let px_del, px_exp = run Router.Proxy in
      {
        member_failure;
        host_adv_delivery = ha_del;
        proxy_delivery = px_del;
        host_adv_exposure = ha_exp;
        proxy_exposure = px_exp;
      })
    failures

let print_e9 rows =
  Table.print ~title:"E9: host-advertised routes vs proxy under member failures"
    ~header:
      [
        "member failure";
        "host-adv delivery";
        "proxy delivery";
        "host-adv exposure";
        "proxy exposure";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.ff r.member_failure;
             Table.fpct r.host_adv_delivery;
             Table.fpct r.proxy_delivery;
             Table.ff r.host_adv_exposure;
             Table.ff r.proxy_exposure;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E10                                                                 *)

type e10_row = {
  discovery_name : string;
  intra_tunnels : int;
  vn_stretch : float;
  connected10 : bool;
}

let e10_discovery_ablation ?(params = Internet.default_params)
    ?(deploy_domains = 4) () =
  let inet = Internet.build params in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  let rng = Rng.create (Int64.add params.Internet.seed 41L) in
  let doms = Rng.sample rng deploy_domains (stub_domains inet) in
  List.iter (fun d -> Setup.deploy setup ~domain:d) doms;
  let service = Setup.service setup in
  let measure name fabric =
    {
      discovery_name = name;
      intra_tunnels =
        List.length
          (List.filter (fun t -> t.Fabric.kind = `Intra) (Fabric.tunnels fabric));
      vn_stretch = Fabric.mean_vn_stretch fabric;
      connected10 = Fabric.is_connected fabric;
    }
  in
  [
    measure "LSDB k=1" (Fabric.build ~k:1 service);
    measure "LSDB k=2" (Fabric.build ~k:2 service);
    measure "LSDB k=3" (Fabric.build ~k:3 service);
    measure "anycast walk (DV)"
      (Fabric.build ~discovery:Fabric.Anycast_walk service);
  ]

let print_e10 rows =
  Table.print
    ~title:"E10: member discovery ablation (LSDB k-closest vs DV anycast walk)"
    ~header:[ "discovery"; "intra tunnels"; "vN stretch"; "connected" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.discovery_name;
             Table.fi r.intra_tunnels;
             Table.ff r.vn_stretch;
             Table.fb r.connected10;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E11                                                                 *)

type e11_row = {
  deploy_fraction11 : float;
  members11 : int;
  vn_stretch11 : float;
  inter_tunnels11 : int;
}

let e11_congruence ?(params = Internet.default_params)
    ?(fractions = [ 0.1; 0.25; 0.5; 0.75; 1.0 ]) () =
  let inet = Internet.build params in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  let num = Internet.num_domains inet in
  let order =
    let rng = Rng.create (Int64.add params.Internet.seed 43L) in
    let a = Array.init num Fun.id in
    Rng.shuffle rng a;
    a
  in
  let deployed = ref 0 in
  List.map
    (fun fraction ->
      let target = max 2 (int_of_float (ceil (fraction *. float_of_int num))) in
      while !deployed < target && !deployed < num do
        Setup.deploy setup ~domain:order.(!deployed);
        incr deployed
      done;
      let fabric = Setup.fabric setup in
      {
        deploy_fraction11 = fraction;
        members11 = Array.length (Fabric.members fabric);
        vn_stretch11 = Fabric.mean_vn_stretch fabric;
        inter_tunnels11 =
          List.length
            (List.filter
               (fun t -> t.Fabric.kind <> `Intra)
               (Fabric.tunnels fabric));
      })
    fractions

let print_e11 rows =
  Table.print ~title:"E11: vN-Bone congruence with the physical topology"
    ~header:[ "deploy fraction"; "members"; "vN stretch"; "inter tunnels" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.ff r.deploy_fraction11;
             Table.fi r.members11;
             Table.ff r.vn_stretch11;
             Table.fi r.inter_tunnels11;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E12                                                                 *)

type e12_row = {
  scheme12 : string;
  gia_radius : int option;
  home_share : float;
  mean_stretch12 : float;
  delivery12 : float;
  mean_rib12 : float;
}

let e12_gia_sweep ?(params = Internet.default_params) ?(participants = 5)
    ?(radii = [ 0; 1; 2; 3 ]) () =
  let home = 0 in
  let rng0 = Rng.create (Int64.add params.Internet.seed 53L) in
  let others =
    Rng.sample rng0 (participants - 1) (stub_domains (Internet.build params))
  in
  let run scheme12 gia_radius strategy =
    let inet = Internet.build params in
    let setup = Setup.of_internet inet ~version:8 ~strategy in
    Setup.deploy setup ~domain:home;
    List.iter (fun d -> Setup.deploy setup ~domain:d) others;
    let service = Setup.service setup in
    let env = Setup.env setup in
    let rib_mean =
      Metrics.mean
        (List.init (Internet.num_domains inet) (fun d ->
             float_of_int (Bgp.rib_size env.Forward.bgp ~domain:d)))
    in
    {
      scheme12;
      gia_radius;
      home_share = Metrics.termination_share service ~domain:home;
      mean_stretch12 = Metrics.mean_stretch service;
      delivery12 = Metrics.delivery_rate service;
      mean_rib12 = rib_mean;
    }
  in
  let gia_rows =
    List.map
      (fun r ->
        run (Printf.sprintf "GIA r=%d" r) (Some r)
          (Service.Gia { home_domain = home; radius = r }))
      radii
  in
  gia_rows
  @ [
      run "option2 (no adverts)" None (Service.Option2 { default_domain = home });
      run "option1 (global)" None Service.Option1;
    ]

let print_e12 rows =
  Table.print
    ~title:"E12: GIA search radius, between Option 2 (r=0) and Option 1"
    ~header:
      [ "scheme"; "home share"; "mean stretch"; "delivery"; "mean RIB" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.scheme12;
             Table.fpct r.home_share;
             Table.ff r.mean_stretch12;
             Table.fpct r.delivery12;
             Table.ff r.mean_rib12;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E13                                                                 *)

type e13_row = {
  strategy13 : string;
  vn_fraction_ci : Stats.summary;
  exposure_ci : Stats.summary;
  delivery_ci : Stats.summary;
  seeds13 : int;
}

let e13_seed_stability ?(seeds = [ 101L; 202L; 303L; 404L; 505L ])
    ?(deploy_fraction = 0.3) ?(pairs = 60) () =
  let per_seed =
    List.map
      (fun seed ->
        let params = { Internet.default_params with Internet.seed = seed } in
        e3_egress_comparison ~params ~deploy_fraction ~pairs ())
      seeds
  in
  let names =
    List.map (fun r -> r.strategy_name) (List.hd per_seed)
  in
  List.map
    (fun name ->
      let rows =
        List.map
          (fun run ->
            List.find (fun r -> r.strategy_name = name) run)
          per_seed
      in
      {
        strategy13 = name;
        vn_fraction_ci =
          Stats.summarize (List.map (fun r -> r.mean_vn_fraction) rows);
        exposure_ci =
          Stats.summarize (List.map (fun r -> r.mean_exposure_hops) rows);
        delivery_ci =
          Stats.summarize (List.map (fun r -> r.journey_delivery) rows);
        seeds13 = List.length seeds;
      })
    names

let print_e13 rows =
  Table.print
    ~title:"E13: egress-strategy results across independent internets (95% CI)"
    ~header:[ "strategy"; "vN fraction"; "exposure hops"; "delivery"; "seeds" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.strategy13;
             Stats.to_string r.vn_fraction_ci;
             Stats.to_string r.exposure_ci;
             Stats.to_string r.delivery_ci;
             Table.fi r.seeds13;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E14                                                                 *)

type e14_row = {
  alpha : float;
  alpha_vn_fraction : float;
  alpha_exposure : float;
  alpha_total_hops : float;
}

let e14_proxy_alpha ?(params = Internet.default_params)
    ?(deploy_fraction = 0.3) ?(pairs = 80)
    ?(alphas = [ 0.0; 0.25; 0.5; 0.75; 1.0; 1.5 ]) () =
  let inet = Internet.build params in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  let num = Internet.num_domains inet in
  let rng = Rng.create (Int64.add params.Internet.seed 61L) in
  let order =
    let a = Array.init num Fun.id in
    Rng.shuffle rng a;
    a
  in
  let deploy_count =
    max 1 (int_of_float (ceil (deploy_fraction *. float_of_int num)))
  in
  for i = 0 to deploy_count - 1 do
    Setup.deploy setup ~domain:order.(i)
  done;
  let service = Setup.service setup in
  let fabric = Fabric.build service in
  let hosts = Array.of_list (all_endhosts inet) in
  let non_vn h =
    not
      (Service.is_participant service
         ~domain:(Internet.endhost inet h).Internet.hdomain)
  in
  let sample_pairs =
    List.init pairs (fun _ ->
        let src = Rng.pick_array rng hosts in
        let rec dst () =
          let d = Rng.pick_array rng hosts in
          if d <> src && non_vn d then d else dst ()
        in
        (src, dst ()))
  in
  List.map
    (fun alpha ->
      let vrouter = Router.create ~proxy_alpha:alpha fabric in
      let journeys =
        List.map
          (fun (src, dst) ->
            Transport.send vrouter ~strategy:Router.Proxy ~src ~dst ~payload:"e14")
          sample_pairs
      in
      let ok = List.filter Transport.delivered journeys in
      let meanf f = Metrics.mean (List.map f ok) in
      {
        alpha;
        alpha_vn_fraction = meanf Transport.vn_fraction;
        alpha_exposure =
          meanf (fun j ->
              float_of_int (Transport.access_hops j + Transport.exit_hops j));
        alpha_total_hops = meanf (fun j -> float_of_int (Transport.total_hops j));
      })
    alphas

let print_e14 rows =
  Table.print
    ~title:"E14: proxy-metric ablation — weight of a vN hop vs an AS hop"
    ~header:[ "alpha"; "vN fraction"; "exposure hops"; "total hops" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.ff r.alpha;
             Table.ff r.alpha_vn_fraction;
             Table.ff r.alpha_exposure;
             Table.ff r.alpha_total_hops;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E15                                                                 *)

type e15_row = {
  viability : float;  (** app developers' minimum viable user share *)
  ua_final : float;
  gated_final : float;
}

let e15_viability_sweep ?(seeds = [ 11L; 22L; 33L ])
    ?(thresholds = [ 0.0; 0.1; 0.2; 0.3; 0.5; 0.7 ]) () =
  List.map
    (fun viability ->
      let final ua =
        Metrics.mean
          (List.map
             (fun seed ->
               let p =
                 {
                   Adoption.default_params with
                   Adoption.universal_access = ua;
                   app_viability_threshold = viability;
                   seed;
                 }
               in
               (Adoption.final (Adoption.run p)).Adoption.isp_fraction)
             seeds)
      in
      { viability; ua_final = final true; gated_final = final false })
    thresholds

let print_e15 rows =
  Table.print
    ~title:
      "E15: adoption vs app-viability threshold (where the chicken-and-egg bites)"
    ~header:[ "viability floor"; "UA final adoption"; "gated final adoption" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.ff r.viability;
             Table.fpct r.ua_final;
             Table.fpct r.gated_final;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E16                                                                 *)

type e16_row = {
  picker : string;  (** which stubs deployed *)
  pop_share : float;  (** deployers' share of the user population *)
  traffic_share : float;  (** deployers' share of carried IPvN traffic *)
  attraction_premium : float;  (** traffic share / population share *)
}

let e16_revenue_gravity ?(params = Internet.default_params) ?(deployers = 4)
    ?(flows = 150) () =
  let pick name sel =
    let inet = Internet.build params in
    let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
    let stubs = stub_domains inet in
    let chosen = sel stubs in
    List.iter (fun d -> Setup.deploy setup ~domain:d) chosen;
    let traffic =
      Traffic.create inet (Traffic.Gravity { zipf_s = 1.0 })
        ~seed:(Int64.add params.Internet.seed 71L)
    in
    let pairs = Traffic.sample_flows traffic ~count:flows in
    let report =
      Revenue.traffic_report (Setup.router setup) ~strategy:Router.Bgp_aware
        ~pairs
    in
    let total = Array.fold_left ( +. ) 0.0 report.Revenue.per_domain in
    let deployer_load =
      List.fold_left
        (fun acc d -> acc +. report.Revenue.per_domain.(d))
        0.0 chosen
    in
    let traffic_share = if total > 0.0 then deployer_load /. total else 0.0 in
    let pop_share = Traffic.population_share traffic chosen in
    {
      picker = name;
      pop_share;
      traffic_share;
      attraction_premium =
        (if pop_share > 0.0 then traffic_share /. pop_share else nan);
    }
  in
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  [
    pick "largest stubs" (fun stubs -> take deployers stubs);
    pick "smallest stubs" (fun stubs -> take deployers (List.rev stubs));
  ]

let print_e16 rows =
  Table.print
    ~title:
      "E16: traffic attraction under gravity workloads (assumption A4)"
    ~header:
      [ "deployers"; "population share"; "IPvN traffic share"; "premium" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.picker;
             Table.fpct r.pop_share;
             Table.fpct r.traffic_share;
             Table.ff r.attraction_premium;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E17                                                                 *)

type e17_row = {
  vn_domains : int;
  vn_members : int;
  bgpvn_rounds : int;
  mean_table : float;  (** per-member BGPvN routes (domain aggregates) *)
}

let e17_bgpvn_scaling ?(params = Internet.default_params)
    ?(domain_counts = [ 2; 4; 8; 12 ]) () =
  List.map
    (fun count ->
      let inet = Internet.build params in
      let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
      let rng = Rng.create (Int64.add params.Internet.seed 83L) in
      let doms = Rng.sample rng count (stub_domains inet) in
      List.iter (fun d -> Setup.deploy ~fraction:0.5 setup ~domain:d) doms;
      let fabric = Setup.fabric setup in
      let speaker = Vnbone.Bgpvn.create fabric in
      let rounds = Vnbone.Bgpvn.converge speaker in
      let members = Vnbone.Fabric.members fabric in
      let mean_table =
        Metrics.mean
          (Array.to_list
             (Array.map
                (fun m -> float_of_int (Vnbone.Bgpvn.table_size speaker ~at:m))
                members))
      in
      {
        vn_domains = count;
        vn_members = Array.length members;
        bgpvn_rounds = rounds;
        mean_table;
      })
    domain_counts

let print_e17 rows =
  Table.print ~title:"E17: BGPvN convergence and per-member state"
    ~header:[ "vN domains"; "members"; "rounds"; "mean table size" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.vn_domains;
             Table.fi r.vn_members;
             Table.fi r.bgpvn_rounds;
             Table.ff r.mean_table;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E18                                                                 *)

type e18_row = {
  ls_routers : int;
  sync_messages : int;  (** LSA transmissions for initial LSDB sync *)
  update_messages : int;  (** for one anycast advertisement *)
  update_latency : float;  (** engine time for the update to settle *)
  eccentricity : int;  (** graph lower bound on the latency *)
}

let e18_flooding_cost ?(sizes = [ 8; 16; 32; 64 ]) ?(seed = 5L) () =
  List.map
    (fun n ->
      let inet =
        Internet.build_custom ~seed
          [| { Internet.routers = n; endhosts = 1; transit = true } |]
          []
      in
      let proto = Simcore.Lsproto.create inet ~domain:0 in
      let engine = Simcore.Engine.create () in
      Simcore.Lsproto.start proto engine;
      ignore (Simcore.Engine.run engine);
      let sync = (Simcore.Lsproto.stats proto).Simcore.Lsproto.messages in
      let member = (Internet.domain inet 0).Internet.router_ids.(0) in
      let t0 = Simcore.Engine.now engine in
      Simcore.Lsproto.advertise_anycast proto engine ~router:member
        (Addressing.anycast_global ~group:8);
      ignore (Simcore.Engine.run engine);
      let s = Simcore.Lsproto.stats proto in
      {
        ls_routers = n;
        sync_messages = sync;
        update_messages = s.Simcore.Lsproto.messages - sync;
        update_latency = s.Simcore.Lsproto.last_change -. t0;
        eccentricity =
          Routing.Spt.eccentricity inet.Internet.graph ~src:member
            ~allow:(fun _ -> true);
      })
    sizes

let print_e18 rows =
  Table.print ~title:"E18: message-level LSA flooding cost and latency"
    ~header:
      [ "routers"; "sync msgs"; "update msgs"; "update latency"; "eccentricity" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.ls_routers;
             Table.fi r.sync_messages;
             Table.fi r.update_messages;
             Table.ff r.update_latency;
             Table.fi r.eccentricity;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E19                                                                 *)

type e19_row = {
  mrai : float;
  boot_updates : int;  (** update messages to converge all /16s *)
  boot_time : float;
  anycast_updates : int;  (** messages for one new anycast prefix *)
  anycast_time : float;
  churn : int;  (** transient best-route changes for the anycast prefix *)
}

let e19_mrai_sweep ?(params = Internet.default_params)
    ?(mrais = [ 0.01; 0.5; 2.0; 5.0; 10.0 ]) () =
  List.map
    (fun mrai ->
      let inet = Internet.build params in
      let dyn = Simcore.Bgpdyn.create ~mrai ~jitter:3.0 inet in
      let engine = Simcore.Engine.create () in
      Simcore.Bgpdyn.originate_all_domain_prefixes dyn engine;
      ignore (Simcore.Engine.run engine);
      let boot = Simcore.Bgpdyn.stats dyn in
      (* a participant now injects a new anycast prefix *)
      let g = Addressing.anycast_global ~group:8 in
      let t0 = Simcore.Engine.now engine in
      Simcore.Bgpdyn.originate dyn engine ~domain:5 g;
      ignore (Simcore.Engine.run engine);
      let final = Simcore.Bgpdyn.stats dyn in
      {
        mrai;
        boot_updates = boot.Simcore.Bgpdyn.updates;
        boot_time = boot.Simcore.Bgpdyn.last_change;
        anycast_updates = final.Simcore.Bgpdyn.updates - boot.Simcore.Bgpdyn.updates;
        anycast_time = final.Simcore.Bgpdyn.last_change -. t0;
        churn = final.Simcore.Bgpdyn.best_changes - boot.Simcore.Bgpdyn.best_changes;
      })
    mrais

let print_e19 rows =
  Table.print
    ~title:"E19: asynchronous BGP — MRAI vs update load and convergence time"
    ~header:
      [
        "MRAI";
        "boot updates";
        "boot time";
        "anycast updates";
        "anycast time";
        "anycast churn";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.ff r.mrai;
             Table.fi r.boot_updates;
             Table.ff r.boot_time;
             Table.fi r.anycast_updates;
             Table.ff r.anycast_time;
             Table.fi r.churn;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E20                                                                 *)

type e20_row = {
  dead_members : int;
  anycast_delivery : float;  (** probes to the anycast address *)
  unicast_delivery : float;  (** probes to one designated member's address *)
}

let e20_anycast_resilience ?(params = Internet.default_params)
    ?(deploy_domains = 6) ?(kill_steps = [ 0; 2; 5; 10; 20 ]) () =
  let inet = Internet.build params in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  let rng = Rng.create (Int64.add params.Internet.seed 91L) in
  let doms = Rng.sample rng deploy_domains (stub_domains inet) in
  List.iter (fun d -> Setup.deploy setup ~domain:d) doms;
  let service = Setup.service setup in
  let env = Setup.env setup in
  let members = Array.of_list (Service.members service) in
  Rng.shuffle rng members;
  (* the "unicast service" lives on one designated member *)
  let designated = members.(0) in
  let designated_addr = (Internet.router inet designated).Internet.raddr in
  let hosts = all_endhosts inet in
  let delivery_to dst =
    let ok =
      List.length
        (List.filter
           (fun h ->
             let p = Netcore.Packet.make_data ~src:Netcore.Ipv4.any ~dst "r" in
             Forward.delivered (Forward.send_from_endhost env p ~endhost:h))
           hosts)
    in
    float_of_int ok /. float_of_int (List.length hosts)
  in
  let killed = ref 0 in
  List.map
    (fun dead_members ->
      while !killed < dead_members && !killed < Array.length members do
        Service.remove_member service ~router:members.(!killed);
        incr killed
      done;
      {
        dead_members = !killed;
        anycast_delivery = delivery_to (Service.address service);
        unicast_delivery =
          (* the designated member is "down" once killed: a probe that
             reaches its router no longer finds the service *)
          (if Array.exists (fun m -> m = designated)
                (Array.sub members 0 !killed)
           then 0.0
           else delivery_to designated_addr);
      })
    kill_steps

let print_e20 rows =
  Table.print
    ~title:
      "E20: service survival under member failures — anycast vs a single server"
    ~header:[ "dead members"; "anycast delivery"; "single-server delivery" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.dead_members;
             Table.fpct r.anycast_delivery;
             Table.fpct r.unicast_delivery;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E21                                                                 *)

type e21_row = {
  domains21 : int;
  routers21 : int;
  bgp_rounds : int;
  mean_stretch21 : float;
  delivery21 : float;
  total_rib : int;  (** summed per-domain RIB entries: deterministic cost *)
}

let e21_size_scaling ?(transit_counts = [ 2; 4; 8; 12; 16 ]) () =
  List.map
    (fun transit ->
      let params =
        {
          Internet.default_params with
          Internet.transit_domains = transit;
          stubs_per_transit = 6;
        }
      in
      let inet = Internet.build params in
      let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
      let bgp_rounds = Forward.reconverge (Setup.env setup) in
      ignore bgp_rounds;
      (* redo a clean convergence count on a fresh BGP for the metric *)
      let bgp = Interdomain.Bgp.create inet in
      Interdomain.Bgp.originate_all_domain_prefixes bgp;
      let bgp_rounds = Interdomain.Bgp.converge bgp in
      let rng = Rng.create 3L in
      let doms =
        Rng.sample rng (max 2 (Internet.num_domains inet / 7)) (stub_domains inet)
      in
      List.iter (fun d -> Setup.deploy setup ~domain:d) doms;
      let service = Setup.service setup in
      let total_rib =
        List.fold_left
          (fun acc d -> acc + Interdomain.Bgp.rib_size bgp ~domain:d)
          0
          (List.init (Internet.num_domains inet) Fun.id)
      in
      {
        domains21 = Internet.num_domains inet;
        routers21 = Internet.num_routers inet;
        bgp_rounds;
        mean_stretch21 = Metrics.mean_stretch service;
        delivery21 = Metrics.delivery_rate service;
        total_rib;
      })
    transit_counts

let print_e21 rows =
  Table.print ~title:"E21: behaviour and cost vs internet size"
    ~header:
      [ "domains"; "routers"; "BGP rounds"; "mean stretch"; "delivery"; "total RIB" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.domains21;
             Table.fi r.routers21;
             Table.fi r.bgp_rounds;
             Table.ff r.mean_stretch21;
             Table.fpct r.delivery21;
             Table.fi r.total_rib;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E22                                                                 *)

type e22_row = {
  generations22 : int;
  opt1_mean_fib : float;
  opt1_max_fib : int;
  opt2_mean_fib : float;
  opt2_max_fib : int;
}

let e22_fib_scaling ?(params = Internet.default_params) ?(max_generations = 5)
    ?(domains_per_generation = 3) () =
  let run_option strategy_of_version =
    let inet = Internet.build params in
    let env = Forward.make_env inet in
    let rng = Rng.create (Int64.add params.Internet.seed 101L) in
    let stubs = stub_domains inet in
    List.init max_generations (fun i ->
        let version = i + 1 in
        let service = Service.deploy env ~version ~strategy:(strategy_of_version version) in
        let doms =
          match strategy_of_version version with
          | Service.Option2 { default_domain } | Service.Gia { home_domain = default_domain; _ }
            ->
              default_domain :: Rng.sample rng (domains_per_generation - 1) stubs
          | Service.Option1 -> Rng.sample rng domains_per_generation stubs
        in
        List.iter
          (fun d ->
            Service.add_participant service ~domain:d
              ~routers:(Array.to_list (Internet.domain inet d).Internet.router_ids))
          doms;
        let fib = Simcore.Fib.compile env in
        let sizes =
          List.init (Internet.num_routers inet) (fun r ->
              Simcore.Fib.size fib ~router:r)
        in
        ( Metrics.mean (List.map float_of_int sizes),
          List.fold_left max 0 sizes ))
  in
  let opt1 = run_option (fun _ -> Service.Option1) in
  let opt2 = run_option (fun _ -> Service.Option2 { default_domain = 0 }) in
  List.mapi
    (fun i ((m1, x1), (m2, x2)) ->
      {
        generations22 = i + 1;
        opt1_mean_fib = m1;
        opt1_max_fib = x1;
        opt2_mean_fib = m2;
        opt2_max_fib = x2;
      })
    (List.combine opt1 opt2)

let print_e22 rows =
  Table.print
    ~title:"E22: compiled FIB size (data plane) vs concurrent IPvN generations"
    ~header:
      [ "generations"; "opt1 mean FIB"; "opt1 max FIB"; "opt2 mean FIB"; "opt2 max FIB" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.generations22;
             Table.ff r.opt1_mean_fib;
             Table.fi r.opt1_max_fib;
             Table.ff r.opt2_mean_fib;
             Table.fi r.opt2_max_fib;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E23                                                                 *)

type e23_row = {
  model : string;
  domains23 : int;
  delivery23 : float;  (** anycast delivery at ~20% deployment *)
  stretch23 : float;
  exposure_drop : float;
      (** relative IPv(N-1)-exposure reduction of BGPv(N-1)-aware
          egress vs exit-early *)
}

let e23_topology_robustness ?(pairs = 80) () =
  let measure model inet =
    let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
    let num = Internet.num_domains inet in
    let rng = Rng.create 7L in
    let order =
      let a = Array.init num Fun.id in
      Rng.shuffle rng a;
      a
    in
    let count = max 2 (num / 5) in
    for i = 0 to count - 1 do
      Setup.deploy setup ~domain:order.(i)
    done;
    let service = Setup.service setup in
    let vrouter = Setup.router setup in
    let hosts = Array.of_list (all_endhosts inet) in
    let sample_pairs =
      List.init pairs (fun _ ->
          let src = Rng.pick_array rng hosts in
          let rec dst () =
            let d = Rng.pick_array rng hosts in
            if d <> src then d else dst ()
          in
          (src, dst ()))
    in
    let exposure strategy =
      let ok =
        List.filter_map
          (fun (src, dst) ->
            let j = Transport.send vrouter ~strategy ~src ~dst ~payload:"e23" in
            if Transport.delivered j then
              Some
                (float_of_int (Transport.access_hops j + Transport.exit_hops j))
            else None)
          sample_pairs
      in
      Metrics.mean ok
    in
    let early = exposure Router.Exit_early in
    let aware = exposure Router.Bgp_aware in
    {
      model;
      domains23 = num;
      delivery23 = Metrics.delivery_rate service;
      stretch23 = Metrics.mean_stretch service;
      exposure_drop = (early -. aware) /. early;
    }
  in
  [
    measure "transit-stub" (Internet.build Internet.default_params);
    measure "transit-stub, weighted links"
      (Internet.build
         {
           Internet.default_params with
           Internet.link_weight = Internet.Uniform_weight (1.0, 10.0);
         });
    measure "preferential attachment"
      (Internet.build_ba Internet.default_ba_params);
  ]

let print_e23 rows =
  Table.print
    ~title:"E23: robustness of the claims to the topology model (~20% deployed)"
    ~header:[ "model"; "domains"; "delivery"; "mean stretch"; "exposure drop" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.model;
             Table.fi r.domains23;
             Table.fpct r.delivery23;
             Table.ff r.stretch23;
             Table.fpct r.exposure_drop;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E24                                                                 *)

type e24_row = {
  stage : int;  (** domains deployed so far *)
  ingress_changed : float;
      (** fraction of clients whose anycast ingress moved at this stage *)
  cumulative_stability : float;
      (** fraction of clients whose ingress never moved since stage 1 *)
}

let e24_flow_stability ?(params = Internet.default_params) ?(stages = 8) () =
  let inet = Internet.build params in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  let service = Setup.service setup in
  let rng = Rng.create (Int64.add params.Internet.seed 111L) in
  let order =
    let a = Array.init (Internet.num_domains inet) Fun.id in
    Rng.shuffle rng a;
    a
  in
  let clients = all_endhosts inet in
  let per_stage = max 1 (Internet.num_domains inet / stages) in
  let previous = Hashtbl.create 32 in
  let ever_moved = Hashtbl.create 32 in
  let deployed = ref 0 in
  List.filter_map
    (fun stage ->
      let target =
        min (Internet.num_domains inet) ((stage + 1) * per_stage)
      in
      while !deployed < target do
        Setup.deploy setup ~domain:order.(!deployed);
        incr deployed
      done;
      let changed = ref 0 and observed = ref 0 in
      List.iter
        (fun h ->
          match Metrics.actual service ~endhost:h with
          | Some (ingress, _) ->
              incr observed;
              (match Hashtbl.find_opt previous h with
              | Some old when old <> ingress ->
                  incr changed;
                  Hashtbl.replace ever_moved h ()
              | _ -> ());
              Hashtbl.replace previous h ingress
          | None -> ())
        clients;
      if stage = 0 then None (* first observation: nothing to compare *)
      else
        Some
          {
            stage = !deployed;
            ingress_changed =
              float_of_int !changed /. float_of_int (max 1 !observed);
            cumulative_stability =
              1.0
              -. float_of_int (Hashtbl.length ever_moved)
                 /. float_of_int (max 1 !observed);
          })
    (List.init stages Fun.id)

let print_e24 rows =
  Table.print
    ~title:
      "E24: anycast flow stability during deployment churn (a known limitation)"
    ~header:[ "domains deployed"; "ingress moved this stage"; "never moved" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.stage;
             Table.fpct r.ingress_changed;
             Table.fpct r.cumulative_stability;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E25                                                                 *)

type e25_row = {
  coalition : int;  (** ISPs deploying together at t=0 *)
  coalition_share : float;  (** their combined market share *)
  gated_final25 : float;
  ua_final25 : float;
}

let e25_coalition_sweep ?(seeds = [ 1L; 2L; 3L ])
    ?(coalitions = [ 1; 2; 3; 5; 8 ]) () =
  List.map
    (fun coalition ->
      let base = { Adoption.default_params with Adoption.early_adopters = coalition } in
      let final ua =
        Metrics.mean
          (List.map
             (fun seed ->
               (Adoption.final
                  (Adoption.run
                     { base with Adoption.universal_access = ua; seed }))
                 .Adoption.isp_fraction)
             seeds)
      in
      (* Zipf market share of the first [coalition] ISPs *)
      let share =
        let raw =
          Array.init base.Adoption.num_isps (fun i ->
              1.0 /. float_of_int (i + 1))
        in
        let total = Array.fold_left ( +. ) 0.0 raw in
        let top = Array.sub raw 0 coalition in
        Array.fold_left ( +. ) 0.0 top /. total
      in
      {
        coalition;
        coalition_share = share;
        gated_final25 = final false;
        ua_final25 = final true;
      })
    coalitions

let print_e25 rows =
  Table.print
    ~title:
      "E25: acting in concert — coalition size needed without universal access"
    ~header:
      [ "coalition"; "market share"; "gated final adoption"; "UA final adoption" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.coalition;
             Table.fpct r.coalition_share;
             Table.fpct r.gated_final25;
             Table.fpct r.ua_final25;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E26                                                                 *)

type e26_row = {
  payload_bytes : int;
  native_bytes : float;  (** mean bytes x hops for a plain IPv4 journey *)
  evolved_bytes : float;  (** same flows, encapsulated via the vN path *)
  byte_overhead : float;  (** evolved / native - 1 *)
  header_share : float;  (** headers / total bytes on the evolved path *)
}

let e26_encapsulation_overhead ?(params = Internet.default_params)
    ?(deploy_fraction = 0.3) ?(pairs = 60)
    ?(payloads = [ 64; 512; 1400 ]) () =
  let inet = Internet.build params in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  let num = Internet.num_domains inet in
  let rng = Rng.create (Int64.add params.Internet.seed 131L) in
  let order =
    let a = Array.init num Fun.id in
    Rng.shuffle rng a;
    a
  in
  for i = 0 to max 1 (int_of_float (deploy_fraction *. float_of_int num)) - 1 do
    Setup.deploy setup ~domain:order.(i)
  done;
  let vrouter = Setup.router setup in
  let env = Setup.env setup in
  let hosts = Array.of_list (all_endhosts inet) in
  let sample_pairs =
    List.init pairs (fun _ ->
        let src = Rng.pick_array rng hosts in
        let rec dst () =
          let d = Rng.pick_array rng hosts in
          if d <> src then d else dst ()
        in
        (src, dst ()))
  in
  List.map
    (fun payload_bytes ->
      let payload = String.make payload_bytes 'x' in
      let native = ref 0.0
      and evolved = ref 0.0
      and headers = ref 0.0 in
      List.iter
        (fun (src, dst) ->
          (* native: direct IPv4 datagram *)
          let dsta = (Internet.endhost inet dst).Internet.haddr in
          let srca = (Internet.endhost inet src).Internet.haddr in
          let plain = Netcore.Packet.make_data ~src:srca ~dst:dsta payload in
          let ptrace = Forward.send_from_endhost env plain ~endhost:src in
          let plen = Netcore.Wire.wire_length plain in
          native :=
            !native +. float_of_int (Forward.hop_count ptrace * plen);
          (* evolved: the encapsulated IPvN journey *)
          let j =
            Transport.send vrouter ~strategy:Router.Bgp_aware ~src ~dst ~payload
          in
          if Transport.delivered j then begin
            let encap =
              Netcore.Packet.encapsulate ~src:srca ~dst:dsta j.Transport.packet
            in
            let elen = Netcore.Wire.wire_length encap in
            let hops = Transport.total_hops j in
            evolved := !evolved +. float_of_int (hops * elen);
            headers :=
              !headers +. float_of_int (hops * (elen - payload_bytes))
          end)
        sample_pairs;
      {
        payload_bytes;
        native_bytes = !native /. float_of_int pairs;
        evolved_bytes = !evolved /. float_of_int pairs;
        byte_overhead = (!evolved /. !native) -. 1.0;
        header_share = !headers /. Float.max 1.0 !evolved;
      })
    payloads

let print_e26 rows =
  Table.print
    ~title:"E26: the byte cost of evolution (encapsulation + vN detours)"
    ~header:
      [ "payload B"; "native B*hops"; "evolved B*hops"; "overhead"; "header share" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.payload_bytes;
             Table.ff r.native_bytes;
             Table.ff r.evolved_bytes;
             Table.fpct r.byte_overhead;
             Table.fpct r.header_share;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E27                                                                 *)

type e27_row = {
  dv_fraction : float;  (** fraction of domains on distance-vector *)
  delivery27 : float;
  stretch27 : float;
  walk_domains : int;  (** participant domains forced to anycast-walk *)
  vn_stretch27 : float;
}

let e27_mixed_igp ?(params = Internet.default_params)
    ?(dv_fractions = [ 0.0; 0.25; 0.5; 1.0 ]) ?(deploy_domains = 5) () =
  List.map
    (fun dv_fraction ->
      let inet = Internet.build params in
      let num = Internet.num_domains inet in
      let rng = Rng.create (Int64.add params.Internet.seed 151L) in
      let flavors =
        Array.init num (fun _ ->
            if Rng.bernoulli rng dv_fraction then Routing.Igp.Distvec_igp
            else Routing.Igp.Linkstate_igp)
      in
      let env = Forward.make_env ~flavor_of:(fun d -> flavors.(d)) inet in
      let service = Service.deploy env ~version:8 ~strategy:Service.Option1 in
      let doms = Rng.sample rng deploy_domains (stub_domains inet) in
      Service.add_participants service
        (List.map
           (fun d ->
             (d, Array.to_list (Internet.domain inet d).Internet.router_ids))
           doms);
      let fabric = Fabric.build service in
      {
        dv_fraction;
        delivery27 = Metrics.delivery_rate service;
        stretch27 = Metrics.mean_stretch service;
        walk_domains =
          List.length
            (List.filter
               (fun d -> not (Routing.Igp.members_known env.Forward.igps.(d)))
               doms);
        vn_stretch27 = Fabric.mean_vn_stretch fabric;
      })
    dv_fractions

let print_e27 rows =
  Table.print
    ~title:
      "E27: heterogeneous IGPs — distance-vector domains in the deployment"
    ~header:
      [ "DV fraction"; "delivery"; "anycast stretch"; "walk domains"; "vN stretch" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.ff r.dv_fraction;
             Table.fpct r.delivery27;
             Table.ff r.stretch27;
             Table.fi r.walk_domains;
             Table.ff r.vn_stretch27;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E28                                                                 *)

type e28_row = {
  mrai28 : float;
  announce_updates : int;
  announce_churn : int;
  withdraw_updates : int;
  withdraw_churn : int;  (** path hunting shows up as extra flips *)
  hunt_ratio : float;  (** withdraw churn / announce churn *)
}

let e28_path_hunting ?(params = Internet.default_params)
    ?(mrais = [ 0.01; 2.0; 10.0 ]) () =
  List.map
    (fun mrai28 ->
      let inet = Internet.build params in
      let dyn = Simcore.Bgpdyn.create ~mrai:mrai28 ~jitter:3.0 inet in
      let engine = Simcore.Engine.create () in
      Simcore.Bgpdyn.originate_all_domain_prefixes dyn engine;
      ignore (Simcore.Engine.run engine);
      let boot = Simcore.Bgpdyn.stats dyn in
      let g = Addressing.anycast_global ~group:8 in
      let t0 = Simcore.Engine.now engine in
      Simcore.Bgpdyn.originate dyn engine ~domain:5 g;
      ignore (Simcore.Engine.run engine);
      let announced = Simcore.Bgpdyn.stats dyn in
      let t1 = Simcore.Engine.now engine in
      Simcore.Bgpdyn.withdraw dyn engine ~domain:5 g;
      ignore (Simcore.Engine.run engine);
      let withdrawn = Simcore.Bgpdyn.stats dyn in
      ignore t0;
      ignore t1;
      let announce_updates =
        announced.Simcore.Bgpdyn.updates - boot.Simcore.Bgpdyn.updates
      in
      let announce_churn =
        announced.Simcore.Bgpdyn.best_changes - boot.Simcore.Bgpdyn.best_changes
      in
      let withdraw_updates =
        withdrawn.Simcore.Bgpdyn.updates - announced.Simcore.Bgpdyn.updates
      in
      let withdraw_churn =
        withdrawn.Simcore.Bgpdyn.best_changes
        - announced.Simcore.Bgpdyn.best_changes
      in
      {
        mrai28;
        announce_updates;
        announce_churn;
        withdraw_updates;
        withdraw_churn;
        hunt_ratio =
          float_of_int withdraw_churn /. float_of_int (max 1 announce_churn);
      })
    mrais

let print_e28 rows =
  Table.print
    ~title:
      "E28: withdrawing an anycast prefix — BGP path hunting vs announcement"
    ~header:
      [
        "MRAI";
        "announce msgs";
        "announce churn";
        "withdraw msgs";
        "withdraw churn";
        "hunt ratio";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.ff r.mrai28;
             Table.fi r.announce_updates;
             Table.fi r.announce_churn;
             Table.fi r.withdraw_updates;
             Table.fi r.withdraw_churn;
             Table.ff r.hunt_ratio;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E29                                                                 *)

type e29_row = {
  option29 : string;
  fraction29 : float;
  delivery29 : float;
  mean_stretch29 : float;  (** data-plane hops, evolved / native *)
  p99_stretch29 : float;
  byte_overhead29 : float;  (** evolved wire bytes / native - 1 *)
  cache_hit29 : float;  (** flow-cache hit rate over the sweep point *)
}

let e29_dataplane_cost ?(params = Internet.default_params)
    ?(fractions = [ 0.0; 0.15; 0.3; 0.6; 1.0 ]) ?(flows = 40) () =
  let strategies =
    [
      ("option1", Service.Option1);
      ("option2", Service.Option2 { default_domain = 0 });
    ]
  in
  List.concat_map
    (fun (option29, strategy) ->
      let inet = Internet.build params in
      let setup = Setup.of_internet inet ~version:8 ~strategy in
      let num = Internet.num_domains inet in
      let rng = Rng.create (Int64.add params.Internet.seed 163L) in
      let order =
        let a = Array.init num Fun.id in
        Rng.shuffle rng a;
        (* Option 2's default domain anchors the deployment: enroll it
           first so the carved prefix has a member behind it *)
        (match strategy with
        | Service.Option2 { default_domain } ->
            let i = ref 0 in
            Array.iteri (fun j d -> if d = default_domain then i := j) a;
            let tmp = a.(0) in
            a.(0) <- a.(!i);
            a.(!i) <- tmp
        | Service.Option1 | Service.Gia _ -> ());
        a
      in
      let wl =
        Workload.create inet
          (Workload.Gravity { zipf_s = 1.2 })
          ~seed:(Int64.add params.Internet.seed 167L)
      in
      let sample = Workload.batch wl ~count:flows in
      let deployed = ref 0 in
      List.map
        (fun fraction29 ->
          let target =
            min num (int_of_float (ceil (fraction29 *. float_of_int num)))
          in
          while !deployed < target do
            Setup.deploy setup ~domain:order.(!deployed);
            incr deployed
          done;
          let pump = Pump.create (Setup.env setup) in
          let vrouter = Setup.router setup in
          let n_del = ref 0 in
          let stretches = ref [] in
          let native_bytes = ref 0 and evolved_bytes = ref 0 in
          List.iter
            (fun (f : Workload.flow) ->
              let payload = String.make f.Workload.bytes_per_packet 'x' in
              let nat =
                Pump.send_data pump ~src:f.Workload.src ~dst:f.Workload.dst
                  ~payload
              in
              let nat_hops = Forward.hop_count nat in
              let nat_len =
                let hs = Internet.endhost inet f.Workload.src
                and hd = Internet.endhost inet f.Workload.dst in
                Netcore.Wire.wire_length
                  (Netcore.Packet.make_data ~src:hs.Internet.haddr
                     ~dst:hd.Internet.haddr payload)
              in
              let d =
                Pump.send_vn pump vrouter ~strategy:Router.Bgp_aware
                  ~src:f.Workload.src ~dst:f.Workload.dst ~payload
              in
              if Pump.vn_delivered d then begin
                incr n_del;
                if Forward.delivered nat && nat_hops > 0 then
                  stretches :=
                    (float_of_int d.Pump.vn_hops /. float_of_int nat_hops)
                    :: !stretches;
                native_bytes := !native_bytes + (nat_hops * nat_len);
                evolved_bytes := !evolved_bytes + d.Pump.vn_bytes
              end)
            sample;
          {
            option29;
            fraction29;
            delivery29 = float_of_int !n_del /. float_of_int flows;
            mean_stretch29 =
              (match !stretches with [] -> 0.0 | s -> Metrics.mean s);
            p99_stretch29 =
              (match !stretches with
              | [] -> 0.0
              | s -> Metrics.percentile 0.99 s);
            byte_overhead29 =
              (if !native_bytes = 0 then 0.0
               else
                 float_of_int !evolved_bytes /. float_of_int !native_bytes
                 -. 1.0);
            cache_hit29 = Pump.cache_hit_rate pump;
          })
        fractions)
    strategies

let print_e29 rows =
  Table.print
    ~title:
      "E29: the data-plane cost of evolution (batched flows over compiled FIBs)"
    ~header:
      [
        "option";
        "fraction";
        "delivery";
        "mean stretch";
        "p99 stretch";
        "byte overhead";
        "cache hits";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.option29;
             Table.ff r.fraction29;
             Table.fpct r.delivery29;
             Table.ff r.mean_stretch29;
             Table.ff r.p99_stretch29;
             Table.fpct r.byte_overhead29;
             Table.fpct r.cache_hit29;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E30                                                                 *)

type e30_row = {
  tick30 : int;
  phase30 : string;  (** steady | converging | recovered *)
  fresh30 : float;  (** fraction of routers on the current snapshot *)
  ok30 : float;  (** probes accepted by a current member *)
  stale30 : float;  (** probes accepted by an ex-member (stale FIB) *)
  lost30 : float;  (** dropped: no route / stuck *)
  looped30 : float;  (** TTL expiry: transient forwarding loops *)
}

let e30_churn_traffic ?(params = Internet.default_params) ?(deploy_domains = 4)
    ?(probes = 40) ?(ticks = 9) ?(churn_tick = 3) ?(window = 4) () =
  let inet = Internet.build params in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  let rng = Rng.create (Int64.add params.Internet.seed 173L) in
  let doms = Rng.sample rng deploy_domains (stub_domains inet) in
  List.iter (fun d -> Setup.deploy setup ~domain:d) doms;
  let env = Setup.env setup in
  let service = Setup.service setup in
  let addr = Service.address service in
  let probe_hosts = Rng.sample rng probes (all_endhosts inet) in
  (* the victim: the deployed domain serving the most probe clients,
     so the stale window is visible *)
  let counts = Array.make (Internet.num_domains inet) 0 in
  List.iter
    (fun h ->
      match Service.ingress_for_endhost service ~endhost:h with
      | Some r ->
          let d = (Internet.router inet r).Internet.rdomain in
          counts.(d) <- counts.(d) + 1
      | None -> ())
    probe_hosts;
  let victim =
    List.fold_left
      (fun best d -> if counts.(d) > counts.(best) then d else best)
      (List.hd doms) (List.tl doms)
  in
  let pump = Pump.create env in
  let n_routers = Internet.num_routers inet in
  let refresh_order =
    let a = Array.init n_routers Fun.id in
    Rng.shuffle rng a;
    a
  in
  let refreshed = ref 0 in
  let churned = ref false in
  let rows = ref [] in
  let engine = Simcore.Engine.create () in
  let tick i _ =
    (* line cards pick up the new snapshot in batches across the window *)
    if !churned && !refreshed < n_routers then begin
      let batch_size = (n_routers + window - 1) / window in
      let upto = min n_routers (!refreshed + batch_size) in
      let batch =
        Array.to_list (Array.sub refresh_order !refreshed (upto - !refreshed))
      in
      Pump.refresh ~routers:batch pump;
      refreshed := upto
    end;
    let members = Service.members service in
    let ok = ref 0 and stale = ref 0 and lost = ref 0 and looped = ref 0 in
    List.iter
      (fun h ->
        let hh = Internet.endhost inet h in
        let p =
          Netcore.Packet.make_data ~src:hh.Internet.haddr ~dst:addr "probe"
        in
        let tr = Pump.inject pump p ~entry:hh.Internet.access_router in
        match tr.Forward.outcome with
        | Forward.Router_accepted r ->
            if List.mem r members then incr ok else incr stale
        | Forward.Endhost_accepted _ -> incr stale
        | Forward.Dropped Forward.Ttl_expired -> incr looped
        | Forward.Dropped _ -> incr lost)
      probe_hosts;
    let total = float_of_int (List.length probe_hosts) in
    let frac c = float_of_int !c /. total in
    rows :=
      {
        tick30 = i;
        phase30 =
          (if not !churned then "steady"
           else if !refreshed < n_routers then "converging"
           else "recovered");
        fresh30 =
          (if !churned then float_of_int !refreshed /. float_of_int n_routers
           else 1.0);
        ok30 = frac ok;
        stale30 = frac stale;
        lost30 = frac lost;
        looped30 = frac looped;
      }
      :: !rows
  in
  for i = 1 to ticks do
    Simcore.Engine.schedule_at engine ~time:(float_of_int i) (tick i)
  done;
  (* the membership change lands between two traffic ticks *)
  Simcore.Engine.schedule_at engine
    ~time:(float_of_int churn_tick +. 0.5)
    (fun _ ->
      Setup.undeploy setup ~domain:victim;
      churned := true);
  ignore (Simcore.Engine.run engine);
  List.rev !rows

let print_e30 rows =
  Table.print
    ~title:
      "E30: traffic during churn — stale FIB snapshots across a membership \
       change"
    ~header:
      [ "tick"; "phase"; "fresh FIBs"; "ok"; "stale"; "lost"; "looped" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.tick30;
             r.phase30;
             Table.fpct r.fresh30;
             Table.fpct r.ok30;
             Table.fpct r.stale30;
             Table.fpct r.lost30;
             Table.fpct r.looped30;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E31                                                                 *)

type e31_row = {
  proto31 : string;  (** "bgp" | "ls" *)
  loss31 : float;  (** per-message drop probability while injecting *)
  crashed31 : int;  (** nodes crashed and restarted mid-run *)
  msgs31 : int;  (** protocol messages (updates / LSA transmissions) *)
  overhead31 : int;  (** robustness tax: keepalives+resets / acks+retx *)
  settle31 : float;  (** engine time from fault cease to last change *)
  agrees31 : bool;  (** final state equals the centralized oracle *)
}

let e31_fault_convergence ?(params = Internet.default_params)
    ?(losses = [ 0.0; 0.2; 0.5 ]) ?(crash_loss = 0.1) ?(crash_frac = 0.2) () =
  let policy_of loss =
    if loss > 0.0 then begin
      let p = Simcore.Faults.lossy ~extra_delay:0.05 ~jitter:0.05 loss in
      fun ~src:_ ~dst:_ -> p
    end
    else fun ~src:_ ~dst:_ -> Simcore.Faults.reliable
  in
  let reliable_everywhere ~src:_ ~dst:_ = Simcore.Faults.reliable in
  (* --- BGP: keepalive/hold sessions over a lossy, crashing fabric --- *)
  let bgp_run ~loss ~crash =
    let inet = Internet.build params in
    let n = Internet.num_domains inet in
    let seed = Int64.add params.Internet.seed 31L in
    let faults =
      Simcore.Faults.create ~policy:(policy_of loss) ~fifo:true seed
    in
    let dyn = Simcore.Bgpdyn.create ~jitter:1.0 ~faults inet in
    let engine = Simcore.Engine.create () in
    (* loss must cease and crashes restart well before the keepalive
       horizon, so the surviving hold timers can re-establish every
       session (see Bgpdyn.enable_timers) *)
    let cease = 30.0 in
    Simcore.Bgpdyn.enable_timers dyn engine ~keepalive:1.0 ~hold:3.5
      ~until:40.0;
    Simcore.Bgpdyn.originate_all_domain_prefixes dyn engine;
    let ncrash =
      if crash then max 1 (int_of_float (crash_frac *. float_of_int n)) else 0
    in
    let rngc = Rng.create seed in
    let victims = Rng.sample rngc ncrash (List.init n Fun.id) in
    List.iteri
      (fun i d ->
        Simcore.Faults.schedule_outage faults engine ~node:d
          ~at:(10.0 +. float_of_int i) ~duration:5.0)
      victims;
    Simcore.Engine.schedule_at engine ~time:cease (fun _ ->
        Simcore.Faults.set_policy faults reliable_everywhere);
    ignore (Simcore.Engine.run engine);
    let s = Simcore.Bgpdyn.stats dyn in
    {
      proto31 = "bgp";
      loss31 = loss;
      crashed31 = ncrash;
      msgs31 = s.Simcore.Bgpdyn.updates;
      overhead31 = s.Simcore.Bgpdyn.keepalives + s.Simcore.Bgpdyn.resets;
      settle31 = Float.max 0.0 (s.Simcore.Bgpdyn.last_change -. cease);
      agrees31 =
        (match Simcore.Bgpdyn.agrees_with_synchronous dyn with
        | Ok () -> true
        | Error _ -> false);
    }
  in
  (* --- link-state: acked flooding over a lossy, crashing fabric --- *)
  let ls_run ~loss ~crash =
    let inet =
      Internet.build_custom
        ~seed:(Int64.add params.Internet.seed 18L)
        [| { Internet.routers = 24; endhosts = 1; transit = true } |]
        []
    in
    let faults =
      Simcore.Faults.create ~policy:(policy_of loss)
        (Int64.add params.Internet.seed 131L)
    in
    let proto = Simcore.Lsproto.create ~faults inet ~domain:0 in
    let engine = Simcore.Engine.create () in
    Simcore.Lsproto.start proto engine;
    let rids = (Internet.domain inet 0).Internet.router_ids in
    let ncrash =
      if crash then
        max 1 (int_of_float (crash_frac *. float_of_int (Array.length rids)))
      else 0
    in
    let rngc = Rng.create (Int64.add params.Internet.seed 132L) in
    let victims = Rng.sample rngc ncrash (Array.to_list rids) in
    List.iteri
      (fun i r ->
        Simcore.Faults.schedule_outage faults engine ~node:r
          ~at:(30.0 +. (2.0 *. float_of_int i))
          ~duration:8.0)
      victims;
    (* a survivor advertises an anycast group while faults are active *)
    let member =
      List.find (fun r -> not (List.mem r victims)) (Array.to_list rids)
    in
    let group = Addressing.anycast_global ~group:8 in
    Simcore.Engine.schedule_at engine ~time:20.0 (fun engine ->
        Simcore.Lsproto.advertise_anycast proto engine ~router:member group);
    let cease = 50.0 in
    Simcore.Engine.schedule_at engine ~time:cease (fun _ ->
        Simcore.Faults.set_policy faults reliable_everywhere);
    ignore (Simcore.Engine.run engine);
    let s = Simcore.Lsproto.stats proto in
    let oracle = Linkstate.compute inet ~domain:0 in
    Linkstate.advertise_anycast oracle ~group ~member;
    let routers = Linkstate.routers oracle in
    let agrees =
      Simcore.Lsproto.lsdb_synchronized proto
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 Float.abs
                   (Simcore.Lsproto.distance_view proto ~router:a ~dst:b
                   -. Linkstate.distance oracle ~src:a ~dst:b)
                 <= 1e-9)
               routers
             && (match Simcore.Lsproto.members_view proto ~router:a group with
                | [ m ] -> m = member
                | _ -> false))
           routers
    in
    {
      proto31 = "ls";
      loss31 = loss;
      crashed31 = ncrash;
      msgs31 = s.Simcore.Lsproto.messages;
      overhead31 = s.Simcore.Lsproto.acks + s.Simcore.Lsproto.retransmits;
      settle31 = Float.max 0.0 (s.Simcore.Lsproto.last_change -. cease);
      agrees31 = agrees;
    }
  in
  List.map (fun loss -> bgp_run ~loss ~crash:false) losses
  @ [ bgp_run ~loss:crash_loss ~crash:true ]
  @ List.map (fun loss -> ls_run ~loss ~crash:false) losses
  @ [ ls_run ~loss:crash_loss ~crash:true ]

let print_e31 rows =
  Table.print
    ~title:
      "E31: control-plane convergence under loss, delay and crashes — final \
       state vs the centralized oracle"
    ~header:
      [ "proto"; "loss"; "crashed"; "msgs"; "overhead"; "settle"; "oracle" ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.proto31;
             Table.fpct r.loss31;
             Table.fi r.crashed31;
             Table.fi r.msgs31;
             Table.fi r.overhead31;
             Table.ff r.settle31;
             (if r.agrees31 then "agree" else "DISAGREE");
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E32                                                                 *)

type e32_row = {
  tick32 : int;
  recovery32 : bool;  (** control plane reroutes around the down links *)
  phase32 : string;  (** steady | flapping | healing | recovered *)
  ok32 : float;  (** probes accepted by a current member *)
  stale32 : float;  (** probes accepted elsewhere *)
  lost32 : float;  (** dropped: link down / no route / stuck *)
  looped32 : float;  (** TTL expiry *)
}

let e32_flap_traffic ?(params = Internet.default_params) ?(deploy_domains = 4)
    ?(probes = 40) ?(ticks = 10) ?(flap_links = 3) () =
  let run ~recovery =
    let inet = Internet.build params in
    let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
    let rng = Rng.create (Int64.add params.Internet.seed 321L) in
    let doms = Rng.sample rng deploy_domains (stub_domains inet) in
    List.iter (fun d -> Setup.deploy setup ~domain:d) doms;
    let env = Setup.env setup in
    let service = Setup.service setup in
    let addr = Service.address service in
    let probe_hosts = Rng.sample rng probes (all_endhosts inet) in
    let pump = Pump.create env in
    (* scout which intra-domain links probe traffic actually crosses,
       so the flaps hit live paths *)
    let seen = Hashtbl.create 64 in
    List.iter
      (fun h ->
        let hh = Internet.endhost inet h in
        let p =
          Netcore.Packet.make_data ~src:hh.Internet.haddr ~dst:addr "scout"
        in
        let tr = Pump.inject pump p ~entry:hh.Internet.access_router in
        let rec walk = function
          | a :: (b :: _ as rest) ->
              if
                (Internet.router inet a).Internet.rdomain
                = (Internet.router inet b).Internet.rdomain
              then Hashtbl.replace seen (min a b, max a b) ();
              walk rest
          | [ _ ] | [] -> ()
        in
        walk tr.Forward.hops)
      probe_hosts;
    let candidates =
      Hashtbl.fold (fun k () acc -> k :: acc) seen []
      |> List.sort (fun (a1, b1) (a2, b2) ->
             match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c)
    in
    let g = inet.Internet.graph in
    let victims =
      Rng.sample rng (min flap_links (List.length candidates)) candidates
      |> List.filter_map (fun (a, b) ->
             match Graph.edge_weight g a b with
             | Some w -> Some (a, b, w)
             | None -> None)
    in
    let faults =
      Simcore.Faults.create (Int64.add params.Internet.seed 322L)
    in
    Pump.set_link_filter pump (Simcore.Faults.link_up faults);
    let engine = Simcore.Engine.create () in
    let down_t = 2.5 and up_t = 6.5 in
    List.iter
      (fun (a, b, _) ->
        Simcore.Faults.schedule_flap_train faults engine ~a ~b ~start:down_t
          ~cycles:1 ~period:(up_t -. down_t) ~down_for:(up_t -. down_t))
      victims;
    (* recovery: on detection, reroute the control plane around the
       down links and let line cards pick the detour up in batches *)
    let n_routers = Internet.num_routers inet in
    let refresh_order =
      let arr = Array.init n_routers Fun.id in
      Rng.shuffle rng arr;
      arr
    in
    let refreshed = ref n_routers in
    let recompute_domains () =
      let ds =
        List.sort_uniq Int.compare
          (List.map
             (fun (a, _, _) -> (Internet.router inet a).Internet.rdomain)
             victims)
      in
      List.iter
        (fun d ->
          let old = env.Forward.igps.(d) in
          let fresh = Igp.compute inet ~domain:d ~flavor:(Igp.flavor old) in
          List.iter
            (fun grp ->
              match Igp.anycast_members old ~group:grp with
              | Some ms ->
                  List.iter
                    (fun m -> Igp.advertise_anycast fresh ~group:grp ~member:m)
                    ms
              | None -> ())
            (Igp.groups old);
          env.Forward.igps.(d) <- fresh)
        ds
    in
    if recovery then begin
      Simcore.Engine.schedule_at engine ~time:(down_t +. 0.3) (fun _ ->
          List.iter (fun (a, b, _) -> Graph.remove_edge g a b) victims;
          recompute_domains ();
          refreshed := 0);
      Simcore.Engine.schedule_at engine ~time:(up_t +. 0.3) (fun _ ->
          List.iter (fun (a, b, w) -> Graph.add_edge g a b w) victims;
          recompute_domains ();
          refreshed := 0)
    end;
    let window = 3 in
    let rows = ref [] in
    let tick i _ =
      if !refreshed < n_routers then begin
        let batch_size = (n_routers + window - 1) / window in
        let upto = min n_routers (!refreshed + batch_size) in
        let batch =
          Array.to_list (Array.sub refresh_order !refreshed (upto - !refreshed))
        in
        Pump.refresh ~routers:batch pump;
        refreshed := upto
      end;
      let members = Service.members service in
      let ok = ref 0 and stale = ref 0 and lost = ref 0 and looped = ref 0 in
      List.iter
        (fun h ->
          let hh = Internet.endhost inet h in
          let p =
            Netcore.Packet.make_data ~src:hh.Internet.haddr ~dst:addr "probe"
          in
          let tr = Pump.inject pump p ~entry:hh.Internet.access_router in
          match tr.Forward.outcome with
          | Forward.Router_accepted r ->
              if List.mem r members then incr ok else incr stale
          | Forward.Endhost_accepted _ -> incr stale
          | Forward.Dropped Forward.Ttl_expired -> incr looped
          | Forward.Dropped _ -> incr lost)
        probe_hosts;
      let total = float_of_int (List.length probe_hosts) in
      let frac c = float_of_int !c /. total in
      rows :=
        {
          tick32 = i;
          recovery32 = recovery;
          phase32 =
            (if float_of_int i < down_t then "steady"
             else if float_of_int i < up_t then "flapping"
             else if !refreshed < n_routers then "healing"
             else "recovered");
          ok32 = frac ok;
          stale32 = frac stale;
          lost32 = frac lost;
          looped32 = frac looped;
        }
        :: !rows
    in
    for i = 1 to ticks do
      Simcore.Engine.schedule_at engine ~time:(float_of_int i) (tick i)
    done;
    ignore (Simcore.Engine.run engine);
    List.rev !rows
  in
  run ~recovery:false @ run ~recovery:true

let print_e32 rows =
  Table.print
    ~title:
      "E32: traffic delivery while links flap — recovery off vs on (detour \
       installed across a refresh window)"
    ~header:
      [ "tick"; "recovery"; "phase"; "ok"; "stale"; "lost"; "looped" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.tick32;
             Table.fb r.recovery32;
             r.phase32;
             Table.fpct r.ok32;
             Table.fpct r.stale32;
             Table.fpct r.lost32;
             Table.fpct r.looped32;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E33                                                                 *)

type e33_row = {
  shards33 : int;
  packets33 : int;  (** packets injected = terminal verdicts *)
  hops33 : int;  (** per-hop handlings, summed over routers *)
  bytes33 : int;  (** wire bytes handled *)
  delivered33 : int;
  dropped33 : int;
  ttl33 : int;
  crossings33 : int;  (** cross-shard ring handoffs *)
  identical33 : bool;  (** verdict counts equal the one-shard run's *)
}

let e33_shard_invariance ?(params = Internet.default_params)
    ?(shard_counts = [ 1; 2; 4; 8 ]) ?(flows = 2048) ?(packets_per_flow = 16)
    () =
  let inet = Internet.build params in
  let env = Forward.make_env inet in
  let seed = Int64.add params.Internet.seed 33L in
  let wl =
    Workload.create inet (Workload.Gravity { zipf_s = 1.2 }) ~seed
      ~packets_per_flow
  in
  let batch = Workload.batch wl ~count:flows in
  let baseline = ref None in
  List.map
    (fun shards ->
      let pool = Domainpool.create env ~shards ~seed in
      Domainpool.run pool batch;
      let c = Telemetry.total (Domainpool.telemetry pool) in
      let crossings = Domainpool.crossings pool in
      Domainpool.close pool;
      let verdict =
        ( c.Telemetry.packets,
          c.Telemetry.bytes,
          c.Telemetry.delivered,
          c.Telemetry.dropped,
          c.Telemetry.ttl_expired )
      in
      let identical =
        match !baseline with
        | None ->
            baseline := Some verdict;
            true
        | Some v -> v = verdict
      in
      {
        shards33 = shards;
        packets33 =
          c.Telemetry.delivered + c.Telemetry.dropped + c.Telemetry.ttl_expired;
        hops33 = c.Telemetry.packets;
        bytes33 = c.Telemetry.bytes;
        delivered33 = c.Telemetry.delivered;
        dropped33 = c.Telemetry.dropped;
        ttl33 = c.Telemetry.ttl_expired;
        crossings33 = crossings;
        identical33 = identical;
      })
    shard_counts

let print_e33 rows =
  Table.print
    ~title:
      "E33: shard-count invariance — the domain pool's delivery verdicts on \
       one seed, one to eight shards"
    ~header:
      [
        "shards";
        "packets";
        "hops";
        "bytes";
        "delivered";
        "dropped";
        "ttl";
        "crossings";
        "identical";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.shards33;
             Table.fi r.packets33;
             Table.fi r.hops33;
             Table.fi r.bytes33;
             Table.fi r.delivered33;
             Table.fi r.dropped33;
             Table.fi r.ttl33;
             Table.fi r.crossings33;
             Table.fb r.identical33;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E34                                                                 *)

type e34_row = {
  drill34 : string;
  intensity34 : float;
  detection34 : float option;  (** seconds from onset; [None]: never *)
  reconverge34 : float option;
  blackhole34 : float;  (** lost-probe seconds over the drill *)
  stale34 : float;
  pass34 : bool;  (** the book's SLO budgets all held *)
}

let e34_drill_catalog ?params ?(intensities = [ 1.0; 2.0 ]) () =
  List.concat_map
    (fun book ->
      List.map
        (fun intensity ->
          let b = Drillbook.with_intensity book intensity in
          let r = Drill.complete ?params b in
          let v = Slo.evaluate r in
          let m = v.Slo.metrics in
          Drill.close r;
          {
            drill34 = book.Drillbook.name;
            intensity34 = intensity;
            detection34 = m.Slo.detection_s;
            reconverge34 = m.Slo.reconverge_s;
            blackhole34 = m.Slo.blackhole_s;
            stale34 = m.Slo.stale_frac;
            pass34 = v.Slo.pass;
          })
        intensities)
    Drillbook.catalog

let fopt34 = function None -> "n/a" | Some f -> Table.ff f

let print_e34 rows =
  Table.print
    ~title:
      "E34: incident-drill catalog sweep — recovery metrics per drill and \
       fault intensity (SLO pass at intensity 1 is asserted in tests)"
    ~header:
      [
        "drill"; "intensity"; "detect s"; "reconverge s"; "blackhole s";
        "stale"; "slo pass";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             r.drill34;
             Table.ff r.intensity34;
             fopt34 r.detection34;
             fopt34 r.reconverge34;
             Table.ff r.blackhole34;
             Table.ff r.stale34;
             Table.fb r.pass34;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E35                                                                 *)

type e35_row = {
  deploy35 : int;  (** deployed domains during the hijack *)
  hijacked_peak35 : float;  (** worst single-tick delivery-to-rogue *)
  hijacked_mean35 : float;  (** mean over the fault window *)
  ok_fault35 : float;  (** mean on-target delivery during the fault *)
  reconverge35 : float option;
}

let e35_hijack_containment ?params ?(levels = [ 1; 2; 4; 8 ]) () =
  List.map
    (fun lvl ->
      let b = { Drillbook.prefix_hijack with Drillbook.deploy_domains = lvl } in
      let r = Drill.complete ?params b in
      let m = Slo.measure r in
      let in_window (row : Drill.tick_row) =
        row.Drill.time >= b.Drillbook.fault_at
        && row.Drill.time < b.Drillbook.fault_until
      in
      let window = List.filter in_window (Drill.rows r) in
      let mean f =
        match window with
        | [] -> 0.0
        | _ ->
            List.fold_left (fun acc row -> acc +. f row) 0.0 window
            /. float_of_int (List.length window)
      in
      {
        deploy35 = lvl;
        hijacked_peak35 = m.Slo.hijacked_peak;
        hijacked_mean35 = mean (fun (row : Drill.tick_row) -> row.Drill.hijacked);
        ok_fault35 = mean (fun (row : Drill.tick_row) -> row.Drill.ok);
        reconverge35 = m.Slo.reconverge_s;
      })
    levels

let print_e35 rows =
  Table.print
    ~title:
      "E35: hijack containment — delivery-to-rogue fraction vs IPvN \
       deployment level (more members, less traffic the rogue attracts)"
    ~header:
      [ "deployed"; "hijack peak"; "hijack mean"; "ok in fault"; "reconverge s" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.deploy35;
             Table.ff r.hijacked_peak35;
             Table.ff r.hijacked_mean35;
             Table.ff r.ok_fault35;
             fopt34 r.reconverge35;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E36                                                                 *)

type e36_row = {
  load36 : int;
  offered36 : int;
  goodput36 : int;
  goodput_frac36 : float;
  ctrl_ok36 : float;
  qdrop36 : int;
  shed36 : int;
  delay36 : float;
  queued_hw36 : int;
  bounded36 : bool;
}

let e36_overload_response ?(params = Internet.default_params)
    ?(loads = [ 4; 8; 16; 32; 64; 128; 256 ]) ?(ticks = 12) ?(probes = 8)
    ?(rate = 3000) ?(depth = 6000) ?(reserve = 1200) () =
  let inet = Internet.build params in
  let env = Forward.make_env inet in
  let hosts = Array.of_list (all_endhosts inet) in
  let nh = Array.length hosts in
  let payload = String.make 600 'd' in
  List.map
    (fun load ->
      let pump = Pump.create env in
      let lq = Linkq.of_internet ~control_reserve:reserve ~rate ~depth inet in
      Pump.attach_linkq pump lq;
      (* the per-tick demand is a fixed pattern in the packet index
         alone, so a higher load level replays a lower one's injections
         as a prefix each tick — the queues evolve identically up to
         the extra packets, which makes the goodput curve a true
         function of offered load (monotonicity is asserted in the
         test-suite) *)
      for _tick = 1 to ticks do
        for k = 0 to load - 1 do
          let s = hosts.(k mod nh) in
          let d = hosts.((k + (nh / 2) + 1) mod nh) in
          if s <> d then begin
            let hs = Internet.endhost inet s and hd = Internet.endhost inet d in
            let p =
              Netcore.Packet.make_data ~src:hs.Internet.haddr
                ~dst:hd.Internet.haddr payload
            in
            ignore (Pump.inject pump p ~entry:hs.Internet.access_router)
          end
        done;
        (* control probes enter after the crowd: the queues are at
           their fullest, yet the reserve must still admit them *)
        for k = 0 to probes - 1 do
          let s = hosts.(k mod nh) in
          let d = hosts.((k + (nh / 3) + 1) mod nh) in
          if s <> d then begin
            let hs = Internet.endhost inet s and hd = Internet.endhost inet d in
            let p =
              Netcore.Packet.make_data ~src:hs.Internet.haddr
                ~dst:hd.Internet.haddr "probe"
            in
            ignore
              (Pump.inject ~cls:Telemetry.Control pump p
                 ~entry:hs.Internet.access_router)
          end
        done;
        Linkq.tick lq
      done;
      let tel = Pump.telemetry pump in
      let c = Telemetry.total tel in
      let ctl = Telemetry.cls tel Telemetry.Control in
      let st = Linkq.stats lq in
      let offered_data = c.Telemetry.delivered - ctl.Telemetry.delivered in
      let offered_ctl = ref 0 and offered = ref 0 in
      (* offered counts mirror the injection guards above *)
      for k = 0 to load - 1 do
        if hosts.(k mod nh) <> hosts.((k + (nh / 2) + 1) mod nh) then
          incr offered
      done;
      for k = 0 to probes - 1 do
        if hosts.(k mod nh) <> hosts.((k + (nh / 3) + 1) mod nh) then
          incr offered_ctl
      done;
      let data_per_tick = !offered and ctl_per_tick = !offered_ctl in
      let offered_data_total = data_per_tick * ticks in
      let offered_ctl_total = ctl_per_tick * ticks in
      {
        load36 = load;
        offered36 = offered_data_total + offered_ctl_total;
        goodput36 = offered_data;
        goodput_frac36 =
          (if offered_data_total = 0 then 1.0
           else float_of_int offered_data /. float_of_int offered_data_total);
        ctrl_ok36 =
          (if offered_ctl_total = 0 then 1.0
           else
             float_of_int ctl.Telemetry.delivered
             /. float_of_int offered_ctl_total);
        qdrop36 = c.Telemetry.queue_dropped;
        shed36 = c.Telemetry.shed;
        delay36 = st.Linkq.mean_delay;
        queued_hw36 = st.Linkq.high_water;
        bounded36 = st.Linkq.high_water <= depth;
      })
    loads

let print_e36 rows =
  Table.print
    ~title:
      "E36: overload response — goodput, queueing delay and loss vs offered \
       load through the finite link queues (graceful degradation, not a \
       cliff; control rides the reserve)"
    ~header:
      [
        "load/tick";
        "offered";
        "goodput";
        "frac";
        "ctrl ok";
        "queue drop";
        "shed";
        "delay";
        "queue hw";
        "bounded";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.load36;
             Table.fi r.offered36;
             Table.fi r.goodput36;
             Table.ff r.goodput_frac36;
             Table.ff r.ctrl_ok36;
             Table.fi r.qdrop36;
             Table.fi r.shed36;
             Table.ff r.delay36;
             Table.fi r.queued_hw36;
             Table.fb r.bounded36;
           ])
         rows)

(* ------------------------------------------------------------------ *)
(* E37                                                                 *)

type e37_row = {
  shards37 : int;
  restarts37 : int;
  rounds37 : int;
  delivered37 : int;
  dropped37 : int;
  ttl37 : int;
  shed37 : int;
  identical37 : bool;
}

let e37_crash_recovery ?(params = Internet.default_params)
    ?(shard_counts = [ 1; 2; 4; 8 ]) ?(flows = 512) ?(packets_per_flow = 4)
    ?(crash_after = 64) () =
  let inet = Internet.build params in
  let env = Forward.make_env inet in
  let seed = Int64.add params.Internet.seed 37L in
  let wl =
    Workload.create inet (Workload.Gravity { zipf_s = 1.2 }) ~seed
      ~packets_per_flow
  in
  let batch = Workload.batch wl ~count:flows in
  let verdict pool =
    let c = Telemetry.total (Domainpool.telemetry pool) in
    ( c.Telemetry.packets,
      c.Telemetry.bytes,
      c.Telemetry.delivered,
      c.Telemetry.dropped,
      c.Telemetry.ttl_expired )
  in
  List.map
    (fun shards ->
      (* baseline: the same batch on a pool that never crashes *)
      let p0 = Domainpool.create env ~shards ~seed in
      ignore (Domainpool.run_cooperative p0 batch : int);
      let base = verdict p0 in
      Domainpool.close p0;
      (* one worker crashes mid-batch; the supervisor revives it and
         the flow caches rebuild warm from the shared FIB snapshots *)
      let p1 = Domainpool.create env ~shards ~seed in
      let victim = if shards > 1 then 1 else 0 in
      Shard.arm_crash (Domainpool.shard p1 victim) ~after:crash_after;
      let rounds = Domainpool.run_cooperative p1 batch in
      let v = verdict p1 in
      let _, _, delivered, dropped, ttl = v in
      let row =
        {
          shards37 = shards;
          restarts37 = Domainpool.restarts p1;
          rounds37 = rounds;
          delivered37 = delivered;
          dropped37 = dropped;
          ttl37 = ttl;
          shed37 = Domainpool.shed p1;
          identical37 = v = base;
        }
      in
      Domainpool.close p1;
      row)
    shard_counts

let print_e37 rows =
  Table.print
    ~title:
      "E37: crash recovery — a worker dies mid-batch, the supervisor \
       restarts it, and the delivery verdicts match a never-crashed run \
       exactly (zero divergence, nothing shed)"
    ~header:
      [
        "shards";
        "restarts";
        "rounds";
        "delivered";
        "dropped";
        "ttl";
        "shed";
        "identical";
      ]
    ~rows:
      (List.map
         (fun r ->
           [
             Table.fi r.shards37;
             Table.fi r.restarts37;
             Table.fi r.rounds37;
             Table.fi r.delivered37;
             Table.fi r.dropped37;
             Table.fi r.ttl37;
             Table.fi r.shed37;
             Table.fb r.identical37;
           ])
         rows)
