(** Small-sample statistics for multi-seed experiment runs — the 95%
    confidence intervals behind E13's replication of the §3.2 figures
    across independent internets. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1) *)
  ci95 : float;  (** half-width of the 95% Student-t confidence interval *)
}

val summarize : float list -> summary
(** [nan] fields on the empty list; [ci95 = 0] for singletons. *)

val to_string : summary -> string
(** ["12.34 +/- 0.56"]. *)

val mean_of : ('a -> float) -> 'a list -> float
val t_critical_95 : int -> float
(** Two-sided 95% Student-t critical value for the given degrees of
    freedom (exact for df <= 30, 1.96 beyond). *)
