(** One-call orchestration of an IPvN deployment.

    Bundles the whole §3 deployment stack — internet, IGPs, BGP,
    anycast policy (§3.2) and service — and keeps the vN-Bone (§3.3)
    consistent with the deployment state. This is the entry point downstream users start from (see
    [examples/quickstart.ml]). *)

type t

val create :
  ?params:Topology.Internet.params ->
  ?policy:Anycast.Policy.t ->
  version:int ->
  strategy:Anycast.Service.strategy ->
  unit ->
  t
(** Build a random transit–stub internet (default
    {!Topology.Internet.default_params}) and stand up the full stack
    for one IPvN generation with no participants yet. *)

val of_internet :
  ?policy:Anycast.Policy.t ->
  Topology.Internet.t ->
  version:int ->
  strategy:Anycast.Service.strategy ->
  t
(** Same, over a caller-provided internet (e.g. a custom figure
    topology). *)

val internet : t -> Topology.Internet.t
val env : t -> Simcore.Forward.env
val service : t -> Anycast.Service.t
val policy : t -> Anycast.Policy.t
val version : t -> int

val deploy : ?fraction:float -> t -> domain:int -> unit
(** The domain deploys IPvN on [fraction] (default 1.0) of its routers
    (at least one; chosen deterministically). Invalidate and later
    rebuild the vN-Bone.
    @raise Invalid_argument if [fraction] is outside (0, 1]. *)

val undeploy : t -> domain:int -> unit

val router : t -> Vnbone.Router.t
(** The vN routing state over the current deployment; the underlying
    fabric is rebuilt lazily after deployment changes. *)

val fabric : t -> Vnbone.Fabric.t

val send :
  t ->
  strategy:Vnbone.Router.strategy ->
  src:int ->
  dst:int ->
  ?payload:string ->
  unit ->
  Vnbone.Transport.journey
(** End-to-end IPvN send between endhost ids. *)
