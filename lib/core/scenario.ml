module Internet = Topology.Internet
module Relationship = Topology.Relationship
module Forward = Simcore.Forward
module Service = Anycast.Service
module Metrics = Anycast.Metrics
module Router = Vnbone.Router
module Transport = Vnbone.Transport

let spec ~routers ~endhosts ~transit =
  { Internet.routers; endhosts; transit }

let link a b rel_of_b = { Internet.a; b; rel_of_b }

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)

type fig1_stage = {
  deployed : string list;
  ingress_domain : string;
  metric : float;
}

(* Domains: 0=W1 (transit), 1=W2 (transit), 2=X, 3=Y, 4=Z.
   X hangs off W1; Y and Z off W2 — so Y is strictly closer to Z's
   client than X is, and deployment by Y visibly improves C's
   redirection, as in the figure. *)
let fig1 () =
  let names = [| "W1"; "W2"; "X"; "Y"; "Z" |] in
  let inet =
    Internet.build_custom ~seed:11L
      [|
        spec ~routers:4 ~endhosts:0 ~transit:true;
        spec ~routers:4 ~endhosts:0 ~transit:true;
        spec ~routers:3 ~endhosts:1 ~transit:false;
        spec ~routers:3 ~endhosts:1 ~transit:false;
        spec ~routers:3 ~endhosts:1 ~transit:false;
      |]
      [
        link 0 1 Relationship.Peer;
        link 2 0 Relationship.Provider;
        link 3 1 Relationship.Provider;
        link 4 1 Relationship.Provider;
      ]
  in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  let client =
    (* the endhost living in Z (domain 4) *)
    (Internet.domain inet 4).Internet.endhost_ids.(0)
  in
  let observe deployed =
    let service = Setup.service setup in
    match Metrics.actual service ~endhost:client with
    | Some (member, metric) ->
        let d = (Internet.router inet member).Internet.rdomain in
        { deployed; ingress_domain = names.(d); metric }
    | None -> { deployed; ingress_domain = "(dropped)"; metric = infinity }
  in
  Setup.deploy setup ~domain:2;
  let s1 = observe [ "X" ] in
  Setup.deploy setup ~domain:3;
  let s2 = observe [ "X"; "Y" ] in
  Setup.deploy setup ~domain:4;
  let s3 = observe [ "X"; "Y"; "Z" ] in
  [ s1; s2; s3 ]

let pp_fig1 fmt stages =
  Format.fprintf fmt "%-16s %-10s %8s@." "deployed" "ingress" "metric";
  List.iter
    (fun s ->
      Format.fprintf fmt "%-16s %-10s %8.1f@."
        (String.concat "," s.deployed)
        s.ingress_domain s.metric)
    stages

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)

type fig2_row = { stage : string; source : string; terminates_in : string }

(* Domains: 0=P (transit), 1=Q (transit), 2=D (default, customer of P),
   3=X (customer of P), 4=Y (customer of P and Q), 5=Z (customer of Q). *)
let fig2 () =
  let names = [| "P"; "Q"; "D"; "X"; "Y"; "Z" |] in
  let inet =
    Internet.build_custom ~seed:23L
      [|
        spec ~routers:4 ~endhosts:0 ~transit:true;
        spec ~routers:4 ~endhosts:0 ~transit:true;
        spec ~routers:3 ~endhosts:1 ~transit:false;
        spec ~routers:3 ~endhosts:1 ~transit:false;
        spec ~routers:3 ~endhosts:1 ~transit:false;
        spec ~routers:3 ~endhosts:1 ~transit:false;
      |]
      [
        link 0 1 Relationship.Peer;
        link 2 0 Relationship.Provider;
        link 3 0 Relationship.Provider;
        link 4 0 Relationship.Provider;
        link 4 1 Relationship.Provider;
        link 5 1 Relationship.Provider;
      ]
  in
  let setup =
    Setup.of_internet inet ~version:8
      ~strategy:(Service.Option2 { default_domain = 2 })
  in
  Setup.deploy setup ~domain:2 (* D: the default provider *);
  Setup.deploy setup ~domain:1 (* Q advertises An internally *);
  let service = Setup.service setup in
  let client_of_domain d = (Internet.domain inet d).Internet.endhost_ids.(0) in
  let observe stage =
    List.map
      (fun src_domain ->
        let terminates_in =
          match Metrics.actual service ~endhost:(client_of_domain src_domain) with
          | Some (member, _) ->
              names.((Internet.router inet member).Internet.rdomain)
          | None -> "(dropped)"
        in
        { stage; source = names.(src_domain); terminates_in })
      [ 3; 4; 5 ]
  in
  let before = observe "before Y-Q peering" in
  Service.advertise_to_neighbor service ~from_:1 ~to_:4;
  let after = observe "after Y-Q peering" in
  before @ after

let pp_fig2 fmt rows =
  Format.fprintf fmt "%-22s %-8s %-14s@." "stage" "source" "terminates in";
  List.iter
    (fun r -> Format.fprintf fmt "%-22s %-8s %-14s@." r.stage r.source r.terminates_in)
    rows

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)

type fig3_row = {
  strategy : string;
  last_vn_domain : string;
  vn_hops : int;
  exit_hops : int;
  vn_fraction : float;
}

(* Domains: 0=T1, 1=T2 (transits, non-IPvN), 2=M (IPvN, source side),
   3=O (IPvN, one business hop from C's domain), 4=CD (C's domain,
   non-IPvN, customer of T2 and peer of O). *)

let fig3_setup () =
  let inet =
    Internet.build_custom ~seed:31L
      [|
        spec ~routers:4 ~endhosts:0 ~transit:true;
        spec ~routers:4 ~endhosts:0 ~transit:true;
        spec ~routers:4 ~endhosts:1 ~transit:false;
        spec ~routers:4 ~endhosts:0 ~transit:false;
        spec ~routers:3 ~endhosts:1 ~transit:false;
      |]
      [
        link 0 1 Relationship.Peer;
        link 2 0 Relationship.Provider;
        link 3 1 Relationship.Provider;
        link 4 1 Relationship.Provider;
        link 4 3 Relationship.Peer;
      ]
  in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  Setup.deploy setup ~domain:2;
  Setup.deploy setup ~domain:3;
  (inet, setup)

let fig3 () =
  let names = [| "T1"; "T2"; "M"; "O"; "CD" |] in
  let inet, setup = fig3_setup () in
  let src = (Internet.domain inet 2).Internet.endhost_ids.(0) in
  let dst = (Internet.domain inet 4).Internet.endhost_ids.(0) in
  let run strategy =
    let j = Setup.send setup ~strategy ~src ~dst () in
    let last_vn_domain =
      match Transport.last_vn_router j with
      | Some r -> names.((Internet.router inet r).Internet.rdomain)
      | None -> "(none)"
    in
    {
      strategy = Router.strategy_to_string strategy;
      last_vn_domain;
      vn_hops = Transport.vn_hops j;
      exit_hops = Transport.exit_hops j;
      vn_fraction = Transport.vn_fraction j;
    }
  in
  [ run Router.Exit_early; run Router.Bgp_aware ]

let pp_fig3 fmt rows =
  Format.fprintf fmt "%-20s %-12s %8s %10s %12s@." "strategy" "last vN hop"
    "vN hops" "exit hops" "vN fraction";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-20s %-12s %8d %10d %12.2f@." r.strategy
        r.last_vn_domain r.vn_hops r.exit_hops r.vn_fraction)
    rows

(* ------------------------------------------------------------------ *)
(* Figure 4                                                            *)

type fig4_row = {
  strategy : string;
  egress_domain : string;
  exposure_hops : int;
  vn_hops : int;
  delivered : bool;
}

(* Domains: 0=M, 1=N (transits, non-IPvN), 2=A, 3=B, 4=C (IPvN),
   5=Z (non-IPvN destination, customer of N, peer of C). *)
let fig4 () =
  let names = [| "M"; "N"; "A"; "B"; "C"; "Z" |] in
  let inet =
    Internet.build_custom ~seed:41L
      [|
        spec ~routers:4 ~endhosts:0 ~transit:true;
        spec ~routers:4 ~endhosts:0 ~transit:true;
        spec ~routers:3 ~endhosts:1 ~transit:false;
        spec ~routers:3 ~endhosts:0 ~transit:false;
        spec ~routers:3 ~endhosts:0 ~transit:false;
        spec ~routers:3 ~endhosts:1 ~transit:false;
      |]
      [
        link 0 1 Relationship.Peer;
        link 2 0 Relationship.Provider;
        link 3 0 Relationship.Provider;
        link 3 1 Relationship.Provider;
        link 4 1 Relationship.Provider;
        link 5 1 Relationship.Provider;
        link 5 4 Relationship.Peer;
      ]
  in
  let setup = Setup.of_internet inet ~version:8 ~strategy:Service.Option1 in
  Setup.deploy setup ~domain:2;
  Setup.deploy setup ~domain:3;
  Setup.deploy setup ~domain:4;
  let src = (Internet.domain inet 2).Internet.endhost_ids.(0) in
  let dst = (Internet.domain inet 5).Internet.endhost_ids.(0) in
  let run strategy =
    let j = Setup.send setup ~strategy ~src ~dst () in
    let egress_domain =
      match j.Transport.egress with
      | Some r -> names.((Internet.router inet r).Internet.rdomain)
      | None -> "(none)"
    in
    {
      strategy = Router.strategy_to_string strategy;
      egress_domain;
      exposure_hops = Transport.access_hops j + Transport.exit_hops j;
      vn_hops = Transport.vn_hops j;
      delivered = Transport.delivered j;
    }
  in
  [ run Router.Exit_early; run Router.Proxy ]

let pp_fig4 fmt rows =
  Format.fprintf fmt "%-20s %-8s %14s %8s %10s@." "strategy" "egress"
    "exposure hops" "vN hops" "delivered";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-20s %-8s %14d %8d %10b@." r.strategy r.egress_domain
        r.exposure_hops r.vn_hops r.delivered)
    rows
