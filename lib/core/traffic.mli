(** Traffic workload generation.

    The paper's revenue argument (§2, A4) is about {e attracted traffic},
    which only means something under a non-uniform workload: big
    domains source and sink more flows. The gravity model draws flow
    endpoints with probability proportional to the product of the
    endpoint domains' populations — the standard traffic-matrix
    assumption — with populations following a Zipf law over domains. *)

type model =
  | Uniform  (** every endhost equally likely *)
  | Gravity of { zipf_s : float }
      (** domain populations Zipf-distributed with the given exponent;
          flow endpoints drawn proportionally *)

type t

val create : Topology.Internet.t -> model -> seed:int64 -> t
(** Build the workload model over an internet's endhosts.

    @raise Invalid_argument when the internet has no endhosts at all
    (the gravity weights would not normalize). *)

val population : t -> int -> float
(** Normalized population weight of a domain (sums to 1). *)

val population_share : t -> int list -> float
(** Combined population weight of a set of domains. *)

val sample_flows : t -> count:int -> (int * int) list
(** [count] (src endhost, dst endhost) pairs with [src <> dst], drawn
    per the model. *)
