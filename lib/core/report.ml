module E = Experiments

let code buf body =
  Buffer.add_string buf "```\n";
  Buffer.add_string buf body;
  Buffer.add_string buf "```\n\n"

let heading buf level title =
  Buffer.add_string buf (String.make level '#');
  Buffer.add_char buf ' ';
  Buffer.add_string buf title;
  Buffer.add_string buf "\n\n"

let figure_section buf =
  heading buf 2 "Paper figures";
  let render pp v =
    let b = Buffer.create 256 in
    let fmt = Format.formatter_of_buffer b in
    pp fmt v;
    Format.pp_print_flush fmt ();
    Buffer.contents b
  in
  heading buf 3 "Figure 1 — seamless spread of deployment";
  code buf (render Scenario.pp_fig1 (Scenario.fig1 ()));
  heading buf 3 "Figure 2 — Option 2 anycast with default routes";
  code buf (render Scenario.pp_fig2 (Scenario.fig2 ()));
  heading buf 3 "Figure 3 — egress selection with BGPv(N-1) import";
  code buf (render Scenario.pp_fig3 (Scenario.fig3 ()));
  heading buf 3 "Figure 4 — advertising-by-proxy";
  code buf (render Scenario.pp_fig4 (Scenario.fig4 ()))

(* capture Table.print-style output by rebuilding with Table.render *)
let table header rows = Table.render ~header ~rows

let experiment_section buf =
  heading buf 2 "Experiments";
  let add title body =
    heading buf 3 title;
    code buf body
  in
  add "E1 — anycast stretch vs deployment fraction"
    (table
       [ "fraction"; "domains"; "mean stretch"; "p95"; "delivery" ]
       (List.map
          (fun (r : E.e1_row) ->
            [
              Table.ff r.E.fraction;
              Table.fi r.E.deployed_domains;
              Table.ff r.E.mean_stretch;
              Table.ff r.E.p95_stretch;
              Table.fpct r.E.delivery_rate;
            ])
          (E.e1_deployment_sweep ())));
  add "E2 — Option 2 default routes vs peering advertisements"
    (table
       [ "scheme"; "advertisers"; "default share"; "stretch"; "delivery" ]
       (List.map
          (fun (r : E.e2_row) ->
            [
              r.E.label;
              Table.fi r.E.advertisers;
              Table.fpct r.E.default_share;
              Table.ff r.E.mean_stretch2;
              Table.fpct r.E.delivery2;
            ])
          (E.e2_default_route_sweep ())));
  let strategy_table rows =
    table
      [ "strategy"; "vN fraction"; "vN hops"; "exposure"; "total"; "delivery" ]
      (List.map
         (fun (r : E.strategy_row) ->
           [
             r.E.strategy_name;
             Table.ff r.E.mean_vn_fraction;
             Table.ff r.E.mean_vn_hops;
             Table.ff r.E.mean_exposure_hops;
             Table.ff r.E.mean_total_hops;
             Table.fpct r.E.journey_delivery;
           ])
         rows)
  in
  add "E3 — egress strategies (30% deployed)"
    (strategy_table (E.e3_egress_comparison ()));
  add "E4 — egress strategies (15% deployed)"
    (strategy_table (E.e3_egress_comparison ~deploy_fraction:0.15 ~pairs:80 ()));
  add "E5 — RIB state vs concurrent generations"
    (table
       [ "generations"; "opt1 mean"; "opt1 max"; "opt2 mean"; "opt2 max"; "baseline" ]
       (List.map
          (fun (r : E.e5_row) ->
            [
              Table.fi r.E.generations;
              Table.ff r.E.opt1_mean_rib;
              Table.fi r.E.opt1_max_rib;
              Table.ff r.E.opt2_mean_rib;
              Table.fi r.E.opt2_max_rib;
              Table.fi r.E.baseline_rib;
            ])
          (E.e5_state_scaling ())));
  add "E6 — adoption dynamics"
    (table
       [ "scenario"; "final ISPs"; "final apps"; "tip step" ]
       (List.map
          (fun (r : E.e6_row) ->
            [
              r.E.scenario;
              Table.fpct r.E.final_isp_fraction;
              Table.fpct r.E.final_app_fraction;
              (match r.E.tip_step with Some s -> Table.fi s | None -> "never");
            ])
          (E.e6_adoption ())));
  add "E7 — vN-Bone survivability"
    (table
       [ "failure"; "k=1"; "k=2"; "k=3"; "repair tunnels" ]
       (List.map
          (fun (r : E.e7_row) ->
            [
              Table.ff r.E.failure_fraction;
              Table.fpct r.E.survive_k1;
              Table.fpct r.E.survive_k2;
              Table.fpct r.E.survive_k3;
              Table.ff r.E.mean_repair_tunnels;
            ])
          (E.e7_robustness ())));
  add "E8 — anycast convergence (LS vs DV)"
    (table
       [ "routers"; "LS rounds"; "DV join"; "DV leave" ]
       (List.map
          (fun (r : E.e8_row) ->
            [
              Table.fi r.E.domain_routers;
              Table.ff r.E.ls_mean_rounds;
              Table.ff r.E.dv_join_rounds;
              Table.ff r.E.dv_leave_rounds;
            ])
          (E.e8_convergence ())));
  add "E9 — host-advertised routes vs proxy"
    (table
       [ "failure"; "host-adv delivery"; "proxy delivery"; "host-adv exposure"; "proxy exposure" ]
       (List.map
          (fun (r : E.e9_row) ->
            [
              Table.ff r.E.member_failure;
              Table.fpct r.E.host_adv_delivery;
              Table.fpct r.E.proxy_delivery;
              Table.ff r.E.host_adv_exposure;
              Table.ff r.E.proxy_exposure;
            ])
          (E.e9_host_advertised ())));
  add "E10 — discovery ablation"
    (table
       [ "discovery"; "intra tunnels"; "vN stretch"; "connected" ]
       (List.map
          (fun (r : E.e10_row) ->
            [
              r.E.discovery_name;
              Table.fi r.E.intra_tunnels;
              Table.ff r.E.vn_stretch;
              Table.fb r.E.connected10;
            ])
          (E.e10_discovery_ablation ())));
  add "E11 — congruence"
    (table
       [ "fraction"; "members"; "vN stretch"; "inter tunnels" ]
       (List.map
          (fun (r : E.e11_row) ->
            [
              Table.ff r.E.deploy_fraction11;
              Table.fi r.E.members11;
              Table.ff r.E.vn_stretch11;
              Table.fi r.E.inter_tunnels11;
            ])
          (E.e11_congruence ())));
  add "E12 — GIA radius"
    (table
       [ "scheme"; "home share"; "stretch"; "delivery"; "mean RIB" ]
       (List.map
          (fun (r : E.e12_row) ->
            [
              r.E.scheme12;
              Table.fpct r.E.home_share;
              Table.ff r.E.mean_stretch12;
              Table.fpct r.E.delivery12;
              Table.ff r.E.mean_rib12;
            ])
          (E.e12_gia_sweep ())));
  add "E13 — seed stability (95% CI)"
    (table
       [ "strategy"; "vN fraction"; "exposure"; "delivery" ]
       (List.map
          (fun (r : E.e13_row) ->
            [
              r.E.strategy13;
              Stats.to_string r.E.vn_fraction_ci;
              Stats.to_string r.E.exposure_ci;
              Stats.to_string r.E.delivery_ci;
            ])
          (E.e13_seed_stability ())));
  add "E14 — proxy-metric ablation"
    (table
       [ "alpha"; "vN fraction"; "exposure"; "total" ]
       (List.map
          (fun (r : E.e14_row) ->
            [
              Table.ff r.E.alpha;
              Table.ff r.E.alpha_vn_fraction;
              Table.ff r.E.alpha_exposure;
              Table.ff r.E.alpha_total_hops;
            ])
          (E.e14_proxy_alpha ())));
  add "E15 — viability threshold"
    (table
       [ "floor"; "UA final"; "gated final" ]
       (List.map
          (fun (r : E.e15_row) ->
            [
              Table.ff r.E.viability;
              Table.fpct r.E.ua_final;
              Table.fpct r.E.gated_final;
            ])
          (E.e15_viability_sweep ())));
  add "E16 — traffic attraction"
    (table
       [ "deployers"; "population"; "traffic"; "premium" ]
       (List.map
          (fun (r : E.e16_row) ->
            [
              r.E.picker;
              Table.fpct r.E.pop_share;
              Table.fpct r.E.traffic_share;
              Table.ff r.E.attraction_premium;
            ])
          (E.e16_revenue_gravity ())));
  add "E17 — BGPvN scaling"
    (table
       [ "vN domains"; "members"; "rounds"; "table" ]
       (List.map
          (fun (r : E.e17_row) ->
            [
              Table.fi r.E.vn_domains;
              Table.fi r.E.vn_members;
              Table.fi r.E.bgpvn_rounds;
              Table.ff r.E.mean_table;
            ])
          (E.e17_bgpvn_scaling ())));
  add "E18 — LSA flooding"
    (table
       [ "routers"; "sync msgs"; "update msgs"; "latency"; "ecc" ]
       (List.map
          (fun (r : E.e18_row) ->
            [
              Table.fi r.E.ls_routers;
              Table.fi r.E.sync_messages;
              Table.fi r.E.update_messages;
              Table.ff r.E.update_latency;
              Table.fi r.E.eccentricity;
            ])
          (E.e18_flooding_cost ())));
  add "E19 — asynchronous BGP (MRAI)"
    (table
       [ "MRAI"; "boot updates"; "boot time"; "anycast updates"; "anycast time"; "churn" ]
       (List.map
          (fun (r : E.e19_row) ->
            [
              Table.ff r.E.mrai;
              Table.fi r.E.boot_updates;
              Table.ff r.E.boot_time;
              Table.fi r.E.anycast_updates;
              Table.ff r.E.anycast_time;
              Table.fi r.E.churn;
            ])
          (E.e19_mrai_sweep ())));
  add "E20 — anycast resilience"
    (table
       [ "dead members"; "anycast"; "single server" ]
       (List.map
          (fun (r : E.e20_row) ->
            [
              Table.fi r.E.dead_members;
              Table.fpct r.E.anycast_delivery;
              Table.fpct r.E.unicast_delivery;
            ])
          (E.e20_anycast_resilience ())));
  add "E21 — size scaling"
    (table
       [ "domains"; "routers"; "BGP rounds"; "stretch"; "delivery"; "total RIB" ]
       (List.map
          (fun (r : E.e21_row) ->
            [
              Table.fi r.E.domains21;
              Table.fi r.E.routers21;
              Table.fi r.E.bgp_rounds;
              Table.ff r.E.mean_stretch21;
              Table.fpct r.E.delivery21;
              Table.fi r.E.total_rib;
            ])
          (E.e21_size_scaling ())));
  add "E22 — compiled FIB sizes"
    (table
       [ "generations"; "opt1 mean"; "opt1 max"; "opt2 mean"; "opt2 max" ]
       (List.map
          (fun (r : E.e22_row) ->
            [
              Table.fi r.E.generations22;
              Table.ff r.E.opt1_mean_fib;
              Table.fi r.E.opt1_max_fib;
              Table.ff r.E.opt2_mean_fib;
              Table.fi r.E.opt2_max_fib;
            ])
          (E.e22_fib_scaling ())));
  add "E23 — topology-model robustness"
    (table
       [ "model"; "domains"; "delivery"; "stretch"; "exposure drop" ]
       (List.map
          (fun (r : E.e23_row) ->
            [
              r.E.model;
              Table.fi r.E.domains23;
              Table.fpct r.E.delivery23;
              Table.ff r.E.stretch23;
              Table.fpct r.E.exposure_drop;
            ])
          (E.e23_topology_robustness ())));
  add "E24 — anycast flow stability"
    (table
       [ "deployed"; "moved this stage"; "never moved" ]
       (List.map
          (fun (r : E.e24_row) ->
            [
              Table.fi r.E.stage;
              Table.fpct r.E.ingress_changed;
              Table.fpct r.E.cumulative_stability;
            ])
          (E.e24_flow_stability ())));
  add "E25 — acting in concert"
    (table
       [ "coalition"; "market share"; "gated final"; "UA final" ]
       (List.map
          (fun (r : E.e25_row) ->
            [
              Table.fi r.E.coalition;
              Table.fpct r.E.coalition_share;
              Table.fpct r.E.gated_final25;
              Table.fpct r.E.ua_final25;
            ])
          (E.e25_coalition_sweep ())));
  add "E26 — the byte cost of evolution"
    (table
       [ "payload B"; "native"; "evolved"; "overhead"; "header share" ]
       (List.map
          (fun (r : E.e26_row) ->
            [
              Table.fi r.E.payload_bytes;
              Table.ff r.E.native_bytes;
              Table.ff r.E.evolved_bytes;
              Table.fpct r.E.byte_overhead;
              Table.fpct r.E.header_share;
            ])
          (E.e26_encapsulation_overhead ())));
  add "E27 — heterogeneous IGPs"
    (table
       [ "DV fraction"; "delivery"; "anycast stretch"; "walk domains"; "vN stretch" ]
       (List.map
          (fun (r : E.e27_row) ->
            [
              Table.ff r.E.dv_fraction;
              Table.fpct r.E.delivery27;
              Table.ff r.E.stretch27;
              Table.fi r.E.walk_domains;
              Table.ff r.E.vn_stretch27;
            ])
          (E.e27_mixed_igp ())));
  add "E28 — path hunting on withdrawal"
    (table
       [ "MRAI"; "ann msgs"; "ann churn"; "wd msgs"; "wd churn"; "hunt ratio" ]
       (List.map
          (fun (r : E.e28_row) ->
            [
              Table.ff r.E.mrai28;
              Table.fi r.E.announce_updates;
              Table.fi r.E.announce_churn;
              Table.fi r.E.withdraw_updates;
              Table.fi r.E.withdraw_churn;
              Table.ff r.E.hunt_ratio;
            ])
          (E.e28_path_hunting ())));
  add "E29 — the data-plane cost of evolution"
    (table
       [
         "option";
         "fraction";
         "delivery";
         "mean stretch";
         "p99 stretch";
         "byte overhead";
         "cache hits";
       ]
       (List.map
          (fun (r : E.e29_row) ->
            [
              r.E.option29;
              Table.ff r.E.fraction29;
              Table.fpct r.E.delivery29;
              Table.ff r.E.mean_stretch29;
              Table.ff r.E.p99_stretch29;
              Table.fpct r.E.byte_overhead29;
              Table.fpct r.E.cache_hit29;
            ])
          (E.e29_dataplane_cost ())));
  add "E30 — traffic during churn"
    (table
       [ "tick"; "phase"; "fresh FIBs"; "ok"; "stale"; "lost"; "looped" ]
       (List.map
          (fun (r : E.e30_row) ->
            [
              Table.fi r.E.tick30;
              r.E.phase30;
              Table.fpct r.E.fresh30;
              Table.fpct r.E.ok30;
              Table.fpct r.E.stale30;
              Table.fpct r.E.lost30;
              Table.fpct r.E.looped30;
            ])
          (E.e30_churn_traffic ())));
  add "E31 — control-plane convergence under faults"
    (table
       [ "proto"; "loss"; "crashed"; "msgs"; "overhead"; "settle"; "oracle" ]
       (List.map
          (fun (r : E.e31_row) ->
            [
              r.E.proto31;
              Table.fpct r.E.loss31;
              Table.fi r.E.crashed31;
              Table.fi r.E.msgs31;
              Table.fi r.E.overhead31;
              Table.ff r.E.settle31;
              (if r.E.agrees31 then "agree" else "DISAGREE");
            ])
          (E.e31_fault_convergence ())));
  add "E32 — traffic delivery while links flap"
    (table
       [ "tick"; "recovery"; "phase"; "ok"; "stale"; "lost"; "looped" ]
       (List.map
          (fun (r : E.e32_row) ->
            [
              Table.fi r.E.tick32;
              Table.fb r.E.recovery32;
              r.E.phase32;
              Table.fpct r.E.ok32;
              Table.fpct r.E.stale32;
              Table.fpct r.E.lost32;
              Table.fpct r.E.looped32;
            ])
          (E.e32_flap_traffic ())));
  add "E33 — shard-count invariance of the multicore data plane"
    (table
       [
         "shards";
         "packets";
         "hops";
         "bytes";
         "delivered";
         "dropped";
         "ttl";
         "crossings";
         "identical";
       ]
       (List.map
          (fun (r : E.e33_row) ->
            [
              Table.fi r.E.shards33;
              Table.fi r.E.packets33;
              Table.fi r.E.hops33;
              Table.fi r.E.bytes33;
              Table.fi r.E.delivered33;
              Table.fi r.E.dropped33;
              Table.fi r.E.ttl33;
              Table.fi r.E.crossings33;
              Table.fb r.E.identical33;
            ])
          (E.e33_shard_invariance ())));
  let fopt = function None -> "n/a" | Some f -> Table.ff f in
  add "E34 — incident-drill catalog sweep"
    (table
       [
         "drill";
         "intensity";
         "detect s";
         "reconverge s";
         "blackhole s";
         "stale";
         "slo pass";
       ]
       (List.map
          (fun (r : E.e34_row) ->
            [
              r.E.drill34;
              Table.ff r.E.intensity34;
              fopt r.E.detection34;
              fopt r.E.reconverge34;
              Table.ff r.E.blackhole34;
              Table.ff r.E.stale34;
              Table.fb r.E.pass34;
            ])
          (E.e34_drill_catalog ())));
  add "E35 — hijack containment vs deployment level"
    (table
       [ "deployed"; "hijack peak"; "hijack mean"; "ok in fault"; "reconverge s" ]
       (List.map
          (fun (r : E.e35_row) ->
            [
              Table.fi r.E.deploy35;
              Table.ff r.E.hijacked_peak35;
              Table.ff r.E.hijacked_mean35;
              Table.ff r.E.ok_fault35;
              fopt r.E.reconverge35;
            ])
          (E.e35_hijack_containment ())));
  add "E36 — overload response of the finite-queue data plane"
    (table
       [
         "load/tick";
         "offered";
         "goodput";
         "frac";
         "ctrl ok";
         "queue drop";
         "shed";
         "delay";
         "queue hw";
         "bounded";
       ]
       (List.map
          (fun (r : E.e36_row) ->
            [
              Table.fi r.E.load36;
              Table.fi r.E.offered36;
              Table.fi r.E.goodput36;
              Table.ff r.E.goodput_frac36;
              Table.ff r.E.ctrl_ok36;
              Table.fi r.E.qdrop36;
              Table.fi r.E.shed36;
              Table.ff r.E.delay36;
              Table.fi r.E.queued_hw36;
              Table.fb r.E.bounded36;
            ])
          (E.e36_overload_response ())));
  add "E37 — shard crash, supervised restart, zero verdict divergence"
    (table
       [
         "shards";
         "restarts";
         "rounds";
         "delivered";
         "dropped";
         "ttl";
         "shed";
         "identical";
       ]
       (List.map
          (fun (r : E.e37_row) ->
            [
              Table.fi r.E.shards37;
              Table.fi r.E.restarts37;
              Table.fi r.E.rounds37;
              Table.fi r.E.delivered37;
              Table.fi r.E.dropped37;
              Table.fi r.E.ttl37;
              Table.fi r.E.shed37;
              Table.fb r.E.identical37;
            ])
          (E.e37_crash_recovery ())))

let generate () =
  let buf = Buffer.create 16384 in
  heading buf 1 "evolvenet results";
  Buffer.add_string buf
    "Regenerated by `evolvenet report` / `Evolve.Report.generate`. Every\n\
     table is deterministic; see EXPERIMENTS.md for the reading guide.\n\n";
  figure_section buf;
  experiment_section buf;
  Buffer.contents buf

let write ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (generate ()))
