(** The paper's revenue-flow assumption (§2, A4), made measurable.

    The paper posits that an ISP offering IPvN attracts traffic from
    non-offering ISPs and thereby gains settlement revenue. We measure
    carried IPvN traffic directly on the data plane: every underlay
    hop of every journey credits the domain of its receiving router.
    Comparing deployers against non-deployers (and a domain's load
    before/after it deploys) quantifies the attraction incentive. *)

type report = {
  per_domain : float array;  (** carried IPvN traffic units per domain *)
  deployers : int list;
  deployer_mean : float;  (** mean load over deploying domains *)
  non_deployer_mean : float;
  delivered : int;  (** journeys delivered *)
  attempted : int;
}

val traffic_report :
  Vnbone.Router.t ->
  strategy:Vnbone.Router.strategy ->
  pairs:(int * int) list ->
  report
(** Send one IPvN journey per (src endhost, dst endhost) pair and
    account carried traffic. *)

val random_pairs :
  Topology.Internet.t -> seed:int64 -> count:int -> (int * int) list
(** Uniform random distinct endhost pairs (src <> dst). *)
