(** GraphViz (DOT) export of internets and vN-Bones.

    Handy for inspecting generated topologies and deployments — in
    particular for eyeballing §3.3.1's claim that the vN-Bone "should
    evolve to be congruent with the underlying physical topology":

    {v
    dune exec bin/evolvenet.exe -- dot internet > net.dot
    dot -Tsvg net.dot -o net.svg
    v} *)

val domain_graph : Topology.Internet.t -> string
(** One node per domain (transit domains boxed), edges labelled with
    the business relationship seen from the lower-numbered side. *)

val router_graph : Topology.Internet.t -> string
(** The full router-level graph, routers clustered by domain. *)

val fabric : Vnbone.Fabric.t -> string
(** The router-level graph with the deployment overlaid: IPvN routers
    and vN-Bone tunnels highlighted, tunnel styles by provenance
    (intra / policy / bootstrap). *)

val write_file : path:string -> string -> unit
(** Write a rendered graph to disk. *)
