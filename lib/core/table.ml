let render ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf cell;
        if i < cols - 1 then
          Buffer.add_string buf (String.make (width.(i) - String.length cell + 2) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  let total = Array.fold_left ( + ) 0 width + (2 * (cols - 1)) in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print ~title ~header ~rows =
  print_endline title;
  print_endline (String.make (String.length title) '=');
  print_string (render ~header ~rows);
  print_newline ()

let ff x =
  if Float.is_nan x then "-"
  else if Float.equal x infinity then "inf"
  else if Float.equal x neg_infinity then "-inf"
  else Printf.sprintf "%.2f" x

let fi = string_of_int
let fb = string_of_bool
let fpct x = if Float.is_nan x then "-" else Printf.sprintf "%.1f%%" (100.0 *. x)
