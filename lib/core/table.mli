(** Plain-text table rendering for experiment output (the tables that
    generalize the paper's §3.2 figures; see EXPERIMENTS.md). *)

val render : header:string list -> rows:string list list -> string
(** Columns are padded to their widest cell; a rule separates the
    header. *)

val print : title:string -> header:string list -> rows:string list list -> unit
(** Render to stdout with an underlined title and a trailing blank
    line. *)

val ff : float -> string
(** Compact float: ["1.25"], ["inf"], ["-"] for nan. *)

val fi : int -> string
val fb : bool -> string
val fpct : float -> string
(** Percentage with one decimal: [0.5] -> ["50.0%"]. *)
